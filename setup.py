"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 517 editable
installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path, which needs no wheel.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
