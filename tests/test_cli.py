"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["transmogrify"])

    def test_shape_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert (args.size, args.kernel, args.batch) == (64, 3, 8)


class TestCommands:
    def test_selftest(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "selftest passed" in out
        assert "polyhankel" in out

    def test_algorithms(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "polyhankel" in out
        assert "im2col" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--size", "32", "--batch", "4"]) == 0
        out = capsys.readouterr().out
        assert "GeForce 3090Ti" in out
        assert "ms" in out

    def test_simulate_multiple_devices(self, capsys):
        assert main(["simulate", "--size", "32", "--devices", "v100",
                     "a10g"]) == 0
        out = capsys.readouterr().out
        assert "V100" in out and "A10G" in out

    def test_select(self, capsys):
        assert main(["select", "--size", "128", "--kernel", "5",
                     "--batch", "64", "--padding", "2"]) == 0
        out = capsys.readouterr().out
        assert "model-driven choice" in out
        assert "rule-based choice" in out

    def test_tune_small(self, capsys):
        assert main(["tune", "--size", "12", "--batch", "1",
                     "--channels", "1", "--filters", "1",
                     "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "best:" in out

    def test_figures_single_panel(self, capsys):
        assert main(["figures", "5", "--devices", "3090ti"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out
        assert "polyhankel" in out


class TestObservabilityCommands:
    def test_profile_preset(self, capsys):
        assert main(["profile", "conv16_sum_numpy",
                     "--repeats", "2"]) == 0
        out = capsys.readouterr().out
        assert "profile conv16_sum_numpy" in out
        assert "input_block_ffts" in out
        assert "drift" in out
        assert "fft invocations" in out

    def test_profile_custom_shape_gemm(self, capsys):
        assert main(["profile", "--algorithm", "gemm", "--size", "12",
                     "--batch", "1", "--channels", "1", "--filters", "1",
                     "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "algo=gemm" in out
        assert "im2col" in out and "gemm" in out

    def test_profile_trace_and_json(self, capsys, tmp_path):
        path = tmp_path / "profile.json"
        assert main(["profile", "conv16_sum_numpy", "--repeats", "1",
                     "--trace", "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "spans (completion order):" in out
        assert "stage.pointwise" in out
        assert path.exists()

    def test_profile_unknown_preset(self, capsys):
        with pytest.raises(ValueError, match="unknown preset"):
            main(["profile", "definitely_not_a_case"])

    def test_cache_stats(self, capsys):
        assert main(["cache-stats"]) == 0
        out = capsys.readouterr().out
        assert "conv plans" in out
        assert "fft plans" in out
        assert "layer spectra" in out


class TestServeCommands:
    def test_serve_bench_list(self, capsys):
        assert main(["serve-bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "serve_batch8" in out
        assert "floor 2x" in out
        assert "ungated" in out

    def test_serve_bench_unknown_preset(self, capsys):
        assert main(["serve-bench", "no_such_preset"]) == 2
        assert "unknown preset" in capsys.readouterr().out

    def test_serve_stats(self, capsys):
        assert main(["serve-stats"]) == 0
        out = capsys.readouterr().out
        assert "requests" in out
        assert "coalesce rate" in out

    @pytest.mark.slow
    def test_serve_bench_single_preset_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "serve.json"
        assert main(["serve-bench", "serve_batch8", "--repeats", "1",
                     "--out", str(out_path)]) == 0
        text = capsys.readouterr().out
        assert "serve_batch8" in text
        report = json.loads(out_path.read_text())
        assert report["serve"][0]["name"] == "serve_batch8"
        assert report["serve"][0]["exact"] is True
        assert "env_pins" in report
