"""Counter contract of the benched N-dimensional presets (tier-1).

The slow ``--smoke`` bench already asserts measured-vs-predicted counters
for every ND preset; this module keeps the load-bearing piece of that
gate in tier-1 with tiny shapes: the 1D lowering's steady-state FFT rows
must match the packed 2D counter expression under *both* spectrum
layouts, and the 3D plan's call structure must match the closed-form
rank-generic predictor.
"""

import numpy as np
import pytest

from repro.baselines.ndops import lift_1d_shape
from repro.core import multichannel as mc
from repro.core.ndim import (
    clear_ndplan_cache,
    conv1d_polyhankel,
    conv3d_polyhankel,
)
from repro.observe import tracing
from repro.observe.registry import counters, fft_call_totals
from repro.perfmodel.engine import (
    predict_fft_counters,
    predict_fft_counters_nd,
)
from repro.utils.shapes import ConvShapeNd


def _trace_counters(call):
    call()  # warm every cache: plan, spectrum, scratch
    counters.clear("fft.")
    with tracing():
        call()
    totals = fft_call_totals()
    return {
        "fft_calls": sum(v["calls"] for v in totals.values()),
        "fft_rows": sum(v["rows"] for v in totals.values()),
        "by_kind": {k: v["calls"] for k, v in sorted(totals.items())},
    }


@pytest.mark.parametrize("layout", ["planar", "interleaved"])
def test_conv1d_rows_match_packed_expression(layout):
    """The 1D op rides the 2D engine's caches: steady state re-transforms
    only the activations, and the row count follows the packed counter
    expression of the lifted shape — for the forced layout too."""
    rng = np.random.default_rng(3)
    x = rng.standard_normal((4, 6, 64))
    w = rng.standard_normal((8, 6, 5))
    params = dict(padding=2, stride=1, dilation=1, groups=1)

    mc.clear_plan_cache()
    mc.clear_spectrum_cache()
    got = _trace_counters(
        lambda: conv1d_polyhankel(x, w, layout=layout, **params))

    lifted = lift_1d_shape(ConvShapeNd.from_tensors(x.shape, w.shape,
                                                    **params))
    assert got == predict_fft_counters(lifted, "sum", layout)


def test_conv1d_strided_grouped_rows_match():
    rng = np.random.default_rng(5)
    x = rng.standard_normal((2, 4, 47))
    w = rng.standard_normal((4, 2, 3))
    params = dict(padding=(2, 0), stride=2, dilation=2, groups=2)

    mc.clear_plan_cache()
    mc.clear_spectrum_cache()
    got = _trace_counters(lambda: conv1d_polyhankel(x, w, **params))

    lifted = lift_1d_shape(ConvShapeNd.from_tensors(x.shape, w.shape,
                                                    **params))
    layout = mc.get_plan(lifted).layout
    assert got == predict_fft_counters(lifted, "sum", layout)


def test_conv3d_call_structure_matches_nd_predictor():
    """The rank-3 plan transforms the kernel every call (no spectrum
    cache by design) — exactly the 3-call structure the nd predictor
    encodes."""
    rng = np.random.default_rng(7)
    x = rng.standard_normal((2, 3, 6, 8, 7))
    w = rng.standard_normal((4, 3, 2, 3, 2))
    params = dict(padding=1, stride=1, dilation=1, groups=1)

    clear_ndplan_cache()
    got = _trace_counters(lambda: conv3d_polyhankel(x, w, **params))

    shape = ConvShapeNd.from_tensors(x.shape, w.shape, **params)
    assert got == predict_fft_counters_nd(shape)
