"""Live-traffic safety of the online selection bandit.

The load-bearing property: **a shadow execution can never alter a served
result** — not when it is slow, not when it raises, not even when its
output is deliberately corrupted.  The hypothesis test poisons every
shadow and asserts bit-equality against a bandit-off run of the same
request; the server tests run the same contract through a real
:class:`~repro.serve.api.ConvServer`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observe.registry import counters, serve_stats
from repro.selection.bandit import (
    BanditConfig,
    active_bandit,
    disable_bandit,
    enable_bandit,
    set_shadow_chaos,
)
from repro.serve.pool import execute_conv


@pytest.fixture(autouse=True)
def bandit_hygiene():
    counters.clear("selection.")
    disable_bandit()
    set_shadow_chaos(None)
    yield
    counters.clear("selection.")
    disable_bandit()
    set_shadow_chaos(None)


def conv_inputs(seed: int, n: int, c: int, f: int, size: int, kernel: int):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, c, size, size))
    w = rng.standard_normal((f, c, kernel, kernel))
    return x, w


class TestPoisonedShadowProperty:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2 ** 16),
           n=st.integers(1, 3),
           size=st.sampled_from([6, 8, 11]),
           kernel=st.sampled_from([1, 3]),
           offset=st.floats(-1e6, 1e6, allow_nan=False))
    def test_poisoned_shadow_never_alters_served_result(
            self, seed, n, size, kernel, offset):
        x, w = conv_inputs(seed, n, 2, 3, size, kernel)
        disable_bandit()
        reference = execute_conv(x, w, padding=1)
        # Shadow-only mode with exploration forced on every request and
        # every shadow output corrupted before its parity check.
        enable_bandit(BanditConfig(apply=False, explore_fraction=1.0,
                                   min_obs=10 ** 9))
        set_shadow_chaos(lambda out: out + offset)
        try:
            served = execute_conv(x, w, padding=1)
        finally:
            set_shadow_chaos(None)
            disable_bandit()
        assert np.array_equal(reference, served)

    def test_raising_shadow_never_alters_served_result(self):
        x, w = conv_inputs(0, 2, 3, 4, 10, 3)
        disable_bandit()
        reference = execute_conv(x, w, padding=1)
        enable_bandit(BanditConfig(apply=False, explore_fraction=1.0,
                                   min_obs=10 ** 9))

        def explode(out):
            raise RuntimeError("chaos: shadow output hook")

        set_shadow_chaos(explode)
        try:
            # An exception anywhere in the shadow path must be absorbed
            # into a counter, never surfaced to the caller.
            served = execute_conv(x, w, padding=1)
        finally:
            set_shadow_chaos(None)
        assert np.array_equal(reference, served)
        assert counters.total("selection.shadow_error") >= 1

    def test_parity_failures_poison_and_stop_the_arm(self):
        x, w = conv_inputs(1, 1, 2, 2, 8, 3)
        enable_bandit(BanditConfig(apply=False, explore_fraction=1.0,
                                   min_obs=10 ** 9,
                                   max_parity_failures=1))
        set_shadow_chaos(lambda out: out + 1e3)
        try:
            for _ in range(12):
                execute_conv(x, w, padding=1)
        finally:
            set_shadow_chaos(None)
        # One failure per non-primary arm, then the arms are poisoned
        # and exploration of them stops for good.
        fails = counters.total("selection.shadow_parity_fail")
        poisoned = counters.total("selection.arm_poisoned")
        assert fails == poisoned
        assert 0 < poisoned <= 3


class TestServedCorrectness:
    def test_shadow_mode_server_output_bit_exact(self):
        from repro.serve.api import ConvServer

        x, w = conv_inputs(2, 2, 3, 4, 12, 3)
        with ConvServer(max_batch=4, workers=1) as server:
            reference = server.conv2d(x, w, padding=1)
        enable_bandit(BanditConfig(apply=False, explore_fraction=1.0,
                                   min_obs=10 ** 9))
        with ConvServer(max_batch=4, workers=1) as server:
            served = server.conv2d(x, w, padding=1)
        assert np.array_equal(reference, served)

    def test_apply_mode_result_matches_reference(self):
        from repro.baselines.registry import convolve

        x, w = conv_inputs(3, 2, 3, 4, 10, 3)
        expected = convolve(x, w, algorithm="naive", padding=1)
        enable_bandit(BanditConfig(apply=True, explore_fraction=0.5,
                                   min_obs=2))
        for _ in range(10):
            out = execute_conv(x, w, padding=1)
            assert np.allclose(out, expected)
        bandit = active_bandit()
        stats = bandit.stats()
        assert stats["decisions"] == 10
        assert stats["keys"], "no key learned from live traffic"

    def test_serve_stats_surface_selection_block(self):
        x, w = conv_inputs(4, 1, 2, 2, 8, 3)
        assert "selection" not in serve_stats() \
            or serve_stats()["selection"]["decisions"] >= 0
        enable_bandit(BanditConfig(apply=True, explore_fraction=0.0))
        execute_conv(x, w, padding=1)
        stats = serve_stats()
        assert "selection" in stats
        assert stats["selection"]["decisions"] >= 1

    def test_table_persisted_on_server_close(self, tmp_path):
        from repro.selection.bandit import load_table
        from repro.serve.api import ConvServer

        path = str(tmp_path / "table.json")
        x, w = conv_inputs(5, 2, 2, 3, 10, 3)
        enable_bandit(BanditConfig(apply=True, explore_fraction=0.0,
                                   table_path=path))
        with ConvServer(max_batch=4, workers=1) as server:
            server.conv2d(x, w, padding=1)
        payload = load_table(path)
        assert payload is not None
        assert payload["keys"], "served key missing from persisted table"
