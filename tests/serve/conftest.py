"""Serve-suite fixtures: cluster hygiene enforcement.

The session-scoped autouse fixture below is the local twin of the CI
leak-check step: after the serve tests run, no cluster worker process and
no ``/dev/shm`` arena segment may survive.  A leaked segment would
accumulate across CI runs on a shared runner until ``/dev/shm`` fills;
a leaked child would keep the runner's job alive past its timeout.
"""

import multiprocessing
import os
import time

import pytest

from repro.serve.shm import ARENA_PREFIX


def _arena_segments() -> list[str]:
    if not os.path.isdir("/dev/shm"):
        return []
    return sorted(f for f in os.listdir("/dev/shm")
                  if f.startswith(ARENA_PREFIX))


@pytest.fixture(scope="session", autouse=True)
def no_cluster_leaks():
    """Assert the serve session leaves no orphan process or shm segment."""
    before = set(_arena_segments())
    yield
    # Give just-closed servers a grace window to reap their children.
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        children = multiprocessing.active_children()  # join()s the dead
        if not children:
            break
        time.sleep(0.1)
    children = multiprocessing.active_children()
    assert not children, (
        f"cluster worker processes survived the test session: "
        f"{[(c.name, c.pid) for c in children]}")
    leaked = set(_arena_segments()) - before
    assert not leaked, (
        f"shared-memory arena segments survived the test session: "
        f"{sorted(leaked)}")
