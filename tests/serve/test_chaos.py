"""Cluster-level chaos: liveness watchdog, fault drills, heartbeats.

Everything here runs real worker processes; the injected faults fire at
the real hook sites (worker request loop, router slot accounting), so
the recovery path under test is the one production traffic would take.
The standing contracts: answers that complete are bit-exact, no future
is ever lost or resolved twice, and recovery is bounded by the
configured watchdog cadence — not by luck.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.guard import faults
from repro.nn import functional as F
from repro.observe.registry import counters
from repro.serve.overload import ServeConfig
from repro.serve.router import ClusterServer
from repro.serve.shm import TensorArena

#: Watchdog tuned for test speed: ~2s detection, fast retries.  The
#: stall timeout stays comfortably above a cold replica's first-conv
#: latency under CI contention — a tighter value would let the watchdog
#: quarantine healthy-but-warming replicas and flake the suite.
FAST = ServeConfig(watchdog_interval_s=0.2, stall_timeout_s=1.5,
                   backoff_base_s=0.01, backoff_cap_s=0.1)


def make_server(**kw):
    kw.setdefault("workers", 2)
    kw.setdefault("slots", 8)
    kw.setdefault("slot_bytes", 1 << 18)
    kw.setdefault("config", FAST)
    return ClusterServer(**kw)


class TestHeartbeats:
    def test_arena_heartbeat_roundtrip(self):
        with TensorArena(slots=1, slot_bytes=64, heartbeats=3) as arena:
            blank = arena.read_heartbeat(1)
            assert blank == {"generation": 0, "stamp": 0.0, "pid": 0}
            before = time.monotonic()
            arena.beat(1, generation=4)
            record = arena.read_heartbeat(1)
            assert record["generation"] == 4
            assert record["pid"] == os.getpid()
            assert before <= record["stamp"] <= time.monotonic()
            # Other records untouched.
            assert arena.read_heartbeat(0)["stamp"] == 0.0

    def test_heartbeat_index_bounds(self):
        with TensorArena(slots=1, slot_bytes=64, heartbeats=2) as arena:
            with pytest.raises(IndexError):
                arena.beat(2, generation=1)
            with pytest.raises(IndexError):
                arena.read_heartbeat(-1)

    def test_workers_stamp_their_generation(self, rng):
        """After serving, every replica's heartbeat carries the current
        spawn generation and the worker's own pid."""
        x = rng.standard_normal((1, 3, 8, 8))
        w = rng.standard_normal((2, 3, 3, 3))
        with make_server() as server:
            server.conv2d(x, w, padding=1, timeout=30)
            pids = server.worker_pids()
            for replica_id, pid in enumerate(pids):
                record = server._arena.read_heartbeat(replica_id)
                assert record["generation"] == 1
                assert record["pid"] == pid
                assert record["stamp"] > 0.0


class TestWatchdog:
    def test_sigstopped_worker_is_killed_and_work_reroutes(self, rng):
        """A replica frozen mid-service (SIGSTOP: no heartbeat, no
        reply) is quarantined within the watchdog cadence and its
        in-flight request completes bit-exactly on a peer."""
        x = rng.standard_normal((1, 3, 8, 8))
        w = rng.standard_normal((2, 3, 3, 3))
        ref = F.conv2d(x, w, padding=1)
        with make_server() as server:
            server.conv2d(x, w, padding=1, timeout=30)  # warm both
            before = int(counters.total("serve.cluster.stalls"))
            victim = server.worker_pids()[0]
            os.kill(victim, signal.SIGSTOP)
            try:
                start = time.monotonic()
                futures = [server.submit(x, w, padding=1)
                           for _ in range(4)]
                outs = [f.result(30) for f in futures]
                elapsed = time.monotonic() - start
            finally:
                try:
                    os.kill(victim, signal.SIGCONT)
                except ProcessLookupError:
                    pass  # watchdog already reaped it
            for out in outs:
                np.testing.assert_array_equal(out, ref)
            # Bounded recovery: a stall + watchdog scan + respawned
            # dispatch, with generous CI slack.
            assert elapsed < 15.0
            assert int(counters.total("serve.cluster.stalls")) \
                >= before + 1

    def test_idle_workers_are_never_quarantined(self, rng):
        """Idleness ages the heartbeat but carries no in-flight work:
        several watchdog cadences later both replicas still stand."""
        x = rng.standard_normal((1, 3, 8, 8))
        w = rng.standard_normal((2, 3, 3, 3))
        with make_server() as server:
            server.conv2d(x, w, padding=1, timeout=30)
            pids = server.worker_pids()
            before = int(counters.total("serve.cluster.stalls"))
            # Long enough that idle heartbeats age past the stall
            # timeout across several watchdog scans.
            time.sleep(FAST.stall_timeout_s + 5 * FAST.watchdog_interval_s)
            assert server.worker_pids() == pids
            assert int(counters.total("serve.cluster.stalls")) == before


class TestFaultDrills:
    def _problem(self, rng, n=8):
        w = rng.standard_normal((2, 3, 3, 3))
        xs = [rng.standard_normal((1, 3, 8, 8)) for _ in range(n)]
        refs = [F.conv2d(x, w, padding=1) for x in xs]
        return xs, w, refs

    def _drill(self, server, xs, w, refs):
        """Submit everything, assert exactly-once bit-exact delivery."""
        futures = [server.submit(x, w, padding=1) for x in xs]
        outs = [f.result(60) for f in futures]
        assert all(f.done() for f in futures)
        for out, ref in zip(outs, refs):
            np.testing.assert_array_equal(out, ref)

    def test_worker_stall_recovers(self, rng):
        xs, w, refs = self._problem(rng)
        with make_server() as server:
            server.conv2d(xs[0], w, padding=1, timeout=30)
            acked = server.inject_worker_faults(
                "worker_stall", replica_ids=[0], max_fires=1,
                params={"stall_s": 30.0})
            assert acked == [0]
            self._drill(server, xs, w, refs)

    def test_response_drop_recovers(self, rng):
        xs, w, refs = self._problem(rng)
        with make_server() as server:
            server.conv2d(xs[0], w, padding=1, timeout=30)
            acked = server.inject_worker_faults(
                "response_drop", replica_ids=[0], max_fires=1)
            assert acked == [0]
            self._drill(server, xs, w, refs)

    def test_slow_worker_stays_correct_and_unquarantined(self, rng):
        xs, w, refs = self._problem(rng)
        with make_server() as server:
            server.conv2d(xs[0], w, padding=1, timeout=30)
            before = int(counters.total("serve.cluster.stalls"))
            acked = server.inject_worker_faults(
                "slow_worker", params={"delay_s": 0.02})
            assert acked == [0, 1]
            self._drill(server, xs, w, refs)
            server.clear_worker_faults()
            assert int(counters.total("serve.cluster.stalls")) == before

    def test_slot_leak_serves_on_remaining_capacity(self, rng):
        xs, w, refs = self._problem(rng)
        with make_server(slots=16) as server:
            server.conv2d(xs[0], w, padding=1, timeout=30)
            before = int(counters.total("serve.cluster.slot_leaks"))
            with faults.inject("slot_leak", max_fires=1):
                self._drill(server, xs, w, refs)
            assert int(counters.total("serve.cluster.slot_leaks")) > before

    def test_inject_requires_known_kind_and_acks(self, rng):
        x = rng.standard_normal((1, 3, 8, 8))
        w = rng.standard_normal((2, 3, 3, 3))
        with make_server() as server:
            server.conv2d(x, w, padding=1, timeout=30)
            with pytest.raises(Exception, match="unknown fault"):
                server.inject_worker_faults("not_a_fault")
            # A real kind arms, acks, clears — and serving continues.
            assert server.inject_worker_faults(
                "slow_worker", params={"delay_s": 0.0}) == [0, 1]
            assert server.clear_worker_faults() == [0, 1]
            np.testing.assert_array_equal(
                server.conv2d(x, w, padding=1, timeout=30),
                F.conv2d(x, w, padding=1))
