"""Unit tests for shard splitting, reassembly and the worker pool."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.serve import WorkerPool, execute_conv, make_request, shard_splits
from tests.conftest import naive_conv2d_reference


class TestShardSplits:
    @pytest.mark.parametrize("n,groups,parts", [
        (1, 1, 1), (8, 1, 4), (3, 1, 8), (2, 4, 8), (5, 3, 7), (16, 2, 3),
    ])
    def test_cover_exactly_once(self, n, groups, parts):
        covered = np.zeros((n, groups), dtype=int)
        for batch_slice, (g_lo, g_hi) in shard_splits(n, groups, parts):
            covered[batch_slice, g_lo:g_hi] += 1
        assert np.array_equal(covered, np.ones((n, groups), dtype=int))

    def test_at_most_parts_shards(self):
        for n, groups, parts in [(8, 1, 4), (2, 4, 8), (5, 3, 7)]:
            assert len(shard_splits(n, groups, parts)) <= parts

    def test_single_part_is_whole_problem(self):
        assert shard_splits(5, 3, 1) == [(slice(0, 5), (0, 3))]

    def test_batch_axis_cut_first(self):
        # With enough batch rows, the group axis is never cut.
        for batch_slice, (g_lo, g_hi) in shard_splits(8, 4, 4):
            assert (g_lo, g_hi) == (0, 4)

    def test_groups_absorb_leftover_parallelism(self):
        splits = shard_splits(2, 4, 8)
        assert len(splits) == 8
        assert all(g_hi - g_lo == 1 for _, (g_lo, g_hi) in splits)

    def test_invalid_arguments(self):
        for n, groups, parts in [(0, 1, 1), (1, 0, 1), (1, 1, 0)]:
            with pytest.raises(ValueError):
                shard_splits(n, groups, parts)


class TestExecuteConv:
    def test_matches_functional(self, rng):
        x = rng.standard_normal((2, 3, 8, 8))
        w = rng.standard_normal((4, 3, 3, 3))
        out = execute_conv(x, w, padding=1)
        assert np.array_equal(out, F.conv2d(x, w, padding=1))

    def test_non_polyhankel_algorithm(self, rng):
        # strategy/backend must not leak into algorithms that reject them.
        x = rng.standard_normal((1, 2, 6, 6))
        w = rng.standard_normal((2, 2, 3, 3))
        out = execute_conv(x, w, algorithm="gemm", strategy="hybrid",
                           backend="numpy")
        np.testing.assert_allclose(out, naive_conv2d_reference(x, w),
                                   atol=1e-10)

    def test_guarded_path_matches(self, rng):
        from repro.guard.state import guarded

        x = rng.standard_normal((1, 3, 8, 8))
        w = rng.standard_normal((2, 3, 3, 3))
        plain = execute_conv(x, w, padding=1)
        with guarded():
            supervised = execute_conv(x, w, padding=1,
                                      breaker_key=("test", "scope"))
        assert np.array_equal(plain, supervised)


class TestWorkerPool:
    def test_sharded_request_bit_exact(self, rng):
        pool = WorkerPool(workers=3, mode="thread")
        try:
            x = rng.standard_normal((5, 3, 8, 8))
            w = rng.standard_normal((4, 3, 3, 3))
            request = make_request(x, w, padding=1)
            out = pool.run_request(request)
            assert np.array_equal(out, F.conv2d(x, w, padding=1))
        finally:
            pool.close()

    def test_group_sharding_bit_exact(self, rng):
        pool = WorkerPool(workers=4, mode="thread")
        try:
            x = rng.standard_normal((2, 4, 8, 8))
            w = rng.standard_normal((4, 2, 3, 3))
            bias = rng.standard_normal(4)
            request = make_request(x, w, bias, padding=1, groups=2)
            out = pool.run_request(request)
            expected = F.conv2d(x, w, bias, padding=1, groups=2)
            assert np.array_equal(out, expected)
        finally:
            pool.close()

    def test_resolve_sets_result(self, rng):
        pool = WorkerPool(workers=2, mode="thread")
        try:
            x = rng.standard_normal((3, 3, 8, 8))
            w = rng.standard_normal((2, 3, 3, 3))
            request = make_request(x, w, padding=1)
            pool.resolve(request)
            assert np.array_equal(request.future.result(timeout=5),
                                  F.conv2d(x, w, padding=1))
        finally:
            pool.close()

    def test_resolve_carries_exception(self, rng):
        pool = WorkerPool(workers=1, mode="thread")
        try:
            x = rng.standard_normal((1, 3, 8, 8))
            w = rng.standard_normal((2, 3, 3, 3))
            request = make_request(x, w, algorithm="no-such-algorithm")
            pool.resolve(request)  # must not raise
            with pytest.raises(Exception):
                request.future.result(timeout=5)
        finally:
            pool.close()

    def test_shard_counter(self, rng):
        from repro.observe.registry import counters

        counters.clear("serve.shards")
        pool = WorkerPool(workers=3, mode="thread")
        try:
            x = rng.standard_normal((6, 3, 8, 8))
            w = rng.standard_normal((2, 3, 3, 3))
            pool.run_request(make_request(x, w, padding=1))
            assert counters.total("serve.shards") == 3
        finally:
            pool.close()
            counters.clear("serve.shards")

    def test_close_idempotent_and_reusable(self, rng):
        pool = WorkerPool(workers=2, mode="thread")
        pool.close()
        pool.close()
        x = rng.standard_normal((4, 3, 8, 8))
        w = rng.standard_normal((2, 3, 3, 3))
        out = pool.run_request(make_request(x, w, padding=1))
        assert np.array_equal(out, F.conv2d(x, w, padding=1))
        pool.close()

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            WorkerPool(workers=1, mode="greenlet")

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            WorkerPool(workers=-1)

    def test_workers_env_knob(self, monkeypatch):
        from repro.serve.pool import WORKERS_ENV, default_workers

        monkeypatch.setenv(WORKERS_ENV, "7")
        assert default_workers() == 7
        monkeypatch.setenv(WORKERS_ENV, "not-a-number")
        assert default_workers() >= 1


@pytest.mark.slow
class TestProcessPool:
    def test_process_mode_bit_exact(self, rng):
        pool = WorkerPool(workers=2, mode="process")
        try:
            x = rng.standard_normal((4, 3, 8, 8))
            w = rng.standard_normal((2, 3, 3, 3))
            request = make_request(x, w, padding=1)
            out = pool.run_request(request)
            assert np.array_equal(out, F.conv2d(x, w, padding=1))
        finally:
            pool.close()

    def test_process_mode_guarded(self, rng):
        from repro.guard.state import guarded

        pool = WorkerPool(workers=2, mode="process")
        try:
            x = rng.standard_normal((4, 3, 8, 8))
            w = rng.standard_normal((2, 3, 3, 3))
            with guarded():
                out = pool.run_request(make_request(x, w, padding=1))
            assert np.array_equal(out, F.conv2d(x, w, padding=1))
        finally:
            pool.close()
