"""Concurrency stress test for the serving layer (ISSUE satellite).

Several client threads hammer one server with mixed-shape requests and
the suite asserts the three serving guarantees at once:

1. **bit-exactness** — every served result equals the sequential
   ``conv2d`` answer for the same arguments, byte for byte;
2. **no starvation** — no request waits in the queue longer than
   ``max_wait_ms`` plus a generous scheduling tolerance;
3. **accounting** — the observe counters sum to exactly the number of
   requests submitted (every request counted, none double-counted).
"""

import threading
import time

import numpy as np
import pytest

from repro.nn import functional as F
from repro.observe.registry import counters
from repro.serve import ConvServer

THREADS = 6
REQUESTS_PER_THREAD = 20
MAX_WAIT_MS = 25.0
# Generous: the deadline only bounds queue wait, and on a busy one-core
# box a dispatch-ready request can sit behind the GIL and the engine
# call itself for a while before its future resolves.
TOLERANCE_MS = 2_000.0


@pytest.fixture
def workload(rng):
    """Shared weights (so requests can coalesce) and per-shape params."""
    shapes = [
        # (CHW, weight FCKK, padding, groups)
        ((3, 8, 8), (4, 3, 3, 3), 1, 1),
        ((3, 12, 12), (2, 3, 3, 3), 0, 1),
        ((4, 8, 8), (4, 2, 3, 3), 1, 2),
    ]
    families = []
    for chw, wshape, padding, groups in shapes:
        weight = rng.standard_normal(wshape)
        bias = rng.standard_normal(wshape[0])
        families.append((chw, weight, bias, padding, groups))
    return families


def test_concurrent_mixed_shapes_bit_exact(rng, workload):
    total = THREADS * REQUESTS_PER_THREAD
    counters.clear("serve.")
    results = [None] * THREADS
    errors = []

    def client(tid):
        local = np.random.default_rng(1000 + tid)
        mine = []
        try:
            for i in range(REQUESTS_PER_THREAD):
                chw, weight, bias, padding, groups = \
                    workload[(tid + i) % len(workload)]
                x = local.standard_normal((1,) + chw)
                submitted = time.monotonic()
                future = server.submit(x, weight, bias, padding=padding,
                                       groups=groups)
                out = future.result(timeout=30)
                latency_ms = (time.monotonic() - submitted) * 1e3
                mine.append((x, weight, bias, padding, groups, out,
                             latency_ms))
            results[tid] = mine
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append((tid, exc))

    with ConvServer(max_batch=4, max_wait_ms=MAX_WAIT_MS,
                    workers=1) as server:
        threads = [threading.Thread(target=client, args=(tid,))
                   for tid in range(THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not any(t.is_alive() for t in threads), "client hung"
        snapshot = server.stats()

    assert not errors, f"client failures: {errors}"

    # (1) Bit-exact against the sequential engine, request by request.
    for mine in results:
        assert mine is not None
        for x, weight, bias, padding, groups, out, _ in mine:
            expected = F.conv2d(x, weight, bias, padding=padding,
                                groups=groups)
            assert np.array_equal(out, expected)

    # (2) No request starved past the deadline plus tolerance.
    worst_ms = max(latency for mine in results
                   for *_, latency in mine)
    assert worst_ms <= MAX_WAIT_MS + TOLERANCE_MS, (
        f"worst request latency {worst_ms:.1f}ms exceeds deadline "
        f"{MAX_WAIT_MS}ms + tolerance {TOLERANCE_MS}ms")

    # (3) Counters sum to exactly the submitted request count.
    assert snapshot["requests"] == total
    assert counters.total("serve.batch_size") == total
    assert 1 <= snapshot["batches"] <= total
    assert 0 <= snapshot["coalesced"] <= total
    # Mean queue wait cannot exceed the deadline by more than scheduling
    # noise: the dispatcher pops groups as soon as they are due.
    if snapshot["mean_queue_wait_ms"] is not None:
        assert snapshot["mean_queue_wait_ms"] < MAX_WAIT_MS + TOLERANCE_MS

    counters.clear("serve.")


def test_concurrent_burst_coalesces(rng):
    """All clients share one family: the server must actually batch."""
    counters.clear("serve.")
    weight = rng.standard_normal((2, 3, 3, 3))
    images = [rng.standard_normal((1, 3, 8, 8)) for _ in range(24)]
    barrier = threading.Barrier(THREADS)
    outs = [None] * len(images)

    def client(tid):
        barrier.wait()
        for i in range(tid, len(images), THREADS):
            outs[i] = server.submit(images[i], weight,
                                    padding=1).result(timeout=30)

    with ConvServer(max_batch=8, max_wait_ms=MAX_WAIT_MS,
                    workers=1) as server:
        threads = [threading.Thread(target=client, args=(tid,))
                   for tid in range(THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        stats = server.stats()

    for out, x in zip(outs, images):
        assert out is not None
        assert np.array_equal(out, F.conv2d(x, weight, padding=1))
    assert stats["requests"] == len(images)
    # With one key and a simultaneous burst, at least some requests must
    # have shared a dispatch (24 lone batches would mean no batching).
    assert stats["batches"] < len(images)
    assert stats["coalesced"] >= 2
    counters.clear("serve.")
