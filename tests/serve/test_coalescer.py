"""Unit tests for coalescing keys, request wrapping and stack/split."""

import numpy as np
import pytest

from repro.serve import (
    coalesce_key,
    make_request,
    split_result,
    stack_requests,
)


@pytest.fixture
def problem(rng):
    x = rng.standard_normal((2, 3, 8, 8))
    w = rng.standard_normal((4, 3, 3, 3))
    return x, w


class TestCoalesceKey:
    def test_same_arguments_same_key(self, problem):
        x, w = problem
        assert coalesce_key(x, w) == coalesce_key(x, w)

    def test_key_is_hashable(self, problem):
        x, w = problem
        assert len({coalesce_key(x, w), coalesce_key(x, w)}) == 1

    def test_batch_size_excluded(self, problem, rng):
        x, w = problem
        bigger = rng.standard_normal((7,) + x.shape[1:])
        assert coalesce_key(x, w) == coalesce_key(bigger, w)

    def test_image_geometry_included(self, problem, rng):
        x, w = problem
        other = rng.standard_normal((2, 3, 10, 10))
        assert coalesce_key(x, w) != coalesce_key(other, w)

    def test_weight_identity_not_equality(self, problem):
        x, w = problem
        assert coalesce_key(x, w) != coalesce_key(x, w.copy())

    def test_bias_identity(self, problem, rng):
        x, w = problem
        bias = rng.standard_normal(4)
        assert coalesce_key(x, w, bias) == coalesce_key(x, w, bias)
        assert coalesce_key(x, w, bias) != coalesce_key(x, w, bias.copy())
        assert coalesce_key(x, w, bias) != coalesce_key(x, w, None)

    def test_uniform_pair_spellings_coalesce(self, problem):
        x, w = problem
        assert coalesce_key(x, w, stride=2) == coalesce_key(x, w,
                                                            stride=(2, 2))
        assert coalesce_key(x, w, dilation=(1, 1)) == coalesce_key(x, w)

    def test_nonuniform_pair_preserved(self, problem):
        x, w = problem
        assert coalesce_key(x, w, stride=(2, 1)) != coalesce_key(x, w,
                                                                 stride=2)

    def test_padding_spellings_coalesce(self, problem):
        x, w = problem
        uniform = coalesce_key(x, w, padding=1)
        assert coalesce_key(x, w, padding=(1, 1)) == uniform
        assert coalesce_key(x, w, padding=(1, 1, 1, 1)) == uniform
        assert coalesce_key(x, w, padding=[1, 1]) == uniform

    def test_asymmetric_padding_preserved(self, problem):
        x, w = problem
        assert (coalesce_key(x, w, padding=(1, 2))
                != coalesce_key(x, w, padding=1))
        assert (coalesce_key(x, w, padding=(1, 2))
                == coalesce_key(x, w, padding=(1, 1, 2, 2)))

    def test_same_padding_string(self, problem):
        x, w = problem
        assert (coalesce_key(x, w, padding="same")
                == coalesce_key(x, w, padding="same"))
        assert (coalesce_key(x, w, padding="same")
                != coalesce_key(x, w, padding=1))

    def test_dtype_separates(self, problem):
        x, w = problem
        assert (coalesce_key(x.astype(np.float32), w)
                != coalesce_key(x, w))

    def test_engine_knobs_separate(self, problem):
        x, w = problem
        base = coalesce_key(x, w)
        assert coalesce_key(x, w, algorithm="gemm") != base
        assert coalesce_key(x, w, strategy="hybrid") != base
        assert coalesce_key(x, w, backend="numpy") != base

    def test_algorithm_enum_normalized(self, problem):
        x, w = problem
        from repro.baselines.registry import ConvAlgorithm

        assert (coalesce_key(x, w, algorithm=ConvAlgorithm.POLYHANKEL)
                == coalesce_key(x, w, algorithm="polyhankel"))


class TestConvRequest:
    def test_batch_recorded(self, problem):
        x, w = problem
        assert make_request(x, w).batch == x.shape[0]

    def test_future_starts_unresolved(self, problem):
        x, w = problem
        assert not make_request(x, w).future.done()

    def test_rejects_non_nchw_input(self, problem):
        _, w = problem
        with pytest.raises(ValueError, match="NCHW"):
            make_request(np.zeros((3, 8, 8)), w)

    def test_rejects_non_4d_weight(self, problem):
        x, _ = problem
        with pytest.raises(ValueError, match="weight"):
            make_request(x, np.zeros((3, 3)))


class TestStackSplit:
    def test_round_trip_bit_exact(self, rng):
        w = rng.standard_normal((2, 3, 3, 3))
        parts = [rng.standard_normal((n, 3, 8, 8)) for n in (1, 3, 2)]
        requests = [make_request(p, w) for p in parts]
        stacked = stack_requests(requests)
        assert stacked.shape[0] == 6
        pieces = split_result(stacked, requests)
        for piece, part in zip(pieces, parts):
            assert np.array_equal(piece, part)

    def test_single_request_is_passthrough(self, rng):
        w = rng.standard_normal((2, 3, 3, 3))
        request = make_request(rng.standard_normal((2, 3, 8, 8)), w)
        assert stack_requests([request]) is request.x
        out = rng.standard_normal((2, 2, 6, 6))
        assert split_result(out, [request])[0] is out

    def test_split_results_are_contiguous(self, rng):
        w = rng.standard_normal((2, 3, 3, 3))
        requests = [make_request(rng.standard_normal((2, 3, 8, 8)), w)
                    for _ in range(2)]
        out = rng.standard_normal((4, 2, 6, 6))
        for piece in split_result(out, requests):
            assert piece.flags["C_CONTIGUOUS"]
