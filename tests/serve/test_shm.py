"""Unit tests for the shared-memory tensor arena and its control plane."""

import pickle
import threading
import time

import numpy as np
import pytest

from repro.serve.shm import (
    HEADER_DTYPE,
    MAX_DIMS,
    SlotAllocator,
    SlotsExhaustedError,
    TensorArena,
    TornWriteError,
    dumps_control,
)


@pytest.fixture
def arena():
    with TensorArena(slots=4, slot_bytes=1 << 12) as a:
        yield a


class TestArenaRoundTrip:
    def test_preserves_bytes_shape_dtype(self, arena, rng):
        for array in (rng.standard_normal((2, 3, 5, 7)),
                      np.arange(12, dtype=np.int64).reshape(3, 4),
                      np.array(3.5),
                      np.zeros((0, 4))):
            seq = arena.write(1, array)
            out = arena.read(1, seq)
            assert out.dtype == array.dtype
            assert out.shape == array.shape
            np.testing.assert_array_equal(out, array)

    def test_zero_copy_view_aliases_segment(self, arena, rng):
        array = rng.standard_normal((4, 4))
        seq = arena.write(0, array)
        view = arena.read(0, seq, copy=False)
        np.testing.assert_array_equal(view, array)
        # A later write to the same slot is visible through the view —
        # it aliases the shared buffer, it is not a snapshot.
        arena.write(0, np.zeros((4, 4)))
        assert not np.any(view)

    def test_copy_survives_slot_recycling(self, arena, rng):
        array = rng.standard_normal((4, 4))
        seq = arena.write(0, array)
        copied = arena.read(0, seq, copy=True)
        arena.write(0, np.zeros((4, 4)))
        np.testing.assert_array_equal(copied, array)

    def test_oversized_tensor_rejected(self, arena):
        with pytest.raises(ValueError, match="does not fit"):
            arena.write(0, np.zeros(1 << 12))  # 8x the slot payload

    def test_rank_above_max_dims_rejected(self, arena):
        with pytest.raises(ValueError, match="MAX_DIMS"):
            arena.write(0, np.zeros((1,) * (MAX_DIMS + 1)))

    def test_header_fits_reserved_bytes(self):
        assert HEADER_DTYPE.itemsize <= 128


class TestGenerationCounter:
    def test_wraparound_generations_stay_fresh(self, arena, rng):
        """Recycling one slot many times keeps each read pinned to its
        own generation: the previous generation is always stale."""
        prev_seq = None
        for i in range(12):
            array = np.full((3, 3), float(i))
            seq = arena.write(2, array)
            assert seq % 2 == 0
            np.testing.assert_array_equal(arena.read(2, seq), array)
            if prev_seq is not None:
                assert seq > prev_seq
                with pytest.raises(TornWriteError, match="stale"):
                    arena.read(2, prev_seq)
            prev_seq = seq

    def test_crash_during_write_leaves_torn_marker(self, arena, rng):
        """A writer killed mid-memcpy leaves an odd generation; every
        read refuses the slot instead of consuming the half-written
        payload."""
        array = rng.standard_normal((4, 4))
        seq = arena.write(3, array)
        # Simulate the crash: the seqlock was bumped odd, the payload
        # write never finished, the final even bump never happened.
        header = arena._header(3)
        header["seq"] = seq + 1
        with pytest.raises(TornWriteError, match="odd"):
            arena.read(3, seq)
        with pytest.raises(TornWriteError):
            arena.read(3, seq + 1)

    def test_next_writer_recovers_torn_slot(self, arena, rng):
        """A fresh write over a torn slot re-establishes the even/odd
        protocol and the slot becomes readable again."""
        arena.write(3, rng.standard_normal((2, 2)))
        arena._header(3)["seq"] = int(arena._header(3)["seq"]) + 1  # torn
        array = rng.standard_normal((3, 3))
        seq = arena.write(3, array)
        assert seq % 2 == 0
        np.testing.assert_array_equal(arena.read(3, seq), array)

    def test_stale_read_after_recycle(self, arena, rng):
        first = arena.write(1, rng.standard_normal((2, 2)))
        arena.write(1, rng.standard_normal((2, 2)))
        with pytest.raises(TornWriteError, match="recycled"):
            arena.read(1, first)


class TestSlotAllocator:
    def test_acquire_release_cycle(self, arena):
        alloc = SlotAllocator(arena)
        slots = [alloc.acquire() for _ in range(4)]
        assert sorted(slots) == [0, 1, 2, 3]
        assert alloc.available() == 0
        alloc.release(*slots)
        assert alloc.available() == 4

    def test_exhaustion_times_out(self, arena):
        alloc = SlotAllocator(arena)
        alloc.acquire_many(4)
        start = time.monotonic()
        with pytest.raises(SlotsExhaustedError):
            alloc.acquire(timeout=0.05)
        assert time.monotonic() - start < 2.0

    def test_blocked_acquire_wakes_on_release(self, arena):
        alloc = SlotAllocator(arena)
        held = alloc.acquire_many(4)
        got = []

        def blocked():
            got.append(alloc.acquire(timeout=5.0))

        thread = threading.Thread(target=blocked)
        thread.start()
        time.sleep(0.05)
        assert not got  # backpressure: the acquirer is parked
        alloc.release(held[0])
        thread.join(5.0)
        assert got == [held[0]]

    def test_acquire_many_is_atomic(self, arena):
        """A pair request never holds one slot while waiting for the
        second — the all-or-nothing guarantee that prevents N submitters
        from deadlocking the arena."""
        alloc = SlotAllocator(arena)
        held = alloc.acquire_many(3)  # 1 slot left
        with pytest.raises(SlotsExhaustedError):
            alloc.acquire_many(2, timeout=0.05)
        # The failed pair request must not have eaten the last slot.
        assert alloc.available() == 1
        alloc.release(*held)

    def test_double_release_rejected(self, arena):
        alloc = SlotAllocator(arena)
        slot = alloc.acquire()
        alloc.release(slot)
        with pytest.raises(RuntimeError, match="double-released"):
            alloc.release(slot)

    def test_close_wakes_blocked_acquirers(self, arena):
        alloc = SlotAllocator(arena)
        alloc.acquire_many(4)
        errors = []

        def blocked():
            try:
                alloc.acquire(timeout=30.0)
            except SlotsExhaustedError as exc:
                errors.append(exc)

        thread = threading.Thread(target=blocked)
        thread.start()
        time.sleep(0.05)
        alloc.close()
        thread.join(5.0)
        assert len(errors) == 1

    def test_requesting_more_than_arena_rejected(self, arena):
        alloc = SlotAllocator(arena)
        with pytest.raises(ValueError, match="cannot acquire"):
            alloc.acquire_many(5)


class TestControlPlanePickleFree:
    """The acceptance contract: tensors never travel by pickle.

    The control plane *refuses* ndarrays structurally — an array reaching
    ``dumps_control`` raises before any ``__reduce__`` runs, so the
    serialization path the arena exists to remove cannot silently return.
    """

    def test_plain_messages_round_trip(self):
        msg = {"kind": "conv", "req": 7, "in_slot": 2, "in_seq": 4,
               "params": {"padding": 1, "stride": (2, 1)}}
        assert pickle.loads(dumps_control(msg)) == msg

    def test_ndarray_payload_rejected(self):
        with pytest.raises(TypeError, match="shared-memory arena"):
            dumps_control({"kind": "conv", "payload": np.zeros(4)})

    def test_nested_ndarray_rejected(self):
        with pytest.raises(TypeError, match="not pickle"):
            dumps_control({"a": [1, {"b": (np.ones(2),)}]})

    def test_ndarray_reduce_never_invoked(self):
        """No ndarray ``__reduce__``/``__reduce_ex__`` runs on the control
        plane — the refusal happens structurally before serialization."""
        calls = []

        class SpyArray(np.ndarray):
            def __reduce__(self):
                calls.append(("reduce", self.shape))
                return super().__reduce__()

            def __reduce_ex__(self, protocol):
                calls.append(("reduce_ex", self.shape))
                return super().__reduce_ex__(protocol)

        spy = np.zeros(3).view(SpyArray)
        with pytest.raises(TypeError):
            dumps_control({"payload": spy})
        assert calls == []


class TestArenaLifecycle:
    def test_attach_sees_creator_writes(self, rng):
        with TensorArena(slots=2, slot_bytes=1 << 10) as owner:
            array = rng.standard_normal((3, 3))
            seq = owner.write(0, array)
            attached = TensorArena.attach(owner.name, 2, 1 << 10)
            try:
                np.testing.assert_array_equal(attached.read(0, seq), array)
            finally:
                attached.close()

    def test_close_is_idempotent(self):
        arena = TensorArena(slots=1, slot_bytes=64)
        arena.close()
        arena.close()

    def test_owner_unlinks_on_close(self):
        import os

        arena = TensorArena(slots=1, slot_bytes=64)
        name = arena.name.lstrip("/")
        if os.path.isdir("/dev/shm"):
            assert name in os.listdir("/dev/shm")
        arena.close()
        if os.path.isdir("/dev/shm"):
            assert name not in os.listdir("/dev/shm")
