"""Unit tests for the dynamic-batching queue's triggers and lifecycle."""

import threading
import time

import numpy as np
import pytest

from repro.serve import BatchingQueue, make_request


def _resolve_all(batches):
    """Executor callback that records batches and resolves futures."""
    def execute(batch):
        batches.append(batch)
        for request in batch:
            request.future.set_result(request.x)
    return execute


@pytest.fixture
def weight(rng):
    return rng.standard_normal((2, 3, 3, 3))


def request_of(rng, weight, n=1):
    return make_request(rng.standard_normal((n, 3, 8, 8)), weight)


class TestSizeTrigger:
    def test_full_group_dispatches_inline(self, rng, weight):
        batches = []
        seen_threads = []
        resolve = _resolve_all(batches)

        def execute(batch):
            seen_threads.append(threading.get_ident())
            resolve(batch)
        queue = BatchingQueue(execute, max_batch=3, max_wait_ms=10_000)
        try:
            submitter = threading.get_ident()
            requests = [request_of(rng, weight) for _ in range(3)]
            for r in requests:
                queue.submit(r)
            # Full batch resolved synchronously, long before any deadline.
            assert all(r.future.done() for r in requests)
            assert len(batches) == 1 and len(batches[0]) == 3
            assert seen_threads == [submitter]
        finally:
            queue.close()

    def test_burst_drains_as_full_batches(self, rng, weight):
        batches = []
        queue = BatchingQueue(_resolve_all(batches), max_batch=4,
                              max_wait_ms=50)
        try:
            requests = [request_of(rng, weight) for _ in range(10)]
            for r in requests:
                queue.submit(r)
            for r in requests:
                r.future.result(timeout=5)
            assert sorted(len(b) for b in batches) == [2, 4, 4]
        finally:
            queue.close()

    def test_row_bound_counts_stacked_rows_not_requests(self, rng, weight):
        batches = []
        queue = BatchingQueue(_resolve_all(batches), max_batch=4,
                              max_wait_ms=10_000)
        try:
            # Two 2-row requests fill a 4-row batch.
            a = request_of(rng, weight, n=2)
            b = request_of(rng, weight, n=2)
            queue.submit(a)
            assert not a.future.done()
            queue.submit(b)
            assert a.future.done() and b.future.done()
            assert len(batches) == 1
        finally:
            queue.close()

    def test_oversized_rider_dispatches_alone(self, rng, weight):
        # A 3-row rider cannot join a group holding 2 rows under
        # max_batch=4 without overflowing; FIFO pops the 2-row slice
        # first, then the rider rides its own batch.
        batches = []
        queue = BatchingQueue(_resolve_all(batches), max_batch=4,
                              max_wait_ms=20)
        try:
            first = request_of(rng, weight, n=2)
            rider = request_of(rng, weight, n=3)
            queue.submit(first)
            queue.submit(rider)
            first.future.result(timeout=5)
            rider.future.result(timeout=5)
            assert sorted(len(b) for b in batches) == [1, 1]
        finally:
            queue.close()


class TestDeadlineTrigger:
    def test_lone_request_dispatches_at_deadline(self, rng, weight):
        batches = []
        queue = BatchingQueue(_resolve_all(batches), max_batch=8,
                              max_wait_ms=20)
        try:
            request = request_of(rng, weight)
            start = time.monotonic()
            queue.submit(request)
            request.future.result(timeout=5)
            waited_ms = (time.monotonic() - start) * 1e3
            assert waited_ms >= 15  # honoured (most of) the deadline
            assert len(batches) == 1 and len(batches[0]) == 1
        finally:
            queue.close()

    def test_incompatible_keys_never_share_a_batch(self, rng, weight):
        batches = []
        queue = BatchingQueue(_resolve_all(batches), max_batch=8,
                              max_wait_ms=10)
        try:
            a = request_of(rng, weight)
            b = make_request(rng.standard_normal((1, 3, 8, 8)),
                             weight.copy())  # different weight identity
            queue.submit(a)
            queue.submit(b)
            a.future.result(timeout=5)
            b.future.result(timeout=5)
            assert len(batches) == 2
            assert all(len(b) == 1 for b in batches)
        finally:
            queue.close()


class TestLifecycle:
    def test_close_drains_pending(self, rng, weight):
        batches = []
        queue = BatchingQueue(_resolve_all(batches), max_batch=8,
                              max_wait_ms=60_000)
        request = request_of(rng, weight)
        queue.submit(request)
        queue.close()
        assert request.future.done()

    def test_submit_after_close_raises(self, rng, weight):
        queue = BatchingQueue(_resolve_all([]), max_batch=8)
        queue.close()
        with pytest.raises(RuntimeError, match="closed"):
            queue.submit(request_of(rng, weight))

    def test_close_is_idempotent(self):
        queue = BatchingQueue(_resolve_all([]), max_batch=8)
        queue.close()
        queue.close()

    def test_pending_count(self, rng, weight):
        queue = BatchingQueue(_resolve_all([]), max_batch=8,
                              max_wait_ms=60_000)
        try:
            assert queue.pending_count() == 0
            queue.submit(request_of(rng, weight))
            assert queue.pending_count() == 1
        finally:
            queue.close()

    def test_executor_exception_fails_futures(self, rng, weight):
        def explode(batch):
            raise RuntimeError("engine fault")
        queue = BatchingQueue(explode, max_batch=2, max_wait_ms=10)
        try:
            a = request_of(rng, weight)
            b = request_of(rng, weight)
            queue.submit(a)
            queue.submit(b)
            with pytest.raises(RuntimeError, match="engine fault"):
                a.future.result(timeout=5)
            with pytest.raises(RuntimeError, match="engine fault"):
                b.future.result(timeout=5)
        finally:
            queue.close()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="max_batch"):
            BatchingQueue(_resolve_all([]), max_batch=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            BatchingQueue(_resolve_all([]), max_wait_ms=-1)


class TestCounters:
    def test_dispatch_counters(self, rng, weight):
        from repro.observe.registry import counters

        counters.clear("serve.")
        queue = BatchingQueue(_resolve_all([]), max_batch=2,
                              max_wait_ms=10)
        try:
            a = request_of(rng, weight)
            b = request_of(rng, weight)
            queue.submit(a)
            queue.submit(b)
            a.future.result(timeout=5)
            assert counters.total("serve.batches") == 1
            assert counters.total("serve.batch_size") == 2
            assert counters.total("serve.coalesced") == 2
            assert counters.total("serve.queue_wait_ms") >= 0
        finally:
            queue.close()
            counters.clear("serve.")

    def test_lone_dispatch_not_counted_coalesced(self, rng, weight):
        from repro.observe.registry import counters

        counters.clear("serve.")
        queue = BatchingQueue(_resolve_all([]), max_batch=8,
                              max_wait_ms=5)
        try:
            request = request_of(rng, weight)
            queue.submit(request)
            request.future.result(timeout=5)
            assert counters.total("serve.coalesced") == 0
        finally:
            queue.close()
            counters.clear("serve.")


class TestCloseDrainRace:
    """Regressions for the close/inline-dispatch race.

    A full batch dispatches inline on its submitter thread; close() used
    to consider the queue drained the moment ``_pending`` was empty, so
    it could return while an inline dispatch was still executing — the
    cluster router then unlinked the shm arena out from under it.
    """

    def test_close_waits_for_inline_dispatch(self, rng, weight):
        entered = threading.Event()
        release = threading.Event()
        done = []

        def slow_execute(batch):
            entered.set()
            release.wait(5)
            for request in batch:
                request.future.set_result(request.x)
            done.append(len(batch))

        queue = BatchingQueue(slow_execute, max_batch=2,
                              max_wait_ms=60_000)
        requests = [request_of(rng, weight) for _ in range(2)]

        def submit_full_batch():
            for r in requests:
                queue.submit(r)

        submitter = threading.Thread(target=submit_full_batch)
        submitter.start()
        assert entered.wait(5)  # inline dispatch running on submitter

        closed = threading.Event()

        def close_queue():
            queue.close()
            closed.set()

        closer = threading.Thread(target=close_queue)
        closer.start()
        time.sleep(0.05)
        # close() must still be parked on the in-flight inline dispatch.
        assert not closed.is_set()
        release.set()
        submitter.join(5)
        closer.join(5)
        assert closed.is_set()
        assert done == [2]
        assert all(r.future.done() for r in requests)

    def test_close_from_executor_callback_does_not_self_join(
            self, rng, weight):
        # A deadline-fired dispatch runs on the dispatcher thread; an
        # executor that reacts to a fault by closing the queue must not
        # deadlock trying to join the very thread it runs on.
        queue_box = []

        def close_inside(batch):
            queue_box[0].close(timeout=2.0)
            for request in batch:
                request.future.set_result(request.x)

        queue = BatchingQueue(close_inside, max_batch=8, max_wait_ms=10)
        queue_box.append(queue)
        request = request_of(rng, weight)
        queue.submit(request)
        request.future.result(timeout=5)
        queue.close()  # outer close joins the dispatcher cleanly
        assert not queue._dispatcher.is_alive()

    def test_close_under_concurrent_submitters(self, rng, weight):
        """Hammer close() against a pack of submitters: every submitted
        request either resolves or the submit itself was refused —
        nothing hangs, nothing dispatches after close returns."""
        batches = []
        queue = BatchingQueue(_resolve_all(batches), max_batch=2,
                              max_wait_ms=5)
        accepted = []
        accepted_lock = threading.Lock()

        def submitter():
            for _ in range(20):
                request = request_of(rng, weight)
                try:
                    queue.submit(request)
                except RuntimeError:
                    return
                with accepted_lock:
                    accepted.append(request)

        threads = [threading.Thread(target=submitter) for _ in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.02)
        queue.close()
        dispatched_at_close = sum(len(b) for b in batches)
        for t in threads:
            t.join(10)
        assert all(not t.is_alive() for t in threads)
        for request in accepted:
            assert request.future.done()
        # Nothing new dispatches once close has returned: stragglers all
        # hit the closed gate.
        time.sleep(0.05)
        assert sum(len(b) for b in batches) == dispatched_at_close

    def test_close_is_idempotent_after_inline_drain(self, rng, weight):
        queue = BatchingQueue(_resolve_all([]), max_batch=1,
                              max_wait_ms=10_000)
        queue.submit(request_of(rng, weight))  # inline (max_batch=1)
        queue.close()
        queue.close()
        with pytest.raises(RuntimeError, match="closed"):
            queue.submit(request_of(rng, weight))


def test_fifo_order_within_key(rng, weight):
    batches = []
    queue = BatchingQueue(_resolve_all(batches), max_batch=2,
                          max_wait_ms=10_000)
    try:
        requests = [request_of(rng, weight) for _ in range(4)]
        for r in requests:
            queue.submit(r)
        for r in requests:
            r.future.result(timeout=5)
        dispatched = [r for batch in batches for r in batch]
        assert [id(r) for r in dispatched] == [id(r) for r in requests]
    finally:
        queue.close()


def test_results_match_inputs(rng, weight):
    # The echo executor returns each request's own input; futures must
    # resolve to exactly the array that was submitted with them.
    queue = BatchingQueue(_resolve_all([]), max_batch=3, max_wait_ms=10)
    try:
        requests = [request_of(rng, weight) for _ in range(5)]
        for r in requests:
            queue.submit(r)
        for r in requests:
            assert np.array_equal(r.future.result(timeout=5), r.x)
    finally:
        queue.close()
