"""Deadline propagation, admission control and typed overload errors.

The contract under test: every request's outcome is exactly one of
*completed* (bit-exact answer), *shed* (typed
:class:`~repro.serve.overload.DeadlineExceeded` / eviction) or
*rejected* (typed :class:`~repro.serve.overload.Overloaded` at the front
door) — never silence, never a late answer after a shed report, and
never leaked capacity.
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import functional as F
from repro.observe.registry import counters
from repro.serve.api import ConvServer
from repro.serve.coalescer import make_request
from repro.serve.overload import (
    DeadlineExceeded,
    Overloaded,
    ServeConfig,
    backoff_delay,
    batch_deadline,
    resolve_deadline,
    shed_expired,
)
from repro.serve.shm import SlotAllocator, SlotTimeout, TensorArena


def tiny_problem(rng, n=1):
    x = rng.standard_normal((n, 1, 4, 4))
    w = rng.standard_normal((1, 1, 3, 3))
    return x, w


class TestDeadlinePropagation:
    def test_expired_request_is_shed_not_executed(self, rng):
        """A dead-on-arrival deadline sheds typed at dispatch; the
        engine never runs for it."""
        x, w = tiny_problem(rng)
        with ConvServer(max_wait_ms=1.0) as server:
            before = int(counters.total("serve.shed"))
            future = server.submit(x, w, padding=1, deadline_s=1e-6)
            with pytest.raises(DeadlineExceeded):
                future.result(30)
            assert int(counters.total("serve.shed")) == before + 1

    def test_generous_deadline_completes_bit_exact(self, rng):
        x, w = tiny_problem(rng)
        ref = F.conv2d(x, w, padding=1)
        with ConvServer() as server:
            before = int(counters.total("serve.completed"))
            out = server.submit(x, w, padding=1,
                                deadline_s=60.0).result(60)
            np.testing.assert_array_equal(out, ref)
            assert int(counters.total("serve.completed")) == before + 1

    def test_deadline_exceeded_is_a_timeout_error(self):
        """Callers catching the builtin keep working."""
        assert issubclass(DeadlineExceeded, TimeoutError)
        assert issubclass(Overloaded, RuntimeError)

    def test_nonpositive_deadline_rejected_at_the_front_door(self, rng):
        x, w = tiny_problem(rng)
        with ConvServer() as server:
            with pytest.raises(ValueError, match="deadline_s"):
                server.submit(x, w, padding=1, deadline_s=0.0)
            with pytest.raises(ValueError, match="deadline_s"):
                server.submit(x, w, padding=1, deadline_s=-1.0)

    def test_conv2d_timeout_sheds_and_capacity_survives(self, rng):
        """The sync wrapper raises typed, and the slot the dead request
        held is genuinely back: the next call completes."""
        x, w = tiny_problem(rng)
        ref = F.conv2d(x, w, padding=1)
        with ConvServer(max_wait_ms=1.0,
                        config=ServeConfig(max_inflight=1)) as server:
            with pytest.raises(DeadlineExceeded):
                server.conv2d(x, w, padding=1, timeout=1e-6)
            # max_inflight=1: this only admits if the shed released it.
            out = server.conv2d(x, w, padding=1, timeout=30)
        np.testing.assert_array_equal(out, ref)

    def test_shed_expired_partitions_a_batch(self, rng):
        """The queue-side helper sheds exactly the expired riders and
        keeps the live ones, in order."""
        x, w = tiny_problem(rng)
        now = time.monotonic()
        live = make_request(x, w, None, 1, 1, 1, 1, "polyhankel", "sum",
                            None, deadline=now + 60.0)
        dead = make_request(x, w, None, 1, 1, 1, 1, "polyhankel", "sum",
                            None, deadline=now - 1.0)
        unbounded = make_request(x, w, None, 1, 1, 1, 1, "polyhankel",
                                 "sum", None, deadline=None)
        kept = shed_expired([live, dead, unbounded])
        assert kept == [live, unbounded]
        with pytest.raises(DeadlineExceeded):
            dead.future.result(0)
        assert not live.future.done() and not unbounded.future.done()

    def test_batch_deadline_is_the_maximum_rider(self, rng):
        """The worker sheds only when *every* rider is dead, so the
        batch travels with the latest deadline — and with None as soon
        as any rider is unbounded."""
        x, w = tiny_problem(rng)

        def req(deadline):
            return make_request(x, w, None, 1, 1, 1, 1, "polyhankel",
                                "sum", None, deadline=deadline)

        assert batch_deadline([req(5.0), req(9.0), req(7.0)]) == 9.0
        assert batch_deadline([req(5.0), req(None)]) is None
        assert batch_deadline([]) is None

    def test_resolve_deadline_is_absolute_monotonic(self):
        now = time.monotonic()
        deadline = resolve_deadline(10.0)
        assert deadline is not None and deadline >= now + 9.9
        assert resolve_deadline(None) is None

    def test_close_during_shed_resolves_every_future(self, rng):
        """close() racing in-flight sheds: every future still resolves
        (answer or typed error — never silence), and close returns."""
        x, w = tiny_problem(rng)
        with ConvServer(max_wait_ms=5.0) as server:
            # A mix of dead-on-arrival, tight, and unbounded deadlines
            # queued behind one flush window, then an immediate close.
            futures = [
                server.submit(x, w, padding=1,
                              deadline_s=deadline)
                for deadline in (1e-6, 1e-6, 0.002, None, None)
            ]
        # The with-block exit ran close() while sheds were in flight.
        for future in futures:
            assert future.done()
            exc = future.exception(timeout=0)
            if exc is not None:
                assert isinstance(exc, (DeadlineExceeded, RuntimeError))


class TestAdmissionControl:
    def test_reject_new_raises_typed_and_counts(self, rng):
        """Past the budget, reject-new refuses the newcomer while the
        queued requests keep their place."""
        x, w = tiny_problem(rng)
        config = ServeConfig(max_inflight=2, shed_policy="reject-new")
        # max_batch > submissions: both admitted requests coalesce into
        # one waiting group and stay in flight for max_wait_ms, so the
        # third submit genuinely meets a full budget.
        with ConvServer(max_batch=8, max_wait_ms=200.0,
                        config=config) as server:
            before = int(counters.total("serve.rejected"))
            first = server.submit(x, w, padding=1)
            second = server.submit(x, w, padding=1)
            with pytest.raises(Overloaded):
                server.submit(x, w, padding=1)
            assert int(counters.total("serve.rejected")) == before + 1
            # The admitted requests still complete.
            first.result(30)
            second.result(30)

    def test_shed_oldest_evicts_in_favor_of_the_newcomer(self, rng):
        x, w = tiny_problem(rng)
        ref = F.conv2d(x, w, padding=1)
        config = ServeConfig(max_inflight=1, shed_policy="shed-oldest")
        with ConvServer(max_batch=8, max_wait_ms=500.0,
                        config=config) as server:
            victim = server.submit(x, w, padding=1)
            newcomer = server.submit(x, w, padding=1)
            with pytest.raises(Overloaded):
                victim.result(30)
            np.testing.assert_array_equal(newcomer.result(30), ref)

    def test_budget_frees_on_completion(self, rng):
        """Sequential traffic through a budget of one never rejects —
        the done-callback releases the unit."""
        x, w = tiny_problem(rng)
        config = ServeConfig(max_inflight=1)
        with ConvServer(config=config) as server:
            for _ in range(5):
                server.submit(x, w, padding=1).result(30)


# Outcome of one scripted request: its deadline (None = unbounded) —
# tiny deadlines force sheds, generous ones complete, and a small budget
# forces front-door rejections.
_deadline = st.one_of(st.none(), st.just(1e-6), st.just(60.0))


class TestOutcomePartition:
    @settings(max_examples=10, deadline=None)
    @given(deadlines=st.lists(_deadline, min_size=1, max_size=8),
           max_inflight=st.integers(1, 4))
    def test_every_request_has_exactly_one_outcome(self, deadlines,
                                                   max_inflight):
        """completed + shed + rejected == submitted, on futures *and*
        on the counters — no silent losses, no double accounting."""
        rng = np.random.default_rng(0)
        x, w = tiny_problem(rng)
        ref = F.conv2d(x, w, padding=1)
        before = {name: int(counters.total(f"serve.{name}"))
                  for name in ("completed", "shed", "rejected")}
        config = ServeConfig(max_inflight=max_inflight)
        completed = shed = rejected = 0
        with ConvServer(max_batch=2, max_wait_ms=1.0,
                        config=config) as server:
            futures = []
            for deadline_s in deadlines:
                try:
                    futures.append(server.submit(
                        x, w, padding=1, deadline_s=deadline_s))
                except Overloaded:
                    rejected += 1
            for future in futures:
                try:
                    np.testing.assert_array_equal(future.result(30), ref)
                    completed += 1
                except (DeadlineExceeded, Overloaded):
                    shed += 1
        assert completed + shed + rejected == len(deadlines)
        after = {name: int(counters.total(f"serve.{name}"))
                 for name in ("completed", "shed", "rejected")}
        assert after["completed"] - before["completed"] == completed
        assert after["shed"] - before["shed"] == shed
        assert after["rejected"] - before["rejected"] == rejected


class TestSlotTimeout:
    def test_acquire_many_times_out_typed(self):
        """An exhausted arena raises SlotTimeout (a SlotsExhaustedError
        *and* a TimeoutError) and bumps its counter."""
        arena = TensorArena(slots=2, slot_bytes=1 << 12)
        try:
            allocator = SlotAllocator(arena)
            held = allocator.acquire_many(2)
            before = int(counters.total("serve.slot_timeout"))
            start = time.monotonic()
            with pytest.raises(SlotTimeout):
                allocator.acquire_many(1, timeout=0.05)
            assert time.monotonic() - start < 5.0
            assert int(counters.total("serve.slot_timeout")) == before + 1
            assert issubclass(SlotTimeout, TimeoutError)
            allocator.release(*held)
            # Capacity is intact after the timeout.
            assert allocator.acquire_many(2, timeout=1.0)
        finally:
            arena.close()


class TestServeConfig:
    def test_env_overrides_every_numeric_field(self):
        env = {"REPRO_SERVE_STALL_TIMEOUT_S": "3.5",
               "REPRO_SERVE_MAX_INFLIGHT": "7",
               "REPRO_SERVE_SHED_POLICY": "shed-oldest"}
        config = ServeConfig.from_env(env)
        assert config.stall_timeout_s == 3.5
        assert config.max_inflight == 7
        assert config.shed_policy == "shed-oldest"
        # Untouched fields keep the documented defaults (the router's
        # previously hardcoded timeouts).
        assert config.ping_timeout_s == 10.0
        assert config.respawn_poll_s == 0.2
        assert config.join_timeout_s == 2.0

    def test_malformed_env_fails_loudly_naming_the_variable(self):
        with pytest.raises(ValueError, match="REPRO_SERVE_STALL_TIMEOUT_S"):
            ServeConfig.from_env({"REPRO_SERVE_STALL_TIMEOUT_S": "soon"})
        with pytest.raises(ValueError, match="REPRO_SERVE_MAX_INFLIGHT"):
            ServeConfig.from_env({"REPRO_SERVE_MAX_INFLIGHT": "many"})

    def test_validation_rejects_nonsense(self):
        with pytest.raises(ValueError, match="stall_timeout_s"):
            ServeConfig(stall_timeout_s=0.0)
        with pytest.raises(ValueError, match="max_inflight"):
            ServeConfig(max_inflight=0)
        with pytest.raises(ValueError, match="shed_policy"):
            ServeConfig(shed_policy="drop-everything")

    def test_with_returns_a_validated_copy(self):
        config = ServeConfig()
        tweaked = config.with_(max_inflight=3)
        assert tweaked.max_inflight == 3 and config.max_inflight == 256
        with pytest.raises(ValueError):
            config.with_(backoff_cap_s=-1.0)


class TestBackoff:
    def test_capped_exponential_with_deterministic_jitter(self):
        delays = [backoff_delay(a, 0.05, 2.0, token="k") for a in (1, 2, 3)]
        # Exponential base growth (jitter is at most +50%).
        assert 0.05 <= delays[0] <= 0.075
        assert 0.10 <= delays[1] <= 0.15
        assert 0.20 <= delays[2] <= 0.30
        # Deterministic per (token, attempt); different tokens de-sync.
        assert delays[0] == backoff_delay(1, 0.05, 2.0, token="k")
        assert backoff_delay(20, 0.05, 2.0, token="k") == 2.0  # capped
