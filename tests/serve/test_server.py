"""Unit tests for ConvServer and the process-wide default server."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.serve import (
    ConvServer,
    configure_server,
    get_server,
    set_server,
    shutdown_server,
)


@pytest.fixture
def problem(rng):
    x = rng.standard_normal((2, 3, 8, 8))
    w = rng.standard_normal((4, 3, 3, 3))
    return x, w


class TestConvServer:
    def test_submit_matches_sequential(self, problem):
        x, w = problem
        with ConvServer(max_batch=4, max_wait_ms=5, workers=1) as server:
            got = server.submit(x, w, padding=1).result(timeout=5)
        assert np.array_equal(got, F.conv2d(x, w, padding=1))

    def test_sync_wrapper(self, problem):
        x, w = problem
        with ConvServer(max_batch=4, max_wait_ms=5, workers=1) as server:
            got = server.conv2d(x, w, padding=1)
        assert np.array_equal(got, F.conv2d(x, w, padding=1))

    def test_chw_input_promoted_to_batch_of_one(self, problem):
        x, w = problem
        with ConvServer(max_batch=4, max_wait_ms=5, workers=1) as server:
            got = server.conv2d(x[0], w, padding=1)
        assert got.shape[0] == 1
        assert np.array_equal(got, F.conv2d(x[:1], w, padding=1))

    def test_coalesced_burst_bit_exact(self, rng):
        w = rng.standard_normal((2, 3, 3, 3))
        images = [rng.standard_normal((1, 3, 8, 8)) for _ in range(6)]
        with ConvServer(max_batch=3, max_wait_ms=10, workers=1) as server:
            futures = [server.submit(x, w, padding=1) for x in images]
            outs = [f.result(timeout=5) for f in futures]
        for out, x in zip(outs, images):
            assert np.array_equal(out, F.conv2d(x, w, padding=1))

    def test_oversized_request_bypasses_queue(self, rng):
        w = rng.standard_normal((2, 3, 3, 3))
        x = rng.standard_normal((9, 3, 8, 8))  # > max_batch
        with ConvServer(max_batch=4, max_wait_ms=60_000,
                        workers=2) as server:
            future = server.submit(x, w, padding=1)
            # Pool path resolves synchronously inside submit: the future
            # is already done even though the queue deadline is a minute.
            assert future.done()
            assert server.pending_count() == 0
            assert np.array_equal(future.result(),
                                  F.conv2d(x, w, padding=1))

    def test_mixed_shapes_route_correctly(self, rng):
        w = rng.standard_normal((2, 3, 3, 3))
        small = rng.standard_normal((2, 3, 8, 8))
        large = rng.standard_normal((2, 3, 12, 12))
        with ConvServer(max_batch=4, max_wait_ms=10, workers=1) as server:
            fs = server.submit(small, w, padding=1)
            fl = server.submit(large, w, padding=1)
            assert np.array_equal(fs.result(timeout=5),
                                  F.conv2d(small, w, padding=1))
            assert np.array_equal(fl.result(timeout=5),
                                  F.conv2d(large, w, padding=1))

    def test_guarded_serving_matches(self, problem):
        from repro.guard.state import guarded

        x, w = problem
        with guarded(), \
                ConvServer(max_batch=4, max_wait_ms=5, workers=1) as server:
            got = server.conv2d(x, w, padding=1)
        assert np.array_equal(got, F.conv2d(x, w, padding=1))

    def test_submit_after_close_raises(self, problem):
        x, w = problem
        server = ConvServer(max_batch=4, max_wait_ms=5, workers=1)
        server.close()
        with pytest.raises(RuntimeError, match="closed"):
            server.submit(x, w)

    def test_close_idempotent(self):
        server = ConvServer(max_batch=4, max_wait_ms=5, workers=1)
        server.close()
        server.close()

    def test_stats_shape(self, problem):
        from repro.observe.registry import counters

        x, w = problem
        counters.clear("serve.")
        try:
            with ConvServer(max_batch=4, max_wait_ms=5,
                            workers=1) as server:
                server.conv2d(x, w, padding=1)
                stats = server.stats()
            assert stats["requests"] == 1
            assert stats["batches"] == 1
            assert stats["mean_batch_size"] == x.shape[0]
            assert stats["coalesce_rate"] == 0.0
        finally:
            counters.clear("serve.")


class TestDefaultServer:
    def setup_method(self):
        shutdown_server()

    def teardown_method(self):
        shutdown_server()

    def test_get_server_lazily_creates_and_caches(self):
        server = get_server()
        assert get_server() is server

    def test_get_server_replaces_closed(self):
        server = get_server()
        server.close()
        assert get_server() is not server

    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH", "16")
        monkeypatch.setenv("REPRO_SERVE_MAX_WAIT_MS", "1.5")
        server = get_server()
        assert server.max_batch == 16
        assert server._queue.max_wait_s == pytest.approx(1.5e-3)

    def test_invalid_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH", "lots")
        assert get_server().max_batch == 8

    def test_set_server_returns_previous(self):
        previous = get_server()
        replacement = ConvServer(max_batch=2, max_wait_ms=1, workers=1)
        assert set_server(replacement) is previous
        assert get_server() is replacement
        previous.close()

    def test_configure_server_closes_previous(self):
        previous = get_server()
        server = configure_server(max_batch=2, max_wait_ms=1, workers=1)
        assert get_server() is server
        assert previous._closed

    def test_conv2d_async_uses_default_server(self, rng):
        configure_server(max_batch=4, max_wait_ms=5, workers=1)
        x = rng.standard_normal((1, 3, 8, 8))
        w = rng.standard_normal((2, 3, 3, 3))
        got = F.conv2d_async(x, w, padding=1).result(timeout=5)
        assert np.array_equal(got, F.conv2d(x, w, padding=1))

    def test_conv2d_async_explicit_server(self, rng):
        x = rng.standard_normal((1, 3, 8, 8))
        w = rng.standard_normal((2, 3, 3, 3))
        with ConvServer(max_batch=4, max_wait_ms=5, workers=1) as server:
            got = F.conv2d_async(x, w, padding=1,
                                 server=server).result(timeout=5)
        assert np.array_equal(got, F.conv2d(x, w, padding=1))

    def test_layer_submit(self, rng):
        from repro.nn.layers import Conv2d

        layer = Conv2d(3, 2, 3, padding=1,
                       rng=np.random.default_rng(0))
        x = rng.standard_normal((1, 3, 8, 8))
        with ConvServer(max_batch=4, max_wait_ms=5, workers=1) as server:
            got = layer.submit(x, server=server).result(timeout=5)
        np.testing.assert_allclose(got, layer(x), atol=1e-10)
