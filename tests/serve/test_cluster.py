"""Integration tests for the multi-process cluster serving tier.

Everything here runs real worker processes over the real shared-memory
arena — parity is asserted bit-exactly against the in-process engine, so
a transport bug that perturbs a single byte fails loudly.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.nn import functional as F
from repro.serve.router import ClusterServer, ClusterUnavailableError


def make_server(**kw):
    kw.setdefault("workers", 2)
    kw.setdefault("slots", 8)
    kw.setdefault("slot_bytes", 1 << 18)
    return ClusterServer(**kw)


class TestParity:
    """Bit-exact parity of the shm round trip vs in-process conv2d."""

    # A diagonal sample of the differential grid: each point exercises a
    # distinct (stride, dilation, groups, padding) family through the
    # full cluster transport.
    GRID = [
        ((1, 1), (1, 1), 1, 0),
        ((2, 2), (1, 1), 2, 1),
        ((1, 2), (2, 2), 1, (1, 2, 0, 1)),
        ((1, 1), (1, 3), 4, "same"),
    ]

    @pytest.mark.parametrize("stride,dilation,groups,padding", [
        pytest.param(*p, id=f"s{p[0]}-d{p[1]}-g{p[2]}-p{p[3]}")
        for p in GRID
    ])
    def test_differential_grid_sample(self, rng, stride, dilation, groups,
                                      padding):
        x = rng.standard_normal((2, 4, 9, 8))
        w = rng.standard_normal((4, 4 // groups, 3, 3))
        b = rng.standard_normal(4)
        ref = F.conv2d(x, w, b, padding=padding, stride=stride,
                       dilation=dilation, groups=groups)
        with make_server() as server:
            out = server.submit(x, w, b, padding=padding, stride=stride,
                                dilation=dilation,
                                groups=groups).result(60)
        np.testing.assert_array_equal(out, ref)

    def test_3d_input_lifted(self, rng):
        x3 = rng.standard_normal((3, 10, 10))
        w = rng.standard_normal((2, 3, 3, 3))
        ref = F.conv2d(x3[None], w, padding=1)
        with make_server(workers=1) as server:
            out = server.conv2d(x3, w, padding=1, timeout=60)
        np.testing.assert_array_equal(out, ref)

    def test_many_requests_two_families(self, rng):
        """A mixed stream over two weight families routes by affinity
        and every answer stays bit-exact."""
        w1 = rng.standard_normal((2, 3, 3, 3))
        w2 = rng.standard_normal((4, 3, 3, 3))
        xs = [rng.standard_normal((1, 3, 8, 8)) for _ in range(12)]
        refs = [F.conv2d(x, w1 if i % 2 else w2, padding=1)
                for i, x in enumerate(xs)]
        with make_server() as server:
            futures = [server.submit(x, w1 if i % 2 else w2, padding=1)
                       for i, x in enumerate(xs)]
            outs = [f.result(60) for f in futures]
        for out, ref in zip(outs, refs):
            np.testing.assert_array_equal(out, ref)


class TestWorkerKillRecovery:
    def test_sigkill_mid_load_loses_nothing(self, rng):
        """SIGKILL one replica mid-load: the router reroutes its in-flight
        work, every future resolves exactly once with the right answer."""
        w = rng.standard_normal((4, 3, 3, 3))
        xs = [rng.standard_normal((1, 3, 10, 10)) for _ in range(16)]
        refs = [F.conv2d(x, w, padding=1) for x in xs]
        with make_server(workers=2, slots=12) as server:
            # Warm both replicas so the victim holds real in-flight work.
            server.conv2d(xs[0], w, padding=1, timeout=60)
            futures = []
            victim = server.worker_pids()[0]
            killed = threading.Event()

            def kill_soon():
                time.sleep(0.01)
                os.kill(victim, signal.SIGKILL)
                killed.set()

            killer = threading.Thread(target=kill_soon)
            killer.start()
            for x in xs:
                futures.append(server.submit(x, w, padding=1))
            killer.join()
            assert killed.is_set()
            outs = [f.result(120) for f in futures]
        assert len(outs) == len(xs)  # nothing lost
        for out, ref in zip(outs, refs):  # nothing duplicated/corrupted
            np.testing.assert_array_equal(out, ref)

    def test_dead_replica_respawns(self, rng):
        w = rng.standard_normal((2, 3, 3, 3))
        x = rng.standard_normal((1, 3, 8, 8))
        with make_server(workers=2) as server:
            server.conv2d(x, w, padding=1, timeout=60)
            victim = server.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                pids = server.worker_pids()
                if victim not in pids and len(pids) == 2:
                    break
                time.sleep(0.05)
            pids = server.worker_pids()
            assert victim not in pids and len(pids) == 2
            # The respawned pair still serves correctly.
            out = server.conv2d(x, w, padding=1, timeout=60)
        np.testing.assert_array_equal(out, F.conv2d(x, w, padding=1))

    def test_all_workers_dead_and_closed_fails_cleanly(self, rng):
        w = rng.standard_normal((2, 3, 3, 3))
        x = rng.standard_normal((1, 3, 8, 8))
        server = make_server(workers=1)
        try:
            server.conv2d(x, w, padding=1, timeout=60)
        finally:
            server.close()
        with pytest.raises(RuntimeError, match="closed"):
            server.submit(x, w, padding=1)


class TestBackpressure:
    def test_slot_exhaustion_blocks_then_completes(self, rng):
        """More concurrent requests than slot pairs: submitters stall on
        the arena's backpressure but every request completes."""
        w = rng.standard_normal((2, 3, 3, 3))
        xs = [rng.standard_normal((1, 3, 8, 8)) for _ in range(12)]
        refs = [F.conv2d(x, w, padding=1) for x in xs]
        # 4 slots = 1 dispatch pair in flight after the weight ship +
        # margin; 12 concurrent submitters must take turns.
        with make_server(workers=1, slots=4) as server:
            server.conv2d(xs[0], w, padding=1, timeout=60)
            outs = [None] * len(xs)
            errors = []

            def submit_one(i):
                try:
                    outs[i] = server.submit(xs[i], w, padding=1).result(120)
                except Exception as exc:  # noqa: BLE001
                    errors.append((i, exc))

            threads = [threading.Thread(target=submit_one, args=(i,))
                       for i in range(len(xs))]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120)
            assert not errors
        for out, ref in zip(outs, refs):
            np.testing.assert_array_equal(out, ref)

    def test_slot_wait_counter_advances(self, rng):
        from repro.observe.registry import counters

        w = rng.standard_normal((2, 3, 3, 3))
        xs = [rng.standard_normal((1, 3, 8, 8)) for _ in range(8)]
        before = counters.total("serve.cluster.slot_waits")
        with make_server(workers=1, slots=4) as server:
            server.conv2d(xs[0], w, padding=1, timeout=60)
            futures = [server.submit(x, w, padding=1) for x in xs]
            for f in futures:
                f.result(120)
        assert counters.total("serve.cluster.slot_waits") >= before


class TestLifecycleAndStats:
    def test_close_is_idempotent(self, rng):
        server = make_server(workers=1)
        server.close()
        server.close()

    def test_stats_merge_per_replica_counters(self, rng):
        w = rng.standard_normal((2, 3, 3, 3))
        xs = [rng.standard_normal((1, 3, 8, 8)) for _ in range(6)]
        with make_server(workers=2) as server:
            for x in xs:
                server.conv2d(x, w, padding=1, timeout=60)
            stats = server.stats()
        cluster = stats["cluster"]
        assert cluster["workers"] == 2
        assert cluster["transport"] == "shm"
        assert len(cluster["replicas"]) == 2
        total_convs = sum(
            r["worker"].get("serve.cluster.worker_convs", 0)
            for r in cluster["replicas"])
        assert total_convs >= len(xs)

    def test_serve_stats_renders_replica_table(self, rng):
        from repro.observe.registry import format_serve_stats

        w = rng.standard_normal((2, 3, 3, 3))
        x = rng.standard_normal((1, 3, 8, 8))
        with make_server(workers=2) as server:
            server.conv2d(x, w, padding=1, timeout=60)
            text = format_serve_stats(server.stats())
        assert "replica" in text
        assert "cluster: 2 worker(s)" in text

    def test_unavailable_error_type_exported(self):
        from repro.serve import ClusterUnavailableError as exported

        assert exported is ClusterUnavailableError
