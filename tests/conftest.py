"""Shared test configuration.

Exposes two helpers used across the suite:

- :func:`naive_conv2d_reference` — an independent loop-based NCHW
  convolution supporting the full parameter space (per-axis stride and
  dilation, asymmetric/``"same"`` padding, groups).  It deliberately does
  not call into :mod:`repro`, so it can referee every library path.
- :func:`assert_conv_close` — ulp-aware closeness assertion: the absolute
  tolerance scales with the magnitude of the reference output, so the same
  call works for unit-variance toy tensors and for large accumulations.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Two hypothesis profiles.  "repro" (the default) keeps example counts
# small so the tier-1 suite stays fast on a single core; "nightly" raises
# the budget 12x for the scheduled deep fuzz (.github/workflows/
# nightly.yml selects it with pytest's --hypothesis-profile flag).
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "nightly",
    max_examples=300,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

FLOAT64_EPS = float(np.finfo(np.float64).eps)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic per-test generator."""
    return np.random.default_rng(12345)


def conv_tolerance(ref, ulps: int = 2 ** 14) -> float:
    """Absolute tolerance of *ulps* units in the last place at the scale of
    *ref*.  FFT-based paths lose ~eps*sqrt(N) relative accuracy, so a fixed
    atol is either too loose for small outputs or too tight for big ones;
    anchoring the tolerance to max|ref| keeps one constant valid for both.
    """
    ref = np.asarray(ref)
    scale = float(np.max(np.abs(ref))) if ref.size else 1.0
    return max(scale, 1.0) * ulps * FLOAT64_EPS


def assert_conv_close(got, ref, ulps: int = 2 ** 14) -> None:
    """Assert two convolution outputs agree to *ulps* at reference scale."""
    np.testing.assert_allclose(got, ref, atol=conv_tolerance(ref, ulps),
                               rtol=0)


def _pair(value):
    return (value, value) if isinstance(value, int) else tuple(value)


def _same_axis(size, stride, eff_k):
    out = math.ceil(size / stride)
    total = max((out - 1) * stride + eff_k - size, 0)
    return total // 2, total - total // 2


def resolve_padding(padding, ih, iw, stride, eff_kh, eff_kw):
    """Resolve any padding spelling to a concrete ``(pt, pb, pl, pr)``."""
    if padding == "same":
        sh, sw = _pair(stride)
        pt, pb = _same_axis(ih, sh, eff_kh)
        pl, pr = _same_axis(iw, sw, eff_kw)
        return pt, pb, pl, pr
    if isinstance(padding, int):
        return padding, padding, padding, padding
    padding = tuple(padding)
    if len(padding) == 2:
        ph, pw = padding
        return ph, ph, pw, pw
    return padding


def naive_conv2d_reference(x, w, padding=0, stride=1, dilation=1, groups=1):
    """Independent NCHW convolution reference (not the library's own)."""
    sh, sw = _pair(stride)
    dh, dw = _pair(dilation)
    f, c_per, kh, kw = w.shape
    eff_kh = dh * (kh - 1) + 1
    eff_kw = dw * (kw - 1) + 1
    pt, pb, pl, pr = resolve_padding(padding, x.shape[2], x.shape[3],
                                     stride, eff_kh, eff_kw)
    xp = np.pad(x, [(0, 0), (0, 0), (pt, pb), (pl, pr)])
    n, c, ih, iw = xp.shape
    oh = (ih - eff_kh) // sh + 1
    ow = (iw - eff_kw) // sw + 1
    f_per = f // groups
    out = np.zeros((n, f, oh, ow))
    for b in range(n):
        for k in range(f):
            g = k // f_per
            channels = slice(g * c_per, (g + 1) * c_per)
            for i in range(oh):
                for j in range(ow):
                    patch = xp[b, channels,
                               i * sh: i * sh + eff_kh: dh,
                               j * sw: j * sw + eff_kw: dw]
                    out[b, k, i, j] = np.sum(patch * w[k])
    return out
