"""Shared test configuration."""

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# One global hypothesis profile: small example counts keep the suite fast on
# a single core while still exercising the shape space.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic per-test generator."""
    return np.random.default_rng(12345)


def naive_conv2d_reference(x, w, padding=0, stride=1):
    """Independent NCHW convolution reference (not the library's own)."""
    xp = np.pad(x, [(0, 0), (0, 0), (padding, padding), (padding, padding)])
    n, c, ih, iw = xp.shape
    f, _, kh, kw = w.shape
    oh = (ih - kh) // stride + 1
    ow = (iw - kw) // stride + 1
    out = np.zeros((n, f, oh, ow))
    for b in range(n):
        for k in range(f):
            for i in range(oh):
                for j in range(ow):
                    patch = xp[b, :, i * stride: i * stride + kh,
                               j * stride: j * stride + kw]
                    out[b, k, i, j] = np.sum(patch * w[k])
    return out
