"""Shared test configuration.

Exposes the oracles and helpers used across the suite:

- :func:`naive_convnd_reference` — an independent loop-based convolution
  over any spatial rank (1D/2D/3D/...), supporting the full parameter
  space (per-axis stride and dilation, asymmetric/``"same"`` padding,
  groups).  It deliberately does not call into :mod:`repro`, so it can
  referee every library path; :func:`naive_conv2d_reference` is its
  rank-2 spelling.
- :func:`naive_conv_transpose2d_reference` — an independent scatter-based
  transposed convolution (PyTorch ``(c_in, c_out/g, kh, kw)`` weight
  layout) with per-axis stride/dilation, asymmetric padding, groups and
  output_padding.  Shares no code with the forward oracle or the library,
  so it can referee the adjoint route and the adjoint *identity* tests.
- :func:`assert_conv_close` — ulp-aware closeness assertion: the absolute
  tolerance scales with the magnitude of the reference output, so the same
  call works for unit-variance toy tensors and for large accumulations.
"""

import itertools
import math

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Two hypothesis profiles.  "repro" (the default) keeps example counts
# small so the tier-1 suite stays fast on a single core; "nightly" raises
# the budget 12x for the scheduled deep fuzz (.github/workflows/
# nightly.yml selects it with pytest's --hypothesis-profile flag).
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "nightly",
    max_examples=300,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

FLOAT64_EPS = float(np.finfo(np.float64).eps)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic per-test generator."""
    return np.random.default_rng(12345)


def conv_tolerance(ref, ulps: int = 2 ** 14) -> float:
    """Absolute tolerance of *ulps* units in the last place at the scale of
    *ref*.  FFT-based paths lose ~eps*sqrt(N) relative accuracy, so a fixed
    atol is either too loose for small outputs or too tight for big ones;
    anchoring the tolerance to max|ref| keeps one constant valid for both.
    """
    ref = np.asarray(ref)
    scale = float(np.max(np.abs(ref))) if ref.size else 1.0
    return max(scale, 1.0) * ulps * FLOAT64_EPS


def assert_conv_close(got, ref, ulps: int = 2 ** 14) -> None:
    """Assert two convolution outputs agree to *ulps* at reference scale."""
    np.testing.assert_allclose(got, ref, atol=conv_tolerance(ref, ulps),
                               rtol=0)


def _pair(value):
    return (value, value) if isinstance(value, int) else tuple(value)


def _same_axis(size, stride, eff_k):
    out = math.ceil(size / stride)
    total = max((out - 1) * stride + eff_k - size, 0)
    return total // 2, total - total // 2


def resolve_padding(padding, ih, iw, stride, eff_kh, eff_kw):
    """Resolve any padding spelling to a concrete ``(pt, pb, pl, pr)``."""
    if padding == "same":
        sh, sw = _pair(stride)
        pt, pb = _same_axis(ih, sh, eff_kh)
        pl, pr = _same_axis(iw, sw, eff_kw)
        return pt, pb, pl, pr
    if isinstance(padding, int):
        return padding, padding, padding, padding
    padding = tuple(padding)
    if len(padding) == 2:
        ph, pw = padding
        return ph, ph, pw, pw
    return padding


def _per_axis(value, ndim):
    return (value,) * ndim if isinstance(value, int) else tuple(value)


def resolve_padding_nd(padding, extents, stride, eff_kernel):
    """Resolve any padding spelling to per-axis ``(lo, hi)`` pairs."""
    ndim = len(extents)
    if padding == "same":
        strides = _per_axis(stride, ndim)
        return [_same_axis(i, s, e)
                for i, s, e in zip(extents, strides, eff_kernel)]
    if isinstance(padding, int):
        return [(padding, padding)] * ndim
    padding = tuple(padding)
    if len(padding) == ndim:
        return [(p, p) for p in padding]
    return [tuple(padding[2 * i: 2 * i + 2]) for i in range(ndim)]


def naive_convnd_reference(x, w, padding=0, stride=1, dilation=1, groups=1):
    """Independent N-dimensional convolution reference (any spatial rank,
    not the library's own)."""
    ndim = x.ndim - 2
    strides = _per_axis(stride, ndim)
    dilations = _per_axis(dilation, ndim)
    f, c_per = w.shape[:2]
    kernel = w.shape[2:]
    eff = [d * (k - 1) + 1 for d, k in zip(dilations, kernel)]
    pads = resolve_padding_nd(padding, x.shape[2:], stride, eff)
    xp = np.pad(x, [(0, 0), (0, 0)] + pads)
    out_extents = [(i - e) // s + 1
                   for i, e, s in zip(xp.shape[2:], eff, strides)]
    f_per = f // groups
    out = np.zeros((x.shape[0], f, *out_extents))
    for b in range(x.shape[0]):
        for k in range(f):
            g = k // f_per
            channels = slice(g * c_per, (g + 1) * c_per)
            for idx in itertools.product(*map(range, out_extents)):
                window = tuple(
                    slice(i * s, i * s + e, d)
                    for i, s, e, d in zip(idx, strides, eff, dilations))
                out[(b, k) + idx] = np.sum(xp[(b, channels) + window]
                                           * w[k])
    return out


def naive_conv2d_reference(x, w, padding=0, stride=1, dilation=1, groups=1):
    """Independent NCHW convolution reference (not the library's own)."""
    return naive_convnd_reference(x, w, padding, stride, dilation, groups)


def naive_conv_transpose2d_reference(x, w, padding=0, stride=1, dilation=1,
                                     groups=1, output_padding=0):
    """Independent scatter-based transposed convolution reference.

    *w* is the PyTorch transposed layout ``(c_in, c_out/groups, kh, kw)``.
    Every input pixel deposits a scaled dilated kernel onto a canvas sized
    by the stride-spread input plus ``output_padding``; the nominal
    *padding* is cropped off at the end.
    """
    n, c_in, ih, iw = x.shape
    _, f_per, kh, kw = w.shape
    sh, sw = _pair(stride)
    dh, dw = _pair(dilation)
    oph, opw = _pair(output_padding)
    eff_kh = dh * (kh - 1) + 1
    eff_kw = dw * (kw - 1) + 1
    (pt, pb), (pl, pr) = resolve_padding_nd(padding, (ih, iw), stride,
                                            (eff_kh, eff_kw))
    f = f_per * groups
    c_per = c_in // groups
    canvas_h = (ih - 1) * sh + eff_kh + oph
    canvas_w = (iw - 1) * sw + eff_kw + opw
    canvas = np.zeros((n, f, canvas_h, canvas_w))
    for b in range(n):
        for ci in range(c_in):
            g = ci // c_per
            filters = slice(g * f_per, (g + 1) * f_per)
            for i in range(ih):
                for j in range(iw):
                    for u in range(kh):
                        for v in range(kw):
                            canvas[b, filters,
                                   i * sh + u * dh,
                                   j * sw + v * dw] += \
                                x[b, ci, i, j] * w[ci, :, u, v]
    return canvas[:, :, pt: canvas_h - pb, pl: canvas_w - pr]
