"""Regression gate: compare_reports semantics and the bench --check wiring."""

import json

import pytest

from repro.observe.regression import (
    Regression,
    compare_reports,
    format_check,
    load_baseline,
)


def _report(cases):
    return {"schema_version": 2, "results": cases}


def _case(name, cached=1.0, uncached=2.0, fft_calls=10, fft_rows=80,
          guard_fallbacks=0):
    return {
        "name": name,
        "cached_ms": cached,
        "uncached_ms": uncached,
        "counters": {"fft_calls": fft_calls, "fft_rows": fft_rows,
                     "guard_fallbacks": guard_fallbacks},
    }


class TestCompareReports:
    def test_identical_reports_pass(self):
        report = _report([_case("a"), _case("b")])
        assert compare_reports(report, report) == []

    def test_within_tolerance_passes(self):
        base = _report([_case("a", cached=1.0)])
        cur = _report([_case("a", cached=1.4)])
        assert compare_reports(cur, base, tolerance=0.5) == []

    def test_injected_2x_slowdown_fails(self):
        """The acceptance scenario: doctor the baseline to look 2x faster
        and the gate must report wall-clock regressions."""
        base = _report([_case("a", cached=1.0, uncached=2.0)])
        doctored = json.loads(json.dumps(base))
        for row in doctored["results"]:
            row["cached_ms"] /= 2.0
            row["uncached_ms"] /= 2.0
        regressions = compare_reports(base, doctored, tolerance=0.5)
        assert {(r.metric, r.kind) for r in regressions} == {
            ("cached_ms", "wall"), ("uncached_ms", "wall")}
        assert all(r.ratio == pytest.approx(2.0) for r in regressions)

    def test_faster_is_never_a_regression(self):
        base = _report([_case("a", cached=2.0, uncached=4.0)])
        cur = _report([_case("a", cached=0.5, uncached=1.0)])
        assert compare_reports(cur, base) == []

    def test_sub_noise_floor_baselines_are_skipped(self):
        base = _report([_case("a", cached=0.01)])
        cur = _report([_case("a", cached=0.04)])  # 4x, but ~timer noise
        regressions = compare_reports(cur, base, min_ms=0.05)
        assert [r.metric for r in regressions if r.kind == "wall"] == []

    def test_counter_growth_is_tight(self):
        base = _report([_case("a", fft_calls=10)])
        cur = _report([_case("a", fft_calls=12)])  # +20% FFT invocations
        regressions = compare_reports(cur, base, counter_tolerance=0.1)
        assert [(r.metric, r.kind) for r in regressions] == [
            ("fft_calls", "counter")]

    def test_counters_absent_on_either_side_are_ignored(self):
        base = _report([_case("a")])
        cur = _report([_case("a")])
        del base["results"][0]["counters"]
        assert compare_reports(cur, base) == []

    def test_cases_only_in_one_report_are_ignored(self):
        base = _report([_case("a"), _case("gone")])
        cur = _report([_case("a"), _case("new")])
        assert compare_reports(cur, base) == []

    def test_guard_fallbacks_zero_tolerance(self):
        """The healthy baseline records 0 fallbacks; the usual counter
        loop skips zero baselines, so the guard metric must have its own
        comparison that does not."""
        base = _report([_case("a", guard_fallbacks=0)])
        cur = _report([_case("a", guard_fallbacks=1)])
        regressions = compare_reports(cur, base)
        assert [(r.metric, r.kind) for r in regressions] == [
            ("guard_fallbacks", "counter")]
        assert "must not grow" in regressions[0].describe()

    def test_guard_fallbacks_equal_passes(self):
        base = _report([_case("a", guard_fallbacks=0)])
        assert compare_reports(_report([_case("a")]), base) == []

    def test_guard_fallbacks_absent_in_old_baseline_ignored(self):
        base = _report([_case("a")])
        del base["results"][0]["counters"]["guard_fallbacks"]
        cur = _report([_case("a", guard_fallbacks=3)])
        assert compare_reports(cur, base) == []

    def test_regression_describe_mentions_limit(self):
        reg = Regression("a", "cached_ms", "wall", 1.0, 2.0, 1.5)
        text = reg.describe()
        assert "2.00x" in text and "1.50x" in text and "a" in text


def _serve_entry(name, speedup=2.5, min_speedup=2.0, served_rps=1000.0):
    return {"name": name, "speedup": speedup, "min_speedup": min_speedup,
            "served_rps": served_rps}


class TestCompareServe:
    def test_healthy_serve_section_passes(self):
        report = dict(_report([_case("a")]), serve=[_serve_entry("s")])
        assert compare_reports(report, report) == []

    def test_speedup_below_absolute_floor_fails(self):
        base = dict(_report([]), serve=[_serve_entry("s", speedup=2.5)])
        cur = dict(_report([]), serve=[_serve_entry("s", speedup=1.4)])
        regressions = compare_reports(cur, base)
        assert [(r.metric, r.kind) for r in regressions] == [
            ("speedup", "throughput")]
        assert regressions[0].limit == 2.0
        assert "fell below its floor" in regressions[0].describe()

    def test_floor_is_absolute_not_tolerance_scaled(self):
        # Even a sky-high tolerance cannot excuse missing min_speedup.
        base = dict(_report([]), serve=[_serve_entry("s")])
        cur = dict(_report([]), serve=[_serve_entry("s", speedup=1.9)])
        regressions = compare_reports(cur, base, tolerance=10.0)
        assert [r.metric for r in regressions] == ["speedup"]

    def test_served_rps_collapse_fails(self):
        base = dict(_report([]), serve=[_serve_entry("s",
                                                     served_rps=1000.0)])
        cur = dict(_report([]), serve=[_serve_entry("s",
                                                    served_rps=100.0)])
        regressions = compare_reports(cur, base, tolerance=0.5)
        assert ("served_rps", "throughput") in [
            (r.metric, r.kind) for r in regressions]

    def test_served_rps_within_tolerance_passes(self):
        base = dict(_report([]), serve=[_serve_entry("s",
                                                     served_rps=1000.0)])
        cur = dict(_report([]), serve=[_serve_entry("s",
                                                    served_rps=600.0)])
        assert compare_reports(cur, base, tolerance=0.5) == []

    def test_ungated_preset_skips_speedup_check(self):
        base = dict(_report([]), serve=[_serve_entry(
            "s", speedup=2.0, min_speedup=None)])
        cur = dict(_report([]), serve=[_serve_entry(
            "s", speedup=0.5, min_speedup=None)])
        assert compare_reports(cur, base, tolerance=0.5) == []

    def test_serve_entries_only_in_one_report_ignored(self):
        base = dict(_report([]), serve=[_serve_entry("gone")])
        cur = dict(_report([]), serve=[_serve_entry("new", speedup=0.1)])
        assert compare_reports(cur, base) == []

    def test_reports_without_serve_section_pass(self):
        base = dict(_report([_case("a")]), serve=[_serve_entry("s")])
        cur = _report([_case("a")])  # e.g. a pre-serve baseline
        assert compare_reports(cur, base) == []
        assert compare_reports(base, cur) == []


class TestServeBenchCase:
    """run_serve_case on the cheapest preset (real serving, tiny shapes)."""

    @pytest.mark.slow
    def test_serve_case_smoke(self):
        from repro.bench import SERVE_PRESETS, run_serve_case

        preset = next(p for p in SERVE_PRESETS if not p.heavy)
        result = run_serve_case(preset, repeats=1)
        assert result["name"] == preset.name
        assert result["exact"] is True
        assert result["served_rps"] > 0
        assert result["sequential_rps"] > 0
        assert result["counters"]["requests"] == preset.requests

    def test_env_pins_recorded(self):
        from repro.bench import ENV_PINS, env_pins

        pins = env_pins()
        assert set(pins) == set(ENV_PINS)


class TestFormatAndLoad:
    def test_format_ok(self):
        text = format_check([], "base.json", 0.5, 0.1)
        assert "OK" in text and "base.json" in text

    def test_format_failed_lists_each(self):
        regs = [Regression("a", "cached_ms", "wall", 1.0, 2.0, 1.5),
                Regression("b", "fft_calls", "counter", 10, 12, 1.1)]
        text = format_check(regs, "base.json", 0.5, 0.1)
        assert "FAILED" in text and "2 regression(s)" in text
        assert "a: cached_ms" in text and "b: fft_calls" in text

    def test_load_baseline_roundtrip(self, tmp_path):
        report = _report([_case("a")])
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(report))
        assert load_baseline(str(path)) == report


class TestBenchWiring:
    """run_check + the --check CLI path on a real (tiny) measurement."""

    @pytest.fixture(scope="class")
    def measured(self):
        from repro.bench import SUITE, run_case

        case = next(c for c in SUITE if c.name == "conv16_sum_numpy")
        result = run_case(case, repeats=2, workers=None)
        return _report([result])

    def test_results_carry_counters(self, measured):
        counters = measured["results"][0]["counters"]
        assert counters["fft_calls"] >= 2  # >=1 rfft + >=1 irfft
        assert counters["fft_rows"] > 0
        assert "by_kind" in counters

    def test_run_check_passes_against_self(self, measured, tmp_path,
                                            capsys):
        from repro.bench import run_check

        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(measured))
        assert run_check(measured, str(path), tolerance=0.5,
                         counter_tolerance=0.1, repeats=2,
                         workers=None) == 0
        assert "OK" in capsys.readouterr().out

    def test_run_check_fails_on_doctored_baseline(self, measured,
                                                  tmp_path, capsys):
        """Counter metrics are deterministic, so halving the baseline's
        FFT-invocation counts must fail the gate regardless of machine
        speed — the confirmation re-measure only rescues wall metrics."""
        from repro.bench import run_check

        doctored = json.loads(json.dumps(measured))
        for row in doctored["results"]:
            row["counters"]["fft_calls"] //= 2
            row["counters"]["fft_rows"] //= 2
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(doctored))
        assert run_check(measured, str(path), tolerance=0.5,
                         counter_tolerance=0.1, repeats=2,
                         workers=None) == 1
        assert "FAILED" in capsys.readouterr().out
