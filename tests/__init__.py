"""Test package marker (enables bare `pytest` invocation)."""
