"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import check_conv_inputs, ensure_array, require


class TestRequire:
    def test_passes_silently(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="custom message"):
            require(False, "custom message")


class TestEnsureArray:
    def test_coerces_lists(self):
        arr = ensure_array([1, 2, 3])
        assert isinstance(arr, np.ndarray)

    def test_dtype_cast(self):
        arr = ensure_array([1, 2], dtype=float)
        assert arr.dtype == np.float64

    def test_ndim_check(self):
        with pytest.raises(ValueError, match="must have 2 dimensions"):
            ensure_array([1, 2, 3], name="vec", ndim=2)

    def test_no_copy_when_possible(self):
        arr = np.zeros(3)
        assert ensure_array(arr) is arr


class TestCheckConvInputs:
    def _xw(self):
        return np.zeros((1, 3, 8, 8)), np.zeros((4, 3, 3, 3))

    def test_valid(self):
        x, w = self._xw()
        check_conv_inputs(x, w, padding=1, stride=1)

    def test_input_rank(self):
        _, w = self._xw()
        with pytest.raises(ValueError, match="4D NCHW"):
            check_conv_inputs(np.zeros((3, 8, 8)), w, 0, 1)

    def test_weight_rank(self):
        x, _ = self._xw()
        with pytest.raises(ValueError, match="4D FCKhKw"):
            check_conv_inputs(x, np.zeros((4, 3, 3)), 0, 1)

    def test_channel_mismatch(self):
        x, _ = self._xw()
        with pytest.raises(ValueError, match="channel mismatch"):
            check_conv_inputs(x, np.zeros((4, 2, 3, 3)), 0, 1)

    def test_negative_padding(self):
        x, w = self._xw()
        with pytest.raises(ValueError, match="padding"):
            check_conv_inputs(x, w, -1, 1)

    def test_zero_stride(self):
        x, w = self._xw()
        with pytest.raises(ValueError, match="stride"):
            check_conv_inputs(x, w, 0, 0)

    def test_kernel_does_not_fit(self):
        x = np.zeros((1, 1, 4, 4))
        w = np.zeros((1, 1, 6, 6))
        with pytest.raises(ValueError, match="does not fit"):
            check_conv_inputs(x, w, 0, 1)
