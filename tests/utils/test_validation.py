"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import check_conv_inputs, ensure_array, require


class TestRequire:
    def test_passes_silently(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="custom message"):
            require(False, "custom message")


class TestEnsureArray:
    def test_coerces_lists(self):
        arr = ensure_array([1, 2, 3])
        assert isinstance(arr, np.ndarray)

    def test_dtype_cast(self):
        arr = ensure_array([1, 2], dtype=float)
        assert arr.dtype == np.float64

    def test_ndim_check(self):
        with pytest.raises(ValueError, match="must have 2 dimensions"):
            ensure_array([1, 2, 3], name="vec", ndim=2)

    def test_no_copy_when_possible(self):
        arr = np.zeros(3)
        assert ensure_array(arr) is arr


class TestCheckConvInputs:
    def _xw(self):
        return np.zeros((1, 3, 8, 8)), np.zeros((4, 3, 3, 3))

    def test_valid(self):
        x, w = self._xw()
        check_conv_inputs(x, w, padding=1, stride=1)

    def test_input_rank(self):
        _, w = self._xw()
        with pytest.raises(ValueError, match="4D NCHW"):
            check_conv_inputs(np.zeros((3, 8, 8)), w, 0, 1)

    def test_weight_rank(self):
        x, _ = self._xw()
        with pytest.raises(ValueError, match="4D FCKhKw"):
            check_conv_inputs(x, np.zeros((4, 3, 3)), 0, 1)

    def test_channel_mismatch(self):
        x, _ = self._xw()
        with pytest.raises(ValueError, match="channel mismatch"):
            check_conv_inputs(x, np.zeros((4, 2, 3, 3)), 0, 1)

    def test_negative_padding(self):
        x, w = self._xw()
        with pytest.raises(ValueError, match="padding"):
            check_conv_inputs(x, w, -1, 1)

    def test_zero_stride(self):
        x, w = self._xw()
        with pytest.raises(ValueError, match="stride"):
            check_conv_inputs(x, w, 0, 0)

    def test_kernel_does_not_fit(self):
        x = np.zeros((1, 1, 4, 4))
        w = np.zeros((1, 1, 6, 6))
        with pytest.raises(ValueError, match="does not fit"):
            check_conv_inputs(x, w, 0, 1)


class TestCheckConvInputsExtended:
    """Rejection paths for the extended parameter space.

    Every invalid spelling must fail with an actionable message naming the
    offending value — asserted via ``match`` so a reworded error that drops
    the key term breaks loudly here.
    """

    def _xw(self):
        return np.zeros((1, 4, 8, 8)), np.zeros((4, 4, 3, 3))

    def test_valid_full_params(self):
        x = np.zeros((1, 4, 9, 8))
        w = np.zeros((4, 2, 3, 3))
        check_conv_inputs(x, w, padding=(1, 0, 2, 1), stride=(1, 2),
                          dilation=(2, 1), groups=2)
        check_conv_inputs(x, w, padding="same", stride=2, dilation=2,
                          groups=2)

    @pytest.mark.parametrize("stride", [0, -1, (0, 1), (1, -2)])
    def test_nonpositive_stride(self, stride):
        x, w = self._xw()
        with pytest.raises(ValueError,
                           match="stride must be >= 1 in both axes"):
            check_conv_inputs(x, w, 1, stride)

    @pytest.mark.parametrize("dilation", [0, -1, (0, 2), (2, -1)])
    def test_nonpositive_dilation(self, dilation):
        x, w = self._xw()
        with pytest.raises(ValueError,
                           match="dilation must be >= 1 in both axes"):
            check_conv_inputs(x, w, 1, 1, dilation=dilation)

    def test_dilated_extent_does_not_fit(self):
        """A 3x3 kernel at dilation 4 spans 9 pixels — more than the 8+0
        padded input; the message must surface the dilated extent."""
        x, w = self._xw()
        with pytest.raises(ValueError, match=r"dilated extent 9x9"):
            check_conv_inputs(x, w, 0, 1, dilation=4)

    def test_dilated_extent_fits_with_padding(self):
        x, w = self._xw()
        check_conv_inputs(x, w, 1, 1, dilation=4)  # 8+2 >= 9: fine

    def test_negative_asymmetric_padding(self):
        x, w = self._xw()
        with pytest.raises(ValueError, match="padding must be non-negative"):
            check_conv_inputs(x, w, (1, -1, 0, 0), 1)

    def test_zero_groups(self):
        x, w = self._xw()
        with pytest.raises(ValueError, match="groups must be positive"):
            check_conv_inputs(x, w, 1, 1, groups=0)

    def test_channels_not_divisible_by_groups(self):
        x, _ = self._xw()
        with pytest.raises(ValueError, match="divisible by groups"):
            check_conv_inputs(x, np.zeros((3, 1, 3, 3)), 1, 1, groups=3)

    def test_group_channel_mismatch(self):
        x, w = self._xw()  # weight has 4 channel taps, C/groups is 2
        with pytest.raises(ValueError, match="C/groups"):
            check_conv_inputs(x, w, 1, 1, groups=2)

    @pytest.mark.parametrize("bad", [(1, 2, 3), (1, 2, 3, 4, 5)])
    def test_malformed_padding_tuple(self, bad):
        x, w = self._xw()
        with pytest.raises(ValueError, match="padding"):
            check_conv_inputs(x, w, bad, 1)


class TestIntegralityRejection:
    """Non-integer stride/dilation/groups must raise, not silently truncate.

    ``int(1.9) == 1`` answers a different problem than the caller posed;
    every non-integral spelling has to fail loudly with the offending value
    in the message.
    """

    def _xw(self):
        return np.zeros((1, 4, 8, 8)), np.zeros((4, 4, 3, 3))

    @pytest.mark.parametrize("stride", [1.9, 2.0, (1, 1.5), "2"])
    def test_non_integral_stride(self, stride):
        x, w = self._xw()
        with pytest.raises(ValueError, match="stride must be an integer"):
            check_conv_inputs(x, w, 1, stride)

    @pytest.mark.parametrize("dilation", [0.5, (2, 2.5)])
    def test_non_integral_dilation(self, dilation):
        x, w = self._xw()
        with pytest.raises(ValueError, match="dilation must be an integer"):
            check_conv_inputs(x, w, 1, 1, dilation=dilation)

    @pytest.mark.parametrize("groups", [2.5, 2.0, "4"])
    def test_non_integral_groups(self, groups):
        x, w = self._xw()
        with pytest.raises(ValueError, match="groups must be an integer"):
            check_conv_inputs(x, w, 1, 1, groups=groups)

    def test_message_names_value_and_type(self):
        x, w = self._xw()
        with pytest.raises(ValueError, match=r"got 1\.9 of type float"):
            check_conv_inputs(x, w, 1, 1.9)

    def test_numpy_integers_accepted(self):
        x = np.zeros((1, 4, 8, 8))
        w = np.zeros((4, 2, 3, 3))  # C/groups = 2 channel taps
        check_conv_inputs(x, w, 1, np.int64(2), dilation=np.int32(1),
                          groups=np.int64(2))
