"""Tests for repro.utils.random."""

import numpy as np

from repro.utils.random import (
    random_input,
    random_problem,
    random_weight,
    rng_for,
)
from repro.utils.shapes import ConvShape

SHAPE = ConvShape(ih=8, iw=6, kh=3, kw=3, n=2, c=3, f=4)


def test_rng_default_seed_is_deterministic():
    assert rng_for().random() == rng_for().random()


def test_rng_custom_seed_differs_from_default():
    assert rng_for(1).random() != rng_for().random()


def test_random_input_shape_and_determinism():
    a = random_input(SHAPE)
    b = random_input(SHAPE)
    assert a.shape == SHAPE.input_shape()
    np.testing.assert_array_equal(a, b)


def test_random_weight_shape_and_scaling():
    w = random_weight(SHAPE)
    assert w.shape == SHAPE.weight_shape()
    # He-style scaling keeps magnitudes modest.
    assert np.abs(w).max() < 5.0 / np.sqrt(SHAPE.c * SHAPE.kernel_elems) * 3


def test_input_and_weight_use_distinct_streams():
    x = random_input(SHAPE, seed=7)
    w = random_weight(SHAPE, seed=7)
    assert x.ravel()[0] != w.ravel()[0]


def test_random_problem_matches_components():
    x, w = random_problem(SHAPE, seed=3)
    np.testing.assert_array_equal(x, random_input(SHAPE, 3))
    np.testing.assert_array_equal(w, random_weight(SHAPE, 3))


def test_dtype_override():
    x = random_input(SHAPE, dtype=np.float32)
    assert x.dtype == np.float32
