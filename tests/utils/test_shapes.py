"""Tests for repro.utils.shapes."""

import pytest

from repro.utils.shapes import ConvShape, ConvShapeNd, conv_output_size


class TestConvOutputSize:
    def test_valid_no_padding(self):
        assert conv_output_size(5, 3) == 3

    def test_same_padding(self):
        assert conv_output_size(5, 3, padding=1) == 5

    def test_stride(self):
        assert conv_output_size(224, 7, padding=3, stride=2) == 112

    def test_kernel_equals_input(self):
        assert conv_output_size(4, 4) == 1

    def test_stride_floor(self):
        # (7 - 3) // 2 + 1 = 3
        assert conv_output_size(7, 3, stride=2) == 3

    def test_kernel_too_large(self):
        with pytest.raises(ValueError, match="exceeds padded input"):
            conv_output_size(4, 5)

    def test_padding_rescues_large_kernel(self):
        assert conv_output_size(4, 5, padding=1) == 2

    @pytest.mark.parametrize("bad", [0, -1])
    def test_nonpositive_input(self, bad):
        with pytest.raises(ValueError):
            conv_output_size(bad, 3)

    def test_negative_padding(self):
        with pytest.raises(ValueError):
            conv_output_size(5, 3, padding=-1)

    def test_zero_stride(self):
        with pytest.raises(ValueError):
            conv_output_size(5, 3, stride=0)


class TestConvShape:
    def test_output_extents(self):
        s = ConvShape(ih=5, iw=5, kh=3, kw=3)
        assert (s.oh, s.ow) == (3, 3)

    def test_padded_extents(self):
        s = ConvShape(ih=5, iw=7, kh=3, kw=3, padding=2)
        assert (s.padded_ih, s.padded_iw) == (9, 11)

    def test_element_counts(self):
        s = ConvShape(ih=6, iw=4, kh=2, kw=2, n=3, c=2, f=5)
        assert s.input_elems == 24
        assert s.kernel_elems == 4
        assert s.output_elems == 5 * 3
        assert s.total_input_elems == 3 * 2 * 24
        assert s.total_kernel_elems == 5 * 2 * 4
        assert s.total_output_elems == 3 * 5 * 15

    def test_macs_and_flops(self):
        s = ConvShape(ih=5, iw=5, kh=3, kw=3, n=2, c=3, f=4)
        assert s.macs == 2 * 4 * 3 * 9 * 9
        assert s.direct_flops == 2 * s.macs

    def test_poly_lengths_match_paper(self):
        # Sec. 3.2: combined kernel size = (Kh-1)*Iw + Kw.
        s = ConvShape(ih=5, iw=5, kh=3, kw=3)
        assert s.poly_input_len == 25
        assert s.poly_kernel_len == 2 * 5 + 3
        assert s.poly_product_len == 25 + 13 - 1

    def test_poly_lengths_use_padded_width(self):
        s = ConvShape(ih=5, iw=5, kh=3, kw=3, padding=1)
        assert s.poly_input_len == 49
        assert s.poly_kernel_len == 2 * 7 + 3

    def test_invalid_shape_raises_at_construction(self):
        with pytest.raises(ValueError):
            ConvShape(ih=3, iw=3, kh=5, kw=5)

    def test_with_replaces_fields(self):
        s = ConvShape(ih=8, iw=8, kh=3, kw=3)
        s2 = s.with_(n=16, padding=1)
        assert (s2.n, s2.padding) == (16, 1)
        assert (s.n, s.padding) == (1, 0)

    def test_tensor_shapes_roundtrip(self):
        s = ConvShape(ih=9, iw=7, kh=3, kw=2, n=4, c=2, f=6,
                      padding=1, stride=2)
        s2 = ConvShape.from_tensors(s.input_shape(), s.weight_shape(),
                                    s.padding, s.stride)
        assert s2 == s

    def test_from_tensors_channel_mismatch(self):
        with pytest.raises(ValueError, match="channel mismatch"):
            ConvShape.from_tensors((1, 3, 8, 8), (4, 2, 3, 3))

    def test_from_tensors_bad_rank(self):
        with pytest.raises(ValueError, match="NCHW"):
            ConvShape.from_tensors((3, 8, 8), (4, 3, 3, 3))
        with pytest.raises(ValueError, match="FCKhKw"):
            ConvShape.from_tensors((1, 3, 8, 8), (4, 3, 3))

    def test_hashable_for_caching(self):
        s = ConvShape(ih=8, iw=8, kh=3, kw=3)
        assert {s: 1}[ConvShape(ih=8, iw=8, kh=3, kw=3)] == 1


class TestEnsureInt:
    def test_plain_and_numpy_ints_pass(self):
        import numpy as np

        from repro.utils.shapes import ensure_int
        assert ensure_int(3, "stride") == 3
        got = ensure_int(np.int32(5), "stride")
        assert got == 5 and type(got) is int

    @pytest.mark.parametrize("bad", [1.0, 1.9, "2", None, (1,)])
    def test_non_integral_rejected(self, bad):
        from repro.utils.shapes import ensure_int
        with pytest.raises(ValueError, match="stride must be an integer"):
            ensure_int(bad, "stride")

    def test_conv_shape_rejects_float_groups(self):
        with pytest.raises(ValueError, match="groups must be an integer"):
            ConvShape(ih=8, iw=8, kh=3, kw=3, n=1, c=4, f=4, groups=2.5)

    def test_from_tensors_rejects_float_groups(self):
        with pytest.raises(ValueError, match="groups must be an integer"):
            ConvShape.from_tensors((1, 4, 8, 8), (4, 4, 3, 3), 0, 1, 1, 2.0)


class TestConvShapeNd:
    def test_rank_checks_at_construction(self):
        with pytest.raises(ValueError, match="at least one spatial"):
            ConvShapeNd(extents=(), kernel=())
        with pytest.raises(ValueError, match="kernel rank"):
            ConvShapeNd(extents=(8, 8), kernel=(3,))

    def test_rank2_matches_conv_shape(self):
        nd = ConvShapeNd(extents=(9, 7), kernel=(3, 2), n=2, c=4, f=6,
                         padding=(1, 0, 2, 1), stride=(2, 1), dilation=2)
        flat = ConvShape(ih=9, iw=7, kh=3, kw=2, n=2, c=4, f=6,
                         padding=(1, 0, 2, 1), stride=(2, 1), dilation=2)
        assert nd.to_2d() == flat
        assert nd.out_extents == (flat.oh, flat.ow)
        assert nd.macs == flat.macs

    def test_poly_strides_are_row_major(self):
        # Padded extents (4, 6, 5): strides (30, 5, 1) — a 3D degree
        # map t^(30k + 5i + j) over the flattened padded volume.
        nd = ConvShapeNd(extents=(4, 4, 3), kernel=(2, 2, 2),
                         padding=(0, 1, 1))
        assert nd.padded_extents == (4, 6, 5)
        assert nd.poly_strides == (30, 5, 1)
        assert nd.poly_input_len == 120
        assert nd.poly_kernel_len == 1 + 30 + 5 + 1
        assert nd.poly_product_len == 120 + 37 - 1

    def test_dilation_stretches_kernel_degrees(self):
        nd = ConvShapeNd(extents=(8,), kernel=(3,), dilation=3)
        assert nd.eff_kernel == (7,)
        assert nd.poly_kernel_len == 1 + 3 * 2

    def test_equal_geometries_share_a_hash(self):
        a = ConvShapeNd(extents=(8, 8), kernel=(3, 3), padding=1,
                        stride=(2, 2))
        b = ConvShapeNd(extents=(8, 8), kernel=(3, 3),
                        padding=(1, 1, 1, 1), stride=2)
        assert a == b and hash(a) == hash(b)

    def test_from_tensors_roundtrip_any_rank(self):
        for x_shape, w_shape in [((2, 4, 11), (6, 4, 3)),
                                 ((2, 4, 5, 6, 4), (6, 2, 2, 3, 2))]:
            groups = 1 if len(x_shape) == 3 else 2
            nd = ConvShapeNd.from_tensors(x_shape, w_shape, padding=1,
                                          groups=groups)
            assert nd.input_shape() == x_shape
            assert nd.weight_shape() == w_shape
            assert nd.output_shape()[:2] == (x_shape[0], w_shape[0])

    def test_from_tensors_rejects_rank_mismatch(self):
        with pytest.raises(ValueError, match="kernel rank"):
            ConvShapeNd.from_tensors((1, 2, 8, 8), (2, 2, 3))
        with pytest.raises(ValueError, match="at least one spatial"):
            ConvShapeNd.from_tensors((1, 2), (2, 2))

    def test_from_tensors_channel_mismatch(self):
        with pytest.raises(ValueError, match="channel mismatch"):
            ConvShapeNd.from_tensors((1, 4, 8, 8, 8), (2, 3, 3, 3, 3))

    def test_group_view_collapses_groups(self):
        nd = ConvShapeNd(extents=(8, 8), kernel=(3, 3), c=8, f=4, groups=4)
        view = nd.group_view()
        assert (view.c, view.f, view.groups) == (2, 1, 1)

    def test_to_2d_rejects_other_ranks(self):
        with pytest.raises(ValueError, match="rank-2"):
            ConvShapeNd(extents=(8,), kernel=(3,)).to_2d()
