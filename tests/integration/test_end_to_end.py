"""End-to-end integration: networks, API surface, experiment machinery."""

import numpy as np

import repro
from repro.nn import functional as F
from repro.nn.network import profile_conv_time
from repro.nn.synthetic import lenet5, synthetic_network
from repro.perfmodel.device import PAPER_DEVICES


class TestPublicApi:
    def test_conv2d_default(self, rng):
        x = rng.standard_normal((1, 3, 10, 10))
        w = rng.standard_normal((4, 3, 3, 3))
        got = repro.conv2d(x, w, padding=1)
        ref = repro.conv2d(x, w, padding=1, algorithm="naive")
        np.testing.assert_allclose(got, ref, atol=1e-8)

    def test_version(self):
        assert repro.__version__

    def test_list_algorithms_exported(self):
        assert repro.ConvAlgorithm.POLYHANKEL in repro.list_algorithms()

    def test_simulate_exported(self):
        shape = repro.ConvShape(ih=32, iw=32, kh=3, kw=3, n=8, c=3, f=8,
                                padding=1)
        assert repro.simulate_gpu_ms("polyhankel", shape, "v100") > 0

    def test_select_algorithm_exported(self):
        shape = repro.ConvShape(ih=224, iw=224, kh=5, kw=5, n=64, c=3,
                                f=16, padding=2)
        result = repro.select_algorithm(shape, "v100")
        assert result.algorithm is repro.ConvAlgorithm.POLYHANKEL


class TestNetworkConsistency:
    def test_synthetic_network_output_invariant_to_algorithm(self, rng):
        x = rng.standard_normal((1, 3, 12, 12))
        net = synthetic_network(12, seed=4, conv_layers=6)
        ref = net.set_conv_algorithm("naive")(x)
        for algo in ("polyhankel", "gemm", "fft", "finegrain_fft"):
            out = net.set_conv_algorithm(algo)(x)
            np.testing.assert_allclose(out, ref, atol=1e-5, err_msg=algo)

    def test_lenet_classifies_deterministically(self, rng):
        """A fixed LeNet assigns stable argmax classes to fixed inputs."""
        x = rng.standard_normal((8, 1, 28, 28))
        logits = lenet5(seed=0)(x)
        classes_again = np.argmax(lenet5(seed=0)(x), axis=1)
        np.testing.assert_array_equal(np.argmax(logits, axis=1),
                                      classes_again)

    def test_probabilities_from_logits(self, rng):
        x = rng.standard_normal((2, 1, 28, 28))
        probs = F.softmax(lenet5()(x))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)


class TestExperimentMachinery:
    def test_fig6_style_profile_all_devices(self):
        """The Sec. 4.2 pipeline: force an algorithm, accumulate conv time,
        across all three paper GPUs."""
        net = synthetic_network(16, seed=0, conv_layers=4)
        for device in PAPER_DEVICES:
            times = {}
            for algo in ("polyhankel", "gemm", "fft"):
                profile = profile_conv_time(net, (8, 3, 16, 16), device,
                                            algorithm=algo, iterations=50)
                times[algo] = profile.total_ms
                assert len(profile.per_layer_s) == 4
            assert len(set(times.values())) == 3

    def test_counters_available_per_layer(self):
        net = synthetic_network(16, seed=0, conv_layers=3)
        shapes = net.layer_shapes((1, 3, 16, 16))
        for layer, shape in zip(net.layers, shapes):
            if hasattr(layer, "counters"):
                assert layer.counters(shape).flops > 0
