"""Differential harness: full conv2d parameter grid vs an independent
reference.

This is the acceptance gate for the extended parameter space: every
combination of per-axis stride, per-axis dilation, groups and padding mode
is checked against :func:`tests.conftest.naive_conv2d_reference` — for the
PolyHankel engine on both FFT backends and both channel strategies, and for
every registered baseline algorithm (which either handles the shape
natively or is lowered by the registry).

The grid is sized to finish well inside the tier-1 budget: the guard test
at the bottom fails if someone grows it past ``GRID_BUDGET`` cases, which
empirically keeps this module under ~60 s on one core.
"""

import itertools

import numpy as np
import pytest

from repro.baselines.registry import convolve, list_algorithms, supports
from repro.core.multichannel import conv2d_polyhankel
from repro.utils.shapes import ConvShape
from tests.conftest import assert_conv_close, naive_conv2d_reference

# Small enough to be fast, awkward enough to be interesting: odd/even and
# unequal spatial extents, channels divisible by every groups value below.
N, C, F, IH, IW, K = 2, 4, 4, 9, 8, 3

STRIDES = [(1, 1), (2, 2), (1, 2)]
DILATIONS = [(1, 1), (2, 2), (1, 3)]
GROUPS = [1, 2, 4]  # 4 == C: depthwise
PADDINGS = [0, 1, (1, 2, 0, 1), "same"]

PARAM_GRID = [
    pytest.param(s, d, g, p,
                 id=f"s{s[0]}{s[1]}-d{d[0]}{d[1]}-g{g}-p{p}")
    for s, d, g, p in itertools.product(STRIDES, DILATIONS, GROUPS,
                                        PADDINGS)
]

#: Hard ceiling on the grid; see the guard test at the bottom.
GRID_BUDGET = 160


def _problem(stride, dilation, groups, padding, seed=7):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((N, C, IH, IW))
    w = rng.standard_normal((F, C // groups, K, K))
    ref = naive_conv2d_reference(x, w, padding, stride, dilation, groups)
    return x, w, ref


class TestPolyHankelGrid:
    """PolyHankel vs reference over the full parameter product."""

    @pytest.mark.parametrize("stride,dilation,groups,padding", PARAM_GRID)
    @pytest.mark.parametrize("strategy", ["sum", "merge"])
    def test_matches_reference(self, stride, dilation, groups, padding,
                               strategy):
        x, w, ref = _problem(stride, dilation, groups, padding)
        got = conv2d_polyhankel(x, w, padding=padding, stride=stride,
                                dilation=dilation, groups=groups,
                                strategy=strategy)
        assert_conv_close(got, ref)

    @pytest.mark.parametrize("backend", ["numpy", "builtin"])
    def test_both_backends(self, backend):
        """A diagonal slice of the grid on each FFT backend (the backend
        affects only the transform arithmetic, not the degree map, so a
        slice suffices once the numpy backend has covered the full grid).
        """
        for stride, dilation, groups, padding in zip(
                STRIDES, DILATIONS, GROUPS, PADDINGS):
            x, w, ref = _problem(stride, dilation, groups, padding)
            got = conv2d_polyhankel(x, w, padding=padding, stride=stride,
                                    dilation=dilation, groups=groups,
                                    backend=backend)
            assert_conv_close(got, ref)


class TestInterleavedLayoutGrid:
    """The fused (interleaved) spectrum layout on a diagonal slice of the
    grid, forced past the auto-selection work threshold.

    Every shape here is far below the layout heuristic's floor, so the
    forced run is the only coverage these parameter combinations get on
    the packed/fused pipeline — including odd per-group channel counts
    (groups=1 with C=4 pairs fully; the g=2 slice leaves odd rows).
    """

    CASES = [((1, 1), (1, 1), 1, 1),
             ((2, 2), (2, 2), 2, 0),
             ((1, 2), (1, 3), 1, "same"),
             ((2, 1), (1, 1), 2, (1, 2, 0, 1))]

    @pytest.mark.parametrize(
        "stride,dilation,groups,padding",
        [pytest.param(*case, id=f"case{i}")
         for i, case in enumerate(CASES)])
    def test_matches_reference_and_planar(self, stride, dilation, groups,
                                          padding):
        x, w, ref = _problem(stride, dilation, groups, padding)
        fused = conv2d_polyhankel(x, w, padding=padding, stride=stride,
                                  dilation=dilation, groups=groups,
                                  layout="interleaved")
        assert_conv_close(fused, ref)
        planar = conv2d_polyhankel(x, w, padding=padding, stride=stride,
                                   dilation=dilation, groups=groups,
                                   layout="planar")
        np.testing.assert_allclose(fused, planar, atol=1e-10)

    def test_odd_channel_slice(self):
        """Odd channel and filter counts (leftover unpaired rows) across
        the strided/dilated path."""
        rng = np.random.default_rng(23)
        x = rng.standard_normal((N, 5, IH, IW))
        w = rng.standard_normal((3, 5, K, K))
        ref = naive_conv2d_reference(x, w, 1, (2, 1), (1, 2), 1)
        got = conv2d_polyhankel(x, w, padding=1, stride=(2, 1),
                                dilation=(1, 2), layout="interleaved")
        assert_conv_close(got, ref)


class TestEveryAlgorithmExtended:
    """Each registered algorithm on representative extended shapes.

    Native algorithms exercise their generalized kernels; the rest
    exercise the registry's lowering (group split, explicit padding,
    kernel dilation, stride-then-subsample).
    """

    CASES = [
        ((2, 2), (1, 1), 1, 1),          # plain strided
        ((1, 1), (2, 2), 1, 2),          # dilated
        ((1, 1), (1, 1), 2, 1),          # grouped
        ((1, 2), (2, 1), 2, (1, 0, 2, 1)),  # everything asymmetric
        ((1, 1), (2, 2), 4, "same"),     # depthwise + dilation + same
    ]

    @pytest.mark.parametrize("algorithm", list_algorithms())
    @pytest.mark.parametrize(
        "stride,dilation,groups,padding",
        [pytest.param(*case, id=f"case{i}")
         for i, case in enumerate(CASES)])
    def test_matches_reference(self, algorithm, stride, dilation, groups,
                               padding):
        shape = ConvShape(ih=IH, iw=IW, kh=K, kw=K, n=N, c=C, f=F,
                          padding=padding, stride=stride,
                          dilation=dilation, groups=groups)
        if not supports(algorithm, shape):
            pytest.skip(f"{algorithm.value} rejects {shape}")
        x, w, ref = _problem(stride, dilation, groups, padding)
        got = convolve(x, w, algorithm=algorithm, padding=padding,
                       stride=stride, dilation=dilation, groups=groups)
        assert_conv_close(got, ref)

    def test_unsupported_is_explicit(self):
        """A shape an algorithm cannot run must be rejected with a
        parameter-bearing error, never computed wrong silently."""
        shape = ConvShape(ih=IH, iw=IW, kh=K, kw=K, n=N, c=C, f=F,
                          stride=(2, 2))
        from repro.baselines.registry import ConvAlgorithm
        assert not supports(ConvAlgorithm.WINOGRAD, shape)
        x, w, _ = _problem((2, 2), (1, 1), 1, 0)
        with pytest.raises(ValueError, match="stride"):
            convolve(x, w, algorithm=ConvAlgorithm.WINOGRAD, stride=(2, 2))


def test_grid_budget():
    """Keep the differential sweep inside the tier-1 time budget.

    2 strategies x the parameter product must stay under GRID_BUDGET
    per-strategy cases (~60 s total on one slow core).  If you need a
    bigger grid, move the extra cases behind ``-m slow``.
    """
    assert len(PARAM_GRID) <= GRID_BUDGET, (
        f"differential grid has {len(PARAM_GRID)} cases; keep it at or "
        f"under {GRID_BUDGET} or mark the overflow as slow")
