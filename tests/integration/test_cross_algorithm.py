"""Integration: every algorithm agrees with every other on a shape grid."""

import itertools

import numpy as np
import pytest

from repro.baselines.registry import (
    ConvAlgorithm,
    convolve,
    list_algorithms,
    supports,
)
from repro.utils.random import random_problem
from repro.utils.shapes import ConvShape

GRID = [
    ConvShape(ih=6, iw=6, kh=3, kw=3, n=1, c=1, f=1),
    ConvShape(ih=9, iw=7, kh=3, kw=2, n=2, c=3, f=4, padding=1),
    ConvShape(ih=8, iw=8, kh=5, kw=5, n=1, c=2, f=2, padding=2),
    ConvShape(ih=11, iw=11, kh=3, kw=3, n=2, c=2, f=3, stride=2),
    ConvShape(ih=7, iw=12, kh=1, kw=1, n=3, c=2, f=2),
    ConvShape(ih=10, iw=10, kh=7, kw=7, n=1, c=1, f=2, padding=3),
]


@pytest.mark.parametrize("shape", GRID, ids=lambda s: f"{s.ih}x{s.iw}"
                         f"k{s.kh}x{s.kw}p{s.padding}s{s.stride}")
def test_all_capable_algorithms_agree(shape):
    x, w = random_problem(shape, seed=hash(shape) % 2 ** 31)
    results = {}
    for algo in list_algorithms():
        if supports(algo, shape):
            results[algo] = convolve(x, w, algorithm=algo,
                                     padding=shape.padding,
                                     stride=shape.stride)
    assert ConvAlgorithm.NAIVE in results
    reference = results[ConvAlgorithm.NAIVE]
    for algo, out in results.items():
        assert out.shape == shape.output_shape(), algo
        np.testing.assert_allclose(out, reference, atol=1e-6,
                                   err_msg=str(algo))


def test_pairwise_consistency_transitive(rng):
    """Spot-check pairwise closeness directly (tighter than via naive)."""
    shape = ConvShape(ih=8, iw=8, kh=3, kw=3, n=2, c=2, f=2, padding=1)
    x, w = random_problem(shape, seed=99)
    outs = [
        convolve(x, w, algorithm=a, padding=1)
        for a in (ConvAlgorithm.POLYHANKEL, ConvAlgorithm.FFT,
                  ConvAlgorithm.GEMM)
    ]
    for a, b in itertools.combinations(outs, 2):
        np.testing.assert_allclose(a, b, atol=1e-8)


def test_float32_inputs_accepted(rng):
    x = rng.standard_normal((1, 2, 8, 8)).astype(np.float32)
    w = rng.standard_normal((2, 2, 3, 3)).astype(np.float32)
    got = convolve(x, w, algorithm="polyhankel", padding=1)
    ref = convolve(x, w, algorithm="naive", padding=1)
    np.testing.assert_allclose(got, ref, atol=1e-5)
