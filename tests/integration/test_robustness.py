"""Robustness: awkward inputs every algorithm must handle identically."""

import numpy as np
import pytest

from repro.baselines.registry import (
    ConvAlgorithm,
    convolve,
    supports,
)
from repro.utils.shapes import ConvShape

FAST = [ConvAlgorithm.POLYHANKEL, ConvAlgorithm.GEMM, ConvAlgorithm.FFT,
        ConvAlgorithm.WINOGRAD, ConvAlgorithm.FINEGRAIN_FFT]


def _check_all(x, w, padding=0, stride=1, atol=1e-7):
    shape = ConvShape.from_tensors(x.shape, w.shape, padding, stride)
    ref = convolve(x, w, algorithm=ConvAlgorithm.NAIVE, padding=padding,
                   stride=stride)
    for algo in FAST:
        if supports(algo, shape):
            out = convolve(x, w, algorithm=algo, padding=padding,
                           stride=stride)
            np.testing.assert_allclose(out, ref, atol=atol,
                                       err_msg=str(algo))
    return ref


class TestAwkwardShapes:
    def test_single_row_image(self, rng):
        _check_all(rng.standard_normal((1, 1, 1, 17)),
                   rng.standard_normal((1, 1, 1, 4)))

    def test_single_column_image(self, rng):
        _check_all(rng.standard_normal((1, 1, 17, 1)),
                   rng.standard_normal((1, 1, 4, 1)))

    def test_kernel_covers_whole_image(self, rng):
        _check_all(rng.standard_normal((2, 2, 6, 7)),
                   rng.standard_normal((3, 2, 6, 7)))

    def test_prime_sized_image(self, rng):
        _check_all(rng.standard_normal((1, 1, 13, 11)),
                   rng.standard_normal((1, 1, 3, 3)), padding=1)

    def test_very_asymmetric_image(self, rng):
        _check_all(rng.standard_normal((1, 1, 3, 40)),
                   rng.standard_normal((1, 1, 2, 5)))

    def test_one_by_one_kernel_with_stride(self, rng):
        _check_all(rng.standard_normal((2, 3, 9, 9)),
                   rng.standard_normal((4, 3, 1, 1)), stride=3)

    def test_padding_larger_than_image(self, rng):
        _check_all(rng.standard_normal((1, 1, 2, 2)),
                   rng.standard_normal((1, 1, 3, 3)), padding=3)


class TestAwkwardMemoryLayouts:
    def test_fortran_ordered_input(self, rng):
        x = np.asfortranarray(rng.standard_normal((2, 2, 8, 8)))
        w = rng.standard_normal((2, 2, 3, 3))
        _check_all(x, w, padding=1)

    def test_non_contiguous_view(self, rng):
        big = rng.standard_normal((2, 2, 16, 16))
        x = big[:, :, ::2, ::2]
        w = rng.standard_normal((2, 2, 3, 3))
        assert not x.flags["C_CONTIGUOUS"]
        _check_all(x, w, padding=1)

    def test_negative_strided_view(self, rng):
        x = rng.standard_normal((1, 1, 8, 8))[:, :, ::-1, ::-1]
        w = rng.standard_normal((1, 1, 3, 3))
        _check_all(x, w)


class TestValues:
    def test_all_zero_input(self):
        out = _check_all(np.zeros((1, 2, 6, 6)),
                         np.ones((2, 2, 3, 3)))
        assert np.all(out == 0)

    def test_constant_input_box_kernel(self):
        """Constant image * normalized box kernel == the constant."""
        out = convolve(np.full((1, 1, 8, 8), 3.0),
                       np.full((1, 1, 3, 3), 1 / 9),
                       algorithm=ConvAlgorithm.POLYHANKEL)
        np.testing.assert_allclose(out, 3.0, atol=1e-10)

    def test_huge_values(self, rng):
        x = rng.standard_normal((1, 1, 8, 8)) * 1e12
        w = rng.standard_normal((1, 1, 3, 3)) * 1e-12
        ref = convolve(x, w, algorithm=ConvAlgorithm.NAIVE)
        out = convolve(x, w, algorithm=ConvAlgorithm.POLYHANKEL)
        np.testing.assert_allclose(out, ref, rtol=1e-8, atol=1e-8)

    def test_integer_dtype_input(self):
        x = np.arange(36).reshape(1, 1, 6, 6)
        w = np.ones((1, 1, 2, 2), dtype=np.int64)
        ref = convolve(x.astype(float), w.astype(float),
                       algorithm=ConvAlgorithm.NAIVE)
        out = convolve(x, w, algorithm=ConvAlgorithm.POLYHANKEL)
        np.testing.assert_allclose(out, ref, atol=1e-9)


class TestErrorMessagesConsistent:
    @pytest.mark.parametrize("algo", FAST)
    def test_kernel_too_large(self, rng, algo):
        x = rng.standard_normal((1, 1, 3, 3))
        w = rng.standard_normal((1, 1, 5, 5))
        with pytest.raises(ValueError):
            convolve(x, w, algorithm=algo)

    @pytest.mark.parametrize("algo", FAST)
    def test_channel_mismatch(self, rng, algo):
        x = rng.standard_normal((1, 2, 8, 8))
        w = rng.standard_normal((1, 3, 3, 3))
        with pytest.raises(ValueError):
            convolve(x, w, algorithm=algo)

    @pytest.mark.parametrize("algo", FAST)
    def test_bad_rank(self, rng, algo):
        with pytest.raises(ValueError):
            convolve(rng.standard_normal((8, 8)),
                     rng.standard_normal((1, 1, 3, 3)), algorithm=algo)
