"""Cross-dimensional differential harness: every registered algorithm for
every operator family (conv1d / conv3d / conv_transpose2d) against the
rank-generic loop oracle in :mod:`tests.conftest`.

This is the acceptance gate for the N-dimensional degree-map extension:

- **Forward grids** — per-op parameter grids (per-axis stride/dilation,
  groups up to depthwise, symmetric/asymmetric/``"same"`` padding) run
  through :func:`repro.baselines.ndops.convolve_nd` for every algorithm
  whose ``op_supports`` predicate accepts the case; the predicate itself
  is also checked to be *honest* (a claimed-supported case must run, a
  rejected case must raise).
- **Adjoint identity** — ``<conv(x, w), y> == <x, conv_T(y, w~)>``: the
  transposed op must be the exact linear-algebra adjoint of the forward
  convolution, validated without any reference implementation at all.
- **Grid budget** — a guard test keeps the module inside the tier-1 time
  budget when someone grows the grids.
"""

import itertools

import numpy as np
import pytest

from repro.baselines.ndops import (
    ConvOp,
    convolve_nd,
    fallback_chain_nd,
    op_algorithms,
    op_supports,
)
from repro.baselines.registry import ConvAlgorithm
from tests.conftest import (
    assert_conv_close,
    naive_conv_transpose2d_reference,
    naive_convnd_reference,
)

# Geometry shared by the grids: small but awkward (odd/uneven extents,
# channels divisible by every groups value used below).
N, C, F = 2, 4, 4
L_1D, K_1D = 11, 3
EXT_3D, K_3D = (5, 6, 4), (2, 3, 2)
EXT_T2D, K_T2D = (5, 4), (3, 2)

GRID_1D = [
    pytest.param(s, d, g, p, id=f"s{s}-d{d}-g{g}-p{p}")
    for s, d, g, p in itertools.product(
        [1, 2, 3], [1, 2], [1, 2, 4], [0, 1, (2, 0), "same"])
]

GRID_3D = [
    pytest.param(s, d, g, p, id=f"s{s}-d{d}-g{g}-p{p}")
    for s, d, g, p in [
        (1, 1, 1, 0),
        (2, 1, 1, 1),
        ((1, 2, 1), 1, 1, (1, 0, 1)),
        (1, (1, 1, 2), 1, 1),
        (1, 1, 2, 1),
        (1, 1, 4, "same"),
        (2, 2, 1, 2),
        ((2, 1, 2), (1, 2, 1), 2, (0, 1, 1, 0, 2, 1)),
    ]
]

GRID_T2D = [
    pytest.param(s, d, g, p, op, id=f"s{s}-d{d}-g{g}-p{p}-op{op}")
    for s, d, g, p, op in [
        (1, 1, 1, 0, 0),
        (2, 1, 1, 1, 0),
        (2, 1, 1, 0, 1),
        ((2, 3), 1, 1, (1, 0), (1, 2)),
        (1, 2, 1, 1, 0),
        (2, 2, 2, (1, 0, 0, 1), 1),
        (3, 1, 4, 1, 2),
    ]
]

#: Hard ceiling on the total grid size; see the guard test at the bottom.
GRID_BUDGET = 120


def _skip_unsupported(op, algorithm, x_shape, w_shape, **params):
    if not op_supports(op, algorithm, x_shape, w_shape, **params):
        pytest.skip(f"{algorithm.value} does not support this case")


class TestConv1dGrid:
    """Every registered algorithm on the 1D grid (native or lowered)."""

    @pytest.mark.parametrize("stride,dilation,groups,padding", GRID_1D)
    @pytest.mark.parametrize(
        "algorithm", op_algorithms(ConvOp.CONV1D),
        ids=lambda a: a.value)
    def test_matches_reference(self, algorithm, stride, dilation, groups,
                               padding):
        rng = np.random.default_rng(11)
        x = rng.standard_normal((N, C, L_1D))
        w = rng.standard_normal((F, C // groups, K_1D))
        params = dict(padding=padding, stride=stride, dilation=dilation,
                      groups=groups)
        _skip_unsupported(ConvOp.CONV1D, algorithm, x.shape, w.shape,
                          **params)
        got = convolve_nd(x, w, op=ConvOp.CONV1D, algorithm=algorithm,
                          **params)
        assert_conv_close(got, naive_convnd_reference(x, w, **params))


class TestConv3dGrid:
    """The rank-3 operator across its registered algorithm table."""

    @pytest.mark.parametrize("stride,dilation,groups,padding", GRID_3D)
    @pytest.mark.parametrize(
        "algorithm", op_algorithms(ConvOp.CONV3D),
        ids=lambda a: a.value)
    def test_matches_reference(self, algorithm, stride, dilation, groups,
                               padding):
        rng = np.random.default_rng(13)
        x = rng.standard_normal((N, C, *EXT_3D))
        w = rng.standard_normal((F, C // groups, *K_3D))
        params = dict(padding=padding, stride=stride, dilation=dilation,
                      groups=groups)
        _skip_unsupported(ConvOp.CONV3D, algorithm, x.shape, w.shape,
                          **params)
        got = convolve_nd(x, w, op=ConvOp.CONV3D, algorithm=algorithm,
                          **params)
        assert_conv_close(got, naive_convnd_reference(x, w, **params))


class TestConvTranspose2dGrid:
    """Transposed conv: the scatter oracle referees every algorithm's
    adjoint lowering (and the native scatter itself)."""

    @pytest.mark.parametrize("stride,dilation,groups,padding,output_padding",
                             GRID_T2D)
    @pytest.mark.parametrize(
        "algorithm",
        [ConvAlgorithm.POLYHANKEL, ConvAlgorithm.GEMM, ConvAlgorithm.FFT,
         ConvAlgorithm.NAIVE],
        ids=lambda a: a.value)
    def test_matches_reference(self, algorithm, stride, dilation, groups,
                               padding, output_padding):
        rng = np.random.default_rng(17)
        x = rng.standard_normal((N, C, *EXT_T2D))
        w = rng.standard_normal((C, F // groups, *K_T2D))
        params = dict(padding=padding, stride=stride, dilation=dilation,
                      groups=groups, output_padding=output_padding)
        _skip_unsupported(ConvOp.CONV_TRANSPOSE2D, algorithm, x.shape,
                          w.shape, **params)
        got = convolve_nd(x, w, op=ConvOp.CONV_TRANSPOSE2D,
                          algorithm=algorithm, **params)
        assert_conv_close(
            got, naive_conv_transpose2d_reference(x, w, **params))


class TestSupportsHonesty:
    """``op_supports`` must track what ``convolve_nd`` actually does:
    a rejected case raises a clear ValueError, an accepted case runs."""

    def test_rejected_case_raises(self):
        # Winograd requires stride 1; the 1D lowering inherits that limit.
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 2, 16))
        w = rng.standard_normal((2, 2, 3))
        assert not op_supports(ConvOp.CONV1D, ConvAlgorithm.WINOGRAD,
                               x.shape, w.shape, stride=2)
        with pytest.raises(ValueError, match="does not support"):
            convolve_nd(x, w, op=ConvOp.CONV1D,
                        algorithm=ConvAlgorithm.WINOGRAD, stride=2)

    def test_conv3d_table_is_exact(self):
        x_shape, w_shape = (1, 2, 4, 4, 4), (2, 2, 2, 2, 2)
        for algorithm in op_algorithms(ConvOp.CONV2D):
            claimed = op_supports(ConvOp.CONV3D, algorithm, x_shape,
                                  w_shape)
            assert claimed == (algorithm in set(op_algorithms(
                ConvOp.CONV3D))), algorithm

    def test_fallback_chain_only_lists_supported(self):
        chain = fallback_chain_nd(ConvOp.CONV3D, (1, 2, 4, 4, 4),
                                  (2, 2, 2, 2, 2))
        assert chain, "conv3d must have at least one route"
        for algorithm in chain:
            assert op_supports(ConvOp.CONV3D, algorithm, (1, 2, 4, 4, 4),
                               (2, 2, 2, 2, 2))


class TestAdjointIdentity:
    """``<conv(x, w), y> == <x, conv_T(y, w~)>`` — the defining property
    of the transposed op, checked with no reference implementation."""

    CASES = [
        dict(padding=0, stride=1, dilation=1, groups=1),
        dict(padding=1, stride=2, dilation=1, groups=1),
        dict(padding=(1, 0, 2, 1), stride=(2, 3), dilation=2, groups=1),
        dict(padding=1, stride=2, dilation=1, groups=2),
    ]

    @pytest.mark.parametrize("params", CASES,
                             ids=lambda p: "-".join(f"{k}{v}"
                                                    for k, v in p.items()))
    @pytest.mark.parametrize("algorithm",
                             [ConvAlgorithm.POLYHANKEL, ConvAlgorithm.GEMM],
                             ids=lambda a: a.value)
    def test_inner_product_identity(self, algorithm, params):
        from repro.baselines.registry import convolve
        from repro.utils.shapes import ConvShapeNd

        rng = np.random.default_rng(23)
        x = rng.standard_normal((2, 4, 7, 6))
        w_fwd = rng.standard_normal((6, 4 // params["groups"], 3, 3))
        y = convolve(x, w_fwd, algorithm, **params)
        y_coeff = rng.standard_normal(y.shape)
        # The forward weight (f, c/g, kh, kw) already IS the transposed
        # layout (c_in, c_out/g, kh, kw) of the adjoint problem: the
        # adjoint's input channels are the forward filters.
        w_t = w_fwd
        # output_padding recovering x's extent exactly: the remainder the
        # forward stride discarded per axis.
        shape = ConvShapeNd.from_tensors(x.shape, w_fwd.shape, **params)
        out_pad = tuple(
            (p - e) % s for p, e, s in zip(
                shape.padded_extents, shape.eff_kernel, shape.stride_nd))
        xt = convolve_nd(y_coeff, w_t, op=ConvOp.CONV_TRANSPOSE2D,
                         algorithm=algorithm, output_padding=out_pad,
                         **params)
        assert xt.shape == x.shape
        lhs = float(np.vdot(y, y_coeff))
        rhs = float(np.vdot(x, xt))
        assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)

    def test_shape_roundtrip_with_output_padding(self):
        """Any forward conv output maps back to the exact input extent
        when output_padding absorbs the strided remainder."""
        from repro.baselines.ndops import conv_transpose2d_output_shape

        for ih, k, s, p in itertools.product([7, 8, 9], [2, 3], [1, 2, 3],
                                             [0, 1]):
            eff_k = k
            if ih + 2 * p < eff_k:
                continue
            oh = (ih + 2 * p - eff_k) // s + 1
            op = (ih + 2 * p - eff_k) % s
            got = conv_transpose2d_output_shape(
                (1, 2, oh, oh), (2, 2, k, k), padding=p, stride=s,
                output_padding=op)
            assert got[2] == ih, (ih, k, s, p)


def test_grid_budget():
    """Keep the module inside the tier-1 budget: growing a grid means
    consciously raising this ceiling."""
    total = len(GRID_1D) + len(GRID_3D) + len(GRID_T2D)
    assert total <= GRID_BUDGET, (
        f"differential ndim grid has {total} cases; the budget is "
        f"{GRID_BUDGET} — trim the grid or raise the budget deliberately")
