"""Property-based tests for the convolution backward passes.

The key algebraic fact: backward-input is the *adjoint* of the forward
map, so for all x, g:  <conv(x, w), g> == <x, backward_input(g, w)>.
Similarly for the weights.  These inner-product identities must hold
exactly (up to float error) for every shape — a much stronger check than
spot finite differences.
"""

import numpy as np
from hypothesis import given, strategies as st

from repro.baselines.naive import conv2d_naive
from repro.nn.grad import (
    conv2d_backward_input,
    conv2d_backward_weight,
    dilate_spatial,
)
from repro.utils.shapes import ConvShape


@st.composite
def grad_problems(draw):
    ih = draw(st.integers(2, 10))
    iw = draw(st.integers(2, 10))
    padding = draw(st.integers(0, 2))
    kh = draw(st.integers(1, min(4, ih + 2 * padding)))
    kw = draw(st.integers(1, min(4, iw + 2 * padding)))
    stride = draw(st.integers(1, 3))
    n = draw(st.integers(1, 2))
    c = draw(st.integers(1, 2))
    f = draw(st.integers(1, 2))
    shape = ConvShape(ih=ih, iw=iw, kh=kh, kw=kw, n=n, c=c, f=f,
                      padding=padding, stride=stride)
    seed = draw(st.integers(0, 2 ** 31 - 1))
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(shape.input_shape())
    w = rng.standard_normal(shape.weight_shape())
    g = rng.standard_normal(shape.output_shape())
    return shape, x, w, g


@given(grad_problems())
def test_backward_input_is_adjoint(problem):
    shape, x, w, g = problem
    forward = conv2d_naive(x, w, shape.padding, shape.stride)
    dx = conv2d_backward_input(g, w, x.shape, shape.padding, shape.stride)
    np.testing.assert_allclose(np.sum(forward * g), np.sum(x * dx),
                               rtol=1e-7, atol=1e-7)


@given(grad_problems())
def test_backward_weight_is_adjoint(problem):
    shape, x, w, g = problem
    forward = conv2d_naive(x, w, shape.padding, shape.stride)
    dw = conv2d_backward_weight(g, x, (shape.kh, shape.kw), shape.padding,
                                shape.stride)
    np.testing.assert_allclose(np.sum(forward * g), np.sum(w * dw),
                               rtol=1e-7, atol=1e-7)


@given(grad_problems())
def test_gradients_linear_in_upstream(problem):
    shape, x, w, g = problem
    dx1 = conv2d_backward_input(g, w, x.shape, shape.padding, shape.stride)
    dx2 = conv2d_backward_input(2.0 * g, w, x.shape, shape.padding,
                                shape.stride)
    np.testing.assert_allclose(dx2, 2.0 * dx1, atol=1e-8)


@given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4))
def test_dilate_roundtrip(h, w, stride):
    rng = np.random.default_rng(h * 100 + w * 10 + stride)
    x = rng.standard_normal((1, 1, h, w))
    dilated = dilate_spatial(x, stride)
    np.testing.assert_array_equal(dilated[..., ::stride, ::stride], x)
    assert np.count_nonzero(dilated) <= x.size
