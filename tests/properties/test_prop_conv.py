"""Property-based tests: convolution equivalence across algorithms."""

import numpy as np
from hypothesis import given, strategies as st

from repro.baselines.naive import conv2d_naive
from repro.baselines.registry import ConvAlgorithm, convolve, supports
from repro.core.multichannel import conv2d_polyhankel
from repro.core.polyhankel import conv2d_single
from repro.utils.shapes import ConvShape
from tests.conftest import assert_conv_close, naive_conv2d_reference


@st.composite
def conv_problems(draw, max_size=12, max_kernel=5, channels=True):
    """A random, always-valid convolution problem."""
    ih = draw(st.integers(1, max_size))
    iw = draw(st.integers(1, max_size))
    padding = draw(st.integers(0, 2))
    kh = draw(st.integers(1, min(max_kernel, ih + 2 * padding)))
    kw = draw(st.integers(1, min(max_kernel, iw + 2 * padding)))
    stride = draw(st.integers(1, 3))
    n = draw(st.integers(1, 3)) if channels else 1
    c = draw(st.integers(1, 3)) if channels else 1
    f = draw(st.integers(1, 3)) if channels else 1
    shape = ConvShape(ih=ih, iw=iw, kh=kh, kw=kw, n=n, c=c, f=f,
                      padding=padding, stride=stride)
    seed = draw(st.integers(0, 2 ** 31 - 1))
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(shape.input_shape())
    w = rng.standard_normal(shape.weight_shape())
    return shape, x, w


@given(conv_problems(channels=False))
def test_polyhankel_single_matches_naive(problem):
    shape, x, w = problem
    got = conv2d_single(x[0, 0], w[0, 0], padding=shape.padding,
                        stride=shape.stride)
    ref = conv2d_naive(x, w, shape.padding, shape.stride)[0, 0]
    np.testing.assert_allclose(got, ref, atol=1e-7)


@given(conv_problems())
def test_polyhankel_batched_matches_naive(problem):
    shape, x, w = problem
    got = conv2d_polyhankel(x, w, padding=shape.padding,
                            stride=shape.stride)
    ref = conv2d_naive(x, w, shape.padding, shape.stride)
    np.testing.assert_allclose(got, ref, atol=1e-7)


@given(conv_problems())
def test_merge_strategy_matches_sum(problem):
    shape, x, w = problem
    a = conv2d_polyhankel(x, w, padding=shape.padding, stride=shape.stride,
                          strategy="sum")
    b = conv2d_polyhankel(x, w, padding=shape.padding, stride=shape.stride,
                          strategy="merge")
    np.testing.assert_allclose(a, b, atol=1e-7)


@given(conv_problems(max_size=10, max_kernel=4),
       st.sampled_from([ConvAlgorithm.GEMM, ConvAlgorithm.FFT,
                        ConvAlgorithm.FFT_TILING, ConvAlgorithm.WINOGRAD,
                        ConvAlgorithm.FINEGRAIN_FFT,
                        ConvAlgorithm.IMPLICIT_PRECOMP_GEMM]))
def test_every_algorithm_matches_naive(problem, algorithm):
    shape, x, w = problem
    if not supports(algorithm, shape):
        return
    got = convolve(x, w, algorithm=algorithm, padding=shape.padding,
                   stride=shape.stride)
    ref = conv2d_naive(x, w, shape.padding, shape.stride)
    np.testing.assert_allclose(got, ref, atol=1e-6)


@given(conv_problems(max_size=8, max_kernel=3))
def test_linearity_in_input(problem):
    """conv(a*x1 + b*x2, w) == a*conv(x1, w) + b*conv(x2, w)."""
    shape, x, w = problem
    rng = np.random.default_rng(0)
    x2 = rng.standard_normal(x.shape)
    lhs = conv2d_polyhankel(2.0 * x + 3.0 * x2, w, padding=shape.padding,
                            stride=shape.stride)
    rhs = (2.0 * conv2d_polyhankel(x, w, padding=shape.padding,
                                   stride=shape.stride)
           + 3.0 * conv2d_polyhankel(x2, w, padding=shape.padding,
                                     stride=shape.stride))
    np.testing.assert_allclose(lhs, rhs, atol=1e-6)


@st.composite
def full_conv_problems(draw):
    """A random, always-valid problem over the *extended* parameter space:
    per-axis stride and dilation, asymmetric or ``"same"`` padding, groups.
    Sizes are chosen so the dilated kernel always fits the padded input."""
    kh = draw(st.integers(1, 3))
    kw = draw(st.integers(1, 3))
    dh = draw(st.integers(1, 3))
    dw = draw(st.integers(1, 3))
    eff_kh = dh * (kh - 1) + 1
    eff_kw = dw * (kw - 1) + 1
    ih = draw(st.integers(eff_kh, eff_kh + 8))
    iw = draw(st.integers(eff_kw, eff_kw + 8))
    stride = (draw(st.integers(1, 3)), draw(st.integers(1, 3)))
    padding = draw(st.one_of(
        st.integers(0, 2),
        st.tuples(st.integers(0, 2), st.integers(0, 2)),
        st.tuples(st.integers(0, 2), st.integers(0, 2),
                  st.integers(0, 2), st.integers(0, 2)),
        st.just("same"),
    ))
    groups = draw(st.sampled_from([1, 2, 4]))
    c = groups * draw(st.integers(1, 2))
    f = groups * draw(st.integers(1, 2))
    n = draw(st.integers(1, 2))
    shape = ConvShape(ih=ih, iw=iw, kh=kh, kw=kw, n=n, c=c, f=f,
                      padding=padding, stride=stride, dilation=(dh, dw),
                      groups=groups)
    seed = draw(st.integers(0, 2 ** 31 - 1))
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(shape.input_shape())
    w = rng.standard_normal(shape.weight_shape())
    return shape, x, w


@given(full_conv_problems())
def test_polyhankel_full_params_match_reference(problem):
    shape, x, w = problem
    got = conv2d_polyhankel(x, w, padding=shape.padding,
                            stride=shape.stride, dilation=shape.dilation,
                            groups=shape.groups)
    ref = naive_conv2d_reference(x, w, shape.padding, shape.stride,
                                 shape.dilation, shape.groups)
    assert_conv_close(got, ref)


@given(full_conv_problems())
def test_merge_strategy_full_params_match_sum(problem):
    shape, x, w = problem
    kwargs = dict(padding=shape.padding, stride=shape.stride,
                  dilation=shape.dilation, groups=shape.groups)
    a = conv2d_polyhankel(x, w, strategy="sum", **kwargs)
    b = conv2d_polyhankel(x, w, strategy="merge", **kwargs)
    assert_conv_close(a, b)


@given(full_conv_problems())
def test_grouped_equals_per_group_convolutions(problem):
    """conv(x, w, groups=g) == concat of g independent convolutions."""
    shape, x, w = problem
    got = conv2d_polyhankel(x, w, padding=shape.padding,
                            stride=shape.stride, dilation=shape.dilation,
                            groups=shape.groups)
    c_per, f_per = shape.group_channels, shape.group_filters
    pieces = [
        conv2d_polyhankel(x[:, g * c_per:(g + 1) * c_per],
                          w[g * f_per:(g + 1) * f_per],
                          padding=shape.pad_tblr, stride=shape.stride,
                          dilation=shape.dilation)
        for g in range(shape.groups)
    ]
    assert_conv_close(got, np.concatenate(pieces, axis=1))


@given(full_conv_problems(),
       st.sampled_from([ConvAlgorithm.GEMM, ConvAlgorithm.FFT,
                        ConvAlgorithm.WINOGRAD,
                        ConvAlgorithm.IMPLICIT_GEMM]))
def test_every_algorithm_full_params_match_reference(problem, algorithm):
    shape, x, w = problem
    if not supports(algorithm, shape):
        return
    got = convolve(x, w, algorithm=algorithm, padding=shape.padding,
                   stride=shape.stride, dilation=shape.dilation,
                   groups=shape.groups)
    ref = naive_conv2d_reference(x, w, shape.padding, shape.stride,
                                 shape.dilation, shape.groups)
    assert_conv_close(got, ref)


@given(conv_problems(max_size=8, max_kernel=3))
def test_linearity_in_kernel(problem):
    shape, x, w = problem
    rng = np.random.default_rng(1)
    w2 = rng.standard_normal(w.shape)
    lhs = conv2d_polyhankel(x, w - w2, padding=shape.padding,
                            stride=shape.stride)
    rhs = (conv2d_polyhankel(x, w, padding=shape.padding,
                             stride=shape.stride)
           - conv2d_polyhankel(x, w2, padding=shape.padding,
                               stride=shape.stride))
    np.testing.assert_allclose(lhs, rhs, atol=1e-6)
