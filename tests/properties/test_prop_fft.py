"""Property-based tests for the FFT substrate."""

import numpy as np
from hypothesis import given, strategies as st

from repro import fft as F


def _signal(seed: int, n: int, complex_valued: bool = True) -> np.ndarray:
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)
    if complex_valued:
        return x + 1j * rng.standard_normal(n)
    return x


sizes = st.integers(1, 96)
seeds = st.integers(0, 2 ** 31 - 1)


@given(seeds, sizes)
def test_builtin_matches_numpy(seed, n):
    x = _signal(seed, n)
    with F.use_backend("builtin"):
        np.testing.assert_allclose(F.fft(x), np.fft.fft(x), atol=1e-7)


@given(seeds, sizes)
def test_roundtrip(seed, n):
    x = _signal(seed, n)
    with F.use_backend("builtin"):
        np.testing.assert_allclose(F.ifft(F.fft(x)), x, atol=1e-8)


@given(seeds, sizes)
def test_rfft_roundtrip(seed, n):
    x = _signal(seed, n, complex_valued=False)
    with F.use_backend("builtin"):
        np.testing.assert_allclose(F.irfft(F.rfft(x), n), x, atol=1e-8)


@given(seeds, sizes)
def test_parseval(seed, n):
    """Energy is conserved: sum |x|^2 == sum |X|^2 / n."""
    x = _signal(seed, n)
    with F.use_backend("builtin"):
        spec = F.fft(x)
    np.testing.assert_allclose(np.sum(np.abs(x) ** 2),
                               np.sum(np.abs(spec) ** 2) / n, rtol=1e-8)


@given(seeds, st.integers(1, 48), st.integers(1, 48))
def test_convolution_theorem(seed, n, m):
    """Pointwise spectral product == linear convolution (with padding)."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal(n)
    b = rng.standard_normal(m)
    nfft = F.next_fast_len(n + m - 1)
    with F.use_backend("builtin"):
        conv = F.irfft(F.rfft(a, nfft) * F.rfft(b, nfft), nfft)[:n + m - 1]
    np.testing.assert_allclose(conv, np.convolve(a, b), atol=1e-8)


@given(seeds, sizes)
def test_time_shift_is_phase_ramp(seed, n):
    """Circular shift by one sample multiplies bin k by e^{-2 pi i k / n}."""
    x = _signal(seed, n)
    with F.use_backend("builtin"):
        spec = F.fft(x)
        shifted = F.fft(np.roll(x, 1))
    k = np.arange(n)
    np.testing.assert_allclose(shifted, spec * np.exp(-2j * np.pi * k / n),
                               atol=1e-7)


@given(st.integers(1, 10 ** 6))
def test_next_fast_len_bounds(n):
    result = F.next_fast_len(n)
    assert n <= result <= F.next_pow2(n)
    assert F.is_smooth(result)
