"""Property-based tests: Polynomial obeys commutative-ring axioms."""

import numpy as np
from hypothesis import given, strategies as st

from repro.core.polynomial import Polynomial

coeff_lists = st.lists(
    st.floats(-10, 10, allow_nan=False, allow_infinity=False),
    min_size=1, max_size=16,
)


@given(coeff_lists, coeff_lists)
def test_addition_commutes(a, b):
    pa, pb = Polynomial(a), Polynomial(b)
    assert pa + pb == pb + pa


@given(coeff_lists, coeff_lists)
def test_multiplication_commutes(a, b):
    pa, pb = Polynomial(a), Polynomial(b)
    assert pa * pb == pb * pa


@given(coeff_lists, coeff_lists, coeff_lists)
def test_multiplication_associates(a, b, c):
    pa, pb, pc = Polynomial(a), Polynomial(b), Polynomial(c)
    lhs = (pa * pb) * pc
    rhs = pa * (pb * pc)
    np.testing.assert_allclose(lhs.trimmed().coeffs, rhs.trimmed().coeffs,
                               atol=1e-6 * (1 + np.abs(lhs.coeffs).max()))


@given(coeff_lists, coeff_lists, coeff_lists)
def test_distributivity(a, b, c):
    pa, pb, pc = Polynomial(a), Polynomial(b), Polynomial(c)
    lhs = pa * (pb + pc)
    rhs = pa * pb + pa * pc
    np.testing.assert_allclose(lhs.coeffs[: len(rhs.coeffs)],
                               rhs.coeffs[: len(lhs.coeffs)],
                               atol=1e-6 * (1 + np.abs(lhs.coeffs).max()))


@given(coeff_lists)
def test_multiplicative_identity(a):
    p = Polynomial(a)
    assert p * Polynomial([1.0]) == p


@given(coeff_lists)
def test_zero_annihilates(a):
    p = Polynomial(a)
    assert p * Polynomial.zero() == Polynomial.zero()


@given(coeff_lists, coeff_lists)
def test_fft_mul_equals_naive_mul(a, b):
    pa, pb = Polynomial(a), Polynomial(b)
    naive = pa.naive_mul(pb)
    fast = pa.fft_mul(pb)
    np.testing.assert_allclose(fast.coeffs, naive.coeffs,
                               atol=1e-6 * (1 + np.abs(naive.coeffs).max()))


@given(coeff_lists, coeff_lists,
       st.floats(-2, 2, allow_nan=False, allow_infinity=False))
def test_evaluation_is_ring_homomorphism(a, b, t):
    pa, pb = Polynomial(a), Polynomial(b)
    np.testing.assert_allclose((pa * pb)(t), pa(t) * pb(t),
                               rtol=1e-6, atol=1e-5)
    np.testing.assert_allclose((pa + pb)(t), pa(t) + pb(t),
                               rtol=1e-6, atol=1e-6)


@given(coeff_lists, coeff_lists)
def test_degree_of_product(a, b):
    pa, pb = Polynomial(a), Polynomial(b)
    if pa == Polynomial.zero() or pb == Polynomial.zero():
        return
    assert (pa.naive_mul(pb)).degree <= pa.degree + pb.degree
