"""Property-based tests for the Hankel substrate."""

import numpy as np
from hypothesis import given, strategies as st

from repro.hankel.im2col_view import im2col_hankel_view, im2col_patches
from repro.hankel.matrix import DoublyBlockedHankel, HankelMatrix
from repro.hankel.properties import is_doubly_blocked_hankel, is_hankel

seeds = st.integers(0, 2 ** 31 - 1)
dims = st.integers(1, 8)


@given(seeds, dims, dims)
def test_hankel_matvec_equals_dense(seed, rows, cols):
    rng = np.random.default_rng(seed)
    h = HankelMatrix(rng.standard_normal(rows + cols - 1), rows, cols)
    v = rng.standard_normal(cols)
    np.testing.assert_allclose(h @ v, h.to_dense() @ v, atol=1e-8)


@given(seeds, dims, dims)
def test_hankel_dense_roundtrip(seed, rows, cols):
    rng = np.random.default_rng(seed)
    h = HankelMatrix(rng.standard_normal(rows + cols - 1), rows, cols)
    h2 = HankelMatrix.from_dense(h.to_dense())
    np.testing.assert_array_equal(h.data, h2.data)


@given(seeds, st.integers(1, 4), st.integers(1, 4), st.integers(1, 4),
       st.integers(1, 4))
def test_dbh_dense_is_doubly_blocked_hankel(seed, br, bc, ir, ic):
    rng = np.random.default_rng(seed)
    base = rng.standard_normal((br + bc - 1, ir + ic - 1))
    m = DoublyBlockedHankel(base, br, bc, ir, ic)
    assert is_doubly_blocked_hankel(m.to_dense(), (br, bc), (ir, ic))


@given(seeds, st.integers(1, 4), st.integers(1, 4), st.integers(1, 4),
       st.integers(1, 4))
def test_dbh_matvec_equals_dense(seed, br, bc, ir, ic):
    rng = np.random.default_rng(seed)
    base = rng.standard_normal((br + bc - 1, ir + ic - 1))
    m = DoublyBlockedHankel(base, br, bc, ir, ic)
    v = rng.standard_normal(m.shape[1])
    np.testing.assert_allclose(m @ v, m.to_dense() @ v, atol=1e-8)


@st.composite
def images_and_kernels(draw):
    ih = draw(st.integers(2, 10))
    iw = draw(st.integers(2, 10))
    p = draw(st.integers(0, 2))
    kh = draw(st.integers(1, min(4, ih + 2 * p)))
    kw = draw(st.integers(1, min(4, iw + 2 * p)))
    seed = draw(seeds)
    return np.random.default_rng(seed).standard_normal((ih, iw)), kh, kw, p


@given(images_and_kernels())
def test_im2col_view_equals_materialized(args):
    img, kh, kw, p = args
    view = im2col_hankel_view(img, kh, kw, padding=p)
    patches = im2col_patches(img[None, None], kh, kw, padding=p)[0]
    np.testing.assert_array_equal(view.to_dense(), patches)
    assert is_hankel(view.block(0, 0).to_dense())


@given(images_and_kernels())
def test_im2col_view_storage_never_exceeds_padded_input(args):
    img, kh, kw, p = args
    view = im2col_hankel_view(img, kh, kw, padding=p)
    padded_elems = (img.shape[0] + 2 * p) * (img.shape[1] + 2 * p)
    assert view.storage_elems == padded_elems
