"""Property-based tests: sentinels and the fallback chain under
adversarial numerics.

The strategies deliberately visit the float64 extremes ordinary unit-normal
tests never reach — subnormals, magnitudes around 1e+/-30, values within a
few bits of overflow — because that is exactly where a magnitude-bound
sentinel can misfire (flagging healthy results) or go blind (passing
blowups).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.naive import conv2d_naive
from repro.guard import faults
from repro.guard.chain import guarded_conv2d, reset_guard
from repro.guard.sentinel import HEALTHY, SUSPECT, classify
from repro.guard.state import guarded
from repro.utils.shapes import ConvShape
from tests.conftest import assert_conv_close

#: Scales spanning subnormal, tiny, unit, huge and near-overflow regimes.
#: max|out| <= max|x| * ||w||_1, so pairing 1e30 with 1e30 stays ~1e61,
#: far from the 1.8e308 overflow ceiling; the near-overflow entry is only
#: paired with unit-scale partners below.
ADVERSARIAL_SCALES = (
    5e-324,   # smallest subnormal
    1e-300,
    1e-30,
    1.0,
    1e30,
)
NEAR_OVERFLOW = 1e150


@st.composite
def adversarial_problems(draw):
    """A small conv problem with adversarially scaled input and weight."""
    ih = draw(st.integers(4, 10))
    iw = draw(st.integers(4, 10))
    kh = draw(st.integers(1, 3))
    kw = draw(st.integers(1, 3))
    padding = draw(st.integers(0, 1))
    shape = ConvShape(ih=ih, iw=iw, kh=kh, kw=kw, n=1,
                      c=draw(st.integers(1, 2)), f=draw(st.integers(1, 2)),
                      padding=padding)
    x_scale = draw(st.sampled_from(ADVERSARIAL_SCALES + (NEAR_OVERFLOW,)))
    # Keep the product of scales below overflow: the near-overflow scale
    # only ever pairs with a unit-scale partner.
    w_scale = 1.0 if x_scale == NEAR_OVERFLOW else \
        draw(st.sampled_from(ADVERSARIAL_SCALES))
    seed = draw(st.integers(0, 2 ** 31 - 1))
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(shape.input_shape()) * x_scale
    w = rng.standard_normal(shape.weight_shape()) * w_scale
    return shape, x, w


@given(adversarial_problems())
def test_sentinel_accepts_exact_results_at_any_scale(problem):
    """The naive result obeys the exact-arithmetic bound by construction,
    so the sentinel must classify it healthy at every dynamic range —
    subnormal outputs included."""
    shape, x, w = problem
    out = conv2d_naive(x, w, padding=shape.padding)
    verdict = classify(out, x, w, shape.poly_product_len)
    assert verdict.status == HEALTHY, verdict.reason


@given(adversarial_problems())
def test_sentinel_flags_blowups_whose_scale_it_can_see(problem):
    """A 1e12-scaled output must read suspect whenever the blowup exceeds
    the predicted-error allowance (for vanishing outputs the allowance's
    max(B, 1) floor legitimately absorbs it)."""
    shape, x, w = problem
    out = conv2d_naive(x, w, padding=shape.padding)
    blown = out * 1e12
    verdict = classify(blown, x, w, shape.poly_product_len)
    healthy_verdict = classify(out, x, w, shape.poly_product_len)
    peak = float(np.max(np.abs(blown))) if blown.size else 0.0
    threshold = healthy_verdict.bound + healthy_verdict.predicted_error
    if peak > 2 * threshold:
        assert verdict.status == SUSPECT
    else:
        assert verdict.status == HEALTHY


@pytest.mark.parametrize("kind", ["nan_input", "backend_error",
                                  "accuracy_blowup"])
@settings(max_examples=10)
@given(problem=adversarial_problems(), seed=st.integers(0, 2 ** 16))
def test_chain_recovers_reference_under_fault(problem, seed, kind):
    """Whatever the dynamic range, an injected fault must never reach the
    caller: the guarded forward matches the naive reference."""
    shape, x, w = problem
    ref = conv2d_naive(x, w, padding=shape.padding)
    reset_guard()
    with guarded(), faults.inject(kind, seed=seed), \
            np.errstate(invalid="ignore", over="ignore"):
        out = guarded_conv2d(x, w, padding=shape.padding)
    reset_guard()
    assert_conv_close(out, ref)
