"""Property-based tests for the degree-map identities of Sec. 2.2/3.1."""

import numpy as np
from hypothesis import given, strategies as st

from repro.core.degree_map import (
    kernel_degrees,
    lshaped_traversal_map,
    max_kernel_degree,
    output_degrees,
)
from repro.hankel.properties import (
    mirror_symmetry_constant,
    row_degree_vectors,
)


@st.composite
def conv_dims(draw):
    oh = draw(st.integers(1, 8))
    ow = draw(st.integers(1, 8))
    kh = draw(st.integers(1, 5))
    kw = draw(st.integers(1, 5))
    return oh, ow, kh, kw


@given(conv_dims())
def test_mirror_symmetry_holds_universally(dims):
    """RD_k + reverse(RD_1) is constant for every row — the structural
    property the whole construction rests on (Sec. 2.2)."""
    oh, ow, kh, kw = dims
    iw = ow + kw - 1
    rd = row_degree_vectors(oh, ow, kh, kw, iw)
    for row in rd:
        const = mirror_symmetry_constant(row, rd[0])
        assert const == row[-1]


@given(conv_dims())
def test_output_degrees_strictly_increasing_row_major(dims):
    """Different rows must land on different product degrees (Sec. 2.2:
    'the power of t in each element is unique')."""
    oh, ow, kh, kw = dims
    iw = ow + kw - 1
    deg = output_degrees(oh, ow, iw, kh, kw).reshape(-1)
    assert (np.diff(deg) > 0).all()


@given(conv_dims())
def test_kernel_degrees_fit_range(dims):
    oh, ow, kh, kw = dims
    iw = ow + kw - 1
    deg = kernel_degrees(kh, kw, iw)
    m = max_kernel_degree(kh, kw, iw)
    assert deg.min() == 0
    assert deg.max() == m


@given(conv_dims())
def test_inner_product_degree_is_row_constant(dims):
    """For every im2col row, pairing entry degrees with the kernel degrees
    yields one constant sum — each row collapses to a single term."""
    oh, ow, kh, kw = dims
    iw = ow + kw - 1
    rd = row_degree_vectors(oh, ow, kh, kw, iw)
    ker = kernel_degrees(kh, kw, iw).reshape(-1)
    sums = rd + ker[None, :]
    assert (sums == sums[:, :1]).all()


@given(conv_dims())
def test_row_sums_equal_output_degrees(dims):
    """The per-row constant equals the Eq. 12 gather degree for that row."""
    oh, ow, kh, kw = dims
    iw = ow + kw - 1
    rd = row_degree_vectors(oh, ow, kh, kw, iw)
    ker = kernel_degrees(kh, kw, iw).reshape(-1)
    out = output_degrees(oh, ow, iw, kh, kw).reshape(-1)
    np.testing.assert_array_equal(rd[:, 0] + ker[0], out)


@given(conv_dims())
def test_traversal_map_is_bijection(dims):
    oh, ow, kh, kw = dims
    base = lshaped_traversal_map(oh, ow, kh, kw)
    values = np.sort(base.reshape(-1))
    np.testing.assert_array_equal(values, np.arange(base.size))
