"""Property-based tests for the N-dimensional PolyHankel extension.

Two layers of properties:

- Core engine laws (match-the-oracle, linearity, channel decomposition)
  directly on :func:`convnd_polyhankel`.
- Operator-level laws on :func:`repro.baselines.ndops.convolve_nd` — the
  adjoint inner-product identity that *defines* transposed convolution,
  and the shape-formula round-trip showing ``output_padding`` recovers
  the exact forward input extent for any stride/dilation/padding draw.
"""

import numpy as np
from hypothesis import given, strategies as st

from repro.baselines.ndops import (
    ConvOp,
    conv_transpose2d_output_shape,
    convolve_nd,
)
from repro.core.ndim import convnd_naive, convnd_polyhankel
from repro.utils.shapes import ConvShapeNd


@st.composite
def nd_problems(draw):
    ndim = draw(st.integers(1, 3))
    spatial = tuple(draw(st.integers(2, 7)) for _ in range(ndim))
    padding = tuple(draw(st.integers(0, 1)) for _ in range(ndim))
    kernel = tuple(
        draw(st.integers(1, min(3, e + 2 * p)))
        for e, p in zip(spatial, padding)
    )
    stride = tuple(draw(st.integers(1, 2)) for _ in range(ndim))
    n = draw(st.integers(1, 2))
    c = draw(st.integers(1, 2))
    f = draw(st.integers(1, 2))
    seed = draw(st.integers(0, 2 ** 31 - 1))
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, c, *spatial))
    w = rng.standard_normal((f, c, *kernel))
    return x, w, padding, stride


@given(nd_problems())
def test_polyhankel_matches_naive_any_rank(problem):
    x, w, padding, stride = problem
    got = convnd_polyhankel(x, w, padding=padding, stride=stride)
    ref = convnd_naive(x, w, padding=padding, stride=stride)
    np.testing.assert_allclose(got, ref, atol=1e-7)


@given(nd_problems())
def test_linearity_any_rank(problem):
    x, w, padding, stride = problem
    rng = np.random.default_rng(0)
    x2 = rng.standard_normal(x.shape)
    lhs = convnd_polyhankel(x + x2, w, padding=padding, stride=stride)
    rhs = (convnd_polyhankel(x, w, padding=padding, stride=stride)
           + convnd_polyhankel(x2, w, padding=padding, stride=stride))
    np.testing.assert_allclose(lhs, rhs, atol=1e-7)


@st.composite
def adjoint_problems(draw):
    """Random rank-2 forward-conv problems with the full parameter space:
    per-axis stride and dilation, asymmetric padding, groups."""
    groups = draw(st.sampled_from([1, 2]))
    c = groups * draw(st.integers(1, 2))
    f = groups * draw(st.integers(1, 2))
    stride = tuple(draw(st.integers(1, 3)) for _ in range(2))
    dilation = tuple(draw(st.integers(1, 2)) for _ in range(2))
    padding = tuple(draw(st.integers(0, 2)) for _ in range(4))
    kernel = tuple(draw(st.integers(1, 3)) for _ in range(2))
    eff = tuple(d * (k - 1) + 1 for d, k in zip(dilation, kernel))
    spatial = tuple(
        max(draw(st.integers(2, 6)), e - lo - hi)
        for e, (lo, hi) in zip(eff, [padding[:2], padding[2:]])
    )
    seed = draw(st.integers(0, 2 ** 31 - 1))
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((draw(st.integers(1, 2)), c, *spatial))
    w = rng.standard_normal((f, c // groups, *kernel))
    params = dict(padding=padding, stride=stride, dilation=dilation,
                  groups=groups)
    return x, w, params, seed


@given(adjoint_problems())
def test_transpose_is_the_adjoint(problem):
    """``<conv(x, w), y> == <x, conv_T(y, w)>`` for random y: the
    transposed op is exactly the linear-algebra adjoint of the forward
    convolution with the same parameters."""
    x, w, params, seed = problem
    y = convolve_nd(x, w, op=ConvOp.CONV2D, **params)
    y_coeff = np.random.default_rng(seed ^ 0x5EED).standard_normal(y.shape)
    shape = ConvShapeNd.from_tensors(x.shape, w.shape, **params)
    out_pad = tuple(
        (p - e) % s for p, e, s in zip(
            shape.padded_extents, shape.eff_kernel, shape.stride_nd))
    xt = convolve_nd(y_coeff, w, op=ConvOp.CONV_TRANSPOSE2D,
                     output_padding=out_pad, **params)
    assert xt.shape == x.shape
    scale = max(abs(float(np.vdot(y, y_coeff))), 1.0)
    np.testing.assert_allclose(float(np.vdot(x, xt)),
                               float(np.vdot(y, y_coeff)),
                               atol=1e-8 * scale)


@given(adjoint_problems())
def test_shape_formula_roundtrip(problem):
    """The tconv output-shape formula with the remainder as
    ``output_padding`` recovers the forward input extent exactly."""
    x, w, params, _ = problem
    shape = ConvShapeNd.from_tensors(x.shape, w.shape, **params)
    out_pad = tuple(
        (p - e) % s for p, e, s in zip(
            shape.padded_extents, shape.eff_kernel, shape.stride_nd))
    y_shape = shape.output_shape()
    # The forward weight re-read in the tconv (c_in, c_out/g, kh, kw)
    # layout: the forward filters become the adjoint's input channels.
    got = conv_transpose2d_output_shape(
        y_shape, w.shape, padding=params["padding"],
        stride=params["stride"], dilation=params["dilation"],
        output_padding=out_pad, groups=params["groups"])
    assert got == x.shape


@given(nd_problems())
def test_channel_sum_decomposition(problem):
    """Multi-channel output equals the sum of single-channel convolutions —
    the frequency-domain channel aggregation is exact."""
    x, w, padding, stride = problem
    full = convnd_polyhankel(x, w, padding=padding, stride=stride)
    per_channel = sum(
        convnd_polyhankel(x[:, c: c + 1], w[:, c: c + 1],
                          padding=padding, stride=stride)
        for c in range(x.shape[1])
    )
    np.testing.assert_allclose(full, per_channel, atol=1e-7)
