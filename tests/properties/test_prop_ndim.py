"""Property-based tests for the N-dimensional PolyHankel extension."""

import numpy as np
from hypothesis import given, strategies as st

from repro.core.ndim import convnd_naive, convnd_polyhankel


@st.composite
def nd_problems(draw):
    ndim = draw(st.integers(1, 3))
    spatial = tuple(draw(st.integers(2, 7)) for _ in range(ndim))
    padding = tuple(draw(st.integers(0, 1)) for _ in range(ndim))
    kernel = tuple(
        draw(st.integers(1, min(3, e + 2 * p)))
        for e, p in zip(spatial, padding)
    )
    stride = tuple(draw(st.integers(1, 2)) for _ in range(ndim))
    n = draw(st.integers(1, 2))
    c = draw(st.integers(1, 2))
    f = draw(st.integers(1, 2))
    seed = draw(st.integers(0, 2 ** 31 - 1))
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, c, *spatial))
    w = rng.standard_normal((f, c, *kernel))
    return x, w, padding, stride


@given(nd_problems())
def test_polyhankel_matches_naive_any_rank(problem):
    x, w, padding, stride = problem
    got = convnd_polyhankel(x, w, padding=padding, stride=stride)
    ref = convnd_naive(x, w, padding=padding, stride=stride)
    np.testing.assert_allclose(got, ref, atol=1e-7)


@given(nd_problems())
def test_linearity_any_rank(problem):
    x, w, padding, stride = problem
    rng = np.random.default_rng(0)
    x2 = rng.standard_normal(x.shape)
    lhs = convnd_polyhankel(x + x2, w, padding=padding, stride=stride)
    rhs = (convnd_polyhankel(x, w, padding=padding, stride=stride)
           + convnd_polyhankel(x2, w, padding=padding, stride=stride))
    np.testing.assert_allclose(lhs, rhs, atol=1e-7)


@given(nd_problems())
def test_channel_sum_decomposition(problem):
    """Multi-channel output equals the sum of single-channel convolutions —
    the frequency-domain channel aggregation is exact."""
    x, w, padding, stride = problem
    full = convnd_polyhankel(x, w, padding=padding, stride=stride)
    per_channel = sum(
        convnd_polyhankel(x[:, c: c + 1], w[:, c: c + 1],
                          padding=padding, stride=stride)
        for c in range(x.shape[1])
    )
    np.testing.assert_allclose(full, per_channel, atol=1e-7)
