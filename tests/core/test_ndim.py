"""Tests for the N-dimensional PolyHankel extension."""

import numpy as np
import pytest

from repro.core.ndim import (
    conv1d_polyhankel,
    conv3d_polyhankel,
    convnd_naive,
    convnd_polyhankel,
    kernel_polynomial_nd,
    max_kernel_degree_nd,
)


class TestConv1d:
    @pytest.mark.parametrize("length,klen,p,s", [
        (10, 3, 0, 1), (16, 5, 2, 1), (12, 4, 0, 2), (9, 3, 1, 3),
        (5, 5, 0, 1), (1, 1, 0, 1),
    ])
    def test_matches_naive(self, rng, length, klen, p, s):
        x = rng.standard_normal((2, 3, length))
        w = rng.standard_normal((4, 3, klen))
        got = conv1d_polyhankel(x, w, padding=p, stride=s)
        ref = convnd_naive(x, w, padding=p, stride=s)
        np.testing.assert_allclose(got, ref, atol=1e-8)

    def test_matches_numpy_correlate(self, rng):
        x = rng.standard_normal(20)
        w = rng.standard_normal(4)
        got = conv1d_polyhankel(x[None, None], w[None, None])[0, 0]
        ref = np.correlate(x, w, mode="valid")
        np.testing.assert_allclose(got, ref, atol=1e-9)

    def test_wrong_rank_rejected(self, rng):
        with pytest.raises(ValueError, match="length"):
            conv1d_polyhankel(rng.standard_normal((2, 3, 4, 5)),
                              rng.standard_normal((1, 3, 2)))


class TestConv2dViaNd:
    def test_agrees_with_dedicated_2d_path(self, rng):
        from repro.core.multichannel import conv2d_polyhankel

        x = rng.standard_normal((2, 3, 8, 7))
        w = rng.standard_normal((4, 3, 3, 2))
        np.testing.assert_allclose(
            convnd_polyhankel(x, w, padding=1, stride=2),
            conv2d_polyhankel(x, w, padding=1, stride=2), atol=1e-8)

    def test_per_dimension_padding_and_stride(self, rng):
        x = rng.standard_normal((1, 2, 9, 7))
        w = rng.standard_normal((2, 2, 3, 3))
        got = convnd_polyhankel(x, w, padding=(2, 1), stride=(1, 2))
        ref = convnd_naive(x, w, padding=(2, 1), stride=(1, 2))
        np.testing.assert_allclose(got, ref, atol=1e-8)


class TestConv3d:
    @pytest.mark.parametrize("case", [
        ((1, 1, 4, 4, 4), (1, 1, 2, 2, 2), 0, 1),
        ((2, 2, 5, 6, 4), (3, 2, 2, 3, 2), 0, 1),
        ((1, 2, 6, 6, 6), (2, 2, 3, 3, 3), 1, 1),
        ((1, 1, 6, 5, 7), (1, 1, 2, 2, 2), 0, 2),
    ])
    def test_matches_naive(self, rng, case):
        x_shape, w_shape, p, s = case
        x = rng.standard_normal(x_shape)
        w = rng.standard_normal(w_shape)
        got = conv3d_polyhankel(x, w, padding=p, stride=s)
        ref = convnd_naive(x, w, padding=p, stride=s)
        np.testing.assert_allclose(got, ref, atol=1e-8)

    def test_wrong_rank_rejected(self, rng):
        with pytest.raises(ValueError, match="d, h, w"):
            conv3d_polyhankel(rng.standard_normal((2, 3, 4)),
                              rng.standard_normal((1, 3, 2)))


class TestFourDimensional:
    def test_4d_convolution_works(self, rng):
        """The construction is rank-generic; 4D as a stress test."""
        x = rng.standard_normal((1, 1, 3, 4, 3, 5))
        w = rng.standard_normal((2, 1, 2, 2, 2, 3))
        got = convnd_polyhankel(x, w)
        ref = convnd_naive(x, w)
        np.testing.assert_allclose(got, ref, atol=1e-8)


class TestConstruction:
    def test_2d_kernel_polynomial_matches_dedicated(self, rng):
        from repro.core.construction import kernel_polynomial

        k = rng.standard_normal((3, 2))
        np.testing.assert_array_equal(kernel_polynomial_nd(k, (6, 5)),
                                      kernel_polynomial(k, 5))

    def test_max_degree_2d_matches(self):
        from repro.core.degree_map import max_kernel_degree

        assert max_kernel_degree_nd((3, 3), (5, 1)) == \
            max_kernel_degree(3, 3, 5)

    def test_validation(self, rng):
        x = rng.standard_normal((1, 2, 5, 5))
        w = rng.standard_normal((1, 3, 2, 2))
        with pytest.raises(ValueError, match="channel mismatch"):
            convnd_polyhankel(x, w)
        with pytest.raises(ValueError, match="one entry per spatial"):
            convnd_polyhankel(rng.standard_normal((1, 2, 5, 5)),
                              rng.standard_normal((1, 2, 2, 2)),
                              padding=(1, 1, 1))
        with pytest.raises(ValueError, match="exceeds padded input"):
            convnd_polyhankel(rng.standard_normal((1, 1, 3, 3)),
                              rng.standard_normal((1, 1, 5, 5)))


class TestOptions:
    def test_builtin_backend(self, rng):
        x = rng.standard_normal((1, 1, 4, 4, 4))
        w = rng.standard_normal((1, 1, 2, 2, 2))
        np.testing.assert_allclose(
            conv3d_polyhankel(x, w, backend="builtin"),
            convnd_naive(x, w), atol=1e-8)

    def test_fft_policy(self, rng):
        x = rng.standard_normal((1, 2, 10))
        w = rng.standard_normal((2, 2, 3))
        np.testing.assert_allclose(
            conv1d_polyhankel(x, w, fft_policy="smooth7"),
            convnd_naive(x, w), atol=1e-9)
