"""Tests for the degree maps (Sec. 3.1, Fig. 2 and the Eq. 6-7 example)."""

import numpy as np
import pytest

from repro.core.degree_map import (
    first_row_of_map,
    input_degrees,
    kernel_degrees,
    last_col_of_map,
    lshaped_traversal_map,
    max_kernel_degree,
    output_degrees,
)


class TestMaxKernelDegree:
    def test_paper_example(self):
        # 5x5 input, 3x3 kernel: M = 2*5 + 2 = 12 (u00's degree in Eq. 6).
        assert max_kernel_degree(3, 3, 5) == 12

    def test_row_kernel(self):
        assert max_kernel_degree(1, 4, 8) == 3

    def test_invalid(self):
        with pytest.raises(ValueError):
            max_kernel_degree(0, 3, 5)
        with pytest.raises(ValueError):
            max_kernel_degree(3, 5, 4)  # iw < kw


class TestInputDegrees:
    def test_is_row_major_flatten(self):
        deg = input_degrees(3, 4)
        np.testing.assert_array_equal(deg.reshape(-1), np.arange(12))

    def test_paper_eq4(self):
        """Eq. 4: a[i,j] gets degree 5*i + j for the 5x5 example."""
        deg = input_degrees(5, 5)
        assert deg[0, 0] == 0
        assert deg[1, 0] == 5
        assert deg[4, 4] == 24


class TestKernelDegrees:
    def test_paper_eq6(self):
        """Eq. 6: U^t = (u00 t^12, u01 t^11, u02 t^10, u10 t^7, ...,
        u22 t^0)."""
        deg = kernel_degrees(3, 3, 5)
        np.testing.assert_array_equal(
            deg, [[12, 11, 10], [7, 6, 5], [2, 1, 0]]
        )

    def test_is_reverse_of_first_row_degrees(self):
        """The construction is reverse(first-row degree vector)."""
        from repro.hankel.properties import row_degree_vectors

        kh, kw, iw = 3, 2, 6
        ow = iw - kw + 1
        rd_first = row_degree_vectors(1, ow, kh, kw, iw)[0]
        deg = kernel_degrees(kh, kw, iw).reshape(-1)
        np.testing.assert_array_equal(deg, rd_first[::-1])

    def test_degrees_non_negative_and_unique(self):
        deg = kernel_degrees(4, 3, 7)
        assert deg.min() == 0
        assert len(np.unique(deg)) == deg.size


class TestOutputDegrees:
    def test_paper_eq7(self):
        """Eq. 7: output degrees (12 13 14 17 18 19 22 23 24)."""
        deg = output_degrees(3, 3, 5, 3, 3)
        np.testing.assert_array_equal(
            deg.reshape(-1), [12, 13, 14, 17, 18, 19, 22, 23, 24]
        )

    def test_stride_subsamples(self):
        full = output_degrees(5, 5, 9, 3, 3, stride=1)
        strided = output_degrees(3, 3, 9, 3, 3, stride=2)
        np.testing.assert_array_equal(strided, full[::2, ::2][:3, :3])

    def test_degrees_unique(self):
        deg = output_degrees(4, 3, 6, 2, 2)
        assert len(np.unique(deg)) == deg.size

    def test_invalid(self):
        with pytest.raises(ValueError):
            output_degrees(0, 3, 5, 3, 3)


class TestLshapedTraversalMap:
    def test_equals_row_major_closed_form(self):
        """The Fig. 2 L-shaped traversal enumerates the distinct elements in
        exactly row-major flattened-input order."""
        for oh, ow, kh, kw in [(3, 3, 3, 3), (2, 4, 3, 2), (4, 2, 2, 3),
                               (1, 3, 2, 2), (3, 1, 2, 2), (1, 1, 1, 1)]:
            base = lshaped_traversal_map(oh, ow, kh, kw)
            expected = np.arange(base.size).reshape(base.shape)
            np.testing.assert_array_equal(base, expected)

    def test_paper_figure2_values(self):
        base = lshaped_traversal_map(3, 3, 3, 3)
        assert base.shape == (5, 5)
        # Starred entries (kernel map): first rows of first-row blocks.
        np.testing.assert_array_equal(base[0, :3], [0, 1, 2])
        np.testing.assert_array_equal(base[2, :3], [10, 11, 12])
        # Bold entries (result map) include 12 .. 24 pattern.
        assert base[2, 2] == 12
        assert base[4, 4] == 24

    def test_covers_all_entries(self):
        base = lshaped_traversal_map(4, 3, 2, 5)
        assert (base >= 0).all()

    def test_first_row_extraction_matches_kernel_degrees(self):
        oh, ow, kh, kw = 3, 3, 3, 3
        base = lshaped_traversal_map(oh, ow, kh, kw)
        first = first_row_of_map(base, kh, kw, ow)
        iw = ow + kw - 1
        np.testing.assert_array_equal(
            first[::-1], kernel_degrees(kh, kw, iw).reshape(-1)
        )

    def test_last_col_extraction_matches_output_degrees(self):
        oh, ow, kh, kw = 3, 3, 3, 3
        base = lshaped_traversal_map(oh, ow, kh, kw)
        last = last_col_of_map(base, kh, kw, oh, ow)
        iw = ow + kw - 1
        np.testing.assert_array_equal(
            last, output_degrees(oh, ow, iw, kh, kw).reshape(-1)
        )

    def test_invalid(self):
        with pytest.raises(ValueError):
            lshaped_traversal_map(0, 3, 3, 3)
