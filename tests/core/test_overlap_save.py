"""Tests for overlap-save convolution."""

import numpy as np
import pytest

from repro.core.overlap_save import (
    conv2d_polyhankel_os,
    overlap_save_convolve,
)
from tests.conftest import naive_conv2d_reference


class TestOverlapSaveConvolve:
    @pytest.mark.parametrize("length,klen", [(1, 1), (10, 3), (100, 7),
                                             (64, 64), (200, 17), (5, 9)])
    def test_matches_numpy_convolve(self, rng, length, klen):
        signal = rng.standard_normal(length)
        kernel = rng.standard_normal(klen)
        got = overlap_save_convolve(signal, kernel)
        np.testing.assert_allclose(got, np.convolve(signal, kernel),
                                   atol=1e-8)

    @pytest.mark.parametrize("block_len", [8, 17, 64, 1000])
    def test_block_length_choices(self, rng, block_len):
        signal = rng.standard_normal(120)
        kernel = rng.standard_normal(5)
        got = overlap_save_convolve(signal, kernel, block_len=block_len)
        np.testing.assert_allclose(got, np.convolve(signal, kernel),
                                   atol=1e-8)

    def test_batched_signals(self, rng):
        signals = rng.standard_normal((3, 2, 50))
        kernel = rng.standard_normal(6)
        got = overlap_save_convolve(signals, kernel)
        assert got.shape == (3, 2, 55)
        for i in range(3):
            for j in range(2):
                np.testing.assert_allclose(
                    got[i, j], np.convolve(signals[i, j], kernel), atol=1e-8)

    def test_builtin_backend(self, rng):
        signal = rng.standard_normal(40)
        kernel = rng.standard_normal(4)
        got = overlap_save_convolve(signal, kernel, backend="builtin")
        np.testing.assert_allclose(got, np.convolve(signal, kernel),
                                   atol=1e-8)

    def test_empty_signal_rejected(self):
        with pytest.raises(ValueError):
            overlap_save_convolve(np.zeros(0), np.ones(3))


class TestConv2dOverlapSave:
    @pytest.mark.parametrize("case", [
        (1, 1, 1, 5, 5, 3, 3, 0, 1),
        (3, 2, 4, 8, 9, 3, 3, 1, 1),
        (2, 3, 2, 10, 6, 2, 4, 0, 2),
        (4, 1, 1, 6, 6, 3, 3, 2, 1),
    ])
    def test_matches_naive(self, rng, case):
        n, c, f, ih, iw, kh, kw, p, s = case
        x = rng.standard_normal((n, c, ih, iw))
        w = rng.standard_normal((f, c, kh, kw))
        got = conv2d_polyhankel_os(x, w, padding=p, stride=s)
        np.testing.assert_allclose(got, naive_conv2d_reference(x, w, p, s),
                                   atol=1e-8)

    def test_agrees_with_monolithic_path(self, rng):
        from repro.core.multichannel import conv2d_polyhankel

        x = rng.standard_normal((3, 2, 9, 9))
        w = rng.standard_normal((2, 2, 3, 3))
        np.testing.assert_allclose(
            conv2d_polyhankel_os(x, w, padding=1),
            conv2d_polyhankel(x, w, padding=1), atol=1e-8)

    def test_small_blocks_still_correct(self, rng):
        """Tiny OS blocks stress the block-boundary logic."""
        x = rng.standard_normal((2, 1, 8, 8))
        w = rng.standard_normal((1, 1, 3, 3))
        got = conv2d_polyhankel_os(x, w, block_len=16)
        np.testing.assert_allclose(got, naive_conv2d_reference(x, w),
                                   atol=1e-8)

    def test_batch_images_do_not_leak(self, rng):
        """Guard zeros must isolate images: each image's output is the same
        as when convolved alone."""
        x = rng.standard_normal((3, 1, 6, 6))
        w = rng.standard_normal((1, 1, 3, 3))
        batched = conv2d_polyhankel_os(x, w)
        for i in range(3):
            alone = conv2d_polyhankel_os(x[i:i + 1], w)
            np.testing.assert_allclose(batched[i:i + 1], alone, atol=1e-8)
