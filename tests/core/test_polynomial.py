"""Tests for the coefficient-form Polynomial type."""

import numpy as np
import pytest

from repro.core.polynomial import Polynomial


class TestConstruction:
    def test_from_list(self):
        p = Polynomial([1.0, 2.0, 3.0])
        assert p.degree == 2

    def test_from_terms(self):
        p = Polynomial.from_terms({0: 1.0, 3: 2.0})
        np.testing.assert_array_equal(p.coeffs, [1, 0, 0, 2])

    def test_from_terms_empty(self):
        assert Polynomial.from_terms({}).degree == 0

    def test_from_terms_negative_degree(self):
        with pytest.raises(ValueError, match="negative degrees"):
            Polynomial.from_terms({-1: 2.0})

    def test_scalar_promoted(self):
        assert Polynomial(3.0).coeffs.shape == (1,)

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            Polynomial(np.zeros((2, 2)))

    def test_zero(self):
        z = Polynomial.zero()
        assert z.degree == 0
        assert z.coeff(0) == 0.0


class TestAccessors:
    def test_degree_ignores_trailing_zeros(self):
        assert Polynomial([1, 2, 0, 0]).degree == 1

    def test_coeff_beyond_length_is_zero(self):
        assert Polynomial([1, 2]).coeff(10) == 0.0

    def test_coeff_negative_raises(self):
        with pytest.raises(ValueError):
            Polynomial([1]).coeff(-1)

    def test_trimmed(self):
        p = Polynomial([1, 2, 0, 0]).trimmed()
        assert len(p.coeffs) == 2


class TestArithmetic:
    def test_add(self):
        p = Polynomial([1, 2]) + Polynomial([3, 4, 5])
        np.testing.assert_array_equal(p.coeffs, [4, 6, 5])

    def test_sub(self):
        p = Polynomial([3, 4, 5]) - Polynomial([1, 2])
        np.testing.assert_array_equal(p.coeffs, [2, 2, 5])

    def test_eq(self):
        assert Polynomial([1, 2, 0]) == Polynomial([1, 2])
        assert Polynomial([1, 2]) != Polynomial([1, 3])

    def test_eq_non_polynomial(self):
        assert Polynomial([1]).__eq__(42) is NotImplemented

    def test_scalar_mul(self):
        p = 2 * Polynomial([1, 2])
        np.testing.assert_array_equal(p.coeffs, [2, 4])


class TestMultiplication:
    def test_naive_known_product(self):
        # (1 + t)(1 - t) = 1 - t^2
        p = Polynomial([1, 1]).naive_mul(Polynomial([1, -1]))
        np.testing.assert_allclose(p.coeffs, [1, 0, -1])

    @pytest.mark.parametrize("n,m", [(1, 1), (3, 5), (20, 7), (64, 64)])
    def test_fft_matches_naive(self, rng, n, m):
        a = Polynomial(rng.standard_normal(n))
        b = Polynomial(rng.standard_normal(m))
        np.testing.assert_allclose(a.fft_mul(b).coeffs,
                                   a.naive_mul(b).coeffs, atol=1e-8)

    def test_fft_mul_builtin_backend(self, rng):
        a = Polynomial(rng.standard_normal(13))
        b = Polynomial(rng.standard_normal(9))
        np.testing.assert_allclose(a.fft_mul(b, backend="builtin").coeffs,
                                   a.naive_mul(b).coeffs, atol=1e-8)

    def test_fft_mul_complex_coefficients(self, rng):
        a = Polynomial(rng.standard_normal(6) + 1j * rng.standard_normal(6))
        b = Polynomial(rng.standard_normal(4))
        np.testing.assert_allclose(a.fft_mul(b).coeffs,
                                   np.convolve(a.coeffs, b.coeffs),
                                   atol=1e-8)

    def test_mul_operator_dispatches(self, rng):
        a = Polynomial(rng.standard_normal(100))
        b = Polynomial(rng.standard_normal(100))
        np.testing.assert_allclose((a * b).coeffs, a.naive_mul(b).coeffs,
                                   atol=1e-7)

    def test_product_degree(self):
        a = Polynomial([1, 2, 3])
        b = Polynomial([4, 5])
        assert (a * b).degree == 3


class TestEvaluation:
    def test_horner_scalar(self):
        p = Polynomial([1, 2, 3])  # 1 + 2t + 3t^2
        assert p(2) == 1 + 4 + 12

    def test_horner_array(self):
        p = Polynomial([0, 1])
        np.testing.assert_allclose(p(np.array([1.0, 2.0, 3.0])), [1, 2, 3])

    def test_multiplication_is_pointwise_product_of_evaluations(self, rng):
        a = Polynomial(rng.standard_normal(5))
        b = Polynomial(rng.standard_normal(4))
        t = 0.7
        assert np.isclose((a * b)(t), a(t) * b(t))


def test_repr_readable():
    assert "t^1" in repr(Polynomial([0, 2.0]))
    assert repr(Polynomial.zero()) == "Polynomial(0)"
