"""Tests for single-channel PolyHankel convolution."""

import numpy as np
import pytest

from repro.core.polyhankel import conv2d_single
from tests.conftest import naive_conv2d_reference


def _reference(img, ker, padding=0, stride=1):
    return naive_conv2d_reference(img[None, None], ker[None, None],
                                  padding, stride)[0, 0]


class TestCorrectness:
    @pytest.mark.parametrize("ih,iw,kh,kw", [
        (5, 5, 3, 3), (7, 9, 2, 4), (10, 6, 5, 5), (4, 4, 1, 1),
        (8, 8, 8, 8), (12, 5, 3, 2), (1, 9, 1, 3), (9, 1, 3, 1),
    ])
    def test_matches_naive(self, rng, ih, iw, kh, kw):
        img = rng.standard_normal((ih, iw))
        ker = rng.standard_normal((kh, kw))
        np.testing.assert_allclose(conv2d_single(img, ker),
                                   _reference(img, ker), atol=1e-8)

    @pytest.mark.parametrize("padding", [1, 2, 3])
    def test_padding(self, rng, padding):
        img = rng.standard_normal((6, 6))
        ker = rng.standard_normal((3, 3))
        np.testing.assert_allclose(
            conv2d_single(img, ker, padding=padding),
            _reference(img, ker, padding=padding), atol=1e-8)

    @pytest.mark.parametrize("stride", [2, 3])
    def test_stride(self, rng, stride):
        img = rng.standard_normal((11, 9))
        ker = rng.standard_normal((3, 3))
        np.testing.assert_allclose(
            conv2d_single(img, ker, stride=stride),
            _reference(img, ker, stride=stride), atol=1e-8)

    def test_padding_and_stride_together(self, rng):
        img = rng.standard_normal((8, 8))
        ker = rng.standard_normal((3, 3))
        np.testing.assert_allclose(
            conv2d_single(img, ker, padding=2, stride=2),
            _reference(img, ker, padding=2, stride=2), atol=1e-8)

    def test_docstring_example(self):
        img = np.arange(9.0).reshape(3, 3)
        ker = np.ones((2, 2))
        np.testing.assert_allclose(conv2d_single(img, ker),
                                   [[8, 12], [20, 24]], atol=1e-9)


class TestOptions:
    @pytest.mark.parametrize("policy", ["pow2", "smooth7", "even", "exact"])
    def test_all_fft_policies_correct(self, rng, policy):
        img = rng.standard_normal((7, 7))
        ker = rng.standard_normal((3, 3))
        np.testing.assert_allclose(
            conv2d_single(img, ker, fft_policy=policy),
            _reference(img, ker), atol=1e-8)

    def test_builtin_backend(self, rng):
        img = rng.standard_normal((6, 7))
        ker = rng.standard_normal((2, 3))
        np.testing.assert_allclose(
            conv2d_single(img, ker, backend="builtin"),
            _reference(img, ker), atol=1e-8)

    def test_unknown_policy(self, rng):
        with pytest.raises(ValueError, match="unknown FFT policy"):
            conv2d_single(rng.standard_normal((5, 5)),
                          rng.standard_normal((3, 3)),
                          fft_policy="cursed")


class TestValidation:
    def test_kernel_too_large(self, rng):
        with pytest.raises(ValueError):
            conv2d_single(rng.standard_normal((3, 3)),
                          rng.standard_normal((5, 5)))

    def test_rank_checked(self, rng):
        with pytest.raises(ValueError):
            conv2d_single(rng.standard_normal(9),
                          rng.standard_normal((2, 2)))


class TestNumericalQuality:
    def test_large_dynamic_range(self, rng):
        img = rng.standard_normal((16, 16)) * 1e6
        ker = rng.standard_normal((3, 3)) * 1e-6
        ref = _reference(img, ker)
        got = conv2d_single(img, ker)
        np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-6)

    def test_integer_exactness(self):
        """Small-integer problems should come out exactly integral."""
        img = np.arange(25.0).reshape(5, 5)
        ker = np.ones((3, 3))
        out = conv2d_single(img, ker)
        np.testing.assert_allclose(out, np.round(out), atol=1e-9)
