"""Tests for the polynomial construction (Sec. 2.2, Eqs. 10-12)."""

import numpy as np

from repro.core.construction import (
    channel_kernel_stack,
    input_polynomial,
    kernel_polynomial,
    merged_input_polynomial,
    merged_kernel_polynomial,
    merged_output_gather_indices,
    output_gather_indices,
    polynomial_lengths,
)
from repro.core.polynomial import Polynomial
from repro.utils.shapes import ConvShape


class TestInputPolynomial:
    def test_is_flatten(self, rng):
        img = rng.standard_normal((4, 5))
        np.testing.assert_array_equal(input_polynomial(img), img.ravel())

    def test_padding(self, rng):
        img = rng.standard_normal((2, 2))
        coeffs = input_polynomial(img, padding=1)
        assert len(coeffs) == 16
        assert coeffs[0] == 0
        assert coeffs[5] == img[0, 0]


class TestKernelPolynomial:
    def test_paper_eq6_layout(self):
        """u[i,j] lands at degree 12 - (5i + j) for the 5x5/3x3 example."""
        u = np.arange(1.0, 10.0).reshape(3, 3)
        coeffs = kernel_polynomial(u, iw=5)
        assert len(coeffs) == 13  # combined kernel size (Kh-1)*Iw + Kw
        assert coeffs[12] == u[0, 0]
        assert coeffs[11] == u[0, 1]
        assert coeffs[10] == u[0, 2]
        assert coeffs[7] == u[1, 0]
        assert coeffs[0] == u[2, 2]

    def test_row_gaps_are_zero(self):
        """Each kernel row is followed by Iw - Kw zeros (Sec. 3.2)."""
        u = np.ones((2, 2))
        coeffs = kernel_polynomial(u, iw=6)
        np.testing.assert_array_equal(coeffs, [1, 1, 0, 0, 0, 0, 1, 1])

    def test_combined_kernel_size_formula(self):
        """KernelSize = (Kh - 1) * Iw + Kw (Sec. 3.2)."""
        for kh, kw, iw in [(3, 3, 5), (2, 4, 9), (5, 1, 6)]:
            coeffs = kernel_polynomial(np.ones((kh, kw)), iw)
            assert len(coeffs) == (kh - 1) * iw + kw


class TestPaperWorkedExample:
    """Multiply A(t) and U(t) for the 5x5/3x3 example and read off Eq. 7."""

    def test_product_coefficients_are_convolution(self, rng):
        a = rng.standard_normal((5, 5))
        u = rng.standard_normal((3, 3))
        pa = Polynomial(input_polynomial(a))
        pu = Polynomial(kernel_polynomial(u, 5))
        product = pa * pu

        shape = ConvShape(ih=5, iw=5, kh=3, kw=3)
        gather = output_gather_indices(shape)
        d = np.array([[product.coeff(int(k)) for k in row] for row in gather])

        expected = np.zeros((3, 3))
        for i in range(3):
            for j in range(3):
                expected[i, j] = np.sum(a[i:i + 3, j:j + 3] * u)
        np.testing.assert_allclose(d, expected, atol=1e-9)

    def test_gather_degrees_match_eq12(self):
        shape = ConvShape(ih=5, iw=5, kh=3, kw=3)
        np.testing.assert_array_equal(
            output_gather_indices(shape).reshape(-1),
            [12, 13, 14, 17, 18, 19, 22, 23, 24],
        )


class TestChannelKernelStack:
    def test_shape_and_content(self, rng):
        w = rng.standard_normal((4, 3, 2, 2))
        stack = channel_kernel_stack(w, iw=6)
        assert stack.shape == (4, 3, 8)
        np.testing.assert_array_equal(
            stack[2, 1], kernel_polynomial(w[2, 1], 6)
        )


class TestMergedLayout:
    def test_interleaving(self, rng):
        x = rng.standard_normal((3, 2, 2))
        merged = merged_input_polynomial(x)
        assert len(merged) == 12
        # Degree f*C + c: element (c=1, flat=2) at index 2*3 + 1 = 7.
        assert merged[7] == x[1, 1, 0]

    def test_kernel_degrees_disjoint_across_channels(self, rng):
        w = rng.standard_normal((3, 2, 2))
        merged = merged_kernel_polynomial(w, iw=4)
        nonzero = np.nonzero(merged)[0]
        # Channel c occupies residue (C-1-c) mod C: all distinct.
        assert len(nonzero) == w.size
        residues = {int(d) % 3 for d in nonzero}
        assert residues == {0, 1, 2}

    def test_merged_gather_positions(self):
        shape = ConvShape(ih=5, iw=5, kh=3, kw=3, c=2)
        single = output_gather_indices(shape)
        merged = merged_output_gather_indices(shape)
        np.testing.assert_array_equal(merged, 2 * single + 1)

    def test_merged_product_computes_multichannel_conv(self, rng):
        from tests.conftest import naive_conv2d_reference

        x = rng.standard_normal((1, 3, 4, 4))
        w = rng.standard_normal((1, 3, 2, 2))
        merged_a = merged_input_polynomial(x[0])
        merged_u = merged_kernel_polynomial(w[0], iw=4)
        product = np.convolve(merged_a, merged_u)
        shape = ConvShape.from_tensors(x.shape, w.shape)
        gather = merged_output_gather_indices(shape)
        out = product[gather][None, None]
        np.testing.assert_allclose(out, naive_conv2d_reference(x, w),
                                   atol=1e-9)


class TestPolynomialLengths:
    def test_matches_shape_properties(self):
        shape = ConvShape(ih=6, iw=7, kh=3, kw=2, padding=1)
        len_a, len_u, linear = polynomial_lengths(shape)
        assert len_a == shape.poly_input_len
        assert len_u == shape.poly_kernel_len
        assert linear == len_a + len_u - 1
