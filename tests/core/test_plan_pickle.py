"""Plans travel across process boundaries as cache keys, not payloads.

``PolyHankelPlan.__reduce__`` pickles to a :class:`~repro.core.planning.
PlanSpec`-shaped constructor call that re-resolves against the destination
process's plan cache — so a shipped plan deserializes to the *cached*
instance (warm caches in every worker) rather than a detached copy.
"""

import pickle

from repro.core.multichannel import get_plan
from repro.core.planning import PlanSpec
from repro.utils.shapes import ConvShape


def _shape(**overrides) -> ConvShape:
    params = dict(ih=8, iw=8, kh=3, kw=3, n=2, c=3, f=4, padding=1)
    params.update(overrides)
    return ConvShape(**params)


class TestPlanSpec:
    def test_spec_round_trips_to_cached_plan(self):
        plan = get_plan(_shape())
        spec = plan.spec
        assert isinstance(spec, PlanSpec)
        assert spec.resolve() is plan

    def test_spec_is_hashable_and_comparable(self):
        a = get_plan(_shape()).spec
        b = get_plan(_shape()).spec
        assert a == b
        assert hash(a) == hash(b)

    def test_distinct_plans_distinct_specs(self):
        assert get_plan(_shape()).spec != get_plan(_shape(n=3)).spec


class TestPlanPickle:
    def test_unpickles_to_cached_instance(self):
        plan = get_plan(_shape())
        clone = pickle.loads(pickle.dumps(plan))
        assert clone is plan

    def test_strategy_and_backend_survive(self):
        plan = get_plan(_shape(), strategy="merge")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone is plan
        assert clone.strategy == "merge"

    def test_pickle_payload_is_small(self):
        # The whole point: a plan with cached spectra must not ship its
        # arrays.  The wire form is a spec — well under a kilobyte.
        plan = get_plan(_shape())
        assert len(pickle.dumps(plan)) < 1024
