"""Tests for FFT size policies."""

import pytest

from repro.core.planning import POLICIES, plan_fft_size


class TestPlanFftSize:
    def test_pow2(self):
        assert plan_fft_size(100, "pow2") == 128
        assert plan_fft_size(128, "pow2") == 128

    def test_smooth7(self):
        assert plan_fft_size(97, "smooth7") == 98
        assert plan_fft_size(101, "smooth7") == 105

    def test_even(self):
        assert plan_fft_size(99, "even") == 100
        assert plan_fft_size(100, "even") == 100

    def test_exact(self):
        assert plan_fft_size(99, "exact") == 99

    def test_default_policy_is_pow2(self):
        assert plan_fft_size(100) == 128

    @pytest.mark.parametrize("policy", POLICIES)
    def test_result_at_least_min_len(self, policy):
        for n in [1, 2, 17, 100, 12345]:
            assert plan_fft_size(n, policy) >= n

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown FFT policy"):
            plan_fft_size(64, "prime")

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            plan_fft_size(0)
