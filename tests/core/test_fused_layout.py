"""Spectrum layout selection and the fused interleaved execution path."""

import pickle

import numpy as np
import pytest

from repro.core.multichannel import (
    PolyHankelPlan,
    clear_plan_cache,
    conv2d_polyhankel,
    get_plan,
)
from repro.core.planning import (
    INTERLEAVED_MIN_WORK,
    PlanSpec,
    select_spectrum_layout,
)
from repro.observe import tracing
from repro.observe.registry import counters, fft_call_totals
from repro.perfmodel.engine import predict_fft_counters
from repro.utils.shapes import ConvShape
from tests.conftest import assert_conv_close, naive_conv2d_reference

#: The bench suite's c16 preset shape (conv32_sum_numpy_c16): the case the
#: fused-path acceptance criteria are written against.
C16_SHAPE = ConvShape(ih=32, iw=32, kh=3, kw=3, n=4, c=16, f=16, padding=1)


def _problem(shape, seed=11):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((shape.n, shape.c, shape.ih, shape.iw))
    w = rng.standard_normal(
        (shape.f, shape.c // shape.groups, shape.kh, shape.kw))
    return x, w


def _measured_counters(plan, x, w):
    w_hat = plan.transform_weight(w)
    plan.execute(x, w_hat)                    # warm scratch
    counters.clear("fft.")
    with tracing():
        plan.execute(x, w_hat)
    totals = fft_call_totals()
    return {
        "fft_calls": sum(v["calls"] for v in totals.values()),
        "fft_rows": sum(v["rows"] for v in totals.values()),
        "by_kind": {k: v["calls"] for k, v in sorted(totals.items())},
    }


class TestLayoutSelection:
    def test_c16_preset_selects_interleaved(self):
        assert select_spectrum_layout(C16_SHAPE, "sum", "smooth7") \
            == "interleaved"

    def test_small_shape_stays_planar(self):
        shape = ConvShape(ih=16, iw=16, kh=3, kw=3, n=4, c=3, f=8, padding=1)
        assert select_spectrum_layout(shape, "sum", "smooth7") == "planar"

    def test_merge_strategy_is_always_planar(self):
        assert select_spectrum_layout(C16_SHAPE, "merge", "smooth7") \
            == "planar"

    def test_depthwise_stays_planar(self):
        shape = ConvShape(ih=64, iw=64, kh=3, kw=3, n=8, c=16, f=16,
                          padding=1, groups=16)
        assert select_spectrum_layout(shape, "sum", "smooth7") == "planar"

    def test_concrete_layouts_pass_through(self):
        assert select_spectrum_layout(C16_SHAPE, "sum", "pow2",
                                      "planar") == "planar"
        small = ConvShape(ih=8, iw=8, kh=3, kw=3, n=1, c=2, f=2)
        assert select_spectrum_layout(small, "sum", "pow2",
                                      "interleaved") == "interleaved"

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError, match="layout"):
            select_spectrum_layout(C16_SHAPE, "sum", "pow2", "diagonal")

    def test_threshold_is_the_decision_boundary(self):
        shape = C16_SHAPE
        bins = get_plan(shape, backend="numpy").nfft // 2 + 1
        work = shape.n * shape.groups * shape.group_channels \
            * shape.group_filters * bins
        assert work >= INTERLEAVED_MIN_WORK


class TestFusedParity:
    @pytest.mark.parametrize("c,f,groups", [
        (2, 2, 1),    # smallest packable
        (3, 5, 1),    # both odd: leftover rows on both transforms
        (1, 4, 1),    # C=1: no channel pairs at all
        (4, 1, 1),    # F=1: no filter pairs
        (6, 4, 2),    # grouped
        (5, 3, 1),    # odd channels and filters
    ])
    def test_matches_planar_and_reference(self, c, f, groups):
        rng = np.random.default_rng(c * 7 + f)
        x = rng.standard_normal((2, c, 12, 11))
        w = rng.standard_normal((f, c // groups, 3, 4))
        ref = naive_conv2d_reference(x, w, 1, (1, 1), (1, 1), groups)
        planar = conv2d_polyhankel(x, w, padding=1, groups=groups,
                                   layout="planar")
        fused = conv2d_polyhankel(x, w, padding=1, groups=groups,
                                  layout="interleaved")
        assert_conv_close(fused, ref)
        np.testing.assert_allclose(fused, planar, atol=1e-10)

    def test_c16_preset_matches_naive(self):
        x, w = _problem(C16_SHAPE)
        ref = naive_conv2d_reference(x, w, 1, (1, 1), (1, 1), 1)
        got = conv2d_polyhankel(x, w, padding=1)  # auto -> interleaved
        assert_conv_close(got, ref)

    def test_strided_input(self):
        rng = np.random.default_rng(13)
        base = rng.standard_normal((2, 6, 24, 22))
        x = base[:, :, ::2, ::2]
        w = rng.standard_normal((4, 6, 3, 3))
        want = conv2d_polyhankel(np.ascontiguousarray(x), w,
                                 layout="interleaved")
        np.testing.assert_array_equal(
            conv2d_polyhankel(x, w, layout="interleaved"), want)

    def test_workers_bit_identical(self):
        """Batch chunking must never split a packed channel pair, so the
        threaded path stays bit-identical to the sequential one."""
        shape = ConvShape(ih=16, iw=16, kh=3, kw=3, n=6, c=6, f=4, padding=1)
        x, w = _problem(shape)
        plan = get_plan(shape, backend="numpy", layout="interleaved")
        w_hat = plan.transform_weight(w)
        want = plan.execute(x, w_hat)
        np.testing.assert_array_equal(
            plan.execute(x, w_hat, workers=3), want)

    def test_scratch_reuse_is_stable(self):
        """Back-to-back cached executes (scratch reuse on) must not leak
        state between calls."""
        x, w = _problem(C16_SHAPE)
        plan = get_plan(C16_SHAPE, backend="numpy")
        w_hat = plan.transform_weight(w)
        first = plan.execute(x, w_hat).copy()   # allocates scratch
        second = plan.execute(x, w_hat).copy()  # reuses it
        third = plan.execute(x, w_hat)
        np.testing.assert_array_equal(first, second)
        np.testing.assert_array_equal(second, third)


class TestFusedCounters:
    def test_c16_fft_rows_halve(self):
        """The acceptance gate: packing must cut fft_rows ~2x on the c16
        preset (even channel and filter counts -> exactly 2x)."""
        x, w = _problem(C16_SHAPE)
        fused = _measured_counters(
            get_plan(C16_SHAPE, backend="numpy"), x, w)
        planar = _measured_counters(
            get_plan(C16_SHAPE, backend="numpy", layout="planar"), x, w)
        assert fused["fft_rows"] < planar["fft_rows"]
        assert fused["fft_rows"] * 2 == planar["fft_rows"]

    @pytest.mark.parametrize("c,f,layout", [
        (16, 16, "interleaved"),
        (16, 16, "planar"),
        (5, 3, "interleaved"),
        (1, 4, "interleaved"),
    ])
    def test_predictor_matches_measurement(self, c, f, layout):
        shape = ConvShape(ih=12, iw=11, kh=3, kw=3, n=2, c=c, f=f, padding=1)
        x, w = _problem(shape)
        plan = get_plan(shape, backend="numpy", layout=layout)
        assert _measured_counters(plan, x, w) \
            == predict_fft_counters(shape, "sum", layout)


class TestPlanIdentity:
    def test_layout_is_part_of_plan_identity(self):
        a = get_plan(C16_SHAPE, backend="numpy", layout="planar")
        b = get_plan(C16_SHAPE, backend="numpy", layout="interleaved")
        assert a is not b
        assert (a.layout, b.layout) == ("planar", "interleaved")

    def test_auto_resolves_to_concrete_layout_in_cache(self):
        auto = get_plan(C16_SHAPE, backend="numpy")
        forced = get_plan(C16_SHAPE, backend="numpy", layout=auto.layout)
        assert auto is forced

    def test_plan_pickles_as_spec_with_layout(self):
        plan = get_plan(C16_SHAPE, backend="numpy", layout="interleaved")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone is get_plan(C16_SHAPE, backend="numpy",
                                 layout="interleaved")
        assert clone.layout == "interleaved"

    def test_spec_round_trip(self):
        spec = PlanSpec(C16_SHAPE, "smooth7", "sum", "numpy", "interleaved")
        assert spec.resolve().layout == "interleaved"

    def test_direct_plan_resolves_auto(self):
        clear_plan_cache()
        plan = PolyHankelPlan(C16_SHAPE, backend="numpy")
        assert plan.layout in ("planar", "interleaved")
        assert plan.bins == plan.nfft // 2 + 1
