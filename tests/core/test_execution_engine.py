"""Execution-engine tests: spectrum cache, plan cache bounds, workers.

The engine's contract is that every cached or parallel path is *bit
identical* (``np.array_equal``, not ``allclose``) to the uncached,
sequential reference — caching may only skip work, never change it.
"""

import numpy as np
import pytest

from repro.core.multichannel import (
    PolyHankelPlan,
    clear_plan_cache,
    clear_spectrum_cache,
    conv2d_polyhankel,
    enable_spectrum_cache,
    get_plan,
    plan_cache_info,
    set_plan_cache_limit,
    set_spectrum_cache_limit,
    spectrum_cache_info,
)
from repro.utils.shapes import ConvShape


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_plan_cache()
    clear_spectrum_cache()
    yield
    enable_spectrum_cache(True)
    set_plan_cache_limit(256)
    set_spectrum_cache_limit(64)
    clear_plan_cache()
    clear_spectrum_cache()


SHAPE = ConvShape(ih=10, iw=9, kh=3, kw=3, n=4, c=2, f=3, padding=1)


def _problem(rng):
    x = rng.standard_normal(SHAPE.input_shape())
    w = rng.standard_normal(SHAPE.weight_shape())
    return x, w


class TestSpectrumCacheParity:
    @pytest.mark.parametrize("strategy", ["sum", "merge"])
    @pytest.mark.parametrize("backend", ["numpy", "builtin"])
    def test_cached_path_bit_identical(self, rng, strategy, backend):
        x, w = _problem(rng)
        plan = get_plan(SHAPE, strategy=strategy, backend=backend)
        reference = plan.execute(x, plan.transform_weight(w))
        first = conv2d_polyhankel(x, w, padding=1, strategy=strategy,
                                  backend=backend)
        second = conv2d_polyhankel(x, w, padding=1, strategy=strategy,
                                   backend=backend)
        np.testing.assert_array_equal(first, reference)
        np.testing.assert_array_equal(second, reference)
        assert spectrum_cache_info().hits >= 1

    @pytest.mark.parametrize("strategy", ["sum", "merge"])
    @pytest.mark.parametrize("backend", ["numpy", "builtin"])
    def test_workers_bit_identical(self, rng, strategy, backend):
        x, w = _problem(rng)
        plan = get_plan(SHAPE, strategy=strategy, backend=backend)
        w_hat = plan.transform_weight(w)
        reference = plan.execute(x, w_hat)
        for workers in (2, 3, 8):
            np.testing.assert_array_equal(
                plan.execute(x, w_hat, workers=workers), reference)

    def test_workers_through_functional_path(self, rng):
        x, w = _problem(rng)
        reference = conv2d_polyhankel(x, w, padding=1)
        np.testing.assert_array_equal(
            conv2d_polyhankel(x, w, padding=1, workers=2), reference)

    def test_disabled_cache_recomputes(self, rng):
        x, w = _problem(rng)
        enable_spectrum_cache(False)
        conv2d_polyhankel(x, w, padding=1)
        conv2d_polyhankel(x, w, padding=1)
        info = spectrum_cache_info()
        assert info.hits == 0 and info.size == 0


class TestSpectrumCacheInvalidation:
    def test_in_place_mutation_yields_fresh_spectra(self, rng):
        x, w = _problem(rng)
        out1 = conv2d_polyhankel(x, w, padding=1)
        w[0, 0, 0, 0] += 1.0
        out2 = conv2d_polyhankel(x, w, padding=1)
        enable_spectrum_cache(False)
        fresh = conv2d_polyhankel(x, w, padding=1)
        np.testing.assert_array_equal(out2, fresh)
        assert not np.array_equal(out1, out2)

    def test_distinct_arrays_same_content_hit_or_recompute_exactly(self, rng):
        x, w = _problem(rng)
        out1 = conv2d_polyhankel(x, w, padding=1)
        out2 = conv2d_polyhankel(x, w.copy(), padding=1)
        np.testing.assert_array_equal(out1, out2)


class TestCacheBounds:
    def test_spectrum_cache_is_bounded(self, rng):
        set_spectrum_cache_limit(2)
        x, _ = _problem(rng)
        for _ in range(5):
            w = rng.standard_normal(SHAPE.weight_shape())
            conv2d_polyhankel(x, w, padding=1)
        assert spectrum_cache_info().size <= 2

    def test_spectrum_limit_validation(self):
        with pytest.raises(ValueError):
            set_spectrum_cache_limit(0)

    def test_plan_cache_is_bounded(self):
        set_plan_cache_limit(2)
        for ih in (6, 7, 8, 9):
            get_plan(ConvShape(ih=ih, iw=ih, kh=3, kw=3))
        info = plan_cache_info()
        assert info.size <= 2
        assert info.maxsize == 2

    def test_plan_cache_stats(self):
        shape = ConvShape(ih=6, iw=6, kh=3, kw=3)
        get_plan(shape)
        get_plan(shape)
        info = plan_cache_info()
        assert info.misses >= 1 and info.hits >= 1

    def test_plan_limit_validation(self):
        with pytest.raises(ValueError):
            set_plan_cache_limit(0)


class TestAutoPolicy:
    def test_auto_resolves_per_backend(self):
        numpy_plan = get_plan(SHAPE, fft_policy="auto", backend="numpy")
        builtin_plan = get_plan(SHAPE, fft_policy="auto", backend="builtin")
        assert numpy_plan.fft_policy == "smooth7"
        assert builtin_plan.fft_policy == "pow2"

    def test_auto_matches_explicit_plan(self):
        assert get_plan(SHAPE, "auto", backend="numpy") is get_plan(
            SHAPE, "smooth7", backend="numpy")

    def test_direct_construction_keeps_pow2_default(self):
        plan = PolyHankelPlan(SHAPE)
        assert plan.fft_policy == "pow2"
        assert plan.nfft & (plan.nfft - 1) == 0

    @pytest.mark.parametrize("backend", ["numpy", "builtin"])
    def test_auto_policy_correctness(self, rng, backend):
        from tests.conftest import naive_conv2d_reference

        x, w = _problem(rng)
        out = conv2d_polyhankel(x, w, padding=1, backend=backend)
        np.testing.assert_allclose(out, naive_conv2d_reference(x, w, 1),
                                   atol=1e-8)


class TestVectorizedMergeConstruction:
    def test_merged_kernel_stack_matches_loop(self, rng):
        from repro.core.construction import (
            merged_kernel_polynomial,
            merged_kernel_stack,
        )

        w = rng.standard_normal((4, 3, 2, 3))
        stack = merged_kernel_stack(w, iw=7)
        for f in range(4):
            np.testing.assert_array_equal(
                stack[f], merged_kernel_polynomial(w[f], 7))

    def test_merged_input_stack_matches_loop(self, rng):
        from repro.core.construction import (
            merged_input_polynomial,
            merged_input_stack,
        )

        xp = rng.standard_normal((3, 2, 5, 6))
        stack = merged_input_stack(xp)
        for i in range(3):
            np.testing.assert_array_equal(
                stack[i], merged_input_polynomial(xp[i]))
