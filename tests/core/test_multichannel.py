"""Tests for the batched multi-channel PolyHankel path."""

import numpy as np
import pytest

from repro.core.multichannel import (
    PolyHankelPlan,
    clear_plan_cache,
    conv2d_polyhankel,
    get_plan,
)
from repro.utils.shapes import ConvShape
from tests.conftest import naive_conv2d_reference

CASES = [
    dict(n=1, c=1, f=1, ih=5, iw=5, kh=3, kw=3, padding=0, stride=1),
    dict(n=2, c=3, f=4, ih=8, iw=9, kh=3, kw=3, padding=1, stride=1),
    dict(n=3, c=2, f=5, ih=12, iw=10, kh=2, kw=2, padding=0, stride=2),
    dict(n=2, c=4, f=3, ih=10, iw=7, kh=5, kw=3, padding=2, stride=1),
    dict(n=1, c=2, f=2, ih=6, iw=6, kh=1, kw=1, padding=0, stride=1),
]


def _problem(rng, case):
    x = rng.standard_normal((case["n"], case["c"], case["ih"], case["iw"]))
    w = rng.standard_normal((case["f"], case["c"], case["kh"], case["kw"]))
    return x, w


class TestCorrectness:
    @pytest.mark.parametrize("case", CASES)
    def test_sum_strategy(self, rng, case):
        x, w = _problem(rng, case)
        got = conv2d_polyhankel(x, w, padding=case["padding"],
                                stride=case["stride"], strategy="sum")
        ref = naive_conv2d_reference(x, w, case["padding"], case["stride"])
        np.testing.assert_allclose(got, ref, atol=1e-8)

    @pytest.mark.parametrize("case", CASES)
    def test_merge_strategy(self, rng, case):
        x, w = _problem(rng, case)
        got = conv2d_polyhankel(x, w, padding=case["padding"],
                                stride=case["stride"], strategy="merge")
        ref = naive_conv2d_reference(x, w, case["padding"], case["stride"])
        np.testing.assert_allclose(got, ref, atol=1e-8)

    def test_strategies_agree(self, rng):
        x = rng.standard_normal((2, 3, 7, 7))
        w = rng.standard_normal((4, 3, 3, 3))
        np.testing.assert_allclose(
            conv2d_polyhankel(x, w, padding=1, strategy="sum"),
            conv2d_polyhankel(x, w, padding=1, strategy="merge"),
            atol=1e-8,
        )

    def test_bias(self, rng):
        x = rng.standard_normal((2, 2, 6, 6))
        w = rng.standard_normal((3, 2, 3, 3))
        b = rng.standard_normal(3)
        got = conv2d_polyhankel(x, w, bias=b, padding=1)
        ref = naive_conv2d_reference(x, w, 1) + b[None, :, None, None]
        np.testing.assert_allclose(got, ref, atol=1e-8)

    def test_builtin_backend(self, rng):
        x = rng.standard_normal((1, 2, 6, 6))
        w = rng.standard_normal((2, 2, 3, 3))
        np.testing.assert_allclose(
            conv2d_polyhankel(x, w, backend="builtin"),
            naive_conv2d_reference(x, w), atol=1e-8)


class TestValidation:
    def test_bias_length_checked(self, rng):
        x = rng.standard_normal((1, 1, 5, 5))
        w = rng.standard_normal((2, 1, 3, 3))
        with pytest.raises(ValueError, match="bias"):
            conv2d_polyhankel(x, w, bias=np.zeros(3))

    def test_channel_mismatch(self, rng):
        with pytest.raises(ValueError, match="channel mismatch"):
            conv2d_polyhankel(rng.standard_normal((1, 2, 5, 5)),
                              rng.standard_normal((1, 3, 3, 3)))

    def test_unknown_strategy(self, rng):
        with pytest.raises(ValueError, match="unknown channel strategy"):
            conv2d_polyhankel(rng.standard_normal((1, 1, 5, 5)),
                              rng.standard_normal((1, 1, 3, 3)),
                              strategy="magic")


class TestPlan:
    def setup_method(self):
        clear_plan_cache()

    def test_plan_reuse_from_cache(self):
        shape = ConvShape(ih=8, iw=8, kh=3, kw=3, n=2, c=2, f=2)
        assert get_plan(shape) is get_plan(shape)

    def test_cache_distinguishes_options(self):
        shape = ConvShape(ih=8, iw=8, kh=3, kw=3)
        assert get_plan(shape, strategy="sum") is not get_plan(
            shape, strategy="merge"
        )

    def test_clear_cache(self):
        shape = ConvShape(ih=8, iw=8, kh=3, kw=3)
        first = get_plan(shape)
        clear_plan_cache()
        assert get_plan(shape) is not first

    def test_plan_execute_validates_input_shape(self, rng):
        shape = ConvShape(ih=8, iw=8, kh=3, kw=3, n=1, c=1, f=1)
        plan = PolyHankelPlan(shape)
        w_hat = plan.transform_weight(rng.standard_normal((1, 1, 3, 3)))
        with pytest.raises(ValueError, match="input shape"):
            plan.execute(rng.standard_normal((1, 1, 9, 9)), w_hat)

    def test_plan_validates_weight_shape(self, rng):
        shape = ConvShape(ih=8, iw=8, kh=3, kw=3, n=1, c=1, f=1)
        plan = PolyHankelPlan(shape)
        with pytest.raises(ValueError, match="weight shape"):
            plan.transform_weight(rng.standard_normal((2, 1, 3, 3)))

    def test_weight_reuse_across_inputs(self, rng):
        """A cached weight spectrum serves many inputs (inference case)."""
        shape = ConvShape(ih=6, iw=6, kh=3, kw=3, n=1, c=2, f=2, padding=1)
        plan = PolyHankelPlan(shape)
        w = rng.standard_normal((2, 2, 3, 3))
        w_hat = plan.transform_weight(w)
        for _ in range(3):
            x = rng.standard_normal((1, 2, 6, 6))
            np.testing.assert_allclose(
                plan.execute(x, w_hat),
                naive_conv2d_reference(x, w, 1), atol=1e-8)

    def test_fft_size_covers_linear_length(self):
        shape = ConvShape(ih=8, iw=8, kh=3, kw=3)
        plan = PolyHankelPlan(shape)
        assert plan.nfft >= shape.poly_product_len
