"""Cache correctness under the extended parameter space.

The plan cache keys on the full :class:`ConvShape` (which embeds
canonicalized stride/dilation/groups/padding) and the spectrum cache keys
on ``(weight, plan)`` — so the same weight array convolved under different
parameters must never be served a stale spectrum.  These tests pin that
down, because a silent aliasing bug here produces plausible-looking wrong
numbers rather than a crash.
"""


from repro.core.multichannel import (
    conv2d_polyhankel, get_plan, spectrum_cache_info,
)
from repro.utils.shapes import ConvShape
from tests.conftest import assert_conv_close, naive_conv2d_reference


def _shape(**overrides):
    base = dict(ih=10, iw=9, kh=3, kw=3, n=1, c=4, f=4, padding=1)
    base.update(overrides)
    return ConvShape(**base)


class TestPlanIdentity:
    def test_dilation_yields_distinct_plans(self):
        p1 = get_plan(_shape())
        p2 = get_plan(_shape(dilation=2))
        assert p1 is not p2
        assert p1.cache_key != p2.cache_key

    def test_groups_yield_distinct_plans(self):
        assert get_plan(_shape()).cache_key \
            != get_plan(_shape(groups=2)).cache_key

    def test_per_axis_stride_yields_distinct_plans(self):
        assert get_plan(_shape(stride=(1, 2))).cache_key \
            != get_plan(_shape(stride=(2, 1))).cache_key

    def test_asymmetric_padding_yields_distinct_plans(self):
        assert get_plan(_shape(padding=(1, 1, 0, 2))).cache_key \
            != get_plan(_shape(padding=(0, 2, 1, 1))).cache_key

    def test_equivalent_spellings_share_a_plan(self):
        """Canonicalization must collapse (2, 2) and 2 to one plan — the
        cache should not fragment over spelling."""
        assert get_plan(_shape(stride=(2, 2), dilation=(3, 3))) \
            is get_plan(_shape(stride=2, dilation=3))


class TestSpectrumNoAliasing:
    def test_same_weight_different_dilation(self, rng):
        """Interleaved calls with one weight under two dilations must each
        match the reference — a stale dilation-1 spectrum reused for the
        dilation-2 call would corrupt the second result."""
        x1 = rng.standard_normal((1, 4, 10, 9))
        x2 = rng.standard_normal((1, 4, 12, 11))
        w = rng.standard_normal((4, 4, 3, 3))
        for _ in range(2):  # second round hits both cache entries
            a = conv2d_polyhankel(x1, w, padding=1, dilation=1)
            b = conv2d_polyhankel(x2, w, padding=2, dilation=2)
            assert_conv_close(a, naive_conv2d_reference(x1, w, 1))
            assert_conv_close(
                b, naive_conv2d_reference(x2, w, 2, dilation=2))

    def test_same_weight_different_groups(self, rng):
        """A (4, 1, 3, 3) weight is valid both as depthwise over 4
        channels and as 4 filters over 1 channel; the two interpretations
        share the weight array but must not share a spectrum."""
        w = rng.standard_normal((4, 1, 3, 3))
        x_dw = rng.standard_normal((2, 4, 8, 8))
        x_full = rng.standard_normal((2, 1, 8, 8))
        dw = conv2d_polyhankel(x_dw, w, padding=1, groups=4)
        full = conv2d_polyhankel(x_full, w, padding=1)
        assert_conv_close(
            dw, naive_conv2d_reference(x_dw, w, 1, groups=4))
        assert_conv_close(full, naive_conv2d_reference(x_full, w, 1))

    def test_dilation_change_is_a_miss_not_a_hit(self, rng):
        """The second dilation must repopulate, not reuse: watch the
        global spectrum-cache statistics across the two calls."""
        x = rng.standard_normal((1, 2, 12, 12))
        w = rng.standard_normal((2, 2, 3, 3))
        conv2d_polyhankel(x, w, padding=2, dilation=1)
        before = spectrum_cache_info()
        conv2d_polyhankel(x, w, padding=2, dilation=2)
        after = spectrum_cache_info()
        assert after.misses == before.misses + 1
        # ...and repeating the dilation=2 call is now a hit.
        conv2d_polyhankel(x, w, padding=2, dilation=2)
        assert spectrum_cache_info().hits == after.hits + 1


class TestLayerSpectrumCache:
    def test_extended_layer_caches_and_stays_correct(self, rng):
        from repro.nn.layers import Conv2d

        layer = Conv2d(4, 4, 3, padding="same", dilation=2, groups=2,
                       bias=False, rng=rng)
        x = rng.standard_normal((2, 4, 11, 10))
        ref = naive_conv2d_reference(x, layer.weight, "same", dilation=2,
                                     groups=2)
        assert_conv_close(layer(x), ref)
        assert_conv_close(layer(x), ref)  # served from the spectrum cache
        info = layer.spectrum_cache_info()
        assert info.hits >= 1 and info.misses == 1

    def test_rebinding_weight_invalidates(self, rng):
        from repro.nn.layers import Conv2d

        layer = Conv2d(3, 3, 3, padding=1, groups=3, bias=False, rng=rng)
        x = rng.standard_normal((1, 3, 7, 7))
        layer(x)
        layer.weight = rng.standard_normal(layer.weight.shape)
        assert_conv_close(
            layer(x),
            naive_conv2d_reference(x, layer.weight, 1, groups=3))
