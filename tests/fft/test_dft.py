"""Tests for the reference DFT."""

import numpy as np
import pytest

from repro.fft.dft import dft, idft


@pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 13, 16])
def test_dft_matches_numpy(rng, n):
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    np.testing.assert_allclose(dft(x), np.fft.fft(x), atol=1e-10)


@pytest.mark.parametrize("n", [1, 4, 7, 12])
def test_idft_inverts(rng, n):
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    np.testing.assert_allclose(idft(dft(x)), x, atol=1e-10)


def test_dft_batched(rng):
    x = rng.standard_normal((3, 2, 9))
    np.testing.assert_allclose(dft(x), np.fft.fft(x), atol=1e-10)


def test_dft_real_input_hermitian(rng):
    x = rng.standard_normal(10)
    spec = dft(x)
    np.testing.assert_allclose(spec[1:], np.conj(spec[1:][::-1]), atol=1e-10)


def test_dft_empty_axis_raises():
    with pytest.raises(ValueError):
        dft(np.zeros(0))
    with pytest.raises(ValueError):
        idft(np.zeros(0))


def test_dft_dc_component(rng):
    x = rng.standard_normal(8)
    assert np.isclose(dft(x)[0].real, x.sum())
