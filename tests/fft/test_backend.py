"""Tests for the FFT backend dispatch."""

import numpy as np
import pytest

from repro import fft as F
from repro.fft.backend import available_backends, get_backend


def test_available_backends():
    assert set(available_backends()) >= {"builtin", "numpy"}


def test_default_backend_is_numpy():
    assert F.get_backend().name == "numpy"


def test_get_backend_by_name():
    assert get_backend("builtin").name == "builtin"


def test_get_backend_passthrough():
    b = get_backend("numpy")
    assert get_backend(b) is b


def test_unknown_backend():
    with pytest.raises(ValueError, match="unknown FFT backend"):
        get_backend("cufft")


def test_use_backend_restores_on_exit():
    before = F.get_backend().name
    with F.use_backend("builtin"):
        assert F.get_backend().name == "builtin"
    assert F.get_backend().name == before


def test_use_backend_restores_on_exception():
    before = F.get_backend().name
    with pytest.raises(RuntimeError):
        with F.use_backend("builtin"):
            raise RuntimeError("boom")
    assert F.get_backend().name == before


def test_set_backend_and_restore():
    original = F.get_backend()
    try:
        assert F.set_backend("builtin").name == "builtin"
        assert F.get_backend().name == "builtin"
    finally:
        F.set_backend(original)


@pytest.mark.parametrize("backend", ["builtin", "numpy"])
@pytest.mark.parametrize("n,pad", [(8, None), (10, 16), (11, None), (5, 3)])
def test_backends_agree(rng, backend, n, pad):
    x = rng.standard_normal(n)
    z = x + 1j * rng.standard_normal(n)
    with F.use_backend(backend):
        np.testing.assert_allclose(F.fft(z, pad), np.fft.fft(z, pad),
                                   atol=1e-8)
        np.testing.assert_allclose(F.ifft(z, pad), np.fft.ifft(z, pad),
                                   atol=1e-8)
        np.testing.assert_allclose(F.rfft(x, pad), np.fft.rfft(x, pad),
                                   atol=1e-8)


def test_top_level_functions_use_active_backend(rng):
    x = rng.standard_normal(12)
    with F.use_backend("builtin"):
        np.testing.assert_allclose(F.irfft(F.rfft(x), 12), x, atol=1e-9)
