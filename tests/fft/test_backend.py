"""Tests for the FFT backend dispatch."""

import numpy as np
import pytest

from repro import fft as F
from repro.fft.backend import available_backends, get_backend


def test_available_backends():
    assert set(available_backends()) >= {"builtin", "numpy"}


def test_default_backend_is_numpy():
    assert F.get_backend().name == "numpy"


def test_get_backend_by_name():
    assert get_backend("builtin").name == "builtin"


def test_get_backend_passthrough():
    b = get_backend("numpy")
    assert get_backend(b) is b


def test_unknown_backend():
    with pytest.raises(ValueError, match="unknown FFT backend"):
        get_backend("cufft")


def test_use_backend_restores_on_exit():
    before = F.get_backend().name
    with F.use_backend("builtin"):
        assert F.get_backend().name == "builtin"
    assert F.get_backend().name == before


def test_use_backend_restores_on_exception():
    before = F.get_backend().name
    with pytest.raises(RuntimeError):
        with F.use_backend("builtin"):
            raise RuntimeError("boom")
    assert F.get_backend().name == before


def test_set_backend_and_restore():
    original = F.get_backend()
    try:
        assert F.set_backend("builtin").name == "builtin"
        assert F.get_backend().name == "builtin"
    finally:
        F.set_backend(original)


@pytest.mark.parametrize("backend", ["builtin", "numpy"])
@pytest.mark.parametrize("n,pad", [(8, None), (10, 16), (11, None), (5, 3)])
def test_backends_agree(rng, backend, n, pad):
    x = rng.standard_normal(n)
    z = x + 1j * rng.standard_normal(n)
    with F.use_backend(backend):
        np.testing.assert_allclose(F.fft(z, pad), np.fft.fft(z, pad),
                                   atol=1e-8)
        np.testing.assert_allclose(F.ifft(z, pad), np.fft.ifft(z, pad),
                                   atol=1e-8)
        np.testing.assert_allclose(F.rfft(x, pad), np.fft.rfft(x, pad),
                                   atol=1e-8)


def test_top_level_functions_use_active_backend(rng):
    x = rng.standard_normal(12)
    with F.use_backend("builtin"):
        np.testing.assert_allclose(F.irfft(F.rfft(x), 12), x, atol=1e-9)


class TestErrorPropagation:
    """Backend failures must surface as BackendExecutionError carrying the
    failing backend, operation and transform size; malformed calls keep
    raising plain ValueError."""

    def test_malformed_call_stays_valueerror(self):
        with pytest.raises(ValueError, match="transform length"):
            get_backend("builtin").rfft(np.zeros(4), 0)

    def test_backend_failure_carries_context(self):
        from repro.fft.backend import BackendExecutionError
        from repro.guard import faults

        backend = get_backend("numpy")
        with faults.inject("backend_error"):
            with pytest.raises(BackendExecutionError) as excinfo:
                backend.rfft(np.zeros(16), 16)
        err = excinfo.value
        assert err.backend == "numpy"
        assert err.op == "rfft"
        assert err.n == 16
        assert isinstance(err.__cause__, faults.InjectedFaultError)
        assert "numpy" in str(err) and "rfft" in str(err)

    def test_exported_from_fft_package(self):
        from repro.fft import BackendExecutionError
        assert issubclass(BackendExecutionError, RuntimeError)

    def test_set_backend_not_double_wrapped(self):
        # set_backend stores the raw backend; get_backend wraps exactly
        # once, so an injected fault fires once, not per wrapper layer.
        from repro.guard import faults

        original = F.get_backend()
        try:
            F.set_backend("builtin")
            active = F.get_backend()
            assert getattr(active.fft, "__propagated_from__", None) \
                is not None
            inner = active.fft.__propagated_from__
            assert getattr(inner.fft, "__propagated_from__", None) is None
            with faults.inject("backend_error") as state:
                with pytest.raises(Exception):
                    active.rfft(np.zeros(8), 8)
            assert state.counts.get("backend_error") == 1
        finally:
            F.set_backend(original)
