"""Tests for the mixed-radix FFT (general sizes)."""

import numpy as np
import pytest

from repro.fft.mixed import fft, ifft

SIZES = [1, 2, 3, 4, 5, 6, 7, 9, 10, 14, 15, 21, 30, 35, 49, 60, 84, 105,
         120, 210, 343]
ROUGH_SIZES = [11, 13, 22, 26, 33, 121]  # contain primes > 7


@pytest.mark.parametrize("n", SIZES)
def test_smooth_sizes_match_numpy(rng, n):
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    np.testing.assert_allclose(fft(x), np.fft.fft(x), atol=1e-8)


@pytest.mark.parametrize("n", ROUGH_SIZES)
def test_rough_sizes_fall_back_to_bluestein(rng, n):
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    np.testing.assert_allclose(fft(x), np.fft.fft(x), atol=1e-8)


@pytest.mark.parametrize("n", [6, 15, 22, 49, 120])
def test_roundtrip(rng, n):
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    np.testing.assert_allclose(ifft(fft(x)), x, atol=1e-9)


def test_batched(rng):
    x = rng.standard_normal((2, 5, 30)) + 0j
    np.testing.assert_allclose(fft(x), np.fft.fft(x), atol=1e-8)
    np.testing.assert_allclose(ifft(x), np.fft.ifft(x), atol=1e-8)


def test_empty_raises():
    with pytest.raises(ValueError):
        fft(np.zeros(0))
    with pytest.raises(ValueError):
        ifft(np.zeros(0))


def test_linearity(rng):
    a = rng.standard_normal(24) + 0j
    b = rng.standard_normal(24) + 0j
    np.testing.assert_allclose(fft(2 * a + 3 * b), 2 * fft(a) + 3 * fft(b),
                               atol=1e-8)


def test_zero_d_rejected_with_clear_message():
    with pytest.raises(ValueError, match="0-d array"):
        fft(np.array(1.0))
    with pytest.raises(ValueError, match="0-d array"):
        ifft(np.array(1 + 0j))


def test_size_one_is_identity():
    x = np.array([1.5 - 2j])
    np.testing.assert_allclose(fft(x), x)
    np.testing.assert_allclose(ifft(x), x)


def test_empty_batch_rows():
    assert fft(np.zeros((0, 6))).shape == (0, 6)
