"""Tests for the real-input transforms."""

import numpy as np
import pytest

from repro.fft.real import irfft, rfft


@pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 8, 9, 16, 20, 30, 31, 64])
def test_rfft_matches_numpy(rng, n):
    x = rng.standard_normal(n)
    np.testing.assert_allclose(rfft(x), np.fft.rfft(x), atol=1e-8)


@pytest.mark.parametrize("n", [1, 2, 5, 8, 17, 32])
def test_roundtrip(rng, n):
    x = rng.standard_normal(n)
    np.testing.assert_allclose(irfft(rfft(x), n), x, atol=1e-9)


def test_rfft_zero_pads(rng):
    x = rng.standard_normal(10)
    np.testing.assert_allclose(rfft(x, 16), np.fft.rfft(x, 16), atol=1e-8)


def test_rfft_truncates(rng):
    x = rng.standard_normal(10)
    np.testing.assert_allclose(rfft(x, 6), np.fft.rfft(x, 6), atol=1e-8)


def test_irfft_default_length(rng):
    x = rng.standard_normal(16)
    spec = rfft(x)
    np.testing.assert_allclose(irfft(spec), x, atol=1e-9)


def test_irfft_pads_short_spectrum(rng):
    spec = np.fft.rfft(rng.standard_normal(8))
    np.testing.assert_allclose(irfft(spec, 16), np.fft.irfft(spec, 16),
                               atol=1e-9)


def test_irfft_truncates_long_spectrum(rng):
    spec = np.fft.rfft(rng.standard_normal(16))
    np.testing.assert_allclose(irfft(spec, 8), np.fft.irfft(spec, 8),
                               atol=1e-9)


def test_batched(rng):
    x = rng.standard_normal((3, 4, 12))
    np.testing.assert_allclose(rfft(x, 16), np.fft.rfft(x, 16), atol=1e-8)
    np.testing.assert_allclose(irfft(rfft(x, 16), 16),
                               np.fft.irfft(np.fft.rfft(x, 16), 16),
                               atol=1e-9)


def test_bin_count():
    assert rfft(np.zeros(10)).shape[-1] == 6
    assert rfft(np.zeros(11)).shape[-1] == 6


def test_errors():
    with pytest.raises(ValueError):
        rfft(np.zeros(4), 0)
    with pytest.raises(ValueError):
        irfft(np.zeros(0, dtype=complex))


class TestDegenerateShapes:
    """0-d and size-1 edge cases: clear rejection or exact handling, never
    an IndexError from deep inside the packing arithmetic."""

    def test_zero_d_rejected_with_clear_message(self):
        with pytest.raises(ValueError, match="0-d array"):
            rfft(np.array(2.0))
        with pytest.raises(ValueError, match="0-d array"):
            irfft(np.array(1 + 0j))

    def test_size_one_axis(self):
        x = np.arange(3.0)[:, None]
        np.testing.assert_allclose(rfft(x), x.astype(complex))
        np.testing.assert_allclose(irfft(rfft(x), 1), x)

    def test_irfft_single_bin(self):
        np.testing.assert_allclose(irfft(np.array([3 + 4j])), [[3.0]][0])

    def test_empty_batch_rows(self):
        assert rfft(np.zeros((0, 8))).shape == (0, 5)
        assert irfft(np.zeros((0, 5), dtype=complex), 8).shape == (0, 8)
