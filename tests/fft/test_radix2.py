"""Tests for the iterative radix-2 FFT."""

import numpy as np
import pytest

from repro.fft.radix2 import (
    _bit_reversal_permutation,
    fft2pow,
    ifft2pow,
)


@pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 64, 256, 1024])
def test_matches_numpy(rng, n):
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    np.testing.assert_allclose(fft2pow(x), np.fft.fft(x), atol=1e-9)


@pytest.mark.parametrize("n", [2, 8, 32])
def test_roundtrip(rng, n):
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    np.testing.assert_allclose(ifft2pow(fft2pow(x)), x, atol=1e-10)


def test_batched_leading_axes(rng):
    x = rng.standard_normal((2, 3, 16)) + 0j
    np.testing.assert_allclose(fft2pow(x), np.fft.fft(x), atol=1e-9)


@pytest.mark.parametrize("n", [3, 6, 12, 100])
def test_rejects_non_power_of_two(n):
    with pytest.raises(ValueError, match="power-of-two"):
        fft2pow(np.zeros(n, dtype=complex))
    with pytest.raises(ValueError, match="power-of-two"):
        ifft2pow(np.zeros(n, dtype=complex))


def test_does_not_mutate_input(rng):
    x = rng.standard_normal(8) + 0j
    copy = x.copy()
    fft2pow(x)
    np.testing.assert_array_equal(x, copy)


class TestBitReversal:
    def test_size_8(self):
        perm = _bit_reversal_permutation(8)
        np.testing.assert_array_equal(perm, [0, 4, 2, 6, 1, 5, 3, 7])

    def test_is_involution(self):
        perm = _bit_reversal_permutation(32)
        np.testing.assert_array_equal(perm[perm], np.arange(32))
