"""Tests for the per-size FFT plan cache."""

import numpy as np
import pytest

from repro.fft import mixed, real
from repro.fft.plan import (
    FftPlan,
    bit_reversal_permutation,
    clear_fft_plan_cache,
    fft_plan_cache_info,
    get_fft_plan,
    set_fft_plan_cache_limit,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_fft_plan_cache()
    yield
    set_fft_plan_cache_limit(128)
    clear_fft_plan_cache()


class TestPlanStructure:
    def test_pow2_plan_has_stage_schedule(self):
        plan = FftPlan(16)
        assert plan.is_pow2
        assert len(plan.fwd_stages) == 4  # sizes 2, 4, 8, 16
        assert [2 * t.shape[-1] for t in plan.fwd_stages] == [2, 4, 8, 16]
        np.testing.assert_array_equal(plan.perm,
                                      bit_reversal_permutation(16))

    def test_inverse_stages_are_conjugate(self):
        plan = FftPlan(8)
        for fwd, inv in zip(plan.fwd_stages, plan.inv_stages):
            np.testing.assert_allclose(np.conj(fwd), inv, atol=1e-15)

    def test_mixed_plan_materializes_every_level(self):
        plan = FftPlan(60)  # 60 -> 30 -> 15 -> 5 -> 1, radices 2,2,3,5
        levels = [n for n, _ in plan.radix_schedule]
        assert levels == [60, 30, 15, 5]
        for (n, p) in plan.radix_schedule:
            assert plan.table(n, p, -1.0).shape == (p, p, n // p)
            assert plan.table(n, p, +1.0).shape == (p, p, n // p)

    def test_even_plan_has_real_transform_twiddles(self):
        plan = FftPlan(10)
        assert plan.rfft_unpack.shape == (6,)
        assert plan.irfft_pack.shape == (5,)
        np.testing.assert_allclose(
            plan.irfft_pack, np.conj(plan.rfft_unpack[:5]), atol=1e-15)

    def test_odd_plan_has_no_real_twiddles(self):
        assert FftPlan(9).rfft_unpack is None

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            FftPlan(0)


class TestPlanCache:
    def test_plans_are_reused(self):
        assert get_fft_plan(64) is get_fft_plan(64)
        info = fft_plan_cache_info()
        assert info.misses == 1 and info.hits == 1

    def test_cache_is_bounded(self):
        set_fft_plan_cache_limit(2)
        for n in (8, 16, 32, 64):
            get_fft_plan(n)
        assert fft_plan_cache_info().size <= 2

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            set_fft_plan_cache_limit(0)

    def test_transforms_populate_the_cache(self, rng):
        x = rng.standard_normal(24)
        real.rfft(x)
        assert fft_plan_cache_info().misses >= 1


class TestPlannedTransforms:
    """The planned kernels must still match numpy across size classes."""

    @pytest.mark.parametrize("n", [2, 4, 8, 64, 6, 12, 60, 100, 7, 11, 22])
    def test_complex_roundtrip(self, rng, n):
        x = rng.standard_normal((3, n)) + 1j * rng.standard_normal((3, n))
        np.testing.assert_allclose(mixed.fft(x), np.fft.fft(x), atol=1e-9)
        np.testing.assert_allclose(mixed.ifft(x), np.fft.ifft(x), atol=1e-9)

    @pytest.mark.parametrize("n", [2, 4, 10, 16, 100, 375, 9, 15])
    def test_real_roundtrip_shares_plan(self, rng, n):
        x = rng.standard_normal((2, n))
        np.testing.assert_allclose(real.rfft(x), np.fft.rfft(x), atol=1e-9)
        np.testing.assert_allclose(real.irfft(real.rfft(x), n), x,
                                   atol=1e-9)

    @pytest.mark.parametrize("n", [2, 4, 10, 64, 100])
    def test_irfft_matches_numpy_on_arbitrary_spectra(self, rng, n):
        bins = n // 2 + 1
        spec = (rng.standard_normal((2, bins))
                + 1j * rng.standard_normal((2, bins)))
        np.testing.assert_allclose(real.irfft(spec, n),
                                   np.fft.irfft(spec, n), atol=1e-9)
