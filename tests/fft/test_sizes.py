"""Tests for FFT size planning."""

import pytest

from repro.fft.sizes import (
    factorize,
    is_power_of_two,
    is_smooth,
    next_fast_len,
    next_pow2,
)


class TestIsSmooth:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6, 7, 8, 840, 2 ** 20,
                                   3 ** 5 * 7 ** 2])
    def test_smooth(self, n):
        assert is_smooth(n)

    @pytest.mark.parametrize("n", [11, 13, 22, 121, 1009])
    def test_rough(self, n):
        assert not is_smooth(n)

    def test_custom_radices(self):
        assert is_smooth(9, radices=(3,))
        assert not is_smooth(8, radices=(3,))

    def test_invalid(self):
        with pytest.raises(ValueError):
            is_smooth(0)


class TestNextPow2:
    @pytest.mark.parametrize("n,expect", [(1, 1), (2, 2), (3, 4), (100, 128),
                                          (1024, 1024), (1025, 2048)])
    def test_values(self, n, expect):
        assert next_pow2(n) == expect

    def test_invalid(self):
        with pytest.raises(ValueError):
            next_pow2(0)


class TestNextFastLen:
    @pytest.mark.parametrize("n,expect", [(1, 1), (7, 7), (11, 12), (97, 98),
                                          (1000, 1000), (1009, 1024),
                                          (4097, 4116)])
    def test_known_values(self, n, expect):
        assert next_fast_len(n) == expect

    @pytest.mark.parametrize("n", [17, 211, 997, 5000, 49999])
    def test_result_is_smooth_and_minimal(self, n):
        result = next_fast_len(n)
        assert result >= n
        assert is_smooth(result)
        # No smooth number lies strictly between n and result.
        for candidate in range(n, result):
            assert not is_smooth(candidate)

    def test_matches_scipy(self):
        scipy_fft = pytest.importorskip("scipy.fft")
        for n in [17, 97, 211, 1009, 4097, 30000]:
            assert next_fast_len(n) == scipy_fft.next_fast_len(n)

    def test_invalid(self):
        with pytest.raises(ValueError):
            next_fast_len(0)


class TestFactorize:
    def test_simple(self):
        assert factorize(12) == [2, 2, 3]

    def test_one(self):
        assert factorize(1) == []

    def test_full_radix_set(self):
        assert factorize(2 * 3 * 5 * 7) == [2, 3, 5, 7]

    def test_rough_raises(self):
        with pytest.raises(ValueError, match="residual factor 11"):
            factorize(22)


class TestIsPowerOfTwo:
    def test_values(self):
        assert is_power_of_two(1)
        assert is_power_of_two(64)
        assert not is_power_of_two(0)
        assert not is_power_of_two(6)
