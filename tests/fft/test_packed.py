"""Real-pair packing: Hermitian fold/split against the plain transforms."""

import numpy as np
import pytest

from repro import fft as _fft
from repro.fft.packed import (
    conj_reverse_half,
    fold_half_spectra,
    fold_pairs,
    pack_weight_operand,
    packed_irfft,
    packed_rfft,
    split_pair_spectra,
)


def _rows(rng, shape):
    return rng.standard_normal(shape)


class TestFoldPairs:
    def test_even_rows_pack_real_imag(self):
        rng = np.random.default_rng(0)
        x = _rows(rng, (4, 6))
        z, rest = fold_pairs(x, 8)
        assert rest is None
        assert z.shape == (2, 8)
        np.testing.assert_array_equal(z.real[:, :6], x[0::2])
        np.testing.assert_array_equal(z.imag[:, :6], x[1::2])
        # zero padding beyond the row length
        assert np.all(z[:, 6:] == 0)

    def test_odd_rows_leave_leftover(self):
        rng = np.random.default_rng(1)
        x = _rows(rng, (5, 6))
        z, rest = fold_pairs(x, 8)
        assert z.shape == (2, 8)
        np.testing.assert_array_equal(rest, x[4:])

    def test_single_row_has_no_pairs(self):
        rng = np.random.default_rng(2)
        x = _rows(rng, (1, 6))
        z, rest = fold_pairs(x, 8)
        assert z.shape == (0, 8)
        np.testing.assert_array_equal(rest, x)

    def test_rejects_complex(self):
        with pytest.raises(TypeError, match="real"):
            fold_pairs(np.ones((2, 4), dtype=complex), 4)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="rows"):
            fold_pairs(np.ones(4), 4)

    def test_rejects_overlong_rows(self):
        with pytest.raises(ValueError, match="exceeds"):
            fold_pairs(np.ones((2, 9)), 8)


class TestHermitianSplit:
    @pytest.mark.parametrize("n", [8, 9, 12, 15])
    def test_split_recovers_both_spectra(self, n):
        rng = np.random.default_rng(3)
        a, b = _rows(rng, (n,)), _rows(rng, (n,))
        z_hat = np.fft.fft(a + 1j * b)
        bins = n // 2 + 1
        got_a, got_b = split_pair_spectra(z_hat, bins)
        np.testing.assert_allclose(got_a, np.fft.rfft(a), atol=1e-12)
        np.testing.assert_allclose(got_b, np.fft.rfft(b), atol=1e-12)

    def test_conj_reverse_half_is_hermitian_image(self):
        rng = np.random.default_rng(4)
        z_hat = np.fft.fft(_rows(rng, (3, 10)) + 1j * _rows(rng, (3, 10)))
        rev = conj_reverse_half(z_hat, 6)
        n = 10
        for k in range(6):
            np.testing.assert_allclose(
                rev[:, k], np.conj(z_hat[:, (n - k) % n]), atol=0)


class TestPackedRfft:
    @pytest.mark.parametrize("rows", [1, 2, 3, 4, 7, 16, 17])
    @pytest.mark.parametrize("n", [8, 15])
    def test_matches_plain_rfft(self, rows, n):
        rng = np.random.default_rng(rows * 31 + n)
        x = _rows(rng, (2, rows, 6))
        got = packed_rfft(x, n)
        want = np.fft.rfft(x, n)
        np.testing.assert_allclose(got, want, atol=1e-12)

    def test_strided_input(self):
        rng = np.random.default_rng(5)
        base = _rows(rng, (8, 12))
        x = base[::2, ::2]                     # non-contiguous both axes
        assert not x.flags["C_CONTIGUOUS"]
        np.testing.assert_allclose(
            packed_rfft(x, 16), np.fft.rfft(np.ascontiguousarray(x), 16),
            atol=1e-12)

    def test_rejects_complex(self):
        with pytest.raises(TypeError, match="real"):
            packed_rfft(np.ones((2, 4), dtype=complex), 8)

    def test_builtin_backend(self):
        rng = np.random.default_rng(6)
        x = _rows(rng, (4, 10))
        got = packed_rfft(x, 16, fft="builtin")
        np.testing.assert_allclose(got, np.fft.rfft(x, 16), atol=1e-10)


class TestPackedIrfft:
    @pytest.mark.parametrize("rows", [1, 2, 3, 5, 8])
    @pytest.mark.parametrize("n", [8, 15])
    def test_roundtrip(self, rows, n):
        rng = np.random.default_rng(rows * 17 + n)
        x = _rows(rng, (rows, n))
        spec = np.fft.rfft(x, n)
        np.testing.assert_allclose(packed_irfft(spec, n), x, atol=1e-12)

    def test_fold_half_spectra_requires_even_rows(self):
        with pytest.raises(ValueError, match="even"):
            fold_half_spectra(np.ones((3, 5), dtype=complex), 8)

    def test_bin_count_must_match_size(self):
        with pytest.raises(ValueError, match="bins"):
            packed_irfft(np.ones((2, 5), dtype=complex), 12)


class TestPackWeightOperand:
    @pytest.mark.parametrize("c_per", [1, 2, 3, 16, 17])
    def test_contraction_matches_unpacked_sum(self, c_per):
        """The packed operand must make ``W @ cols`` equal the plain
        per-channel multiply-accumulate, for even and odd channel counts.
        """
        rng = np.random.default_rng(c_per)
        g, f_per, n, nfft = 2, 3, 2, 16
        bins = nfft // 2 + 1
        x = rng.standard_normal((n, g, c_per, nfft))
        w_hat = (rng.standard_normal((g, f_per, c_per, bins))
                 + 1j * rng.standard_normal((g, f_per, c_per, bins)))
        want = np.einsum("ngcb,gfcb->ngfb", np.fft.rfft(x, nfft), w_hat)

        operand = pack_weight_operand(w_hat)
        assert operand.shape == (g, bins, f_per, c_per)
        pairs = c_per // 2
        z_hat = np.fft.fft(x[..., 0:2 * pairs:2, :]
                           + 1j * x[..., 1:2 * pairs:2, :])
        cols = np.empty((g, bins, c_per, n), dtype=complex)
        if pairs:
            cols[:, :, :pairs] = z_hat[..., :bins].transpose(1, 3, 2, 0)
            cols[:, :, pairs:2 * pairs] = \
                conj_reverse_half(z_hat, bins).transpose(1, 3, 2, 0)
        if c_per % 2:
            cols[:, :, -1] = np.fft.rfft(x[..., -1, :], nfft) \
                .transpose(1, 2, 0)
        got = np.matmul(operand, cols).transpose(3, 0, 2, 1)
        np.testing.assert_allclose(got, want, atol=1e-10)


class TestPublicSurface:
    def test_exported_from_fft_package(self):
        assert _fft.packed_rfft is packed_rfft
        assert _fft.packed_irfft is packed_irfft
