"""Tests for the Bluestein chirp-z FFT."""

import numpy as np
import pytest

from repro.fft.bluestein import fft_bluestein, ifft_bluestein


@pytest.mark.parametrize("n", [1, 2, 3, 5, 7, 11, 13, 17, 31, 97, 101])
def test_matches_numpy_on_primes_and_more(rng, n):
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    np.testing.assert_allclose(fft_bluestein(x), np.fft.fft(x), atol=1e-8)


@pytest.mark.parametrize("n", [5, 11, 23])
def test_roundtrip(rng, n):
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    np.testing.assert_allclose(ifft_bluestein(fft_bluestein(x)), x,
                               atol=1e-9)


def test_works_on_composite_sizes_too(rng):
    x = rng.standard_normal(12) + 0j
    np.testing.assert_allclose(fft_bluestein(x), np.fft.fft(x), atol=1e-9)


def test_batched(rng):
    x = rng.standard_normal((4, 11)) + 0j
    np.testing.assert_allclose(fft_bluestein(x), np.fft.fft(x), atol=1e-8)


def test_empty_raises():
    with pytest.raises(ValueError):
        fft_bluestein(np.zeros(0))
    with pytest.raises(ValueError):
        ifft_bluestein(np.zeros(0))


def test_zero_d_rejected_with_clear_message():
    with pytest.raises(ValueError, match="0-d array"):
        fft_bluestein(np.array(1.0))
    with pytest.raises(ValueError, match="0-d array"):
        ifft_bluestein(np.array(1 + 0j))


def test_size_one_is_identity_copy():
    x = np.array([2.5 + 0.5j])
    for fn in (fft_bluestein, ifft_bluestein):
        out = fn(x)
        np.testing.assert_allclose(out, x)
        assert out is not x


def test_empty_batch_rows():
    assert fft_bluestein(np.zeros((0, 7))).shape == (0, 7)
