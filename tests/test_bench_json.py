"""Smoke test for the JSON benchmark harness (slow; excluded from tier-1).

Run explicitly with ``pytest -m slow`` or via ``python -m repro bench
--smoke``.  Validates the report schema and that it round-trips through
JSON, without asserting timing (the CI box is too noisy for that).
"""

import json

import pytest

from repro import bench

pytestmark = pytest.mark.slow


def test_smoke_suite_schema(tmp_path):
    report = bench.run_suite(smoke=True, repeats=1, workers=2)
    # v2 added the per-case deterministic FFT counters (see --check gate);
    # v3 added the guard_fallbacks counter (zero on a healthy install);
    # v4 added the resolved spectrum layout and roofline_pct;
    # v5 added the N-dimensional operator presets (rows carrying "op").
    assert report["schema"] == bench.SCHEMA_VERSION == 5
    for row in report["results"]:
        assert row["counters"]["fft_calls"] >= 2
        assert row["counters"]["guard_fallbacks"] == 0
        assert row["layout"] in ("planar", "interleaved", None)
        assert row["roofline_pct"] is None or row["roofline_pct"] > 0
    nd_rows = [row for row in report["results"] if "op" in row]
    rows_2d = [row for row in report["results"] if "op" not in row]
    assert {row["op"] for row in nd_rows} == {
        "conv1d", "conv3d", "conv_transpose2d"}
    for row in nd_rows:
        assert row["first_call_ms"] > 0
        assert row["cached_ms"] > 0
        if row["op"] in ("conv1d", "conv3d"):
            # run_nd_case raises if measured != predicted; the report
            # must still carry the prediction for the --check gate.
            predicted = row["predicted_counters"]
            assert {k: row["counters"][k] for k in predicted} == predicted
    assert rows_2d, "smoke suite must run at least one 2D case"
    extended_seen = 0
    for row in rows_2d:
        assert row["uncached_ms"] > 0
        assert row["cached_ms"] > 0
        shape = row["shape"]
        extended = (shape["stride"], shape["dilation"], shape["groups"]) \
            != (1, 1, 1)
        if extended:
            # The seed replica cannot run strided/dilated/grouped layers:
            # those rows are verified against naive and carry no seed
            # comparison.
            extended_seen += 1
            assert row["seed_ms"] is None and row["speedup"] is None
        else:
            assert row["seed_ms"] > 0
            assert row["speedup"] == pytest.approx(
                row["seed_ms"] / row["cached_ms"], rel=1e-2)
        assert row["cache_speedup"] == pytest.approx(
            row["uncached_ms"] / row["cached_ms"], rel=1e-2)
    assert extended_seen >= 2, \
        "smoke suite must cover the strided and depthwise presets"
    # every case must be exercised with both cold and warm measurements
    names = {row["name"] for row in report["results"]}
    assert len(names) == len(report["results"])

    out = tmp_path / "bench.json"
    bench.write_report(report, out)
    assert json.loads(out.read_text())["results"] == report["results"]


def test_smoke_cli_entry(tmp_path, capsys):
    out = tmp_path / "bench.json"
    code = bench.main(["--smoke", "--repeats", "1", "--out", str(out)])
    assert code == 0
    assert out.exists()
    assert "speedup" in capsys.readouterr().out


def test_inject_drill_recovers_everywhere(capsys):
    """The recovery drill: one fault kind across the smoke suite must
    recover the naive reference on every case and exit clean."""
    report = bench.run_inject_drill(kinds=("backend_error",), smoke=True)
    assert report["failures"] == 0
    assert report["rows"], "drill must cover the smoke cases"
    for row in report["rows"]:
        assert row["recovered"]
        assert row["injected"] >= 1
        assert row["fallbacks"] >= 1
    text = bench.format_inject_report(report)
    assert "drill passed" in text


def test_inject_drill_cli_entry(capsys):
    code = bench.main(["--quick", "--inject", "nan_input", "--no-json"])
    assert code == 0
    assert "recovered" in capsys.readouterr().out
