"""Tests for the convolution backward passes (finite-difference checked)."""

import numpy as np
import pytest

from repro.baselines.naive import conv2d_naive
from repro.baselines.registry import ConvAlgorithm
from repro.nn.grad import (
    conv2d_backward_bias,
    conv2d_backward_input,
    conv2d_backward_weight,
    dilate_spatial,
)


def numerical_gradient(loss_fn, array, eps=1e-6):
    grad = np.zeros_like(array)
    it = np.nditer(array, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        original = array[idx]
        array[idx] = original + eps
        plus = loss_fn()
        array[idx] = original - eps
        minus = loss_fn()
        array[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
    return grad


CASES = [
    (1, 1, 1, 5, 5, 3, 3, 0, 1),
    (2, 2, 3, 5, 6, 3, 2, 1, 1),
    (1, 1, 1, 6, 6, 3, 3, 0, 2),
    (2, 3, 2, 7, 5, 2, 2, 2, 2),
    (1, 2, 2, 8, 8, 3, 3, 1, 3),
]


class TestAgainstFiniteDifferences:
    @pytest.mark.parametrize("case", CASES)
    def test_input_gradient(self, rng, case):
        n, c, f, ih, iw, kh, kw, p, s = case
        x = rng.standard_normal((n, c, ih, iw))
        w = rng.standard_normal((f, c, kh, kw))
        go = rng.standard_normal(conv2d_naive(x, w, p, s).shape)
        dx = conv2d_backward_input(go, w, x.shape, p, s)
        expected = numerical_gradient(
            lambda: np.sum(conv2d_naive(x, w, p, s) * go), x)
        np.testing.assert_allclose(dx, expected, atol=1e-4)

    @pytest.mark.parametrize("case", CASES)
    def test_weight_gradient(self, rng, case):
        n, c, f, ih, iw, kh, kw, p, s = case
        x = rng.standard_normal((n, c, ih, iw))
        w = rng.standard_normal((f, c, kh, kw))
        go = rng.standard_normal(conv2d_naive(x, w, p, s).shape)
        dw = conv2d_backward_weight(go, x, (kh, kw), p, s)
        expected = numerical_gradient(
            lambda: np.sum(conv2d_naive(x, w, p, s) * go), w)
        np.testing.assert_allclose(dw, expected, atol=1e-4)

    def test_bias_gradient(self, rng):
        go = rng.standard_normal((2, 3, 4, 4))
        np.testing.assert_allclose(conv2d_backward_bias(go),
                                   go.sum(axis=(0, 2, 3)))


#: (c, f, ih, iw, padding, stride, dilation, groups) — the extended space.
#: Shapes stay tiny: the finite-difference probe visits every element.
EXTENDED_CASES = [
    pytest.param(2, 2, 7, 6, "same", 1, 2, 2, id="depthwise-dilated-same"),
    pytest.param(3, 3, 6, 6, 1, 1, 1, 3, id="depthwise"),
    pytest.param(2, 2, 7, 7, (1, 0, 2, 1), (2, 1), (1, 2), 1,
                 id="asym-everything"),
    pytest.param(4, 2, 8, 7, 2, 2, 2, 2, id="grouped-strided-dilated"),
]


class TestExtendedParamsAgainstFiniteDifferences:
    """Backward passes over the full parameter space (the acceptance
    criterion: depthwise + dilation must train, not just infer)."""

    @pytest.mark.parametrize("c,f,ih,iw,p,s,d,g", EXTENDED_CASES)
    def test_input_gradient(self, rng, c, f, ih, iw, p, s, d, g):
        x = rng.standard_normal((1, c, ih, iw))
        w = rng.standard_normal((f, c // g, 3, 3))
        kwargs = dict(padding=p, stride=s, dilation=d, groups=g)
        go = rng.standard_normal(conv2d_naive(x, w, **kwargs).shape)
        dx = conv2d_backward_input(go, w, x.shape, **kwargs)
        expected = numerical_gradient(
            lambda: np.sum(conv2d_naive(x, w, **kwargs) * go), x)
        np.testing.assert_allclose(dx, expected, atol=1e-4)

    @pytest.mark.parametrize("c,f,ih,iw,p,s,d,g", EXTENDED_CASES)
    def test_weight_gradient(self, rng, c, f, ih, iw, p, s, d, g):
        x = rng.standard_normal((1, c, ih, iw))
        w = rng.standard_normal((f, c // g, 3, 3))
        kwargs = dict(padding=p, stride=s, dilation=d, groups=g)
        go = rng.standard_normal(conv2d_naive(x, w, **kwargs).shape)
        dw = conv2d_backward_weight(go, x, (3, 3), **kwargs)
        expected = numerical_gradient(
            lambda: np.sum(conv2d_naive(x, w, **kwargs) * go), w)
        np.testing.assert_allclose(dw, expected, atol=1e-4)


class TestAlgorithmChoice:
    @pytest.mark.parametrize("algorithm", [
        ConvAlgorithm.POLYHANKEL, ConvAlgorithm.GEMM, ConvAlgorithm.FFT,
    ])
    def test_all_algorithms_agree_on_gradients(self, rng, algorithm):
        x = rng.standard_normal((2, 2, 6, 6))
        w = rng.standard_normal((3, 2, 3, 3))
        go = rng.standard_normal((2, 3, 4, 4))
        dx_ref = conv2d_backward_input(go, w, x.shape,
                                       algorithm=ConvAlgorithm.NAIVE)
        dw_ref = conv2d_backward_weight(go, x, (3, 3),
                                        algorithm=ConvAlgorithm.NAIVE)
        np.testing.assert_allclose(
            conv2d_backward_input(go, w, x.shape, algorithm=algorithm),
            dx_ref, atol=1e-8)
        np.testing.assert_allclose(
            conv2d_backward_weight(go, x, (3, 3), algorithm=algorithm),
            dw_ref, atol=1e-8)


class TestDilate:
    def test_identity_for_stride_one(self, rng):
        x = rng.standard_normal((2, 2, 3, 3))
        assert dilate_spatial(x, 1) is x

    def test_inserts_zeros(self):
        x = np.ones((1, 1, 2, 2))
        out = dilate_spatial(x, 3)
        assert out.shape == (1, 1, 4, 4)
        assert out.sum() == 4
        assert out[0, 0, 0, 0] == out[0, 0, 3, 3] == 1

    def test_shape_mismatch_rejected(self, rng):
        w = rng.standard_normal((1, 1, 3, 3))
        with pytest.raises(ValueError, match="grad_out shape"):
            conv2d_backward_input(rng.standard_normal((1, 1, 9, 9)), w,
                                  (1, 1, 5, 5))
