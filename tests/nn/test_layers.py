"""Tests for layer objects."""

import numpy as np
import pytest

from repro.baselines.registry import ConvAlgorithm
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.perfmodel.device import V100
from tests.conftest import naive_conv2d_reference


class TestConv2dLayer:
    def test_forward_matches_reference(self, rng):
        layer = Conv2d(2, 3, 3, padding=1, rng=rng)
        x = rng.standard_normal((2, 2, 6, 6))
        expected = naive_conv2d_reference(x, layer.weight, 1)
        expected += layer.bias[None, :, None, None]
        np.testing.assert_allclose(layer(x), expected, atol=1e-8)

    def test_output_shape(self):
        layer = Conv2d(3, 8, 5, padding=2, stride=2)
        assert layer.output_shape((4, 3, 16, 16)) == (4, 8, 8, 8)

    def test_algorithm_accepts_string(self):
        layer = Conv2d(1, 1, 3, algorithm="fft")
        assert layer.algorithm is ConvAlgorithm.FFT

    def test_no_bias(self, rng):
        layer = Conv2d(1, 2, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert layer.param_count() == layer.weight.size

    def test_param_count(self):
        layer = Conv2d(3, 8, 3)
        assert layer.param_count() == 8 * 3 * 9 + 8

    def test_simulated_time_positive(self):
        layer = Conv2d(3, 8, 3, padding=1)
        assert layer.simulated_time_s((2, 3, 16, 16), V100) > 0

    def test_counters_accessible(self):
        layer = Conv2d(3, 8, 3, padding=1, algorithm="gemm")
        report = layer.counters((2, 3, 16, 16))
        assert report.flops > 0

    def test_deterministic_init(self):
        a = Conv2d(2, 2, 3, rng=np.random.default_rng(7))
        b = Conv2d(2, 2, 3, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a.weight, b.weight)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Conv2d(0, 1, 3)
        with pytest.raises(ValueError):
            Conv2d(1, 1, 0)

    def test_repr(self):
        assert "algo=polyhankel" in repr(Conv2d(1, 2, 3))


class TestSimpleLayers:
    def test_relu(self, rng):
        x = rng.standard_normal((1, 2, 3, 3))
        out = ReLU()(x)
        assert (out >= 0).all()
        assert ReLU().output_shape(x.shape) == x.shape

    def test_max_pool_shape(self):
        assert MaxPool2d(2).output_shape((1, 3, 8, 8)) == (1, 3, 4, 4)

    def test_avg_pool_forward(self):
        x = np.ones((1, 1, 4, 4))
        np.testing.assert_array_equal(AvgPool2d(2)(x), np.ones((1, 1, 2, 2)))

    def test_batch_norm_shape_preserved(self, rng):
        bn = BatchNorm2d(3, rng=rng)
        x = rng.standard_normal((2, 3, 4, 4))
        assert bn(x).shape == x.shape
        assert bn.param_count() == 6

    def test_flatten(self, rng):
        x = rng.standard_normal((2, 3, 4, 5))
        out = Flatten()(x)
        assert out.shape == (2, 60)
        assert Flatten().output_shape(x.shape) == (2, 60)

    def test_linear_forward_and_shape(self, rng):
        layer = Linear(6, 4, rng=rng)
        x = rng.standard_normal((3, 6))
        assert layer(x).shape == (3, 4)
        assert layer.output_shape((3, 6)) == (3, 4)
        assert layer.param_count() == 6 * 4 + 4

    def test_reprs(self):
        for layer, token in [(ReLU(), "ReLU"), (MaxPool2d(2), "MaxPool"),
                             (Flatten(), "Flatten"),
                             (Linear(2, 3), "Linear(2, 3)"),
                             (BatchNorm2d(4), "BatchNorm2d(4)")]:
            assert token in repr(layer)
