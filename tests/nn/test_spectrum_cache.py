"""Conv2d weight-spectrum cache: amortization guard and invalidation.

The microbenchmark guard asserts the *mechanism* (not wall-clock): a
counting shim on the FFT backend proves the second forward of a
fixed-shape ``Conv2d`` performs zero ``rfft`` calls on the weight, so the
amortization cannot silently regress.
"""

import numpy as np
import pytest

from repro import fft as _fft
from repro.core.multichannel import clear_plan_cache, clear_spectrum_cache
from repro.nn.layers import Conv2d
from tests.conftest import naive_conv2d_reference


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_plan_cache()
    clear_spectrum_cache()
    yield
    clear_plan_cache()
    clear_spectrum_cache()


def _weight_call_count(log, layer):
    """Recorded rfft calls whose input is weight-shaped (f, c, ...)."""
    f, c = layer.out_channels, layer.in_channels
    return sum(1 for s in log.shapes("rfft")
               if len(s) == 3 and s[:2] == (f, c))


class TestAmortizationGuard:
    def test_second_forward_performs_zero_weight_rffts(self, rng):
        layer = Conv2d(3, 8, 3, padding=1, bias=False)
        x = rng.standard_normal((2, 3, 12, 12))

        with _fft.record_fft_calls() as log:
            layer(x)
        assert _weight_call_count(log, layer) == 1  # cold: transform once

        with _fft.record_fft_calls() as log:
            layer(x)
            layer(x)
        assert _weight_call_count(log, layer) == 0  # warm: never again
        assert log.count("rfft") == 2  # the input transform still runs

    def test_cache_disabled_layer_retransforms(self, rng):
        # cache_spectra=False falls back to the functional path; disabling
        # the module-level spectrum cache too forces a true retransform.
        from repro.core.multichannel import enable_spectrum_cache

        layer = Conv2d(3, 8, 3, padding=1, bias=False, cache_spectra=False)
        x = rng.standard_normal((2, 3, 12, 12))
        try:
            enable_spectrum_cache(False)
            layer(x)
            with _fft.record_fft_calls() as log:
                layer(x)
        finally:
            enable_spectrum_cache(True)
        assert _weight_call_count(log, layer) == 1


class TestLayerCacheCorrectness:
    def test_cached_forward_matches_reference(self, rng):
        layer = Conv2d(3, 4, 3, padding=1)
        x = rng.standard_normal((2, 3, 10, 10))
        expected = naive_conv2d_reference(x, layer.weight, 1) \
            + layer.bias[None, :, None, None]
        for _ in range(3):  # cold then cached
            np.testing.assert_allclose(layer(x), expected, atol=1e-8)
        assert layer.spectrum_cache_info().hits == 2

    def test_cached_forward_bit_identical_to_uncached(self, rng):
        cached = Conv2d(3, 4, 3, padding=1, bias=False)
        uncached = Conv2d(3, 4, 3, padding=1, bias=False,
                          cache_spectra=False)
        uncached.weight = cached.weight.copy()
        x = rng.standard_normal((2, 3, 10, 10))
        reference = uncached(x)
        np.testing.assert_array_equal(cached(x), reference)
        np.testing.assert_array_equal(cached(x), reference)

    def test_workers_forward_bit_identical(self, rng):
        seq = Conv2d(3, 4, 3, padding=1, bias=False)
        par = Conv2d(3, 4, 3, padding=1, bias=False, workers=3)
        par.weight = seq.weight.copy()
        x = rng.standard_normal((4, 3, 10, 10))
        np.testing.assert_array_equal(par(x), seq(x))

    def test_multiple_input_shapes_each_get_a_plan(self, rng):
        layer = Conv2d(2, 3, 3, padding=1, bias=False)
        for ih in (8, 10, 12):
            x = rng.standard_normal((1, 2, ih, ih))
            np.testing.assert_allclose(
                layer(x), naive_conv2d_reference(x, layer.weight, 1),
                atol=1e-8)
        assert layer.spectrum_cache_info().size == 3


class TestLayerCacheInvalidation:
    def test_rebinding_weight_invalidates(self, rng):
        layer = Conv2d(2, 3, 3, padding=1, bias=False)
        x = rng.standard_normal((1, 2, 8, 8))
        layer(x)
        version = layer.weight_version
        layer.weight = rng.standard_normal(layer.weight.shape)
        assert layer.weight_version == version + 1
        np.testing.assert_allclose(
            layer(x), naive_conv2d_reference(x, layer.weight, 1),
            atol=1e-8)

    def test_in_place_mutation_yields_fresh_spectra(self, rng):
        layer = Conv2d(2, 3, 3, padding=1, bias=False)
        x = rng.standard_normal((1, 2, 8, 8))
        stale = layer(x)
        layer.weight[...] = rng.standard_normal(layer.weight.shape)
        out = layer(x)
        assert not np.array_equal(out, stale)
        np.testing.assert_allclose(
            out, naive_conv2d_reference(x, layer.weight, 1), atol=1e-8)

    def test_explicit_invalidation_retransforms(self, rng):
        layer = Conv2d(2, 3, 3, padding=1, bias=False)
        x = rng.standard_normal((1, 2, 8, 8))
        layer(x)
        layer.invalidate_weight_cache()
        with _fft.record_fft_calls() as log:
            layer(x)
        assert _weight_call_count(log, layer) == 1
