"""Tests for the synthetic benchmark networks and LeNet-5."""

import numpy as np
import pytest

from repro.baselines.registry import ConvAlgorithm
from repro.nn.layers import Conv2d
from repro.nn.synthetic import (
    SYNTHETIC_CONV_LAYERS,
    lenet5,
    synthetic_network,
)


class TestSyntheticNetwork:
    def test_has_twenty_conv_layers(self):
        net = synthetic_network(32, seed=0)
        assert len(net.conv_layers()) == SYNTHETIC_CONV_LAYERS == 20

    def test_deterministic_per_seed(self):
        a = synthetic_network(32, seed=3)
        b = synthetic_network(32, seed=3)
        assert [l.kernel_size for l in a.conv_layers()] == \
               [l.kernel_size for l in b.conv_layers()]

    def test_seeds_vary_design(self):
        designs = {
            tuple(l.kernel_size for l in
                  synthetic_network(32, seed=s).conv_layers())
            for s in range(5)
        }
        assert len(designs) > 1

    def test_kernel_sizes_are_common_cnn_choices(self):
        net = synthetic_network(64, seed=1)
        assert set(l.kernel_size for l in net.conv_layers()) <= {3, 5, 7}

    def test_forward_runs(self, rng):
        net = synthetic_network(16, seed=0)
        out = net(rng.standard_normal((1, 3, 16, 16)))
        assert out.ndim == 4
        assert np.isfinite(out).all()

    def test_shape_inference_consistent_with_forward(self, rng):
        net = synthetic_network(16, seed=2)
        x = rng.standard_normal((2, 3, 16, 16))
        assert net(x).shape == net.output_shape(x.shape)

    def test_algorithm_forced_everywhere(self):
        net = synthetic_network(16, algorithm="fft")
        assert all(l.algorithm is ConvAlgorithm.FFT
                   for l in net.conv_layers())

    def test_varied_conv_shapes(self):
        """Sec 4.2: convolution is called with widely different parameters."""
        net = synthetic_network(64, seed=0)
        shapes = set()
        shape = (1, 3, 64, 64)
        for layer in net.layers:
            if isinstance(layer, Conv2d):
                shapes.add((shape[2], layer.kernel_size, layer.in_channels))
            shape = layer.output_shape(shape)
        assert len(shapes) >= 5

    def test_too_small_input_rejected(self):
        with pytest.raises(ValueError):
            synthetic_network(4)

    def test_custom_depth(self):
        net = synthetic_network(16, conv_layers=5)
        assert len(net.conv_layers()) == 5


class TestLenet5:
    def test_forward_shape(self, rng):
        net = lenet5()
        out = net(rng.standard_normal((3, 1, 28, 28)))
        assert out.shape == (3, 10)

    def test_custom_classes(self, rng):
        net = lenet5(num_classes=7)
        assert net(rng.standard_normal((1, 1, 28, 28))).shape == (1, 7)

    def test_deterministic(self, rng):
        x = rng.standard_normal((1, 1, 28, 28))
        np.testing.assert_array_equal(lenet5(seed=1)(x), lenet5(seed=1)(x))

    def test_algorithms_agree_end_to_end(self, rng):
        x = rng.standard_normal((2, 1, 28, 28))
        ref = lenet5(seed=0, algorithm="naive")(x)
        for algo in ("polyhankel", "gemm", "fft"):
            np.testing.assert_allclose(lenet5(seed=0, algorithm=algo)(x),
                                       ref, atol=1e-7, err_msg=algo)
