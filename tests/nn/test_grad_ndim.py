"""Finite-difference checks for the N-dimensional backward passes.

Covers the rank-generic gradients (``convnd_backward_*`` for conv1d and
conv3d) and the transposed-convolution gradients, over the extended
parameter space — depthwise groups, dilation, per-axis stride and
asymmetric padding included.  Shapes stay tiny: the probe perturbs every
element of the differentiated tensor.
"""

import numpy as np
import pytest

from repro.baselines.ndops import ConvOp, convolve_nd
from repro.nn.grad import (
    conv_transpose2d_backward_input,
    conv_transpose2d_backward_weight,
    convnd_backward_bias,
    convnd_backward_input,
    convnd_backward_weight,
)
from tests.nn.test_grad import numerical_gradient


def _forward(op, x, w, **kwargs):
    return convolve_nd(x, w, op=op, **kwargs)


#: (op, x_shape, w_shape, params) — every case exercises a distinct corner.
CASES = [
    pytest.param(ConvOp.CONV1D, (2, 3, 8), (2, 3, 3),
                 dict(padding=1, stride=1, dilation=1, groups=1),
                 id="1d-basic"),
    pytest.param(ConvOp.CONV1D, (1, 4, 9), (4, 1, 3),
                 dict(padding=2, stride=2, dilation=2, groups=4),
                 id="1d-depthwise-dilated"),
    pytest.param(ConvOp.CONV1D, (1, 2, 10), (2, 2, 3),
                 dict(padding=(2, 0), stride=3, dilation=1, groups=1),
                 id="1d-asym-strided"),
    pytest.param(ConvOp.CONV3D, (1, 2, 4, 4, 4), (2, 2, 2, 2, 2),
                 dict(padding=1, stride=1, dilation=1, groups=1),
                 id="3d-basic"),
    pytest.param(ConvOp.CONV3D, (1, 2, 5, 4, 6), (2, 1, 2, 2, 2),
                 dict(padding=1, stride=(1, 2, 1), dilation=(2, 1, 1),
                      groups=2),
                 id="3d-grouped-mixed"),
]

TCONV_CASES = [
    pytest.param((1, 2, 4, 4), (2, 3, 3, 3),
                 dict(padding=1, stride=1, dilation=1, groups=1,
                      output_padding=0),
                 id="t2d-basic"),
    pytest.param((1, 4, 4, 3), (4, 1, 3, 2),
                 dict(padding=1, stride=2, dilation=1, groups=2,
                      output_padding=1),
                 id="t2d-grouped-strided-op1"),
    pytest.param((1, 2, 3, 4), (2, 2, 2, 2),
                 dict(padding=(1, 0, 0, 1), stride=(2, 3), dilation=2,
                      groups=1, output_padding=(1, 2)),
                 id="t2d-asym-everything"),
]


class TestConvNdBackward:
    @pytest.mark.parametrize("op,x_shape,w_shape,params", CASES)
    def test_input_gradient(self, rng, op, x_shape, w_shape, params):
        x = rng.standard_normal(x_shape)
        w = rng.standard_normal(w_shape)
        go = rng.standard_normal(_forward(op, x, w, **params).shape)
        dx = convnd_backward_input(go, w, x.shape, **params)
        expected = numerical_gradient(
            lambda: np.sum(_forward(op, x, w, **params) * go), x)
        np.testing.assert_allclose(dx, expected, atol=1e-4)

    @pytest.mark.parametrize("op,x_shape,w_shape,params", CASES)
    def test_weight_gradient(self, rng, op, x_shape, w_shape, params):
        x = rng.standard_normal(x_shape)
        w = rng.standard_normal(w_shape)
        go = rng.standard_normal(_forward(op, x, w, **params).shape)
        dw = convnd_backward_weight(go, x, w.shape[2:], **params)
        expected = numerical_gradient(
            lambda: np.sum(_forward(op, x, w, **params) * go), w)
        np.testing.assert_allclose(dw, expected, atol=1e-4)

    def test_bias_gradient_any_rank(self, rng):
        for shape in [(2, 3, 5), (2, 3, 4, 4), (2, 3, 3, 4, 5)]:
            go = rng.standard_normal(shape)
            axes = (0,) + tuple(range(2, go.ndim))
            np.testing.assert_allclose(convnd_backward_bias(go),
                                       go.sum(axis=axes))


class TestConvTranspose2dBackward:
    @pytest.mark.parametrize("x_shape,w_shape,params", TCONV_CASES)
    def test_input_gradient(self, rng, x_shape, w_shape, params):
        x = rng.standard_normal(x_shape)
        w = rng.standard_normal(w_shape)
        go = rng.standard_normal(
            _forward(ConvOp.CONV_TRANSPOSE2D, x, w, **params).shape)
        grad_params = {k: v for k, v in params.items()
                       if k != "output_padding"}
        dx = conv_transpose2d_backward_input(go, w, **grad_params)
        expected = numerical_gradient(
            lambda: np.sum(_forward(ConvOp.CONV_TRANSPOSE2D, x, w,
                                    **params) * go), x)
        np.testing.assert_allclose(dx, expected, atol=1e-4)

    @pytest.mark.parametrize("x_shape,w_shape,params", TCONV_CASES)
    def test_weight_gradient(self, rng, x_shape, w_shape, params):
        x = rng.standard_normal(x_shape)
        w = rng.standard_normal(w_shape)
        go = rng.standard_normal(
            _forward(ConvOp.CONV_TRANSPOSE2D, x, w, **params).shape)
        grad_params = {k: v for k, v in params.items()
                       if k != "output_padding"}
        dw = conv_transpose2d_backward_weight(go, x, w.shape[2:],
                                              **grad_params)
        expected = numerical_gradient(
            lambda: np.sum(_forward(ConvOp.CONV_TRANSPOSE2D, x, w,
                                    **params) * go), w)
        np.testing.assert_allclose(dw, expected, atol=1e-4)


class TestAutogradNd:
    """End-to-end tape check: the Tensor ops wire the gradients above."""

    def test_conv1d_autograd_matches_fd(self, rng):
        from repro.nn import autograd as ag

        x = ag.parameter(rng.standard_normal((1, 2, 8)))
        w = ag.parameter(rng.standard_normal((2, 2, 3)))
        b = ag.parameter(rng.standard_normal(2))
        out = ag.conv1d(x, w, b, padding=1, stride=2)
        out.backward()
        for p in (x, w, b):
            expected = numerical_gradient(
                lambda: float(np.sum(convolve_nd(
                    x.data, w.data, op=ConvOp.CONV1D, padding=1, stride=2)
                    + b.data[None, :, None])), p.data)
            np.testing.assert_allclose(p.grad, expected, atol=1e-4)

    def test_conv_transpose2d_autograd_matches_fd(self, rng):
        from repro.nn import autograd as ag

        x = ag.parameter(rng.standard_normal((1, 2, 3, 3)))
        w = ag.parameter(rng.standard_normal((2, 2, 3, 3)))
        out = ag.conv_transpose2d(x, w, padding=1, stride=2,
                                  output_padding=1)
        out.backward()
        for p in (x, w):
            expected = numerical_gradient(
                lambda: float(np.sum(convolve_nd(
                    x.data, w.data, op=ConvOp.CONV_TRANSPOSE2D, padding=1,
                    stride=2, output_padding=1))), p.data)
            np.testing.assert_allclose(p.grad, expected, atol=1e-4)
