"""Tests for repro.nn.functional."""

import numpy as np
import pytest

from repro.nn import functional as F
from tests.conftest import naive_conv2d_reference


class TestConv2d:
    def test_default_algorithm_polyhankel(self, rng):
        x = rng.standard_normal((1, 2, 6, 6))
        w = rng.standard_normal((2, 2, 3, 3))
        np.testing.assert_allclose(F.conv2d(x, w, padding=1),
                                   naive_conv2d_reference(x, w, 1),
                                   atol=1e-8)

    def test_bias(self, rng):
        x = rng.standard_normal((1, 1, 5, 5))
        w = rng.standard_normal((3, 1, 3, 3))
        b = rng.standard_normal(3)
        got = F.conv2d(x, w, bias=b, algorithm="gemm")
        np.testing.assert_allclose(
            got, naive_conv2d_reference(x, w) + b[None, :, None, None],
            atol=1e-9)


class TestRelu:
    def test_clamps_negatives(self):
        np.testing.assert_array_equal(F.relu(np.array([-1.0, 0.0, 2.0])),
                                      [0, 0, 2])


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(x, 2)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(x, 2)
        np.testing.assert_array_equal(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_stride_differs_from_kernel(self, rng):
        x = rng.standard_normal((1, 1, 6, 6))
        out = F.max_pool2d(x, 3, stride=1)
        assert out.shape == (1, 1, 4, 4)

    def test_floor_division_drops_remainder(self, rng):
        x = rng.standard_normal((1, 1, 5, 5))
        assert F.max_pool2d(x, 2).shape == (1, 1, 2, 2)

    def test_window_too_large(self, rng):
        with pytest.raises(ValueError, match="does not fit"):
            F.max_pool2d(rng.standard_normal((1, 1, 3, 3)), 4)

    def test_invalid_params(self, rng):
        x = rng.standard_normal((1, 1, 4, 4))
        with pytest.raises(ValueError):
            F.max_pool2d(x, 0)
        with pytest.raises(ValueError):
            F.max_pool2d(x, 2, stride=0)


class TestBatchNorm:
    def test_normalizes_to_unit_stats(self, rng):
        x = rng.standard_normal((4, 3, 8, 8)) * 5 + 2
        mean = x.mean(axis=(0, 2, 3))
        var = x.var(axis=(0, 2, 3))
        out = F.batch_norm2d(x, mean, var, np.ones(3), np.zeros(3))
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0, atol=1e-7)
        np.testing.assert_allclose(out.var(axis=(0, 2, 3)), 1, atol=1e-3)

    def test_gamma_beta(self, rng):
        x = rng.standard_normal((2, 2, 4, 4))
        out = F.batch_norm2d(x, np.zeros(2), np.ones(2) - 1e-5,
                             np.full(2, 3.0), np.full(2, 1.0))
        np.testing.assert_allclose(out, 3 * x + 1, atol=1e-4)


class TestLinearSoftmax:
    def test_linear(self, rng):
        x = rng.standard_normal((4, 5))
        w = rng.standard_normal((3, 5))
        b = rng.standard_normal(3)
        np.testing.assert_allclose(F.linear(x, w, b), x @ w.T + b)

    def test_softmax_sums_to_one(self, rng):
        p = F.softmax(rng.standard_normal((3, 7)))
        np.testing.assert_allclose(p.sum(axis=-1), 1.0)

    def test_softmax_stable_with_large_logits(self):
        p = F.softmax(np.array([1000.0, 1000.0]))
        np.testing.assert_allclose(p, [0.5, 0.5])
