"""Tests for the tape-based autograd engine."""

import numpy as np
import pytest

from repro.nn import autograd as ag


def numerical_gradient(loss_fn, array, eps=1e-6):
    grad = np.zeros_like(array)
    it = np.nditer(array, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        original = array[idx]
        array[idx] = original + eps
        plus = loss_fn()
        array[idx] = original - eps
        minus = loss_fn()
        array[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
    return grad


class TestTensorBasics:
    def test_leaf_requires_grad(self):
        p = ag.parameter(np.zeros(3))
        assert p.requires_grad

    def test_requires_grad_propagates(self):
        p = ag.parameter(np.ones((2, 2)))
        x = ag.Tensor(np.ones((2, 2)))
        assert ag.relu(p).requires_grad
        assert not ag.relu(x).requires_grad

    def test_zero_grad(self):
        p = ag.parameter(np.ones(2))
        out = ag.mean(ag.relu(p))
        out.backward()
        assert p.grad is not None
        p.zero_grad()
        assert p.grad is None

    def test_gradient_accumulates_across_backward_calls(self):
        p = ag.parameter(np.ones(2))
        ag.mean(p).backward()
        first = p.grad.copy()
        ag.mean(p).backward()
        np.testing.assert_allclose(p.grad, 2 * first)

    def test_diamond_graph_accumulates_once_per_path(self):
        """Two branches reading the same parameter each contribute their
        gradient exactly once."""
        p = ag.parameter(np.array([2.0]))
        a = ag.relu(p)
        b = ag.relu(p)
        total = ag.Tensor(
            a.data + b.data, (a, b),
            lambda g: (a._accumulate(g), b._accumulate(g)),
        )
        ag.mean(total).backward()
        np.testing.assert_allclose(p.grad, [2.0])


class TestOps:
    def test_relu_gradient(self, rng):
        x = ag.parameter(rng.standard_normal((3, 4)))
        ag.mean(ag.relu(x)).backward()
        expected = numerical_gradient(
            lambda: np.maximum(x.data, 0).mean(), x.data)
        np.testing.assert_allclose(x.grad, expected, atol=1e-6)

    def test_linear_gradients(self, rng):
        x = ag.parameter(rng.standard_normal((4, 3)))
        w = ag.parameter(rng.standard_normal((2, 3)))
        b = ag.parameter(rng.standard_normal(2))
        ag.mean(ag.linear(x, w, b)).backward()
        for t in (x, w, b):
            expected = numerical_gradient(
                lambda: (x.data @ w.data.T + b.data).mean(), t.data)
            np.testing.assert_allclose(t.grad, expected, atol=1e-6)

    def test_conv2d_gradients(self, rng):
        x = ag.parameter(rng.standard_normal((2, 2, 6, 6)))
        w = ag.parameter(rng.standard_normal((3, 2, 3, 3)))
        b = ag.parameter(rng.standard_normal(3))
        ag.mean(ag.conv2d(x, w, b, padding=1)).backward()
        from repro.nn import functional as F
        for t in (x, w, b):
            expected = numerical_gradient(
                lambda: F.conv2d(x.data, w.data, b.data, 1,
                                 algorithm="naive").mean(),
                t.data)
            np.testing.assert_allclose(t.grad, expected, atol=1e-5)

    def test_max_pool_gradient(self, rng):
        x = ag.parameter(rng.standard_normal((2, 2, 6, 6)))
        ag.mean(ag.max_pool2d(x, 2)).backward()
        from repro.nn import functional as F
        expected = numerical_gradient(
            lambda: F.max_pool2d(x.data, 2).mean(), x.data)
        np.testing.assert_allclose(x.grad, expected, atol=1e-6)

    def test_flatten_gradient(self, rng):
        x = ag.parameter(rng.standard_normal((2, 3, 2, 2)))
        ag.mean(ag.flatten(x)).backward()
        np.testing.assert_allclose(x.grad, np.full(x.data.shape, 1 / 24))

    def test_cross_entropy_gradient(self, rng):
        logits = ag.parameter(rng.standard_normal((4, 5)))
        labels = np.array([0, 2, 4, 1])
        ag.cross_entropy(logits, labels).backward()

        def loss():
            from repro.nn.functional import softmax
            p = softmax(logits.data)
            return -np.log(p[np.arange(4), labels]).mean()

        expected = numerical_gradient(loss, logits.data)
        np.testing.assert_allclose(logits.grad, expected, atol=1e-5)


class TestTraining:
    def test_sgd_reduces_quadratic(self):
        p = ag.parameter(np.array([5.0, -3.0]))
        opt = ag.SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            loss = ag.mean(ag.relu(ag.Tensor(p.data ** 2, (p,),
                                             lambda g: p._accumulate(
                                                 2 * p.data * g))))
            loss.backward()
            opt.step()
        assert np.abs(p.data).max() < 0.5

    def test_sgd_momentum_state(self):
        p = ag.parameter(np.array([1.0]))
        opt = ag.SGD([p], lr=0.1, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()
        first = p.data.copy()
        p.grad = np.array([0.0])
        opt.step()  # momentum keeps moving
        assert p.data[0] < first[0]

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            ag.SGD([], lr=0.0)

    def test_tiny_cnn_learns_separable_task(self, rng):
        """A one-conv-layer network learns to separate bright-left from
        bright-right images, training entirely through PolyHankel."""
        n = 40
        x_data = rng.standard_normal((n, 1, 8, 8)) * 0.1
        labels = rng.integers(0, 2, size=n)
        x_data[labels == 0, :, :, :4] += 1.0
        x_data[labels == 1, :, :, 4:] += 1.0

        w = ag.parameter(rng.standard_normal((2, 1, 3, 3)) * 0.3)
        b = ag.parameter(np.zeros(2))
        lw = ag.parameter(rng.standard_normal((2, 2 * 36)) * 0.1)
        opt = ag.SGD([w, b, lw], lr=0.05, momentum=0.9)

        losses = []
        for _ in range(30):
            opt.zero_grad()
            h = ag.relu(ag.conv2d(ag.Tensor(x_data), w, b))
            logits = ag.linear(ag.flatten(h), lw)
            loss = ag.cross_entropy(logits, labels)
            loss.backward()
            opt.step()
            losses.append(float(loss.data))

        assert losses[-1] < losses[0] * 0.5
        preds = np.argmax(
            ag.linear(ag.flatten(ag.relu(ag.conv2d(
                ag.Tensor(x_data), w, b))), lw).data, axis=1)
        assert (preds == labels).mean() > 0.9
