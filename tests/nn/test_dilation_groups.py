"""Tests for dilated and grouped convolution (library extensions)."""

import numpy as np
import pytest

from repro.nn import functional as F


def reference_conv(x, w, padding=0, stride=1, dilation=(1, 1), groups=1):
    """Slow, independent reference with dilation and groups."""
    dh, dw = dilation
    n, c, ih, iw = x.shape
    f, c_per, kh, kw = w.shape
    xp = np.pad(x, [(0, 0), (0, 0), (padding, padding), (padding, padding)])
    eff_kh = dh * (kh - 1) + 1
    eff_kw = dw * (kw - 1) + 1
    oh = (xp.shape[2] - eff_kh) // stride + 1
    ow = (xp.shape[3] - eff_kw) // stride + 1
    out = np.zeros((n, f, oh, ow))
    f_per = f // groups
    for i in range(oh):
        for j in range(ow):
            patch = xp[:, :,
                       i * stride: i * stride + eff_kh: dh,
                       j * stride: j * stride + eff_kw: dw]
            for g in range(groups):
                xg = patch[:, g * c_per: (g + 1) * c_per]
                wg = w[g * f_per: (g + 1) * f_per]
                out[:, g * f_per: (g + 1) * f_per, i, j] = np.einsum(
                    "nchw,fchw->nf", xg, wg)
    return out


class TestDilation:
    @pytest.mark.parametrize("dilation", [2, 3, (2, 3)])
    @pytest.mark.parametrize("algorithm", ["polyhankel", "gemm", "fft"])
    def test_matches_reference(self, rng, dilation, algorithm):
        x = rng.standard_normal((2, 2, 12, 12))
        w = rng.standard_normal((3, 2, 3, 3))
        d = (dilation, dilation) if isinstance(dilation, int) else dilation
        got = F.conv2d(x, w, padding=2, dilation=dilation,
                       algorithm=algorithm)
        ref = reference_conv(x, w, padding=2, dilation=d)
        np.testing.assert_allclose(got, ref, atol=1e-8)

    def test_dilation_one_is_plain_conv(self, rng):
        x = rng.standard_normal((1, 1, 8, 8))
        w = rng.standard_normal((1, 1, 3, 3))
        np.testing.assert_allclose(
            F.conv2d(x, w, dilation=1),
            F.conv2d(x, w), atol=1e-12)

    def test_dilation_with_stride(self, rng):
        x = rng.standard_normal((1, 2, 14, 14))
        w = rng.standard_normal((2, 2, 3, 3))
        got = F.conv2d(x, w, padding=2, stride=2, dilation=2)
        ref = reference_conv(x, w, padding=2, stride=2, dilation=(2, 2))
        np.testing.assert_allclose(got, ref, atol=1e-8)

    def test_invalid_dilation(self, rng):
        with pytest.raises(ValueError, match="dilation"):
            F.conv2d(rng.standard_normal((1, 1, 8, 8)),
                     rng.standard_normal((1, 1, 3, 3)), dilation=0)


class TestGroups:
    @pytest.mark.parametrize("groups", [2, 4])
    @pytest.mark.parametrize("algorithm", ["polyhankel", "gemm"])
    def test_matches_reference(self, rng, groups, algorithm):
        x = rng.standard_normal((2, 4, 8, 8))
        w = rng.standard_normal((8, 4 // groups, 3, 3))
        got = F.conv2d(x, w, padding=1, groups=groups, algorithm=algorithm)
        ref = reference_conv(x, w, padding=1, groups=groups)
        np.testing.assert_allclose(got, ref, atol=1e-8)

    def test_depthwise(self, rng):
        """groups == channels: each filter sees exactly one channel."""
        x = rng.standard_normal((1, 3, 6, 6))
        w = rng.standard_normal((3, 1, 3, 3))
        got = F.conv2d(x, w, padding=1, groups=3)
        for c in range(3):
            single = F.conv2d(x[:, c: c + 1], w[c: c + 1], padding=1)
            np.testing.assert_allclose(got[:, c: c + 1], single, atol=1e-8)

    def test_groups_with_bias(self, rng):
        x = rng.standard_normal((1, 4, 6, 6))
        w = rng.standard_normal((4, 2, 3, 3))
        b = rng.standard_normal(4)
        got = F.conv2d(x, w, bias=b, padding=1, groups=2)
        ref = reference_conv(x, w, padding=1, groups=2) \
            + b[None, :, None, None]
        np.testing.assert_allclose(got, ref, atol=1e-8)

    def test_invalid_groups(self, rng):
        x = rng.standard_normal((1, 3, 6, 6))
        with pytest.raises(ValueError, match="divisible by groups"):
            F.conv2d(x, rng.standard_normal((4, 1, 3, 3)), groups=2)
        with pytest.raises(ValueError, match="groups must be positive"):
            F.conv2d(x, rng.standard_normal((3, 3, 3, 3)), groups=0)
        with pytest.raises(ValueError, match="C/groups"):
            F.conv2d(x[:, :2], rng.standard_normal((2, 2, 3, 3)), groups=2)


class TestCombined:
    def test_dilated_grouped_strided(self, rng):
        x = rng.standard_normal((2, 4, 13, 13))
        w = rng.standard_normal((4, 2, 3, 3))
        got = F.conv2d(x, w, padding=2, stride=2, dilation=2, groups=2)
        ref = reference_conv(x, w, padding=2, stride=2, dilation=(2, 2),
                             groups=2)
        np.testing.assert_allclose(got, ref, atol=1e-8)


class TestConv2dLayerFullParams:
    """nn.Conv2d end to end over the extended space (acceptance: a
    depthwise dilated layer runs forward AND backward correctly)."""

    def test_depthwise_dilated_forward(self, rng):
        from repro.nn.layers import Conv2d
        from tests.conftest import assert_conv_close, naive_conv2d_reference

        layer = Conv2d(4, 4, 3, padding="same", dilation=2, groups=4,
                       rng=rng)
        x = rng.standard_normal((2, 4, 10, 9))
        ref = naive_conv2d_reference(x, layer.weight, "same", dilation=2,
                                     groups=4) \
            + layer.bias[None, :, None, None]
        assert_conv_close(layer(x), ref)
        assert layer.output_shape(x.shape) == (2, 4, 10, 9)

    def test_depthwise_dilated_backward_gradcheck(self, rng):
        """Autograd conv2d with groups == C and dilation 2: both parameter
        gradients and the input gradient match finite differences."""
        from repro.nn import autograd as ag
        from tests.nn.test_grad import numerical_gradient

        x = ag.Tensor(rng.standard_normal((1, 4, 7, 6)),
                      requires_grad=True)
        w = ag.parameter(rng.standard_normal((4, 1, 3, 3)))
        b = ag.parameter(rng.standard_normal(4))
        kwargs = dict(padding="same", dilation=2, groups=4)
        out = ag.conv2d(x, w, b, **kwargs)
        seed = rng.standard_normal(out.shape)
        out.backward(seed)

        def loss():
            return np.sum(
                F.conv2d(x.data, w.data, b.data, **kwargs) * seed)

        np.testing.assert_allclose(
            x.grad, numerical_gradient(loss, x.data), atol=1e-4)
        np.testing.assert_allclose(
            w.grad, numerical_gradient(loss, w.data), atol=1e-4)
        np.testing.assert_allclose(
            b.grad, numerical_gradient(loss, b.data), atol=1e-4)

    def test_grouped_strided_training_step(self, rng):
        """One SGD step on a grouped strided conv must reduce the loss."""
        from repro.nn import autograd as ag

        x = ag.Tensor(rng.standard_normal((2, 4, 9, 9)))
        w = ag.parameter(0.1 * rng.standard_normal((4, 2, 3, 3)))
        target = rng.standard_normal((2, 4, 5, 5))
        opt = ag.SGD([w], lr=0.05)

        def loss_value():
            out = ag.conv2d(x, w, padding=1, stride=2, groups=2)
            diff = out.data - target
            return float(np.mean(diff * diff)), out

        before, out = loss_value()
        out.backward(2 * (out.data - target) / out.data.size)
        opt.step()
        after, _ = loss_value()
        assert after < before
