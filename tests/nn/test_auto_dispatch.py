"""Tests for algorithm="auto" dispatch in nn.functional.conv2d."""

import numpy as np

from repro.nn import functional as F
from tests.conftest import naive_conv2d_reference


class TestAutoDispatch:
    def test_auto_is_correct_small_input(self, rng):
        x = rng.standard_normal((2, 3, 12, 12))
        w = rng.standard_normal((4, 3, 3, 3))
        got = F.conv2d(x, w, padding=1, algorithm="auto")
        np.testing.assert_allclose(got, naive_conv2d_reference(x, w, 1),
                                   atol=1e-8)

    def test_auto_is_correct_large_input(self, rng):
        x = rng.standard_normal((1, 1, 64, 64))
        w = rng.standard_normal((2, 1, 5, 5))
        got = F.conv2d(x, w, padding=2, algorithm="auto")
        np.testing.assert_allclose(got, naive_conv2d_reference(x, w, 2),
                                   atol=1e-8)

    def test_auto_is_correct_large_kernel(self, rng):
        x = rng.standard_normal((1, 1, 40, 40))
        w = rng.standard_normal((1, 1, 17, 17))
        got = F.conv2d(x, w, algorithm="auto")
        np.testing.assert_allclose(got, naive_conv2d_reference(x, w),
                                   atol=1e-7)

    def test_auto_with_groups_and_dilation(self, rng):
        x = rng.standard_normal((1, 4, 20, 20))
        w = rng.standard_normal((4, 2, 3, 3))
        got = F.conv2d(x, w, padding=2, dilation=2, groups=2,
                       algorithm="auto")
        explicit = F.conv2d(x, w, padding=2, dilation=2, groups=2,
                            algorithm="gemm")
        np.testing.assert_allclose(got, explicit, atol=1e-8)

    def test_auto_with_bias(self, rng):
        x = rng.standard_normal((1, 2, 10, 10))
        w = rng.standard_normal((3, 2, 3, 3))
        b = rng.standard_normal(3)
        got = F.conv2d(x, w, bias=b, padding=1, algorithm="auto")
        ref = naive_conv2d_reference(x, w, 1) + b[None, :, None, None]
        np.testing.assert_allclose(got, ref, atol=1e-8)


class TestAutoFollowsRules:
    def test_regions_route_to_expected_families(self, rng):
        from repro.selection.heuristic import select_algorithm_rules
        from repro.utils.shapes import ConvShape

        # Tiny input -> GEMM family; sweet spot -> PolyHankel;
        # huge kernel -> FFT family.
        small = ConvShape(ih=12, iw=12, kh=3, kw=3, padding=1)
        sweet = ConvShape(ih=112, iw=112, kh=5, kw=5, padding=2)
        bigk = ConvShape(ih=64, iw=64, kh=20, kw=20)
        assert "gemm" in select_algorithm_rules(small).value
        assert select_algorithm_rules(sweet).value == "polyhankel"
        assert "fft" in select_algorithm_rules(bigk).value
