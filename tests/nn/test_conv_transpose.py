"""Tests for transposed convolution."""

import numpy as np
import pytest

from repro.nn import functional as F


def reference_conv_transpose(x, w, padding=0, stride=1):
    """Direct scatter implementation of transposed convolution."""
    n, c_in, ih, iw = x.shape
    _, c_out, kh, kw = w.shape
    full_h = (ih - 1) * stride + kh
    full_w = (iw - 1) * stride + kw
    out = np.zeros((n, c_out, full_h, full_w))
    for i in range(ih):
        for j in range(iw):
            # x[:, :, i, j] scatters a kh x kw stamp per input channel.
            contribution = np.einsum("nc,cfuv->nfuv", x[:, :, i, j], w)
            out[:, :, i * stride: i * stride + kh,
                j * stride: j * stride + kw] += contribution
    if padding:
        out = out[:, :, padding: full_h - padding,
                  padding: full_w - padding]
    return out


CASES = [
    (1, 1, 1, 4, 4, 3, 3, 0, 1),
    (2, 3, 2, 5, 6, 3, 3, 1, 1),
    (1, 2, 4, 4, 4, 2, 2, 0, 2),
    (2, 2, 3, 3, 5, 4, 3, 1, 2),
    (1, 1, 1, 6, 6, 3, 3, 0, 3),
]


@pytest.mark.parametrize("case", CASES)
@pytest.mark.parametrize("algorithm", ["polyhankel", "gemm"])
def test_matches_scatter_reference(rng, case, algorithm):
    n, c_in, c_out, ih, iw, kh, kw, p, s = case
    x = rng.standard_normal((n, c_in, ih, iw))
    w = rng.standard_normal((c_in, c_out, kh, kw))
    got = F.conv_transpose2d(x, w, padding=p, stride=s,
                             algorithm=algorithm)
    ref = reference_conv_transpose(x, w, padding=p, stride=s)
    np.testing.assert_allclose(got, ref, atol=1e-8)


def test_output_shape_formula(rng):
    x = rng.standard_normal((1, 2, 7, 5))
    w = rng.standard_normal((2, 3, 4, 3))
    out = F.conv_transpose2d(x, w, padding=1, stride=2)
    assert out.shape == (1, 3, (7 - 1) * 2 - 2 + 4, (5 - 1) * 2 - 2 + 3)


def test_inverts_shape_of_strided_conv(rng):
    """conv_transpose with the same hyperparameters maps a conv output's
    shape back to (at least) the conv input's covered extent."""
    x = rng.standard_normal((1, 3, 16, 16))
    w = rng.standard_normal((4, 3, 3, 3))
    y = F.conv2d(x, w, padding=1, stride=2)
    back = F.conv_transpose2d(y, w, padding=1, stride=2)
    assert back.shape == (1, 3, 15, 15)  # (8-1)*2 - 2 + 3


def test_adjoint_identity(rng):
    """<conv2d(x, w), y> == <x, conv_transpose2d(y, w)>: the transposed
    convolution is exactly the adjoint of the forward one when the same
    (F, C, kh, kw) weight is reinterpreted as (c_in, c_out, kh, kw)."""
    x = rng.standard_normal((2, 3, 8, 8))
    w = rng.standard_normal((4, 3, 3, 3))
    y = rng.standard_normal((2, 4, 4, 4))
    conv = F.conv2d(x, w, padding=1, stride=2)
    assert conv.shape == y.shape
    # output_padding=1 recovers the full 8x8 extent the stride-2 forward
    # convolution under-determines.
    back = F.conv_transpose2d(y, w, padding=1, stride=2, output_padding=1)
    assert back.shape == x.shape
    np.testing.assert_allclose(np.sum(conv * y), np.sum(x * back),
                               rtol=1e-9)


def test_bias(rng):
    x = rng.standard_normal((1, 2, 4, 4))
    w = rng.standard_normal((2, 3, 3, 3))
    b = rng.standard_normal(3)
    got = F.conv_transpose2d(x, w, bias=b)
    ref = reference_conv_transpose(x, w) + b[None, :, None, None]
    np.testing.assert_allclose(got, ref, atol=1e-8)


def test_channel_mismatch(rng):
    with pytest.raises(ValueError, match="channel mismatch"):
        F.conv_transpose2d(rng.standard_normal((1, 3, 4, 4)),
                           rng.standard_normal((2, 2, 3, 3)))


def test_empty_output_rejected(rng):
    with pytest.raises(ValueError, match="empty"):
        F.conv_transpose2d(rng.standard_normal((1, 1, 2, 2)),
                           rng.standard_normal((1, 1, 2, 2)), padding=3)


def test_upsampling_use_case(rng):
    """The classic decoder pattern: stride-2 transposed conv doubles
    spatial resolution."""
    feat = rng.standard_normal((1, 8, 7, 7))
    w = rng.standard_normal((8, 4, 2, 2))
    up = F.conv_transpose2d(feat, w, stride=2)
    assert up.shape == (1, 4, 14, 14)
