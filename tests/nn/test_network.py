"""Tests for Sequential networks and conv-time profiling."""

import numpy as np
import pytest

from repro.baselines.registry import ConvAlgorithm
from repro.nn.layers import Conv2d, Flatten, Linear, MaxPool2d, ReLU
from repro.nn.network import Sequential, profile_conv_time


def _small_net(rng, algorithm=ConvAlgorithm.POLYHANKEL):
    return Sequential(
        Conv2d(1, 4, 3, padding=1, algorithm=algorithm, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Conv2d(4, 8, 3, padding=1, algorithm=algorithm, rng=rng),
        ReLU(),
        Flatten(),
        Linear(8 * 4 * 4, 10, rng=rng),
        name="small",
    )


class TestSequential:
    def test_forward_shape(self, rng):
        net = _small_net(rng)
        out = net(rng.standard_normal((2, 1, 8, 8)))
        assert out.shape == (2, 10)

    def test_output_shape_matches_forward(self, rng):
        net = _small_net(rng)
        assert net.output_shape((2, 1, 8, 8)) == (2, 10)

    def test_layer_shapes(self, rng):
        net = _small_net(rng)
        shapes = net.layer_shapes((2, 1, 8, 8))
        assert shapes[0] == (2, 1, 8, 8)
        assert shapes[3] == (2, 4, 4, 4)  # after pool

    def test_conv_layers(self, rng):
        assert len(_small_net(rng).conv_layers()) == 2

    def test_set_conv_algorithm(self, rng):
        net = _small_net(rng)
        net.set_conv_algorithm("fft")
        assert all(l.algorithm is ConvAlgorithm.FFT
                   for l in net.conv_layers())

    def test_param_count(self, rng):
        net = _small_net(rng)
        expected = (4 * 9 + 4) + (8 * 4 * 9 + 8) + (128 * 10 + 10)
        assert net.param_count() == expected

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Sequential()

    def test_repr(self, rng):
        assert "small" in repr(_small_net(rng))

    def test_output_independent_of_conv_algorithm(self, rng):
        x = rng.standard_normal((1, 1, 8, 8))
        net = _small_net(np.random.default_rng(0))
        baseline = net.set_conv_algorithm("naive")(x)
        for algo in ("gemm", "fft", "winograd", "polyhankel",
                     "finegrain_fft"):
            out = net.set_conv_algorithm(algo)(x)
            np.testing.assert_allclose(out, baseline, atol=1e-6,
                                       err_msg=algo)


class TestProfileConvTime:
    def test_per_layer_count(self, rng):
        net = _small_net(rng)
        profile = profile_conv_time(net, (2, 1, 8, 8), "v100")
        assert len(profile.per_layer_s) == 2
        assert profile.total_s > 0

    def test_iterations_scale_total(self, rng):
        net = _small_net(rng)
        one = profile_conv_time(net, (2, 1, 8, 8), "v100", iterations=1)
        ten = profile_conv_time(net, (2, 1, 8, 8), "v100", iterations=10)
        assert np.isclose(ten.total_s, 10 * one.total_s)

    def test_forcing_algorithm(self, rng):
        net = _small_net(rng)
        profile = profile_conv_time(net, (2, 1, 8, 8), "a10g",
                                    algorithm="gemm")
        assert profile.algorithm is ConvAlgorithm.GEMM
        assert all(l.algorithm is ConvAlgorithm.GEMM
                   for l in net.conv_layers())

    def test_different_algorithms_differ(self, rng):
        net = _small_net(rng)
        shape = (8, 1, 8, 8)
        t_gemm = profile_conv_time(net, shape, "v100", "gemm").total_s
        t_fft = profile_conv_time(net, shape, "v100", "fft").total_s
        assert t_gemm != t_fft

    def test_device_recorded(self, rng):
        profile = profile_conv_time(_small_net(rng), (1, 1, 8, 8), "3090ti")
        assert profile.device == "GeForce 3090Ti"
