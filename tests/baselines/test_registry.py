"""Tests for the algorithm registry and dispatch."""

import numpy as np
import pytest

from repro.baselines.naive import conv2d_naive
from repro.baselines.registry import (
    ConvAlgorithm,
    convolve,
    get_entry,
    list_algorithms,
    supports,
)
from repro.utils.shapes import ConvShape


class TestListing:
    def test_all_enum_members_registered(self):
        assert set(list_algorithms()) == set(ConvAlgorithm)

    def test_entries_have_descriptions(self):
        for algo in list_algorithms():
            entry = get_entry(algo)
            assert entry.description
            assert callable(entry.fn)


class TestResolution:
    def test_by_enum(self):
        assert get_entry(ConvAlgorithm.FFT).algorithm is ConvAlgorithm.FFT

    def test_by_string(self):
        assert get_entry("polyhankel").algorithm is ConvAlgorithm.POLYHANKEL

    def test_unknown_string(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            get_entry("quantum")


class TestCapabilities:
    def test_winograd_rejects_stride(self):
        shape = ConvShape(ih=9, iw=9, kh=3, kw=3, stride=2)
        assert not supports(ConvAlgorithm.WINOGRAD, shape)
        assert not supports(ConvAlgorithm.WINOGRAD_NONFUSED, shape)

    def test_winograd_rejects_huge_kernels(self):
        shape = ConvShape(ih=30, iw=30, kh=12, kw=12)
        assert not supports(ConvAlgorithm.WINOGRAD, shape)

    def test_everything_else_supports_strides(self):
        shape = ConvShape(ih=9, iw=9, kh=3, kw=3, stride=2)
        for algo in (ConvAlgorithm.GEMM, ConvAlgorithm.FFT,
                     ConvAlgorithm.POLYHANKEL, ConvAlgorithm.FINEGRAIN_FFT):
            assert supports(algo, shape)


class TestConvolve:
    def test_dispatch_by_string(self, rng):
        x = rng.standard_normal((1, 2, 6, 6))
        w = rng.standard_normal((2, 2, 3, 3))
        got = convolve(x, w, algorithm="fft", padding=1)
        np.testing.assert_allclose(got, conv2d_naive(x, w, 1), atol=1e-8)

    def test_unsupported_shape_raises(self, rng):
        x = rng.standard_normal((1, 1, 9, 9))
        w = rng.standard_normal((1, 1, 3, 3))
        with pytest.raises(ValueError, match="does not support"):
            convolve(x, w, algorithm="winograd", stride=2)

    def test_kwargs_forwarded(self, rng):
        x = rng.standard_normal((1, 1, 6, 6))
        w = rng.standard_normal((1, 1, 3, 3))
        got = convolve(x, w, algorithm="polyhankel", fft_policy="smooth7")
        np.testing.assert_allclose(got, conv2d_naive(x, w), atol=1e-8)

    def test_every_capable_algorithm_agrees(self, rng):
        x = rng.standard_normal((2, 2, 8, 8))
        w = rng.standard_normal((3, 2, 3, 3))
        shape = ConvShape.from_tensors(x.shape, w.shape, 1, 1)
        ref = conv2d_naive(x, w, 1)
        for algo in list_algorithms():
            if supports(algo, shape):
                got = convolve(x, w, algorithm=algo, padding=1)
                np.testing.assert_allclose(got, ref, atol=1e-7,
                                           err_msg=str(algo))
