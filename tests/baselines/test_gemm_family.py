"""Tests for the GEMM-family algorithms."""

import numpy as np
import pytest

from repro.baselines.im2col_gemm import (
    conv2d_im2col_gemm,
    im2col_workspace_elems,
)
from repro.baselines.implicit_gemm import (
    clear_offset_cache,
    conv2d_implicit_gemm,
    conv2d_implicit_precomp_gemm,
    precomputed_offsets,
)
from repro.baselines.naive import conv2d_naive
from repro.utils.shapes import ConvShape

CASES = [
    (1, 1, 1, 5, 5, 3, 3, 0, 1),
    (2, 3, 4, 8, 9, 3, 3, 1, 1),
    (2, 2, 3, 10, 6, 2, 4, 0, 2),
    (1, 4, 2, 7, 7, 5, 5, 2, 1),
    (3, 1, 1, 6, 6, 1, 1, 0, 1),
    (1, 2, 2, 9, 8, 3, 2, 1, 3),
]


@pytest.mark.parametrize("case", CASES)
@pytest.mark.parametrize("impl", [conv2d_im2col_gemm, conv2d_implicit_gemm,
                                  conv2d_implicit_precomp_gemm])
def test_matches_naive(rng, case, impl):
    n, c, f, ih, iw, kh, kw, p, s = case
    x = rng.standard_normal((n, c, ih, iw))
    w = rng.standard_normal((f, c, kh, kw))
    np.testing.assert_allclose(impl(x, w, padding=p, stride=s),
                               conv2d_naive(x, w, p, s), atol=1e-9)


class TestWorkspace:
    def test_im2col_workspace_formula(self):
        shape = ConvShape(ih=5, iw=5, kh=3, kw=3, n=2, c=3)
        # Table 3 row 1: Kh*Kw*Oh*Ow per (image, channel).
        assert im2col_workspace_elems(shape) == 2 * 3 * 9 * 9


class TestOffsetCache:
    def setup_method(self):
        clear_offset_cache()

    def test_offsets_cached_per_shape(self):
        shape = ConvShape(ih=8, iw=8, kh=3, kw=3)
        rows1, _ = precomputed_offsets(shape)
        rows2, _ = precomputed_offsets(shape)
        assert rows1 is rows2

    def test_offsets_content(self):
        shape = ConvShape(ih=5, iw=5, kh=2, kw=2, stride=2)
        rows, cols = precomputed_offsets(shape)
        assert rows.shape == (shape.oh, shape.ow, 2, 2)
        # Output (1, 0), tap (1, 1) reads padded input row 2*1+1 = 3.
        assert rows[1, 0, 1, 1] == 3
        assert cols[0, 1, 0, 1] == 3

    def test_cache_key_includes_stride(self):
        a = precomputed_offsets(ConvShape(ih=8, iw=8, kh=3, kw=3, stride=1))
        b = precomputed_offsets(ConvShape(ih=9, iw=9, kh=3, kw=3, stride=2))
        assert a[0].shape != b[0].shape


def test_implicit_variants_identical(rng):
    x = rng.standard_normal((2, 3, 8, 8))
    w = rng.standard_normal((4, 3, 3, 3))
    np.testing.assert_allclose(
        conv2d_implicit_gemm(x, w, padding=1),
        conv2d_implicit_precomp_gemm(x, w, padding=1), atol=1e-12)
