"""Tests for Winograd convolution and its generated transforms."""

import numpy as np
import pytest

from repro.baselines.naive import conv2d_naive
from repro.baselines.winograd import (
    MAX_ALPHA,
    conv2d_winograd,
    conv2d_winograd_nonfused,
    winograd_correlate_1d,
    winograd_transforms,
)


class TestTransforms:
    def test_f23_shapes(self):
        at, g, bt = winograd_transforms(2, 3)
        assert at.shape == (2, 4)
        assert g.shape == (4, 3)
        assert bt.shape == (4, 4)

    def test_f23_bilinear_identity(self, rng):
        """A^T [(G g) . (B^T d)] computes the correlation for all d, g."""
        at, g_m, bt = winograd_transforms(2, 3)
        for _ in range(5):
            d = rng.standard_normal(4)
            g = rng.standard_normal(3)
            expected = [d[0:3] @ g, d[1:4] @ g]
            got = at @ ((g_m @ g) * (bt @ d))
            np.testing.assert_allclose(got, expected, atol=1e-10)

    def test_f23_matches_classic_up_to_scaling(self):
        """The classic Lavin F(2,3) matrices satisfy the same identity; our
        generated ones agree on every product (scaling freedom aside)."""
        at, g_m, bt = winograd_transforms(2, 3)
        d = np.arange(1.0, 5.0)
        g = np.array([1.0, -2.0, 0.5])
        classic_bt = np.array([[1, 0, -1, 0], [0, 1, 1, 0],
                               [0, -1, 1, 0], [0, 1, 0, -1]], dtype=float)
        classic_g = np.array([[1, 0, 0], [0.5, 0.5, 0.5],
                              [0.5, -0.5, 0.5], [0, 0, 1]])
        classic_at = np.array([[1, 1, 1, 0], [0, 1, -1, -1]], dtype=float)
        classic = classic_at @ ((classic_g @ g) * (classic_bt @ d))
        ours = at @ ((g_m @ g) * (bt @ d))
        np.testing.assert_allclose(ours, classic, atol=1e-10)

    def test_transform_caching(self):
        assert winograd_transforms(2, 3) is winograd_transforms(2, 3)

    def test_alpha_limit(self):
        with pytest.raises(ValueError, match="too ill-conditioned"):
            winograd_transforms(8, 8)

    def test_invalid_mr(self):
        with pytest.raises(ValueError):
            winograd_transforms(0, 3)


class TestCorrelate1d:
    @pytest.mark.parametrize("m,r", [(1, 2), (2, 2), (2, 3), (4, 3), (6, 3),
                                     (2, 5), (3, 4), (4, 5), (1, 3)])
    def test_matches_direct(self, rng, m, r):
        d = rng.standard_normal(m + r - 1)
        g = rng.standard_normal(r)
        expected = np.array([d[k:k + r] @ g for k in range(m)])
        np.testing.assert_allclose(winograd_correlate_1d(d, g, m), expected,
                                   atol=1e-8)

    def test_segment_length_checked(self, rng):
        with pytest.raises(ValueError, match="samples"):
            winograd_correlate_1d(rng.standard_normal(5),
                                  rng.standard_normal(3), m=2)


CASES = [
    (1, 1, 1, 6, 6, 3, 3, 0),
    (2, 3, 4, 8, 9, 3, 3, 1),
    (1, 2, 2, 7, 7, 2, 2, 0),
    (1, 1, 2, 10, 10, 5, 5, 2),
    (2, 2, 1, 9, 7, 3, 2, 1),
]


@pytest.mark.parametrize("case", CASES)
@pytest.mark.parametrize("variant", ["fused", "nonfused"])
def test_conv2d_matches_naive(rng, case, variant):
    n, c, f, ih, iw, kh, kw, p = case
    x = rng.standard_normal((n, c, ih, iw))
    w = rng.standard_normal((f, c, kh, kw))
    got = conv2d_winograd(x, w, padding=p, variant=variant)
    np.testing.assert_allclose(got, conv2d_naive(x, w, p), atol=1e-7)


def test_variants_identical(rng):
    x = rng.standard_normal((1, 2, 8, 8))
    w = rng.standard_normal((2, 2, 3, 3))
    np.testing.assert_allclose(conv2d_winograd(x, w, padding=1),
                               conv2d_winograd_nonfused(x, w, padding=1),
                               atol=1e-9)


@pytest.mark.parametrize("m", [2, 3, 4])
def test_tile_sizes(rng, m):
    x = rng.standard_normal((1, 1, 11, 11))
    w = rng.standard_normal((1, 1, 3, 3))
    np.testing.assert_allclose(conv2d_winograd(x, w, m=m),
                               conv2d_naive(x, w), atol=1e-7)


def test_output_not_multiple_of_tile(rng):
    """Oh=5 with m=2 needs a partial final tile."""
    x = rng.standard_normal((1, 1, 7, 7))
    w = rng.standard_normal((1, 1, 3, 3))
    np.testing.assert_allclose(conv2d_winograd(x, w, m=2),
                               conv2d_naive(x, w), atol=1e-8)


def test_stride_rejected(rng):
    with pytest.raises(ValueError, match="stride 1"):
        conv2d_winograd(rng.standard_normal((1, 1, 8, 8)),
                        rng.standard_normal((1, 1, 3, 3)), stride=2)


def test_unknown_variant(rng):
    with pytest.raises(ValueError, match="variant"):
        conv2d_winograd(rng.standard_normal((1, 1, 8, 8)),
                        rng.standard_normal((1, 1, 3, 3)), variant="magic")


def test_max_alpha_exported():
    assert MAX_ALPHA >= 8
