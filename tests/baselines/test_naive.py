"""Tests for the direct convolution reference."""

import numpy as np
import pytest

from repro.baselines.naive import conv2d_naive
from tests.conftest import naive_conv2d_reference


@pytest.mark.parametrize("case", [
    (1, 1, 1, 5, 5, 3, 3, 0, 1),
    (2, 3, 4, 7, 8, 3, 2, 1, 1),
    (1, 2, 2, 9, 9, 3, 3, 0, 2),
    (3, 1, 1, 4, 4, 4, 4, 0, 1),
])
def test_matches_independent_reference(rng, case):
    n, c, f, ih, iw, kh, kw, p, s = case
    x = rng.standard_normal((n, c, ih, iw))
    w = rng.standard_normal((f, c, kh, kw))
    np.testing.assert_allclose(conv2d_naive(x, w, p, s),
                               naive_conv2d_reference(x, w, p, s),
                               atol=1e-10)


def test_identity_kernel(rng):
    x = rng.standard_normal((1, 1, 5, 5))
    w = np.zeros((1, 1, 3, 3))
    w[0, 0, 1, 1] = 1.0
    np.testing.assert_allclose(conv2d_naive(x, w, padding=1), x, atol=1e-12)


def test_is_cross_correlation_not_flipped(rng):
    """Deep-learning convention: no kernel flip."""
    x = np.zeros((1, 1, 3, 3))
    x[0, 0, 0, 0] = 1.0
    w = np.arange(4.0).reshape(1, 1, 2, 2)
    out = conv2d_naive(x, w)
    assert out[0, 0, 0, 0] == w[0, 0, 0, 0]


def test_validates_inputs(rng):
    with pytest.raises(ValueError):
        conv2d_naive(rng.standard_normal((1, 1, 3, 3)),
                     rng.standard_normal((1, 2, 2, 2)))
