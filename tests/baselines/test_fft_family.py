"""Tests for the FFT-family algorithms."""

import numpy as np
import pytest

from repro.baselines.fft2d import conv2d_fft, irfft2, rfft2
from repro.baselines.fft_tiling import conv2d_fft_tiling
from repro.baselines.finegrain_fft import conv2d_finegrain_fft
from repro.baselines.naive import conv2d_naive

CASES = [
    (1, 1, 1, 5, 5, 3, 3, 0, 1),
    (2, 3, 4, 8, 9, 3, 3, 1, 1),
    (2, 2, 3, 10, 6, 2, 4, 0, 2),
    (1, 4, 2, 7, 7, 5, 5, 2, 1),
    (1, 1, 2, 12, 12, 3, 3, 1, 1),
]


class TestRfft2:
    def test_matches_numpy(self, rng):
        x = rng.standard_normal((2, 3, 6, 7))
        got = rfft2(x, (8, 10))
        expected = np.fft.rfft2(x, s=(8, 10))
        np.testing.assert_allclose(got, expected, atol=1e-8)

    def test_roundtrip(self, rng):
        x = rng.standard_normal((5, 6))
        np.testing.assert_allclose(irfft2(rfft2(x, (5, 6)), (5, 6)), x,
                                   atol=1e-9)

    def test_builtin_backend(self, rng):
        x = rng.standard_normal((4, 4))
        np.testing.assert_allclose(rfft2(x, (6, 6), backend="builtin"),
                                   np.fft.rfft2(x, s=(6, 6)), atol=1e-8)


@pytest.mark.parametrize("case", CASES)
def test_fft2d_matches_naive(rng, case):
    n, c, f, ih, iw, kh, kw, p, s = case
    x = rng.standard_normal((n, c, ih, iw))
    w = rng.standard_normal((f, c, kh, kw))
    np.testing.assert_allclose(conv2d_fft(x, w, padding=p, stride=s),
                               conv2d_naive(x, w, p, s), atol=1e-8)


@pytest.mark.parametrize("policy", ["pow2", "smooth7"])
def test_fft2d_policies(rng, policy):
    x = rng.standard_normal((1, 2, 9, 9))
    w = rng.standard_normal((2, 2, 3, 3))
    np.testing.assert_allclose(conv2d_fft(x, w, fft_policy=policy),
                               conv2d_naive(x, w), atol=1e-8)


class TestFftTiling:
    @pytest.mark.parametrize("case", CASES)
    def test_matches_naive(self, rng, case):
        n, c, f, ih, iw, kh, kw, p, s = case
        x = rng.standard_normal((n, c, ih, iw))
        w = rng.standard_normal((f, c, kh, kw))
        np.testing.assert_allclose(
            conv2d_fft_tiling(x, w, padding=p, stride=s),
            conv2d_naive(x, w, p, s), atol=1e-8)

    @pytest.mark.parametrize("tile", [1, 3, 4, 7, 32])
    def test_tile_sizes_including_non_dividing(self, rng, tile):
        x = rng.standard_normal((1, 1, 10, 11))
        w = rng.standard_normal((1, 1, 3, 3))
        np.testing.assert_allclose(conv2d_fft_tiling(x, w, tile=tile),
                                   conv2d_naive(x, w), atol=1e-8)

    def test_invalid_tile(self, rng):
        with pytest.raises(ValueError, match="tile"):
            conv2d_fft_tiling(rng.standard_normal((1, 1, 5, 5)),
                              rng.standard_normal((1, 1, 3, 3)), tile=0)


@pytest.mark.parametrize("case", CASES)
def test_finegrain_matches_naive(rng, case):
    n, c, f, ih, iw, kh, kw, p, s = case
    x = rng.standard_normal((n, c, ih, iw))
    w = rng.standard_normal((f, c, kh, kw))
    np.testing.assert_allclose(
        conv2d_finegrain_fft(x, w, padding=p, stride=s),
        conv2d_naive(x, w, p, s), atol=1e-8)


def test_finegrain_builtin_backend(rng):
    x = rng.standard_normal((1, 1, 6, 6))
    w = rng.standard_normal((1, 1, 3, 3))
    np.testing.assert_allclose(conv2d_finegrain_fft(x, w, backend="builtin"),
                               conv2d_naive(x, w), atol=1e-8)
