"""Unit tests for SweepResult analytics and the text renderers."""

import pytest

from repro.baselines.registry import ConvAlgorithm as A
from repro.experiments.report import SweepResult, format_table, summarize


@pytest.fixture
def sweep():
    """Hand-built panel: POLYHANKEL wins at 16 and 32, GEMM wins at 8.

    Winograd is missing the x=32 point, mirroring how capability-gated
    methods leave holes in real sweeps.
    """
    methods = (A.GEMM, A.FFT, A.POLYHANKEL, A.WINOGRAD)
    values = {
        (8, A.GEMM): 1.0, (8, A.FFT): 4.0, (8, A.POLYHANKEL): 2.0,
        (8, A.WINOGRAD): 3.0,
        (16, A.GEMM): 4.0, (16, A.FFT): 3.0, (16, A.POLYHANKEL): 2.0,
        (16, A.WINOGRAD): 5.0,
        (32, A.GEMM): 9.0, (32, A.FFT): 6.0, (32, A.POLYHANKEL): 3.0,
    }
    return SweepResult(title="test panel", x_name="input_size",
                       x_values=(8, 16, 32), methods=methods,
                       values=values)


class TestSweepResult:
    def test_value(self, sweep):
        assert sweep.value(8, A.GEMM) == 1.0

    def test_winner_per_point(self, sweep):
        assert sweep.winner(8) is A.GEMM
        assert sweep.winner(16) is A.POLYHANKEL
        assert sweep.winner(32) is A.POLYHANKEL

    def test_winner_ignores_missing_methods(self, sweep):
        # Winograd has no x=32 entry; winner() must not KeyError.
        assert sweep.winner(32) is A.POLYHANKEL

    def test_winners_covers_all_x(self, sweep):
        winners = sweep.winners()
        assert set(winners) == {8, 16, 32}
        assert winners[16] is A.POLYHANKEL

    def test_win_count(self, sweep):
        assert sweep.win_count(A.POLYHANKEL) == 2
        assert sweep.win_count(A.GEMM) == 1
        assert sweep.win_count(A.FFT) == 0

    def test_speedup_over_next_best(self, sweep):
        # At 16: winner 2.0, next best 3.0 -> 50% faster than next best.
        assert sweep.speedup_over_next_best(16) == pytest.approx(0.5)
        assert sweep.speedup_over_next_best(32) == pytest.approx(1.0)

    def test_speedup_degenerate_cases(self):
        lone = SweepResult(title="t", x_name="x", x_values=(1,),
                           methods=(A.GEMM,), values={(1, A.GEMM): 2.0})
        assert lone.speedup_over_next_best(1) == 0.0
        zero = SweepResult(title="t", x_name="x", x_values=(1,),
                           methods=(A.GEMM, A.FFT),
                           values={(1, A.GEMM): 0.0, (1, A.FFT): 1.0})
        assert zero.speedup_over_next_best(1) == 0.0

    def test_max_speedup_for(self, sweep):
        # POLYHANKEL's best winning margin is at 32 (6/3 - 1 = 100%).
        assert sweep.max_speedup_for(A.POLYHANKEL) == pytest.approx(1.0)
        # FFT never wins, so its max speedup is zero.
        assert sweep.max_speedup_for(A.FFT) == 0.0

    def test_average_speedup_for(self, sweep):
        # Per point: best-other/mine = 1/2, 3/2, 6/3 -> mean 4/3.
        expected = (0.5 + 1.5 + 2.0) / 3
        assert (sweep.average_speedup_for(A.POLYHANKEL)
                == pytest.approx(expected))

    def test_average_speedup_empty(self):
        empty = SweepResult(title="t", x_name="x", x_values=(),
                            methods=(A.GEMM,), values={})
        assert empty.average_speedup_for(A.GEMM) == 0.0


class TestFormatTable:
    def test_contains_title_headers_and_winner(self, sweep):
        text = format_table(sweep)
        lines = text.splitlines()
        assert lines[0] == "test panel"
        assert "input_size" in lines[1]
        assert "winner" in lines[1]
        for method in sweep.methods:
            assert method.value in lines[1]

    def test_missing_points_render_as_dash(self, sweep):
        row_32 = next(line for line in format_table(sweep).splitlines()
                      if line.startswith("32"))
        assert "-" in row_32.split()

    def test_one_row_per_x_value(self, sweep):
        lines = format_table(sweep).splitlines()
        # title + header + rule + one row per x value
        assert len(lines) == 3 + len(sweep.x_values)

    def test_precision(self, sweep):
        assert "1.0" in format_table(sweep, precision=1)
        assert "1.00000" in format_table(sweep, precision=5)


class TestSummarize:
    def test_default_hero(self, sweep):
        line = summarize(sweep)
        assert "polyhankel wins 2 of 3 input_size points" in line
        assert "100.0%" in line

    def test_custom_hero(self, sweep):
        line = summarize(sweep, hero=A.GEMM)
        assert "gemm wins 1 of 3" in line
