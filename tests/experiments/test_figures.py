"""Unit tests for the figure generators over reduced sweeps.

Each generator is exercised with a scaled-down config (few x points,
two or three methods) so the tests check panel structure, capability
gating and metric wiring without paying for the paper-size sweeps.
"""

import pytest

from repro.baselines.registry import ConvAlgorithm as A
from repro.experiments.config import (
    DEVICES,
    Fig3Config,
    Fig4Config,
    Fig5Config,
    Fig6Config,
    Fig7Config,
)
from repro.experiments.figures import (
    fig3_input_sweep,
    fig4_kernel_sweep,
    fig5_channel_sweep,
    fig6_network_sweep,
    fig7_counters,
)


class TestFig3:
    def test_panel_structure(self):
        config = Fig3Config(input_sizes=(16, 32),
                            methods=(A.GEMM, A.POLYHANKEL))
        result = fig3_input_sweep("3090ti", config)
        assert result.x_values == (16, 32)
        assert result.metric == "time_ms"
        assert "Fig. 3" in result.title
        for size in (16, 32):
            for method in (A.GEMM, A.POLYHANKEL):
                assert result.value(size, method) > 0

    def test_default_config(self):
        # The stated-parameter defaults must produce a full panel.
        result = fig3_input_sweep("a10g",
                                  Fig3Config(input_sizes=(16,),
                                             methods=(A.POLYHANKEL,)))
        assert result.winner(16) is A.POLYHANKEL


class TestFig4:
    def test_winograd_contributes_single_point(self):
        config = Fig4Config(kernel_sizes=(3, 5),
                            methods=(A.GEMM, A.POLYHANKEL))
        result = fig4_kernel_sweep("3090ti", config)
        assert A.WINOGRAD in result.methods
        assert (3, A.WINOGRAD) in result.values
        assert (5, A.WINOGRAD) not in result.values

    def test_no_winograd_point_outside_sweep(self):
        config = Fig4Config(kernel_sizes=(5, 7),
                            methods=(A.GEMM, A.POLYHANKEL))
        result = fig4_kernel_sweep("3090ti", config)
        assert not any(m is A.WINOGRAD for (_, m) in result.values)


class TestFig5:
    def test_all_cudnn_variants_present(self):
        config = Fig5Config(channel_counts=(4,))
        result = fig5_channel_sweep(config)
        present = {m for (_, m) in result.values}
        assert A.IMPLICIT_GEMM in present
        assert A.POLYHANKEL in present
        assert result.x_name == "channels"


class TestFig6:
    def test_accumulated_network_time(self):
        config = Fig6Config(input_sizes=(16,), seeds=(0,), iterations=2,
                            methods=(A.GEMM, A.POLYHANKEL))
        result = fig6_network_sweep("v100", config)
        assert result.value(16, A.GEMM) > 0
        assert result.value(16, A.POLYHANKEL) > 0

    def test_seed_averaging(self):
        one = Fig6Config(input_sizes=(16,), seeds=(0,), iterations=2,
                         methods=(A.POLYHANKEL,))
        two = Fig6Config(input_sizes=(16,), seeds=(0, 1), iterations=2,
                         methods=(A.POLYHANKEL,))
        v1 = fig6_network_sweep("v100", one).value(16, A.POLYHANKEL)
        v2 = fig6_network_sweep("v100", two).value(16, A.POLYHANKEL)
        assert v1 > 0 and v2 > 0  # both averages well-defined


class TestFig7:
    def test_two_counter_panels(self):
        config = Fig7Config(input_sizes=(16, 32),
                            methods=(A.GEMM, A.POLYHANKEL))
        flops, transactions = fig7_counters(config)
        assert flops.metric == "flops"
        assert transactions.metric == "transactions"
        for size in (16, 32):
            assert flops.value(size, A.POLYHANKEL) > 0
            assert transactions.value(size, A.POLYHANKEL) > 0

    def test_flops_grow_with_input(self):
        config = Fig7Config(input_sizes=(16, 64),
                            methods=(A.POLYHANKEL,))
        flops, _ = fig7_counters(config)
        assert (flops.value(64, A.POLYHANKEL)
                > flops.value(16, A.POLYHANKEL))


class TestConfigs:
    def test_devices_registered(self):
        from repro.perfmodel.device import get_device

        for device in DEVICES:
            assert get_device(device).name

    def test_paper_stated_parameters(self):
        assert Fig3Config().kernel == 5
        assert Fig3Config().batch == 128
        assert Fig5Config().input_size == 112
        assert Fig5Config().kernel == 3
        assert Fig5Config().device == "3090ti"
        assert Fig7Config().device == "a10g"

    def test_configs_frozen(self):
        config = Fig3Config()
        with pytest.raises(AttributeError):
            config.kernel = 7
