"""Unit tests for the Table 2/3 complexity expressions and reports."""

import pytest

from repro.baselines.registry import ConvAlgorithm as A
from repro.experiments.tables import (
    SPACE_ROWS,
    TIME_ROWS,
    complexity_report,
    scaling_ratio,
    time_polyhankel,
    time_traditional_fft,
)
from repro.utils.shapes import ConvShape


def shape(size: int, kernel: int = 3) -> ConvShape:
    return ConvShape(ih=size, iw=size, kh=kernel, kw=kernel, n=1, c=1,
                     f=1, padding=kernel // 2)


class TestExpressions:
    @pytest.mark.parametrize("row", TIME_ROWS,
                             ids=[r.method.value for r in TIME_ROWS])
    def test_time_expressions_positive_and_growing(self, row):
        small, large = shape(16), shape(64)
        assert row.symbolic(small) > 0
        assert row.symbolic(large) > row.symbolic(small)

    @pytest.mark.parametrize("row", SPACE_ROWS,
                             ids=[r.method.value for r in SPACE_ROWS])
    def test_space_expressions_positive_and_growing(self, row):
        small, large = shape(16), shape(64)
        assert row.symbolic(small) > 0
        assert row.symbolic(large) > row.symbolic(small)

    def test_polyhankel_beats_traditional_fft_asymptotically(self):
        # The paper's core claim at expression level: PolyHankel's 1-D
        # transform term grows slower than the traditional 2-D FFT's.
        s = shape(128, kernel=5)
        assert time_polyhankel(s) < time_traditional_fft(s)


class TestScalingRatio:
    @pytest.mark.parametrize("row", TIME_ROWS,
                             ids=[r.method.value for r in TIME_ROWS])
    def test_symbolic_tracks_measured_growth(self, row):
        # The counter models implement the table expressions, so growth
        # factors (which cancel dropped constants) agree loosely.
        sym, meas = scaling_ratio(row, shape(16), shape(64))
        assert sym > 1 and meas > 1
        assert 0.2 < sym / meas < 5.0

    def test_ratio_of_same_shape_is_one(self):
        row = TIME_ROWS[0]
        sym, meas = scaling_ratio(row, shape(16), shape(16))
        assert sym == pytest.approx(1.0)
        assert meas == pytest.approx(1.0)


class TestComplexityReport:
    def test_one_line_per_method(self):
        report = complexity_report(TIME_ROWS, [shape(16), shape(32),
                                               shape(64)])
        lines = report.splitlines()
        assert len(lines) == 1 + len(TIME_ROWS)
        for row in TIME_ROWS:
            assert any(line.startswith(row.method.value)
                       for line in lines[1:])

    def test_growth_columns_per_sweep_point(self):
        report = complexity_report(SPACE_ROWS, [shape(16), shape(32),
                                                shape(64)])
        # Two non-base sweep points -> two sym/meas growth cells per row.
        polyhankel_line = next(
            line for line in report.splitlines()
            if line.startswith(A.POLYHANKEL.value))
        assert polyhankel_line.count("/") == 2
