"""Tests for the analytic counter models (Tables 2-3, Fig. 7)."""

import math

import numpy as np
import pytest

from repro.baselines.registry import ConvAlgorithm as A
from repro.perfmodel.counters import (
    MAX_SINGLE_PASS_FFT,
    count,
    count_gemm,
    count_polyhankel,
    fft_passes,
    modeled_algorithms,
    polyhankel_block_size,
)
from repro.utils.shapes import ConvShape

SHAPE = ConvShape(ih=64, iw=64, kh=5, kw=5, n=8, c=3, f=16, padding=2)


class TestBasicInvariants:
    @pytest.mark.parametrize("algo", [a for a in modeled_algorithms()])
    def test_counts_positive(self, algo):
        report = count(algo, SHAPE)
        assert report.flops > 0
        assert report.bytes_moved > 0
        assert report.transactions == report.bytes_moved / 32
        assert report.launches == len(report.stages)

    @pytest.mark.parametrize("algo", [A.GEMM, A.FFT, A.POLYHANKEL])
    def test_counts_scale_with_batch(self, algo):
        small = count(algo, SHAPE.with_(n=2))
        large = count(algo, SHAPE.with_(n=16))
        assert large.flops > 4 * small.flops
        assert large.bytes_moved > 4 * small.bytes_moved

    def test_unmodeled_algorithm_raises(self):
        with pytest.raises(ValueError, match="no counter model"):
            count(A.NAIVE, SHAPE)

    def test_string_accepted(self):
        assert count("gemm", SHAPE).algorithm is A.GEMM


class TestTable2TimeComplexity:
    def test_gemm_flops_exact(self):
        """Table 2 row 1: Kh*Kw*Oh*Ow multiply-accumulates (x2 for FLOPs),
        per (image, filter, channel)."""
        report = count_gemm(SHAPE)
        expected = 2 * SHAPE.n * SHAPE.f * SHAPE.c \
            * SHAPE.kernel_elems * SHAPE.output_elems
        assert report.stages[-1].flops == expected
        assert report.flops == expected  # im2col itself does no FLOPs

    def test_polyhankel_flops_scale_n_log_n(self):
        """Table 2 row 4: (Ih*Iw + Kh*Iw) log(Ih*Iw + Kh*Iw) scaling."""
        small = count_polyhankel(SHAPE)
        big = count_polyhankel(SHAPE.with_(ih=128, iw=128))
        work = lambda s: s.poly_product_len * math.log2(s.poly_product_len)
        ratio_model = big.flops / small.flops
        ratio_formula = work(SHAPE.with_(ih=128, iw=128)) / work(SHAPE)
        # Same growth within the slack of block rounding.
        assert 0.5 * ratio_formula < ratio_model < 2.0 * ratio_formula

    def test_fft_method_has_most_flops(self):
        """Fig. 7a: the FFT method has the highest operation count (its
        power-of-two padded, two-pass transforms dominate at the common
        3x3-kernel shapes)."""
        shape = ConvShape(ih=112, iw=112, kh=3, kw=3, n=32, c=3, f=16,
                          padding=1)
        fft_flops = count(A.FFT, shape).flops
        for algo in (A.GEMM, A.WINOGRAD, A.POLYHANKEL, A.FINEGRAIN_FFT):
            assert fft_flops > count(algo, shape).flops, algo

    def test_polyhankel_lowest_flops(self):
        """Fig. 7a: PolyHankel typically has the lowest operation count."""
        shape = ConvShape(ih=112, iw=112, kh=5, kw=5, n=32, c=3, f=16,
                          padding=2)
        poly = count(A.POLYHANKEL, shape).flops
        for algo in (A.GEMM, A.FFT, A.WINOGRAD, A.FINEGRAIN_FFT):
            assert poly < count(algo, shape).flops, algo


class TestTable3SpaceComplexity:
    def test_gemm_workspace_formula(self):
        """Table 3 row 1: im2col workspace = Kh*Kw*Oh*Ow elements."""
        report = count_gemm(SHAPE)
        expected = SHAPE.n * SHAPE.c * SHAPE.kernel_elems \
            * SHAPE.output_elems * 4
        assert report.workspace_bytes == expected

    def test_gemm_has_most_transactions_at_large_sizes(self):
        """Fig. 7b: im2col+GEMM has the highest memory transactions."""
        shape = ConvShape(ih=160, iw=160, kh=5, kw=5, n=32, c=3, f=16,
                          padding=2)
        gemm_tx = count(A.GEMM, shape).transactions
        for algo in (A.FFT, A.POLYHANKEL, A.FINEGRAIN_FFT):
            assert gemm_tx > count(algo, shape).transactions, algo

    def test_polyhankel_lowest_transactions(self):
        """Fig. 7b: PolyHankel typically has the fewest transactions."""
        shape = ConvShape(ih=112, iw=112, kh=5, kw=5, n=32, c=3, f=16,
                          padding=2)
        poly = count(A.POLYHANKEL, shape).transactions
        for algo in (A.GEMM, A.FFT, A.WINOGRAD):
            assert poly < count(algo, shape).transactions, algo

    def test_implicit_gemm_avoids_workspace(self):
        explicit = count(A.GEMM, SHAPE)
        implicit = count(A.IMPLICIT_GEMM, SHAPE)
        assert implicit.bytes_moved < explicit.bytes_moved
        assert implicit.workspace_bytes == 0

    def test_nonfused_winograd_streams_workspaces(self):
        fused = count(A.WINOGRAD, SHAPE.with_(kh=3, kw=3, padding=1))
        nonfused = count(A.WINOGRAD_NONFUSED,
                         SHAPE.with_(kh=3, kw=3, padding=1))
        assert nonfused.bytes_moved > fused.bytes_moved
        assert np.isclose(nonfused.flops, fused.flops, rtol=0.05)


class TestPolyhankelBlocking:
    def test_block_size_is_power_of_two(self):
        nfft = polyhankel_block_size(SHAPE)
        assert nfft & (nfft - 1) == 0

    def test_block_covers_kernel(self):
        nfft = polyhankel_block_size(SHAPE)
        assert nfft > SHAPE.poly_kernel_len

    def test_block_grows_with_kernel_vector(self):
        """Sec. 4.1: FFT size is determined by the kernel vector size."""
        small = polyhankel_block_size(ConvShape(ih=112, iw=112, kh=3, kw=3))
        large = polyhankel_block_size(ConvShape(ih=112, iw=112, kh=21,
                                                kw=21))
        assert large > small

    def test_cost_steps_up_with_kernel_size(self):
        """Fig. 4: PolyHankel cost grows (stepwise) with kernel size."""
        flops = [count_polyhankel(
            ConvShape(ih=112, iw=112, kh=k, kw=k, n=16, c=3, f=16)).flops
            for k in (4, 10, 16, 22)]
        assert flops[-1] > flops[0]

    def test_fft_passes(self):
        assert fft_passes(MAX_SINGLE_PASS_FFT) == 1
        assert fft_passes(2 * MAX_SINGLE_PASS_FFT) == 2
        assert fft_passes(MAX_SINGLE_PASS_FFT ** 2) == 2
        assert fft_passes(2 * MAX_SINGLE_PASS_FFT ** 2) == 3
