"""Tests for the roofline timing simulator (Figs. 3-6 machinery)."""

import pytest

from repro.baselines.registry import ConvAlgorithm as A
from repro.perfmodel.device import PAPER_DEVICES, RTX_3090TI, V100
from repro.perfmodel.timing import compare, simulate, simulate_ms
from repro.utils.shapes import ConvShape

SHAPE = ConvShape(ih=64, iw=64, kh=5, kw=5, n=16, c=3, f=16, padding=2)


class TestSimulate:
    def test_total_is_sum_of_stages(self):
        report = simulate(A.POLYHANKEL, SHAPE, V100)
        assert report.total_s == pytest.approx(
            sum(st.total_s for st in report.stage_times)
        )

    def test_stage_time_includes_overhead(self):
        report = simulate(A.GEMM, SHAPE, V100)
        for st in report.stage_times:
            assert st.total_s >= V100.launch_overhead_s

    def test_bound_classification(self):
        report = simulate(A.GEMM, SHAPE, V100)
        for st in report.stage_times:
            assert st.bound in ("compute", "memory")
            if st.bound == "compute":
                assert st.compute_s >= st.memory_s

    def test_breakdown_names(self):
        report = simulate(A.GEMM, SHAPE, V100)
        assert set(report.breakdown()) == {"im2col", "gemm"}

    def test_monotone_in_input_size(self):
        for algo in (A.GEMM, A.FFT, A.POLYHANKEL):
            t_small = simulate_ms(algo, SHAPE, V100)
            t_large = simulate_ms(algo, SHAPE.with_(ih=160, iw=160), V100)
            assert t_large > t_small, algo

    def test_devices_differ(self):
        times = {d.name: simulate_ms(A.POLYHANKEL, SHAPE, d)
                 for d in PAPER_DEVICES}
        assert len(set(times.values())) == 3

    def test_accepts_device_name(self):
        assert simulate_ms(A.FFT, SHAPE, "a10g") == pytest.approx(
            simulate_ms(A.FFT, SHAPE, "A10G")
        )


class TestPaperShapes:
    """The headline orderings of Figs. 3-5, asserted at reference points."""

    def test_fig3_gemm_wins_small_inputs(self):
        shape = ConvShape(ih=8, iw=8, kh=5, kw=5, n=128, c=3, f=16,
                          padding=2)
        times = compare(shape, RTX_3090TI,
                        [A.GEMM, A.FFT, A.WINOGRAD, A.POLYHANKEL])
        assert min(times, key=times.get) is A.GEMM

    @pytest.mark.parametrize("device", ["3090ti", "a10g", "v100"])
    def test_fig3_polyhankel_wins_large_inputs(self, device):
        shape = ConvShape(ih=224, iw=224, kh=5, kw=5, n=128, c=3, f=16,
                          padding=2)
        times = compare(shape, device, [A.GEMM, A.FFT, A.WINOGRAD,
                                        A.FINEGRAIN_FFT, A.POLYHANKEL])
        assert min(times, key=times.get) is A.POLYHANKEL

    def test_fig4_polyhankel_wins_small_kernels(self):
        shape = ConvShape(ih=112, iw=112, kh=5, kw=5, n=128, c=3, f=16)
        times = compare(shape, RTX_3090TI,
                        [A.GEMM, A.FFT, A.FINEGRAIN_FFT, A.POLYHANKEL])
        assert min(times, key=times.get) is A.POLYHANKEL

    def test_fig4_polyhankel_loses_at_very_large_kernels(self):
        """Fig. 4's right region: past the crossover an FFT-family method
        overtakes PolyHankel (our calibrated crossover sits near k=25 for
        96x96 inputs vs the paper's ~15; see EXPERIMENTS.md)."""
        shape = ConvShape(ih=96, iw=96, kh=25, kw=25, n=128, c=3, f=16)
        times = compare(shape, RTX_3090TI,
                        [A.GEMM, A.FFT, A.FINEGRAIN_FFT, A.POLYHANKEL])
        winner = min(times, key=times.get)
        assert winner is not A.POLYHANKEL
        assert winner in (A.FFT, A.FINEGRAIN_FFT)

    def test_fig4_gemm_degrades_quadratically(self):
        t = [simulate_ms(A.GEMM,
                         ConvShape(ih=112, iw=112, kh=k, kw=k, n=128,
                                   c=3, f=16), RTX_3090TI)
             for k in (5, 10, 20)]
        assert t[1] > 2.5 * t[0]
        assert t[2] > 2.5 * t[1]

    def test_fig4_fft_insensitive_to_kernel_size(self):
        t = [simulate_ms(A.FFT,
                         ConvShape(ih=112, iw=112, kh=k, kw=k, n=128,
                                   c=3, f=16), RTX_3090TI)
             for k in (5, 10, 15)]
        assert max(t) < 1.3 * min(t)

    def test_fig5_polyhankel_beats_cudnn_at_high_channels(self):
        shape = ConvShape(ih=112, iw=112, kh=3, kw=3, n=128, c=128, f=128,
                          padding=1)
        times = compare(shape, RTX_3090TI, [
            A.GEMM, A.IMPLICIT_GEMM, A.IMPLICIT_PRECOMP_GEMM, A.FFT,
            A.FFT_TILING, A.WINOGRAD, A.WINOGRAD_NONFUSED, A.POLYHANKEL,
        ])
        assert min(times, key=times.get) is A.POLYHANKEL

    def test_v100_speedup_reflects_low_compute_bandwidth_ratio(self):
        """The paper's largest input-sweep speedup is on V100; flop-heavy
        rivals suffer most where peak compute is lowest."""
        shape = ConvShape(ih=160, iw=160, kh=5, kw=5, n=128, c=3, f=16,
                          padding=2)
        gap = {}
        for dev in ("3090ti", "v100"):
            times = compare(shape, dev, [A.FFT, A.POLYHANKEL])
            gap[dev] = times[A.FFT] / times[A.POLYHANKEL]
        assert gap["v100"] > gap["3090ti"]
