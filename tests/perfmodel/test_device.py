"""Tests for GPU device models."""

import pytest

from repro.perfmodel.device import (
    A10G,
    DEVICES,
    PAPER_DEVICES,
    RTX_3090TI,
    V100,
    GpuDevice,
    get_device,
)


def test_paper_devices_present():
    assert {d.name for d in PAPER_DEVICES} == {
        "GeForce 3090Ti", "A10G", "V100"
    }


def test_datasheet_values():
    assert RTX_3090TI.peak_fp32_tflops == 40.0
    assert A10G.mem_bandwidth_gbps == 600.0
    assert V100.peak_fp32_tflops == 15.7


def test_unit_conversions():
    assert V100.peak_flops == 15.7e12
    assert V100.bandwidth == 900e9
    assert V100.launch_overhead_s == 6e-6
    assert V100.saturation_bytes == 9e6
    assert V100.saturation_flops == 250e6


class TestGetDevice:
    @pytest.mark.parametrize("name", ["3090ti", "a10g", "v100", "V100",
                                      "A10G", "GeForce 3090Ti"])
    def test_resolves_names(self, name):
        assert isinstance(get_device(name), GpuDevice)

    def test_passthrough(self):
        assert get_device(V100) is V100

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown device"):
            get_device("h100")


def test_registry_consistent():
    for key, dev in DEVICES.items():
        assert get_device(key) is dev
