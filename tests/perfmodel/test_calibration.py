"""Tests for the efficiency calibration tables."""

import pytest

from repro.baselines.registry import ConvAlgorithm as A
from repro.perfmodel.calibration import (
    ALGORITHM_SCALE,
    STAGE_EFFICIENCY,
    device_scale,
    stage_efficiency,
)
from repro.perfmodel.device import RTX_3090TI, V100


class TestStageEfficiency:
    def test_all_fractions_in_unit_interval(self):
        for eff in STAGE_EFFICIENCY.values():
            assert 0 < eff.compute <= 1
            assert 0 < eff.memory <= 1

    def test_gemm_best_tuned(self):
        gemm = STAGE_EFFICIENCY["gemm"]
        assert all(gemm.compute >= e.compute
                   for k, e in STAGE_EFFICIENCY.items() if k != "gemm")

    def test_polyhankel_fft_stages_use_contiguous_class(self):
        assert stage_efficiency("fft", A.POLYHANKEL) \
            == STAGE_EFFICIENCY["fft1d"]

    def test_fft2d_stages_use_strided_class(self):
        assert stage_efficiency("fft", A.FFT) == STAGE_EFFICIENCY["fft"]

    def test_contiguous_beats_strided_fft(self):
        assert STAGE_EFFICIENCY["fft1d"].compute \
            > STAGE_EFFICIENCY["fft"].compute

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown stage kind"):
            stage_efficiency("quantum", A.FFT)


class TestDeviceScale:
    def test_default_is_algorithm_scale(self):
        assert device_scale(RTX_3090TI, A.GEMM) == ALGORITHM_SCALE[A.GEMM]

    def test_v100_gemm_bonus(self):
        assert device_scale(V100, A.GEMM) > device_scale(RTX_3090TI, A.GEMM)

    def test_finegrain_penalized(self):
        assert ALGORITHM_SCALE[A.FINEGRAIN_FFT] < 1.0

    def test_all_scales_positive(self):
        for scale in ALGORITHM_SCALE.values():
            assert scale > 0
