"""Tests for the serving-metrics view over the unified registry."""

import pytest

from repro.observe.registry import counters, format_serve_stats, serve_stats


@pytest.fixture(autouse=True)
def clean_serve_counters():
    counters.clear("serve.")
    yield
    counters.clear("serve.")


class TestServeStats:
    def test_empty_registry(self):
        stats = serve_stats()
        assert stats["requests"] == 0
        assert stats["batches"] == 0
        assert stats["mean_batch_size"] is None
        assert stats["mean_queue_wait_ms"] is None
        assert stats["coalesce_rate"] is None

    def test_derived_ratios(self):
        counters.add("serve.requests", 8)
        counters.add("serve.batches", 2)
        counters.add("serve.batch_size", 8)
        counters.add("serve.queue_wait_ms", 10.0)
        counters.add("serve.coalesced", 6)
        counters.add("serve.shards", 3)
        stats = serve_stats()
        assert stats["requests"] == 8
        assert stats["batches"] == 2
        assert stats["coalesced"] == 6
        assert stats["shards"] == 3
        assert stats["mean_batch_size"] == pytest.approx(4.0)
        assert stats["mean_queue_wait_ms"] == pytest.approx(5.0)
        assert stats["coalesce_rate"] == pytest.approx(0.75)


class TestFormatServeStats:
    def test_empty_renders_dashes(self):
        text = format_serve_stats()
        assert "requests" in text
        assert "-" in text

    def test_populated_renders_values(self):
        counters.add("serve.requests", 4)
        counters.add("serve.batches", 1)
        counters.add("serve.batch_size", 4)
        counters.add("serve.coalesced", 4)
        text = format_serve_stats()
        assert "4.00" in text       # mean batch size
        assert "100.0%" in text     # coalesce rate

    def test_accepts_precomputed_stats(self):
        counters.add("serve.requests", 2)
        stats = serve_stats()
        assert format_serve_stats(stats) == format_serve_stats(stats)
