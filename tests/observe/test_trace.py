"""Trace spans: nesting, attribution, thread isolation, aggregation."""

import threading

import pytest

from repro.observe import (
    aggregate_spans,
    clear_trace,
    format_trace,
    get_trace,
    span,
    tracing,
    tracing_enabled,
)
from repro.observe.trace import _NOOP


@pytest.fixture(autouse=True)
def _clean_trace():
    clear_trace()
    yield
    clear_trace()


class TestDisabled:
    def test_disabled_by_default(self):
        assert not tracing_enabled()

    def test_span_returns_shared_noop(self):
        first = span("anything", n=1)
        second = span("else")
        assert first is _NOOP and second is _NOOP

    def test_noop_collects_nothing(self):
        with span("invisible", n=64):
            pass
        assert get_trace() == []

    def test_noop_add_attrs_is_silent(self):
        with span("invisible") as s:
            s.add_attrs(bytes=123)
        assert get_trace() == []


class TestNesting:
    def test_depth_and_parent(self):
        with tracing():
            with span("outer", n=8):
                with span("inner", n=4):
                    pass
        outer = next(s for s in get_trace() if s.name == "outer")
        inner = next(s for s in get_trace() if s.name == "inner")
        assert (outer.depth, inner.depth) == (0, 1)
        assert inner.parent is outer

    def test_completion_order_child_first(self):
        with tracing():
            with span("outer"):
                with span("inner"):
                    pass
        assert [s.name for s in get_trace()] == ["inner", "outer"]

    def test_self_time_excludes_children(self):
        with tracing():
            with span("outer"):
                with span("inner"):
                    sum(range(2000))
        outer = next(s for s in get_trace() if s.name == "outer")
        inner = next(s for s in get_trace() if s.name == "inner")
        assert outer.self_s <= outer.duration_s
        assert outer.child_s == pytest.approx(inner.duration_s)

    def test_attrs_recorded_and_amended(self):
        with tracing():
            with span("stage", n=375, kind="rfft") as s:
                s.add_attrs(rows=6)
        record = get_trace()[0]
        assert record.attrs == {"n": 375, "kind": "rfft", "rows": 6}

    def test_state_restored_after_context(self):
        assert not tracing_enabled()
        with tracing():
            assert tracing_enabled()
        assert not tracing_enabled()

    def test_threads_have_independent_stacks(self):
        """A span opened in a worker thread must not nest under the
        caller's open span (each thread keeps its own stack)."""
        def body():
            with span("worker"):
                pass

        with tracing():
            with span("caller"):
                t = threading.Thread(target=body)
                t.start()
                t.join()
        worker_span = next(s for s in get_trace() if s.name == "worker")
        caller_span = next(s for s in get_trace() if s.name == "caller")
        assert worker_span.depth == 0
        assert worker_span.parent is None
        assert worker_span.thread_id != caller_span.thread_id


class TestAggregation:
    def test_aggregate_counts_and_totals(self):
        with tracing():
            for _ in range(3):
                with span("stage.pointwise"):
                    pass
        agg = aggregate_spans()
        assert agg["stage.pointwise"]["count"] == 3
        assert agg["stage.pointwise"]["total_ms"] >= 0.0
        assert (agg["stage.pointwise"]["max_ms"]
                <= agg["stage.pointwise"]["total_ms"])

    def test_format_trace_indents_by_depth(self):
        with tracing():
            with span("outer", n=8):
                with span("inner"):
                    pass
        text = format_trace()
        outer_line = next(ln for ln in text.splitlines() if "outer" in ln)
        inner_line = next(ln for ln in text.splitlines() if "inner" in ln)
        assert not outer_line.startswith(" ")
        assert inner_line.startswith("  ")
        assert "n=8" in outer_line
