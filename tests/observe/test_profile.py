"""Measured-vs-model profile: stage joins, drift math, serialization."""

import json

import pytest

from repro.observe.profile import (
    STAGE_MAP,
    case_for_shape,
    format_profile,
    profile_case,
    resolve_preset,
    write_profile,
)


@pytest.fixture(scope="module")
def polyhankel_report():
    case = case_for_shape("polyhankel", size=16, kernel=3, batch=2,
                          channels=3, filters=4, padding=1)
    return profile_case(case, repeats=3, warmup=1)


@pytest.fixture(scope="module")
def gemm_report():
    case = case_for_shape("gemm", size=16, kernel=3, batch=2,
                          channels=3, filters=4, padding=1)
    return profile_case(case, repeats=3, warmup=1)


class TestPolyhankelProfile:
    def test_stage_names_match_cost_model(self, polyhankel_report):
        stages = [row["stage"] for row in polyhankel_report["stages"]]
        assert stages == [name for name, _, _ in STAGE_MAP["polyhankel"]]

    def test_every_stage_measured(self, polyhankel_report):
        for row in polyhankel_report["stages"]:
            assert row["measured_ms"] > 0.0, row["stage"]
            assert row["predicted_ms"] > 0.0, row["stage"]

    def test_shares_normalize_over_steady_state(self, polyhankel_report):
        live = [r for r in polyhankel_report["stages"]
                if not r["amortized"]]
        assert sum(r["measured_share"] for r in live) == pytest.approx(1.0)
        assert sum(r["predicted_share"] for r in live) == pytest.approx(1.0)

    def test_amortized_stage_excluded_from_drift(self, polyhankel_report):
        amortized = [r for r in polyhankel_report["stages"]
                     if r["amortized"]]
        assert [r["stage"] for r in amortized] == ["kernel_ffts"]
        assert amortized[0]["drift"] is None
        assert amortized[0]["flagged"] is False

    def test_drift_consistent_with_threshold(self, polyhankel_report):
        t = polyhankel_report["drift_threshold"]
        for row in polyhankel_report["stages"]:
            if row["drift"] is None:
                continue
            assert row["flagged"] == (not 1.0 / t <= row["drift"] <= t)

    def test_tight_threshold_flags_stages(self):
        case = case_for_shape("polyhankel", size=16, kernel=3, batch=2,
                              channels=3, filters=4, padding=1)
        report = profile_case(case, repeats=2, warmup=1,
                              drift_threshold=1.0 + 1e-9)
        assert any(row["flagged"] for row in report["stages"])

    def test_fft_invocations_reported(self, polyhankel_report):
        calls = polyhankel_report["fft_calls"]
        # repeats steady-state rffts plus the one-shot weight transform.
        repeats = polyhankel_report["repeats"]
        assert calls["rfft"]["calls"] == repeats + 1
        assert calls["irfft"]["calls"] == repeats

    def test_format_contains_table_and_verdict(self, polyhankel_report):
        text = format_profile(polyhankel_report)
        assert "input_block_ffts" in text
        assert "drift" in text
        assert "fft invocations" in text


class TestGemmProfile:
    def test_stage_names(self, gemm_report):
        assert [r["stage"] for r in gemm_report["stages"]] == \
            ["im2col", "gemm"]

    def test_no_fft_calls_on_gemm_path(self, gemm_report):
        assert gemm_report["fft_calls"] == {}

    def test_shares_normalize(self, gemm_report):
        assert sum(r["measured_share"]
                   for r in gemm_report["stages"]) == pytest.approx(1.0)


class TestPresetsAndSerialization:
    def test_resolve_known_preset(self):
        case = resolve_preset("conv16_sum_numpy")
        assert case.name == "conv16_sum_numpy"
        assert case.algorithm == "polyhankel"
        assert case.size == 16

    def test_resolve_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown preset"):
            resolve_preset("no_such_case")

    def test_unknown_algorithm_rejected(self):
        case = case_for_shape("polyhankel", size=12)
        case.algorithm = "winograd"
        with pytest.raises(ValueError, match="profile supports"):
            profile_case(case, repeats=1, warmup=1)

    def test_write_profile_drops_spans(self, tmp_path, polyhankel_report):
        path = write_profile(polyhankel_report, str(tmp_path / "p.json"))
        data = json.loads(open(path).read())
        assert "spans" not in data
        assert data["algorithm"] == "polyhankel"
        assert [r["stage"] for r in data["stages"]] == \
            [r["stage"] for r in polyhankel_report["stages"]]
