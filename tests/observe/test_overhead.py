"""Disabled tracing must be effectively free on the cached steady state.

The engine's steady-state call crosses roughly a dozen ``span()`` sites
(plan lookup, pad, forward FFT, pointwise, inverse FFT, gather, plus the
backend wrappers).  Rather than diffing two timing runs of the same call —
which measures machine noise more than instrument cost on a sub-millisecond
call — this pins the *per-site* disabled cost directly and checks that a
dozen sites amount to under 2% of the measured steady-state call.
"""

import time

import pytest

from repro.core import multichannel as mc
from repro.observe import span, tracing_enabled
from repro.utils.random import random_problem
from repro.utils.shapes import ConvShape

#: Upper bound on span() call sites crossed by one cached engine call.
SITES_PER_CALL = 12
MAX_OVERHEAD = 0.02


def _best_of(fn, repeats: int, number: int) -> float:
    """Best per-iteration seconds over *repeats* batches of *number*."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(number):
            fn()
        best = min(best, (time.perf_counter() - start) / number)
    return best


def test_disabled_span_overhead_under_two_percent():
    assert not tracing_enabled()

    def one_site():
        with span("hot", n=512, rows=8):
            pass

    site_s = _best_of(one_site, repeats=5, number=10_000)

    # A representative (not toy) steady-state call: the bench suite's
    # smallest realistic shape.  Toy 16x16 single-image calls finish in
    # ~50 us where a dozen ~300 ns sites would read as several percent;
    # the instrument cost is fixed per call, not proportional.
    shape = ConvShape(ih=32, iw=32, kh=3, kw=3, n=4, c=8, f=16, padding=1)
    x, w = random_problem(shape)
    plan = mc.get_plan(shape, strategy="sum", backend="numpy")
    w_hat = plan.transform_weight(w)
    plan.execute(x, w_hat)  # warm
    call_s = _best_of(lambda: plan.execute(x, w_hat), repeats=5, number=20)

    overhead = SITES_PER_CALL * site_s / call_s
    assert overhead < MAX_OVERHEAD, (
        f"disabled span() costs {site_s * 1e9:.0f} ns/site; "
        f"{SITES_PER_CALL} sites = {100 * overhead:.2f}% of a "
        f"{call_s * 1e3:.3f} ms steady-state call"
    )


def test_disabled_span_allocates_no_record():
    first = span("a", n=1)
    second = span("b", rows=2)
    assert first is second, "disabled span() must return the shared no-op"


@pytest.mark.parametrize("attrs", [{}, {"n": 512}, {"n": 512, "rows": 8}])
def test_disabled_span_is_context_manager(attrs):
    with span("x", **attrs) as s:
        s.add_attrs(bytes=1)
