"""Counter registry: tag keys, cache events, FFT invocation totals."""

import pytest

from repro.core import multichannel as mc
from repro.observe import clear_trace, tracing
from repro.observe.registry import (
    CounterRegistry,
    cache_hits_misses,
    cache_stats,
    counters,
    fft_call_totals,
    format_cache_stats,
    record_cache_event,
    reset_cache_stats,
)
from repro.utils.random import random_problem
from repro.utils.shapes import ConvShape


class TestCounterRegistry:
    def test_add_and_get_exact(self):
        reg = CounterRegistry()
        reg.add("fft.calls", 1, kind="rfft", n=128)
        reg.add("fft.calls", 1, kind="rfft", n=128)
        reg.add("fft.calls", 1, kind="rfft", n=256)
        assert reg.get("fft.calls", kind="rfft", n=128) == 2
        assert reg.get("fft.calls", kind="rfft", n=512) == 0

    def test_total_matches_tag_subset(self):
        reg = CounterRegistry()
        reg.add("fft.calls", 1, kind="rfft", n=128)
        reg.add("fft.calls", 1, kind="rfft", n=256)
        reg.add("fft.calls", 1, kind="irfft", n=128)
        assert reg.total("fft.calls") == 3
        assert reg.total("fft.calls", kind="rfft") == 2
        assert reg.total("fft.calls", n=128) == 2

    def test_tag_order_is_irrelevant(self):
        reg = CounterRegistry()
        reg.add("m", 1, a=1, b=2)
        reg.add("m", 1, b=2, a=1)
        assert reg.get("m", a=1, b=2) == 2

    def test_snapshot_prefix_and_clear_prefix(self):
        reg = CounterRegistry()
        reg.add("fft.calls", 1, kind="rfft")
        reg.add("bytes.moved", 64.0, stage="pad")
        assert [r.name for r in reg.snapshot("fft.")] == ["fft.calls"]
        reg.clear("fft.")
        assert reg.snapshot("fft.") == []
        assert reg.get("bytes.moved", stage="pad") == 64.0


class TestCacheEvents:
    def test_record_and_read_back(self):
        reset_cache_stats("unit_test")
        record_cache_event("unit_test", hit=True)
        record_cache_event("unit_test", hit=True)
        record_cache_event("unit_test", hit=False)
        assert cache_hits_misses("unit_test") == (2, 1)
        reset_cache_stats("unit_test")
        assert cache_hits_misses("unit_test") == (0, 0)

    def test_cache_stats_lists_every_surface(self):
        rows = {row["cache"]: row for row in cache_stats()}
        assert set(rows) == {"conv_plan", "spectrum", "fft_plan",
                             "layer_spectrum"}
        for row in rows.values():
            total = row["hits"] + row["misses"]
            if total:
                assert row["hit_rate"] == pytest.approx(row["hits"] / total)
            else:
                assert row["hit_rate"] is None

    def test_plan_cache_feeds_the_registry(self):
        mc.clear_plan_cache()
        shape = ConvShape(ih=10, iw=10, kh=3, kw=3, n=1, c=1, f=1)
        mc.get_plan(shape)
        mc.get_plan(shape)
        hits, misses = cache_hits_misses("conv_plan")
        assert misses >= 1 and hits >= 1

    def test_format_cache_stats_is_one_table(self):
        text = format_cache_stats()
        for label in ("conv plans", "weight spectra", "fft plans",
                      "layer spectra"):
            assert label in text


class TestFftCallTotals:
    """Counter totals must equal the analytically known invocation count."""

    @pytest.fixture
    def plan_and_data(self):
        shape = ConvShape(ih=16, iw=16, kh=3, kw=3, n=2, c=3, f=4,
                          padding=1)
        x, w = random_problem(shape)
        plan = mc.get_plan(shape, strategy="sum", backend="numpy")
        w_hat = plan.transform_weight(w)
        plan.execute(x, w_hat)  # warm every lazy path
        return plan, x, w, w_hat

    def test_steady_state_call_counts(self, plan_and_data):
        plan, x, w, w_hat = plan_and_data
        counters.clear("fft.")
        with tracing():
            plan.execute(x, w_hat)
        clear_trace()
        totals = fft_call_totals()
        # Sum strategy: one batched rfft over the n*c input rows and one
        # batched irfft over the n*f output rows, both at the plan's nfft.
        assert totals["rfft"]["calls"] == 1
        assert totals["irfft"]["calls"] == 1
        assert totals["rfft"]["rows"] == 2 * 3
        assert totals["irfft"]["rows"] == 2 * 4
        assert totals["rfft"]["by_n"] == {plan.nfft: 1}
        assert totals["irfft"]["by_n"] == {plan.nfft: 1}

    def test_weight_transform_counts(self, plan_and_data):
        plan, x, w, w_hat = plan_and_data
        counters.clear("fft.")
        with tracing():
            plan.transform_weight(w)
        clear_trace()
        totals = fft_call_totals()
        # One batched rfft over the c*f kernel rows; no inverse transform.
        assert totals["rfft"]["calls"] == 1
        assert totals["rfft"]["rows"] == 3 * 4
        assert "irfft" not in totals

    def test_counters_off_without_tracing(self, plan_and_data):
        plan, x, w, w_hat = plan_and_data
        counters.clear("fft.")
        plan.execute(x, w_hat)
        assert fft_call_totals() == {}

    def test_bytes_moved_recorded_under_tracing(self, plan_and_data):
        plan, x, w, w_hat = plan_and_data
        counters.clear("bytes.")
        with tracing():
            plan.execute(x, w_hat)
        clear_trace()
        assert counters.total("bytes.moved") > 0
