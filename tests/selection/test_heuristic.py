"""Tests for the algorithm-selection heuristics."""

import pytest

from repro.baselines.registry import ConvAlgorithm as A
from repro.selection.heuristic import (
    CANDIDATES,
    select_algorithm,
    select_algorithm_rules,
)
from repro.utils.shapes import ConvShape

GEMM_FAMILY = {A.GEMM, A.IMPLICIT_GEMM, A.IMPLICIT_PRECOMP_GEMM}
FFT_FAMILY = {A.FFT, A.FFT_TILING}


class TestModelDriven:
    def test_ranking_sorted(self):
        shape = ConvShape(ih=64, iw=64, kh=3, kw=3, n=16, c=3, f=8,
                          padding=1)
        result = select_algorithm(shape, "3090ti")
        times = [t for _, t in result.ranking]
        assert times == sorted(times)
        assert result.predicted_ms == times[0]

    def test_small_inputs_pick_gemm_family(self):
        shape = ConvShape(ih=12, iw=12, kh=3, kw=3, n=32, c=3, f=8,
                          padding=1)
        assert select_algorithm(shape, "3090ti").algorithm in GEMM_FAMILY

    def test_large_inputs_small_kernels_pick_polyhankel(self):
        shape = ConvShape(ih=224, iw=224, kh=5, kw=5, n=128, c=3, f=16,
                          padding=2)
        assert select_algorithm(shape, "3090ti").algorithm is A.POLYHANKEL

    def test_very_large_kernels_pick_fft_family(self):
        shape = ConvShape(ih=112, iw=112, kh=20, kw=20, n=128, c=3, f=16)
        assert select_algorithm(shape, "3090ti").algorithm in FFT_FAMILY

    def test_incapable_algorithms_excluded(self):
        shape = ConvShape(ih=33, iw=33, kh=3, kw=3, n=16, c=3, f=8,
                          stride=2)
        result = select_algorithm(shape, "v100")
        ranked = {algo for algo, _ in result.ranking}
        assert A.WINOGRAD not in ranked

    def test_custom_candidates(self):
        shape = ConvShape(ih=16, iw=16, kh=3, kw=3)
        result = select_algorithm(shape, "v100", candidates=(A.FFT,))
        assert result.algorithm is A.FFT

    def test_no_capable_algorithm(self):
        shape = ConvShape(ih=33, iw=33, kh=3, kw=3, stride=2)
        with pytest.raises(ValueError, match="no capable algorithm"):
            select_algorithm(shape, "v100", candidates=(A.WINOGRAD,))

    def test_candidates_exclude_duplicate_polyhankel_model(self):
        assert A.POLYHANKEL in CANDIDATES
        assert A.POLYHANKEL_OS not in CANDIDATES


class TestRuleBased:
    def test_small_input(self):
        shape = ConvShape(ih=16, iw=16, kh=3, kw=3)
        assert select_algorithm_rules(shape) in GEMM_FAMILY

    def test_large_kernel(self):
        shape = ConvShape(ih=112, iw=112, kh=17, kw=17)
        assert select_algorithm_rules(shape) in FFT_FAMILY

    def test_sweet_spot_is_polyhankel(self):
        shape = ConvShape(ih=112, iw=112, kh=5, kw=5, padding=2)
        assert select_algorithm_rules(shape) is A.POLYHANKEL

    def test_rules_agree_with_model_in_core_regions(self):
        """The distilled rules match the model-driven oracle on the paper's
        three characteristic regions."""
        regions = [
            ConvShape(ih=12, iw=12, kh=3, kw=3, n=64, c=3, f=16, padding=1),
            ConvShape(ih=224, iw=224, kh=5, kw=5, n=128, c=3, f=16,
                      padding=2),
            ConvShape(ih=112, iw=112, kh=20, kw=20, n=128, c=3, f=16),
        ]
        for shape in regions:
            rule = select_algorithm_rules(shape)
            model = select_algorithm(shape, "3090ti").algorithm
            same_family = (
                (rule in GEMM_FAMILY and model in GEMM_FAMILY)
                or (rule in FFT_FAMILY and model in FFT_FAMILY)
                or rule is model
            )
            assert same_family, (shape, rule, model)


class TestWorkspaceLimit:
    """cuDNN-style memoryLimitInBytes filtering."""

    SHAPE = ConvShape(ih=64, iw=64, kh=5, kw=5, n=32, c=3, f=16, padding=2)

    def test_unlimited_keeps_all(self):
        full = select_algorithm(self.SHAPE, "3090ti")
        limited = select_algorithm(self.SHAPE, "3090ti",
                                   workspace_limit_bytes=None)
        assert {a for a, _ in full.ranking} == {a for a, _ in
                                                limited.ranking}

    def test_zero_limit_excludes_workspace_users(self):
        result = select_algorithm(self.SHAPE, "3090ti",
                                  workspace_limit_bytes=0)
        ranked = {a for a, _ in result.ranking}
        assert A.GEMM not in ranked            # im2col workspace
        assert A.FFT not in ranked             # complex planes
        assert A.IMPLICIT_GEMM in ranked       # workspace-free

    def test_limit_changes_winner_when_binding(self):
        unlimited = select_algorithm(self.SHAPE, "3090ti")
        constrained = select_algorithm(self.SHAPE, "3090ti",
                                       workspace_limit_bytes=0)
        assert constrained.algorithm in {a for a, _ in constrained.ranking}
        assert constrained.predicted_ms >= unlimited.predicted_ms

    def test_impossible_limit_raises(self):
        with pytest.raises(ValueError, match="workspace limit"):
            select_algorithm(self.SHAPE, "3090ti",
                             candidates=(A.GEMM,),
                             workspace_limit_bytes=1)
