"""Tests for the algorithm-selection heuristics."""

import pytest

from repro.baselines.registry import ConvAlgorithm as A
from repro.selection.heuristic import (
    CANDIDATES,
    select_algorithm,
    select_algorithm_rules,
)
from repro.utils.shapes import ConvShape

GEMM_FAMILY = {A.GEMM, A.IMPLICIT_GEMM, A.IMPLICIT_PRECOMP_GEMM}
FFT_FAMILY = {A.FFT, A.FFT_TILING}


class TestModelDriven:
    def test_ranking_sorted(self):
        shape = ConvShape(ih=64, iw=64, kh=3, kw=3, n=16, c=3, f=8,
                          padding=1)
        result = select_algorithm(shape, "3090ti")
        times = [t for _, t in result.ranking]
        assert times == sorted(times)
        assert result.predicted_ms == times[0]

    def test_small_inputs_pick_gemm_family(self):
        shape = ConvShape(ih=12, iw=12, kh=3, kw=3, n=32, c=3, f=8,
                          padding=1)
        assert select_algorithm(shape, "3090ti").algorithm in GEMM_FAMILY

    def test_large_inputs_small_kernels_pick_polyhankel(self):
        shape = ConvShape(ih=224, iw=224, kh=5, kw=5, n=128, c=3, f=16,
                          padding=2)
        assert select_algorithm(shape, "3090ti").algorithm is A.POLYHANKEL

    def test_very_large_kernels_pick_fft_family(self):
        shape = ConvShape(ih=112, iw=112, kh=20, kw=20, n=128, c=3, f=16)
        assert select_algorithm(shape, "3090ti").algorithm in FFT_FAMILY

    def test_incapable_algorithms_excluded(self):
        shape = ConvShape(ih=33, iw=33, kh=3, kw=3, n=16, c=3, f=8,
                          stride=2)
        result = select_algorithm(shape, "v100")
        ranked = {algo for algo, _ in result.ranking}
        assert A.WINOGRAD not in ranked

    def test_custom_candidates(self):
        shape = ConvShape(ih=16, iw=16, kh=3, kw=3)
        result = select_algorithm(shape, "v100", candidates=(A.FFT,))
        assert result.algorithm is A.FFT

    def test_no_capable_algorithm(self):
        shape = ConvShape(ih=33, iw=33, kh=3, kw=3, stride=2)
        with pytest.raises(ValueError, match="no capable algorithm"):
            select_algorithm(shape, "v100", candidates=(A.WINOGRAD,))

    def test_candidates_include_both_polyhankel_variants(self):
        # The variants share one cost model (their times tie exactly);
        # both must appear in the ranking, resolved by TIE_BREAK, so
        # consumers of the full ranking see the overlap-save path too.
        assert A.POLYHANKEL in CANDIDATES
        assert A.POLYHANKEL_OS in CANDIDATES


class TestRuleBased:
    def test_small_input(self):
        shape = ConvShape(ih=16, iw=16, kh=3, kw=3)
        assert select_algorithm_rules(shape) in GEMM_FAMILY

    def test_large_kernel(self):
        shape = ConvShape(ih=112, iw=112, kh=17, kw=17)
        assert select_algorithm_rules(shape) in FFT_FAMILY

    def test_sweet_spot_is_polyhankel(self):
        shape = ConvShape(ih=112, iw=112, kh=5, kw=5, padding=2)
        assert select_algorithm_rules(shape) is A.POLYHANKEL

    def test_rules_agree_with_model_in_core_regions(self):
        """The distilled rules match the model-driven oracle on the paper's
        three characteristic regions."""
        regions = [
            ConvShape(ih=12, iw=12, kh=3, kw=3, n=64, c=3, f=16, padding=1),
            ConvShape(ih=224, iw=224, kh=5, kw=5, n=128, c=3, f=16,
                      padding=2),
            ConvShape(ih=112, iw=112, kh=20, kw=20, n=128, c=3, f=16),
        ]
        for shape in regions:
            rule = select_algorithm_rules(shape)
            model = select_algorithm(shape, "3090ti").algorithm
            same_family = (
                (rule in GEMM_FAMILY and model in GEMM_FAMILY)
                or (rule in FFT_FAMILY and model in FFT_FAMILY)
                or rule is model
            )
            assert same_family, (shape, rule, model)


class TestWorkspaceLimit:
    """cuDNN-style memoryLimitInBytes filtering."""

    SHAPE = ConvShape(ih=64, iw=64, kh=5, kw=5, n=32, c=3, f=16, padding=2)

    def test_unlimited_keeps_all(self):
        full = select_algorithm(self.SHAPE, "3090ti")
        limited = select_algorithm(self.SHAPE, "3090ti",
                                   workspace_limit_bytes=None)
        assert {a for a, _ in full.ranking} == {a for a, _ in
                                                limited.ranking}

    def test_zero_limit_excludes_workspace_users(self):
        result = select_algorithm(self.SHAPE, "3090ti",
                                  workspace_limit_bytes=0)
        ranked = {a for a, _ in result.ranking}
        assert A.GEMM not in ranked            # im2col workspace
        assert A.FFT not in ranked             # complex planes
        assert A.IMPLICIT_GEMM in ranked       # workspace-free

    def test_limit_changes_winner_when_binding(self):
        unlimited = select_algorithm(self.SHAPE, "3090ti")
        constrained = select_algorithm(self.SHAPE, "3090ti",
                                       workspace_limit_bytes=0)
        assert constrained.algorithm in {a for a, _ in constrained.ranking}
        assert constrained.predicted_ms >= unlimited.predicted_ms

    def test_impossible_limit_raises(self):
        with pytest.raises(ValueError, match="workspace limit"):
            select_algorithm(self.SHAPE, "3090ti",
                             candidates=(A.GEMM,),
                             workspace_limit_bytes=1)


class TestDeterministicTieBreak:
    """The PolyHankel pair shares one cost model: ties must resolve
    explicitly, never by which dict-iteration order dropped a variant."""

    SHAPE = ConvShape(ih=64, iw=64, kh=5, kw=5, n=8, c=3, f=8, padding=2)

    def test_both_variants_ranked(self):
        ranked = [a for a, _ in
                  select_algorithm(self.SHAPE, "3090ti").ranking]
        assert A.POLYHANKEL in ranked
        assert A.POLYHANKEL_OS in ranked

    def test_tied_costs_follow_tie_break_order(self):
        result = select_algorithm(self.SHAPE, "3090ti")
        times = dict(result.ranking)
        assert times[A.POLYHANKEL] == times[A.POLYHANKEL_OS]
        ranked = [a for a, _ in result.ranking]
        assert ranked.index(A.POLYHANKEL) < ranked.index(A.POLYHANKEL_OS)

    def test_ranking_is_total_and_repeatable(self):
        first = select_algorithm(self.SHAPE, "3090ti").ranking
        for _ in range(3):
            assert select_algorithm(self.SHAPE, "3090ti").ranking == first

    def test_tie_break_covers_every_algorithm(self):
        from repro.selection.heuristic import TIE_BREAK

        assert set(TIE_BREAK) == set(A)
        # The guard's static descent keeps its relative order up front.
        from repro.baselines.registry import FALLBACK_ORDER

        assert TIE_BREAK[:len(FALLBACK_ORDER)] == tuple(FALLBACK_ORDER)


class TestRankedFallbackOrder:
    def test_chain_respects_selector_ranking(self):
        from repro.baselines.registry import fallback_chain
        from repro.selection.heuristic import ranked_fallback_order

        # GEMM territory: the ranked chain must try GEMM before the
        # static favorite when the primary degrades.
        shape = ConvShape(ih=8, iw=8, kh=3, kw=3, n=1, c=4, f=8, padding=1)
        order = ranked_fallback_order(shape)
        assert order[0] is A.GEMM
        chain = fallback_chain(shape, primary="polyhankel", order="ranked")
        assert chain[0] is A.POLYHANKEL  # requested primary stays first
        assert chain[1] is A.GEMM        # then the modeled-fastest

    def test_unmodeled_tail_preserved(self):
        from repro.selection.heuristic import ranked_fallback_order

        shape = ConvShape(ih=16, iw=16, kh=3, kw=3)
        order = ranked_fallback_order(shape)
        assert set(order) == set(
            __import__("repro.baselines.registry",
                       fromlist=["FALLBACK_ORDER"]).FALLBACK_ORDER)
        assert order[-1] is A.NAIVE

    def test_unknown_order_string_rejected(self):
        from repro.baselines.registry import fallback_chain

        shape = ConvShape(ih=16, iw=16, kh=3, kw=3)
        with pytest.raises(ValueError, match="unknown chain order"):
            fallback_chain(shape, order="fastest")

    def test_guard_config_ranked_chain_end_to_end(self):
        import numpy as np

        from repro.baselines.registry import convolve
        from repro.guard.chain import guarded_conv2d
        from repro.guard.state import GuardConfig

        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 3, 12, 12))
        w = rng.standard_normal((4, 3, 3, 3))
        out = guarded_conv2d(x, w, padding=1,
                             config=GuardConfig(chain="ranked"))
        expected = convolve(x, w, algorithm="naive", padding=1)
        assert np.allclose(out, expected)
