"""Unit tests for the online algorithm-selection bandit.

Covers the prior/posterior arithmetic, the deterministic exploration
budget, convergence, arm poisoning, and the cluster replica-row merge —
the pieces the CI ``selection-drill`` exercises end to end.
"""

import pytest

from repro.observe.registry import counters
from repro.selection.bandit import (
    UNMODELED_PENALTY,
    ArmState,
    BanditConfig,
    KeyState,
    SelectionBandit,
    key_digest,
)
from repro.utils.shapes import ConvShape

SHAPE = ConvShape(ih=16, iw=16, kh=3, kw=3, n=2, c=3, f=4, padding=1)


def digest_for(shape: ConvShape = SHAPE) -> str:
    return key_digest(op="conv2d", input_chw=(shape.c, shape.ih, shape.iw),
                      weight_shape=(shape.f, shape.c, shape.kh, shape.kw),
                      dtype="float64", padding=shape.padding,
                      stride=shape.stride, dilation=shape.dilation,
                      groups=shape.groups, strategy="sum", backend="numpy")


@pytest.fixture(autouse=True)
def clean_selection_counters():
    counters.clear("selection.")
    yield
    counters.clear("selection.")


class TestPosteriorMath:
    def test_unobserved_arm_returns_scaled_prior(self):
        arm = ArmState("gemm", prior_ms=2.0)
        assert arm.posterior_ms(scale=3.0, prior_weight=2.0,
                                fallback_prior=99.0) == pytest.approx(6.0)

    def test_blend_formula(self):
        arm = ArmState("gemm", prior_ms=2.0, obs=4, ms_total=12.0)
        # (w * prior * scale + ms_total) / (w + obs)
        expected = (2.0 * 2.0 * 1.5 + 12.0) / (2.0 + 4)
        assert arm.posterior_ms(1.5, 2.0, 99.0) == pytest.approx(expected)

    def test_unmodeled_arm_uses_fallback_prior(self):
        arm = ArmState("naive", prior_ms=None)
        assert arm.posterior_ms(1.0, 2.0, fallback_prior=40.0) \
            == pytest.approx(40.0)

    def test_measurement_dominates_prior_as_obs_grow(self):
        arm = ArmState("gemm", prior_ms=10.0, obs=1000, ms_total=1000.0)
        assert arm.posterior_ms(1.0, 2.0, 99.0) == pytest.approx(1.0,
                                                                 rel=0.05)

    def test_scale_is_measured_over_modeled(self):
        state = KeyState("k")
        state.arms["a"] = ArmState("a", prior_ms=1.0, obs=2, ms_total=6.0)
        state.arms["b"] = ArmState("b", prior_ms=2.0, obs=1, ms_total=4.0)
        # measured 10 over modeled 1*2 + 2*1 = 4 -> 2.5
        assert state.scale() == pytest.approx(2.5)

    def test_scale_defaults_to_one_without_observations(self):
        state = KeyState("k")
        state.arms["a"] = ArmState("a", prior_ms=1.0)
        assert state.scale() == 1.0

    def test_fallback_prior_penalizes_worst_modeled(self):
        state = KeyState("k")
        state.arms["a"] = ArmState("a", prior_ms=3.0)
        state.arms["b"] = ArmState("b", prior_ms=7.0)
        assert state.fallback_prior() \
            == pytest.approx(7.0 * UNMODELED_PENALTY)


class TestKeyDigest:
    def test_padding_spellings_canonicalize(self):
        a = key_digest(op="conv2d", input_chw=(3, 8, 8),
                       weight_shape=(4, 3, 3, 3), dtype="float64",
                       padding=1, stride=1, dilation=1, groups=1,
                       strategy="sum", backend="numpy")
        b = key_digest(op="conv2d", input_chw=(3, 8, 8),
                       weight_shape=(4, 3, 3, 3), dtype="float64",
                       padding=(1, 1), stride=(1, 1), dilation=1,
                       groups=1, strategy="sum", backend="numpy")
        assert a == b

    def test_distinct_geometry_distinct_digest(self):
        a = digest_for(SHAPE)
        b = digest_for(SHAPE.with_(ih=32, iw=32))
        assert a != b

    def test_batch_size_excluded(self):
        assert digest_for(SHAPE) == digest_for(SHAPE.with_(n=64))


class TestExplorationBudget:
    def test_explored_tracks_counting_rule(self):
        bandit = SelectionBandit(BanditConfig(explore_fraction=0.25,
                                              min_obs=10 ** 9))
        digest = digest_for()
        for n in range(1, 41):
            decision = bandit.decide(digest, SHAPE, "polyhankel")
            bandit.record(digest, decision.algorithm, 1.0)
            state = bandit._keys[digest]
            # min_obs is unreachable, so arms never leave the pending
            # set and the budget is the only brake.
            assert state.explored == int(0.25 * n)

    def test_zero_fraction_never_explores(self):
        bandit = SelectionBandit(BanditConfig(explore_fraction=0.0))
        digest = digest_for()
        for _ in range(50):
            assert bandit.decide(digest, SHAPE, "polyhankel").shadow is None

    def test_shadow_is_least_observed_pending_arm(self):
        bandit = SelectionBandit(BanditConfig(explore_fraction=1.0,
                                              min_obs=3))
        digest = digest_for()
        seen = []
        for _ in range(30):
            decision = bandit.decide(digest, SHAPE, "polyhankel")
            bandit.record(digest, decision.algorithm, 1.0)
            if decision.shadow is not None:
                seen.append(decision.shadow)
                bandit.record(digest, decision.shadow, 1.0, shadow=True)
        # Every non-primary arm reaches min_obs, then exploration stops.
        state = bandit._keys[digest]
        for name in state.order:
            if name != bandit.best(digest):
                assert state.arms[name].obs >= 3
        assert seen, "exploration never fired"


class TestConvergence:
    def test_converges_to_measured_fastest(self):
        # min_obs high enough that the unmodeled arm's penalty prior
        # (worst modeled x UNMODELED_PENALTY as pseudo-observations) is
        # outvoted by its own measurements — the arm must *earn* the win.
        bandit = SelectionBandit(BanditConfig(explore_fraction=1.0,
                                              min_obs=60))
        digest = digest_for()
        # Feed measurements that contradict the priors: naive is the
        # measured-fastest arm.
        speeds = {"polyhankel": 5.0, "polyhankel_os": 5.0,
                  "gemm": 3.0, "naive": 0.5}
        for _ in range(400):
            decision = bandit.decide(digest, SHAPE, "polyhankel")
            bandit.record(digest, decision.algorithm,
                          speeds[decision.algorithm])
            if decision.shadow is not None:
                bandit.record(digest, decision.shadow,
                              speeds[decision.shadow], shadow=True)
        assert bandit.converged(digest)
        assert bandit.best(digest) == "naive"

    def test_shadow_mode_serves_requested(self):
        bandit = SelectionBandit(BanditConfig(apply=False,
                                              explore_fraction=1.0))
        digest = digest_for()
        for _ in range(10):
            decision = bandit.decide(digest, SHAPE, "gemm")
            assert decision.algorithm == "gemm"
            bandit.record(digest, decision.algorithm, 1.0)

    def test_decision_tie_breaks_on_arm_order(self):
        bandit = SelectionBandit(BanditConfig())
        digest = digest_for()
        state = bandit._seed_key(digest, SHAPE, "polyhankel")
        # Force identical posteriors: equal priors, no observations.
        for arm in state.arms.values():
            arm.prior_ms = 1.0
        decision = bandit.decide(digest, SHAPE, "polyhankel")
        assert decision.algorithm == state.order[0]


class TestPoisoning:
    def test_poisoned_after_max_parity_failures(self):
        bandit = SelectionBandit(BanditConfig(max_parity_failures=2))
        digest = digest_for()
        bandit.decide(digest, SHAPE, "polyhankel")
        bandit.record_shadow_failure(digest, "gemm", "parity_fail")
        assert not bandit._keys[digest].arms["gemm"].poisoned
        bandit.record_shadow_failure(digest, "gemm", "parity_fail")
        assert bandit._keys[digest].arms["gemm"].poisoned
        assert counters.total("selection.arm_poisoned") == 1

    def test_poisoned_arm_never_served_nor_shadowed(self):
        bandit = SelectionBandit(BanditConfig(explore_fraction=1.0,
                                              min_obs=10 ** 9,
                                              max_parity_failures=1))
        digest = digest_for()
        bandit.decide(digest, SHAPE, "polyhankel")
        state = bandit._keys[digest]
        for name in state.order:
            if name != "gemm":
                bandit.record_shadow_failure(digest, name, "parity_fail")
        for _ in range(20):
            decision = bandit.decide(digest, SHAPE, "polyhankel")
            assert decision.algorithm == "gemm"
            assert decision.shadow is None
            bandit.record(digest, decision.algorithm, 1.0)

    def test_all_arms_poisoned_serves_requested(self):
        bandit = SelectionBandit(BanditConfig(max_parity_failures=1))
        digest = digest_for()
        bandit.decide(digest, SHAPE, "polyhankel")
        state = bandit._keys[digest]
        for name in state.order:
            bandit.record_shadow_failure(digest, name, "parity_fail")
        decision = bandit.decide(digest, SHAPE, "gemm")
        assert decision.algorithm == "gemm"
        assert decision.source == "requested"


class TestReplicaMerge:
    def test_ingest_folds_proc_tagged_rows_once(self):
        bandit = SelectionBandit(BanditConfig())
        digest = digest_for()
        rows = [("selection.arm_obs",
                 (("algorithm", "gemm"), ("key", digest)), 5.0),
                ("selection.arm_ms",
                 (("algorithm", "gemm"), ("key", digest)), 10.0)]
        counters.merge_rows("replica0", rows)
        assert bandit.ingest_replica_rows() == 5
        arm = bandit._keys[digest].arms["gemm"]
        assert arm.obs == 5
        assert arm.ms_total == pytest.approx(10.0)
        # Re-ingesting the same snapshot adds nothing.
        assert bandit.ingest_replica_rows() == 0
        assert arm.obs == 5

    def test_ingest_tracks_growth_per_replica(self):
        bandit = SelectionBandit(BanditConfig())
        digest = digest_for()

        def rows(obs, ms):
            return [("selection.arm_obs",
                     (("algorithm", "gemm"), ("key", digest)), obs),
                    ("selection.arm_ms",
                     (("algorithm", "gemm"), ("key", digest)), ms)]

        counters.merge_rows("replica0", rows(2.0, 4.0))
        counters.merge_rows("replica1", rows(3.0, 3.0))
        assert bandit.ingest_replica_rows() == 5
        counters.merge_rows("replica0", rows(6.0, 12.0))
        assert bandit.ingest_replica_rows() == 4
        arm = bandit._keys[digest].arms["gemm"]
        assert arm.obs == 9
        assert arm.ms_total == pytest.approx(15.0)

    def test_local_rows_without_proc_tag_ignored(self):
        bandit = SelectionBandit(BanditConfig())
        digest = digest_for()
        # A local record() writes untagged rows; ingest must not
        # double-count the process's own observations.
        bandit.decide(digest, SHAPE, "polyhankel")
        bandit.record(digest, "gemm", 1.0)
        obs_before = bandit._keys[digest].arms["gemm"].obs
        assert bandit.ingest_replica_rows() == 0
        assert bandit._keys[digest].arms["gemm"].obs == obs_before
