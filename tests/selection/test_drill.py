"""The CI convergence drill, run in-process.

This is the same entry point the ``selection-drill`` CI job gates on;
running it here keeps the drill debuggable locally under plain pytest.
"""

import numpy as np
import pytest

from repro.selection.drill import (
    DRILL_SHAPES,
    _model_ms,
    _oracle_tie_set,
    format_selection_drill,
    run_selection_drill,
)


@pytest.mark.slow
def test_drill_passes_end_to_end(tmp_path):
    report = run_selection_drill(seed=0, requests=200,
                                 table_path=str(tmp_path / "table.json"))
    assert report["converge_ok"], format_selection_drill(report)
    assert report["warm_ok"], format_selection_drill(report)
    assert report["shadow_ok"], format_selection_drill(report)
    assert report["ok"]


def test_drill_keys_have_distinct_oracles():
    # The drill only proves convergence if the keys' winners differ;
    # keep the shape set honest against cost-model retunes.
    oracles = set()
    for _name, shape in DRILL_SHAPES:
        model = _model_ms(shape, "3090ti")
        oracle, ties = _oracle_tie_set(model)
        assert oracle in ties
        oracles.add("polyhankel" if oracle.startswith("polyhankel")
                    else oracle)
    assert len(oracles) >= 2, (
        f"drill shapes all converge to the same family: {oracles}")


def test_replay_is_seed_deterministic():
    a = run_selection_drill(seed=3, requests=120)
    b = run_selection_drill(seed=3, requests=120)
    for ka, kb in zip(a["keys"], b["keys"]):
        assert ka["chosen"] == kb["chosen"]
        assert ka["explored"] == kb["explored"]
        assert ka["regret_pct"] == pytest.approx(kb["regret_pct"])


def test_model_ms_prices_every_chain_arm():
    for _name, shape in DRILL_SHAPES:
        model = _model_ms(shape, "3090ti")
        assert "naive" in model  # unmodeled arm got the penalty price
        assert all(np.isfinite(v) and v > 0 for v in model.values())
