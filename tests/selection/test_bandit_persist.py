"""Persistence tests for the selection table.

The table is schema-versioned, content-checksummed JSON: round-trips
must be lossless, a foreign schema version must be rejected loudly, and
a corrupt file must be discarded (counted) rather than trusted.
"""

import json

import pytest

from repro.observe.registry import counters
from repro.selection.bandit import (
    TABLE_SCHEMA_VERSION,
    BanditConfig,
    SelectionBandit,
    SelectionTableError,
    key_digest,
    load_table,
    save_table,
)
from repro.utils.shapes import ConvShape

SHAPE = ConvShape(ih=16, iw=16, kh=3, kw=3, n=1, c=3, f=4, padding=1)


def digest_for(shape: ConvShape = SHAPE) -> str:
    return key_digest(op="conv2d", input_chw=(shape.c, shape.ih, shape.iw),
                      weight_shape=(shape.f, shape.c, shape.kh, shape.kw),
                      dtype="float64", padding=shape.padding,
                      stride=shape.stride, dilation=shape.dilation,
                      groups=shape.groups, strategy="sum", backend="numpy")


@pytest.fixture(autouse=True)
def clean_selection_counters():
    counters.clear("selection.")
    yield
    counters.clear("selection.")


def trained_bandit() -> tuple[SelectionBandit, str]:
    bandit = SelectionBandit(BanditConfig(explore_fraction=1.0, min_obs=2))
    digest = digest_for(SHAPE)
    for _ in range(20):
        decision = bandit.decide(digest, SHAPE, "polyhankel")
        bandit.record(digest, decision.algorithm, 1.0)
        if decision.shadow is not None:
            bandit.record(digest, decision.shadow, 2.0, shadow=True)
    bandit.record_shadow_failure(digest, "naive", "parity_fail")
    return bandit, digest


class TestRoundTrip:
    def test_payload_survives_save_load(self, tmp_path):
        bandit, digest = trained_bandit()
        path = str(tmp_path / "table.json")
        assert bandit.save(path) == path
        warmed = SelectionBandit(bandit.config)
        assert warmed.warm_start(path)
        assert counters.total("selection.table_loaded") == 1
        original = bandit._keys[digest]
        restored = warmed._keys[digest]
        assert restored.order == original.order
        assert restored.decisions == original.decisions
        assert restored.explored == original.explored
        for name, arm in original.arms.items():
            other = restored.arms[name]
            assert other.obs == arm.obs
            assert other.ms_total == pytest.approx(arm.ms_total)
            assert other.prior_ms == (
                pytest.approx(arm.prior_ms) if arm.prior_ms is not None
                else None)
            assert other.poisoned == arm.poisoned

    def test_warm_started_bandit_decides_identically(self, tmp_path):
        bandit, digest = trained_bandit()
        path = str(tmp_path / "table.json")
        bandit.save(path)
        warmed = SelectionBandit(bandit.config)
        warmed.warm_start(path)
        assert warmed.best(digest) == bandit.best(digest)
        assert warmed.converged(digest) == bandit.converged(digest)

    def test_missing_file_is_quiet(self, tmp_path):
        assert load_table(str(tmp_path / "absent.json")) is None
        assert counters.total("selection.table_corrupt") == 0

    def test_save_without_path_is_noop(self):
        bandit, _ = trained_bandit()
        assert bandit.save() is None
        assert bandit.warm_start() is False


class TestSchemaVersion:
    def write_with_schema(self, tmp_path, schema):
        bandit, _ = trained_bandit()
        path = str(tmp_path / "table.json")
        bandit.save(path)
        with open(path) as fh:
            document = json.load(fh)
        document["schema"] = schema
        with open(path, "w") as fh:
            json.dump(document, fh)
        return path

    def test_foreign_schema_rejected_loudly(self, tmp_path):
        path = self.write_with_schema(tmp_path, TABLE_SCHEMA_VERSION + 1)
        with pytest.raises(SelectionTableError):
            load_table(path)

    def test_strict_warm_start_raises(self, tmp_path):
        path = self.write_with_schema(tmp_path, TABLE_SCHEMA_VERSION + 1)
        bandit = SelectionBandit()
        with pytest.raises(SelectionTableError):
            bandit.warm_start(path, strict=True)

    def test_lenient_warm_start_counts_and_declines(self, tmp_path):
        path = self.write_with_schema(tmp_path, TABLE_SCHEMA_VERSION + 1)
        bandit = SelectionBandit()
        assert bandit.warm_start(path, strict=False) is False
        assert counters.total("selection.table_schema_reject") == 1
        assert not bandit._keys


class TestCorruption:
    def test_checksum_mismatch_discarded_with_counter(self, tmp_path):
        bandit, digest = trained_bandit()
        path = str(tmp_path / "table.json")
        bandit.save(path)
        with open(path) as fh:
            document = json.load(fh)
        document["payload"]["keys"][digest]["decisions"] += 1
        with open(path, "w") as fh:
            json.dump(document, fh)
        assert load_table(path) is None
        assert counters.total("selection.table_corrupt") == 1

    def test_garbage_json_discarded_with_counter(self, tmp_path):
        path = tmp_path / "table.json"
        path.write_text("{not json")
        assert load_table(str(path)) is None
        assert counters.total("selection.table_corrupt") == 1

    def test_wrong_document_shape_discarded(self, tmp_path):
        path = tmp_path / "table.json"
        path.write_text(json.dumps({"keys": {}}))
        assert load_table(str(path)) is None
        assert counters.total("selection.table_corrupt") == 1

    def test_corrupt_table_never_reaches_the_bandit(self, tmp_path):
        path = tmp_path / "table.json"
        path.write_text("\x00torn")
        bandit = SelectionBandit()
        assert bandit.warm_start(str(path)) is False
        assert not bandit._keys

    def test_save_round_trips_after_corruption_overwrite(self, tmp_path):
        bandit, _ = trained_bandit()
        path = str(tmp_path / "table.json")
        with open(path, "w") as fh:
            fh.write("garbage")
        save_table(bandit.payload(), path)
        assert load_table(path) is not None
