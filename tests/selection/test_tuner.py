"""Tests for the empirical convolution tuner."""

import pytest

from repro.baselines.registry import ConvAlgorithm
from repro.selection.tuner import DEFAULT_CANDIDATES, ConvTuner
from repro.utils.shapes import ConvShape

SMALL = ConvShape(ih=10, iw=10, kh=3, kw=3, n=1, c=1, f=1, padding=1)


@pytest.fixture
def tuner():
    return ConvTuner(repeats=1, warmup=False)


class TestTuning:
    def test_measures_all_capable_candidates(self, tuner):
        result = tuner.tune(SMALL)
        assert set(result.timings_s) <= set(DEFAULT_CANDIDATES)
        assert len(result.timings_s) >= 8
        assert all(t > 0 for t in result.timings_s.values())

    def test_best_is_minimum(self, tuner):
        result = tuner.tune(SMALL)
        assert result.timings_s[result.best] == min(
            result.timings_s.values()
        )
        assert result.best_seconds == result.timings_s[result.best]

    def test_ranking_sorted(self, tuner):
        ranking = tuner.tune(SMALL).ranking()
        times = [t for _, t in ranking]
        assert times == sorted(times)

    def test_naive_not_tried_by_default(self, tuner):
        assert ConvAlgorithm.NAIVE not in tuner.tune(SMALL).timings_s

    def test_capability_respected(self, tuner):
        strided = SMALL.with_(stride=2, ih=11, iw=11)
        result = tuner.tune(strided)
        assert ConvAlgorithm.WINOGRAD not in result.timings_s

    def test_supplied_problem_used(self, tuner, rng):
        x = rng.standard_normal(SMALL.input_shape())
        w = rng.standard_normal(SMALL.weight_shape())
        result = tuner.tune(SMALL, x, w)
        assert result.shape == SMALL


class TestCache:
    def test_cache_hit(self, tuner):
        first = tuner.tune(SMALL)
        assert tuner.tune(SMALL) is first
        assert tuner.cache_size == 1

    def test_distinct_shapes_cached_separately(self, tuner):
        tuner.tune(SMALL)
        tuner.tune(SMALL.with_(n=2))
        assert tuner.cache_size == 2

    def test_clear(self, tuner):
        tuner.tune(SMALL)
        tuner.clear()
        assert tuner.cache_size == 0

    def test_best_algorithm_shortcut(self, tuner):
        assert tuner.best_algorithm(SMALL) is tuner.tune(SMALL).best


class TestMeasurement:
    def test_warmup_pass_runs(self):
        # warmup=True exercises the pre-measurement call path; restrict
        # to one cheap candidate so the double execution stays fast.
        tuner = ConvTuner(candidates=(ConvAlgorithm.GEMM,), repeats=1,
                          warmup=True)
        result = tuner.tune(SMALL)
        assert result.timings_s[ConvAlgorithm.GEMM] > 0

    def test_repeats_keep_the_minimum(self):
        tuner = ConvTuner(candidates=(ConvAlgorithm.GEMM,), repeats=3,
                          warmup=False)
        result = tuner.tune(SMALL)
        assert result.best_seconds > 0

    def test_default_candidates_exclude_naive(self):
        assert ConvAlgorithm.NAIVE not in DEFAULT_CANDIDATES
        assert ConvAlgorithm.POLYHANKEL in DEFAULT_CANDIDATES


class TestValidation:
    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            ConvTuner(repeats=0)

    def test_no_capable_candidate(self):
        tuner = ConvTuner(candidates=(ConvAlgorithm.WINOGRAD,), repeats=1)
        with pytest.raises(ValueError, match="no capable algorithm"):
            tuner.tune(SMALL.with_(stride=2, ih=11, iw=11))

    def test_restricted_candidates(self):
        tuner = ConvTuner(candidates=(ConvAlgorithm.GEMM,), repeats=1,
                          warmup=False)
        result = tuner.tune(SMALL)
        assert set(result.timings_s) == {ConvAlgorithm.GEMM}
