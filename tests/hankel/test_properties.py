"""Tests for Hankel structural predicates and the Sec. 2.2 identities."""

import numpy as np
import pytest

from repro.hankel.im2col_view import im2col_hankel_view
from repro.hankel.properties import (
    is_doubly_blocked_hankel,
    is_hankel,
    mirror_symmetry_constant,
    row_degree_vectors,
)


class TestIsHankel:
    def test_accepts_hankel(self):
        assert is_hankel([[1, 2, 3], [2, 3, 4]])

    def test_rejects_non_hankel(self):
        assert not is_hankel([[1, 2], [3, 4]])

    def test_single_row_or_column(self):
        assert is_hankel([[1, 2, 3]])
        assert is_hankel([[1], [2], [3]])

    def test_tolerance(self):
        m = [[1.0, 2.0], [2.0 + 1e-12, 3.0]]
        assert is_hankel(m, atol=1e-9)
        assert not is_hankel(m, atol=0.0)


class TestIsDoublyBlockedHankel:
    def test_im2col_matrix_is_dbh(self, rng):
        img = rng.standard_normal((5, 5))
        view = im2col_hankel_view(img, 3, 3)
        assert is_doubly_blocked_hankel(view.to_dense(), (3, 3), (3, 3))

    def test_random_matrix_is_not(self, rng):
        dense = rng.standard_normal((9, 9))
        assert not is_doubly_blocked_hankel(dense, (3, 3), (3, 3))

    def test_hankel_blocks_but_not_block_hankel(self, rng):
        # Two distinct Hankel blocks on the antidiagonal.
        a = np.array([[1, 2], [2, 3]])
        b = np.array([[7, 8], [8, 9]])
        dense = np.block([[a, b], [a, a]])  # block grid not Hankel
        assert not is_doubly_blocked_hankel(dense, (2, 2), (2, 2))

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError, match="does not match"):
            is_doubly_blocked_hankel(np.zeros((4, 4)), (3, 3), (2, 2))


class TestRowDegreeVectors:
    def test_paper_example_first_row(self):
        """Sec. 2.2: RD_1st = (0 1 2 5 6 7 10 11 12) for 5x5 input, 3x3."""
        rd = row_degree_vectors(oh=3, ow=3, kh=3, kw=3, iw=5)
        np.testing.assert_array_equal(rd[0], [0, 1, 2, 5, 6, 7, 10, 11, 12])

    def test_paper_example_second_row(self):
        rd = row_degree_vectors(oh=3, ow=3, kh=3, kw=3, iw=5)
        np.testing.assert_array_equal(rd[1], [1, 2, 3, 6, 7, 8, 11, 12, 13])

    def test_shape(self):
        rd = row_degree_vectors(oh=2, ow=4, kh=3, kw=2, iw=5)
        assert rd.shape == (8, 6)


class TestMirrorSymmetry:
    def test_paper_example_constant_12(self):
        """RD_1st + reverse(RD_1st) = (12 ... 12) — Sec. 2.2."""
        rd = row_degree_vectors(3, 3, 3, 3, 5)
        assert mirror_symmetry_constant(rd[0], rd[0]) == 12

    def test_paper_example_constant_13(self):
        """RD_2nd + reverse(RD_1st) = (13 ... 13)."""
        rd = row_degree_vectors(3, 3, 3, 3, 5)
        assert mirror_symmetry_constant(rd[1], rd[0]) == 13

    def test_constant_equals_last_entry(self):
        """The sum constant is the last value in the row vector."""
        rd = row_degree_vectors(4, 5, 2, 3, 7)
        for row in rd:
            assert mirror_symmetry_constant(row, rd[0]) == row[-1]

    def test_non_constant_returns_none(self):
        assert mirror_symmetry_constant(np.array([0, 1, 3]),
                                        np.array([0, 1, 2])) is None

    @pytest.mark.parametrize("oh,ow,kh,kw", [(2, 2, 2, 2), (3, 4, 2, 3),
                                             (5, 3, 4, 2)])
    def test_holds_for_all_rows_generally(self, oh, ow, kh, kw):
        iw = ow + kw - 1
        rd = row_degree_vectors(oh, ow, kh, kw, iw)
        for row in rd:
            assert mirror_symmetry_constant(row, rd[0]) is not None
