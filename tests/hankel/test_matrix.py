"""Tests for structured Hankel matrices."""

import numpy as np
import pytest

from repro.hankel.matrix import DoublyBlockedHankel, HankelMatrix


class TestHankelMatrix:
    def test_to_dense_small(self):
        h = HankelMatrix([1, 2, 3, 4], rows=2, cols=3)
        np.testing.assert_array_equal(h.to_dense(), [[1, 2, 3], [2, 3, 4]])

    def test_getitem(self):
        h = HankelMatrix(np.arange(5), rows=3, cols=3)
        assert h[0, 0] == 0
        assert h[2, 2] == 4
        assert h[1, 2] == h[2, 1] == 3

    def test_getitem_out_of_range(self):
        h = HankelMatrix(np.arange(5), rows=3, cols=3)
        with pytest.raises(IndexError):
            h[3, 0]
        with pytest.raises(IndexError):
            h[0, -1]

    def test_defining_vector_length_checked(self):
        with pytest.raises(ValueError, match="rows \\+ cols - 1"):
            HankelMatrix([1, 2, 3], rows=3, cols=3)

    def test_storage_savings(self):
        h = HankelMatrix(np.arange(19), rows=10, cols=10)
        assert h.storage_elems == 19
        assert h.to_dense().size == 100

    def test_from_dense_roundtrip(self, rng):
        data = rng.standard_normal(8)
        h = HankelMatrix(data, rows=4, cols=5)
        h2 = HankelMatrix.from_dense(h.to_dense())
        np.testing.assert_array_equal(h2.data, data)

    def test_from_dense_rejects_non_hankel(self, rng):
        with pytest.raises(ValueError, match="not Hankel"):
            HankelMatrix.from_dense(rng.standard_normal((3, 3)))

    @pytest.mark.parametrize("rows,cols", [(1, 1), (3, 5), (5, 3), (8, 8)])
    def test_matvec_matches_dense(self, rng, rows, cols):
        h = HankelMatrix(rng.standard_normal(rows + cols - 1), rows, cols)
        v = rng.standard_normal(cols)
        np.testing.assert_allclose(h.matvec(v), h.to_dense() @ v, atol=1e-9)

    def test_matmul_operator(self, rng):
        h = HankelMatrix(rng.standard_normal(5), 3, 3)
        v = rng.standard_normal(3)
        np.testing.assert_allclose(h @ v, h.matvec(v))

    def test_matvec_wrong_length(self):
        h = HankelMatrix(np.arange(5), 3, 3)
        with pytest.raises(ValueError, match="3 entries"):
            h.matvec(np.zeros(4))


class TestDoublyBlockedHankel:
    def _make(self, rng, br=3, bc=2, ir=4, ic=3):
        base = rng.standard_normal((br + bc - 1, ir + ic - 1))
        return DoublyBlockedHankel(base, br, bc, ir, ic)

    def test_shape(self, rng):
        m = self._make(rng)
        assert m.shape == (12, 6)

    def test_base_shape_checked(self, rng):
        with pytest.raises(ValueError, match="base must be"):
            DoublyBlockedHankel(rng.standard_normal((2, 2)), 2, 2, 2, 2)

    def test_block_is_hankel(self, rng):
        m = self._make(rng)
        block = m.block(1, 1)
        dense = block.to_dense()
        np.testing.assert_array_equal(dense[1:, :-1], dense[:-1, 1:])

    def test_block_out_of_range(self, rng):
        m = self._make(rng)
        with pytest.raises(IndexError):
            m.block(3, 0)

    def test_antidiagonal_blocks_identical(self, rng):
        m = self._make(rng)
        np.testing.assert_array_equal(m.block(0, 1).to_dense(),
                                      m.block(1, 0).to_dense())

    def test_getitem_matches_dense(self, rng):
        m = self._make(rng)
        dense = m.to_dense()
        for i in range(dense.shape[0]):
            for j in range(dense.shape[1]):
                assert m[i, j] == dense[i, j]

    def test_getitem_out_of_range(self, rng):
        m = self._make(rng)
        with pytest.raises(IndexError):
            m[12, 0]

    def test_storage(self, rng):
        m = self._make(rng)
        assert m.storage_elems == 4 * 6
        assert m.to_dense().size == 72

    @pytest.mark.parametrize("dims", [(1, 1, 1, 1), (2, 2, 2, 2),
                                      (3, 2, 4, 3), (2, 3, 3, 4)])
    def test_matvec_matches_dense(self, rng, dims):
        m = self._make(rng, *dims)
        v = rng.standard_normal(m.shape[1])
        np.testing.assert_allclose(m @ v, m.to_dense() @ v, atol=1e-9)

    def test_matvec_wrong_length(self, rng):
        m = self._make(rng)
        with pytest.raises(ValueError):
            m.matvec(np.zeros(5))
