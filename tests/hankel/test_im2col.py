"""Tests for im2col (materialized and structured views)."""

import numpy as np
import pytest

from repro.hankel.im2col_view import im2col_hankel_view, im2col_patches, pad2d


class TestPad2d:
    def test_zero_padding_is_identity(self, rng):
        x = rng.standard_normal((2, 3, 4, 5))
        assert pad2d(x, 0) is x

    def test_pads_spatial_axes_only(self, rng):
        x = rng.standard_normal((2, 3, 4, 5))
        out = pad2d(x, 2)
        assert out.shape == (2, 3, 8, 9)
        np.testing.assert_array_equal(out[:, :, 2:-2, 2:-2], x)
        assert out[:, :, :2].sum() == 0


class TestIm2colPatches:
    def test_shape(self, rng):
        x = rng.standard_normal((2, 3, 6, 7))
        patches = im2col_patches(x, 3, 2)
        assert patches.shape == (2, 4 * 6, 3 * 3 * 2)

    def test_values_match_manual_patch(self, rng):
        x = rng.standard_normal((1, 2, 5, 5))
        patches = im2col_patches(x, 3, 3)
        # Patch at output position (1, 2), row-major index 1*3+2 = 5.
        manual = x[0, :, 1:4, 2:5].reshape(-1)
        np.testing.assert_array_equal(patches[0, 5], manual)

    def test_padding(self, rng):
        x = rng.standard_normal((1, 1, 3, 3))
        patches = im2col_patches(x, 2, 2, padding=1)
        assert patches.shape == (1, 16, 4)
        # Top-left patch sees three zeros and x[0,0,0,0].
        np.testing.assert_array_equal(patches[0, 0],
                                      [0, 0, 0, x[0, 0, 0, 0]])

    def test_stride(self, rng):
        x = rng.standard_normal((1, 1, 7, 7))
        patches = im2col_patches(x, 3, 3, stride=2)
        assert patches.shape == (1, 9, 9)
        np.testing.assert_array_equal(patches[0, 4],
                                      x[0, 0, 2:5, 2:5].reshape(-1))

    def test_conv_via_matmul(self, rng):
        """The whole point: conv == patches @ flattened kernel."""
        from tests.conftest import naive_conv2d_reference

        x = rng.standard_normal((2, 3, 6, 6))
        w = rng.standard_normal((4, 3, 3, 3))
        patches = im2col_patches(x, 3, 3, padding=1)
        out = (patches @ w.reshape(4, -1).T).transpose(0, 2, 1)
        out = out.reshape(2, 4, 6, 6)
        np.testing.assert_allclose(out,
                                   naive_conv2d_reference(x, w, padding=1),
                                   atol=1e-9)


class TestIm2colHankelView:
    @pytest.mark.parametrize("ih,iw,kh,kw,p", [(5, 5, 3, 3, 0),
                                               (3, 3, 2, 2, 1),
                                               (6, 4, 3, 2, 0),
                                               (4, 6, 2, 3, 2)])
    def test_dense_matches_patches(self, rng, ih, iw, kh, kw, p):
        img = rng.standard_normal((ih, iw))
        view = im2col_hankel_view(img, kh, kw, padding=p)
        patches = im2col_patches(img[None, None], kh, kw, padding=p)[0]
        np.testing.assert_array_equal(view.to_dense(), patches)

    def test_matvec_computes_convolution(self, rng):
        from tests.conftest import naive_conv2d_reference

        img = rng.standard_normal((6, 7))
        ker = rng.standard_normal((3, 3))
        view = im2col_hankel_view(img, 3, 3, padding=1)
        out = (view @ ker.reshape(-1)).reshape(6, 7)
        ref = naive_conv2d_reference(img[None, None], ker[None, None],
                                     padding=1)[0, 0]
        np.testing.assert_allclose(out, ref, atol=1e-9)

    def test_structure_matches_paper_figure1(self):
        """Figure 1: 3x3 input, padding 1, 2x2 kernel -> 16x4 matrix."""
        img = np.arange(1.0, 10.0).reshape(3, 3)
        view = im2col_hankel_view(img, 2, 2, padding=1)
        assert view.shape == (16, 4)
        dense = view.to_dense()
        # First row of the figure's (transposed) matrix: all-zero corner
        # patch sees only element 1 in its bottom-right position.
        np.testing.assert_array_equal(dense[0], [0, 0, 0, 1])
        # Last patch: element 9 in the top-left position.
        np.testing.assert_array_equal(dense[15], [9, 0, 0, 0])

    def test_no_redundant_storage(self, rng):
        img = rng.standard_normal((10, 10))
        view = im2col_hankel_view(img, 3, 3)
        assert view.storage_elems == 100
        assert view.to_dense().size == 64 * 9
