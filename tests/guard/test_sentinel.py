"""Tests for repro.guard.sentinel: the a-priori/a-posteriori error model."""

import numpy as np
import pytest

from repro.baselines.naive import conv2d_naive
from repro.guard.sentinel import (
    DEGRADED, FAILED, HEALTHY, SUSPECT, calibrate_ulp_constant, classify,
    output_magnitude_bound, predicted_error_bound,
)
from repro.guard.state import GuardConfig
from repro.utils.random import random_problem
from repro.utils.shapes import ConvShape


@pytest.fixture
def problem():
    shape = ConvShape(ih=12, iw=12, kh=3, kw=3, n=2, c=3, f=4, padding=1)
    x, w = random_problem(shape, seed=0)
    return shape, x, w


class TestMagnitudeBound:
    def test_matches_manual_formula(self, problem):
        _, x, w = problem
        expected = float(np.max(np.abs(x))) * float(
            np.max(np.sum(np.abs(w), axis=(1, 2, 3))))
        assert output_magnitude_bound(x, w) == pytest.approx(expected)

    def test_is_a_hard_bound_on_exact_outputs(self, problem):
        shape, x, w = problem
        out = conv2d_naive(x, w, padding=shape.padding)
        assert float(np.max(np.abs(out))) <= output_magnitude_bound(x, w)

    def test_empty_inputs(self):
        assert output_magnitude_bound(np.zeros((0, 1, 1, 1)),
                                      np.ones((1, 1, 1, 1))) == 0.0


class TestPredictedErrorBound:
    def test_grows_with_transform_size(self):
        small = predicted_error_bound(64, 10.0, ulp_constant=8.0)
        large = predicted_error_bound(4096, 10.0, ulp_constant=8.0)
        assert large > small > 0

    def test_floor_keeps_zero_bound_meaningful(self):
        # All-zero inputs give B = 0; round-off noise must still have a
        # nonzero allowance or every zero problem would read as suspect.
        assert predicted_error_bound(64, 0.0, ulp_constant=8.0) > 0

    def test_uses_active_config_when_constant_omitted(self):
        from repro.guard.state import disable_guard, guarded
        with guarded(GuardConfig(ulp_constant=2.0)):
            assert predicted_error_bound(64, 1.0) == \
                predicted_error_bound(64, 1.0, ulp_constant=2.0)
        disable_guard()


class TestClassify:
    def test_healthy_on_real_engine_output(self, problem):
        shape, x, w = problem
        out = conv2d_naive(x, w, padding=shape.padding)
        verdict = classify(out, x, w, shape.poly_product_len)
        assert verdict.status == HEALTHY
        assert verdict.healthy and verdict.ok
        assert verdict.observed_peak <= verdict.bound

    def test_suspect_on_magnitude_blowup(self, problem):
        shape, x, w = problem
        out = conv2d_naive(x, w, padding=shape.padding) * 1e12
        verdict = classify(out, x, w, shape.poly_product_len)
        assert verdict.status == SUSPECT
        assert not verdict.ok
        assert "exceeds exact-arithmetic bound" in verdict.reason

    def test_failed_on_nonfinite_output_from_finite_inputs(self, problem):
        shape, x, w = problem
        out = conv2d_naive(x, w, padding=shape.padding)
        out[0, 0, 0, 0] = np.nan
        verdict = classify(out, x, w, shape.poly_product_len)
        assert verdict.status == FAILED
        assert not verdict.ok

    def test_degraded_passthrough_on_nonfinite_input(self, problem):
        shape, x, w = problem
        x = x.copy()
        x[0, 0, 0, 0] = np.inf
        out = np.full(shape.output_shape(), np.nan)
        verdict = classify(out, x, w, shape.poly_product_len)
        assert verdict.status == DEGRADED
        assert verdict.ok and not verdict.healthy

    def test_tight_config_flags_barely_over_bound(self):
        # All-ones tensors make the exact output hit the bound B exactly;
        # with zero slack and a zero ulp constant the threshold collapses
        # to B, so any excess must trip.
        x = np.ones((1, 2, 6, 6))
        w = np.ones((3, 2, 3, 3))
        out = conv2d_naive(x, w, padding=0)
        cfg = GuardConfig(ulp_constant=0.0, magnitude_slack=0.0)
        assert classify(out, x, w, 64, cfg).status == HEALTHY
        verdict = classify(out * (1.0 + 1e-9), x, w, 64, cfg)
        assert verdict.status == SUSPECT


class TestCalibration:
    def test_default_constant_dominates_measured_growth(self):
        measured = calibrate_ulp_constant(sizes=(8, 64, 128), trials=2)
        assert 0 < measured
        # The shipped default must leave generous headroom, or healthy
        # forwards would trip the sentinel on ordinary round-off.
        assert measured <= GuardConfig().ulp_constant / 2
