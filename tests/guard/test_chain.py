"""Tests for repro.guard.chain: the supervised fallback chain end to end."""

import numpy as np
import pytest

from repro.baselines.naive import conv2d_naive
from repro.baselines.registry import ConvAlgorithm, fallback_chain
from repro.guard import faults
from repro.guard.chain import (
    GuardExhaustedError, breaker, guarded_conv2d, reset_guard,
)
from repro.guard.state import GuardConfig, guarded
from repro.observe.registry import counters
from repro.utils.random import random_problem
from repro.utils.shapes import ConvShape
from tests.conftest import assert_conv_close


@pytest.fixture(autouse=True)
def _clean_guard():
    from repro.core import multichannel as mc
    reset_guard()
    yield
    reset_guard()
    # The corruption injector doctors cached spectra in place; drop them so
    # a doctored entry cannot leak into unrelated tests.
    mc.clear_spectrum_cache()


@pytest.fixture
def problem():
    shape = ConvShape(ih=12, iw=12, kh=3, kw=3, n=2, c=3, f=4, padding=1)
    x, w = random_problem(shape, seed=0)
    ref = conv2d_naive(x, w, padding=1)
    return x, w, ref


class TestFallbackChain:
    def _shape(self):
        return ConvShape(ih=12, iw=12, kh=3, kw=3, n=1, c=1, f=1, padding=1)

    def test_default_order_ends_in_naive(self):
        chain = fallback_chain(self._shape())
        assert chain[-1] is ConvAlgorithm.NAIVE
        assert chain[0] is ConvAlgorithm.POLYHANKEL

    def test_primary_moves_to_front_without_duplicates(self):
        chain = fallback_chain(self._shape(), primary=ConvAlgorithm.GEMM)
        assert chain[0] is ConvAlgorithm.GEMM
        assert chain.count(ConvAlgorithm.GEMM) == 1

    def test_accepts_string_names(self):
        chain = fallback_chain(self._shape(), primary="naive",
                               order=("naive", "gemm"))
        assert chain == [ConvAlgorithm.NAIVE, ConvAlgorithm.GEMM]

    def test_explicit_order_restricts_chain(self):
        chain = fallback_chain(self._shape(), order=("gemm", "naive"))
        assert chain == [ConvAlgorithm.GEMM, ConvAlgorithm.NAIVE]


class TestHealthyPath:
    def test_matches_naive_with_zero_fallbacks(self, problem):
        x, w, ref = problem
        out = guarded_conv2d(x, w, padding=1)
        assert_conv_close(out, ref)
        assert counters.total("guard.fallback") == 0
        assert counters.total("guard.sentinel_trip") == 0

    def test_bias_applied_once(self, problem):
        x, w, ref = problem
        bias = np.arange(w.shape[0], dtype=float)
        out = guarded_conv2d(x, w, bias=bias, padding=1)
        assert_conv_close(out, ref + bias[None, :, None, None])

    def test_nonfinite_input_served_degraded(self, problem):
        # Garbage-in is not an engine fault: the first attempt's result is
        # passed through instead of burning the whole chain.
        x, w, _ = problem
        x = x.copy()
        x[0, 0, 0, 0] = np.nan
        out = guarded_conv2d(x, w, padding=1)
        assert np.isnan(out).any()
        assert counters.total("guard.fallback") == 0

    def test_input_validation_still_applies(self, problem):
        x, w, _ = problem
        with pytest.raises(ValueError, match="stride"):
            guarded_conv2d(x, w, padding=1, stride=0)


class TestRecovery:
    # Engine kinds only: cluster kinds fire at serving-tier hook sites
    # (worker loop, router slot accounting) that guarded_conv2d never
    # reaches — tests/serve/test_chaos.py drills those.
    @pytest.mark.parametrize("kind", faults.ENGINE_FAULT_KINDS)
    def test_recovers_reference_answer_under_fault(self, problem, kind):
        x, w, ref = problem
        # Warm the spectrum cache: the corruption injector doctors cached
        # entries on their next hit, so a cold cache would never fire it.
        guarded_conv2d(x, w, padding=1)
        reset_guard()
        with guarded(), faults.inject(kind, seed=11) as state, \
                np.errstate(invalid="ignore", over="ignore"):
            out = guarded_conv2d(x, w, padding=1)
        assert_conv_close(out, ref)
        assert sum(state.counts.values()) >= 1, "fault must actually fire"

    def test_fallback_counters_tagged_by_cause(self, problem):
        x, w, _ = problem
        with faults.inject("backend_error"):
            guarded_conv2d(x, w, padding=1)
        assert counters.total("guard.fallback", cause="exception") >= 1
        assert counters.total("guard.fallback",
                              algorithm="polyhankel") >= 1

    def test_sentinel_trip_counted_on_blowup(self, problem):
        x, w, _ = problem
        with faults.inject("accuracy_blowup"):
            guarded_conv2d(x, w, padding=1)
        assert counters.total("guard.sentinel_trip", status="suspect") >= 1


class TestBreaker:
    def test_opens_and_routes_around_primary(self, problem):
        x, w, ref = problem
        cfg = GuardConfig(breaker_threshold=1)
        with faults.inject("backend_error"):
            guarded_conv2d(x, w, padding=1, config=cfg)
        assert counters.total("guard.breaker_open") >= 1
        assert breaker().open_keys(), "primary's breaker should be open"
        # Next call (fault gone) skips the open entry instead of retrying.
        out = guarded_conv2d(x, w, padding=1, config=cfg)
        assert_conv_close(out, ref)
        assert counters.total("guard.fallback", cause="breaker_open") >= 1

    def test_breaker_key_overrides_shape_scope(self, problem):
        """Shards of one request family share a single breaker: two
        calls with different batch sizes but the same breaker_key trip
        one key, where shape scoping would have kept two half-tripped
        breakers."""
        x, w, _ = problem
        cfg = GuardConfig(breaker_threshold=2)
        family = ("serve", "family-key")
        with faults.inject("backend_error"):
            guarded_conv2d(x, w, padding=1, config=cfg,
                           breaker_key=family)
            guarded_conv2d(x[:1], w, padding=1, config=cfg,
                           breaker_key=family)
        open_keys = breaker().open_keys()
        assert any(key[1] == family for key in open_keys)

    def test_breaker_shape_scope_keeps_batches_separate(self, problem):
        x, w, _ = problem
        cfg = GuardConfig(breaker_threshold=2)
        with faults.inject("backend_error"):
            guarded_conv2d(x, w, padding=1, config=cfg)
            guarded_conv2d(x[:1], w, padding=1, config=cfg)
        # One failure per distinct shape: neither breaker reached 2.
        assert breaker().open_keys() == []

    def test_reset_guard_clears_breaker_and_counters(self, problem):
        x, w, _ = problem
        cfg = GuardConfig(breaker_threshold=1)
        with faults.inject("backend_error"):
            guarded_conv2d(x, w, padding=1, config=cfg)
        reset_guard()
        assert breaker().open_keys() == []
        assert counters.total("guard.fallback") == 0


class TestExhaustion:
    def test_single_entry_chain_exhausts_under_fault(self, problem):
        x, w, _ = problem
        cfg = GuardConfig(chain=("polyhankel",), breaker_threshold=100)
        with faults.inject("backend_error"):
            with pytest.raises(GuardExhaustedError) as excinfo:
                guarded_conv2d(x, w, padding=1, config=cfg)
        err = excinfo.value
        assert err.attempts, "exhaustion must carry the attempt log"
        assert err.attempts[0][0] == "polyhankel"
        assert "exhausted its fallback chain" in str(err)
        assert isinstance(err.__cause__, Exception)
