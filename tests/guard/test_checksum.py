"""Tests for repro.guard.checksum: content stamps on cached spectra."""

import numpy as np

from repro.guard.checksum import array_checksum, verify_checksum


class TestArrayChecksum:
    def test_deterministic(self):
        a = np.arange(64, dtype=float).reshape(8, 8)
        assert array_checksum(a) == array_checksum(a.copy())

    def test_layout_independent(self):
        a = np.arange(64, dtype=float).reshape(8, 8)
        assert array_checksum(a) == array_checksum(np.asfortranarray(a))

    def test_single_element_flip_changes_checksum(self):
        a = np.arange(64, dtype=float)
        stamp = array_checksum(a)
        a[17] += 1e-9
        assert array_checksum(a) != stamp

    def test_complex_arrays(self):
        a = np.arange(8) + 1j * np.arange(8)
        stamp = array_checksum(a)
        a[3] = np.nan
        assert array_checksum(a) != stamp


class TestVerifyChecksum:
    def test_match(self):
        a = np.ones(16)
        assert verify_checksum(a, array_checksum(a))

    def test_mismatch(self):
        a = np.ones(16)
        stamp = array_checksum(a)
        a[0] = 2.0
        assert not verify_checksum(a, stamp)

    def test_none_stamp_verifies_trivially(self):
        assert verify_checksum(np.ones(4), None)
