"""Tests for repro.guard.breaker: TTL circuit breaker with a fake clock."""

from repro.guard.breaker import CircuitBreaker

KEY = ("polyhankel", "shape-a", "float64")
OTHER = ("gemm", "shape-a", "float64")


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make():
    clock = FakeClock()
    return CircuitBreaker(clock=clock), clock


class TestOpening:
    def test_closed_by_default(self):
        breaker, _ = make()
        assert not breaker.is_open(KEY)

    def test_opens_only_at_threshold(self):
        breaker, _ = make()
        assert not breaker.record_failure(KEY, threshold=3, ttl_s=10)
        assert not breaker.record_failure(KEY, threshold=3, ttl_s=10)
        assert not breaker.is_open(KEY)
        assert breaker.record_failure(KEY, threshold=3, ttl_s=10)
        assert breaker.is_open(KEY)

    def test_transition_reported_once(self):
        breaker, _ = make()
        breaker.record_failure(KEY, threshold=1, ttl_s=10)
        # Already open: further failures extend the window, not re-report.
        assert not breaker.record_failure(KEY, threshold=1, ttl_s=10)

    def test_keys_are_independent(self):
        breaker, _ = make()
        breaker.record_failure(KEY, threshold=1, ttl_s=10)
        assert breaker.is_open(KEY)
        assert not breaker.is_open(OTHER)


class TestTtlAndHalfOpen:
    def test_expiry_allows_one_retry(self):
        breaker, clock = make()
        breaker.record_failure(KEY, threshold=1, ttl_s=10)
        clock.advance(9.99)
        assert breaker.is_open(KEY)
        clock.advance(0.02)
        assert not breaker.is_open(KEY)

    def test_refailure_after_expiry_reopens_immediately(self):
        # Half-open semantics: the consecutive-failure count survives the
        # TTL, so one more failure re-opens without counting to threshold.
        breaker, clock = make()
        breaker.record_failure(KEY, threshold=3, ttl_s=10)
        breaker.record_failure(KEY, threshold=3, ttl_s=10)
        breaker.record_failure(KEY, threshold=3, ttl_s=10)
        clock.advance(11)
        assert not breaker.is_open(KEY)
        breaker.record_failure(KEY, threshold=3, ttl_s=10)
        assert breaker.is_open(KEY)

    def test_success_fully_resets(self):
        breaker, clock = make()
        breaker.record_failure(KEY, threshold=1, ttl_s=10)
        clock.advance(11)
        breaker.record_success(KEY)
        assert breaker.failure_count(KEY) == 0
        # A fresh failure must count from zero again.
        assert not breaker.record_failure(KEY, threshold=2, ttl_s=10)


class TestIntrospection:
    def test_open_keys_prunes_expired(self):
        breaker, clock = make()
        breaker.record_failure(KEY, threshold=1, ttl_s=10)
        breaker.record_failure(OTHER, threshold=1, ttl_s=30)
        assert breaker.open_keys() == sorted([KEY, OTHER])
        clock.advance(15)
        assert breaker.open_keys() == [OTHER]

    def test_reset(self):
        breaker, _ = make()
        breaker.record_failure(KEY, threshold=1, ttl_s=10)
        breaker.reset()
        assert not breaker.is_open(KEY)
        assert breaker.failure_count(KEY) == 0
