"""Disabled-guard overhead must stay under 3% on the cached hot path.

The guard adds a handful of hook sites to the steady-state engine call:
``if faults._STACK:`` truth tests around the fault injectors and
``guard_enabled()`` calls gating checksum verification and sentinel
classification.  As with the span-overhead test in
``tests/observe/test_overhead.py``, diffing two timing runs of a
sub-millisecond call measures machine noise, so this pins the *per-site*
disabled cost and checks that all sites together stay under the budget.
"""

import time

from repro.core import multichannel as mc
from repro.guard import faults
from repro.guard.state import guard_enabled
from repro.utils.random import random_problem
from repro.utils.shapes import ConvShape

#: Upper bound on guard hook sites crossed by one cached engine call
#: (input poison, output blowup, spectrum corruption + checksum gate,
#: backend fault checks in forward/inverse FFT, layer-level gates).
SITES_PER_CALL = 8
MAX_OVERHEAD = 0.03


def _best_of(fn, repeats: int, number: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(number):
            fn()
        best = min(best, (time.perf_counter() - start) / number)
    return best


def test_disabled_guard_overhead_under_three_percent():
    assert not guard_enabled()
    assert not faults._STACK

    def one_site():
        # The two disabled-state checks every hook site reduces to.
        if faults._STACK:  # pragma: no cover - disabled in this test
            raise AssertionError
        guard_enabled()

    site_s = _best_of(one_site, repeats=5, number=10_000)

    shape = ConvShape(ih=32, iw=32, kh=3, kw=3, n=4, c=8, f=16, padding=1)
    x, w = random_problem(shape)
    plan = mc.get_plan(shape, strategy="sum", backend="numpy")
    w_hat = plan.transform_weight(w)
    plan.execute(x, w_hat)  # warm
    call_s = _best_of(lambda: plan.execute(x, w_hat), repeats=5, number=20)

    overhead = SITES_PER_CALL * site_s / call_s
    assert overhead < MAX_OVERHEAD, (
        f"disabled guard site costs {site_s * 1e9:.0f} ns; "
        f"{SITES_PER_CALL} sites = {100 * overhead:.2f}% of a "
        f"{call_s * 1e3:.3f} ms steady-state call"
    )
