"""Tests for repro.guard.doctor: the install health report."""

from repro.guard import doctor
from repro.guard.doctor import CheckResult, format_report, run_doctor


class TestRunDoctor:
    def test_healthy_install_passes_every_check(self):
        results = run_doctor()
        assert len(results) == len(doctor.CHECKS)
        failing = [r for r in results if not r.ok]
        assert not failing, f"unexpected failures: {failing}"

    def test_check_names_are_kebab_case(self):
        for result in run_doctor():
            assert " " not in result.name and "_" not in result.name

    def test_raising_check_becomes_failure(self, monkeypatch):
        def check_explodes():
            raise RuntimeError("simulated broken install")

        monkeypatch.setattr(doctor, "CHECKS", (check_explodes,))
        results = run_doctor()
        assert len(results) == 1
        assert not results[0].ok
        assert "simulated broken install" in results[0].detail


class TestFormatReport:
    def test_renders_verdicts_and_summary(self):
        results = [
            CheckResult("fft-parity", True, "fine"),
            CheckResult("cache-integrity", False, "rotten"),
        ]
        text = format_report(results)
        assert "[  ok] fft-parity" in text
        assert "[FAIL] cache-integrity" in text
        assert "1/2 checks passed" in text


class TestIndividualChecks:
    def test_fft_parity_detail_quotes_both_constants(self):
        result = doctor.check_fft_parity()
        assert result.ok
        assert "measured" in result.detail and "configured" in result.detail

    def test_cache_integrity_detects_planted_mutation(self):
        # The check itself plants a mutation and must report catching it.
        result = doctor.check_cache_integrity()
        assert result.ok
        assert "mutation detected" in result.detail

    def test_chain_reachability_covers_whole_chain(self):
        result = doctor.check_chain_reachability()
        assert result.ok
        assert "naive reference" in result.detail

    def test_guarded_recovery_reports_fallbacks(self):
        result = doctor.check_guarded_recovery()
        assert result.ok
        assert "fallback" in result.detail


class TestCliDoctor:
    def test_exit_zero_on_healthy_install(self, capsys):
        from repro.cli import main
        assert main(["doctor"]) == 0
        out = capsys.readouterr().out
        assert "checks passed" in out

    def test_exit_nonzero_on_broken_install(self, capsys, monkeypatch):
        from repro.cli import main

        def check_broken():
            return CheckResult("broken", False, "simulated")

        monkeypatch.setattr(doctor, "CHECKS", (check_broken,))
        assert main(["doctor"]) == 1
        assert "[FAIL]" in capsys.readouterr().out
