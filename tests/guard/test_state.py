"""Tests for repro.guard.state: the enablement switch and config knobs."""

import pytest

from repro.guard.state import (
    GuardConfig, current_config, disable_guard, enable_guard, guard_enabled,
    guarded,
)


@pytest.fixture(autouse=True)
def _guard_off():
    """Every test starts and ends with the guard disabled."""
    disable_guard()
    yield
    disable_guard()


class TestGuardConfig:
    def test_defaults(self):
        cfg = GuardConfig()
        assert cfg.ulp_constant == 64.0
        assert cfg.breaker_threshold == 3
        assert cfg.breaker_ttl_s == 30.0
        assert cfg.chain == ("polyhankel", "polyhankel_os", "gemm", "naive")

    def test_with_returns_new_instance(self):
        cfg = GuardConfig()
        tweaked = cfg.with_(breaker_threshold=1)
        assert tweaked.breaker_threshold == 1
        assert cfg.breaker_threshold == 3
        assert tweaked is not cfg

    def test_frozen(self):
        with pytest.raises(AttributeError):
            GuardConfig().ulp_constant = 1.0


class TestEnableDisable:
    def test_default_off(self):
        assert not guard_enabled()

    def test_enable_then_disable(self):
        enable_guard()
        assert guard_enabled()
        disable_guard()
        assert not guard_enabled()

    def test_enable_installs_config(self):
        cfg = GuardConfig(breaker_threshold=7)
        assert enable_guard(cfg) is cfg
        assert current_config() is cfg

    def test_disable_retains_config(self):
        cfg = GuardConfig(breaker_threshold=7)
        enable_guard(cfg)
        disable_guard()
        assert current_config() is cfg


class TestGuardedContext:
    def test_enables_inside_restores_after(self):
        with guarded():
            assert guard_enabled()
        assert not guard_enabled()

    def test_custom_config_scoped(self):
        outer = current_config()
        with guarded(GuardConfig(ulp_constant=2.0)) as cfg:
            assert cfg.ulp_constant == 2.0
            assert current_config() is cfg
        assert current_config() is outer

    def test_nested_restores_each_level(self):
        with guarded(GuardConfig(breaker_threshold=1)):
            with guarded(GuardConfig(breaker_threshold=2)):
                assert current_config().breaker_threshold == 2
            assert current_config().breaker_threshold == 1
        assert not guard_enabled()

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with guarded():
                raise RuntimeError("boom")
        assert not guard_enabled()
