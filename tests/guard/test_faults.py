"""Tests for repro.guard.faults: deterministic, scoped fault injectors."""

import numpy as np
import pytest

from repro.guard import faults
from repro.guard.faults import (
    BLOWUP_FACTOR, InjectedFaultError, check_backend_fault, faults_active,
    inject, maybe_blowup, maybe_corrupt_spectrum, poison_intermediate,
)


class TestScope:
    def test_inactive_by_default(self):
        assert not faults_active()
        assert not faults._STACK

    def test_scope_arms_and_disarms(self):
        with inject("nan_input") as state:
            assert faults_active()
            assert faults._STACK[-1] is state
        assert not faults_active()

    def test_scope_disarms_on_exception(self):
        with pytest.raises(RuntimeError):
            with inject("nan_input"):
                raise RuntimeError("boom")
        assert not faults_active()

    def test_nested_innermost_wins(self):
        with inject("nan_input"):
            with inject("inf_input") as inner:
                assert faults._STACK[-1] is inner

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            with inject("cosmic_ray"):
                pass

    def test_rate_validated(self):
        with pytest.raises(ValueError, match="rate"):
            with inject("nan_input", rate=1.5):
                pass


class TestPoisonIntermediate:
    def test_returns_copy_with_exactly_one_nan(self):
        x = np.ones((4, 8))
        with inject("nan_input") as state:
            poisoned = poison_intermediate(x)
        assert poisoned is not x
        assert np.isfinite(x).all(), "original buffer must stay clean"
        assert int(np.isnan(poisoned).sum()) == 1
        assert state.counts == {"nan_input": 1}

    def test_inf_variant(self):
        x = np.ones((4, 8))
        with inject("inf_input"):
            poisoned = poison_intermediate(x)
        assert int(np.isinf(poisoned).sum()) == 1

    def test_unarmed_kind_is_identity(self):
        x = np.ones((4, 8))
        with inject("backend_error") as state:
            assert poison_intermediate(x) is x
        assert "nan_input" not in state.counts

    def test_deterministic_position_per_seed(self):
        x = np.ones(64)
        def poisoned_pos(seed):
            with inject("nan_input", seed=seed):
                return int(np.flatnonzero(np.isnan(poison_intermediate(x)))[0])
        assert poisoned_pos(3) == poisoned_pos(3)

    def test_rate_zero_never_fires(self):
        x = np.ones(8)
        with inject("nan_input", rate=0.0) as state:
            for _ in range(20):
                assert np.isfinite(poison_intermediate(x)).all()
        assert state.counts.get("nan_input", 0) == 0


class TestBlowupAndBackend:
    def test_blowup_scales_output(self):
        out = np.ones(4)
        with inject("accuracy_blowup"):
            assert np.allclose(maybe_blowup(out), BLOWUP_FACTOR)

    def test_blowup_unarmed_is_identity(self):
        out = np.ones(4)
        with inject("nan_input"):
            assert maybe_blowup(out) is out

    def test_backend_fault_raises(self):
        with inject("backend_error"):
            with pytest.raises(InjectedFaultError, match=r"numpy\.rfft"):
                check_backend_fault("numpy", "rfft", 64)

    def test_backend_fault_silent_when_unarmed(self):
        with inject("nan_input"):
            check_backend_fault("numpy", "rfft", 64)


class TestClusterKinds:
    def test_kind_registry_split(self):
        """Engine and cluster kinds partition FAULT_KINDS cleanly."""
        engine = set(faults.ENGINE_FAULT_KINDS)
        cluster = set(faults.CLUSTER_FAULT_KINDS)
        assert not engine & cluster
        assert engine | cluster == set(faults.FAULT_KINDS)

    def test_max_fires_caps_each_kind(self):
        with inject("slot_leak", max_fires=2) as state:
            fired = [faults.should_leak_slots() for _ in range(5)]
        assert fired == [True, True, False, False, False]
        assert state.counts == {"slot_leak": 2}

    def test_max_fires_validated(self):
        with pytest.raises(ValueError, match="max_fires"):
            with inject("slot_leak", max_fires=0):
                pass

    def test_params_reach_the_hook(self):
        """slow_worker sleeps for the armed delay_s, not the default."""
        import time

        with inject("slow_worker", params={"delay_s": 0.0}) as state:
            start = time.monotonic()
            faults.maybe_slow_worker()
            assert time.monotonic() - start < 0.04
        assert state.counts == {"slow_worker": 1}

    def test_arm_disarm_without_scope(self):
        """Workers arm over the control pipe — no with-block available."""
        state = faults.FaultState(kinds=frozenset({"response_drop"}))
        faults.arm(state)
        try:
            assert faults.faults_active()
            assert faults.should_drop_response()
        finally:
            faults.disarm(state)
        assert not faults.faults_active()
        assert not faults.should_drop_response()

    def test_unarmed_cluster_hooks_are_inert(self):
        with inject("nan_input"):
            assert not faults.should_drop_response()
            assert not faults.should_leak_slots()
            faults.maybe_worker_stall()  # returns immediately


class TestSpectrumCorruption:
    def test_doctors_in_place_once_per_array(self):
        spec = np.ones(32, dtype=complex)
        with inject("spectrum_corruption") as state:
            maybe_corrupt_spectrum(spec)
            assert int(np.isnan(spec).sum()) == 1
            maybe_corrupt_spectrum(spec)  # same entry: no second hit
            assert int(np.isnan(spec).sum()) == 1
        assert state.counts == {"spectrum_corruption": 1}

    def test_fresh_scope_can_doctor_again(self):
        spec = np.ones(32, dtype=complex)
        with inject("spectrum_corruption"):
            maybe_corrupt_spectrum(spec)
        with inject("spectrum_corruption"):
            maybe_corrupt_spectrum(spec)
        assert int(np.isnan(spec).sum()) >= 1
