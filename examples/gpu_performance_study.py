"""Regenerate the paper's evaluation figures from the command line.

Runs the Fig. 3-7 sweeps on the simulated GPUs and prints each panel as a
table, together with the paper-style summary statistics.

Run:  python examples/gpu_performance_study.py [--quick]
"""

import sys

from repro.experiments import (
    fig3_input_sweep,
    fig4_kernel_sweep,
    fig5_channel_sweep,
    fig6_network_sweep,
    fig7_counters,
    format_table,
    summarize,
)
from repro.experiments.config import Fig3Config, Fig6Config


def main(quick: bool = False) -> None:
    fig3_cfg = Fig3Config(input_sizes=(16, 64, 112, 224)) if quick else None
    devices = ("3090ti",) if quick else ("3090ti", "a10g", "v100")

    for device in devices:
        result = fig3_input_sweep(device, fig3_cfg)
        print(format_table(result))
        print(summarize(result), "\n")

    result = fig4_kernel_sweep("3090ti")
    print(format_table(result))
    print(summarize(result), "\n")

    result = fig5_channel_sweep()
    print(format_table(result))
    print(summarize(result), "\n")

    fig6_cfg = Fig6Config(input_sizes=(16, 48, 96), seeds=(0,)) \
        if quick else None
    for device in devices:
        result = fig6_network_sweep(device, fig6_cfg)
        print(format_table(result))
        print(summarize(result))
        from repro.baselines.registry import ConvAlgorithm
        avg = result.average_speedup_for(ConvAlgorithm.POLYHANKEL)
        print(f"avg speedup over next best = {avg:.2f}\n")

    flops, transactions = fig7_counters()
    print(format_table(flops, precision=0), "\n")
    print(format_table(transactions, precision=0))


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
