"""Per-layer algorithm selection — the paper's future-work heuristic.

Sec. 4.2: "Ideally, heuristics should be developed to choose the best
convolution method for each API invocation."  This example walks a
20-layer synthetic network, asks the cost model for the best algorithm at
every convolution layer, and compares the resulting mixed-algorithm
schedule against forcing any single algorithm network-wide.

Run:  python examples/algorithm_selection.py
"""

from repro.nn.layers import Conv2d
from repro.nn.network import profile_conv_time
from repro.nn.synthetic import synthetic_network
from repro.selection import select_algorithm

DEVICE = "3090ti"
INPUT = (16, 3, 96, 96)


def main() -> None:
    network = synthetic_network(INPUT[2], seed=1)
    shapes = network.layer_shapes(INPUT)

    print(f"per-layer selection on {DEVICE} for input {INPUT}:\n")
    print(f"{'layer':<6}{'conv shape':<30}{'chosen':<24}{'predicted ms':>12}")
    mixed_total = 0.0
    for idx, (layer, shape) in enumerate(zip(network.layers, shapes)):
        if not isinstance(layer, Conv2d):
            continue
        conv_shape = layer.conv_shape(shape)
        result = select_algorithm(conv_shape, DEVICE)
        layer.algorithm = result.algorithm
        mixed_total += result.predicted_ms
        desc = (f"{conv_shape.ih}x{conv_shape.iw} "
                f"k{conv_shape.kh} c{conv_shape.c}->f{conv_shape.f}")
        print(f"{idx:<6}{desc:<30}{result.algorithm.value:<24}"
              f"{result.predicted_ms:>12.3f}")

    print(f"\nmixed schedule total: {mixed_total:.3f} ms")

    print("\nversus forcing one algorithm everywhere:")
    for algo in ("polyhankel", "gemm", "implicit_precomp_gemm", "fft",
                 "winograd"):
        profile = profile_conv_time(network, INPUT, DEVICE, algorithm=algo)
        gain = profile.total_ms / mixed_total
        print(f"  {algo:<22} {profile.total_ms:8.3f} ms "
              f"({gain:4.2f}x the mixed schedule)")


if __name__ == "__main__":
    main()
