"""Classic image filtering with PolyHankel convolution.

Builds a synthetic test image (no external data needed), applies Sobel
edge detection, Gaussian blur and a sharpening kernel via the PolyHankel
path, and verifies each against direct convolution.

Run:  python examples/image_filtering.py
"""

import numpy as np

from repro.baselines import conv2d_naive
from repro.core import conv2d_single


def synthetic_image(size: int = 96) -> np.ndarray:
    """A test card: gradient background, a bright square and a disc."""
    y, x = np.mgrid[0:size, 0:size].astype(float)
    image = 0.3 * (x + y) / (2 * size)
    image[size // 8: size // 3, size // 8: size // 3] += 0.9  # square
    disc = (x - 0.7 * size) ** 2 + (y - 0.65 * size) ** 2 \
        < (size // 6) ** 2
    image[disc] += 0.7
    return image


def gaussian_kernel(size: int = 5, sigma: float = 1.2) -> np.ndarray:
    ax = np.arange(size) - size // 2
    g = np.exp(-(ax ** 2) / (2 * sigma ** 2))
    kernel = np.outer(g, g)
    return kernel / kernel.sum()


SOBEL_X = np.array([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]], dtype=float)
SOBEL_Y = SOBEL_X.T
SHARPEN = np.array([[0, -1, 0], [-1, 5, -1], [0, -1, 0]], dtype=float)


def ascii_render(image: np.ndarray, width: int = 48) -> str:
    """Downsample and render an image as ASCII art."""
    step = max(1, image.shape[0] // width)
    small = image[::step, ::step]
    lo, hi = small.min(), small.max()
    norm = (small - lo) / (hi - lo + 1e-12)
    ramp = " .:-=+*#%@"
    return "\n".join(
        "".join(ramp[int(v * (len(ramp) - 1))] for v in row)
        for row in norm
    )


def main() -> None:
    image = synthetic_image()
    filters = {
        "sobel_x": SOBEL_X,
        "sobel_y": SOBEL_Y,
        "gaussian_blur": gaussian_kernel(),
        "sharpen": SHARPEN,
    }

    print("input image:")
    print(ascii_render(image))

    for name, kernel in filters.items():
        pad = kernel.shape[0] // 2
        out = conv2d_single(image, kernel, padding=pad)
        ref = conv2d_naive(image[None, None], kernel[None, None],
                           padding=pad)[0, 0]
        err = np.abs(out - ref).max()
        print(f"\n{name} (PolyHankel vs direct: max |diff| = {err:.2e}):")
        assert err < 1e-9
        print(ascii_render(np.abs(out) if "sobel" in name else out))

    # Edge magnitude combines both Sobel responses.
    gx = conv2d_single(image, SOBEL_X, padding=1)
    gy = conv2d_single(image, SOBEL_Y, padding=1)
    print("\nedge magnitude:")
    print(ascii_render(np.hypot(gx, gy)))


if __name__ == "__main__":
    main()
