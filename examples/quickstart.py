"""Quickstart: convolve with PolyHankel and check it against the baselines.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro

rng = np.random.default_rng(0)


def main() -> None:
    # An NCHW batch (8 RGB images of 64x64) and 16 5x5 filters.
    x = rng.standard_normal((8, 3, 64, 64))
    w = rng.standard_normal((16, 3, 5, 5)) * 0.1

    # PolyHankel is the default algorithm.
    y = repro.conv2d(x, w, padding=2)
    print(f"output shape: {y.shape}")

    # Every registered algorithm computes the same result.
    print("\ncross-checking all algorithms:")
    shape = repro.ConvShape.from_tensors(x.shape, w.shape, padding=2)
    for algo in repro.list_algorithms():
        if not repro.supports(algo, shape):
            continue
        out = repro.conv2d(x, w, padding=2, algorithm=algo)
        err = np.abs(out - y).max()
        print(f"  {algo.value:<22} max |diff| vs PolyHankel = {err:.2e}")
        assert err < 1e-6

    # Simulated GPU time on the paper's three devices.
    print("\nsimulated GPU time for this call:")
    for device in repro.PAPER_DEVICES:
        ms = {
            algo.value: repro.simulate_gpu_ms(algo, shape, device)
            for algo in (repro.ConvAlgorithm.GEMM, repro.ConvAlgorithm.FFT,
                         repro.ConvAlgorithm.POLYHANKEL)
        }
        pretty = ", ".join(f"{k}={v:.3f}ms" for k, v in ms.items())
        print(f"  {device.name:<15} {pretty}")

    # Ask the cost model which algorithm to use.
    choice = repro.select_algorithm(shape, "v100")
    print(f"\nmodel-selected algorithm on V100: {choice.algorithm.value} "
          f"(predicted {choice.predicted_ms:.3f} ms)")


if __name__ == "__main__":
    main()
