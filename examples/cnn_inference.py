"""CNN inference with a forcible convolution algorithm (the Sec. 4.2 setup).

Builds a LeNet-5 classifier, synthesizes digit-like 28x28 images, runs
inference with each convolution algorithm forced network-wide, verifies the
predictions agree bit-for-bit in argmax, and reports the simulated GPU time
each algorithm would accumulate in the conv operator.

Run:  python examples/cnn_inference.py
"""

import numpy as np

from repro.nn import functional as F
from repro.nn.network import profile_conv_time
from repro.nn.synthetic import lenet5

rng = np.random.default_rng(7)


def synthetic_digits(n: int = 32) -> np.ndarray:
    """Digit-ish 28x28 images: strokes of random lines and arcs."""
    images = np.zeros((n, 1, 28, 28))
    for i in range(n):
        canvas = np.zeros((28, 28))
        for _ in range(rng.integers(2, 5)):
            # A random line segment, drawn with sub-pixel steps.
            x0, y0, x1, y1 = rng.uniform(4, 24, size=4)
            for t in np.linspace(0, 1, 64):
                x = int(x0 + t * (x1 - x0))
                y = int(y0 + t * (y1 - y0))
                canvas[y, x] = 1.0
        # Slight blur to mimic pen strokes.
        padded = np.pad(canvas, 1)
        canvas = sum(
            padded[dy: dy + 28, dx: dx + 28]
            for dy in range(3) for dx in range(3)
        ) / 9.0
        images[i, 0] = canvas
    return images


def main() -> None:
    images = synthetic_digits()
    network = lenet5(seed=0)
    print(f"network: {network}")
    print(f"parameters: {network.param_count():,}")

    baseline_logits = network.set_conv_algorithm("naive")(images)
    baseline_classes = np.argmax(baseline_logits, axis=1)

    print("\nforcing each convolution algorithm network-wide:")
    for algo in ("polyhankel", "gemm", "implicit_precomp_gemm", "fft",
                 "fft_tiling", "winograd", "finegrain_fft"):
        logits = network.set_conv_algorithm(algo)(images)
        classes = np.argmax(logits, axis=1)
        agree = (classes == baseline_classes).mean() * 100
        drift = np.abs(logits - baseline_logits).max()
        print(f"  {algo:<22} argmax agreement {agree:5.1f}%   "
              f"max logit drift {drift:.2e}")
        assert agree == 100.0

    probs = F.softmax(baseline_logits)
    print(f"\nfirst five predictions: {baseline_classes[:5].tolist()} "
          f"(confidence {probs.max(axis=1)[:5].round(3).tolist()})")

    print("\nsimulated conv-operator time per inference pass "
          "(batch 32, V100):")
    for algo in ("polyhankel", "gemm", "fft", "winograd"):
        profile = profile_conv_time(network, images.shape, "v100",
                                    algorithm=algo)
        print(f"  {algo:<12} {profile.total_ms:7.3f} ms "
              f"across {len(profile.per_layer_s)} conv layers")


if __name__ == "__main__":
    main()
