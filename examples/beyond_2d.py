"""PolyHankel beyond 2D: audio (1D) and volumetric (3D) convolution.

The paper's construction is rank-generic (see repro/core/ndim.py).  This
example applies it to

1. a 1D audio-style task — matched filtering: locating a known chirp
   inside a noisy recording; and
2. a 3D volumetric task — detecting a small bright blob inside a noisy
   volume with a 3D Laplacian-of-Gaussian-like kernel.

Run:  python examples/beyond_2d.py
"""

import numpy as np

from repro.core.ndim import (
    conv1d_polyhankel,
    conv3d_polyhankel,
    convnd_naive,
)

rng = np.random.default_rng(3)


def audio_matched_filter() -> None:
    print("=== 1D: matched filtering a chirp in noise ===")
    fs = 1000
    t = np.arange(0, 0.128, 1 / fs)
    chirp = np.sin(2 * np.pi * (40 + 200 * t) * t) * np.hanning(len(t))

    signal = rng.standard_normal(4096) * 0.8
    true_position = 1717
    signal[true_position: true_position + len(chirp)] += chirp

    # Matched filter = correlation with the template.
    response = conv1d_polyhankel(signal[None, None],
                                 chirp[None, None])[0, 0]
    found = int(np.argmax(response))
    print(f"chirp inserted at sample {true_position}, "
          f"matched filter peak at {found}")
    assert abs(found - true_position) <= 2

    reference = convnd_naive(signal[None, None], chirp[None, None])[0, 0]
    print(f"PolyHankel vs direct: max |diff| = "
          f"{np.abs(response - reference).max():.2e}\n")


def volumetric_blob_detection() -> None:
    print("=== 3D: blob detection in a noisy volume ===")
    size = 24
    volume = rng.standard_normal((size, size, size)) * 0.4
    center = (14, 8, 17)
    z, y, x = np.mgrid[0:size, 0:size, 0:size]
    blob = np.exp(-(((z - center[0]) ** 2 + (y - center[1]) ** 2
                     + (x - center[2]) ** 2) / 4.0))
    volume += 2.0 * blob

    # A small 3D Gaussian detector kernel.
    r = np.arange(5) - 2
    zz, yy, xx = np.meshgrid(r, r, r, indexing="ij")
    kernel = np.exp(-(zz ** 2 + yy ** 2 + xx ** 2) / 2.0)
    kernel /= kernel.sum()

    response = conv3d_polyhankel(volume[None, None], kernel[None, None],
                                 padding=2)[0, 0]
    found = np.unravel_index(np.argmax(response), response.shape)
    print(f"blob at {center}, detector peak at {tuple(map(int, found))}")
    assert all(abs(a - b) <= 1 for a, b in zip(found, center))

    reference = convnd_naive(volume[None, None], kernel[None, None],
                             padding=2)[0, 0]
    print(f"PolyHankel vs direct: max |diff| = "
          f"{np.abs(response - reference).max():.2e}\n")


def multichannel_3d() -> None:
    print("=== 3D multichannel: tiny video-feature layer ===")
    clips = rng.standard_normal((2, 3, 8, 16, 16))   # (n, c, t, h, w)
    filters = rng.standard_normal((4, 3, 3, 3, 3)) * 0.2
    features = conv3d_polyhankel(clips, filters, padding=1)
    reference = convnd_naive(clips, filters, padding=1)
    err = np.abs(features - reference).max()
    print(f"feature maps: {features.shape}, max |diff| vs direct = "
          f"{err:.2e}")
    assert err < 1e-8


if __name__ == "__main__":
    audio_matched_filter()
    volumetric_blob_detection()
    multichannel_3d()
