"""Train a CNN whose convolutions — forward AND backward — run through
PolyHankel.

A three-class shape classifier (squares vs discs vs crosses on noisy
backgrounds), trained from scratch with the library's tape-based autograd.
Both convolution backward passes are themselves convolutions and are
computed with the PolyHankel algorithm, demonstrating that the method is a
complete drop-in for training, not only inference.

Run:  python examples/train_cnn.py
"""

import numpy as np

from repro.nn import autograd as ag

rng = np.random.default_rng(42)

IMAGE = 16
CLASSES = 3


def make_shape_image(label: int) -> np.ndarray:
    """One noisy 16x16 image containing a square, a disc or a cross."""
    canvas = rng.standard_normal((IMAGE, IMAGE)) * 0.15
    cy, cx = rng.integers(5, IMAGE - 5, size=2)
    r = rng.integers(3, 5)
    y, x = np.mgrid[0:IMAGE, 0:IMAGE]
    if label == 0:      # square
        mask = (abs(y - cy) <= r) & (abs(x - cx) <= r)
    elif label == 1:    # disc
        mask = (y - cy) ** 2 + (x - cx) ** 2 <= r * r
    else:               # cross
        mask = (abs(y - cy) <= 1) | (abs(x - cx) <= 1)
    canvas[mask] += 1.0
    return canvas


def make_dataset(n: int) -> tuple[np.ndarray, np.ndarray]:
    labels = rng.integers(0, CLASSES, size=n)
    images = np.stack([make_shape_image(int(l)) for l in labels])
    return images[:, None, :, :], labels


class TinyCnn:
    """conv(1->8,3x3) -> relu -> pool2 -> conv(8->16,3x3) -> relu ->
    pool2 -> linear(256 -> 3)."""

    def __init__(self):
        self.w1 = ag.parameter(rng.standard_normal((8, 1, 3, 3)) * 0.4)
        self.b1 = ag.parameter(np.zeros(8))
        self.w2 = ag.parameter(rng.standard_normal((16, 8, 3, 3)) * 0.15)
        self.b2 = ag.parameter(np.zeros(16))
        self.w3 = ag.parameter(
            rng.standard_normal((CLASSES, 16 * 4 * 4)) * 0.1)
        self.b3 = ag.parameter(np.zeros(CLASSES))

    def parameters(self):
        return [self.w1, self.b1, self.w2, self.b2, self.w3, self.b3]

    def __call__(self, x: np.ndarray) -> ag.Tensor:
        h = ag.relu(ag.conv2d(ag.Tensor(x), self.w1, self.b1, padding=1,
                              algorithm="polyhankel"))
        h = ag.max_pool2d(h, 2)
        h = ag.relu(ag.conv2d(h, self.w2, self.b2, padding=1,
                              algorithm="polyhankel"))
        h = ag.max_pool2d(h, 2)
        return ag.linear(ag.flatten(h), self.w3, self.b3)


def accuracy(model: TinyCnn, x: np.ndarray, labels: np.ndarray) -> float:
    preds = np.argmax(model(x).data, axis=1)
    return float((preds == labels).mean())


def main() -> None:
    train_x, train_y = make_dataset(240)
    test_x, test_y = make_dataset(60)

    model = TinyCnn()
    optimizer = ag.SGD(model.parameters(), lr=0.05, momentum=0.9)
    batch = 24

    print(f"training on {len(train_y)} images, testing on {len(test_y)}")
    print(f"initial test accuracy: {accuracy(model, test_x, test_y):.2f}")

    for epoch in range(6):
        order = rng.permutation(len(train_y))
        losses = []
        for start in range(0, len(order), batch):
            idx = order[start: start + batch]
            optimizer.zero_grad()
            loss = ag.cross_entropy(model(train_x[idx]), train_y[idx])
            loss.backward()
            optimizer.step()
            losses.append(float(loss.data))
        print(f"epoch {epoch + 1}: loss {np.mean(losses):.3f}  "
              f"train acc {accuracy(model, train_x, train_y):.2f}  "
              f"test acc {accuracy(model, test_x, test_y):.2f}")

    final = accuracy(model, test_x, test_y)
    print(f"\nfinal test accuracy: {final:.2f}")
    assert final > 0.7, "training through PolyHankel should converge"


if __name__ == "__main__":
    main()
