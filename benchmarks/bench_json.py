#!/usr/bin/env python
"""Standalone entry point for the JSON wall-clock benchmark suite.

Equivalent to ``python -m repro bench``; exists so CI and scripts can run

    python benchmarks/bench_json.py --smoke

without knowing the package CLI.  The ``--smoke`` subset is also wired
into the test suite as a ``slow``-marked test
(``tests/test_bench_json.py``), excluded from the tier-1 run.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
