"""Real wall-clock microbenchmarks of the NumPy implementations.

These complement the simulated-GPU figures: they time the library's actual
numeric kernels on this machine.  Absolute numbers are CPU-bound and not
comparable to the paper's GPUs, but they make regressions in the
implementations visible.
"""

import pytest

from repro.baselines.registry import ConvAlgorithm as A
from repro.baselines.registry import convolve, supports
from repro.utils.random import random_problem
from repro.utils.shapes import ConvShape

SHAPE = ConvShape(ih=64, iw=64, kh=5, kw=5, n=4, c=3, f=8, padding=2)
SMALL = ConvShape(ih=16, iw=16, kh=3, kw=3, n=4, c=3, f=8, padding=1)

ALGOS = [A.GEMM, A.IMPLICIT_GEMM, A.IMPLICIT_PRECOMP_GEMM, A.FFT,
         A.FFT_TILING, A.WINOGRAD, A.FINEGRAIN_FFT, A.POLYHANKEL,
         A.POLYHANKEL_OS]


@pytest.mark.parametrize("algo", ALGOS, ids=lambda a: a.value)
def test_conv_wallclock_64(benchmark, algo):
    x, w = random_problem(SHAPE)
    benchmark.pedantic(
        lambda: convolve(x, w, algorithm=algo, padding=SHAPE.padding),
        rounds=3, iterations=1, warmup_rounds=1,
    )


@pytest.mark.parametrize("algo", [A.POLYHANKEL, A.GEMM, A.WINOGRAD],
                         ids=lambda a: a.value)
def test_conv_wallclock_small(benchmark, algo):
    x, w = random_problem(SMALL)
    benchmark.pedantic(
        lambda: convolve(x, w, algorithm=algo, padding=SMALL.padding),
        rounds=5, iterations=2, warmup_rounds=1,
    )


def test_polyhankel_plan_reuse_wallclock(benchmark):
    """The plan-cached inference path: weight transformed once."""
    from repro.core.multichannel import PolyHankelPlan

    x, w = random_problem(SHAPE)
    plan = PolyHankelPlan(SHAPE)
    w_hat = plan.transform_weight(w)
    benchmark.pedantic(lambda: plan.execute(x, w_hat),
                       rounds=5, iterations=1, warmup_rounds=1)


def test_builtin_fft_backend_wallclock(benchmark):
    """The from-scratch FFT substrate end to end (slower than pocketfft,
    but self-contained)."""
    x, w = random_problem(SMALL)
    benchmark.pedantic(
        lambda: convolve(x, w, algorithm=A.POLYHANKEL,
                         padding=SMALL.padding, backend="builtin"),
        rounds=3, iterations=1, warmup_rounds=1,
    )
