"""Ablation: overlap-save batch streaming vs one monolithic FFT per image.

Sec. 3.2 adopts overlap-save for batching.  The tradeoff: streamed blocks
keep the FFT size tied to the kernel vector (small, cache-friendly) but
discard the block overlap; the monolithic path transforms each padded
image once at full length.
"""

import numpy as np
import pytest

from repro.core.multichannel import conv2d_polyhankel
from repro.core.overlap_save import conv2d_polyhankel_os
from repro.perfmodel.counters import polyhankel_block_size
from repro.utils.random import random_problem
from repro.utils.shapes import ConvShape

SHAPE = ConvShape(ih=32, iw=32, kh=3, kw=3, n=8, c=2, f=2, padding=1)


@pytest.mark.parametrize("impl", ["monolithic", "overlap_save"])
def test_execution_strategy_wallclock(benchmark, impl):
    x, w = random_problem(SHAPE)
    fn = conv2d_polyhankel if impl == "monolithic" else conv2d_polyhankel_os
    benchmark.pedantic(lambda: fn(x, w, padding=SHAPE.padding),
                       rounds=3, iterations=1, warmup_rounds=1)


def test_block_size_tracks_kernel_not_input(benchmark, record_result):
    """The paper's Fig. 4 mechanism: the OS FFT size is set by the kernel
    vector, so it is invariant to input size and grows with kernel size."""
    def sizes():
        by_input = [polyhankel_block_size(
            ConvShape(ih=s, iw=64, kh=3, kw=3)) for s in (16, 64, 256)]
        by_kernel = [polyhankel_block_size(
            ConvShape(ih=64, iw=64, kh=k, kw=k)) for k in (3, 9, 21)]
        return by_input, by_kernel

    by_input, by_kernel = benchmark.pedantic(sizes, rounds=1, iterations=1)
    record_result("ablation_overlap_save",
                  f"block size by input height (iw=64, k=3): {by_input}\n"
                  f"block size by kernel size (64x64): {by_kernel}")

    assert len(set(by_input)) == 1          # invariant to input size
    assert by_kernel == sorted(by_kernel)   # grows with kernel size
    assert by_kernel[-1] > by_kernel[0]


def test_equivalence_across_batch_sizes(benchmark):
    results = []

    def run():
        for n in (1, 3, 8):
            shape = SHAPE.with_(n=n)
            x, w = random_problem(shape, seed=n)
            a = conv2d_polyhankel(x, w, padding=1)
            b = conv2d_polyhankel_os(x, w, padding=1)
            results.append((a, b))

    benchmark.pedantic(run, rounds=1, iterations=1)
    for a, b in results:
        np.testing.assert_allclose(a, b, atol=1e-8)
