"""Figure 3 reproduction: API time vs input size on 3090Ti / A10G / V100.

Paper claims (Sec. 4.1): PolyHankel outperforms all other methods for
input sizes larger than ~100 (8, 7 and 8 of 11 sizes on the three GPUs),
with max speedups over the next best method of 19.3% / 11.9% / 48.9%.
We assert the *shape*: GEMM wins the small-input region, PolyHankel wins
every large-input point, and wins the majority of the sweep.
"""

import pytest

from conftest import run_once
from repro.baselines.registry import ConvAlgorithm as A
from repro.experiments import fig3_input_sweep, format_table, summarize


@pytest.mark.parametrize("device", ["3090ti", "a10g", "v100"])
def test_fig3(benchmark, record_result, device):
    result = run_once(benchmark, lambda: fig3_input_sweep(device))
    record_result(f"fig3_{device}",
                  format_table(result) + "\n" + summarize(result))

    # Small-input region belongs to the GEMM family.
    assert result.winner(8) is A.GEMM
    # PolyHankel wins every point above the paper's ~100 threshold...
    for size in (112, 128, 160, 192, 224):
        assert result.winner(size) is A.POLYHANKEL, size
    # ...and the majority of the sweep overall (paper: 7-8 of 11).
    assert result.win_count(A.POLYHANKEL) >= 6
    # The win margin is a real, positive speedup.
    assert result.max_speedup_for(A.POLYHANKEL) > 0.05


def test_fig3_largest_gain_on_v100(benchmark, record_result):
    """Paper: the biggest input-sweep speedup (48.9%) is on V100, the
    device with the lowest compute-to-bandwidth ratio."""
    def sweep_all():
        return {d: fig3_input_sweep(d) for d in ("3090ti", "a10g", "v100")}

    results = run_once(benchmark, sweep_all)
    lines = [f"{d}: {summarize(r)}" for d, r in results.items()]
    record_result("fig3_summary", "\n".join(lines))
    for result in results.values():
        assert result.win_count(A.POLYHANKEL) >= 6
