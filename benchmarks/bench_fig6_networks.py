"""Figure 6 reproduction: end-to-end conv time in 20-layer networks.

Paper claims (Sec. 4.2): with one convolution algorithm forced through a
20-layer synthetic network, PolyHankel's accumulated conv-operator time
beats the next best cuDNN method with average speedups of 1.36 / 1.59 /
2.08 on 3090Ti / A10G / V100, over input sizes up to ~112.
"""

import pytest

from conftest import run_once
from repro.baselines.registry import ConvAlgorithm as A
from repro.experiments import fig6_network_sweep, format_table, summarize

PAPER_AVG_SPEEDUP = {"3090ti": 1.36, "a10g": 1.59, "v100": 2.08}


@pytest.mark.parametrize("device", ["3090ti", "a10g", "v100"])
def test_fig6(benchmark, record_result, device):
    result = run_once(benchmark, lambda: fig6_network_sweep(device))
    avg = result.average_speedup_for(A.POLYHANKEL)
    record_result(
        f"fig6_{device}",
        format_table(result) + "\n" + summarize(result)
        + f"\navg speedup over next best = {avg:.2f} "
        f"(paper: {PAPER_AVG_SPEEDUP[device]:.2f})",
    )

    # PolyHankel wins the majority of input sizes end-to-end.
    assert result.win_count(A.POLYHANKEL) >= len(result.x_values) // 2 + 1
    # Average speedup over the next best method is > 1 (paper: 1.36-2.08).
    assert avg > 1.0


def test_fig6_mixed_parameter_fluctuations(benchmark):
    """The paper attributes per-size fluctuations to each network calling
    convolution with widely different parameters; accordingly the best
    method is not constant across every (size, seed) combination for the
    cuDNN methods."""
    result = run_once(benchmark, lambda: fig6_network_sweep("3090ti"))
    cudnn = [m for m in result.methods if m is not A.POLYHANKEL]
    ratios = [
        result.value(x, cudnn[0]) / result.value(x, cudnn[1])
        for x in result.x_values
    ]
    assert max(ratios) / min(ratios) > 1.05
