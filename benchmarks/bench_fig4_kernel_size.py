"""Figure 4 reproduction: API time vs kernel size on the three GPUs.

Paper claims (Sec. 4.1): PolyHankel has notable speedups for kernel sizes
below ~15 (max speedups 34.6% / 43.1% / 33.6%); its cost grows with kernel
size because the FFT block size is tied to the kernel vector; cuDNN's FFT
is insensitive to kernel size; im2col+GEMM degrades quadratically; Winograd
contributes a single 3x3 point.  Our calibrated crossover sits near k=25
instead of ~15 — recorded in EXPERIMENTS.md.
"""

import pytest

from conftest import run_once
from repro.baselines.registry import ConvAlgorithm as A
from repro.experiments import fig4_kernel_sweep, format_table, summarize


@pytest.mark.parametrize("device", ["3090ti", "a10g", "v100"])
def test_fig4(benchmark, record_result, device):
    result = run_once(benchmark, lambda: fig4_kernel_sweep(device))
    record_result(f"fig4_{device}",
                  format_table(result) + "\n" + summarize(result))

    # PolyHankel dominates the small/medium kernel region (paper: < 15).
    for k in (4, 6, 8, 10, 12, 14):
        assert result.winner(k) is A.POLYHANKEL, k
    # Past the crossover PolyHankel is no longer the winner.
    assert result.winner(25) is not A.POLYHANKEL

    # GEMM degrades roughly quadratically with kernel size.
    assert result.value(20, A.GEMM) > 6 * result.value(4, A.GEMM)
    # The FFT method is insensitive to kernel size (flat line).
    fft = [result.value(k, A.FFT) for k in (4, 10, 16, 22)]
    assert max(fft) < 1.2 * min(fft)
    # PolyHankel's cost grows with the kernel vector size.
    assert result.value(25, A.POLYHANKEL) > result.value(4, A.POLYHANKEL)


def test_fig4_winograd_single_point(benchmark):
    """cuDNN supports Winograd only for 3x3: exactly one data point."""
    result = run_once(benchmark, lambda: fig4_kernel_sweep("3090ti"))
    wino_points = [k for k in result.x_values
                   if (k, A.WINOGRAD) in result.values]
    assert wino_points == [3]
