"""Table 2 reproduction: time-complexity expressions vs counted FLOPs.

The paper's Table 2 gives closed-form operation counts for im2col+MM,
traditional FFT, fine-grain FFT and PolyHankel.  We evaluate each
expression over an input-size sweep and compare its growth against the
concrete counter model's growth — they must agree up to the constant
factors asymptotic expressions drop.
"""

from conftest import run_once
from repro.experiments import TIME_ROWS, complexity_report, scaling_ratio
from repro.utils.shapes import ConvShape

SHAPES = [ConvShape(ih=s, iw=s, kh=5, kw=5, n=1, c=1, f=1, padding=2)
          for s in (32, 64, 128, 224)]


def test_table2_growth_agreement(benchmark, record_result):
    report = run_once(benchmark,
                      lambda: complexity_report(TIME_ROWS, SHAPES))
    record_result("table2_time_complexity", report)

    for row in TIME_ROWS:
        sym, meas = scaling_ratio(row, SHAPES[0], SHAPES[-1])
        # Growth factors agree up to constant factors across a 7x
        # input-size range (the FFT rows quantize to power-of-two sizes,
        # which the smooth expressions do not capture — hence the slack).
        assert 0.35 * sym <= meas <= 2.5 * sym, row.method


def test_table2_ranking_at_large_sizes(benchmark):
    """The table's qualitative claim: PolyHankel needs far fewer
    operations than the traditional (2D) FFT method."""
    shape = ConvShape(ih=224, iw=224, kh=5, kw=5, n=1, c=1, f=1, padding=2)

    def evaluate():
        return {row.method: row.measured(shape) for row in TIME_ROWS}

    measured = run_once(benchmark, evaluate)
    from repro.baselines.registry import ConvAlgorithm as A
    assert measured[A.POLYHANKEL] < measured[A.FFT]


def test_table2_kernel_size_sensitivity(benchmark):
    """Table 2 structure: GEMM's count scales with Kh*Kw; PolyHankel's only
    via the (Kh*Iw) term inside the log/linear factors."""
    small = ConvShape(ih=64, iw=64, kh=3, kw=3, n=1, c=1, f=1, padding=1)
    big = ConvShape(ih=64, iw=64, kh=9, kw=9, n=1, c=1, f=1, padding=4)

    def ratios():
        from repro.baselines.registry import ConvAlgorithm as A
        from repro.perfmodel.counters import count
        return {
            "gemm": count(A.GEMM, big).flops / count(A.GEMM, small).flops,
            "poly": count(A.POLYHANKEL, big).flops
            / count(A.POLYHANKEL, small).flops,
        }

    r = run_once(benchmark, ratios)
    assert r["gemm"] > 6.0       # ~9x from the kernel-area term
    assert r["poly"] < 3.0       # much gentler growth
