"""Figure 5 reproduction: API time vs channel count on 3090Ti.

Paper claims (Sec. 4.1): with input 112x112 and kernel 3x3, PolyHankel
"generally outperforms all cuDNN's methods" over channel counts 1..128,
and no single cuDNN method is best across all channel counts.  In our
calibrated model PolyHankel is strictly best at high channel counts and
within a few percent of the best cuDNN method in the low/mid range —
recorded in EXPERIMENTS.md.
"""

from conftest import run_once
from repro.baselines.registry import ConvAlgorithm as A
from repro.experiments import fig5_channel_sweep, format_table, summarize


def test_fig5(benchmark, record_result):
    result = run_once(benchmark, fig5_channel_sweep)
    record_result("fig5_3090ti",
                  format_table(result) + "\n" + summarize(result))

    # PolyHankel wins outright at high channel counts.
    assert result.winner(128) is A.POLYHANKEL
    # And is never far from the best method anywhere in the sweep (the
    # 1-2 channel points are launch-overhead dominated in our model, where
    # the tiny implicit-GEMM kernel is hard to beat; see EXPERIMENTS.md).
    for c in result.x_values:
        best = result.value(c, result.winner(c))
        poly = result.value(c, A.POLYHANKEL)
        slack = 2.5 if c <= 2 else 1.6
        assert poly <= slack * best, c

    # No single cuDNN method is best across all channel counts (the
    # paper's "quite diverse performance trends").
    cudnn = [m for m in result.methods if m is not A.POLYHANKEL]
    cudnn_winners = set()
    for c in result.x_values:
        cudnn_winners.add(min(cudnn, key=lambda m: result.value(c, m)))
    assert len(cudnn_winners) >= 2


def test_fig5_scaling_is_roughly_linear_in_channels(benchmark):
    """Both axes of the paper's plot are log scale; every method's time
    grows superlinearly-but-polynomially with channels (f = c so the work
    is quadratic in the sweep variable; no method explodes)."""
    result = run_once(benchmark, fig5_channel_sweep)
    for method in result.methods:
        t1 = result.value(8, method)
        t16 = result.value(128, method)
        assert 2 <= t16 / t1 <= 400, method
