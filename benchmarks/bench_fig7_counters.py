"""Figure 7 reproduction: performance-counter profiles on A10G.

Paper claims (Sec. 4.3): PolyHankel typically has the lowest FLOP count
and the lowest number of memory transactions; im2col (GEMM) has low FLOPs
but the highest memory transactions; the FFT method is the opposite (high
FLOPs, low transactions); and the counters align with execution time.
"""

from conftest import run_once
from repro.baselines.registry import ConvAlgorithm as A
from repro.experiments import fig3_input_sweep, fig7_counters, format_table

LARGE_SIZES = (112, 128, 160, 192, 224)


def test_fig7_flops(benchmark, record_result):
    flops, _ = run_once(benchmark, fig7_counters)
    record_result("fig7a_flops", format_table(flops, precision=0))

    for size in LARGE_SIZES:
        poly = flops.value(size, A.POLYHANKEL)
        # PolyHankel at or near the bottom: strictly below GEMM/Winograd...
        assert poly < flops.value(size, A.GEMM)
        assert poly < flops.value(size, A.WINOGRAD)
        # ...and never above the FFT method by a meaningful margin.
        assert poly < 1.15 * flops.value(size, A.FFT)


def test_fig7_transactions(benchmark, record_result):
    _, tx = run_once(benchmark, fig7_counters)
    record_result("fig7b_transactions", format_table(tx, precision=0))

    for size in LARGE_SIZES:
        gemm = tx.value(size, A.GEMM)
        # GEMM has the highest transaction counts of the cuDNN trio (the
        # size-128 point sits exactly on the FFT's power-of-two padding
        # jump, so it is excluded from the GEMM-vs-FFT comparison).
        if size != 128:
            assert gemm > tx.value(size, A.FFT)
        assert gemm > tx.value(size, A.POLYHANKEL)
        # PolyHankel sits at/near the bottom.
        poly = tx.value(size, A.POLYHANKEL)
        others = [tx.value(size, m) for m in (A.GEMM, A.FFT, A.WINOGRAD)]
        assert all(poly < o for o in others)


def test_fig7_counters_align_with_time(benchmark):
    """Sec. 4.3: 'the memory performance and the operational performance
    align well with the execution time'.  Concretely: at every large input
    size, the time winner ranks in the bottom two methods on *both*
    counters — it never wins by excelling at only one of the two walls."""
    flops, tx = run_once(benchmark, fig7_counters)
    times = fig3_input_sweep("a10g")
    for size in LARGE_SIZES:
        winner = times.winner(size)
        methods = [m for m in flops.methods if (size, m) in flops.values]
        flop_rank = sorted(methods, key=lambda m: flops.value(size, m))
        tx_rank = sorted(methods, key=lambda m: tx.value(size, m))
        assert winner in flop_rank[:2], size
        assert winner in tx_rank[:2], size
