"""Numerical accuracy of each algorithm (not in the paper, but the reason
cuDNN caps Winograd at 3x3: transform conditioning).

Measures max relative error against the direct float64 computation.  The
FFT-family methods stay near machine precision at any kernel size, while
Winograd's generated F(2, r) transforms lose digits as r grows — the
quantitative justification for the MAX_ALPHA guard and cuDNN's restriction.
"""

import numpy as np
import pytest

from repro.baselines.registry import ConvAlgorithm as A
from repro.baselines.registry import convolve, supports
from repro.utils.random import random_problem
from repro.utils.shapes import ConvShape


def relative_error(algorithm, shape: ConvShape) -> float:
    x, w = random_problem(shape)
    reference = convolve(x, w, algorithm=A.NAIVE, padding=shape.padding)
    out = convolve(x, w, algorithm=algorithm, padding=shape.padding)
    scale = np.abs(reference).max()
    return float(np.abs(out - reference).max() / scale)


def test_accuracy_by_algorithm(benchmark, record_result):
    shape = ConvShape(ih=24, iw=24, kh=5, kw=5, n=2, c=3, f=4, padding=2)

    def measure():
        errors = {}
        for algo in (A.GEMM, A.IMPLICIT_GEMM, A.FFT, A.FFT_TILING,
                     A.WINOGRAD, A.FINEGRAIN_FFT, A.POLYHANKEL,
                     A.POLYHANKEL_OS):
            if supports(algo, shape):
                errors[algo] = relative_error(algo, shape)
        return errors

    errors = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = "\n".join(f"{a.value:<22} {e:.3e}" for a, e in errors.items())
    record_result("numerical_accuracy_k5", f"max relative error, 24x24 "
                  f"input, 5x5 kernel:\n{text}")

    # Everything is acceptably accurate at this size...
    for algo, err in errors.items():
        assert err < 1e-6, algo
    # ...and the FFT-family methods sit near machine precision.
    for algo in (A.FFT, A.POLYHANKEL):
        assert errors[algo] < 1e-10


def test_winograd_error_grows_with_kernel_size(benchmark, record_result):
    def measure():
        rows = []
        for k in (2, 3, 5, 7):
            shape = ConvShape(ih=20, iw=20, kh=k, kw=k, n=1, c=2, f=2)
            rows.append((k, relative_error(A.WINOGRAD, shape),
                         relative_error(A.POLYHANKEL, shape)))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = "kernel  winograd_err  polyhankel_err\n" + "\n".join(
        f"{k:<7} {we:.3e}     {pe:.3e}" for k, we, pe in rows
    )
    record_result("numerical_accuracy_winograd", text)

    wino = [we for _, we, _ in rows]
    poly = [pe for _, _, pe in rows]
    # Winograd loses accuracy with r (even with exact-rational transform
    # generation and well-conditioned points); PolyHankel does not.
    assert wino[-1] > 10 * wino[0]
    assert max(poly) < 1e-10
    assert wino[-1] > 10 * poly[-1]


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_polyhankel_accuracy_by_dtype(benchmark, dtype):
    """Input dtype does not break the pipeline; float32 inputs keep
    ~float32-level agreement with the float64 reference."""
    shape = ConvShape(ih=16, iw=16, kh=3, kw=3, n=2, c=2, f=2, padding=1)

    def measure():
        x, w = random_problem(shape, dtype=dtype)
        ref = convolve(np.asarray(x, np.float64),
                       np.asarray(w, np.float64),
                       algorithm=A.NAIVE, padding=1)
        out = convolve(x, w, algorithm=A.POLYHANKEL, padding=1)
        return float(np.abs(out - ref).max() / np.abs(ref).max())

    err = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert err < (1e-5 if dtype == np.float32 else 1e-12)
