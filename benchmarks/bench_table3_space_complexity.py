"""Table 3 reproduction: space-complexity expressions vs modeled workspace.

Table 3 gives each method's extra storage: the im2col matrix for GEMM, the
padded complex planes for the FFT methods, and the padded 1D polynomials
for PolyHankel.
"""

from conftest import run_once
from repro.baselines.registry import ConvAlgorithm as A
from repro.experiments import SPACE_ROWS, complexity_report, scaling_ratio
from repro.perfmodel.counters import count
from repro.utils.shapes import ConvShape

SHAPES = [ConvShape(ih=s, iw=s, kh=5, kw=5, n=1, c=1, f=1, padding=2)
          for s in (32, 64, 128, 224)]


def test_table3_growth_agreement(benchmark, record_result):
    report = run_once(benchmark,
                      lambda: complexity_report(SPACE_ROWS, SHAPES))
    record_result("table3_space_complexity", report)

    for row in SPACE_ROWS:
        sym, meas = scaling_ratio(row, SHAPES[0], SHAPES[-1])
        assert 0.4 * sym <= meas <= 2.5 * sym, row.method


def test_table3_im2col_redundancy_dominates(benchmark):
    """Table 3's headline: the im2col workspace (Kh*Kw*Oh*Ow) dwarfs every
    FFT-family footprint by roughly the kernel-area factor."""
    shape = ConvShape(ih=128, iw=128, kh=5, kw=5, n=1, c=1, f=1, padding=2)

    def workspaces():
        return {row.method: row.measured(shape) for row in SPACE_ROWS}

    ws = run_once(benchmark, workspaces)
    assert ws[A.GEMM] > 3 * ws[A.POLYHANKEL]
    assert ws[A.GEMM] > 3 * ws[A.FFT]


def test_table3_polyhankel_workspace_linear_in_input(benchmark):
    """PolyHankel's footprint is ~3*(Ih*Iw + Kh*Iw): linear in the input
    area, independent of Kw."""
    def ratio():
        a = count(A.POLYHANKEL,
                  ConvShape(ih=64, iw=64, kh=5, kw=5, padding=2))
        b = count(A.POLYHANKEL,
                  ConvShape(ih=128, iw=128, kh=5, kw=5, padding=2))
        return b.workspace_bytes / a.workspace_bytes

    r = run_once(benchmark, ratio)
    assert 2.0 < r < 8.0  # ~4x for a 4x input-area increase
