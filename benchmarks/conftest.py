"""Benchmark harness configuration.

Every ``bench_*`` module regenerates one of the paper's tables or figures.
Figure sweeps run through the ``benchmark`` fixture (so the suite works
under ``--benchmark-only``) with a single round — the interesting output is
the sweep data, which is printed and also written to
``benchmarks/results/`` for EXPERIMENTS.md.
"""

import pathlib

import numpy as np
import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


collect_ignore_glob: list[str] = []


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20250301)


@pytest.fixture
def record_result():
    """Write a named text artifact under benchmarks/results/."""

    def _record(name: str, text: str) -> pathlib.Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")
        return path

    return _record


def run_once(benchmark, fn):
    """Run *fn* exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
