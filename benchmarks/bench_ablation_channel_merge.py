"""Ablation: the two multi-channel strategies of Sec. 3.2.

The paper chose "FFT each input channel individually and sum their outputs"
over "merge all input channels and FFT the merged polynomial" after finding
that larger FFTs cost more than the channel summation saves.  This ablation
reproduces that comparison, both analytically (FFT sizes) and in wall
clock.
"""

import numpy as np
import pytest

from repro.core.multichannel import PolyHankelPlan, conv2d_polyhankel
from repro.utils.random import random_problem
from repro.utils.shapes import ConvShape

SHAPE = ConvShape(ih=32, iw=32, kh=3, kw=3, n=2, c=8, f=8, padding=1)


@pytest.mark.parametrize("strategy", ["sum", "merge"])
def test_strategy_wallclock(benchmark, strategy):
    x, w = random_problem(SHAPE)
    benchmark.pedantic(
        lambda: conv2d_polyhankel(x, w, padding=SHAPE.padding,
                                  strategy=strategy),
        rounds=3, iterations=1, warmup_rounds=1,
    )


def test_merge_needs_c_times_larger_fft(benchmark, record_result):
    """The analytic core of the paper's decision: the merged polynomial's
    FFT is ~C times the per-channel FFT."""
    def plan_sizes():
        rows = []
        for c in (1, 2, 4, 8, 16):
            shape = SHAPE.with_(c=c, f=c)
            nfft_sum = PolyHankelPlan(shape, strategy="sum").nfft
            nfft_merge = PolyHankelPlan(shape, strategy="merge").nfft
            rows.append((c, nfft_sum, nfft_merge))
        return rows

    rows = benchmark.pedantic(plan_sizes, rounds=1, iterations=1)
    text = "channels  nfft_sum  nfft_merge\n" + "\n".join(
        f"{c:<9} {a:<9} {b}" for c, a, b in rows
    )
    record_result("ablation_channel_merge", text)

    for c, nfft_sum, nfft_merge in rows:
        assert nfft_merge >= c * nfft_sum / 2, c
        # n log n: the merged transform does strictly more work per output
        # than C independent smaller transforms once C > 1.
        if c > 1:
            merged_work = nfft_merge * np.log2(nfft_merge)
            summed_work = c * nfft_sum * np.log2(nfft_sum)
            assert merged_work > summed_work


def test_strategies_numerically_identical(benchmark):
    x, w = random_problem(SHAPE)
    out = benchmark.pedantic(
        lambda: (conv2d_polyhankel(x, w, padding=1, strategy="sum"),
                 conv2d_polyhankel(x, w, padding=1, strategy="merge")),
        rounds=1, iterations=1,
    )
    np.testing.assert_allclose(out[0], out[1], atol=1e-8)
