"""Wall-clock benchmarks for the library extensions beyond the paper:
1D/3D convolution, gradient computation, autograd training steps, and the
auto/tuned dispatch paths.
"""

import numpy as np
import pytest

from repro.core.ndim import conv1d_polyhankel, conv3d_polyhankel
from repro.nn import autograd as ag
from repro.nn.grad import conv2d_backward_input, conv2d_backward_weight
from repro.utils.random import random_problem
from repro.utils.shapes import ConvShape

rng = np.random.default_rng(1)


def test_conv1d_wallclock(benchmark):
    x = rng.standard_normal((8, 4, 4096))
    w = rng.standard_normal((8, 4, 31))
    benchmark.pedantic(lambda: conv1d_polyhankel(x, w, padding=15),
                       rounds=3, iterations=1, warmup_rounds=1)


def test_conv3d_wallclock(benchmark):
    x = rng.standard_normal((2, 2, 12, 24, 24))
    w = rng.standard_normal((4, 2, 3, 3, 3))
    benchmark.pedantic(lambda: conv3d_polyhankel(x, w, padding=1),
                       rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("which", ["input", "weight"])
def test_backward_wallclock(benchmark, which):
    shape = ConvShape(ih=32, iw=32, kh=3, kw=3, n=4, c=8, f=8, padding=1)
    x, w = random_problem(shape)
    g = rng.standard_normal(shape.output_shape())
    if which == "input":
        fn = lambda: conv2d_backward_input(g, w, x.shape, 1, 1)
    else:
        fn = lambda: conv2d_backward_weight(g, x, (3, 3), 1, 1)
    benchmark.pedantic(fn, rounds=3, iterations=1, warmup_rounds=1)


def test_training_step_wallclock(benchmark):
    """One full forward+backward+SGD step of a small CNN, every
    convolution through PolyHankel."""
    x = rng.standard_normal((8, 1, 16, 16))
    labels = rng.integers(0, 3, size=8)
    w1 = ag.parameter(rng.standard_normal((4, 1, 3, 3)) * 0.3)
    w2 = ag.parameter(rng.standard_normal((3, 4 * 8 * 8)) * 0.1)
    opt = ag.SGD([w1, w2], lr=0.01)

    def step():
        opt.zero_grad()
        h = ag.relu(ag.conv2d(ag.Tensor(x), w1, padding=1))
        h = ag.max_pool2d(h, 2)
        loss = ag.cross_entropy(ag.linear(ag.flatten(h), w2), labels)
        loss.backward()
        opt.step()
        return float(loss.data)

    benchmark.pedantic(step, rounds=3, iterations=1, warmup_rounds=1)


def test_auto_dispatch_overhead(benchmark):
    """algorithm='auto' adds only the O(1) rule evaluation."""
    from repro.nn import functional as F

    shape = ConvShape(ih=24, iw=24, kh=3, kw=3, n=2, c=2, f=4, padding=1)
    x, w = random_problem(shape)
    benchmark.pedantic(
        lambda: F.conv2d(x, w, padding=1, algorithm="auto"),
        rounds=5, iterations=2, warmup_rounds=1,
    )


def test_plan_cache_ablation(benchmark, record_result):
    """Plan reuse: repeated PolyHankel calls on one shape skip replanning
    and (for frozen weights) the kernel transform."""
    import time

    from repro.core.multichannel import (
        PolyHankelPlan, clear_plan_cache, conv2d_polyhankel,
    )

    shape = ConvShape(ih=48, iw=48, kh=3, kw=3, n=4, c=4, f=8, padding=1)
    x, w = random_problem(shape)

    def measure():
        clear_plan_cache()
        start = time.perf_counter()
        conv2d_polyhankel(x, w, padding=1)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        conv2d_polyhankel(x, w, padding=1)
        warm = time.perf_counter() - start
        plan = PolyHankelPlan(shape)
        w_hat = plan.transform_weight(w)
        start = time.perf_counter()
        plan.execute(x, w_hat)
        frozen = time.perf_counter() - start
        return cold, warm, frozen

    cold, warm, frozen = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_result(
        "ablation_plan_cache",
        f"cold call (plan + weight FFT + exec): {cold * 1e3:.3f} ms\n"
        f"warm call (cached plan):              {warm * 1e3:.3f} ms\n"
        f"frozen weights (exec only):           {frozen * 1e3:.3f} ms",
    )
    assert frozen <= cold * 1.5  # generous: timing noise on shared CPU
