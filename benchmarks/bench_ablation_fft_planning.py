"""Ablation: FFT size policy (Sec. 3.2's padding discussion).

cuFFT is fastest on 7-smooth sizes but the authors found power-of-two
padding best overall; this ablation compares the policies on transform
size overhead and wall clock.
"""

import pytest

from repro.core.multichannel import conv2d_polyhankel
from repro.core.planning import plan_fft_size
from repro.utils.random import random_problem
from repro.utils.shapes import ConvShape

SHAPE = ConvShape(ih=48, iw=48, kh=5, kw=5, n=2, c=3, f=4, padding=2)
POLICIES = ["pow2", "smooth7", "even"]


@pytest.mark.parametrize("policy", POLICIES)
def test_policy_wallclock(benchmark, policy):
    x, w = random_problem(SHAPE)
    benchmark.pedantic(
        lambda: conv2d_polyhankel(x, w, padding=SHAPE.padding,
                                  fft_policy=policy),
        rounds=3, iterations=1, warmup_rounds=1,
    )


def test_padding_overhead_by_policy(benchmark, record_result):
    """smooth7 always needs the least padding; pow2 the most; the pow2
    overhead is bounded by 2x (amortized much less)."""
    def overheads():
        rows = []
        for size in (24, 48, 96, 144, 224):
            shape = SHAPE.with_(ih=size, iw=size)
            need = shape.poly_product_len
            rows.append((size, need,
                         {p: plan_fft_size(need, p) for p in POLICIES}))
        return rows

    rows = benchmark.pedantic(overheads, rounds=1, iterations=1)
    lines = ["size  linear_len  " + "  ".join(POLICIES)]
    for size, need, sizes in rows:
        lines.append(f"{size:<5} {need:<10} "
                     + "  ".join(str(sizes[p]) for p in POLICIES))
    record_result("ablation_fft_planning", "\n".join(lines))

    for _, need, sizes in rows:
        assert sizes["smooth7"] <= sizes["pow2"]
        assert need <= sizes["even"] <= need + 1
        assert sizes["pow2"] < 2 * need
