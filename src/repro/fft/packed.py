"""Real-pair packing: two real transforms for the price of one complex FFT.

Convolution inputs are real, so their spectra are Hermitian — a complex
FFT of ``z = a + 1j * b`` therefore carries the spectra of *both* real
rows ``a`` and ``b``, recoverable exactly by the Hermitian split

    A[k] = (Z[k] + conj(Z[(N - k) mod N])) / 2
    B[k] = (Z[k] - conj(Z[(N - k) mod N])) / (2j)

for ``k in [0, N//2]``.  Folding adjacent rows of a stacked transform
request in pairs halves the number of transform rows (the ``fft.rows``
counter the bench gate tracks) while leaving the FLOP count unchanged:
``R`` real transforms of cost ``2.5 N log N`` become ``R/2`` complex ones
of cost ``5 N log N``.

The same trick runs backwards: two Hermitian half-spectra ``G0, G1`` fold
into one full-length complex sequence ``G0 + 1j * G1`` (Hermitian-extended
per component), whose single inverse complex FFT returns row ``0`` in its
real part and row ``1`` in its imaginary part.

Everything here transforms along the **last** axis and pairs rows along
the **second-to-last** axis, matching the engine's ``(..., rows, n)``
stacking.  An odd row count leaves the final row unpaired; it runs through
the ordinary half-spectrum transforms.  All entry points accept
non-contiguous (strided) inputs — staging into the packed complex block is
itself the one contiguous pass the batched transform needs.

:func:`pack_weight_operand` builds the bins-major ("interleaved") weight
operand that lets the pointwise-multiply + cross-channel accumulate run as
a single batched matmul over the *packed* spectrum block — see
``repro.core.multichannel`` for the consuming pipeline and DESIGN.md
("Spectrum layout & fusion") for the algebra.
"""

from __future__ import annotations

import numpy as np


def _require_real(x: np.ndarray, name: str) -> np.ndarray:
    if np.iscomplexobj(x):
        raise TypeError(
            f"{name} must be real for real-pair packing; got dtype "
            f"{np.asarray(x).dtype} (use the complex fft directly)"
        )
    return np.asarray(x, dtype=float)


def fold_pairs(x: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray | None]:
    """Stage real rows into the packed complex block, zero-padded to *n*.

    *x* has shape ``(..., R, L)`` with ``L <= n``.  Returns ``(z, rest)``
    where ``z`` is the ``(..., R // 2, n)`` complex block whose real parts
    are the even-indexed rows and imaginary parts the odd-indexed rows,
    and ``rest`` is the final unpaired row ``(..., 1, L)`` when ``R`` is
    odd (``None`` otherwise).  This is the single contiguous staging pass
    of the batched transform: the source may be arbitrarily strided, the
    destination is one fresh contiguous buffer.
    """
    x = _require_real(x, "x")
    if x.ndim < 2:
        raise ValueError(
            "pair packing needs a (..., rows, n) stack; got a "
            f"{x.ndim}-d array"
        )
    rows, length = x.shape[-2], x.shape[-1]
    if length > n:
        raise ValueError(
            f"row length {length} exceeds transform size {n}"
        )
    pairs = rows // 2
    z = np.zeros(x.shape[:-2] + (pairs, n), dtype=complex)
    z.real[..., :length] = x[..., 0: 2 * pairs: 2, :]
    z.imag[..., :length] = x[..., 1: 2 * pairs: 2, :]
    rest = x[..., 2 * pairs:, :] if rows % 2 else None
    return z, rest


def conj_reverse_half(z_hat: np.ndarray, bins: int) -> np.ndarray:
    """``conj(Z[(N - k) mod N])`` for ``k in [0, bins)``.

    *z_hat* is a full complex spectrum ``(..., N)`` with ``bins = N//2+1``.
    Together with ``z_hat[..., :bins]`` this covers every bin of *z_hat*
    exactly once (the DC bin is shared), so the Hermitian split consumes
    the complex FFT with no redundant arithmetic.
    """
    n = z_hat.shape[-1]
    out = np.empty(z_hat.shape[:-1] + (bins,), dtype=complex)
    out[..., 0] = np.conj(z_hat[..., 0])
    if bins > 1:
        out[..., 1:] = np.conj(z_hat[..., : n - bins: -1])
    return out


def split_pair_spectra(z_hat: np.ndarray,
                       bins: int) -> tuple[np.ndarray, np.ndarray]:
    """Half-spectra ``(A, B)`` of the two real rows packed into *z_hat*."""
    half = z_hat[..., :bins]
    rev = conj_reverse_half(z_hat, bins)
    return 0.5 * (half + rev), -0.5j * (half - rev)


def packed_rfft(x: np.ndarray, n: int | None = None,
                fft=None) -> np.ndarray:
    """Drop-in ``rfft`` over stacked real rows via real-pair packing.

    Transforms ``(..., R, L)`` to ``(..., R, n//2 + 1)`` using
    ``R // 2`` complex transforms (one batched call) plus one real
    transform for the leftover row when ``R`` is odd.  Results match
    ``fft.rfft`` to rounding error (not bit-exactly: the Hermitian split
    reassociates the butterfly arithmetic).
    """
    from repro import fft as _fft

    backend = _fft.get_backend(fft)
    x = _require_real(x, "x")
    if x.ndim < 2:
        raise ValueError(
            "packed_rfft needs a (..., rows, n) stack; got a "
            f"{x.ndim}-d array"
        )
    if n is None:
        n = x.shape[-1]
    if n < 1:
        raise ValueError("transform length must be >= 1")
    if x.shape[-1] > n:
        x = x[..., :n]
    bins = n // 2 + 1
    out = np.empty(x.shape[:-1] + (bins,), dtype=complex)
    z, rest = fold_pairs(x, n)
    if z.shape[-2]:
        z_hat = backend.fft(z)
        even, odd = split_pair_spectra(z_hat, bins)
        out[..., 0: 2 * z.shape[-2]: 2, :] = even
        out[..., 1: 2 * z.shape[-2]: 2, :] = odd
    if rest is not None:
        out[..., -1:, :] = backend.rfft(rest, n)
    return out


def fold_half_spectra(spec: np.ndarray, n: int) -> np.ndarray:
    """Hermitian-extend and pack half-spectrum pairs for one inverse FFT.

    *spec* is ``(..., 2P, bins)`` (an even row count of Hermitian
    half-spectra with ``bins = n//2 + 1``).  Returns the ``(..., P, n)``
    complex block ``G = S_even + 1j * S_odd`` whose tail bins are the
    Hermitian images ``conj(S[.., n - k])`` of each component — the exact
    preimage such that ``ifft(G).real`` and ``ifft(G).imag`` are the two
    rows' inverse real transforms.
    """
    bins = spec.shape[-1]
    rows = spec.shape[-2]
    if rows % 2:
        raise ValueError("fold_half_spectra needs an even row count")
    even = spec[..., 0::2, :]
    odd = spec[..., 1::2, :]
    g = np.empty(spec.shape[:-2] + (rows // 2, n), dtype=complex)
    g[..., :bins] = even + 1j * odd
    if n > bins:
        g[..., bins:] = (np.conj(even[..., n - bins: 0: -1])
                         + 1j * np.conj(odd[..., n - bins: 0: -1]))
    return g


def packed_irfft(spec: np.ndarray, n: int | None = None,
                 fft=None) -> np.ndarray:
    """Drop-in ``irfft`` over stacked half-spectra via real-pair packing.

    Inverts ``(..., R, bins)`` to ``(..., R, n)`` using ``R // 2`` complex
    inverse transforms (one batched call) plus one real inverse for the
    leftover row when ``R`` is odd.
    """
    from repro import fft as _fft

    backend = _fft.get_backend(fft)
    spec = np.asarray(spec, dtype=complex)
    if spec.ndim < 2:
        raise ValueError(
            "packed_irfft needs a (..., rows, bins) stack; got a "
            f"{spec.ndim}-d array"
        )
    bins = spec.shape[-1]
    if n is None:
        n = 2 * (bins - 1) if bins > 1 else 1
    expected = n // 2 + 1
    if bins != expected:
        raise ValueError(
            f"spectrum has {bins} bins; transform size {n} needs {expected}"
        )
    rows = spec.shape[-2]
    pairs = rows // 2
    out = np.empty(spec.shape[:-1] + (n,), dtype=float)
    if pairs:
        g = fold_half_spectra(spec[..., : 2 * pairs, :], n)
        y = backend.ifft(g)
        out[..., 0: 2 * pairs: 2, :] = y.real
        out[..., 1: 2 * pairs: 2, :] = y.imag
    if rows % 2:
        out[..., -1:, :] = backend.irfft(spec[..., -1:, :], n)
    return out


def pack_weight_operand(w_hat: np.ndarray) -> np.ndarray:
    """Bins-major packed weight operand for the fused pointwise matmul.

    *w_hat* holds unpacked kernel half-spectra ``(g, f_per, c_per, bins)``.
    The returned operand ``(g, bins, f_per, c_per)`` is built so that with
    the matching packed input column block the whole pointwise-multiply +
    cross-channel sum is **one** contraction::

        out[g, b, f, i] = sum_c  W[g, b, f, c] * A[g, b, c, i]

    (weights on the left: with the batch dimension as the *narrow* matmul
    extent, BLAS runs measurably faster than the mirrored ``A @ W``).
    For a channel pair ``(2j, 2j+1)`` folded as ``Z = X_2j + 1j X_2j+1``:

        X_2j W_2j + X_2j+1 W_2j+1
            = Z[k] * (W_2j - 1j W_2j+1) / 2
            + conj(Z[(N-k) mod N]) * (W_2j + 1j W_2j+1) / 2

    so contraction slots ``0..P-1`` carry ``(W_2j - 1j W_2j+1)/2``
    (multiplying the packed spectra), slots ``P..2P-1`` carry
    ``(W_2j + 1j W_2j+1)/2`` (multiplying their conjugate-reversed
    images), and an odd channel count appends the last channel's plain
    spectrum as one final slot.  The contraction extent is always exactly
    ``c_per`` — packing reshuffles the contraction, it never grows the
    operand.
    """
    g, f_per, c_per, bins = w_hat.shape
    pairs = c_per // 2
    out = np.empty((g, bins, f_per, c_per), dtype=complex)
    even = w_hat[:, :, 0: 2 * pairs: 2, :]   # (g, f_per, pairs, bins)
    odd = w_hat[:, :, 1: 2 * pairs: 2, :]
    out[:, :, :, :pairs] = \
        (0.5 * (even - 1j * odd)).transpose(0, 3, 1, 2)
    out[:, :, :, pairs: 2 * pairs] = \
        (0.5 * (even + 1j * odd)).transpose(0, 3, 1, 2)
    if c_per % 2:
        out[:, :, :, -1] = w_hat[:, :, -1, :].transpose(0, 2, 1)
    return out
