"""Per-size FFT execution plans (twiddles, permutations, stage schedules).

cuFFT (and FFTW) amortize everything that depends only on the transform
size — twiddle factors, digit-reversal permutations, the radix schedule —
into a *plan* that is created once and executed many times.  The builtin
backend previously recomputed or ``lru_cache``-d these pieces ad hoc; this
module makes the plan explicit:

- :class:`FftPlan` bundles, for one size ``n``, the bit-reversal
  permutation and per-stage twiddle tables of the radix-2 kernel, the
  mixed-radix combine tables for every level of the decomposition, and the
  pack/unpack twiddles shared by :func:`repro.fft.real.rfft` /
  :func:`~repro.fft.real.irfft`.
- :func:`get_fft_plan` keeps a bounded LRU cache of plans keyed by ``n``
  with hit/miss statistics, so repeated transforms of the convolution
  sizes a network actually uses never rebuild their tables.

The same plan object serves forward and inverse, complex and real
transforms of its size.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, namedtuple

import numpy as np

from repro.fft.sizes import DEFAULT_RADICES, is_power_of_two
from repro.observe import record_cache_event, span
from repro.observe.registry import cache_hits_misses, reset_cache_stats

CacheInfo = namedtuple("CacheInfo", ["hits", "misses", "size", "maxsize"])


def bit_reversal_permutation(n: int) -> np.ndarray:
    """Index permutation that bit-reverses positions ``0..n-1`` (vectorized)."""
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.intp)
    perm = np.zeros(n, dtype=np.intp)
    for _ in range(bits):
        perm = (perm << 1) | (idx & 1)
        idx >>= 1
    return perm


def stage_twiddles(half: int, sign: float) -> np.ndarray:
    """``exp(sign * 2j*pi*k / (2*half))`` for ``k in [0, half)``."""
    return np.exp(sign * 2j * np.pi * np.arange(half) / (2 * half))


def combine_table(n: int, p: int, sign: float) -> np.ndarray:
    """Mixed-radix combine twiddles of shape ``(p, p, n // p)``.

    Entry ``[q, r, k]`` is the factor applied to sub-FFT ``r`` at output
    block ``q`` when recombining ``p`` interleaved size-``n/p`` transforms.
    """
    m = n // p
    k = np.arange(m)
    q = np.arange(p)[:, None, None]  # output block
    r = np.arange(p)[None, :, None]  # sub-transform index
    return np.exp(sign * 2j * np.pi * r * (q * m + k[None, None, :]) / n)


def _smallest_radix(n: int) -> int | None:
    for p in DEFAULT_RADICES:
        if n % p == 0:
            return p
    return None


class FftPlan:
    """Precomputed execution state for builtin transforms of one size."""

    __slots__ = (
        "n", "is_pow2",
        "perm", "fwd_stages", "inv_stages",      # radix-2 kernel
        "mixed_tables", "radix_schedule",        # mixed-radix levels
        "rfft_unpack", "irfft_pack",             # even-size real transforms
    )

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("FFT plan size must be >= 1")
        self.n = n
        self.is_pow2 = is_power_of_two(n)
        self.perm = None
        self.fwd_stages: tuple[np.ndarray, ...] = ()
        self.inv_stages: tuple[np.ndarray, ...] = ()
        self.mixed_tables: dict[tuple[int, int, float], np.ndarray] = {}
        self.radix_schedule: tuple[tuple[int, int], ...] = ()
        if self.is_pow2 and n > 1:
            self.perm = bit_reversal_permutation(n)
            halves = [1 << s for s in range(n.bit_length() - 1)]
            self.fwd_stages = tuple(stage_twiddles(h, -1.0) for h in halves)
            self.inv_stages = tuple(stage_twiddles(h, +1.0) for h in halves)
        elif n > 1:
            self._build_mixed_schedule(n)
        # Pack/unpack twiddles shared by rfft (forward) and irfft (inverse)
        # of even sizes: exp(-2j*pi*k/n) for k in [0, n//2].
        if n % 2 == 0:
            k = np.arange(n // 2 + 1)
            self.rfft_unpack = np.exp(-2j * np.pi * k / n)
            self.irfft_pack = np.conj(self.rfft_unpack[: n // 2])
        else:
            self.rfft_unpack = None
            self.irfft_pack = None

    def _build_mixed_schedule(self, n: int) -> None:
        """Walk the decimation-in-time chain, materializing every level."""
        schedule = []
        level = n
        while level > 1 and not is_power_of_two(level):
            p = _smallest_radix(level)
            if p is None:
                break  # 11-rough size: Bluestein handles it downstream
            schedule.append((level, p))
            self.mixed_tables[(level, p, -1.0)] = combine_table(level, p, -1.0)
            self.mixed_tables[(level, p, +1.0)] = combine_table(level, p, +1.0)
            level //= p
        self.radix_schedule = tuple(schedule)

    def table(self, n: int, p: int, sign: float) -> np.ndarray | None:
        """Combine table for one decomposition level, if planned."""
        return self.mixed_tables.get((n, p, sign))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "pow2" if self.is_pow2 else (
            "mixed" if self.radix_schedule else "bluestein")
        return f"FftPlan(n={self.n}, kind={kind})"


# -- bounded plan cache ------------------------------------------------------

_DEFAULT_PLAN_LIMIT = 128

_lock = threading.Lock()
_plans: OrderedDict[int, FftPlan] = OrderedDict()
_limit = _DEFAULT_PLAN_LIMIT


def get_fft_plan(n: int) -> FftPlan:
    """Fetch (or build and LRU-cache) the plan for size *n*."""
    with _lock:
        plan = _plans.get(n)
        if plan is not None:
            record_cache_event("fft_plan", hit=True)
            _plans.move_to_end(n)
            return plan
    record_cache_event("fft_plan", hit=False)
    # Build outside the lock: construction is pure and idempotent.
    with span("fft_plan.build", n=n):
        plan = FftPlan(n)
    with _lock:
        _plans[n] = plan
        _plans.move_to_end(n)
        while len(_plans) > _limit:
            _plans.popitem(last=False)
    return plan


def fft_plan_cache_info() -> CacheInfo:
    """Hit/miss statistics of the FFT plan cache.

    Event counts come from the unified :mod:`repro.observe` registry;
    size/limit from the cache structure itself.
    """
    hits, misses = cache_hits_misses("fft_plan")
    with _lock:
        return CacheInfo(hits, misses, len(_plans), _limit)


def set_fft_plan_cache_limit(maxsize: int) -> None:
    """Bound the number of cached plans (evicting LRU entries if needed)."""
    global _limit
    if maxsize < 1:
        raise ValueError("plan cache limit must be >= 1")
    with _lock:
        _limit = maxsize
        while len(_plans) > _limit:
            _plans.popitem(last=False)


def clear_fft_plan_cache() -> None:
    """Drop all cached plans and reset the statistics."""
    with _lock:
        _plans.clear()
    reset_cache_stats("fft_plan")
