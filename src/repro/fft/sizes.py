"""FFT size planning.

cuFFT performs best on sizes of the form ``2^a * 3^b * 5^c * 7^d`` (Sec. 3.2
of the paper).  The paper additionally reports that plain multiples of two
performed best in their tests, so the PolyHankel planner exposes both
policies.  This module provides the smoothness predicates and the
``next_fast_len`` search both policies rely on.
"""

from __future__ import annotations

DEFAULT_RADICES: tuple[int, ...] = (2, 3, 5, 7)


def is_smooth(n: int, radices: tuple[int, ...] = DEFAULT_RADICES) -> bool:
    """True when *n* factors completely over *radices*.

    >>> is_smooth(840)
    True
    >>> is_smooth(11)
    False
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    for p in radices:
        while n % p == 0:
            n //= p
    return n == 1


def is_power_of_two(n: int) -> bool:
    """True when *n* is a positive power of two (1 counts)."""
    return n >= 1 and (n & (n - 1)) == 0


def next_pow2(n: int) -> int:
    """Smallest power of two >= *n*.

    >>> next_pow2(1)
    1
    >>> next_pow2(100)
    128
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    return 1 << (n - 1).bit_length()


def next_fast_len(n: int,
                  radices: tuple[int, ...] = DEFAULT_RADICES) -> int:
    """Smallest *radices*-smooth integer >= *n*.

    Mirrors cuFFT's (and pocketfft's) preferred sizes.  The search enumerates
    smooth numbers by breadth-first expansion, which is exact and fast for
    the sizes convolution planning encounters (up to a few million).

    >>> next_fast_len(97)
    98
    >>> next_fast_len(1000)
    1000
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if is_smooth(n, radices):
        return n
    if 2 not in radices:
        raise ValueError("radix 2 is required for the search upper bound")
    best = next_pow2(n)  # guaranteed smooth upper bound

    def search(value: int, remaining: tuple[int, ...]) -> None:
        nonlocal best
        if value >= n:
            best = min(best, value)
            return
        if not remaining:
            return
        p = remaining[0]
        # Either stop using p, or multiply by p again (value stays < best).
        search(value, remaining[1:])
        if value * p < best:
            search(value * p, remaining)
        elif value * p >= n:
            best = min(best, value * p)

    # Consider radices largest-first so big factors are pruned early.
    search(1, tuple(sorted(radices, reverse=True)))
    return best


def next_fast_len_bias2(n: int, slack: float = 0.05,
                        radices: tuple[int, ...] = DEFAULT_RADICES) -> int:
    """Fastest-in-practice smooth length >= *n* for batched complex FFTs.

    :func:`next_fast_len` minimizes the point count, but pocketfft's (and
    cuFFT's) radix-4/8 kernels make binary-rich sizes measurably faster
    *per point* than odd-radix-heavy ones of equal smoothness: 1280 =
    ``2^8 * 5`` runs ~20% faster than 1250 = ``2 * 5^4`` despite being
    2.4% longer.  This picks, among the smooth candidates within *slack*
    above the minimal smooth length, the one with the largest power-of-two
    factor (ties go to the smallest size).  Used by the fused interleaved
    execution path, whose batched complex transforms dominate its runtime.

    >>> next_fast_len_bias2(1250)
    1280
    >>> next_fast_len_bias2(97)
    100
    """
    base = next_fast_len(n, radices)
    best, best_v2 = base, (base & -base).bit_length() - 1
    for m in range(base + 1, int(base * (1.0 + slack)) + 1):
        v2 = (m & -m).bit_length() - 1
        if v2 > best_v2 and is_smooth(m, radices):
            best, best_v2 = m, v2
    return best


def factorize(n: int,
              radices: tuple[int, ...] = DEFAULT_RADICES) -> list[int]:
    """Factor *n* over *radices*, smallest factor first.

    Raises ``ValueError`` if a non-smooth remainder is left.

    >>> factorize(12)
    [2, 2, 3]
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    factors: list[int] = []
    for p in sorted(radices):
        while n % p == 0:
            factors.append(p)
            n //= p
    if n != 1:
        raise ValueError(f"residual factor {n} is not in radices {radices}")
    return factors
