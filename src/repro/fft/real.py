"""Real-input transforms (rfft / irfft) built on the complex FFT.

Convolution inputs and kernels are real, so the production path uses the
half-spectrum transforms.  For even sizes the forward transform packs the
even/odd samples into a single complex FFT of half the length (the classic
"two channels for the price of one" trick); odd sizes fall back to a full
complex transform plus a slice.
"""

from __future__ import annotations

import numpy as np

from repro.fft import mixed


def rfft(x: np.ndarray, n: int | None = None) -> np.ndarray:
    """Real-input FFT along the last axis; returns n//2 + 1 bins.

    *n* zero-pads or truncates the axis, matching ``numpy.fft.rfft``.
    """
    x = np.asarray(x, dtype=float)
    if n is None:
        n = x.shape[-1]
    if n < 1:
        raise ValueError("transform length must be >= 1")
    if x.shape[-1] < n:
        pad = [(0, 0)] * (x.ndim - 1) + [(0, n - x.shape[-1])]
        x = np.pad(x, pad)
    elif x.shape[-1] > n:
        x = x[..., :n]
    if n == 1:
        return x.astype(complex)
    if n % 2 == 0:
        return _rfft_even(x)
    return mixed.fft(x)[..., : n // 2 + 1]


def _rfft_even(x: np.ndarray) -> np.ndarray:
    n = x.shape[-1]
    half = n // 2
    z = x[..., 0::2] + 1j * x[..., 1::2]
    z_hat = mixed.fft(z)
    # Unpack: split z_hat into the spectra of the even and odd subsequences.
    z_rev = np.roll(z_hat[..., ::-1], 1, axis=-1)  # Z[(half - k) mod half]
    even = 0.5 * (z_hat + np.conj(z_rev))
    odd = -0.5j * (z_hat - np.conj(z_rev))
    k = np.arange(half + 1)
    tw = np.exp(-2j * np.pi * k / n)
    even_ext = np.concatenate([even, even[..., :1]], axis=-1)
    odd_ext = np.concatenate([odd, odd[..., :1]], axis=-1)
    return even_ext + tw * odd_ext


def irfft(x: np.ndarray, n: int | None = None) -> np.ndarray:
    """Inverse of :func:`rfft`; returns a real array of length *n*.

    As with ``numpy.fft.irfft``, *n* defaults to ``2 * (bins - 1)``.
    """
    x = np.asarray(x, dtype=complex)
    bins = x.shape[-1]
    if bins < 1:
        raise ValueError("spectrum must have at least one bin")
    if n is None:
        n = 2 * (bins - 1) if bins > 1 else 1
    if n < 1:
        raise ValueError("output length must be >= 1")
    if n == 1:
        return x[..., 0].real[..., None] if x.ndim else x.real
    expected_bins = n // 2 + 1
    if bins < expected_bins:
        pad = [(0, 0)] * (x.ndim - 1) + [(0, expected_bins - bins)]
        x = np.pad(x, pad)
    elif bins > expected_bins:
        x = x[..., :expected_bins]
    # Rebuild the full Hermitian spectrum and run a complex inverse FFT.
    if n % 2 == 0:
        tail = np.conj(x[..., -2:0:-1])
    else:
        tail = np.conj(x[..., -1:0:-1])
    full = np.concatenate([x, tail], axis=-1)
    return mixed.ifft(full).real
