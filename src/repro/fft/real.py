"""Real-input transforms (rfft / irfft) built on the complex FFT.

Convolution inputs and kernels are real, so the production path uses the
half-spectrum transforms.  For even sizes both directions run a single
complex FFT of *half* the length (the classic "two channels for the price
of one" trick): the forward transform packs even/odd samples into one
complex sequence, and the inverse reverses that packing instead of
rebuilding the full Hermitian spectrum.  Odd sizes fall back to a full
complex transform.  The pack/unpack twiddle tables are shared with the
complex kernels through the per-size :class:`repro.fft.plan.FftPlan`.
"""

from __future__ import annotations

import numpy as np

from repro.fft import mixed
from repro.fft.plan import get_fft_plan
from repro.observe import span


def rfft(x: np.ndarray, n: int | None = None) -> np.ndarray:
    """Real-input FFT along the last axis; returns n//2 + 1 bins.

    *n* zero-pads or truncates the axis, matching ``numpy.fft.rfft``.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim == 0:
        raise ValueError("rfft requires at least one axis, got a 0-d array")
    if n is None:
        n = x.shape[-1]
    if n < 1:
        raise ValueError("transform length must be >= 1")
    if x.shape[-1] < n:
        padded = np.zeros(x.shape[:-1] + (n,), dtype=float)
        padded[..., :x.shape[-1]] = x
        x = padded
    elif x.shape[-1] > n:
        x = x[..., :n]
    if n == 1:
        return x.astype(complex)
    with span("real.rfft", n=n, even=(n % 2 == 0)):
        if n % 2 == 0:
            return _rfft_even(x)
        return mixed.fft(x)[..., : n // 2 + 1]


def _rfft_even(x: np.ndarray) -> np.ndarray:
    n = x.shape[-1]
    plan = get_fft_plan(n)
    z = x[..., 0::2] + 1j * x[..., 1::2]
    z_hat = mixed.fft(z)
    # Unpack: split z_hat into the spectra of the even and odd subsequences.
    # Z[(half - k) mod half]: cheaper as slice-concat than np.roll.
    z_rev = np.concatenate([z_hat[..., :1], z_hat[..., :0:-1]], axis=-1)
    even = 0.5 * (z_hat + np.conj(z_rev))
    odd = -0.5j * (z_hat - np.conj(z_rev))
    tw = plan.rfft_unpack  # exp(-2j*pi*k/n), k in [0, n//2]
    even_ext = np.concatenate([even, even[..., :1]], axis=-1)
    odd_ext = np.concatenate([odd, odd[..., :1]], axis=-1)
    return even_ext + tw * odd_ext


def irfft(x: np.ndarray, n: int | None = None) -> np.ndarray:
    """Inverse of :func:`rfft`; returns a real array of length *n*.

    As with ``numpy.fft.irfft``, *n* defaults to ``2 * (bins - 1)``.
    """
    x = np.asarray(x, dtype=complex)
    if x.ndim == 0:
        raise ValueError("irfft requires at least one axis, got a 0-d array")
    bins = x.shape[-1]
    if bins < 1:
        raise ValueError("spectrum must have at least one bin")
    if n is None:
        n = 2 * (bins - 1) if bins > 1 else 1
    if n < 1:
        raise ValueError("output length must be >= 1")
    if n == 1:
        return x[..., 0].real[..., None]
    expected_bins = n // 2 + 1
    if bins < expected_bins:
        pad = [(0, 0)] * (x.ndim - 1) + [(0, expected_bins - bins)]
        x = np.pad(x, pad)
    elif bins > expected_bins:
        x = x[..., :expected_bins]
    with span("real.irfft", n=n, even=(n % 2 == 0)):
        if n % 2 == 0:
            return _irfft_even(x, n)
        # Odd size: rebuild the full Hermitian spectrum and run a complex
        # inverse transform.
        tail = np.conj(x[..., -1:0:-1])
        full = np.concatenate([x, tail], axis=-1)
        return mixed.ifft(full).real


def _irfft_even(x: np.ndarray, n: int) -> np.ndarray:
    """Length-n inverse real FFT via one complex IFFT of length n//2.

    Reverses the even/odd packing of :func:`_rfft_even`: from the
    half-spectrum ``G[k]`` recover the spectra of the even and odd
    subsequences, repack them as ``Z = E + 1j * O``, and read the
    interleaved samples off the half-size inverse transform.
    """
    half = n // 2
    plan = get_fft_plan(n)
    g = x[..., :half]                      # G[k],     k in [0, half)
    g_rev = np.conj(x[..., half:0:-1])     # conj(G[half - k]), k in [0, half)
    even = 0.5 * (g + g_rev)
    odd = 0.5 * (g - g_rev) * plan.irfft_pack  # exp(+2j*pi*k/n)
    # Hermitian symmetry forces the DC and Nyquist bins real; like
    # numpy.fft.irfft, discard any imaginary part they carry.
    g0 = x[..., 0].real
    gh = x[..., half].real
    even[..., 0] = 0.5 * (g0 + gh)
    odd[..., 0] = 0.5 * (g0 - gh)
    z = mixed.ifft(even + 1j * odd)
    out = np.empty(x.shape[:-1] + (n,), dtype=float)
    out[..., 0::2] = z.real
    out[..., 1::2] = z.imag
    return out
