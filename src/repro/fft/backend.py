"""Pluggable FFT backend.

The PolyHankel algorithm is backend-agnostic: the paper used cuFFT, this
reproduction ships a from-scratch implementation (``builtin``) and a fast
pocketfft-based one (``numpy``).  The numpy backend is the default for
benchmarks; the builtin backend exists to make the substrate self-contained
and is cross-validated against the reference DFT.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.fft import mixed, real
from repro.guard import faults as _faults
from repro.observe import span, tracing_enabled
from repro.observe.registry import counters


class BackendExecutionError(RuntimeError):
    """A transform failed inside a backend, with dispatch context attached.

    Raised by the propagation layer of :func:`get_backend` in place of
    whatever the backend threw (the original is chained as ``__cause__``),
    so callers — the guarded fallback chain above all — see *which*
    backend, operation and transform size failed instead of a bare
    library error from five frames down.  ``ValueError`` passes through
    unwrapped: it means the *call* was wrong (bad size, bad shape), not
    that the backend broke.
    """

    def __init__(self, backend: str, op: str, n: int | None,
                 cause: BaseException):
        self.backend = backend
        self.op = op
        self.n = n
        super().__init__(
            f"FFT backend {backend!r} failed in {op}(n={n}): "
            f"{type(cause).__name__}: {cause}"
        )


@dataclass(frozen=True)
class FftBackend:
    """A set of 1D transform callables operating along the last axis."""

    name: str
    fft: Callable[..., np.ndarray]
    ifft: Callable[..., np.ndarray]
    rfft: Callable[..., np.ndarray]
    irfft: Callable[..., np.ndarray]


def _builtin_fft(x, n=None):
    x = np.asarray(x, dtype=complex)
    if n is not None:
        if x.shape[-1] < n:
            pad = [(0, 0)] * (x.ndim - 1) + [(0, n - x.shape[-1])]
            x = np.pad(x, pad)
        elif x.shape[-1] > n:
            x = x[..., :n]
    return mixed.fft(x)


def _builtin_ifft(x, n=None):
    x = np.asarray(x, dtype=complex)
    if n is not None:
        if x.shape[-1] < n:
            pad = [(0, 0)] * (x.ndim - 1) + [(0, n - x.shape[-1])]
            x = np.pad(x, pad)
        elif x.shape[-1] > n:
            x = x[..., :n]
    return mixed.ifft(x)


BUILTIN = FftBackend(
    name="builtin",
    fft=_builtin_fft,
    ifft=_builtin_ifft,
    rfft=real.rfft,
    irfft=real.irfft,
)

NUMPY = FftBackend(
    name="numpy",
    fft=np.fft.fft,
    ifft=np.fft.ifft,
    rfft=np.fft.rfft,
    irfft=np.fft.irfft,
)

_BACKENDS = {"builtin": BUILTIN, "numpy": NUMPY}
_active: FftBackend = NUMPY


def available_backends() -> list[str]:
    """Names of the registered backends."""
    return sorted(_BACKENDS)


def get_backend(name: str | FftBackend | None = None) -> FftBackend:
    """Resolve *name* to a backend; ``None`` returns the active one.

    While observation is enabled (:func:`repro.observe.enable_tracing`),
    the resolved backend is wrapped so every transform invocation is
    counted — by kind and size — in the unified registry and recorded as
    a span.  When observation is off the raw backend is returned and the
    hot path pays nothing.

    Every resolution additionally passes through the propagation layer:
    a backend exception other than ``ValueError`` surfaces as
    :class:`BackendExecutionError` carrying the failing backend, operation
    and transform size — the context the guarded fallback chain reports
    and keys its circuit breaker on.  The wrappers are memoized, so the
    per-call cost is one truth test and a zero-cost ``try``.
    """
    backend = _resolve(name)
    if tracing_enabled():
        backend = _observed(backend)
    return _propagated(backend)


def _resolve(name: str | FftBackend | None) -> FftBackend:
    """Resolve *name* to the raw (unwrapped) backend object."""
    if name is None:
        return _active
    if isinstance(name, FftBackend):
        return name
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown FFT backend {name!r}; "
            f"available: {available_backends()}"
        ) from None


def set_backend(name: str | FftBackend) -> FftBackend:
    """Set the process-wide active backend; returns it."""
    global _active
    _active = _resolve(name)
    return _active


@contextmanager
def use_backend(name: str | FftBackend):
    """Context manager that temporarily switches the active backend."""
    global _active
    previous = _active
    _active = _resolve(name)
    try:
        yield _active
    finally:
        _active = previous


# -- guarded error propagation -----------------------------------------------


def _propagating(backend_name: str, op: str, fn):
    def wrapped(x, n=None):
        try:
            if _faults._STACK:
                # Fault-injection hook: an armed ``backend_error`` raises
                # here, exactly where a real accelerator failure would
                # surface — and is wrapped like one.
                _faults.check_backend_fault(backend_name, op, n)
            return fn(x, n)
        except ValueError:
            raise  # the call was malformed, not the backend broken
        except Exception as exc:
            raise BackendExecutionError(backend_name, op, n, exc) from exc
    return wrapped


_PROPAGATED: dict[str, tuple] = {}


def _propagated(backend: "FftBackend") -> "FftBackend":
    """Error-propagating view of *backend* (memoized per name)."""
    if getattr(backend.fft, "__propagated_from__", None) is not None:
        return backend  # already a propagating view
    cached = _PROPAGATED.get(backend.name)
    if cached is not None and cached[0] is backend:
        return cached[1]
    wrapped = FftBackend(
        name=backend.name,
        fft=_propagating(backend.name, "fft", backend.fft),
        ifft=_propagating(backend.name, "ifft", backend.ifft),
        rfft=_propagating(backend.name, "rfft", backend.rfft),
        irfft=_propagating(backend.name, "irfft", backend.irfft),
    )
    wrapped.fft.__propagated_from__ = backend
    _PROPAGATED[backend.name] = (backend, wrapped)
    return wrapped


# -- instrumentation ---------------------------------------------------------

_COMPLEX_ITEM = 16  # complex128
_FLOAT_ITEM = 8     # float64


def _invocation_bytes(op: str, rows: int, n: int) -> int:
    """Approximate DRAM traffic of one batched transform invocation."""
    bins = n // 2 + 1
    if op == "rfft":
        return rows * (n * _FLOAT_ITEM + bins * _COMPLEX_ITEM)
    if op == "irfft":
        return rows * (bins * _COMPLEX_ITEM + n * _FLOAT_ITEM)
    return rows * 2 * n * _COMPLEX_ITEM  # fft / ifft


def _observing(backend: "FftBackend", op: str, fn):
    def wrapped(x, n=None):
        if not tracing_enabled():
            return fn(x, n)
        shape = np.shape(x)
        size = n if n is not None else (shape[-1] if shape else 1)
        rows = 1
        for dim in shape[:-1]:
            rows *= dim
        counters.add("fft.calls", 1, kind=op, n=size, backend=backend.name)
        counters.add("fft.rows", rows, kind=op, n=size, backend=backend.name)
        with span(f"fft.{op}", n=size, rows=rows, backend=backend.name,
                  bytes=_invocation_bytes(op, rows, size)):
            return fn(x, n)
    return wrapped


_OBSERVED: dict[str, "FftBackend"] = {}


def _observed(backend: "FftBackend") -> "FftBackend":
    """Invocation-counting view of *backend* (memoized per name)."""
    if getattr(backend.fft, "__wrapped_backend__", None) is not None:
        return backend  # already an observing view
    cached = _OBSERVED.get(backend.name)
    # Rebuild if the underlying backend object changed (record_fft_calls
    # swaps _BACKENDS entries for counting wrappers and back).
    if cached is not None and cached.fft.__wrapped_backend__ is backend:
        return cached
    wrapped = FftBackend(
        name=backend.name,
        fft=_observing(backend, "fft", backend.fft),
        ifft=_observing(backend, "ifft", backend.ifft),
        rfft=_observing(backend, "rfft", backend.rfft),
        irfft=_observing(backend, "irfft", backend.irfft),
    )
    wrapped.fft.__wrapped_backend__ = backend
    _OBSERVED[backend.name] = wrapped
    return wrapped


@dataclass
class FftCallLog:
    """Record of transform invocations made while recording was active.

    Each entry is ``(backend, op, input_shape, n)``.  Used by tests and the
    benchmark harness to assert amortization properties — e.g. that a
    cached inference forward performs zero ``rfft`` calls on the weight.
    """

    calls: list = None

    def __post_init__(self) -> None:
        if self.calls is None:
            self.calls = []

    def count(self, op: str | None = None) -> int:
        """Number of recorded calls, optionally restricted to one op."""
        if op is None:
            return len(self.calls)
        return sum(1 for c in self.calls if c[1] == op)

    def shapes(self, op: str) -> list[tuple]:
        """Input shapes seen by *op*, in call order."""
        return [c[2] for c in self.calls if c[1] == op]

    def clear(self) -> None:
        self.calls.clear()


def _counting(backend: FftBackend, log: FftCallLog) -> FftBackend:
    def wrap(op: str, fn):
        def wrapped(x, n=None):
            log.calls.append((backend.name, op, np.shape(x), n))
            return fn(x, n)
        return wrapped

    return FftBackend(
        name=backend.name,
        fft=wrap("fft", backend.fft),
        ifft=wrap("ifft", backend.ifft),
        rfft=wrap("rfft", backend.rfft),
        irfft=wrap("irfft", backend.irfft),
    )


@contextmanager
def record_fft_calls():
    """Temporarily route every backend through a call recorder.

    Yields an :class:`FftCallLog`.  All resolutions through
    :func:`get_backend` (by name or ``None``) observe the counting
    wrappers; direct references taken before entry are not affected.
    """
    global _active
    log = FftCallLog()
    saved_backends = dict(_BACKENDS)
    saved_active = _active
    wrapped = {name: _counting(b, log) for name, b in _BACKENDS.items()}
    _BACKENDS.update(wrapped)
    _active = wrapped.get(saved_active.name, saved_active)
    try:
        yield log
    finally:
        _BACKENDS.clear()
        _BACKENDS.update(saved_backends)
        _active = saved_active
