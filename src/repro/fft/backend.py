"""Pluggable FFT backend.

The PolyHankel algorithm is backend-agnostic: the paper used cuFFT, this
reproduction ships a from-scratch implementation (``builtin``) and a fast
pocketfft-based one (``numpy``).  The numpy backend is the default for
benchmarks; the builtin backend exists to make the substrate self-contained
and is cross-validated against the reference DFT.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.fft import mixed, real


@dataclass(frozen=True)
class FftBackend:
    """A set of 1D transform callables operating along the last axis."""

    name: str
    fft: Callable[..., np.ndarray]
    ifft: Callable[..., np.ndarray]
    rfft: Callable[..., np.ndarray]
    irfft: Callable[..., np.ndarray]


def _builtin_fft(x, n=None):
    x = np.asarray(x, dtype=complex)
    if n is not None:
        if x.shape[-1] < n:
            pad = [(0, 0)] * (x.ndim - 1) + [(0, n - x.shape[-1])]
            x = np.pad(x, pad)
        elif x.shape[-1] > n:
            x = x[..., :n]
    return mixed.fft(x)


def _builtin_ifft(x, n=None):
    x = np.asarray(x, dtype=complex)
    if n is not None:
        if x.shape[-1] < n:
            pad = [(0, 0)] * (x.ndim - 1) + [(0, n - x.shape[-1])]
            x = np.pad(x, pad)
        elif x.shape[-1] > n:
            x = x[..., :n]
    return mixed.ifft(x)


BUILTIN = FftBackend(
    name="builtin",
    fft=_builtin_fft,
    ifft=_builtin_ifft,
    rfft=real.rfft,
    irfft=real.irfft,
)

NUMPY = FftBackend(
    name="numpy",
    fft=np.fft.fft,
    ifft=np.fft.ifft,
    rfft=np.fft.rfft,
    irfft=np.fft.irfft,
)

_BACKENDS = {"builtin": BUILTIN, "numpy": NUMPY}
_active: FftBackend = NUMPY


def available_backends() -> list[str]:
    """Names of the registered backends."""
    return sorted(_BACKENDS)


def get_backend(name: str | FftBackend | None = None) -> FftBackend:
    """Resolve *name* to a backend; ``None`` returns the active one."""
    if name is None:
        return _active
    if isinstance(name, FftBackend):
        return name
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown FFT backend {name!r}; available: {available_backends()}"
        ) from None


def set_backend(name: str | FftBackend) -> FftBackend:
    """Set the process-wide active backend; returns it."""
    global _active
    _active = get_backend(name)
    return _active


@contextmanager
def use_backend(name: str | FftBackend):
    """Context manager that temporarily switches the active backend."""
    global _active
    previous = _active
    _active = get_backend(name)
    try:
        yield _active
    finally:
        _active = previous


# -- instrumentation ---------------------------------------------------------

@dataclass
class FftCallLog:
    """Record of transform invocations made while recording was active.

    Each entry is ``(backend, op, input_shape, n)``.  Used by tests and the
    benchmark harness to assert amortization properties — e.g. that a
    cached inference forward performs zero ``rfft`` calls on the weight.
    """

    calls: list = None

    def __post_init__(self) -> None:
        if self.calls is None:
            self.calls = []

    def count(self, op: str | None = None) -> int:
        """Number of recorded calls, optionally restricted to one op."""
        if op is None:
            return len(self.calls)
        return sum(1 for c in self.calls if c[1] == op)

    def shapes(self, op: str) -> list[tuple]:
        """Input shapes seen by *op*, in call order."""
        return [c[2] for c in self.calls if c[1] == op]

    def clear(self) -> None:
        self.calls.clear()


def _counting(backend: FftBackend, log: FftCallLog) -> FftBackend:
    def wrap(op: str, fn):
        def wrapped(x, n=None):
            log.calls.append((backend.name, op, np.shape(x), n))
            return fn(x, n)
        return wrapped

    return FftBackend(
        name=backend.name,
        fft=wrap("fft", backend.fft),
        ifft=wrap("ifft", backend.ifft),
        rfft=wrap("rfft", backend.rfft),
        irfft=wrap("irfft", backend.irfft),
    )


@contextmanager
def record_fft_calls():
    """Temporarily route every backend through a call recorder.

    Yields an :class:`FftCallLog`.  All resolutions through
    :func:`get_backend` (by name or ``None``) observe the counting
    wrappers; direct references taken before entry are not affected.
    """
    global _active
    log = FftCallLog()
    saved_backends = dict(_BACKENDS)
    saved_active = _active
    wrapped = {name: _counting(b, log) for name, b in _BACKENDS.items()}
    _BACKENDS.update(wrapped)
    _active = wrapped.get(saved_active.name, saved_active)
    try:
        yield log
    finally:
        _BACKENDS.clear()
        _BACKENDS.update(saved_backends)
        _active = saved_active
