"""Mixed-radix Cooley-Tukey FFT for sizes 2^a * 3^b * 5^c * 7^d.

Combined with :mod:`repro.fft.bluestein` for the remaining sizes, this gives
the builtin backend full generality.  The recursion is decimation-in-time:
a size ``n = p * m`` transform splits into ``p`` interleaved size-``m``
transforms recombined with twiddle factors.  All arithmetic is vectorized
over leading (batch) axes, and the combine tables for every level of the
decomposition are precomputed once per size by
:class:`repro.fft.plan.FftPlan`.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.fft.bluestein import fft_bluestein, ifft_bluestein
from repro.fft.plan import FftPlan, combine_table, get_fft_plan
from repro.fft.radix2 import _fft_pow2
from repro.fft.sizes import DEFAULT_RADICES, is_power_of_two


def _smallest_radix(n: int) -> int | None:
    for p in DEFAULT_RADICES:
        if n % p == 0:
            return p
    return None


@functools.lru_cache(maxsize=256)
def _combine_twiddles(n: int, p: int, sign: float) -> np.ndarray:
    """Twiddle table of shape (p, p, m): factor for sub-FFT r at output block q."""
    return combine_table(n, p, sign)


def _fft_mixed(x: np.ndarray, sign: float,
               plan: FftPlan | None = None) -> np.ndarray:
    n = x.shape[-1]
    if n == 1:
        return x.copy()
    if is_power_of_two(n):
        return _fft_pow2(x, sign, plan if plan is not None and plan.n == n
                         else None)
    p = _smallest_radix(n)
    if p is None:
        # Prime (or 11-rough) size: fall back to the chirp-z algorithm.
        result = fft_bluestein(x) if sign < 0 else fft_bluestein(
            np.conj(x)).conj()
        return result
    sub = np.stack([_fft_mixed(x[..., r::p], sign, plan) for r in range(p)],
                   axis=-2)  # (..., p, m)
    tw = plan.table(n, p, sign) if plan is not None else None
    if tw is None:
        tw = _combine_twiddles(n, p, sign)  # (p, p, m)
    # out[q*m + k] = sum_r tw[q, r, k] * sub[r, k]
    blocks = np.einsum("qrk,...rk->...qk", tw, sub)
    return blocks.reshape(*x.shape[:-1], n)


def fft(x: np.ndarray) -> np.ndarray:
    """Forward DFT along the last axis; any positive length."""
    x = np.asarray(x, dtype=complex)
    if x.ndim == 0:
        raise ValueError("fft requires at least one axis, got a 0-d array")
    n = x.shape[-1]
    if n == 0:
        raise ValueError("cannot transform an empty axis")
    return _fft_mixed(x, -1.0, get_fft_plan(n) if n > 1 else None)


def ifft(x: np.ndarray) -> np.ndarray:
    """Inverse DFT along the last axis; any positive length."""
    x = np.asarray(x, dtype=complex)
    if x.ndim == 0:
        raise ValueError("ifft requires at least one axis, got a 0-d array")
    n = x.shape[-1]
    if n == 0:
        raise ValueError("cannot transform an empty axis")
    if _smallest_radix(n) is None and not is_power_of_two(n) and n > 1:
        return ifft_bluestein(x)
    return _fft_mixed(x, +1.0, get_fft_plan(n) if n > 1 else None) / n
