"""Bluestein's chirp-z algorithm: FFT of arbitrary length.

Re-expresses a length-n DFT as a linear convolution of length 2n-1, which is
then evaluated with the power-of-two radix-2 FFT.  This is how the builtin
backend supports sizes with prime factors other than {2, 3, 5, 7}.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.fft.radix2 import fft2pow, ifft2pow
from repro.fft.sizes import next_pow2


@functools.lru_cache(maxsize=64)
def _chirp(n: int, sign: float) -> tuple[np.ndarray, np.ndarray, int]:
    """Chirp sequence, its padded spectrum, and the working FFT size."""
    k = np.arange(n)
    chirp = np.exp(sign * 1j * np.pi * (k * k % (2 * n)) / n)
    m = next_pow2(2 * n - 1)
    b = np.zeros(m, dtype=complex)
    b[:n] = np.conj(chirp)
    b[m - n + 1:] = np.conj(chirp[1:][::-1])
    return chirp, fft2pow(b), m

def _bluestein(x: np.ndarray, sign: float) -> np.ndarray:
    n = x.shape[-1]
    chirp, b_hat, m = _chirp(n, sign)
    a = np.zeros(x.shape[:-1] + (m,), dtype=complex)
    a[..., :n] = x * chirp
    conv = ifft2pow(fft2pow(a) * b_hat)
    return conv[..., :n] * chirp


def fft_bluestein(x: np.ndarray) -> np.ndarray:
    """Forward DFT of arbitrary length along the last axis."""
    x = np.asarray(x, dtype=complex)
    if x.ndim == 0:
        raise ValueError("fft requires at least one axis, got a 0-d array")
    if x.shape[-1] == 0:
        raise ValueError("cannot transform an empty axis")
    if x.shape[-1] == 1:
        return x.copy()
    return _bluestein(x, -1.0)


def ifft_bluestein(x: np.ndarray) -> np.ndarray:
    """Inverse DFT of arbitrary length along the last axis."""
    x = np.asarray(x, dtype=complex)
    if x.ndim == 0:
        raise ValueError("ifft requires at least one axis, got a 0-d array")
    n = x.shape[-1]
    if n == 0:
        raise ValueError("cannot transform an empty axis")
    if n == 1:
        return x.copy()
    return _bluestein(x, +1.0) / n
