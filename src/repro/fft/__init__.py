"""From-scratch FFT substrate.

Public surface:

- :func:`fft` / :func:`ifft` / :func:`rfft` / :func:`irfft` — transforms along
  the last axis, dispatched through the active backend.
- :func:`set_backend` / :func:`use_backend` — choose ``"builtin"`` (this
  package's radix-2 / mixed-radix / Bluestein stack) or ``"numpy"``.
- :func:`next_fast_len` / :func:`next_pow2` — cuFFT-style size planning.
- :func:`packed_rfft` / :func:`packed_irfft` — stacked real transforms via
  real-pair packing (two rows per complex FFT, Hermitian-split unpack).
"""

from __future__ import annotations

import numpy as np

from repro.fft.backend import (
    BackendExecutionError,
    FftBackend,
    FftCallLog,
    available_backends,
    get_backend,
    record_fft_calls,
    set_backend,
    use_backend,
)
from repro.fft.dft import dft, idft
from repro.fft.packed import packed_irfft, packed_rfft
from repro.fft.plan import (
    FftPlan,
    clear_fft_plan_cache,
    fft_plan_cache_info,
    get_fft_plan,
    set_fft_plan_cache_limit,
)
from repro.fft.sizes import (
    factorize,
    is_power_of_two,
    is_smooth,
    next_fast_len,
    next_fast_len_bias2,
    next_pow2,
)

__all__ = [
    "fft", "ifft", "rfft", "irfft",
    "packed_rfft", "packed_irfft",
    "dft", "idft",
    "BackendExecutionError",
    "FftBackend", "available_backends", "get_backend", "set_backend",
    "use_backend",
    "FftCallLog", "record_fft_calls",
    "FftPlan", "get_fft_plan", "fft_plan_cache_info",
    "set_fft_plan_cache_limit", "clear_fft_plan_cache",
    "next_fast_len", "next_fast_len_bias2", "next_pow2", "is_smooth",
    "is_power_of_two", "factorize",
]


def fft(x, n: int | None = None) -> np.ndarray:
    """Forward complex FFT along the last axis (active backend)."""
    return get_backend().fft(x, n)


def ifft(x, n: int | None = None) -> np.ndarray:
    """Inverse complex FFT along the last axis (active backend)."""
    return get_backend().ifft(x, n)


def rfft(x, n: int | None = None) -> np.ndarray:
    """Real-input FFT along the last axis (active backend)."""
    return get_backend().rfft(x, n)


def irfft(x, n: int | None = None) -> np.ndarray:
    """Inverse real FFT along the last axis (active backend)."""
    return get_backend().irfft(x, n)
