"""Reference O(n^2) discrete Fourier transform.

This is the ground truth the fast transforms in this package are tested
against.  It is deliberately written as a single matrix product so that its
correctness is self-evident.
"""

from __future__ import annotations

import numpy as np


def _dft_matrix(n: int, sign: float) -> np.ndarray:
    k = np.arange(n)
    return np.exp(sign * 2j * np.pi * np.outer(k, k) / n)


def dft(x: np.ndarray) -> np.ndarray:
    """Forward DFT along the last axis.  O(n^2); for testing only."""
    x = np.asarray(x, dtype=complex)
    n = x.shape[-1]
    if n == 0:
        raise ValueError("cannot transform an empty axis")
    return x @ _dft_matrix(n, -1.0).T


def idft(x: np.ndarray) -> np.ndarray:
    """Inverse DFT along the last axis (normalized by 1/n)."""
    x = np.asarray(x, dtype=complex)
    n = x.shape[-1]
    if n == 0:
        raise ValueError("cannot transform an empty axis")
    return (x @ _dft_matrix(n, +1.0).T) / n
