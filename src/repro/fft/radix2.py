"""Iterative radix-2 Cooley-Tukey FFT.

Operates along the last axis of an arbitrary-rank array so that batched
transforms (the common case in convolution) are vectorized.  The
bit-reversal permutation and per-stage twiddle factors come from the
per-size :class:`repro.fft.plan.FftPlan`, so repeated transforms of one
size never rebuild them.  Sizes must be powers of two; the general-size
entry points live in :mod:`repro.fft.mixed`.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.fft.plan import FftPlan, bit_reversal_permutation, get_fft_plan
from repro.fft.sizes import is_power_of_two


@functools.lru_cache(maxsize=64)
def _bit_reversal_permutation(n: int) -> np.ndarray:
    """Index permutation that bit-reverses positions 0..n-1."""
    return bit_reversal_permutation(n)


def _fft_pow2(x: np.ndarray, sign: float,
              plan: FftPlan | None = None) -> np.ndarray:
    n = x.shape[-1]
    if plan is None or plan.n != n:
        plan = get_fft_plan(n)
    # Ping-pong between two buffers: each stage reads `cur` and writes
    # `nxt` out of place, so no per-stage copy of the even half is needed.
    cur = np.ascontiguousarray(x[..., plan.perm], dtype=complex)
    nxt = np.empty_like(cur)
    stages = plan.fwd_stages if sign < 0 else plan.inv_stages
    size = 2
    for tw in stages:
        half = size // 2
        src = cur.reshape(*cur.shape[:-1], n // size, size)
        dst = nxt.reshape(*nxt.shape[:-1], n // size, size)
        even = src[..., :half]
        odd = src[..., half:]
        hi = dst[..., half:]
        if half > 1:  # the size-2 stage twiddle is exactly 1
            np.multiply(odd, tw, out=hi)
            odd = hi
        np.add(even, odd, out=dst[..., :half])
        np.subtract(even, odd, out=hi)
        cur, nxt = nxt, cur
        size *= 2
    return cur


def fft2pow(x: np.ndarray) -> np.ndarray:
    """Forward FFT along the last axis; length must be a power of two."""
    x = np.asarray(x, dtype=complex)
    n = x.shape[-1]
    if not is_power_of_two(n):
        raise ValueError(f"radix-2 FFT requires a power-of-two size, got {n}")
    if n == 1:
        return x.copy()
    return _fft_pow2(x, -1.0)


def ifft2pow(x: np.ndarray) -> np.ndarray:
    """Inverse FFT along the last axis; length must be a power of two."""
    x = np.asarray(x, dtype=complex)
    n = x.shape[-1]
    if not is_power_of_two(n):
        raise ValueError(f"radix-2 IFFT requires a power-of-two size, got {n}")
    if n == 1:
        return x.copy()
    return _fft_pow2(x, +1.0) / n
