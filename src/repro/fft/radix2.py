"""Iterative radix-2 Cooley-Tukey FFT.

Operates along the last axis of an arbitrary-rank array so that batched
transforms (the common case in convolution) are vectorized.  Twiddle factors
are cached per size.  Sizes must be powers of two; the general-size entry
points live in :mod:`repro.fft.mixed`.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.fft.sizes import is_power_of_two


@functools.lru_cache(maxsize=64)
def _bit_reversal_permutation(n: int) -> np.ndarray:
    """Index permutation that bit-reverses positions 0..n-1."""
    bits = n.bit_length() - 1
    perm = np.zeros(n, dtype=np.intp)
    for i in range(n):
        rev = 0
        v = i
        for _ in range(bits):
            rev = (rev << 1) | (v & 1)
            v >>= 1
        perm[i] = rev
    return perm


@functools.lru_cache(maxsize=128)
def _twiddles(half: int, sign: float) -> np.ndarray:
    """exp(sign * 2j*pi*k / (2*half)) for k in [0, half)."""
    return np.exp(sign * 2j * np.pi * np.arange(half) / (2 * half))


def _fft_pow2(x: np.ndarray, sign: float) -> np.ndarray:
    n = x.shape[-1]
    out = np.ascontiguousarray(x[..., _bit_reversal_permutation(n)],
                               dtype=complex)
    size = 2
    while size <= n:
        half = size // 2
        tw = _twiddles(half, sign)
        view = out.reshape(*out.shape[:-1], n // size, size)
        even = view[..., :half]
        odd = view[..., half:] * tw
        view[..., :half], view[..., half:] = even + odd, even - odd
        size *= 2
    return out


def fft2pow(x: np.ndarray) -> np.ndarray:
    """Forward FFT along the last axis; length must be a power of two."""
    x = np.asarray(x, dtype=complex)
    n = x.shape[-1]
    if not is_power_of_two(n):
        raise ValueError(f"radix-2 FFT requires a power-of-two size, got {n}")
    if n == 1:
        return x.copy()
    return _fft_pow2(x, -1.0)


def ifft2pow(x: np.ndarray) -> np.ndarray:
    """Inverse FFT along the last axis; length must be a power of two."""
    x = np.asarray(x, dtype=complex)
    n = x.shape[-1]
    if not is_power_of_two(n):
        raise ValueError(f"radix-2 IFFT requires a power-of-two size, got {n}")
    if n == 1:
        return x.copy()
    return _fft_pow2(x, +1.0) / n
