"""Synthetic benchmark networks (Sec. 4.2).

The paper evaluates end-to-end with "a set of synthetic networks [that] all
have 20 layers but have various layer designs including connection
configurations and kernel sizes" — convolution called "with widely
different parameter values" across layers.  ``synthetic_network`` generates
exactly such networks, deterministically from a seed: 20 convolution layers
whose kernel sizes cycle through the common CNN choices (3/5/7), channel
widths that grow then shrink, and pooling stages that change the spatial
extent so no two layers see the same convolution shape.

``lenet5`` is a small classic network used by the examples.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.registry import ConvAlgorithm
from repro.nn.layers import (
    AvgPool2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.network import Sequential

SYNTHETIC_CONV_LAYERS = 20


def synthetic_network(input_size: int, in_channels: int = 3, seed: int = 0,
                      algorithm: ConvAlgorithm | str = ConvAlgorithm.POLYHANKEL,
                      conv_layers: int = SYNTHETIC_CONV_LAYERS) -> Sequential:
    """A 20-conv-layer synthetic network for inputs of ``input_size``².

    Kernel sizes vary per layer (3, 5, 7 with same-padding), channel widths
    follow a grow-then-shrink profile, and max-pools halve the spatial size
    a few times (only while it stays large enough for the biggest kernel).
    Different seeds permute the design, mirroring the paper's "various layer
    designs".
    """
    if input_size < 8:
        raise ValueError("synthetic networks need input_size >= 8")
    rng = np.random.default_rng(seed)
    kernel_choices = [3, 5, 7]
    # Channel plan: ramp up to a mid-network maximum, then back down.
    widths = [in_channels]
    peak = int(rng.choice([32, 48, 64]))
    for i in range(conv_layers):
        ramp = min(i, conv_layers - 1 - i, 4)
        widths.append(min(8 * (2 ** ramp), peak))

    layers: list = []
    spatial = input_size
    pools_left = 3
    for i in range(conv_layers):
        k = int(rng.choice(kernel_choices))
        while k > spatial:
            k = max(3, k - 2)
        layers.append(Conv2d(widths[i], widths[i + 1], k, padding=k // 2,
                             algorithm=algorithm, rng=rng))
        layers.append(ReLU())
        # Downsample occasionally, while room remains for a 7x7 kernel.
        if pools_left and spatial // 2 >= 8 and rng.random() < 0.25:
            layers.append(MaxPool2d(2))
            spatial //= 2
            pools_left -= 1
    return Sequential(*layers, name=f"synthetic-{input_size}-seed{seed}")


def lenet5(num_classes: int = 10, in_channels: int = 1, seed: int = 0,
           algorithm: ConvAlgorithm | str = ConvAlgorithm.POLYHANKEL
           ) -> Sequential:
    """LeNet-5 style classifier for 28x28 inputs (e.g. digit images)."""
    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2d(in_channels, 6, 5, padding=2, algorithm=algorithm, rng=rng),
        ReLU(),
        AvgPool2d(2),
        Conv2d(6, 16, 5, algorithm=algorithm, rng=rng),
        ReLU(),
        AvgPool2d(2),
        Flatten(),
        Linear(16 * 5 * 5, 120, rng=rng),
        ReLU(),
        Linear(120, 84, rng=rng),
        ReLU(),
        Linear(84, num_classes, rng=rng),
        name="lenet5",
    )
