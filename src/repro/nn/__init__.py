"""Minimal NN inference framework (the paper's PyTorch substitute).

Provides the operator-dispatch surface the Sec. 4.2 experiment needs:
convolution layers with a network-wide forcible algorithm, common
supporting layers, sequential composition, synthetic 20-layer benchmark
networks, and per-operator simulated-GPU profiling.
"""

from repro.nn import functional
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv1d,
    Conv2d,
    Conv3d,
    ConvTranspose2d,
    Flatten,
    Layer,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.network import ConvProfile, Sequential, profile_conv_time
from repro.nn.synthetic import lenet5, synthetic_network

__all__ = [
    "functional",
    "Layer", "Conv1d", "Conv2d", "Conv3d", "ConvTranspose2d", "ReLU",
    "MaxPool2d", "AvgPool2d", "BatchNorm2d", "Flatten", "Linear",
    "Sequential", "ConvProfile", "profile_conv_time",
    "synthetic_network", "lenet5",
]
