"""Functional NN operations (inference).

``conv2d`` is the operator whose cuDNN dispatch the paper replaces inside
PyTorch (Sec. 4.2); here it dispatches through our algorithm registry, with
the same "force one algorithm network-wide" capability the paper's
experiment uses.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.registry import ConvAlgorithm, convolve
from repro.guard.state import guard_enabled
from repro.utils.validation import ensure_array


def conv2d(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None,
           padding: int | tuple | str = 0, stride: int | tuple = 1,
           dilation: int | tuple[int, int] = 1, groups: int = 1,
           algorithm: ConvAlgorithm | str = ConvAlgorithm.POLYHANKEL,
           workers: int | None = None, **kwargs) -> np.ndarray:
    """2D convolution with an explicit algorithm choice.

    Accepts the full conv2d parameter space: *stride* and *dilation* take
    an int or ``(h, w)`` pair, *padding* additionally a ``(pt, pb, pl, pr)``
    4-tuple or ``"same"``, and *groups* splits the channels (``groups=c``
    is depthwise).  Dispatch goes through the algorithm registry: PolyHankel
    and the GEMM family run the parameters natively (PolyHankel's stretched
    degree map absorbs dilation for free), while the FFT/Winograd baselines
    are lowered — or reject the shape explicitly — by the registry.

    ``algorithm="auto"`` picks per call using the distilled selection rules
    (GEMM small inputs / PolyHankel sweet spot / FFT large kernels) — the
    heuristic dispatch the paper proposes as future work.

    ``workers=N`` chunks the batch across a thread pool (currently
    supported by the PolyHankel engine; other algorithms reject it).

    While the guard is enabled (:func:`repro.guard.enable_guard` or the
    :func:`repro.guard.guarded` scope), the call routes through the
    supervised fallback chain: the requested algorithm still runs first,
    but a tripped sentinel or a raised backend error degrades to a slower
    exact algorithm instead of propagating garbage.
    """
    if workers is not None:
        kwargs["workers"] = workers
    weight = np.asarray(weight)
    x = np.asarray(x)
    if algorithm == "auto":
        from repro.selection.heuristic import select_algorithm_rules
        from repro.utils.shapes import ConvShape

        algorithm = select_algorithm_rules(ConvShape.from_tensors(
            x.shape, weight.shape, padding, stride, dilation, groups
        ))
    if guard_enabled():
        from repro.guard.chain import guarded_conv2d

        return guarded_conv2d(x, weight, bias=bias, padding=padding,
                              stride=stride, dilation=dilation,
                              groups=groups, algorithm=algorithm, **kwargs)
    out = convolve(x, weight, algorithm=algorithm, padding=padding,
                   stride=stride, dilation=dilation, groups=groups, **kwargs)
    if bias is not None:
        bias = ensure_array(bias, "bias", ndim=1)
        out = out + bias[None, :, None, None]
    return out


def conv2d_async(x: np.ndarray, weight: np.ndarray,
                 bias: np.ndarray | None = None,
                 padding: int | tuple | str = 0, stride: int | tuple = 1,
                 dilation: int | tuple[int, int] = 1, groups: int = 1,
                 algorithm: ConvAlgorithm | str = ConvAlgorithm.POLYHANKEL,
                 strategy: str = "sum", backend: str | None = None,
                 server=None, deadline_s: float | None = None):
    """Submit a convolution to the serving layer; returns a ``Future``.

    Requests submitted concurrently with the same weight array, geometry
    and parameters coalesce into one stacked engine call (dynamic
    batching); oversized requests shard across the server's worker pool.
    Uses the process-wide default :class:`~repro.serve.ConvServer` unless
    *server* is given.  ``future.result()`` is bit-exact with
    :func:`conv2d` on the same arguments.

    *deadline_s* bounds the request's lifetime: if it cannot be served in
    that many seconds the tier sheds it and the future raises
    :class:`repro.serve.DeadlineExceeded` instead of executing stale
    work.  May raise :class:`repro.serve.Overloaded` when the server is
    at its admission budget.
    """
    from repro import serve

    server = server if server is not None else serve.get_server()
    return server.submit(x, weight, bias, padding, stride, dilation,
                         groups, algorithm, strategy, backend,
                         deadline_s=deadline_s)


def conv1d(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None,
           padding: int | tuple | str = 0, stride: int | tuple = 1,
           dilation: int | tuple = 1, groups: int = 1,
           algorithm: ConvAlgorithm | str = ConvAlgorithm.POLYHANKEL,
           **kwargs) -> np.ndarray:
    """1D convolution of an ``(n, c, length)`` batch.

    Same parameter space and dispatch rules as :func:`conv2d` (full
    stride/dilation/groups, ``"same"`` and asymmetric ``(lo, hi)``
    padding, any registered algorithm, guard-chain routing).  Internally
    the sequence runs as a ``1 x L`` image through the cached 2D engine,
    so 1D inherits the packed real-pair FFT pipeline.
    """
    return _convnd("conv1d", x, weight, bias, padding, stride, dilation,
                   groups, algorithm, **kwargs)


def conv3d(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None,
           padding: int | tuple | str = 0, stride: int | tuple = 1,
           dilation: int | tuple = 1, groups: int = 1,
           algorithm: ConvAlgorithm | str = ConvAlgorithm.POLYHANKEL,
           **kwargs) -> np.ndarray:
    """3D convolution of an ``(n, c, depth, height, width)`` batch.

    The degree map stacks a plane stride on top of the 2D construction
    (``t^(Iw*Id*k + Iw*i + j)``), so the whole volume still runs as one
    1D FFT.  Algorithms: ``polyhankel``, ``gemm``, ``naive`` (the 2D-only
    baselines reject 3D shapes explicitly).
    """
    return _convnd("conv3d", x, weight, bias, padding, stride, dilation,
                   groups, algorithm, **kwargs)


def _convnd(op: str, x, weight, bias, padding, stride, dilation, groups,
            algorithm, **kwargs) -> np.ndarray:
    from repro.baselines.ndops import convolve_nd

    x = np.asarray(x)
    weight = np.asarray(weight)
    if guard_enabled():
        from repro.guard.chain import guarded_convnd

        return guarded_convnd(x, weight, op=op, bias=bias, padding=padding,
                              stride=stride, dilation=dilation,
                              groups=groups, algorithm=algorithm, **kwargs)
    out = convolve_nd(x, weight, op, algorithm, padding=padding,
                      stride=stride, dilation=dilation, groups=groups,
                      **kwargs)
    if bias is not None:
        bias = ensure_array(bias, "bias", ndim=1)
        out = out + bias.reshape((1, -1) + (1,) * (out.ndim - 2))
    return out


def conv_transpose2d(x: np.ndarray, weight: np.ndarray,
                     bias: np.ndarray | None = None,
                     padding: int | tuple = 0,
                     stride: int | tuple = 1,
                     output_padding: int | tuple = 0,
                     dilation: int | tuple = 1, groups: int = 1,
                     algorithm: ConvAlgorithm | str =
                     ConvAlgorithm.POLYHANKEL, **kwargs) -> np.ndarray:
    """Transposed (fractionally strided) convolution, a.k.a. deconvolution.

    Follows the PyTorch convention: *weight* is ``(c_in, c_out/groups,
    kh, kw)`` and each output extent is ``(i - 1) * stride - (p_lo +
    p_hi) + dilation * (k - 1) + 1 + output_padding`` with ``0 <=
    output_padding < stride`` (it resolves the ambiguity a strided
    forward convolution leaves about its input extent).  *stride*,
    *dilation*, *padding* and *output_padding* accept ints or ``(h, w)``
    pairs (padding also a flat 4-tuple).  The operation is the adjoint of
    :func:`conv2d`, computed with the convolution-based backward-input
    machinery — through any registered algorithm — and routes through the
    guard fallback chain while the guard is enabled.
    """
    from repro.baselines.ndops import convolve_nd

    x = ensure_array(x, "x", ndim=4, dtype=float)
    weight = ensure_array(weight, "weight", ndim=4, dtype=float)
    if guard_enabled():
        from repro.guard.chain import guarded_convnd

        return guarded_convnd(x, weight, op="conv_transpose2d", bias=bias,
                              padding=padding, stride=stride,
                              dilation=dilation, groups=groups,
                              output_padding=output_padding,
                              algorithm=algorithm, **kwargs)
    out = convolve_nd(x, weight, "conv_transpose2d", algorithm,
                      padding=padding, stride=stride, dilation=dilation,
                      groups=groups, output_padding=output_padding,
                      **kwargs)
    if bias is not None:
        bias = ensure_array(bias, "bias", ndim=1)
        out = out + bias[None, :, None, None]
    return out


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def max_pool2d(x: np.ndarray, kernel_size: int,
               stride: int | None = None) -> np.ndarray:
    """Max pooling over NCHW spatial dims (no padding; floor division)."""
    return _pool2d(x, kernel_size, stride, np.max)


def avg_pool2d(x: np.ndarray, kernel_size: int,
               stride: int | None = None) -> np.ndarray:
    """Average pooling over NCHW spatial dims."""
    return _pool2d(x, kernel_size, stride, np.mean)


def _pool2d(x: np.ndarray, kernel_size: int, stride: int | None,
            reducer) -> np.ndarray:
    x = ensure_array(x, "x", ndim=4)
    if kernel_size < 1:
        raise ValueError("kernel_size must be positive")
    stride = kernel_size if stride is None else stride
    if stride < 1:
        raise ValueError("stride must be positive")
    n, c, h, w = x.shape
    oh = (h - kernel_size) // stride + 1
    ow = (w - kernel_size) // stride + 1
    if oh < 1 or ow < 1:
        raise ValueError(
            f"pool window {kernel_size} does not fit input {h}x{w}"
        )
    windows = np.lib.stride_tricks.sliding_window_view(
        x, (kernel_size, kernel_size), axis=(2, 3)
    )[:, :, ::stride, ::stride]
    return reducer(windows, axis=(-2, -1))


def batch_norm2d(x: np.ndarray, mean: np.ndarray, var: np.ndarray,
                 gamma: np.ndarray, beta: np.ndarray,
                 eps: float = 1e-5) -> np.ndarray:
    """Inference-mode batch normalization with running statistics."""
    shape = (1, -1, 1, 1)
    scale = gamma / np.sqrt(var + eps)
    return x * scale.reshape(shape) + (
        beta - mean * scale
    ).reshape(shape)


def linear(x: np.ndarray, weight: np.ndarray,
           bias: np.ndarray | None = None) -> np.ndarray:
    """Affine map on the last axis: ``x @ weight.T + bias``."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)
