"""Convolution gradients, computed with the library's own algorithms.

The paper evaluates the forward operator, but a drop-in convolution
implementation must also serve training.  Both backward passes reduce to
convolutions, so PolyHankel (or any registered algorithm) computes them:

- **input gradient**: correlate the (stride-dilated, fully padded) output
  gradient with the spatially flipped, channel-transposed weights;
- **weight gradient**: correlate the padded input with the (stride-dilated)
  output gradient, treating batch as the contraction axis.

Gradient correctness is established against finite differences in
``tests/nn/test_grad.py``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.registry import ConvAlgorithm, convolve
from repro.hankel.im2col_view import pad2d
from repro.utils.shapes import ConvShape
from repro.utils.validation import ensure_array


def dilate_spatial(x: np.ndarray,
                   stride: int | tuple[int, int]) -> np.ndarray:
    """Insert zeros between spatial samples (trailing two axes).

    *stride* may be one factor for both axes or an ``(sh, sw)`` pair;
    ``stride - 1`` zeros go between consecutive samples.
    """
    sh, sw = (stride, stride) if isinstance(stride, int) else stride
    if sh == 1 and sw == 1:
        return x
    *lead, h, w = x.shape
    out = np.zeros((*lead, (h - 1) * sh + 1, (w - 1) * sw + 1),
                   dtype=x.dtype)
    out[..., ::sh, ::sw] = x
    return out


def conv2d_backward_input(grad_out: np.ndarray, weight: np.ndarray,
                          input_shape: tuple, padding: int = 0,
                          stride: int = 1,
                          algorithm: ConvAlgorithm | str =
                          ConvAlgorithm.POLYHANKEL) -> np.ndarray:
    """Gradient of the convolution output w.r.t. its input.

    *grad_out* is ``(n, f, oh, ow)``; returns ``(n, c, ih, iw)`` matching
    *input_shape*.
    """
    grad_out = ensure_array(grad_out, "grad_out", ndim=4, dtype=float)
    weight = ensure_array(weight, "weight", ndim=4, dtype=float)
    n, c, ih, iw = input_shape
    f, wc, kh, kw = weight.shape
    shape = ConvShape(ih=ih, iw=iw, kh=kh, kw=kw, n=n, c=wc, f=f,
                      padding=padding, stride=stride)
    if grad_out.shape != shape.output_shape():
        raise ValueError(
            f"grad_out shape {grad_out.shape} does not match "
            f"{shape.output_shape()}"
        )

    # Stride-dilate the gradient, then full-pad by (k-1) for the
    # transposed correlation.
    g = dilate_spatial(grad_out, stride)
    g = np.pad(g, [(0, 0), (0, 0), (kh - 1, kh - 1), (kw - 1, kw - 1)])
    # Flip the kernel spatially and swap its filter/channel roles.
    w_t = weight[:, :, ::-1, ::-1].transpose(1, 0, 2, 3)  # (c, f, kh, kw)
    dx_core = convolve(g, w_t, algorithm=algorithm)
    # The transposed convolution only covers the input region the forward
    # stride actually visited; rows/columns beyond the last kernel
    # placement receive zero gradient.
    ph, pw = ih + 2 * padding, iw + 2 * padding
    dx_padded = np.zeros((n, c, ph, pw), dtype=dx_core.dtype)
    dx_padded[:, :, : dx_core.shape[2], : dx_core.shape[3]] = \
        dx_core[:, :, :ph, :pw]
    if padding:
        return dx_padded[:, :, padding: padding + ih,
                         padding: padding + iw]
    return dx_padded


def conv2d_backward_weight(grad_out: np.ndarray, x: np.ndarray,
                           kernel_size: tuple[int, int], padding: int = 0,
                           stride: int = 1,
                           algorithm: ConvAlgorithm | str =
                           ConvAlgorithm.POLYHANKEL) -> np.ndarray:
    """Gradient of the convolution output w.r.t. the weights.

    *x* is the forward input ``(n, c, ih, iw)``; returns
    ``(f, c, kh, kw)``.
    """
    grad_out = ensure_array(grad_out, "grad_out", ndim=4, dtype=float)
    x = ensure_array(x, "x", ndim=4, dtype=float)
    kh, kw = kernel_size
    n, c = x.shape[0], x.shape[1]
    f = grad_out.shape[1]

    xp = pad2d(x, padding)
    g = dilate_spatial(grad_out, stride)
    # The dilated gradient may be shorter than the padded input allows;
    # crop the input so the "valid" correlation yields exactly (kh, kw).
    need_h = g.shape[2] + kh - 1
    need_w = g.shape[3] + kw - 1
    xp = xp[:, :, :need_h, :need_w]

    # Contract over batch: treat channels as batch and (f, n) as kernels.
    x_t = xp.transpose(1, 0, 2, 3)        # (c, n, ph, pw)
    g_t = g.transpose(1, 0, 2, 3)         # (f, n, gh, gw)
    dw = convolve(x_t, g_t, algorithm=algorithm)  # (c, f, kh, kw)
    return dw.transpose(1, 0, 2, 3)


def conv2d_backward_bias(grad_out: np.ndarray) -> np.ndarray:
    """Gradient w.r.t. the per-filter bias."""
    grad_out = ensure_array(grad_out, "grad_out", ndim=4)
    return grad_out.sum(axis=(0, 2, 3))
