"""Convolution gradients, computed with the library's own algorithms.

The paper evaluates the forward operator, but a drop-in convolution
implementation must also serve training.  Both backward passes reduce to
convolutions, so PolyHankel (or any registered algorithm) computes them:

- **input gradient**: correlate the (stride-dilated, fully padded) output
  gradient with the spatially flipped, channel-transposed weights;
- **weight gradient**: correlate the padded input with the (stride-dilated)
  output gradient, treating batch as the contraction axis.

Gradient correctness is established against finite differences in
``tests/nn/test_grad.py``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.registry import ConvAlgorithm, convolve
from repro.hankel.im2col_view import pad2d
from repro.utils.shapes import ConvShape, ConvShapeNd, normalize_tuple
from repro.utils.validation import ensure_array


def dilate_spatial(x: np.ndarray,
                   stride: int | tuple[int, int]) -> np.ndarray:
    """Insert zeros between spatial samples (trailing two axes).

    *stride* may be one factor for both axes or an ``(sh, sw)`` pair;
    ``stride - 1`` zeros go between consecutive samples.
    """
    sh, sw = (stride, stride) if isinstance(stride, int) else stride
    if sh == 1 and sw == 1:
        return x
    *lead, h, w = x.shape
    out = np.zeros((*lead, (h - 1) * sh + 1, (w - 1) * sw + 1),
                   dtype=x.dtype)
    out[..., ::sh, ::sw] = x
    return out


def conv2d_backward_input(grad_out: np.ndarray, weight: np.ndarray,
                          input_shape: tuple, padding=0,
                          stride: int | tuple = 1,
                          dilation: int | tuple = 1, groups: int = 1,
                          algorithm: ConvAlgorithm | str =
                          ConvAlgorithm.POLYHANKEL) -> np.ndarray:
    """Gradient of the convolution output w.r.t. its input.

    *grad_out* is ``(n, f, oh, ow)``; returns ``(n, c, ih, iw)`` matching
    *input_shape*.  The computation is itself a convolution: the
    stride-dilated, fully padded gradient correlated with the spatially
    flipped, per-group channel-transposed weights at the *forward*
    dilation — run through any registered algorithm.
    """
    grad_out = ensure_array(grad_out, "grad_out", ndim=4, dtype=float)
    weight = ensure_array(weight, "weight", ndim=4, dtype=float)
    n, c, ih, iw = input_shape
    f, wc, kh, kw = weight.shape
    shape = ConvShape(ih=ih, iw=iw, kh=kh, kw=kw, n=n, c=c, f=f,
                      padding=padding, stride=stride, dilation=dilation,
                      groups=groups)
    if grad_out.shape != shape.output_shape():
        raise ValueError(
            f"grad_out shape {grad_out.shape} does not match "
            f"{shape.output_shape()}"
        )
    f_per, c_per = shape.group_filters, shape.group_channels
    eff_kh, eff_kw = shape.eff_kh, shape.eff_kw
    pt, pb, pl, pr = shape.pad_tblr

    # Stride-dilate the gradient, then full-pad by (eff_k - 1) for the
    # transposed correlation.
    g = dilate_spatial(grad_out, shape.stride_hw)
    g = np.pad(g, [(0, 0), (0, 0), (eff_kh - 1, eff_kh - 1),
                   (eff_kw - 1, eff_kw - 1)])
    # Flip the kernel spatially and swap its filter/channel roles within
    # each group: backward group gi maps f_per gradient channels onto
    # c_per input channels.
    w_flip = weight[:, :, ::-1, ::-1]
    w_t = np.ascontiguousarray(
        w_flip.reshape(shape.groups, f_per, c_per, kh, kw)
        .transpose(0, 2, 1, 3, 4)
    ).reshape(c, f_per, kh, kw)
    dx_core = convolve(g, w_t, algorithm=algorithm,
                       dilation=shape.dilation_hw, groups=shape.groups)
    # The transposed convolution only covers the input region the forward
    # stride actually visited; rows/columns beyond the last kernel
    # placement receive zero gradient.
    ph, pw = shape.padded_ih, shape.padded_iw
    dx_padded = np.zeros((n, c, ph, pw), dtype=dx_core.dtype)
    dx_padded[:, :, : dx_core.shape[2], : dx_core.shape[3]] = \
        dx_core[:, :, :ph, :pw]
    if pt or pb or pl or pr:
        return dx_padded[:, :, pt: pt + ih, pl: pl + iw]
    return dx_padded


def conv2d_backward_weight(grad_out: np.ndarray, x: np.ndarray,
                           kernel_size: tuple[int, int], padding=0,
                           stride: int | tuple = 1,
                           dilation: int | tuple = 1, groups: int = 1,
                           algorithm: ConvAlgorithm | str =
                           ConvAlgorithm.POLYHANKEL) -> np.ndarray:
    """Gradient of the convolution output w.r.t. the weights.

    *x* is the forward input ``(n, c, ih, iw)``; returns
    ``(f, c // groups, kh, kw)``.  Per group this is a correlation of the
    padded input with the stride-dilated gradient, sampled at the forward
    dilation (the dilation becomes the *stride* of the backward
    convolution).
    """
    grad_out = ensure_array(grad_out, "grad_out", ndim=4, dtype=float)
    x = ensure_array(x, "x", ndim=4, dtype=float)
    kh, kw = kernel_size
    n, c, ih, iw = x.shape
    f = grad_out.shape[1]
    shape = ConvShape(ih=ih, iw=iw, kh=kh, kw=kw, n=n, c=c, f=f,
                      padding=padding, stride=stride, dilation=dilation,
                      groups=groups)
    dil_h, dil_w = shape.dilation_hw
    f_per, c_per = shape.group_filters, shape.group_channels

    xp = pad2d(x, shape.pad_tblr)
    g = dilate_spatial(grad_out, shape.stride_hw)
    # The dilated gradient may be shorter than the padded input allows;
    # crop the input so the "valid" correlation yields exactly (kh, kw)
    # samples at stride (dil_h, dil_w).
    need_h = g.shape[2] + (kh - 1) * dil_h
    need_w = g.shape[3] + (kw - 1) * dil_w
    xp = xp[:, :, :need_h, :need_w]

    # Contract over batch: treat channels as batch and (f, n) as kernels,
    # one backward convolution per group.
    grads = []
    for gi in range(shape.groups):
        x_t = xp[:, gi * c_per:(gi + 1) * c_per].transpose(1, 0, 2, 3)
        g_t = g[:, gi * f_per:(gi + 1) * f_per].transpose(1, 0, 2, 3)
        dw = convolve(x_t, g_t, algorithm=algorithm,
                      stride=(dil_h, dil_w))        # (c_per, f_per, kh, kw)
        grads.append(dw.transpose(1, 0, 2, 3))
    return np.concatenate(grads, axis=0)            # (f, c_per, kh, kw)


def conv2d_backward_bias(grad_out: np.ndarray) -> np.ndarray:
    """Gradient w.r.t. the per-filter bias."""
    grad_out = ensure_array(grad_out, "grad_out", ndim=4)
    return grad_out.sum(axis=(0, 2, 3))


# ---------------------------------------------------------------------------
# N-dimensional generalizations
# ---------------------------------------------------------------------------

def _op_for_ndim(ndim: int) -> str:
    ops = {1: "conv1d", 2: "conv2d", 3: "conv3d"}
    if ndim not in ops:
        raise ValueError(
            f"backward passes support spatial ranks 1-3, got {ndim}"
        )
    return ops[ndim]


def dilate_spatial_nd(x: np.ndarray, stride, ndim: int) -> np.ndarray:
    """Insert zeros between samples of the trailing *ndim* axes."""
    stride_nd = normalize_tuple(stride, ndim, "stride")
    if all(s == 1 for s in stride_nd):
        return x
    lead, spatial = x.shape[:-ndim], x.shape[-ndim:]
    out = np.zeros(
        (*lead, *((e - 1) * s + 1 for e, s in zip(spatial, stride_nd))),
        dtype=x.dtype)
    out[(...,) + tuple(slice(None, None, s) for s in stride_nd)] = x
    return out


def convnd_backward_input(grad_out: np.ndarray, weight: np.ndarray,
                          input_shape: tuple, padding=0,
                          stride: int | tuple = 1,
                          dilation: int | tuple = 1, groups: int = 1,
                          algorithm: ConvAlgorithm | str =
                          ConvAlgorithm.POLYHANKEL) -> np.ndarray:
    """Input gradient of a 1D/2D/3D convolution (rank from *input_shape*).

    Same construction as :func:`conv2d_backward_input` with every spatial
    operation generalized to *ndim* axes; the actual convolution runs
    through the op-level registry so each rank uses its own fast path.
    """
    from repro.baselines.ndops import convolve_nd

    grad_out = ensure_array(grad_out, "grad_out", dtype=float)
    weight = ensure_array(weight, "weight", dtype=float)
    shape = ConvShapeNd.from_tensors(input_shape, weight.shape, padding,
                                     stride, dilation, groups)
    ndim = shape.ndim
    op = _op_for_ndim(ndim)
    if grad_out.shape != shape.output_shape():
        raise ValueError(
            f"grad_out shape {grad_out.shape} does not match "
            f"{shape.output_shape()}"
        )
    f_per, c_per = shape.group_filters, shape.group_channels
    g = dilate_spatial_nd(grad_out, shape.stride_nd, ndim)
    g = np.pad(g, [(0, 0), (0, 0)]
               + [(ek - 1, ek - 1) for ek in shape.eff_kernel])
    flip = (slice(None), slice(None)) + (slice(None, None, -1),) * ndim
    w_flip = weight[flip]
    perm = (0, 2, 1) + tuple(range(3, 3 + ndim))
    w_t = np.ascontiguousarray(
        w_flip.reshape(shape.groups, f_per, c_per, *shape.kernel)
        .transpose(perm)
    ).reshape(shape.c, f_per, *shape.kernel)
    dx_core = convolve_nd(g, w_t, op, algorithm,
                          dilation=shape.dilation_nd, groups=shape.groups)
    padded = shape.padded_extents
    dx_padded = np.zeros((shape.n, shape.c, *padded), dtype=dx_core.dtype)
    core = (slice(None), slice(None)) + tuple(
        slice(None, min(e, p)) for e, p in zip(dx_core.shape[2:], padded))
    dx_padded[core] = dx_core[(slice(None), slice(None)) + tuple(
        slice(None, p) for p in padded)]
    crop = (slice(None), slice(None)) + tuple(
        slice(lo, lo + e) for (lo, _), e in zip(shape.pad_pairs,
                                                shape.extents))
    return dx_padded[crop]


def convnd_backward_weight(grad_out: np.ndarray, x: np.ndarray,
                           kernel_size: tuple, padding=0,
                           stride: int | tuple = 1,
                           dilation: int | tuple = 1, groups: int = 1,
                           algorithm: ConvAlgorithm | str =
                           ConvAlgorithm.POLYHANKEL) -> np.ndarray:
    """Weight gradient of a 1D/2D/3D convolution (rank from *x*)."""
    from repro.baselines.ndops import convolve_nd

    grad_out = ensure_array(grad_out, "grad_out", dtype=float)
    x = ensure_array(x, "x", dtype=float)
    ndim = x.ndim - 2
    op = _op_for_ndim(ndim)
    kernel_size = tuple(kernel_size)
    f = grad_out.shape[1]
    shape = ConvShapeNd(extents=x.shape[2:], kernel=kernel_size,
                        n=x.shape[0], c=x.shape[1], f=f, padding=padding,
                        stride=stride, dilation=dilation, groups=groups)
    f_per, c_per = shape.group_filters, shape.group_channels
    xp = np.pad(x, [(0, 0), (0, 0)] + list(shape.pad_pairs))
    g = dilate_spatial_nd(grad_out, shape.stride_nd, ndim)
    need = tuple(ge + (k - 1) * d for ge, k, d in
                 zip(g.shape[2:], kernel_size, shape.dilation_nd))
    xp = xp[(slice(None), slice(None)) + tuple(slice(None, e)
                                               for e in need)]
    perm = (1, 0) + tuple(range(2, 2 + ndim))
    grads = []
    for gi in range(shape.groups):
        x_t = xp[:, gi * c_per:(gi + 1) * c_per].transpose(perm)
        g_t = g[:, gi * f_per:(gi + 1) * f_per].transpose(perm)
        dw = convolve_nd(x_t, g_t, op, algorithm,
                         stride=shape.dilation_nd)
        grads.append(dw.transpose(perm))      # (f_per, c_per, *kernel)
    return np.concatenate(grads, axis=0)      # (f, c_per, *kernel)


def convnd_backward_bias(grad_out: np.ndarray) -> np.ndarray:
    """Gradient w.r.t. the per-filter bias (any spatial rank)."""
    grad_out = np.asarray(grad_out)
    return grad_out.sum(axis=(0,) + tuple(range(2, grad_out.ndim)))


# ---------------------------------------------------------------------------
# Transposed convolution gradients
# ---------------------------------------------------------------------------

def conv_transpose2d_backward_input(grad_out: np.ndarray,
                                    weight: np.ndarray, padding=0,
                                    stride: int | tuple = 1,
                                    dilation: int | tuple = 1,
                                    groups: int = 1,
                                    algorithm: ConvAlgorithm | str =
                                    ConvAlgorithm.POLYHANKEL) -> np.ndarray:
    """Input gradient of a transposed convolution.

    ``conv_transpose2d`` is the adjoint ``M^T`` of the forward conv with
    the same parameters, so its input gradient is that forward conv
    applied to *grad_out* — no new machinery, just :func:`convolve` with
    the tconv weight read in its natural ``(F=c_in, C=c_out/g)`` layout.
    """
    grad_out = ensure_array(grad_out, "grad_out", ndim=4, dtype=float)
    weight = ensure_array(weight, "weight", ndim=4, dtype=float)
    return convolve(grad_out, weight, algorithm=algorithm,
                    padding=padding, stride=stride, dilation=dilation,
                    groups=groups)


def conv_transpose2d_backward_weight(grad_out: np.ndarray, x: np.ndarray,
                                     kernel_size: tuple[int, int],
                                     padding=0, stride: int | tuple = 1,
                                     dilation: int | tuple = 1,
                                     groups: int = 1,
                                     algorithm: ConvAlgorithm | str =
                                     ConvAlgorithm.POLYHANKEL
                                     ) -> np.ndarray:
    """Weight gradient of a transposed convolution.

    In the adjoint's forward-conv view *grad_out* plays the conv input
    and the tconv input *x* plays the conv output's gradient, so this is
    :func:`conv2d_backward_weight` with the two roles swapped; the result
    lands directly in the tconv ``(c_in, c_out/g, kh, kw)`` layout.
    """
    return conv2d_backward_weight(x, grad_out, kernel_size,
                                  padding=padding, stride=stride,
                                  dilation=dilation, groups=groups,
                                  algorithm=algorithm)
