"""A small tape-based autograd engine over the library's operators.

Enough machinery to *train* networks whose convolutions run through any of
the registered algorithms (PolyHankel included): a :class:`Tensor` records
the operations applied to it; ``backward()`` replays the tape in reverse.
The convolution backward passes are themselves computed with the library's
convolution algorithms (:mod:`repro.nn.grad`).

This is intentionally minimal — single-threaded, NumPy-backed, no graphs
across ``backward()`` calls — but it is numerically verified against finite
differences and suffices for the training example and tests.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.baselines.registry import ConvAlgorithm
from repro.nn import functional as F
from repro.nn.grad import (
    conv2d_backward_bias,
    conv2d_backward_input,
    conv2d_backward_weight,
    conv_transpose2d_backward_input,
    conv_transpose2d_backward_weight,
    convnd_backward_bias,
    convnd_backward_input,
    convnd_backward_weight,
)
from repro.utils.validation import ensure_array


class Tensor:
    """An array plus the closure that propagates gradients to its parents."""

    def __init__(self, data, parents: tuple["Tensor", ...] = (),
                 backward_fn: Callable[[np.ndarray], None] | None = None,
                 requires_grad: bool = False):
        self.data = ensure_array(data, "data", dtype=float)
        self.parents = parents
        self._backward_fn = backward_fn
        self.requires_grad = requires_grad or any(
            p.requires_grad for p in parents
        )
        self.grad: np.ndarray | None = None

    @property
    def shape(self) -> tuple:
        return self.data.shape

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Reverse-mode sweep from this tensor (default seed: ones)."""
        if grad is None:
            grad = np.ones_like(self.data)
        # Topological order over the tape.
        order: list[Tensor] = []
        seen: set[int] = set()

        def visit(node: "Tensor") -> None:
            if id(node) in seen:
                return
            seen.add(id(node))
            for parent in node.parents:
                visit(parent)
            order.append(node)

        visit(self)
        self._accumulate(np.asarray(grad, dtype=float))
        for node in reversed(order):
            if node._backward_fn is not None and node.grad is not None \
                    and node.requires_grad:
                node._backward_fn(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        return (f"Tensor(shape={self.data.shape}, "
                f"requires_grad={self.requires_grad})")


def parameter(data) -> Tensor:
    """A leaf tensor that collects gradients."""
    return Tensor(np.asarray(data, dtype=float), requires_grad=True)


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------

def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           padding: int | tuple | str = 0, stride: int | tuple = 1,
           dilation: int | tuple = 1, groups: int = 1,
           algorithm: ConvAlgorithm | str = ConvAlgorithm.POLYHANKEL
           ) -> Tensor:
    """Differentiable convolution; forward and both backwards run through
    the chosen algorithm.  Supports the full parameter space (per-axis
    stride/dilation, asymmetric or ``"same"`` padding, groups)."""
    out_data = F.conv2d(x.data, weight.data,
                        None if bias is None else bias.data,
                        padding, stride, dilation=dilation, groups=groups,
                        algorithm=algorithm)
    parents = (x, weight) + (() if bias is None else (bias,))

    def backward_fn(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(conv2d_backward_input(
                grad, weight.data, x.data.shape, padding=padding,
                stride=stride, dilation=dilation, groups=groups,
                algorithm=algorithm))
        if weight.requires_grad:
            weight._accumulate(conv2d_backward_weight(
                grad, x.data, weight.data.shape[2:], padding=padding,
                stride=stride, dilation=dilation, groups=groups,
                algorithm=algorithm))
        if bias is not None and bias.requires_grad:
            bias._accumulate(conv2d_backward_bias(grad))

    return Tensor(out_data, parents, backward_fn)


def _convnd(op_fn, x: Tensor, weight: Tensor, bias: Tensor | None,
            padding, stride, dilation, groups, algorithm) -> Tensor:
    out_data = op_fn(x.data, weight.data,
                     None if bias is None else bias.data,
                     padding, stride, dilation, groups,
                     algorithm=algorithm)
    parents = (x, weight) + (() if bias is None else (bias,))

    def backward_fn(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(convnd_backward_input(
                grad, weight.data, x.data.shape, padding=padding,
                stride=stride, dilation=dilation, groups=groups,
                algorithm=algorithm))
        if weight.requires_grad:
            weight._accumulate(convnd_backward_weight(
                grad, x.data, weight.data.shape[2:], padding=padding,
                stride=stride, dilation=dilation, groups=groups,
                algorithm=algorithm))
        if bias is not None and bias.requires_grad:
            bias._accumulate(convnd_backward_bias(grad))

    return Tensor(out_data, parents, backward_fn)


def conv1d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           padding: int | tuple | str = 0, stride: int | tuple = 1,
           dilation: int | tuple = 1, groups: int = 1,
           algorithm: ConvAlgorithm | str = ConvAlgorithm.POLYHANKEL
           ) -> Tensor:
    """Differentiable 1D convolution (full parameter space)."""
    return _convnd(F.conv1d, x, weight, bias, padding, stride, dilation,
                   groups, algorithm)


def conv3d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           padding: int | tuple | str = 0, stride: int | tuple = 1,
           dilation: int | tuple = 1, groups: int = 1,
           algorithm: ConvAlgorithm | str = ConvAlgorithm.POLYHANKEL
           ) -> Tensor:
    """Differentiable 3D convolution (full parameter space)."""
    return _convnd(F.conv3d, x, weight, bias, padding, stride, dilation,
                   groups, algorithm)


def conv_transpose2d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
                     padding: int | tuple = 0, stride: int | tuple = 1,
                     output_padding: int | tuple = 0,
                     dilation: int | tuple = 1, groups: int = 1,
                     algorithm: ConvAlgorithm | str =
                     ConvAlgorithm.POLYHANKEL) -> Tensor:
    """Differentiable transposed convolution.

    Input gradient is the plain forward conv with the same parameters
    (the adjoint of an adjoint); weight gradient is the 2D weight
    backward with input/gradient roles swapped.
    """
    out_data = F.conv_transpose2d(x.data, weight.data,
                                  None if bias is None else bias.data,
                                  padding, stride, output_padding,
                                  dilation, groups, algorithm=algorithm)
    parents = (x, weight) + (() if bias is None else (bias,))

    def backward_fn(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(conv_transpose2d_backward_input(
                grad, weight.data, padding=padding, stride=stride,
                dilation=dilation, groups=groups, algorithm=algorithm))
        if weight.requires_grad:
            weight._accumulate(conv_transpose2d_backward_weight(
                grad, x.data, weight.data.shape[2:], padding=padding,
                stride=stride, dilation=dilation, groups=groups,
                algorithm=algorithm))
        if bias is not None and bias.requires_grad:
            bias._accumulate(convnd_backward_bias(grad))

    return Tensor(out_data, parents, backward_fn)


def relu(x: Tensor) -> Tensor:
    mask = x.data > 0

    def backward_fn(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor(x.data * mask, (x,), backward_fn)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    out = x.data @ weight.data.T
    if bias is not None:
        out = out + bias.data
    parents = (x, weight) + (() if bias is None else (bias,))

    def backward_fn(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad @ weight.data)
        if weight.requires_grad:
            weight._accumulate(grad.T @ x.data)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=0))

    return Tensor(out, parents, backward_fn)


def flatten(x: Tensor) -> Tensor:
    original = x.data.shape
    out = x.data.reshape(original[0], -1)

    def backward_fn(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad.reshape(original))

    return Tensor(out, (x,), backward_fn)


def max_pool2d(x: Tensor, kernel_size: int,
               stride: int | None = None) -> Tensor:
    stride = stride or kernel_size
    n, c, h, w = x.data.shape
    oh = (h - kernel_size) // stride + 1
    ow = (w - kernel_size) // stride + 1
    windows = np.lib.stride_tricks.sliding_window_view(
        x.data, (kernel_size, kernel_size), axis=(2, 3)
    )[:, :, ::stride, ::stride]
    flat = windows.reshape(n, c, oh, ow, -1)
    arg = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]

    def backward_fn(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        dx = np.zeros_like(x.data)
        du, dv = np.divmod(arg, kernel_size)
        for i in range(oh):
            for j in range(ow):
                rows = i * stride + du[:, :, i, j]
                cols = j * stride + dv[:, :, i, j]
                nn, cc = np.meshgrid(np.arange(n), np.arange(c),
                                     indexing="ij")
                np.add.at(dx, (nn, cc, rows, cols), grad[:, :, i, j])
        x._accumulate(dx)

    return Tensor(out, (x,), backward_fn)


def mean(x: Tensor) -> Tensor:
    size = x.data.size

    def backward_fn(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(np.full(x.data.shape, float(grad) / size))

    return Tensor(np.asarray(x.data.mean()), (x,), backward_fn)


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy; *labels* is an int class vector."""
    labels = np.asarray(labels)
    probs = F.softmax(logits.data, axis=-1)
    batch = logits.data.shape[0]
    nll = -np.log(probs[np.arange(batch), labels] + 1e-12)
    loss = nll.mean()

    def backward_fn(grad: np.ndarray) -> None:
        if logits.requires_grad:
            dlogits = probs.copy()
            dlogits[np.arange(batch), labels] -= 1.0
            logits._accumulate(float(grad) * dlogits / batch)

    return Tensor(np.asarray(loss), (logits,), backward_fn)


# ---------------------------------------------------------------------------
# Optimizer
# ---------------------------------------------------------------------------

class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[Tensor], lr: float = 0.01,
                 momentum: float = 0.0):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v += p.grad
            p.data -= self.lr * v

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()
