"""Layer objects for the inference framework.

A deliberately small PyTorch-flavoured module system: layers hold
parameters as NumPy arrays, ``forward`` is pure, and ``Conv2d`` exposes the
``algorithm`` knob the paper's Sec. 4.2 experiment flips network-wide.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.registry import ConvAlgorithm
from repro.guard import faults as _faults
from repro.guard.checksum import array_checksum, verify_checksum
from repro.guard.state import guard_enabled
from repro.nn import functional as F
from repro.observe import record_cache_event, span
from repro.observe.registry import counters
from repro.perfmodel.counters import count
from repro.perfmodel.device import GpuDevice
from repro.perfmodel.timing import simulate
from repro.utils.shapes import ConvShape
from repro.utils.validation import require


class Layer:
    """Base class: a callable with an optional simulated-GPU cost."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def output_shape(self, input_shape: tuple) -> tuple:
        """Shape produced for an NCHW (or flat) input shape."""
        raise NotImplementedError

    def simulated_time_s(self, input_shape: tuple,
                         device: GpuDevice) -> float:
        """Simulated GPU seconds for one forward call (0 if negligible)."""
        return 0.0

    def param_count(self) -> int:
        return 0


class Conv2d(Layer):
    """2D convolution layer with a pluggable algorithm.

    Parameters are initialized with He-style scaling from a caller-provided
    generator, so networks are reproducible.

    When the algorithm is PolyHankel, the layer caches the kernel spectrum
    per plan (``cache_spectra=True``): the first forward of each input
    geometry transforms the weight once, and every later forward reuses the
    spectrum.  Rebinding ``layer.weight`` invalidates the cache via the
    property setter; in-place mutation is caught too, because cache hits
    are verified against an exact snapshot of the weight.
    ``invalidate_weight_cache()`` drops the cached spectra explicitly.
    ``workers=N`` chunks each forward's batch across a thread pool.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 padding: int | tuple | str = 0, stride: int | tuple = 1,
                 dilation: int | tuple = 1, groups: int = 1,
                 bias: bool = True,
                 algorithm: ConvAlgorithm | str = ConvAlgorithm.POLYHANKEL,
                 rng: np.random.Generator | None = None,
                 cache_spectra: bool = True, workers: int | None = None):
        require(in_channels > 0 and out_channels > 0,
                "channel counts must be positive")
        require(kernel_size > 0, "kernel size must be positive")
        require(groups >= 1, "groups must be positive")
        require(in_channels % groups == 0 and out_channels % groups == 0,
                f"channels ({in_channels}) and filters ({out_channels}) "
                f"must be divisible by groups ({groups})")
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.padding = padding
        self.stride = stride
        self.dilation = dilation
        self.groups = groups
        self.algorithm = (ConvAlgorithm(algorithm)
                          if isinstance(algorithm, str) else algorithm)
        self.cache_spectra = cache_spectra
        self.workers = workers
        self._spectrum_cache: dict = {}
        self._weight_version = 0
        self._cache_hits = 0
        self._cache_misses = 0
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        scale = np.sqrt(2.0 / fan_in)
        self.weight = rng.standard_normal(
            (out_channels, in_channels // groups, kernel_size, kernel_size)
        ) * scale
        self.bias = np.zeros(out_channels) if bias else None

    # -- weight-spectrum cache ------------------------------------------------

    @property
    def weight(self) -> np.ndarray:
        return self._weight

    @weight.setter
    def weight(self, value: np.ndarray) -> None:
        self._weight = np.asarray(value)
        self.invalidate_weight_cache()

    def invalidate_weight_cache(self) -> None:
        """Drop cached kernel spectra; the next forward retransforms."""
        self._weight_version += 1
        self._spectrum_cache.clear()

    @property
    def weight_version(self) -> int:
        """Bumped on every rebind/invalidation (introspection aid)."""
        return self._weight_version

    def spectrum_cache_info(self):
        """Per-layer (hits, misses, size, maxsize) of the spectrum cache."""
        from repro.fft.plan import CacheInfo

        return CacheInfo(self._cache_hits, self._cache_misses,
                         len(self._spectrum_cache), None)

    def conv_shape(self, input_shape: tuple) -> ConvShape:
        return ConvShape.from_tensors(input_shape, self.weight.shape,
                                      self.padding, self.stride,
                                      self.dilation, self.groups)

    def forward(self, x: np.ndarray) -> np.ndarray:
        with span("conv2d.forward", algorithm=self.algorithm.value,
                  out_channels=self.out_channels, k=self.kernel_size):
            if (self.algorithm is ConvAlgorithm.POLYHANKEL
                    and self.cache_spectra):
                return self._forward_polyhankel(x)
            return F.conv2d(x, self.weight, self.bias, self.padding,
                            self.stride, dilation=self.dilation,
                            groups=self.groups, algorithm=self.algorithm)

    def _forward_polyhankel(self, x: np.ndarray) -> np.ndarray:
        """Plan-cached PolyHankel forward: the weight is transformed once
        per plan and reused until the weight changes.  The plan key embeds
        stride/dilation/groups/padding, so the same weight convolved under
        different parameters never aliases a cached spectrum.

        While the guard is enabled, cached spectra are checksum-verified on
        every hit (a corrupted entry is recomputed, never served) and the
        result is sentinel-classified before the bias is applied; a tripped
        sentinel or a raised engine error re-executes the forward through
        the supervised fallback chain."""
        from repro.core.multichannel import get_plan
        from repro.utils.validation import check_conv_inputs

        x = np.asarray(x, dtype=float)
        check_conv_inputs(x, self._weight, self.padding, self.stride,
                          self.dilation, self.groups)
        plan = get_plan(self.conv_shape(x.shape))
        key = plan.cache_key
        entry = self._spectrum_cache.get(key)
        hit = entry is not None and np.array_equal(entry[0], self._weight)
        if hit:
            w_hat = entry[1]
            if _faults._STACK:
                _faults.maybe_corrupt_spectrum(w_hat)
            if guard_enabled() and not verify_checksum(w_hat, entry[2]):
                counters.add("guard.cache_corrupt", cache="layer_spectrum")
                hit = False
        if hit:
            self._cache_hits += 1
            record_cache_event("layer_spectrum", hit=True)
        else:
            self._cache_misses += 1
            record_cache_event("layer_spectrum", hit=False)
            w_hat = plan.transform_weight(self._weight)
            stamp = array_checksum(w_hat)
            self._spectrum_cache[key] = (
                np.array(self._weight, dtype=float, copy=True), w_hat, stamp)
        try:
            out = plan.execute(x, w_hat, workers=self.workers)
        except Exception:
            if not guard_enabled():
                raise
            return self._forward_guarded(x)
        if guard_enabled():
            from repro.guard.sentinel import classify

            verdict = classify(out, x, self._weight,
                               plan.shape.poly_product_len)
            if not verdict.ok:
                counters.add("guard.sentinel_trip", algorithm="polyhankel",
                             status=verdict.status, site="layer")
                return self._forward_guarded(x)
        if self.bias is not None:
            out = out + self.bias[None, :, None, None]
        return out

    def submit(self, x: np.ndarray, server=None,
               deadline_s: float | None = None):
        """Submit this layer's forward to the serving layer; returns a
        ``Future``.

        Concurrent submissions against the same layer instance coalesce
        into one stacked engine call (the layer's weight array is the
        coalescing identity), so a burst of single-image requests runs at
        batched throughput.  The serving path applies the weight and bias
        directly — the per-layer spectrum cache is bypassed in favour of
        the engine's plan-level spectrum cache, which the stacked call
        warms once per geometry.
        """
        return F.conv2d_async(x, self._weight, self.bias, self.padding,
                              self.stride, self.dilation, self.groups,
                              algorithm=self.algorithm, server=server,
                              deadline_s=deadline_s)

    def _forward_guarded(self, x: np.ndarray) -> np.ndarray:
        """Re-execute this forward through the supervised fallback chain."""
        from repro.guard.chain import guarded_conv2d

        return guarded_conv2d(x, self._weight, bias=self.bias,
                              padding=self.padding, stride=self.stride,
                              dilation=self.dilation, groups=self.groups,
                              algorithm=self.algorithm)

    def output_shape(self, input_shape: tuple) -> tuple:
        return self.conv_shape(input_shape).output_shape()

    def simulated_time_s(self, input_shape: tuple,
                         device: GpuDevice) -> float:
        return simulate(self.algorithm, self.conv_shape(input_shape),
                        device).total_s

    def counters(self, input_shape: tuple):
        """Counter report for this layer at *input_shape*."""
        return count(self.algorithm, self.conv_shape(input_shape))

    def param_count(self) -> int:
        n = self.weight.size
        if self.bias is not None:
            n += self.bias.size
        return n

    def __repr__(self) -> str:
        extras = ""
        if self.dilation != 1:
            extras += f", d={self.dilation}"
        if self.groups != 1:
            extras += f", g={self.groups}"
        return (f"Conv2d({self.in_channels}, {self.out_channels}, "
                f"k={self.kernel_size}, p={self.padding}, s={self.stride}"
                f"{extras}, algo={self.algorithm.value})")


class ReLU(Layer):
    def forward(self, x):
        return F.relu(x)

    def output_shape(self, input_shape):
        return input_shape

    def __repr__(self):
        return "ReLU()"


class MaxPool2d(Layer):
    def __init__(self, kernel_size: int, stride: int | None = None):
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x):
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def output_shape(self, input_shape):
        n, c, h, w = input_shape
        oh = (h - self.kernel_size) // self.stride + 1
        ow = (w - self.kernel_size) // self.stride + 1
        return (n, c, oh, ow)

    def __repr__(self):
        return f"MaxPool2d(k={self.kernel_size}, s={self.stride})"


class AvgPool2d(MaxPool2d):
    def forward(self, x):
        return F.avg_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self):
        return f"AvgPool2d(k={self.kernel_size}, s={self.stride})"


class BatchNorm2d(Layer):
    """Inference-mode batch norm with fixed running statistics."""

    def __init__(self, channels: int,
                 rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng(0)
        self.channels = channels
        self.running_mean = rng.standard_normal(channels) * 0.1
        self.running_var = 1.0 + 0.1 * rng.random(channels)
        self.gamma = np.ones(channels)
        self.beta = np.zeros(channels)

    def forward(self, x):
        return F.batch_norm2d(x, self.running_mean, self.running_var,
                              self.gamma, self.beta)

    def output_shape(self, input_shape):
        return input_shape

    def param_count(self):
        return 2 * self.channels

    def __repr__(self):
        return f"BatchNorm2d({self.channels})"


class Flatten(Layer):
    def forward(self, x):
        return x.reshape(x.shape[0], -1)

    def output_shape(self, input_shape):
        n = input_shape[0]
        flat = int(np.prod(input_shape[1:]))
        return (n, flat)

    def __repr__(self):
        return "Flatten()"


class Linear(Layer):
    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = rng.standard_normal(
            (out_features, in_features)
        ) * np.sqrt(2.0 / in_features)
        self.bias = np.zeros(out_features) if bias else None

    def forward(self, x):
        return F.linear(x, self.weight, self.bias)

    def output_shape(self, input_shape):
        return (input_shape[0], self.out_features)

    def param_count(self):
        n = self.weight.size
        if self.bias is not None:
            n += self.bias.size
        return n

    def __repr__(self):
        return f"Linear({self.in_features}, {self.out_features})"


class _ConvNdBase(Layer):
    """Shared parameter handling for the 1D/3D convolution layers."""

    _NDIM = 1
    _OP = "conv1d"

    def __init__(self, in_channels: int, out_channels: int,
                 kernel_size: int | tuple,
                 padding: int | tuple | str = 0, stride: int | tuple = 1,
                 dilation: int | tuple = 1, groups: int = 1,
                 bias: bool = True,
                 algorithm: ConvAlgorithm | str = ConvAlgorithm.POLYHANKEL,
                 rng: np.random.Generator | None = None):
        from repro.utils.shapes import normalize_tuple

        require(in_channels > 0 and out_channels > 0,
                "channel counts must be positive")
        require(groups >= 1, "groups must be positive")
        require(in_channels % groups == 0 and out_channels % groups == 0,
                f"channels ({in_channels}) and filters ({out_channels}) "
                f"must be divisible by groups ({groups})")
        kernel = normalize_tuple(kernel_size, self._NDIM, "kernel_size")
        require(all(k > 0 for k in kernel), "kernel size must be positive")
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel
        self.padding = padding
        self.stride = stride
        self.dilation = dilation
        self.groups = groups
        self.algorithm = (ConvAlgorithm(algorithm)
                          if isinstance(algorithm, str) else algorithm)
        fan_in = (in_channels // groups) * int(np.prod(kernel))
        self.weight = rng.standard_normal(
            (out_channels, in_channels // groups, *kernel)
        ) * np.sqrt(2.0 / fan_in)
        self.bias = np.zeros(out_channels) if bias else None

    def conv_shape(self, input_shape: tuple):
        from repro.utils.shapes import ConvShapeNd

        return ConvShapeNd.from_tensors(input_shape, self.weight.shape,
                                        self.padding, self.stride,
                                        self.dilation, self.groups)

    def forward(self, x):
        fn = getattr(F, self._OP)
        with span(f"{self._OP}.forward", algorithm=self.algorithm.value,
                  out_channels=self.out_channels):
            return fn(x, self.weight, self.bias, self.padding, self.stride,
                      self.dilation, self.groups, algorithm=self.algorithm)

    def output_shape(self, input_shape):
        return self.conv_shape(input_shape).output_shape()

    def param_count(self):
        n = self.weight.size
        if self.bias is not None:
            n += self.bias.size
        return n

    def __repr__(self):
        return (f"{type(self).__name__}({self.in_channels}, "
                f"{self.out_channels}, k={self.kernel_size}, "
                f"algorithm={self.algorithm.value})")


class Conv1d(_ConvNdBase):
    """1D convolution layer; runs through the 2D engine's packed FFTs."""

    _NDIM = 1
    _OP = "conv1d"


class Conv3d(_ConvNdBase):
    """3D convolution layer (plane-stacked degree map, one 1D FFT)."""

    _NDIM = 3
    _OP = "conv3d"


class ConvTranspose2d(Layer):
    """Transposed 2D convolution layer (generative decoder upsampling).

    Weight follows the PyTorch ``(in_channels, out_channels/groups, kh,
    kw)`` layout; the forward is the adjoint route through the chosen
    algorithm.
    """

    def __init__(self, in_channels: int, out_channels: int,
                 kernel_size: int | tuple,
                 padding: int | tuple = 0, stride: int | tuple = 1,
                 output_padding: int | tuple = 0,
                 dilation: int | tuple = 1, groups: int = 1,
                 bias: bool = True,
                 algorithm: ConvAlgorithm | str = ConvAlgorithm.POLYHANKEL,
                 rng: np.random.Generator | None = None):
        from repro.utils.shapes import normalize_tuple

        require(in_channels > 0 and out_channels > 0,
                "channel counts must be positive")
        require(groups >= 1, "groups must be positive")
        require(in_channels % groups == 0 and out_channels % groups == 0,
                f"channels ({in_channels}) and filters ({out_channels}) "
                f"must be divisible by groups ({groups})")
        kernel = normalize_tuple(kernel_size, 2, "kernel_size")
        require(all(k > 0 for k in kernel), "kernel size must be positive")
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel
        self.padding = padding
        self.stride = stride
        self.output_padding = output_padding
        self.dilation = dilation
        self.groups = groups
        self.algorithm = (ConvAlgorithm(algorithm)
                          if isinstance(algorithm, str) else algorithm)
        fan_in = (in_channels // groups) * int(np.prod(kernel))
        self.weight = rng.standard_normal(
            (in_channels, out_channels // groups, *kernel)
        ) * np.sqrt(2.0 / fan_in)
        self.bias = np.zeros(out_channels) if bias else None

    def forward(self, x):
        with span("conv_transpose2d.forward",
                  algorithm=self.algorithm.value,
                  out_channels=self.out_channels):
            return F.conv_transpose2d(x, self.weight, self.bias,
                                      self.padding, self.stride,
                                      self.output_padding, self.dilation,
                                      self.groups,
                                      algorithm=self.algorithm)

    def output_shape(self, input_shape):
        from repro.baselines.ndops import conv_transpose2d_output_shape

        return conv_transpose2d_output_shape(
            input_shape, self.weight.shape, self.padding, self.stride,
            self.dilation, self.groups, self.output_padding)

    def param_count(self):
        n = self.weight.size
        if self.bias is not None:
            n += self.bias.size
        return n

    def __repr__(self):
        return (f"ConvTranspose2d({self.in_channels}, "
                f"{self.out_channels}, k={self.kernel_size}, "
                f"stride={self.stride}, "
                f"algorithm={self.algorithm.value})")
