"""Sequential networks with per-operator accounting.

Reimplements the slice of PyTorch the paper's Sec. 4.2 experiment needs:
run a network with one convolution algorithm forced everywhere, and
accumulate the (simulated GPU) time spent in the convolution operator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.registry import ConvAlgorithm
from repro.nn.layers import Conv2d, Layer
from repro.perfmodel.device import GpuDevice, get_device


class Sequential(Layer):
    """A chain of layers applied in order."""

    def __init__(self, *layers: Layer, name: str = "network"):
        if not layers:
            raise ValueError("a network needs at least one layer")
        self.layers = list(layers)
        self.name = name

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def output_shape(self, input_shape: tuple) -> tuple:
        shape = input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
        return shape

    def layer_shapes(self, input_shape: tuple) -> list[tuple]:
        """Input shape seen by each layer, in order."""
        shapes = []
        shape = input_shape
        for layer in self.layers:
            shapes.append(shape)
            shape = layer.output_shape(shape)
        return shapes

    def conv_layers(self) -> list[Conv2d]:
        return [l for l in self.layers if isinstance(l, Conv2d)]

    def set_conv_algorithm(self,
                           algorithm: ConvAlgorithm | str) -> "Sequential":
        """Force one convolution algorithm network-wide (Sec. 4.2)."""
        algorithm = (ConvAlgorithm(algorithm)
                     if isinstance(algorithm, str) else algorithm)
        for layer in self.conv_layers():
            layer.algorithm = algorithm
        return self

    def param_count(self) -> int:
        return sum(layer.param_count() for layer in self.layers)

    def __repr__(self) -> str:
        inner = ", ".join(repr(l) for l in self.layers[:6])
        if len(self.layers) > 6:
            inner += f", ... {len(self.layers) - 6} more"
        return f"Sequential[{self.name}]({inner})"


@dataclass(frozen=True)
class ConvProfile:
    """Accumulated simulated convolution cost of one network run."""

    network: str
    device: str
    algorithm: ConvAlgorithm
    per_layer_s: tuple[float, ...]
    iterations: int

    @property
    def total_s(self) -> float:
        return sum(self.per_layer_s) * self.iterations

    @property
    def total_ms(self) -> float:
        return self.total_s * 1e3


def profile_conv_time(network: Sequential, input_shape: tuple,
                      device: GpuDevice | str,
                      algorithm: ConvAlgorithm | str | None = None,
                      iterations: int = 1) -> ConvProfile:
    """Simulated GPU time accumulated in the conv operator (Fig. 6).

    When *algorithm* is given, every conv layer is forced to it first —
    exactly the paper's modified-PyTorch experiment.  ``iterations`` scales
    the one-pass total to a training/inference-loop accumulation.
    """
    device = get_device(device)
    if algorithm is not None:
        network.set_conv_algorithm(algorithm)
    times = []
    shape = input_shape
    for layer in network.layers:
        if isinstance(layer, Conv2d):
            times.append(layer.simulated_time_s(shape, device))
        shape = layer.output_shape(shape)
    algo = (network.conv_layers()[0].algorithm if network.conv_layers()
            else ConvAlgorithm.POLYHANKEL)
    return ConvProfile(network.name, device.name, algo, tuple(times),
                       iterations)
