"""Single-channel PolyHankel convolution (Sec. 2.2-2.3).

This is the clearest statement of the paper's contribution: one real FFT of
the flattened (never expanded) input, one real FFT of the sparse kernel
polynomial, one elementwise product, one inverse FFT, and a strided gather
of the output coefficients.
"""

from __future__ import annotations

import numpy as np

from repro import fft as _fft
from repro.core.construction import (
    input_polynomial,
    kernel_polynomial,
    output_gather_indices,
    polynomial_lengths,
)
from repro.core.planning import FftPolicy, plan_fft_size
from repro.observe import span
from repro.utils.shapes import ConvShape
from repro.utils.validation import ensure_array


def conv2d_single(image: np.ndarray, kernel: np.ndarray, padding: int = 0,
                  stride: int = 1, fft_policy: FftPolicy = "pow2",
                  backend: str | None = None) -> np.ndarray:
    """2D convolution of one image with one kernel via PolyHankel.

    This is the didactic single-channel entry point; the batched,
    multi-channel production path lives in
    :func:`repro.core.multichannel.conv2d_polyhankel`.

    >>> import numpy as np
    >>> img = np.arange(9.0).reshape(3, 3)
    >>> ker = np.ones((2, 2))
    >>> conv2d_single(img, ker)
    array([[ 8., 12.],
           [20., 24.]])
    """
    image = ensure_array(image, "image", ndim=2, dtype=float)
    kernel = ensure_array(kernel, "kernel", ndim=2, dtype=float)
    shape = ConvShape(ih=image.shape[0], iw=image.shape[1],
                      kh=kernel.shape[0], kw=kernel.shape[1],
                      padding=padding, stride=stride)

    a_coeffs = input_polynomial(image, padding)        # len Ih*Iw (padded)
    u_coeffs = kernel_polynomial(kernel, shape.padded_iw)
    _, _, linear_len = polynomial_lengths(shape)
    nfft = plan_fft_size(linear_len, fft_policy)

    with _fft.use_backend(_fft.get_backend(backend)):
        with span("stage.input_fft", n=nfft, rows=1,
                  bytes=a_coeffs.nbytes):
            a_hat = _fft.rfft(a_coeffs, nfft)
        with span("weight.transform", n=nfft, bytes=u_coeffs.nbytes):
            u_hat = _fft.rfft(u_coeffs, nfft)
        with span("stage.pointwise", bytes=a_hat.nbytes + u_hat.nbytes):
            out_hat = a_hat * u_hat
        with span("stage.inverse_fft", n=nfft, rows=1,
                  bytes=out_hat.nbytes):
            product = _fft.irfft(out_hat, nfft)
    with span("stage.gather", bytes=product.nbytes):
        return product[output_gather_indices(shape)]
