"""Degree maps: from matrix indices to polynomial exponents.

This module implements Sec. 3.1 of the paper ("Calculating The Degrees of
Polynomial Terms").  The conceptual im2col matrix is doubly blocked Hankel,
so its distinct elements can be enumerated once by the L-shaped traversal of
Fig. 2; the resulting integer map simultaneously provides

- the exponents of the **input polynomial** A(t) (all map entries, Eq. 10),
- the exponents of the **kernel polynomial** U(t) (the reversed first row of
  the map, Eq. 11 / Eq. 6), and
- the exponents holding the **result** (the last column of the map, Eq. 12).

For a stride-1 convolution with padded input width ``iw`` the map value at
distinct element ``(r, s)`` is simply ``r * iw + s`` — the flattened input
index — which is what makes the whole construction implementable without
building the im2col matrix.  ``lshaped_traversal_map`` builds the map by the
literal Fig. 2 traversal; tests assert it coincides with the closed form.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require


def _pair(value) -> tuple[int, int]:
    return (value, value) if isinstance(value, int) else tuple(value)


def max_kernel_degree(kh: int, kw: int, iw: int,
                      dilation: int | tuple = 1) -> int:
    """Highest exponent M in the kernel polynomial U(t).

    Undilated, ``M = (kh - 1) * iw + kw - 1`` is the flattened index of the
    kernel's bottom-right element inside a width-``iw`` input — the last
    entry of the first row-degree vector RD_1 (Sec. 2.2).  Dilation
    *stretches* the degree map: tap ``(i, j)`` lands on input offset
    ``(dh*i, dw*j)``, so ``M = (kh - 1) * dh * iw + (kw - 1) * dw``.
    """
    dh, dw = _pair(dilation)
    require(kh >= 1 and kw >= 1, "kernel extents must be positive")
    require(dh >= 1 and dw >= 1, "dilation must be positive")
    require(iw >= (kw - 1) * dw + 1,
            f"dilated kernel width {(kw - 1) * dw + 1} exceeds input "
            f"width {iw}")
    return (kh - 1) * dh * iw + (kw - 1) * dw


def input_degrees(ih: int, iw: int) -> np.ndarray:
    """Exponent of each input element in A(t): ``iw * i + j`` (Eq. 10)."""
    require(ih >= 1 and iw >= 1, "input extents must be positive")
    return iw * np.arange(ih)[:, None] + np.arange(iw)[None, :]


def kernel_degrees(kh: int, kw: int, iw: int,
                   dilation: int | tuple = 1) -> np.ndarray:
    """Exponent of each kernel element in U(t): ``M - (iw*dh*i + dw*j)``.

    This is the reversed first-row degree vector — the Eq. 6 construction,
    generalized to dilated taps via the stretched degree map (a tap at
    kernel position ``(i, j)`` reads input offset ``(dh*i, dw*j)``, so its
    degree shifts by ``iw*dh*i + dw*j``).  With ``dilation=1`` it equals
    scattering the zero-upsampled kernel, without materializing the zeros.
    The paper's closed form Eq. 11 has an off-by-one in its constant term
    (it disagrees with the worked example); this matches the example and is
    verified against direct convolution.
    """
    dh, dw = _pair(dilation)
    m = max_kernel_degree(kh, kw, iw, (dh, dw))
    return m - (iw * dh * np.arange(kh)[:, None]
                + dw * np.arange(kw)[None, :])


def output_degrees(oh: int, ow: int, iw: int, kh: int, kw: int,
                   stride: int | tuple = 1,
                   dilation: int | tuple = 1) -> np.ndarray:
    """Exponents in P(t) = A(t) U(t) that hold the convolution output.

    Output position ``(i, j)`` reads coefficient ``M + iw*sh*i + sw*j``
    (Eq. 12 with per-axis stride): the degrees of the last column of the
    conceptual im2col matrix.  Stride simply subsamples the gather
    positions per axis; dilation only enters through ``M``.
    """
    sh, sw = _pair(stride)
    require(oh >= 1 and ow >= 1, "output extents must be positive")
    require(sh >= 1 and sw >= 1, "stride must be positive")
    m = max_kernel_degree(kh, kw, iw, dilation)
    return (m + iw * sh * np.arange(oh)[:, None]
            + sw * np.arange(ow)[None, :])


def lshaped_traversal_map(oh: int, ow: int, kh: int, kw: int) -> np.ndarray:
    """The Fig. 2 degree map, built by the literal L-shaped traversal.

    The doubly blocked Hankel matrix has ``oh x kh`` blocks of shape
    ``ow x kw``.  Distinct blocks are indexed by the block skew-diagonal
    ``r = I + J`` (``oh + kh - 1`` of them); distinct elements within a block
    by the inner skew-diagonal ``s = i + j`` (``ow + kw - 1`` of them).  The
    traversal walks the first row of blocks left-to-right then the last
    column top-to-bottom, and within each block the first row then the last
    column, assigning consecutive integers.

    Returns the ``(oh + kh - 1, ow + kw - 1)`` base map: entry ``[r, s]`` is
    the degree of the distinct element on block diagonal ``r``, inner
    diagonal ``s`` — for stride-1 convolution, exactly ``r * iw + s`` with
    ``iw = ow + kw - 1``.
    """
    require(min(oh, ow, kh, kw) >= 1, "all extents must be positive")
    base_rows = oh + kh - 1
    base_cols = ow + kw - 1
    base = np.full((base_rows, base_cols), -1, dtype=np.intp)
    counter = 0

    # Outer L-path: blocks (0, 0..kh-1) then (1..oh-1, kh-1).  Block (I, J)
    # covers base row r = I + J, so the path visits r = 0 .. base_rows-1.
    outer_path = [(0, j) for j in range(kh)]
    outer_path += [(i, kh - 1) for i in range(1, oh)]
    for block_i, block_j in outer_path:
        r = block_i + block_j
        # Inner L-path: element (0, 0..kw-1) then (1..ow-1, kw-1); element
        # (i, j) covers base column s = i + j.
        inner_path = [(0, j) for j in range(kw)]
        inner_path += [(i, kw - 1) for i in range(1, ow)]
        for inner_i, inner_j in inner_path:
            s = inner_i + inner_j
            base[r, s] = counter
            counter += 1

    return base


def first_row_of_map(base: np.ndarray, kh: int, kw: int,
                     ow: int) -> np.ndarray:
    """Degrees of the first im2col row (starred entries of Fig. 2).

    Row 0 of the conceptual matrix touches blocks ``(0, J)`` at inner
    position ``(0, j)``: base entries ``[J, j]`` for ``J < kh, j < kw``.
    """
    return base[:kh, :kw].reshape(-1)


def last_col_of_map(base: np.ndarray, kh: int, kw: int, oh: int,
                    ow: int) -> np.ndarray:
    """Degrees of the last im2col column (bold entries of Fig. 2).

    The last column touches blocks ``(I, kh-1)`` at inner position
    ``(i, kw-1)``: base entries ``[I + kh - 1, i + kw - 1]``.
    """
    return base[kh - 1:, kw - 1:].reshape(-1)
