"""Batched multi-channel, multi-filter PolyHankel convolution (Sec. 3.2).

Two channel-handling strategies, as discussed in the paper:

- ``"sum"`` (the paper's chosen option): FFT each input channel separately,
  multiply with per-channel kernel spectra and **sum across channels in the
  frequency domain**, then run one inverse FFT per (image, filter) pair.
- ``"merge"`` (the paper's alternative): interleave all channels into one
  long polynomial whose single FFT aggregates channels automatically, at the
  price of a C-times larger transform.

Both produce identical results; ``benchmarks/bench_ablation_channel_merge``
quantifies the tradeoff the paper describes ("an increase in input size
significantly increases the execution time for FFT, surpassing the time
needed for summing different channels").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from repro import fft as _fft
from repro.core.construction import (
    channel_kernel_stack,
    merged_input_polynomial,
    merged_kernel_polynomial,
    merged_output_gather_indices,
    output_gather_indices,
    polynomial_lengths,
)
from repro.core.planning import FftPolicy, plan_fft_size
from repro.hankel.im2col_view import pad2d
from repro.utils.shapes import ConvShape
from repro.utils.validation import check_conv_inputs, ensure_array

ChannelStrategy = Literal["sum", "merge"]


@dataclass
class PolyHankelPlan:
    """A reusable execution plan for a fixed convolution shape.

    Mirrors cuDNN's plan/descriptor pattern: the FFT size, gather indices
    and the kernel spectrum layout depend only on the :class:`ConvShape`, so
    repeated executions (every training/inference step) reuse them.  The
    weight spectrum itself can also be cached via :meth:`transform_weight`
    when weights are frozen.
    """

    shape: ConvShape
    fft_policy: FftPolicy = "pow2"
    strategy: ChannelStrategy = "sum"
    backend: str | None = None
    nfft: int = field(init=False)
    gather: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.strategy not in ("sum", "merge"):
            raise ValueError(
                f"unknown channel strategy {self.strategy!r}; "
                "expected 'sum' or 'merge'"
            )
        len_a, len_u, linear_len = polynomial_lengths(self.shape)
        if self.strategy == "sum":
            self.nfft = plan_fft_size(linear_len, self.fft_policy)
            self.gather = output_gather_indices(self.shape)
        else:
            c = self.shape.c
            merged_linear = c * len_a + c * len_u - 1
            self.nfft = plan_fft_size(merged_linear, self.fft_policy)
            self.gather = merged_output_gather_indices(self.shape)

    # -- weight handling -----------------------------------------------------

    def transform_weight(self, weight: np.ndarray) -> np.ndarray:
        """Kernel polynomial spectra for *weight* (``(f, c, kh, kw)``).

        Returns ``(f, c, nfft//2 + 1)`` for the ``sum`` strategy and
        ``(f, nfft//2 + 1)`` for ``merge``.
        """
        weight = ensure_array(weight, "weight", ndim=4, dtype=float)
        if weight.shape != self.shape.weight_shape():
            raise ValueError(
                f"weight shape {weight.shape} does not match plan "
                f"{self.shape.weight_shape()}"
            )
        fft = _fft.get_backend(self.backend)
        if self.strategy == "sum":
            stack = channel_kernel_stack(weight, self.shape.padded_iw)
            return fft.rfft(stack, self.nfft)
        merged = np.stack([
            merged_kernel_polynomial(weight[f], self.shape.padded_iw)
            for f in range(self.shape.f)
        ])
        return fft.rfft(merged, self.nfft)

    # -- execution -------------------------------------------------------------

    def execute(self, x: np.ndarray, weight_hat: np.ndarray) -> np.ndarray:
        """Run the convolution for input *x* against a transformed weight."""
        x = ensure_array(x, "x", ndim=4, dtype=float)
        if x.shape != self.shape.input_shape():
            raise ValueError(
                f"input shape {x.shape} does not match plan "
                f"{self.shape.input_shape()}"
            )
        fft = _fft.get_backend(self.backend)
        xp = pad2d(x, self.shape.padding)
        n, c = self.shape.n, self.shape.c

        if self.strategy == "sum":
            flat = xp.reshape(n, c, -1)
            x_hat = fft.rfft(flat, self.nfft)            # (n, c, bins)
            # Pointwise multiply and sum over channels: the paper's
            # "summation of outputs across different channels ... during
            # element-wise multiplication".
            out_hat = np.einsum("ncb,fcb->nfb", x_hat, weight_hat)
        else:
            merged = np.stack([merged_input_polynomial(xp[i])
                               for i in range(n)])       # (n, C*L)
            x_hat = fft.rfft(merged, self.nfft)          # (n, bins)
            out_hat = x_hat[:, None, :] * weight_hat[None, :, :]

        product = fft.irfft(out_hat, self.nfft)          # (n, f, nfft)
        return product[..., self.gather]                 # (n, f, oh, ow)


_PLAN_CACHE: dict[tuple, PolyHankelPlan] = {}


def get_plan(shape: ConvShape, fft_policy: FftPolicy = "pow2",
             strategy: ChannelStrategy = "sum",
             backend: str | None = None) -> PolyHankelPlan:
    """Fetch (or build and cache) the plan for *shape* and options."""
    backend_name = _fft.get_backend(backend).name
    key = (shape, fft_policy, strategy, backend_name)
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        plan = PolyHankelPlan(shape, fft_policy, strategy, backend_name)
        _PLAN_CACHE[key] = plan
    return plan


def clear_plan_cache() -> None:
    """Drop all cached plans (mainly for tests and memory control)."""
    _PLAN_CACHE.clear()


def conv2d_polyhankel(x: np.ndarray, weight: np.ndarray,
                      bias: np.ndarray | None = None, padding: int = 0,
                      stride: int = 1, fft_policy: FftPolicy = "pow2",
                      strategy: ChannelStrategy = "sum",
                      backend: str | None = None) -> np.ndarray:
    """2D convolution of an NCHW batch via the PolyHankel method.

    Parameters mirror ``torch.nn.functional.conv2d`` where applicable.
    Returns an ``(n, f, oh, ow)`` array.
    """
    x = ensure_array(x, "x", dtype=float)
    weight = ensure_array(weight, "weight", dtype=float)
    check_conv_inputs(x, weight, padding, stride)
    shape = ConvShape.from_tensors(x.shape, weight.shape, padding, stride)
    plan = get_plan(shape, fft_policy, strategy, backend)
    out = plan.execute(x, plan.transform_weight(weight))
    if bias is not None:
        bias = ensure_array(bias, "bias", ndim=1)
        if len(bias) != shape.f:
            raise ValueError(
                f"bias must have {shape.f} entries, got {len(bias)}"
            )
        out = out + bias[None, :, None, None]
    return out
