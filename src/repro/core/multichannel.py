"""Batched multi-channel, multi-filter PolyHankel convolution (Sec. 3.2).

Two channel-handling strategies, as discussed in the paper:

- ``"sum"`` (the paper's chosen option): FFT each input channel separately,
  multiply with per-channel kernel spectra and **sum across channels in the
  frequency domain**, then run one inverse FFT per (image, filter) pair.
- ``"merge"`` (the paper's alternative): interleave all channels into one
  long polynomial whose single FFT aggregates channels automatically, at the
  price of a C-times larger transform.

Both produce identical results; ``benchmarks/bench_ablation_channel_merge``
quantifies the tradeoff the paper describes.

This module is also the execution engine: everything shape-dependent lives
in a :class:`PolyHankelPlan` (bounded LRU cache, :func:`get_plan`), and
everything *weight*-dependent — the kernel spectrum — is memoized in a
bounded, content-verified spectrum cache (:meth:`PolyHankelPlan.
weight_spectrum`), so steady-state inference transforms each kernel exactly
once.  :meth:`PolyHankelPlan.execute` optionally chunks the batch across a
thread pool (``workers=N``); chunked execution is bit-identical to the
sequential path because every pipeline stage is row-independent.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from repro import fft as _fft
from repro.core.construction import (
    channel_kernel_stack,
    merged_input_stack,
    merged_kernel_stack,
    merged_output_gather_indices,
    output_gather_indices,
    polynomial_lengths,
)
from repro.core.planning import (
    FftPolicy,
    PlanSpec,
    SpectrumLayout,
    plan_fft_size,
    resolve_fft_policy,
    select_spectrum_layout,
)
from repro.fft import packed as _packed
from repro.fft.plan import CacheInfo
from repro.guard import faults as _faults
from repro.guard.checksum import array_checksum, verify_checksum
from repro.guard.state import guard_enabled
from repro.hankel.im2col_view import pad2d
from repro.observe import record_cache_event, span
from repro.observe.registry import (
    cache_hits_misses,
    counters,
    reset_cache_stats,
)
from repro.utils.shapes import ConvShape
from repro.utils.validation import check_conv_inputs, ensure_array

ChannelStrategy = Literal["sum", "merge"]

#: Per-backend floor on ``n * (c + f) * nfft`` below which ``workers=N``
#: requests run sequentially anyway: under it, thread wake-up plus the
#: result concatenation cost more than the chunked transforms save
#: (BENCH_2026-08-06.json showed every conv16 case *slower* with workers).
#: pocketfft's batched transforms leave threads far less to win than the
#: builtin backend's pure-Python kernels, hence the much higher bar.
_SPLIT_MIN_WORK = {"builtin": 120_000}
_SPLIT_MIN_WORK_DEFAULT = 1_000_000


def _as_grid(gather: np.ndarray) -> tuple[int, int, int] | None:
    """``(base, row_stride, col_stride)`` if *gather* is a regular grid.

    Output degrees are affine in (i, j) for every stride (Eq. 12), so this
    holds for all shapes we generate; the check keeps it an invariant
    rather than an assumption.
    """
    if gather.ndim != 2 or gather.size == 0:
        return None
    base = int(gather[0, 0])
    cs = int(gather[0, 1]) - base if gather.shape[1] > 1 else 1
    rs = int(gather[1, 0]) - base if gather.shape[0] > 1 else 1
    if rs <= 0 or cs <= 0:
        return None
    oh, ow = gather.shape
    expect = base + rs * np.arange(oh)[:, None] + cs * np.arange(ow)[None, :]
    if not np.array_equal(gather, expect):
        return None
    return base, rs, cs


@dataclass
class PolyHankelPlan:
    """A reusable execution plan for a fixed convolution shape.

    Mirrors cuDNN's plan/descriptor pattern: the FFT size, gather indices
    and the kernel spectrum layout depend only on the :class:`ConvShape`, so
    repeated executions (every training/inference step) reuse them.  The
    weight spectrum itself is cached via :meth:`weight_spectrum` when
    weights are frozen.

    ``fft_policy="auto"`` resolves to the concrete policy best for the
    plan's backend (see :func:`repro.core.planning.resolve_fft_policy`);
    after construction :attr:`fft_policy` is always concrete.  The same
    holds for ``layout="auto"`` — the spectrum layout (planar einsum vs.
    the fused interleaved matmul pipeline, see
    :func:`repro.core.planning.select_spectrum_layout`) is fixed at plan
    time and recorded on the plan's :class:`PlanSpec`.
    """

    shape: ConvShape
    fft_policy: FftPolicy = "pow2"
    strategy: ChannelStrategy = "sum"
    backend: str | None = None
    layout: SpectrumLayout = "auto"
    nfft: int = field(init=False)
    bins: int = field(init=False)
    gather: np.ndarray = field(init=False)
    gather_grid: tuple[int, int, int] | None = field(init=False)

    def __post_init__(self) -> None:
        if self.strategy not in ("sum", "merge"):
            raise ValueError(
                f"unknown channel strategy {self.strategy!r}; "
                "expected 'sum' or 'merge'"
            )
        self.fft_policy = resolve_fft_policy(self.fft_policy, self.backend)
        self.layout = select_spectrum_layout(self.shape, self.strategy,
                                             self.fft_policy, self.layout)
        len_a, len_u, linear_len = polynomial_lengths(self.shape)
        if self.strategy == "sum":
            self.nfft = plan_fft_size(linear_len, self.fft_policy)
            if self.layout == "interleaved" and self.fft_policy == "smooth7":
                # The fused path's runtime is dominated by batched *complex*
                # transforms, where pocketfft's radix-4/8 kernels make
                # binary-rich sizes faster per point than the minimal
                # 7-smooth length (e.g. 1280 beats 1250 by ~20%).
                self.nfft = _fft.next_fast_len_bias2(linear_len)
            self.gather = output_gather_indices(self.shape)
        else:
            # Channels merge *within* a group; each group is an independent
            # polynomial product, so the transform is c/groups times longer,
            # not c times.
            c = self.shape.group_channels
            merged_linear = c * len_a + c * len_u - 1
            self.nfft = plan_fft_size(merged_linear, self.fft_policy)
            self.gather = merged_output_gather_indices(self.shape)
        self.bins = self.nfft // 2 + 1
        self.gather_grid = _as_grid(self.gather)
        # Thread-worker handoff floor (see _SPLIT_MIN_WORK): splitting the
        # batch only pays once the transform work per call clears it.
        backend_name = _fft.get_backend(self.backend).name
        rows = self.shape.c + self.shape.f if self.strategy == "sum" \
            else self.shape.groups + self.shape.f
        self._split_work = self.shape.n * rows * self.nfft
        self._split_min = _SPLIT_MIN_WORK.get(backend_name,
                                              _SPLIT_MIN_WORK_DEFAULT)
        # Per-plan scratch buffers for the sequential path (padded input,
        # frequency-product target).  Reuse keeps the pages warm across
        # repeated calls; every element is overwritten per call, so the
        # values are identical to freshly allocated buffers.
        self._scratch: dict = {}
        self._scratch_lock = threading.Lock()

    @property
    def cache_key(self) -> tuple:
        """Identity of this plan's numerical configuration."""
        backend_name = _fft.get_backend(self.backend).name
        return (self.shape, self.fft_policy, self.strategy, backend_name,
                self.layout)

    @property
    def spec(self) -> PlanSpec:
        """The pickle-safe :class:`PlanSpec` identifying this plan."""
        return PlanSpec(self.shape, self.fft_policy, self.strategy,
                        _fft.get_backend(self.backend).name, self.layout)

    def __reduce__(self):
        # Plans hold locks and scratch buffers, so they pickle as their
        # spec and re-resolve against the destination process's warm plan
        # cache (serving-layer process workers depend on this: plans
        # travel as cache keys, never as payloads).
        return (_plan_from_spec, (self.shape, self.fft_policy,
                                  self.strategy,
                                  _fft.get_backend(self.backend).name,
                                  self.layout))

    # -- weight handling -----------------------------------------------------

    def transform_weight(self, weight: np.ndarray) -> np.ndarray:
        """Kernel polynomial spectra for *weight* (``(f, c, kh, kw)``).

        Returns ``(f, c, nfft//2 + 1)`` for the ``sum`` strategy with the
        planar layout, ``(f, nfft//2 + 1)`` for ``merge``.  The
        interleaved layout instead returns the bins-major packed operand
        ``(g, bins, f_per, c_per)`` of
        :func:`repro.fft.packed.pack_weight_operand`, ready for the fused
        pointwise matmul.  Always recomputes; the cached entry point is
        :meth:`weight_spectrum`.
        """
        weight = ensure_array(weight, "weight", ndim=4, dtype=float)
        if weight.shape != self.shape.weight_shape():
            raise ValueError(
                f"weight shape {weight.shape} does not match plan "
                f"{self.shape.weight_shape()}"
            )
        fft = _fft.get_backend(self.backend)
        dilation = self.shape.dilation_hw
        with span("weight.transform", strategy=self.strategy,
                  nfft=self.nfft, layout=self.layout, bytes=weight.nbytes):
            if self.strategy == "sum":
                stack = channel_kernel_stack(weight, self.shape.padded_iw,
                                             dilation)
                w_hat = fft.rfft(stack, self.nfft)
                if self.layout == "interleaved":
                    shape = self.shape
                    return _packed.pack_weight_operand(w_hat.reshape(
                        shape.groups, shape.group_filters,
                        shape.group_channels, self.bins))
                return w_hat
            merged = merged_kernel_stack(weight, self.shape.padded_iw,
                                         dilation)
            return fft.rfft(merged, self.nfft)

    def weight_spectrum(self, weight: np.ndarray) -> np.ndarray:
        """Cached kernel spectra for *weight*.

        Consults the module-level spectrum cache keyed by ``(id(weight),
        id(plan))``.  A hit is only served after an exact content check
        against the stored snapshot, so mutating a weight array (in place
        or by rebinding) always yields fresh spectra — the cache can return
        stale results **never**, only miss.  While the guard is enabled,
        entries additionally carry a content checksum of the *spectrum*
        itself: a hit whose spectrum no longer matches its insert-time
        stamp (in-memory rot, a doctored entry) is treated as a miss and
        recomputed, reported through ``guard.cache_corrupt``.
        """
        if not _spectrum_cache_enabled():
            return self.transform_weight(weight)
        # Key on object identities — much cheaper to hash per call than the
        # full plan cache_key tuple.  Storing the plan in the entry both
        # pins its id (no reuse while the entry lives) and lets the hit
        # path confirm the entry belongs to this exact plan object.
        key = (id(weight), id(self))
        arr = np.asarray(weight)
        hit = None
        with _spectrum_lock:
            entry = _SPECTRUM_CACHE.get(key)
            if entry is not None and entry[1] is self \
                    and arr.shape == entry[0].shape \
                    and np.array_equal(arr, entry[0]):
                record_cache_event("spectrum", hit=True)
                _SPECTRUM_CACHE.move_to_end(key)
                hit = entry
        if hit is not None:
            spectrum, stamp = hit[2], hit[3]
            if _faults._STACK:
                _faults.maybe_corrupt_spectrum(spectrum)
            if not guard_enabled() or verify_checksum(spectrum, stamp):
                return spectrum
            counters.add("guard.cache_corrupt", cache="spectrum")
        else:
            record_cache_event("spectrum", hit=False)
        spectrum = self.transform_weight(weight)
        # Stamp unconditionally: inserts are rare (one per weight transform)
        # and a crc32 is microseconds, so entries born while the guard was
        # off are still verifiable once it turns on.
        stamp = array_checksum(spectrum)
        with _spectrum_lock:
            _SPECTRUM_CACHE[key] = (arr.astype(float, copy=True), self,
                                    spectrum, stamp)
            _SPECTRUM_CACHE.move_to_end(key)
            while len(_SPECTRUM_CACHE) > _SPECTRUM_LIMIT[0]:
                _SPECTRUM_CACHE.popitem(last=False)
        return spectrum

    # -- execution ------------------------------------------------------------

    def execute(self, x: np.ndarray, weight_hat: np.ndarray,
                workers: int | None = None, check: bool = True) -> np.ndarray:
        """Run the convolution for input *x* against a transformed weight.

        ``workers=N`` (N > 1) *requests* batch thread-chunking; the
        handoff is shape-aware — below the plan's per-backend work floor
        (see ``_SPLIT_MIN_WORK``) the request runs sequentially anyway,
        because thread wake-up would cost more than the chunks save.
        When the batch does split, the result is bit-identical to the
        sequential path: every pipeline stage is row-independent, and the
        fused interleaved path pairs channels/filters *within* each image,
        so batch chunk boundaries never cut through a packed pair.
        ``check=False`` skips input validation for callers (the functional
        wrapper, layers) that have already performed it.
        """
        if check:
            x = ensure_array(x, "x", ndim=4, dtype=float)
            if x.shape != self.shape.input_shape():
                raise ValueError(
                    f"input shape {x.shape} does not match plan "
                    f"{self.shape.input_shape()}"
                )
        fft = _fft.get_backend(self.backend)
        n = self.shape.n
        sequential = workers is None or workers <= 1 or n <= 1 \
            or self._split_work < self._split_min
        # Scratch reuse only for the sequential path, and only when no
        # other caller holds the buffers (concurrent callers fall back to
        # fresh allocations, so reuse is never a correctness concern).
        reuse = sequential and self._scratch_lock.acquire(blocking=False)
        try:
            if sequential and self.layout == "interleaved" \
                    and not _faults._STACK:
                # The fused path stages the raw input straight into its
                # packed complex block (the zero padding border lives in
                # the block's call-invariant zero tail/border), skipping
                # the separate padded-copy pass entirely.
                return self._execute_fused(x, weight_hat, fft, reuse,
                                           raw=True)
            xp = self._pad_input(x, reuse)
            if _faults._STACK:
                # Fault-injection hook: poisons a *copy*, so reused scratch
                # buffers (whose zero border is never rewritten) stay clean.
                xp = _faults.poison_intermediate(xp)
            if sequential:
                out = self._execute_block(xp, weight_hat, fft, reuse)
                return _faults.maybe_blowup(out) if _faults._STACK else out
        finally:
            if reuse:
                self._scratch_lock.release()
        bounds = np.array_split(np.arange(n), min(workers, n))
        pool = _get_pool(min(workers, n))
        futures = [
            pool.submit(self._execute_block,
                        xp[idx[0]: idx[-1] + 1], weight_hat, fft)
            for idx in bounds if len(idx)
        ]
        out = np.concatenate([f.result() for f in futures], axis=0)
        return _faults.maybe_blowup(out) if _faults._STACK else out

    def _pad_input(self, x: np.ndarray, reuse: bool = False) -> np.ndarray:
        """Zero-padded input, from the plan's scratch buffer if *reuse*.

        The scratch border stays zero across calls (only the interior is
        rewritten), so reuse skips re-zeroing the whole buffer.
        """
        pt, pb, pl, pr = self.shape.pad_tblr
        if not (pt or pb or pl or pr):
            return x
        with span("stage.pad", reuse=reuse, bytes=x.nbytes):
            if not reuse:
                return pad2d(x, (pt, pb, pl, pr))
            ih, iw = self.shape.ih, self.shape.iw
            buf = self._scratch.get("xp")
            if buf is None:
                buf = np.zeros(x.shape[:-2] + (ih + pt + pb, iw + pl + pr))
                self._scratch["xp"] = buf
            buf[..., pt:pt + ih, pl:pl + iw] = x
            return buf

    def _execute_block(self, xp: np.ndarray, weight_hat: np.ndarray,
                       fft, reuse: bool = False) -> np.ndarray:
        """The frequency-domain pipeline for one (sub-)batch of padded
        images ``(n_block, c, ph, pw)``."""
        if self.layout == "interleaved":
            return self._execute_fused(xp, weight_hat, fft, reuse)
        shape = self.shape
        n = xp.shape[0]
        g, c_per, f_per = shape.groups, shape.group_channels, \
            shape.group_filters
        bins = weight_hat.shape[-1]
        out = None
        if reuse:
            out = self._scratch.get("out_hat")
            if out is None or out.shape != (n, shape.f, bins):
                out = np.empty((n, shape.f, bins), dtype=complex)
                self._scratch["out_hat"] = out
        # With groups, filter block g only sees channel block g; both
        # strategies express this as a reshape to (..., g, per-group, bins)
        # so the g == 1 case degenerates to the ungrouped pipeline.
        target = out.reshape(n, g, f_per, bins) if out is not None else None
        if self.strategy == "sum":
            flat = xp.reshape(n, shape.c, -1)
            with span("stage.input_fft", n=self.nfft, rows=n * shape.c,
                      bytes=flat.nbytes):
                x_hat = fft.rfft(flat, self.nfft)        # (n, c, bins)
            # Pointwise multiply and sum over channels: the paper's
            # "summation of outputs across different channels ... during
            # element-wise multiplication" — per group.
            xg = x_hat.reshape(n, g, c_per, bins)
            wg = weight_hat.reshape(g, f_per, c_per, bins)
            with span("stage.pointwise", strategy="sum",
                      bytes=x_hat.nbytes + weight_hat.nbytes):
                out_hat = np.einsum("ngcb,gfcb->ngfb", xg, wg, out=target) \
                    if target is not None \
                    else np.einsum("ngcb,gfcb->ngfb", xg, wg)
        else:
            grouped = xp.reshape(n * g, c_per, *xp.shape[-2:])
            merged = merged_input_stack(grouped)         # (n*g, c_per*L)
            with span("stage.input_fft", n=self.nfft, rows=n * g,
                      bytes=merged.nbytes):
                x_hat = fft.rfft(merged, self.nfft).reshape(n, g, bins)
            wg = weight_hat.reshape(g, f_per, bins)
            with span("stage.pointwise", strategy="merge",
                      bytes=x_hat.nbytes + weight_hat.nbytes):
                if target is not None:
                    out_hat = np.multiply(x_hat[:, :, None, :],
                                          wg[None, :, :, :], out=target)
                else:
                    out_hat = x_hat[:, :, None, :] * wg[None, :, :, :]
        out_hat = out_hat.reshape(n, shape.f, bins)

        with span("stage.inverse_fft", n=self.nfft, rows=n * shape.f,
                  bytes=out_hat.nbytes):
            product = fft.irfft(out_hat, self.nfft)      # (n, f, nfft)
        return self._gather_output(product)

    def _execute_fused(self, xp: np.ndarray, weight_hat: np.ndarray,
                       fft, reuse: bool = False,
                       raw: bool = False) -> np.ndarray:
        """The interleaved-layout pipeline: packed one-pass transforms and
        a single bins-major matmul for the pointwise channel sum.

        Stages, for one (sub-)batch of padded images ``(n_block, c, ph,
        pw)`` against the packed weight operand ``(g, bins, f_per,
        c_per)`` of :meth:`transform_weight`:

        1. fold channel pairs of every (image, group) into complex rows
           and run **one** batched complex FFT over all of them (an odd
           ``c_per`` sends its last channel through one batched rfft);
        2. stage the packed half-spectra and their conjugate-reversed
           images as the bins-major column block ``A`` of shape ``(g,
           bins, c_per, n)`` — with the weight operand's matching slot
           order, ``W @ A`` *is* the pointwise multiply + cross-channel
           sum (see :func:`repro.fft.packed.pack_weight_operand`), one
           BLAS-shaped contraction instead of a multiply-then-reduce pair;
        3. fold output-filter pairs of the resulting half-spectra and run
           one batched inverse complex FFT, whose real/imag parts are the
           two filters' products (odd ``f_per``: one batched irfft).

        Packing pairs rows strictly *within* an (image, group) block, so
        chunking the batch for ``workers=N`` never splits a pair and the
        chunked result stays bit-identical.

        With ``raw=True``, *xp* is the **unpadded** input and the padding
        border is realised inside the packed block itself: the block is
        allocated zeroed, only the per-image interior windows are
        rewritten each call, and (like the planar path's ``xp`` scratch)
        the border and zero-padding tail are never dirtied — so the
        separate padded-copy pass disappears from the pipeline.  The raw
        route is bit-identical to the padded one.
        """
        shape = self.shape
        n = xp.shape[0]
        g, c_per, f_per = shape.groups, shape.group_channels, \
            shape.group_filters
        bins, nfft = self.bins, self.nfft
        c_pairs = c_per // 2
        f_pairs, f_odd = f_per // 2, f_per % 2

        def buf(name: str, shp: tuple, dtype, zero: bool = False):
            # Fused-path scratch: like the planar buffers, reuse is safe
            # because every consumed element is rewritten per call — the
            # one exception is fused_z's zero padding tail, which is
            # written once at allocation and never dirtied.
            if reuse:
                b = self._scratch.get(name)
                if b is None or b.shape != shp:
                    b = (np.zeros if zero else np.empty)(shp, dtype=dtype)
                    self._scratch[name] = b
                return b
            return (np.zeros if zero else np.empty)(shp, dtype=dtype)

        pt, _, pl, _ = shape.pad_tblr
        ph, pw = shape.padded_ih, shape.padded_iw

        def stage(dest, rows):
            # Write *rows* (a channel slice of the input) into the length-
            # ``ph * pw`` head of *dest*'s last axis, viewed as the padded
            # image plane.  ``raw``: scatter just the interior window (the
            # padding border is part of dest's call-invariant zero state);
            # otherwise copy the pre-padded planes wholesale.
            view = np.lib.stride_tricks.as_strided(
                dest, dest.shape[:-1] + (ph, pw),
                dest.strides[:-1] + (pw * dest.strides[-1],
                                     dest.strides[-1]))
            if raw:
                view[..., pt: pt + shape.ih, pl: pl + shape.iw] = rows
            else:
                view[:] = rows

        src = xp.reshape(n, g, c_per, *xp.shape[-2:])
        with span("stage.input_fft", n=nfft, rows=n * shape.c,
                  layout="interleaved", bytes=xp.nbytes):
            z_hat = rest_hat = None
            if c_pairs:
                z = buf("fused_z", (n, g, c_pairs, nfft), complex,
                        zero=True)
                stage(z.real, src[:, :, 0: 2 * c_pairs: 2])
                stage(z.imag, src[:, :, 1: 2 * c_pairs: 2])
                z_hat = fft.fft(z)
            if c_per % 2:
                rest = buf("fused_rest", (n, g, 1, nfft), float, zero=True)
                stage(rest, src[:, :, 2 * c_pairs:])
                rest_hat = fft.rfft(rest, nfft)

        # Bins-major packed column block [Zh | conj-reversed Zh | odd
        # leftover]: one contiguous buffer so the fused matmul runs on
        # BLAS-friendly strides.
        cols = buf("fused_cols", (g, bins, c_per, n), complex)
        if c_pairs:
            cols[:, :, :c_pairs] = z_hat[..., :bins].transpose(1, 3, 2, 0)
            rev = cols[:, :, c_pairs: 2 * c_pairs]
            np.conjugate(z_hat[..., 0].transpose(1, 2, 0), out=rev[:, 0])
            np.conjugate(z_hat[..., : nfft - bins: -1].transpose(1, 3, 2, 0),
                         out=rev[:, 1:])
        if rest_hat is not None:
            cols[:, :, -1] = rest_hat[..., 0, :].transpose(1, 2, 0)

        target = buf("fused_out", (g, bins, f_per, n), complex)
        with span("stage.pointwise", strategy="sum", layout="interleaved",
                  bytes=cols.nbytes + weight_hat.nbytes):
            out_hat = np.matmul(weight_hat, cols, out=target)

        with span("stage.inverse_fft", n=nfft, rows=n * shape.f,
                  layout="interleaved", bytes=out_hat.nbytes):
            product = buf("fused_prod", (n, g, f_per, nfft), float)
            if f_pairs:
                # Inverse pair fold, algebra as repro.fft.packed.
                # fold_half_spectra but staged through scratch with the
                # P/Q form: head bins P = E + iO, tail bins conj-reversed
                # Q = E - iO — one reversal pass instead of two.
                even = out_hat[:, :, 0: 2 * f_pairs: 2]  # (g, bins, fp, n)
                odd = out_hat[:, :, 1: 2 * f_pairs: 2]
                tmp = buf("fused_pq", (g, bins, f_pairs, n), complex)
                np.multiply(odd, 1j, out=tmp)
                gbuf = buf("fused_gin", (n, g, f_pairs, nfft), complex)
                np.add(even, tmp, out=gbuf[..., :bins].transpose(1, 3, 2, 0))
                np.subtract(even, tmp, out=tmp)          # Q = E - iO
                np.conjugate(tmp[:, nfft - bins: 0: -1],
                             out=gbuf[..., bins:].transpose(1, 3, 2, 0))
                y = fft.ifft(gbuf)
                product[..., 0: 2 * f_pairs: 2, :] = y.real
                product[..., 1: 2 * f_pairs: 2, :] = y.imag
            if f_odd:
                product[..., -1:, :] = fft.irfft(
                    out_hat[:, :, -1].transpose(2, 0, 1)[..., None, :], nfft)
        return self._gather_output(product.reshape(n, shape.f, nfft))

    def _gather_output(self, product: np.ndarray) -> np.ndarray:
        """The Eq. 12 output gather over ``(n, f, nfft)`` products."""
        with span("stage.gather", bytes=product.nbytes) as gather_span:
            grid = self.gather_grid
            if grid is None:
                result = product[..., self.gather]       # (n, f, oh, ow)
            else:
                # The gather degrees form a regular (row-stride,
                # col-stride) grid, so a strided view + one contiguous copy
                # replaces the advanced indexing (no index array to walk);
                # the values are identical.
                base, rs, cs = grid
                oh, ow = self.gather.shape
                flat = np.ascontiguousarray(product).reshape(-1, self.nfft)
                s0, s1 = flat.strides
                view = np.lib.stride_tricks.as_strided(
                    flat[:, base:], shape=(flat.shape[0], oh, ow),
                    strides=(s0, rs * s1, cs * s1))
                result = np.ascontiguousarray(view).reshape(
                    product.shape[:-1] + (oh, ow))
            gather_span.add_attrs(out_bytes=result.nbytes)
        return result


# ---------------------------------------------------------------------------
# Bounded plan cache with hit/miss statistics.
# ---------------------------------------------------------------------------

_plan_lock = threading.Lock()
_PLAN_CACHE: OrderedDict[tuple, PolyHankelPlan] = OrderedDict()
_PLAN_LIMIT = [256]


def get_plan(shape: ConvShape, fft_policy: FftPolicy = "auto",
             strategy: ChannelStrategy = "sum",
             backend: str | None = None,
             layout: SpectrumLayout = "auto") -> PolyHankelPlan:
    """Fetch (or build and LRU-cache) the plan for *shape* and options."""
    backend_name = _fft.get_backend(backend).name
    policy = resolve_fft_policy(fft_policy, backend_name)
    layout = select_spectrum_layout(shape, strategy, policy, layout)
    key = (shape, policy, strategy, backend_name, layout)
    with _plan_lock:
        plan = _PLAN_CACHE.get(key)
        if plan is not None:
            record_cache_event("conv_plan", hit=True)
            _PLAN_CACHE.move_to_end(key)
            return plan
    record_cache_event("conv_plan", hit=False)
    with span("plan.build", strategy=strategy, backend=backend_name,
              layout=layout):
        plan = PolyHankelPlan(shape, policy, strategy, backend_name, layout)
    with _plan_lock:
        _PLAN_CACHE[key] = plan
        _PLAN_CACHE.move_to_end(key)
        while len(_PLAN_CACHE) > _PLAN_LIMIT[0]:
            _PLAN_CACHE.popitem(last=False)
    return plan


def _plan_from_spec(shape: ConvShape, fft_policy: FftPolicy,
                    strategy: ChannelStrategy, backend: str | None,
                    layout: SpectrumLayout = "auto") -> PolyHankelPlan:
    """Unpickling target for :meth:`PolyHankelPlan.__reduce__`: resolve a
    plan spec against *this* process's warm plan cache."""
    return get_plan(shape, fft_policy, strategy, backend, layout=layout)


def plan_cache_info() -> CacheInfo:
    """Hit/miss statistics of the plan cache (events from the unified
    :mod:`repro.observe` registry; size/limit from the structure)."""
    hits, misses = cache_hits_misses("conv_plan")
    with _plan_lock:
        return CacheInfo(hits, misses, len(_PLAN_CACHE), _PLAN_LIMIT[0])


def set_plan_cache_limit(maxsize: int) -> None:
    """Bound the number of cached plans, evicting LRU entries if needed."""
    if maxsize < 1:
        raise ValueError("plan cache limit must be >= 1")
    with _plan_lock:
        _PLAN_LIMIT[0] = maxsize
        while len(_PLAN_CACHE) > maxsize:
            _PLAN_CACHE.popitem(last=False)


def clear_plan_cache() -> None:
    """Drop all cached plans (mainly for tests and memory control)."""
    with _plan_lock:
        _PLAN_CACHE.clear()
        _ARG_MEMO.clear()
    reset_cache_stats("conv_plan")


# ---------------------------------------------------------------------------
# Bounded, content-verified weight-spectrum cache.
# ---------------------------------------------------------------------------

_spectrum_lock = threading.Lock()
_SPECTRUM_CACHE: OrderedDict[
    tuple, tuple[np.ndarray, PolyHankelPlan, np.ndarray, int | None]
] = OrderedDict()
_SPECTRUM_LIMIT = [64]
_SPECTRUM_ENABLED = [True]


def _spectrum_cache_enabled() -> bool:
    return _SPECTRUM_ENABLED[0]


def enable_spectrum_cache(enabled: bool = True) -> None:
    """Globally enable/disable spectrum caching (used for benchmarking the
    uncached reference path)."""
    _SPECTRUM_ENABLED[0] = bool(enabled)


def spectrum_cache_info() -> CacheInfo:
    """Hit/miss statistics of the weight-spectrum cache (events from the
    unified :mod:`repro.observe` registry)."""
    hits, misses = cache_hits_misses("spectrum")
    with _spectrum_lock:
        return CacheInfo(hits, misses, len(_SPECTRUM_CACHE),
                         _SPECTRUM_LIMIT[0])


def set_spectrum_cache_limit(maxsize: int) -> None:
    """Bound the number of cached spectra, evicting LRU entries if needed."""
    if maxsize < 1:
        raise ValueError("spectrum cache limit must be >= 1")
    with _spectrum_lock:
        _SPECTRUM_LIMIT[0] = maxsize
        while len(_SPECTRUM_CACHE) > maxsize:
            _SPECTRUM_CACHE.popitem(last=False)


def clear_spectrum_cache() -> None:
    """Drop all cached spectra and reset the statistics."""
    with _spectrum_lock:
        _SPECTRUM_CACHE.clear()
    reset_cache_stats("spectrum")


# ---------------------------------------------------------------------------
# Shared thread pools for workers=N execution.
# ---------------------------------------------------------------------------

_pool_lock = threading.Lock()
_POOLS: dict[int, ThreadPoolExecutor] = {}


def _get_pool(workers: int) -> ThreadPoolExecutor:
    with _pool_lock:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="polyhankel")
            _POOLS[workers] = pool
        return pool


# Front memo for the functional entry point: maps primitive argument
# tuples straight to plan objects, skipping ConvShape construction and its
# (comparatively expensive) dataclass hashing on the steady-state path.
# Entries only reference plans held by _PLAN_CACHE-style lookups; bounded
# like the other caches and flushed by clear_plan_cache().
_ARG_MEMO: OrderedDict[tuple, PolyHankelPlan] = OrderedDict()
_ARG_MEMO_LIMIT = 256


def _hashable(value):
    return tuple(value) if isinstance(value, list) else value


def _plan_for_args(x_shape, w_shape, padding, stride, dilation, groups,
                   fft_policy, strategy, backend,
                   layout="auto") -> PolyHankelPlan:
    key = (x_shape, w_shape, _hashable(padding), _hashable(stride),
           _hashable(dilation), groups, fft_policy, strategy, backend,
           layout)
    with _plan_lock:
        plan = _ARG_MEMO.get(key)
    if plan is not None:
        # The front memo is part of the plan-cache surface: count its hits
        # so the consolidated cache table reflects steady-state reuse.
        record_cache_event("conv_plan", hit=True)
        return plan
    shape = ConvShape.from_tensors(x_shape, w_shape, padding, stride,
                                   dilation, groups)
    plan = get_plan(shape, fft_policy, strategy, backend, layout=layout)
    with _plan_lock:
        _ARG_MEMO[key] = plan
        while len(_ARG_MEMO) > _ARG_MEMO_LIMIT:
            _ARG_MEMO.popitem(last=False)
    return plan


def conv2d_polyhankel(x: np.ndarray, weight: np.ndarray,
                      bias: np.ndarray | None = None,
                      padding: int | tuple | str = 0,
                      stride: int | tuple = 1,
                      dilation: int | tuple = 1, groups: int = 1,
                      fft_policy: FftPolicy = "auto",
                      strategy: ChannelStrategy = "sum",
                      backend: str | None = None,
                      layout: SpectrumLayout = "auto",
                      workers: int | None = None) -> np.ndarray:
    """2D convolution of an NCHW batch via the PolyHankel method.

    Parameters mirror ``torch.nn.functional.conv2d``: *stride* and
    *dilation* take an int or an ``(h, w)`` pair, *padding* additionally a
    ``(pt, pb, pl, pr)`` 4-tuple or ``"same"``, and *groups* splits the
    channels (``groups=c`` is depthwise).  Returns an ``(n, f, oh, ow)``
    array.  Repeated calls with the same weight array and geometry reuse
    the cached plan *and* kernel spectrum; ``workers=N`` parallelizes the
    batch across threads.
    """
    x = ensure_array(x, "x", dtype=float)
    weight = ensure_array(weight, "weight", dtype=float)
    check_conv_inputs(x, weight, padding, stride, dilation, groups)
    plan = _plan_for_args(x.shape, weight.shape, padding, stride, dilation,
                          groups, fft_policy, strategy, backend, layout)
    shape = plan.shape
    out = plan.execute(x, plan.weight_spectrum(weight), workers=workers,
                       check=False)
    if bias is not None:
        bias = ensure_array(bias, "bias", ndim=1)
        if len(bias) != shape.f:
            raise ValueError(
                f"bias must have {shape.f} entries, got {len(bias)}"
            )
        out = out + bias[None, :, None, None]
    return out
