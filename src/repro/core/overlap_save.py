"""Overlap-save evaluation of long polynomial products (Sec. 3.2).

The paper batches many images through the 1D FFT pipeline with the
overlap-save technique, inserting zero padding between batch elements so
that block boundaries do not mix images.  This module provides

- :func:`overlap_save_convolve` — textbook overlap-save linear convolution
  of a (batched) signal with a short kernel, FFT-blocked; and
- :func:`conv2d_polyhankel_os` — a PolyHankel execution strategy that
  concatenates a batch of flattened images, separated by ``M`` guard zeros,
  and streams the whole thing through overlap-save blocks.

Both are cross-validated against the direct implementations; the ablation
benchmark quantifies when block streaming beats one monolithic FFT.
"""

from __future__ import annotations

import numpy as np

from repro import fft as _fft
from repro.core.construction import (
    channel_kernel_stack,
    output_gather_indices,
)
from repro.core.planning import FftPolicy, plan_fft_size
from repro.hankel.im2col_view import pad2d
from repro.utils.shapes import ConvShape
from repro.utils.validation import check_conv_inputs, ensure_array, require


def overlap_save_convolve(signal: np.ndarray, kernel: np.ndarray,
                          block_len: int | None = None,
                          backend: str | None = None) -> np.ndarray:
    """Linear convolution along the last axis via overlap-save.

    *signal* may have arbitrary leading batch axes; *kernel* is 1D of length
    ``K``.  Each FFT block of size ``nfft`` produces ``nfft - K + 1`` valid
    outputs; blocks overlap by ``K - 1`` samples.  Returns the full linear
    convolution of length ``L + K - 1``.
    """
    signal = ensure_array(signal, "signal", dtype=float)
    kernel = ensure_array(kernel, "kernel", ndim=1, dtype=float)
    length = signal.shape[-1]
    k = len(kernel)
    require(length >= 1 and k >= 1, "signal and kernel must be non-empty")
    out_len = length + k - 1

    if block_len is None:
        # A classic near-optimal choice: blocks ~8x the kernel length.
        block_len = max(8 * k, 64)
    nfft = plan_fft_size(block_len + k - 1, "pow2")
    step = nfft - (k - 1)
    require(step >= 1, "block length too small for kernel")

    fft = _fft.get_backend(backend)
    kernel_hat = fft.rfft(kernel, nfft)

    # Prepend K-1 zeros (overlap-save discards the first K-1 of each block)
    # and pad the tail so the last block is full.
    n_blocks = -(-out_len // step)
    padded_len = (k - 1) + n_blocks * step + (nfft - step)
    buf = np.zeros(signal.shape[:-1] + (padded_len,), dtype=float)
    buf[..., k - 1: k - 1 + length] = signal

    # All blocks at once: a strided view (..., n_blocks, nfft) turns the
    # per-block Python loop into one batched rfft/irfft round trip.
    blocks = np.lib.stride_tricks.sliding_window_view(
        buf, nfft, axis=-1)[..., ::step, :][..., :n_blocks, :]
    conv = fft.irfft(fft.rfft(blocks, nfft) * kernel_hat, nfft)
    out = conv[..., k - 1:].reshape(signal.shape[:-1] + (n_blocks * step,))
    return out[..., :out_len]


def conv2d_polyhankel_os(x: np.ndarray, weight: np.ndarray,
                         padding: int = 0, stride: int = 1,
                         block_len: int | None = None,
                         fft_policy: FftPolicy = "pow2",
                         backend: str | None = None) -> np.ndarray:
    """PolyHankel convolution executed with overlap-save batching.

    The batch's flattened images are concatenated with ``M`` guard zeros
    between consecutive images (Sec. 3.2: "additional zero-padding at the
    start and end of each batch is essential to meet the overlap-save
    criteria"), convolved against each filter's combined kernel polynomial
    in streamed blocks, and the outputs gathered per image with the batch
    stride offset folded in.
    """
    x = ensure_array(x, "x", dtype=float)
    weight = ensure_array(weight, "weight", dtype=float)
    check_conv_inputs(x, weight, padding, stride)
    shape = ConvShape.from_tensors(x.shape, weight.shape, padding, stride)

    xp = pad2d(x, padding)                                  # (n, c, ph, pw)
    n, c = shape.n, shape.c
    image_len = shape.poly_input_len
    kernel_len = shape.poly_kernel_len
    guard = kernel_len - 1
    slot = image_len + guard

    # One long signal per channel: images back to back with guard zeros.
    # Vectorized fill: stage per-image slots, then fold the slot axis away.
    staged = np.zeros((n, c, slot), dtype=float)
    staged[..., :image_len] = xp.reshape(n, c, image_len)
    long_signal = np.ascontiguousarray(
        staged.transpose(1, 0, 2)).reshape(c, n * slot)

    kernels = channel_kernel_stack(weight, shape.padded_iw)  # (f, c, M+1)
    gather = output_gather_indices(shape)                    # (oh, ow)
    # Batched gather: index (i, *, gather) for every image at once.
    batch_gather = (np.arange(n)[:, None] * slot
                    + gather.reshape(-1)[None, :])           # (n, oh*ow)

    out = np.zeros(shape.output_shape(), dtype=float)
    for f in range(shape.f):
        acc = np.zeros(n * slot + kernel_len - 1, dtype=float)
        for ch in range(c):
            acc += overlap_save_convolve(long_signal[ch], kernels[f, ch],
                                         block_len, backend)
        out[:, f] = acc[batch_gather].reshape((n,) + gather.shape)
    return out
