"""Constructing the convolution polynomials (Sec. 2.2 and 3.2).

Three layouts are produced here:

- **single-channel** coefficient vectors: ``A(t)`` is the row-major flatten
  of the (padded) input; ``U(t)`` places ``u[i, j]`` at degree
  ``M - (iw * i + j)`` with ``M = (kh-1) * iw + kw - 1``.
- **per-channel stacks** for the "FFT each channel and sum in the frequency
  domain" strategy (the paper's chosen option in Sec. 3.2).
- the **merged/interleaved** layout for the alternative "merge all channels
  into one polynomial" strategy: channel ``c`` of the input occupies degrees
  ``f * C + c`` and channel ``c`` of the kernel degrees
  ``(M - g) * C + (C - 1 - c)``, so per-channel products land on *the same*
  output degrees (channels aggregate for free) while kernel degrees stay
  non-overlapping across channels, as Sec. 3.2 requires.

Everything is computed directly from the input and kernel; the im2col matrix
is never formed.
"""

from __future__ import annotations

import numpy as np

from repro.core.degree_map import (
    kernel_degrees,
    max_kernel_degree,
    output_degrees,
)
from repro.hankel.im2col_view import pad2d
from repro.utils.shapes import ConvShape
from repro.utils.validation import ensure_array


def input_polynomial(image: np.ndarray, padding: int = 0) -> np.ndarray:
    """Coefficient vector of A(t) for one 2D image (Eq. 10).

    With the Eq. 10 degree assignment ``deg(a[i,j]) = iw * i + j``, the
    coefficient vector is simply the row-major flatten of the padded image.
    """
    image = ensure_array(image, "image", ndim=2)
    padded = pad2d(image[None, None], padding)[0, 0]
    return padded.reshape(-1)


def kernel_polynomial(kernel: np.ndarray, iw: int,
                      dilation: int | tuple = 1) -> np.ndarray:
    """Coefficient vector of U(t) for one 2D kernel (Eq. 6 / Eq. 11).

    *iw* is the **padded** input width.  The vector has length ``M + 1``
    (``(kh - 1) * iw + kw`` undilated) — the "combined kernel size" of
    Sec. 3.2: each kernel row is followed by ``iw - kw`` zeros, and rows
    appear reversed.  *dilation* stretches the degree map (taps scatter
    ``dh`` rows / ``dw`` columns apart) without materializing zeros.
    """
    kernel = ensure_array(kernel, "kernel", ndim=2)
    kh, kw = kernel.shape
    m = max_kernel_degree(kh, kw, iw, dilation)
    coeffs = np.zeros(m + 1, dtype=kernel.dtype)
    coeffs[kernel_degrees(kh, kw, iw, dilation)] = kernel
    return coeffs


def output_gather_indices(shape: ConvShape) -> np.ndarray:
    """Indices into the product coefficient vector holding the output.

    Shape ``(oh, ow)``; entry ``(i, j)`` is the degree from Eq. 12 adjusted
    for (per-axis) stride and dilation.
    """
    return output_degrees(shape.oh, shape.ow, shape.padded_iw,
                          shape.kh, shape.kw, shape.stride_hw,
                          shape.dilation_hw)


def channel_kernel_stack(weight: np.ndarray, iw: int,
                         dilation: int | tuple = 1) -> np.ndarray:
    """Per-channel U(t) vectors for a weight tensor.

    *weight* is ``(f, c, kh, kw)``; returns ``(f, c, M + 1)``.  All channels
    share the same degrees because the channel aggregation happens as a sum
    in the frequency domain (Sec. 3.2, chosen option).  *dilation* scatters
    the taps on the stretched degree map.
    """
    weight = ensure_array(weight, "weight", ndim=4)
    f, c, kh, kw = weight.shape
    m = max_kernel_degree(kh, kw, iw, dilation)
    coeffs = np.zeros((f, c, m + 1), dtype=weight.dtype)
    coeffs[:, :, kernel_degrees(kh, kw, iw, dilation)] = \
        weight.reshape(f, c, kh, kw)
    return coeffs


# ---------------------------------------------------------------------------
# Merged (interleaved) multi-channel layout — the paper's alternative option.
# ---------------------------------------------------------------------------

def merged_input_polynomial(x_padded: np.ndarray) -> np.ndarray:
    """Interleaved multi-channel A(t) for one image.

    *x_padded* is ``(c, ph, pw)``; element ``(c, i, j)`` gets degree
    ``(pw * i + j) * C + c``.  Returns a vector of length ``C * ph * pw``.
    """
    x_padded = ensure_array(x_padded, "x_padded", ndim=3)
    c = x_padded.shape[0]
    # (c, L) -> transpose -> (L, c) -> ravel interleaves channels.
    return x_padded.reshape(c, -1).T.reshape(-1)


def merged_kernel_polynomial(weight_c: np.ndarray, iw: int,
                             dilation: int | tuple = 1) -> np.ndarray:
    """Interleaved multi-channel U(t) for one filter.

    *weight_c* is ``(c, kh, kw)``; element ``(c, i, j)`` gets degree
    ``(M - (iw * i + j)) * C + (C - 1 - c)``.  Per-channel degrees are
    disjoint (distinct residues mod C), and ``deg_in + deg_ker`` is
    independent of the channel, so the product aggregates channels
    automatically.
    """
    weight_c = ensure_array(weight_c, "weight_c", ndim=3)
    c, kh, kw = weight_c.shape
    m = max_kernel_degree(kh, kw, iw, dilation)
    coeffs = np.zeros(c * (m + 1), dtype=weight_c.dtype)
    deg = kernel_degrees(kh, kw, iw, dilation)  # (kh, kw)
    for ch in range(c):
        coeffs[deg * c + (c - 1 - ch)] = weight_c[ch]
    return coeffs


def merged_input_stack(x_padded: np.ndarray) -> np.ndarray:
    """Interleaved multi-channel A(t) for a whole batch, vectorized.

    *x_padded* is ``(n, c, ph, pw)``; returns ``(n, C * ph * pw)`` — row
    ``i`` equals ``merged_input_polynomial(x_padded[i])``.
    """
    x_padded = ensure_array(x_padded, "x_padded", ndim=4)
    n, c = x_padded.shape[:2]
    # (n, c, L) -> (n, L, c) -> ravel per image interleaves channels.
    return np.ascontiguousarray(
        x_padded.reshape(n, c, -1).transpose(0, 2, 1)
    ).reshape(n, -1)


def merged_kernel_stack(weight: np.ndarray, iw: int,
                        dilation: int | tuple = 1) -> np.ndarray:
    """Interleaved multi-channel U(t) for every filter, vectorized.

    *weight* is ``(f, c, kh, kw)``; returns ``(f, C * (M + 1))`` — row
    ``f`` equals ``merged_kernel_polynomial(weight[f], iw)``.  The scatter
    indices are disjoint across channels (distinct residues mod C), so one
    fancy-index assignment replaces the per-filter/per-channel loops.
    """
    weight = ensure_array(weight, "weight", ndim=4)
    f, c, kh, kw = weight.shape
    m = max_kernel_degree(kh, kw, iw, dilation)
    deg = kernel_degrees(kh, kw, iw, dilation)  # (kh, kw)
    idx = deg[None, :, :] * c + (c - 1 - np.arange(c))[:, None, None]
    coeffs = np.zeros((f, c * (m + 1)), dtype=weight.dtype)
    coeffs[:, idx.reshape(-1)] = weight.reshape(f, -1)
    return coeffs


def merged_output_gather_indices(shape: ConvShape) -> np.ndarray:
    """Gather indices for the merged layout: ``C * deg + (C - 1)``.

    ``C`` is the *per-group* channel count: with groups, each group merges
    its own channels and the gather degrees are identical across groups.
    """
    c = shape.group_channels
    return c * output_gather_indices(shape) + (c - 1)


def polynomial_lengths(shape: ConvShape) -> tuple[int, int, int]:
    """(len A, len U, required linear-convolution length) for *shape*.

    These drive FFT size planning; the linear length is what the FFT size
    must meet or exceed for the circular product to equal the linear one.
    """
    len_a = shape.poly_input_len
    len_u = shape.poly_kernel_len
    return len_a, len_u, len_a + len_u - 1
