"""FFT size planning and plan caching for PolyHankel.

Sec. 3.2: cuFFT is fastest on sizes ``2^a 3^b 5^c 7^d``; the authors found
plain multiples of two best in their tests and "pad the kernel size to the
nearest multiple of 2".  We expose that choice as a policy:

- ``"pow2"``    — round the FFT size up to the next power of two (paper's
  default choice);
- ``"smooth7"`` — round up to the next 7-smooth size (cuFFT/pocketfft fast
  lengths; usually smaller, sometimes slower per point);
- ``"even"``    — just round up to an even size (the literal "nearest
  multiple of 2");
- ``"exact"``   — no rounding (useful for counting-model experiments);
- ``"auto"``    — pick per backend: pocketfft (the ``numpy`` backend) is
  fast at any 7-smooth size, so the tighter ``smooth7`` rounding wins
  there, while the builtin backend's radix-2 kernel is its fastest path,
  so it keeps ``pow2``.  ``"auto"`` is resolved to a concrete policy at
  plan-construction time by :func:`resolve_fft_policy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro import fft as _fft
from repro.utils.validation import require

FftPolicy = Literal["pow2", "smooth7", "even", "exact", "auto"]

POLICIES: tuple[str, ...] = ("pow2", "smooth7", "even", "exact")

SpectrumLayout = Literal["planar", "interleaved", "auto"]

LAYOUTS: tuple[str, ...] = ("planar", "interleaved")

#: Pointwise-work floor (``n * g * c_per * f_per * bins`` complex MACs)
#: above which the interleaved layout's one batched bins-major matmul
#: beats the planar einsum by enough to also pay for its packing passes.
#: Calibrated on the bench suite: the c16 preset (~640k) flips, every
#: small case (and the mid-size strided/dilated presets, ~200-400k)
#: stays planar where the einsum's lower fixed cost wins.
INTERLEAVED_MIN_WORK = 500_000


@dataclass(frozen=True)
class PlanSpec:
    """Pickle-safe identity of one execution plan.

    A :class:`~repro.core.multichannel.PolyHankelPlan` owns locks and
    scratch buffers, so it cannot (and should not) cross a process
    boundary by value.  Its *spec* — shape, resolved FFT policy, channel
    strategy, backend name — is a plain frozen value that pickles in a
    few bytes and re-resolves against the receiving process's warm plan
    cache, which is exactly what the serving layer's process workers
    need: plans travel as cache keys, never as payloads.
    """

    shape: object  # ConvShape / ConvShapeNd (untyped to stay import-light)
    fft_policy: FftPolicy
    strategy: str
    backend: str | None
    layout: SpectrumLayout = "auto"
    #: Spatial rank of the problem.  Rank 2 resolves against the full 2D
    #: engine (spectrum cache, packed layouts); other ranks resolve
    #: against the light N-D plan cache, where *shape* is a ConvShapeNd.
    ndim: int = 2

    def resolve(self):
        """The (cached) live plan for this spec in *this* process."""
        if self.ndim == 2:
            from repro.core.multichannel import get_plan

            return get_plan(self.shape, self.fft_policy, self.strategy,
                            self.backend, layout=self.layout)
        from repro.core.ndim import get_plan_nd

        return get_plan_nd(self.shape, self.fft_policy, self.backend)


def resolve_fft_policy(policy: FftPolicy,
                       backend: str | None = None) -> FftPolicy:
    """Resolve ``"auto"`` to the concrete policy best for *backend*.

    Concrete policies pass through unchanged.  *backend* may be a backend
    name or ``None`` for the active backend.
    """
    if policy != "auto":
        return policy
    return "smooth7" if _fft.get_backend(backend).name == "numpy" else "pow2"


def select_spectrum_layout(shape, strategy: str = "sum",
                           fft_policy: FftPolicy = "pow2",
                           layout: SpectrumLayout = "auto") -> str:
    """Resolve ``"auto"`` to the spectrum layout best for *shape*.

    Two layouts exist for the sum strategy's spectrum block:

    - ``"planar"`` — row-major ``(n, c, bins)``: each transform row is
      contiguous, the pointwise stage is an einsum over the channel axis.
      Lowest fixed cost; wins on small blocks.
    - ``"interleaved"`` — bins-major ``(g, bins, rows, cols)``: every
      frequency bin's cross-channel slice is contiguous, so the fused
      pointwise-multiply + channel accumulate is **one** batched complex
      matmul (BLAS-shaped) over the packed spectrum, and the inverse
      staging consumes it with plain strided slices.  Wins once the
      pointwise work dwarfs the packing passes.

    The rule: interleaved iff the strategy sums channels in frequency
    space, the per-group contraction is non-degenerate (at least two
    channels *and* two filters per group — depthwise stays planar), and
    the pointwise work ``n * g * c_per * f_per * bins`` clears
    :data:`INTERLEAVED_MIN_WORK`.  Concrete layouts pass through (after
    validation), so tests and experiments can force either path.
    """
    if layout != "auto":
        if layout not in LAYOUTS:
            raise ValueError(
                f"unknown spectrum layout {layout!r}; "
                f"one of {LAYOUTS + ('auto',)}"
            )
        return layout
    if strategy != "sum":
        return "planar"
    c_per, f_per = shape.group_channels, shape.group_filters
    if c_per < 2 or f_per < 2:
        return "planar"
    from repro.core.construction import polynomial_lengths

    _, _, linear_len = polynomial_lengths(shape)
    nfft = plan_fft_size(linear_len, resolve_fft_policy(fft_policy))
    bins = nfft // 2 + 1
    work = shape.n * shape.groups * c_per * f_per * bins
    return "interleaved" if work >= INTERLEAVED_MIN_WORK else "planar"


def plan_fft_size(min_len: int, policy: FftPolicy = "pow2") -> int:
    """Smallest FFT size >= *min_len* permitted by *policy*."""
    require(min_len >= 1, "minimum length must be positive")
    if policy == "pow2":
        return _fft.next_pow2(min_len)
    if policy == "smooth7":
        return _fft.next_fast_len(min_len)
    if policy == "even":
        return min_len + (min_len % 2)
    if policy == "exact":
        return min_len
    raise ValueError(f"unknown FFT policy {policy!r}; one of {POLICIES}")
