"""FFT size planning and plan caching for PolyHankel.

Sec. 3.2: cuFFT is fastest on sizes ``2^a 3^b 5^c 7^d``; the authors found
plain multiples of two best in their tests and "pad the kernel size to the
nearest multiple of 2".  We expose that choice as a policy:

- ``"pow2"``    — round the FFT size up to the next power of two (paper's
  default choice);
- ``"smooth7"`` — round up to the next 7-smooth size (cuFFT/pocketfft fast
  lengths; usually smaller, sometimes slower per point);
- ``"even"``    — just round up to an even size (the literal "nearest
  multiple of 2");
- ``"exact"``   — no rounding (useful for counting-model experiments);
- ``"auto"``    — pick per backend: pocketfft (the ``numpy`` backend) is
  fast at any 7-smooth size, so the tighter ``smooth7`` rounding wins
  there, while the builtin backend's radix-2 kernel is its fastest path,
  so it keeps ``pow2``.  ``"auto"`` is resolved to a concrete policy at
  plan-construction time by :func:`resolve_fft_policy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro import fft as _fft
from repro.utils.validation import require

FftPolicy = Literal["pow2", "smooth7", "even", "exact", "auto"]

POLICIES: tuple[str, ...] = ("pow2", "smooth7", "even", "exact")


@dataclass(frozen=True)
class PlanSpec:
    """Pickle-safe identity of one execution plan.

    A :class:`~repro.core.multichannel.PolyHankelPlan` owns locks and
    scratch buffers, so it cannot (and should not) cross a process
    boundary by value.  Its *spec* — shape, resolved FFT policy, channel
    strategy, backend name — is a plain frozen value that pickles in a
    few bytes and re-resolves against the receiving process's warm plan
    cache, which is exactly what the serving layer's process workers
    need: plans travel as cache keys, never as payloads.
    """

    shape: object  # ConvShape (kept untyped to stay import-light)
    fft_policy: FftPolicy
    strategy: str
    backend: str | None

    def resolve(self):
        """The (cached) live plan for this spec in *this* process."""
        from repro.core.multichannel import get_plan

        return get_plan(self.shape, self.fft_policy, self.strategy,
                        self.backend)


def resolve_fft_policy(policy: FftPolicy,
                       backend: str | None = None) -> FftPolicy:
    """Resolve ``"auto"`` to the concrete policy best for *backend*.

    Concrete policies pass through unchanged.  *backend* may be a backend
    name or ``None`` for the active backend.
    """
    if policy != "auto":
        return policy
    return "smooth7" if _fft.get_backend(backend).name == "numpy" else "pow2"


def plan_fft_size(min_len: int, policy: FftPolicy = "pow2") -> int:
    """Smallest FFT size >= *min_len* permitted by *policy*."""
    require(min_len >= 1, "minimum length must be positive")
    if policy == "pow2":
        return _fft.next_pow2(min_len)
    if policy == "smooth7":
        return _fft.next_fast_len(min_len)
    if policy == "even":
        return min_len + (min_len % 2)
    if policy == "exact":
        return min_len
    raise ValueError(f"unknown FFT policy {policy!r}; one of {POLICIES}")
