"""N-dimensional PolyHankel convolution (extension beyond the paper).

The paper develops the construction for 2D, but nothing in it is specific
to two dimensions: for a d-dimensional input with padded extents
``P_1 x ... x P_d`` and row-major strides ``s_l``, assign input element
``a[i_1..i_d]`` the degree ``sum_l s_l i_l`` (the flattened index) and
kernel element ``u[j_1..j_d]`` the degree ``M - sum_l s_l j_l`` with
``M = sum_l s_l (K_l - 1)``.  Every conceptual im2col row again collapses
to a single product term, and output ``(o_1..o_d)`` is the coefficient at
``M + sum_l s_l stride_l o_l``.  The 2D case recovers Eqs. 10-12 exactly.

This gives the library 1D (sequence/audio) and 3D (volumetric/video)
convolution through the same single-FFT pipeline, with channel summation in
the frequency domain as in Sec. 3.2.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro import fft as _fft
from repro.core.planning import FftPolicy, plan_fft_size
from repro.utils.validation import ensure_array, require


def _normalize_per_dim(value, ndim: int, name: str) -> tuple[int, ...]:
    """Broadcast an int (or validate a tuple) to one entry per spatial dim."""
    if isinstance(value, int):
        value = (value,) * ndim
    value = tuple(int(v) for v in value)
    require(len(value) == ndim,
            f"{name} must have one entry per spatial dimension ({ndim})")
    return value


def _row_major_strides(extents: tuple[int, ...]) -> tuple[int, ...]:
    strides = [1]
    for extent in extents[:0:-1]:
        strides.append(strides[-1] * extent)
    return tuple(reversed(strides))


def max_kernel_degree_nd(kernel_extents: tuple[int, ...],
                         strides: tuple[int, ...]) -> int:
    """Highest kernel-polynomial exponent: sum_l s_l (K_l - 1)."""
    return int(sum(s * (k - 1) for s, k in zip(strides, kernel_extents)))


def kernel_polynomial_nd(kernel: np.ndarray,
                         padded_extents: tuple[int, ...]) -> np.ndarray:
    """Coefficient vector of U(t) for one d-dimensional kernel."""
    kernel = ensure_array(kernel, "kernel", dtype=float)
    strides = _row_major_strides(padded_extents)
    m = max_kernel_degree_nd(kernel.shape, strides)
    coeffs = np.zeros(m + 1, dtype=kernel.dtype)
    grids = np.meshgrid(*[np.arange(k) for k in kernel.shape],
                        indexing="ij")
    degrees = sum(s * g for s, g in zip(strides, grids))
    coeffs[m - degrees] = kernel
    return coeffs


def output_gather_nd(out_extents: tuple[int, ...],
                     strides: tuple[int, ...],
                     conv_strides: tuple[int, ...], m: int) -> np.ndarray:
    """Gather indices: M + sum_l s_l * stride_l * o_l (shape out_extents)."""
    grids = np.meshgrid(*[np.arange(o) for o in out_extents], indexing="ij")
    return m + sum(s * cs * g
                   for s, cs, g in zip(strides, conv_strides, grids))


def convnd_polyhankel(x: np.ndarray, weight: np.ndarray, padding=0,
                      stride=1, fft_policy: FftPolicy = "pow2",
                      backend: str | None = None) -> np.ndarray:
    """d-dimensional convolution of an ``(n, c, *spatial)`` batch.

    *weight* is ``(f, c, *kernel_spatial)``; *padding* and *stride* are
    ints or per-dimension tuples.  Works for any d >= 1 (1D/2D/3D are the
    practically useful cases).
    """
    x = ensure_array(x, "x", dtype=float)
    weight = ensure_array(weight, "weight", dtype=float)
    require(x.ndim >= 3, "input must be (n, c, *spatial)")
    require(weight.ndim == x.ndim, "weight rank must match input rank")
    require(x.shape[1] == weight.shape[1],
            f"channel mismatch: input C={x.shape[1]}, "
            f"weight C={weight.shape[1]}")
    ndim = x.ndim - 2
    padding = _normalize_per_dim(padding, ndim, "padding")
    stride = _normalize_per_dim(stride, ndim, "stride")
    require(all(p >= 0 for p in padding), "padding must be non-negative")
    require(all(s >= 1 for s in stride), "stride must be positive")

    n, c = x.shape[:2]
    f = weight.shape[0]
    spatial = x.shape[2:]
    kernel_extents = weight.shape[2:]
    padded = tuple(e + 2 * p for e, p in zip(spatial, padding))
    out_extents = []
    for e, k, s in zip(padded, kernel_extents, stride):
        require(e >= k, f"kernel extent {k} exceeds padded extent {e}")
        out_extents.append((e - k) // s + 1)
    out_extents = tuple(out_extents)

    xp = np.pad(x, [(0, 0), (0, 0)] + [(p, p) for p in padding])
    strides = _row_major_strides(padded)
    m = max_kernel_degree_nd(kernel_extents, strides)
    input_len = int(np.prod(padded))
    nfft = plan_fft_size(input_len + m, fft_policy)

    fft = _fft.get_backend(backend)
    flat = xp.reshape(n, c, input_len)
    x_hat = fft.rfft(flat, nfft)                        # (n, c, bins)

    kernels = np.stack([
        np.stack([kernel_polynomial_nd(weight[fi, ci], padded)
                  for ci in range(c)])
        for fi in range(f)
    ])                                                  # (f, c, M+1)
    w_hat = fft.rfft(kernels, nfft)                     # (f, c, bins)

    out_hat = np.einsum("ncb,fcb->nfb", x_hat, w_hat)
    product = fft.irfft(out_hat, nfft)                  # (n, f, nfft)
    gather = output_gather_nd(out_extents, strides, stride, m)
    return product[..., gather]


def conv1d_polyhankel(x: np.ndarray, weight: np.ndarray, padding: int = 0,
                      stride: int = 1, **kwargs) -> np.ndarray:
    """1D convolution of an ``(n, c, length)`` batch."""
    x = ensure_array(x, "x")
    require(x.ndim == 3, "conv1d input must be (n, c, length)")
    return convnd_polyhankel(x, weight, padding, stride, **kwargs)


def conv3d_polyhankel(x: np.ndarray, weight: np.ndarray, padding=0,
                      stride=1, **kwargs) -> np.ndarray:
    """3D convolution of an ``(n, c, depth, height, width)`` batch."""
    x = ensure_array(x, "x")
    require(x.ndim == 5, "conv3d input must be (n, c, d, h, w)")
    return convnd_polyhankel(x, weight, padding, stride, **kwargs)


def convnd_naive(x: np.ndarray, weight: np.ndarray, padding=0,
                 stride=1) -> np.ndarray:
    """Direct d-dimensional reference (for testing the fast path)."""
    x = ensure_array(x, "x", dtype=float)
    weight = ensure_array(weight, "weight", dtype=float)
    ndim = x.ndim - 2
    padding = _normalize_per_dim(padding, ndim, "padding")
    stride = _normalize_per_dim(stride, ndim, "stride")
    xp = np.pad(x, [(0, 0), (0, 0)] + [(p, p) for p in padding])
    kernel_extents = weight.shape[2:]
    out_extents = tuple(
        (e - k) // s + 1
        for e, k, s in zip(xp.shape[2:], kernel_extents, stride)
    )
    out = np.zeros((x.shape[0], weight.shape[0], *out_extents))
    for idx in itertools.product(*[range(o) for o in out_extents]):
        window = tuple(
            slice(i * s, i * s + k)
            for i, s, k in zip(idx, stride, kernel_extents)
        )
        patch = xp[(slice(None), slice(None)) + window]
        flat_patch = patch.reshape(patch.shape[0], -1)
        flat_weight = weight.reshape(weight.shape[0], -1)
        out[(slice(None), slice(None)) + idx] = flat_patch @ flat_weight.T
    return out
