"""N-dimensional PolyHankel convolution (extension beyond the paper).

The paper develops the construction for 2D, but nothing in it is specific
to two dimensions: for a d-dimensional input with padded extents
``P_1 x ... x P_d`` and row-major strides ``s_l``, assign input element
``a[i_1..i_d]`` the degree ``sum_l s_l i_l`` (the flattened index) and
kernel element ``u[j_1..j_d]`` the degree ``M - sum_l s_l d_l j_l`` with
``M = sum_l s_l d_l (K_l - 1)`` (``d_l`` the per-axis dilation — the
stretched degree map, exactly as in 2D).  Every conceptual im2col row
again collapses to a single product term, and output ``(o_1..o_d)`` is
the coefficient at ``M + sum_l s_l stride_l o_l``.  The 2D case recovers
Eqs. 10-12 exactly; 1D drops the row stride; 3D stacks a plane stride
(``t^(Iw*Id*k + Iw*i + j)``).

This gives the library 1D (sequence/audio) and 3D (volumetric/video)
convolution through the same single-FFT pipeline, with channel summation
in the frequency domain as in Sec. 3.2 and the full parameter space
(per-axis stride and dilation, asymmetric/"same" padding, groups).

Rank-2 problems should keep using :mod:`repro.core.multichannel` (plan
cache, spectrum cache, packed layouts); rank-1 problems are lowered onto
that engine by :func:`conv1d_polyhankel` (a length-L sequence *is* a
1 x L image), so 1D inherits the packed real-pair FFT pipeline for free.
Other ranks run through the light :class:`NdPlan` cache here.
"""

from __future__ import annotations

import itertools
import threading

import numpy as np

from repro import fft as _fft
from repro.core.planning import FftPolicy, PlanSpec, plan_fft_size
from repro.utils.shapes import ConvShapeNd, normalize_tuple
from repro.utils.validation import ensure_array, require


def _normalize_per_dim(value, ndim: int, name: str) -> tuple[int, ...]:
    """Broadcast an int (or validate a tuple) to one entry per spatial dim."""
    return normalize_tuple(value, ndim, name)


def _row_major_strides(extents: tuple[int, ...]) -> tuple[int, ...]:
    strides = [1]
    for extent in extents[:0:-1]:
        strides.append(strides[-1] * extent)
    return tuple(reversed(strides))


def max_kernel_degree_nd(kernel_extents: tuple[int, ...],
                         strides: tuple[int, ...],
                         dilation: tuple[int, ...] | None = None) -> int:
    """Highest kernel-polynomial exponent: ``sum_l s_l d_l (K_l - 1)``."""
    if dilation is None:
        dilation = (1,) * len(kernel_extents)
    return int(sum(s * d * (k - 1)
                   for s, d, k in zip(strides, dilation, kernel_extents)))


def kernel_polynomial_nd(kernel: np.ndarray,
                         padded_extents: tuple[int, ...],
                         dilation: tuple[int, ...] | None = None
                         ) -> np.ndarray:
    """Coefficient vector of U(t) for one d-dimensional kernel.

    With *dilation*, tap ``(j_1..j_d)`` sits at degree
    ``M - sum_l s_l d_l j_l`` — the zeros between taps are never stored,
    the degree map just stretches.
    """
    kernel = ensure_array(kernel, "kernel", dtype=float)
    strides = _row_major_strides(padded_extents)
    if dilation is None:
        dilation = (1,) * kernel.ndim
    m = max_kernel_degree_nd(kernel.shape, strides, dilation)
    coeffs = np.zeros(m + 1, dtype=kernel.dtype)
    grids = np.meshgrid(*[np.arange(k) for k in kernel.shape],
                        indexing="ij")
    degrees = sum(s * d * g for s, d, g in zip(strides, dilation, grids))
    coeffs[m - degrees] = kernel
    return coeffs


def output_gather_nd(out_extents: tuple[int, ...],
                     strides: tuple[int, ...],
                     conv_strides: tuple[int, ...], m: int) -> np.ndarray:
    """Gather indices: M + sum_l s_l * stride_l * o_l (shape out_extents)."""
    grids = np.meshgrid(*[np.arange(o) for o in out_extents], indexing="ij")
    return m + sum(s * cs * g
                   for s, cs, g in zip(strides, conv_strides, grids))


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------

class NdPlan:
    """Precomputed geometry of one N-D PolyHankel problem.

    The N-D analogue of :class:`repro.core.multichannel.PolyHankelPlan`,
    deliberately lighter: degree strides, FFT size and the Eq. 12 gather
    index block are computed once and reused across calls; the weight
    spectrum is transformed per call (the rank-2 engine's content-checked
    spectrum cache does not apply here).
    """

    def __init__(self, shape: ConvShapeNd, fft_policy: FftPolicy = "pow2",
                 backend: str | None = None):
        self.shape = shape
        self.fft_policy = fft_policy
        self.backend = backend
        self.strides = shape.poly_strides
        self.m = shape.poly_kernel_len - 1
        self.nfft = plan_fft_size(shape.poly_product_len, fft_policy)
        self.gather = output_gather_nd(shape.out_extents, self.strides,
                                       shape.stride_nd, self.m)

    @property
    def spec(self) -> PlanSpec:
        """The pickle-safe :class:`PlanSpec` identifying this plan."""
        return PlanSpec(self.shape, self.fft_policy, "sum", self.backend,
                        ndim=self.shape.ndim)

    def transform_weight(self, weight: np.ndarray) -> np.ndarray:
        """Frequency-domain kernel block ``(f, c_per, bins)``."""
        shape = self.shape
        fft = _fft.get_backend(self.backend)
        dilation = shape.dilation_nd
        padded = shape.padded_extents
        kernels = np.stack([
            np.stack([kernel_polynomial_nd(weight[fi, ci], padded, dilation)
                      for ci in range(shape.group_channels)])
            for fi in range(shape.f)
        ])
        return fft.rfft(kernels, self.nfft)

    def execute(self, x: np.ndarray, w_hat: np.ndarray) -> np.ndarray:
        """One forward pass given the transformed weights."""
        shape = self.shape
        fft = _fft.get_backend(self.backend)
        n, g = shape.n, shape.groups
        c_per, f_per = shape.group_channels, shape.group_filters
        xp = np.pad(x, [(0, 0), (0, 0)] + list(shape.pad_pairs))
        flat = xp.reshape(n, shape.c, shape.poly_input_len)
        x_hat = fft.rfft(flat, self.nfft)               # (n, c, bins)
        bins = x_hat.shape[-1]
        # Frequency-domain channel sum, blocked per group: x groups along
        # the channel axis, w groups along the filter axis.
        xg = x_hat.reshape(n, g, c_per, bins)
        wg = w_hat.reshape(g, f_per, c_per, bins)
        out_hat = np.einsum("ngcb,gfcb->ngfb", xg, wg)
        out_hat = out_hat.reshape(n, shape.f, bins)
        product = fft.irfft(out_hat, self.nfft)         # (n, f, nfft)
        return product[..., self.gather]


_ND_PLANS: dict[tuple, NdPlan] = {}
_ND_PLAN_LOCK = threading.Lock()


def get_plan_nd(shape: ConvShapeNd, fft_policy: FftPolicy = "pow2",
                backend: str | None = None) -> NdPlan:
    """The (cached) :class:`NdPlan` for *shape* in this process."""
    key = (shape, fft_policy, backend)
    plan = _ND_PLANS.get(key)
    if plan is None:
        with _ND_PLAN_LOCK:
            plan = _ND_PLANS.get(key)
            if plan is None:
                plan = NdPlan(shape, fft_policy, backend)
                _ND_PLANS[key] = plan
    return plan


def clear_ndplan_cache() -> None:
    """Drop every cached N-D plan (tests, memory pressure)."""
    with _ND_PLAN_LOCK:
        _ND_PLANS.clear()


# ---------------------------------------------------------------------------
# Forward operators
# ---------------------------------------------------------------------------

def convnd_polyhankel(x: np.ndarray, weight: np.ndarray, padding=0,
                      stride=1, dilation=1, groups: int = 1,
                      fft_policy: FftPolicy = "pow2",
                      backend: str | None = None) -> np.ndarray:
    """d-dimensional convolution of an ``(n, c, *spatial)`` batch.

    *weight* is ``(f, c // groups, *kernel_spatial)``; *padding*, *stride*
    and *dilation* are ints or per-dimension tuples (*padding* also a
    flat ``(lo, hi)`` per-axis sequence or ``"same"``).  Works for any
    d >= 1; 1D/2D/3D are the practically useful cases, and rank-1/rank-2
    problems are better served by the cached 2D engine (see
    :func:`conv1d_polyhankel`).
    """
    x = ensure_array(x, "x", dtype=float)
    weight = ensure_array(weight, "weight", dtype=float)
    require(x.ndim >= 3, "input must be (n, c, *spatial)")
    shape = ConvShapeNd.from_tensors(x.shape, weight.shape, padding,
                                     stride, dilation, groups)
    plan = get_plan_nd(shape, fft_policy, backend)
    return plan.execute(x, plan.transform_weight(weight))


_LIFT_CACHE: dict[int, tuple[np.ndarray, np.ndarray]] = {}
_LIFT_LOCK = threading.Lock()
_LIFT_LIMIT = 64


def lift_weight_1d(weight: np.ndarray) -> np.ndarray:
    """The ``(f, c, 1, k)`` view of a 1D weight, memoized per array.

    The 2D engine's spectrum cache keys on ``id(weight)``; a fresh view
    per call would miss it forever and re-transform the kernel on every
    forward.  Memoizing the view per source array keeps the id stable, so
    steady-state 1D inference hits the spectrum cache exactly like native
    2D.  The view shares memory with its source, so in-place mutation of
    the 1D weight is still caught by the spectrum cache's content check.
    """
    key = id(weight)
    with _LIFT_LOCK:
        entry = _LIFT_CACHE.get(key)
        if entry is not None and entry[0] is weight:
            return entry[1]
        lifted = weight[:, :, None, :]
        if len(_LIFT_CACHE) >= _LIFT_LIMIT:
            _LIFT_CACHE.clear()
        _LIFT_CACHE[key] = (weight, lifted)
        return lifted


def conv1d_polyhankel(x: np.ndarray, weight: np.ndarray, padding=0,
                      stride=1, dilation=1, groups: int = 1,
                      **kwargs) -> np.ndarray:
    """1D convolution of an ``(n, c, length)`` batch.

    Lowered onto the cached 2D engine as a ``1 x L`` image — the degree
    map degenerates to ``t^j`` either way, and the 2D route brings the
    plan/spectrum caches and the packed real-pair FFT pipeline along.
    Extra *kwargs* (``strategy``, ``backend``, ``layout``, ``workers``,
    ``fft_policy``) pass straight through to the engine.
    """
    from repro.core.multichannel import conv2d_polyhankel

    x = ensure_array(x, "x", dtype=float)
    weight = ensure_array(weight, "weight", dtype=float)
    require(x.ndim == 3, "conv1d input must be (n, c, length)")
    require(weight.ndim == 3,
            "conv1d weight must be (f, c/groups, kernel)")
    shape = ConvShapeNd.from_tensors(x.shape, weight.shape, padding,
                                     stride, dilation, groups)
    (lo, hi), = shape.pad_pairs
    out = conv2d_polyhankel(
        x[:, :, None, :], lift_weight_1d(weight),
        padding=(0, 0, lo, hi), stride=(1, shape.stride_nd[0]),
        dilation=(1, shape.dilation_nd[0]), groups=groups, **kwargs)
    return out[:, :, 0, :]


def conv3d_polyhankel(x: np.ndarray, weight: np.ndarray, padding=0,
                      stride=1, dilation=1, groups: int = 1,
                      **kwargs) -> np.ndarray:
    """3D convolution of an ``(n, c, depth, height, width)`` batch."""
    x = ensure_array(x, "x")
    require(x.ndim == 5, "conv3d input must be (n, c, d, h, w)")
    return convnd_polyhankel(x, weight, padding, stride, dilation, groups,
                             **kwargs)


def convnd_naive(x: np.ndarray, weight: np.ndarray, padding=0,
                 stride=1, dilation=1, groups: int = 1) -> np.ndarray:
    """Direct d-dimensional reference (for testing the fast path)."""
    x = ensure_array(x, "x", dtype=float)
    weight = ensure_array(weight, "weight", dtype=float)
    shape = ConvShapeNd.from_tensors(x.shape, weight.shape, padding,
                                     stride, dilation, groups)
    xp = np.pad(x, [(0, 0), (0, 0)] + list(shape.pad_pairs))
    stride_nd, dilation_nd = shape.stride_nd, shape.dilation_nd
    eff = shape.eff_kernel
    out_extents = shape.out_extents
    c_per, f_per = shape.group_channels, shape.group_filters
    out = np.zeros((shape.n, shape.f, *out_extents))
    flat_weight = weight.reshape(shape.f, -1)
    for idx in itertools.product(*[range(o) for o in out_extents]):
        window = tuple(
            slice(i * s, i * s + e, d)
            for i, s, e, d in zip(idx, stride_nd, eff, dilation_nd)
        )
        patch = xp[(slice(None), slice(None)) + window]
        for g in range(shape.groups):
            flat_patch = patch[:, g * c_per:(g + 1) * c_per].reshape(
                shape.n, -1)
            filters = slice(g * f_per, (g + 1) * f_per)
            out[(slice(None), filters) + idx] = \
                flat_patch @ flat_weight[filters].T
    return out


def convnd_im2col_gemm(x: np.ndarray, weight: np.ndarray, padding=0,
                       stride=1, dilation=1, groups: int = 1) -> np.ndarray:
    """Explicit N-D im2col + GEMM (the Vasudevan-style lowered reference).

    Patches are gathered with ``sliding_window_view`` (dilation becomes a
    per-axis window step, stride a per-axis subsample), flattened to the
    classic ``(patch, c_per * prod(K))`` matrix and contracted against the
    flattened weights — one GEMM per group.
    """
    x = ensure_array(x, "x", dtype=float)
    weight = ensure_array(weight, "weight", dtype=float)
    shape = ConvShapeNd.from_tensors(x.shape, weight.shape, padding,
                                     stride, dilation, groups)
    ndim = shape.ndim
    xp = np.pad(x, [(0, 0), (0, 0)] + list(shape.pad_pairs))
    windows = np.lib.stride_tricks.sliding_window_view(
        xp, shape.eff_kernel, axis=tuple(range(2, 2 + ndim)))
    # (n, c, *valid, *eff_k) -> subsample outputs by stride, taps by
    # dilation.
    sel = ((slice(None), slice(None))
           + tuple(slice(None, None, s) for s in shape.stride_nd)
           + tuple(slice(None, None, d) for d in shape.dilation_nd))
    windows = windows[sel]                  # (n, c, *out, *k)
    n = shape.n
    c_per, f_per = shape.group_channels, shape.group_filters
    out_extents = shape.out_extents
    # Move channels next to the kernel taps: (n, *out, c, *k).
    windows = np.moveaxis(windows, 1, 1 + ndim)
    cols = windows.reshape(n, *out_extents, shape.c, shape.kernel_elems)
    outs = []
    for g in range(shape.groups):
        block = cols[..., g * c_per:(g + 1) * c_per, :].reshape(
            n, *out_extents, c_per * shape.kernel_elems)
        w_flat = weight[g * f_per:(g + 1) * f_per].reshape(f_per, -1)
        outs.append(block @ w_flat.T)       # (n, *out, f_per)
    stacked = np.concatenate(outs, axis=-1)  # (n, *out, f)
    return np.moveaxis(stacked, -1, 1)
