"""Dense polynomial arithmetic (Sec. 2.3).

``Polynomial`` is the pedagogical/value type behind the conceptual
construction: coefficient-vector form, naive O(MN) multiplication, and the
FFT multiplication of Eqs. 13-15.  The production convolution path in
:mod:`repro.core.multichannel` inlines the same steps on raw arrays; this
class keeps the algebra visible, testable and reusable.
"""

from __future__ import annotations

import numpy as np

from repro import fft as _fft
from repro.utils.validation import ensure_array


class Polynomial:
    """A polynomial in coefficient-vector form: ``coeffs[k]`` is the
    coefficient of ``t^k``."""

    def __init__(self, coeffs):
        coeffs = np.atleast_1d(ensure_array(coeffs, "coeffs"))
        if coeffs.ndim != 1:
            raise ValueError("coefficients must be one-dimensional")
        if len(coeffs) == 0:
            coeffs = np.zeros(1)
        self.coeffs = coeffs

    @classmethod
    def from_terms(cls, terms: dict[int, float]) -> "Polynomial":
        """Build from a ``{degree: coefficient}`` mapping.

        >>> Polynomial.from_terms({0: 1.0, 3: 2.0}).coeffs.tolist()
        [1.0, 0.0, 0.0, 2.0]
        """
        if not terms:
            return cls(np.zeros(1))
        degree = max(terms)
        if min(terms) < 0:
            raise ValueError("negative degrees are not representable")
        coeffs = np.zeros(degree + 1)
        for deg, coeff in terms.items():
            coeffs[deg] = coeff
        return cls(coeffs)

    @classmethod
    def zero(cls) -> "Polynomial":
        return cls(np.zeros(1))

    @property
    def degree(self) -> int:
        """Degree of the highest nonzero term (0 for the zero polynomial)."""
        nonzero = np.nonzero(self.coeffs)[0]
        return int(nonzero[-1]) if len(nonzero) else 0

    def coeff(self, k: int) -> float:
        """Coefficient of ``t^k`` (0.0 beyond the stored length)."""
        if k < 0:
            raise ValueError("degrees are non-negative")
        return float(self.coeffs[k]) if k < len(self.coeffs) else 0.0

    def trimmed(self) -> "Polynomial":
        """Copy with trailing zero coefficients removed."""
        return Polynomial(self.coeffs[: self.degree + 1].copy())

    def __call__(self, t):
        """Evaluate via Horner's rule (scalar or array argument)."""
        result = np.zeros_like(np.asarray(t, dtype=self.coeffs.dtype
                                          if np.iscomplexobj(self.coeffs)
                                          else float))
        for c in self.coeffs[::-1]:
            result = result * t + c
        return result

    def __add__(self, other: "Polynomial") -> "Polynomial":
        a, b = self.coeffs, other.coeffs
        if len(a) < len(b):
            a, b = b, a
        out = a.copy()
        out[: len(b)] += b
        return Polynomial(out)

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        return self + Polynomial(-other.coeffs)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        a = self.trimmed().coeffs
        b = other.trimmed().coeffs
        return a.shape == b.shape and bool(np.allclose(a, b))

    def __hash__(self):  # pragma: no cover - polynomials are mutable-ish
        return NotImplemented

    def naive_mul(self, other: "Polynomial") -> "Polynomial":
        """Schoolbook O(MN) product — the baseline of Sec. 2.3."""
        return Polynomial(np.convolve(self.coeffs, other.coeffs))

    def fft_mul(self, other: "Polynomial",
                backend: str | None = None) -> "Polynomial":
        """FFT product, Eqs. 14-15: pad both to N+M-1, transform, multiply,
        inverse-transform."""
        with _fft.use_backend(_fft.get_backend(backend)):
            n = len(self.coeffs) + len(other.coeffs) - 1
            nfft = _fft.next_fast_len(n)
            if np.iscomplexobj(self.coeffs) or np.iscomplexobj(other.coeffs):
                prod = _fft.ifft(
                    _fft.fft(self.coeffs, nfft) * _fft.fft(other.coeffs, nfft)
                )[:n]
            else:
                prod = _fft.irfft(
                    _fft.rfft(self.coeffs, nfft)
                    * _fft.rfft(other.coeffs, nfft),
                    nfft,
                )[:n]
        return Polynomial(prod)

    def __mul__(self, other):
        if isinstance(other, Polynomial):
            # FFT pays off quickly; use it beyond tiny products.
            if len(self.coeffs) * len(other.coeffs) <= 1024:
                return self.naive_mul(other)
            return self.fft_mul(other)
        return Polynomial(self.coeffs * other)

    __rmul__ = __mul__

    def __repr__(self) -> str:
        t = self.trimmed()
        terms = [
            f"{c:g}*t^{k}" for k, c in enumerate(t.coeffs) if c != 0
        ] or ["0"]
        return "Polynomial(" + " + ".join(terms[:8]) + (
            " + ..." if len(terms) > 8 else ""
        ) + ")"
