"""The paper's contribution: PolyHankel convolution.

Layered as in the paper:

- :mod:`repro.core.degree_map` — index-to-exponent maps (Sec. 3.1, Fig. 2);
- :mod:`repro.core.polynomial` — coefficient-form polynomials and their FFT
  product (Sec. 2.3);
- :mod:`repro.core.construction` — building A(t) and U(t) directly from the
  input/kernel (Sec. 2.2, Eqs. 10-12);
- :mod:`repro.core.polyhankel` — single-channel convolution;
- :mod:`repro.core.multichannel` — batched NCHW production path (Sec. 3.2);
- :mod:`repro.core.overlap_save` — overlap-save batch streaming (Sec. 3.2);
- :mod:`repro.core.planning` — cuFFT-style size policies.
"""

from repro.core.construction import (
    input_polynomial,
    kernel_polynomial,
    output_gather_indices,
)
from repro.core.degree_map import (
    input_degrees,
    kernel_degrees,
    lshaped_traversal_map,
    max_kernel_degree,
    output_degrees,
)
from repro.core.multichannel import (
    PolyHankelPlan,
    clear_plan_cache,
    conv2d_polyhankel,
    get_plan,
)
from repro.core.overlap_save import (
    conv2d_polyhankel_os,
    overlap_save_convolve,
)
from repro.core.planning import POLICIES, plan_fft_size
from repro.core.polyhankel import conv2d_single
from repro.core.polynomial import Polynomial

__all__ = [
    "Polynomial",
    "conv2d_single",
    "conv2d_polyhankel",
    "conv2d_polyhankel_os",
    "overlap_save_convolve",
    "PolyHankelPlan",
    "get_plan",
    "clear_plan_cache",
    "plan_fft_size",
    "POLICIES",
    "input_polynomial",
    "kernel_polynomial",
    "output_gather_indices",
    "input_degrees",
    "kernel_degrees",
    "output_degrees",
    "max_kernel_degree",
    "lshaped_traversal_map",
]
