"""``repro doctor``: self-diagnosis of the guarded execution machinery.

A guard that itself rotted is worse than no guard — it converts silent
wrong answers into confidently-served wrong answers.  The doctor runs the
protection machinery against ground truth on a representative problem and
reports a health table; any failed check makes the CLI exit nonzero, so a
broken install cannot masquerade as a healthy one in CI or a deploy gate.

Checks:

- **fft-parity** — measures the FFT ulp-growth constant against the exact
  O(n^2) DFT reference and verifies the shipped sentinel constant keeps
  real headroom above it (a too-tight constant would flag healthy
  forwards; a measured blowup means the FFT stack itself is broken).
- **cache-integrity** — round-trips a weight spectrum through the plan
  cache, verifies its content checksum, and confirms a deliberate
  mutation *is* caught (the detector must detect).
- **chain-reachability** — walks the fallback chain for a representative
  shape and checks every entry independently reproduces the naive
  reference, and that the chain terminates in ``naive``.
- **sentinel-classify** — the sentinel calls a healthy forward healthy, a
  magnitude blowup suspect, and a NaN output failed.
- **guarded-recovery** — injects a NaN fault into the PolyHankel pipeline
  and verifies the guarded forward still returns the reference answer,
  with the recovery visible in the ``guard.fallback`` counter.
- **cluster-health** — spawns a 2-worker cluster, round-trips a tensor
  through the shared-memory arena bit-exactly, and verifies teardown
  leaves no child process or ``/dev/shm`` segment behind, so broken
  multiprocessing environments fail loud here instead of flaking in
  production.
- **overload-control** — validates the cluster fault vocabulary, arms
  the benign faults through the live control plane of a 2-worker
  cluster (``slow_worker`` over the pipe with an ack, ``slot_leak`` in
  the router) and confirms answers stay bit-exact, the leak surfaces in
  its counter, and an already-expired deadline is shed as a typed
  :class:`~repro.serve.overload.DeadlineExceeded` instead of executing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one doctor check."""

    name: str
    ok: bool
    detail: str


def _reference_problem(seed: int = 0):
    """A representative multi-channel conv problem plus its naive answer."""
    from repro.baselines.registry import ConvAlgorithm, convolve

    rng = np.random.default_rng(seed)
    x = rng.standard_normal((2, 3, 12, 12))
    w = rng.standard_normal((4, 3, 3, 3))
    ref = convolve(x, w, algorithm=ConvAlgorithm.NAIVE, padding=1)
    return x, w, ref


def check_fft_parity() -> CheckResult:
    from repro.guard.sentinel import calibrate_ulp_constant
    from repro.guard.state import current_config

    configured = current_config().ulp_constant
    measured = calibrate_ulp_constant()
    ok = 0.0 < measured <= configured / 2.0
    return CheckResult(
        "fft-parity", ok,
        f"measured ulp constant {measured:.2f} vs configured {configured:.2f}"
        + ("" if ok else " — need measured <= configured/2"),
    )


def check_cache_integrity() -> CheckResult:
    from repro.core.multichannel import get_plan
    from repro.guard.checksum import array_checksum, verify_checksum
    from repro.utils.shapes import ConvShape

    rng = np.random.default_rng(1)
    w = rng.standard_normal((2, 3, 3, 3))
    shape = ConvShape.from_tensors((1, 3, 8, 8), w.shape, 0, 1, 1, 1)
    plan = get_plan(shape)
    spectrum = plan.weight_spectrum(w)
    again = plan.weight_spectrum(w)
    stamp = array_checksum(spectrum)
    intact = verify_checksum(again, stamp)
    doctored = np.array(spectrum, copy=True)
    doctored.flat[0] += 1.0
    caught = not verify_checksum(doctored, stamp)
    ok = intact and caught
    return CheckResult(
        "cache-integrity", ok,
        "spectrum checksum stable across cache hits; mutation detected"
        if ok else f"intact={intact} mutation_caught={caught}",
    )


def check_chain_reachability() -> CheckResult:
    from repro.baselines.registry import ConvAlgorithm, convolve, fallback_chain
    from repro.utils.shapes import ConvShape

    x, w, ref = _reference_problem()
    shape = ConvShape.from_tensors(x.shape, w.shape, 1, 1, 1, 1)
    chain = fallback_chain(shape)
    if not chain or chain[-1] is not ConvAlgorithm.NAIVE:
        return CheckResult(
            "chain-reachability", False,
            f"chain {[a.value for a in chain]} does not terminate in naive",
        )
    tol = 1e-8 * max(float(np.max(np.abs(ref))), 1.0)
    bad = []
    for algo in chain:
        try:
            out = convolve(x, w, algorithm=algo, padding=1)
        except Exception as exc:
            bad.append(f"{algo.value}: {type(exc).__name__}: {exc}")
            continue
        err = float(np.max(np.abs(out - ref)))
        if err > tol:
            bad.append(f"{algo.value}: max err {err:.3e} > {tol:.3e}")
    ok = not bad
    return CheckResult(
        "chain-reachability", ok,
        f"all {len(chain)} chain entries match the naive reference"
        if ok else "; ".join(bad),
    )


def check_sentinel_classify() -> CheckResult:
    from repro.guard import sentinel

    x, w, ref = _reference_problem()
    plen = ref.shape[-1] * ref.shape[-2] * 4  # generous product length
    healthy = sentinel.classify(ref, x, w, plen)
    suspect = sentinel.classify(ref * 1e12, x, w, plen)
    nan_out = np.array(ref, copy=True)
    nan_out.flat[0] = np.nan
    failed = sentinel.classify(nan_out, x, w, plen)
    ok = (healthy.status == sentinel.HEALTHY
          and suspect.status == sentinel.SUSPECT
          and failed.status == sentinel.FAILED)
    return CheckResult(
        "sentinel-classify", ok,
        "healthy/suspect/failed verdicts all correct" if ok else
        f"got {healthy.status}/{suspect.status}/{failed.status}, "
        "want healthy/suspect/failed",
    )


def check_guarded_recovery() -> CheckResult:
    from repro.guard import faults
    from repro.guard.chain import guarded_conv2d, reset_guard
    from repro.guard.state import guarded
    from repro.observe.registry import counters

    x, w, ref = _reference_problem()
    reset_guard()
    try:
        with guarded(), faults.inject("nan_input", seed=7):
            out = guarded_conv2d(x, w, padding=1)
        fallbacks = int(counters.total("guard.fallback"))
        err = float(np.max(np.abs(out - ref)))
        tol = 1e-8 * max(float(np.max(np.abs(ref))), 1.0)
        ok = err <= tol and fallbacks > 0
        return CheckResult(
            "guarded-recovery", ok,
            f"recovered reference answer via {fallbacks} fallback(s), "
            f"max err {err:.3e}" if ok else
            f"max err {err:.3e} (tol {tol:.3e}), fallbacks={fallbacks}",
        )
    except Exception as exc:
        return CheckResult("guarded-recovery", False,
                           f"{type(exc).__name__}: {exc}")
    finally:
        reset_guard()


def check_cluster_health() -> CheckResult:
    import os

    from repro.nn import functional as F
    from repro.serve.router import ClusterServer
    from repro.serve.shm import ARENA_PREFIX

    x, w, _ = _reference_problem(seed=3)
    ref = F.conv2d(x, w, padding=1)
    try:
        with ClusterServer(workers=2, slots=8,
                           slot_bytes=1 << 18) as server:
            arena_name = server._arena.name
            pids = server.worker_pids()
            out = server.conv2d(x, w, padding=1, timeout=30)
        if not np.array_equal(out, ref):
            return CheckResult(
                "cluster-health", False,
                "shm round-trip result diverged from in-process conv2d")
        leaked_procs = []
        for pid in pids:
            try:
                os.kill(pid, 0)
            except (ProcessLookupError, PermissionError):
                continue
            leaked_procs.append(pid)
        leaked_shm = []
        if os.path.isdir("/dev/shm"):
            leaked_shm = [f for f in os.listdir("/dev/shm")
                          if f == arena_name.lstrip("/")
                          or f == arena_name]
        ok = not leaked_procs and not leaked_shm
        return CheckResult(
            "cluster-health", ok,
            "2-worker shm round-trip bit-exact; teardown left no "
            "process or segment" if ok else
            f"leaked pids={leaked_procs} shm={leaked_shm} "
            f"(prefix {ARENA_PREFIX})",
        )
    except Exception as exc:
        return CheckResult("cluster-health", False,
                           f"{type(exc).__name__}: {exc}")


def check_overload_control() -> CheckResult:
    from repro.guard import faults
    from repro.nn import functional as F
    from repro.observe.registry import counters
    from repro.serve.overload import DeadlineExceeded
    from repro.serve.router import ClusterServer

    problems = []
    for kind in faults.CLUSTER_FAULT_KINDS:
        if kind not in faults.FAULT_KINDS:
            problems.append(f"{kind} missing from FAULT_KINDS")
    try:
        faults.FaultState(kinds=frozenset({"not_a_fault"}))
        problems.append("unknown fault kind accepted")
    except ValueError:
        pass
    if problems:
        return CheckResult("overload-control", False, "; ".join(problems))

    x, w, _ = _reference_problem(seed=5)
    ref = F.conv2d(x, w, padding=1)
    try:
        with ClusterServer(workers=2, slots=8,
                           slot_bytes=1 << 18) as server:
            # Benign degradation armed over the live control pipe: both
            # replicas must ack, answers must stay bit-exact.
            acked = server.inject_worker_faults(
                "slow_worker", params={"delay_s": 0.005}, timeout=10)
            if len(acked) != 2:
                problems.append(f"slow_worker acked by {acked}, want both")
            out = server.conv2d(x, w, padding=1, timeout=30)
            if not np.array_equal(out, ref):
                problems.append("slow_worker answer diverged")
            server.clear_worker_faults(timeout=10)
            # Router-side slot leak: serving continues, leak is counted.
            before = int(counters.total("serve.cluster.slot_leaks"))
            with faults.inject("slot_leak", max_fires=1):
                out = server.conv2d(x, w, padding=1, timeout=30)
            if not np.array_equal(out, ref):
                problems.append("slot_leak answer diverged")
            leaked = int(counters.total("serve.cluster.slot_leaks")) \
                - before
            if leaked < 1:
                problems.append("slot_leak fired but leak counter flat")
            # A deadline that expires before any stage can run must
            # shed typed, not execute (1 microsecond: positive, as
            # resolve_deadline requires, yet dead on arrival).
            try:
                server.conv2d(x, w, padding=1, timeout=1e-6)
                problems.append("expired deadline executed anyway")
            except DeadlineExceeded:
                pass
        ok = not problems
        return CheckResult(
            "overload-control", ok,
            f"{len(faults.CLUSTER_FAULT_KINDS)} cluster fault kinds "
            "armed/acked; parity held under faults; expired deadline "
            "shed typed" if ok else "; ".join(problems),
        )
    except Exception as exc:
        return CheckResult("overload-control", False,
                           f"{type(exc).__name__}: {exc}")


CHECKS = (
    check_fft_parity,
    check_cache_integrity,
    check_chain_reachability,
    check_sentinel_classify,
    check_guarded_recovery,
    check_cluster_health,
    check_overload_control,
)


def run_doctor() -> list[CheckResult]:
    """Run every check; never raises — failures become failed results."""
    results = []
    for check in CHECKS:
        try:
            results.append(check())
        except Exception as exc:
            name = check.__name__.removeprefix("check_").replace("_", "-")
            results.append(CheckResult(name, False,
                                       f"{type(exc).__name__}: {exc}"))
    return results


def format_report(results: list[CheckResult]) -> str:
    """Render the health table the CLI prints."""
    lines = []
    for r in results:
        mark = "ok" if r.ok else "FAIL"
        lines.append(f"[{mark:>4}] {r.name:<20} {r.detail}")
    failed = sum(1 for r in results if not r.ok)
    lines.append(
        f"{len(results) - failed}/{len(results)} checks passed"
        + ("" if not failed else f" — {failed} FAILED")
    )
    return "\n".join(lines)
