"""Per-(algorithm, shape, dtype) circuit breaker with TTL.

A path that fails once may have been unlucky (a transient backend error);
a path that fails on every call of one shape is chronically broken for
that shape — re-attempting it on every request just adds its failure
latency in front of the fallback that actually serves the answer.  The
breaker remembers consecutive failures per key and, past a threshold,
*opens*: the chain routes around the path without trying it until the TTL
expires, after which one retry is allowed (half-open semantics fall out of
the consecutive-failure counter being retained while open).

The clock is injectable so tests can drive TTL expiry deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

BreakerKey = tuple


class CircuitBreaker:
    """Thread-safe consecutive-failure memory keyed by hashable tuples."""

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._failures: dict[BreakerKey, int] = {}
        self._open_until: dict[BreakerKey, float] = {}

    def is_open(self, key: BreakerKey) -> bool:
        """Whether *key* is currently routed around (expired opens clear)."""
        with self._lock:
            deadline = self._open_until.get(key)
            if deadline is None:
                return False
            if self._clock() >= deadline:
                # TTL expired: allow one retry.  The failure count is kept,
                # so another failure re-opens immediately (half-open).
                del self._open_until[key]
                return False
            return True

    def record_failure(self, key: BreakerKey, threshold: int,
                       ttl_s: float) -> bool:
        """Count one failure; returns True when this opens the breaker."""
        with self._lock:
            count = self._failures.get(key, 0) + 1
            self._failures[key] = count
            already_open = key in self._open_until
            if count >= threshold and not already_open:
                self._open_until[key] = self._clock() + ttl_s
                return True
            if already_open:
                # Re-failure during half-open retry: extend the window.
                self._open_until[key] = self._clock() + ttl_s
        return False

    def record_success(self, key: BreakerKey) -> None:
        """A healthy result fully resets the key."""
        with self._lock:
            self._failures.pop(key, None)
            self._open_until.pop(key, None)

    def open_keys(self) -> list[BreakerKey]:
        """Keys currently open (pruning expired entries)."""
        now = self._clock()
        with self._lock:
            expired = [k for k, t in self._open_until.items() if now >= t]
            for k in expired:
                del self._open_until[k]
            return sorted(self._open_until)

    def failure_count(self, key: BreakerKey) -> int:
        with self._lock:
            return self._failures.get(key, 0)

    def snapshot(self) -> dict:
        """Aggregate view for stats surfaces: open keys + failure counts.

        The cluster router exposes this per-replica (keys are
        ``("replica", id)``) through ``ClusterServer.stats()``; expired
        opens are pruned on the way out so the view is current.
        """
        now = self._clock()
        with self._lock:
            expired = [k for k, t in self._open_until.items() if now >= t]
            for k in expired:
                del self._open_until[k]
            return {
                "open": sorted(self._open_until),
                "failures": dict(self._failures),
            }

    def reset(self) -> None:
        """Forget everything (tests, process-level recovery)."""
        with self._lock:
            self._failures.clear()
            self._open_until.clear()
