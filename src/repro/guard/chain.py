"""The supervised fallback chain: one forward, several ways to survive it.

``guarded_conv2d`` walks an ordered chain of algorithm lowerings —
PolyHankel, its overlap-save variant, im2col/GEMM, naive — derived from
the baselines registry's ``supports()`` metadata.  Each attempt is
sentinel-classified (:mod:`repro.guard.sentinel`); a suspect/failed result
or a raised exception falls through to the next entry instead of reaching
the caller.  A per-(algorithm, shape, dtype) circuit breaker
(:mod:`repro.guard.breaker`) remembers chronically failing paths and
routes around them for a TTL, so a broken backend costs its failure
latency once per TTL window, not once per request.

Every decision is observable through the unified counter registry:

- ``guard.fallback``      — one abandoned attempt (tags: algorithm, cause);
- ``guard.sentinel_trip`` — a suspect/failed verdict (tags: algorithm,
  status);
- ``guard.breaker_open``  — a breaker transitioning to open;
- ``guard.cache_corrupt`` — a checksum-invalidated spectrum entry
  (emitted by the cache owners, counted here for one vocabulary);

plus ``guard.attempt`` trace spans while tracing is enabled.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.registry import ConvAlgorithm, convolve, fallback_chain
from repro.guard import sentinel
from repro.guard.breaker import CircuitBreaker
from repro.guard.state import GuardConfig, current_config
from repro.observe import span
from repro.observe.registry import counters
from repro.utils.shapes import ConvShape
from repro.utils.validation import check_conv_inputs, ensure_array


class GuardExhaustedError(RuntimeError):
    """Every chain entry failed, was skipped, or produced rejected output."""

    def __init__(self, attempts: list[tuple[str, str, str | None]]):
        self.attempts = attempts
        detail = "; ".join(
            f"{algo}: {status}" + (f" ({reason})" if reason else "")
            for algo, status, reason in attempts
        )
        super().__init__(
            f"guarded execution exhausted its fallback chain — {detail}"
        )


#: Process-wide breaker shared by every guarded call.
_BREAKER = CircuitBreaker()


def breaker() -> CircuitBreaker:
    """The process-wide circuit breaker (introspection and tests)."""
    return _BREAKER


def reset_guard() -> None:
    """Reset breaker memory and guard counters (tests, recovery drills)."""
    _BREAKER.reset()
    counters.clear("guard.")


def guarded_conv2d(x: np.ndarray, weight: np.ndarray,
                   bias: np.ndarray | None = None,
                   padding: int | tuple | str = 0,
                   stride: int | tuple = 1,
                   dilation: int | tuple = 1, groups: int = 1,
                   algorithm: ConvAlgorithm | str = ConvAlgorithm.POLYHANKEL,
                   config: GuardConfig | None = None,
                   breaker_key=None,
                   **kwargs) -> np.ndarray:
    """2D convolution through the supervised fallback chain.

    Semantics match :func:`repro.nn.functional.conv2d`, with supervision:
    the requested *algorithm* runs first (receiving any extra *kwargs*);
    on a sentinel trip or exception the chain falls through registry-
    lowered alternatives — called bare, since engine-specific knobs like
    ``strategy`` or ``workers`` do not transfer — until one produces a
    healthy result.  Raises :class:`GuardExhaustedError` if none does.

    *breaker_key* overrides the breaker's shape scope: the serving layer
    passes a request family's coalescing key so shards of one family —
    whose per-shard shapes differ only in batch size — trip and share a
    single breaker instead of one breaker per batch-axis cut.

    Non-finite *inputs* are served from the first attempt that completes
    (classified ``degraded``): garbage-in is not an engine fault, and no
    fallback could recover a clean answer from a poisoned input.
    """
    config = config or current_config()
    x = ensure_array(x, "x", dtype=float)
    weight = ensure_array(weight, "weight", dtype=float)
    check_conv_inputs(x, weight, padding, stride, dilation, groups)
    shape = ConvShape.from_tensors(x.shape, weight.shape, padding, stride,
                                   dilation, groups)
    chain = fallback_chain(shape, primary=algorithm, order=config.chain)
    if not chain:  # pragma: no cover - naive supports every shape
        raise GuardExhaustedError([("-", "empty", "no supported algorithm")])
    dtype_tag = str(x.dtype)
    scope = breaker_key if breaker_key is not None else shape
    attempts: list[tuple[str, str, str | None]] = []
    last_exc: Exception | None = None
    for index, algo in enumerate(chain):
        key = (algo.value, scope, dtype_tag)
        if _BREAKER.is_open(key):
            counters.add("guard.fallback", algorithm=algo.value,
                         cause="breaker_open")
            attempts.append((algo.value, "skipped", "breaker open"))
            continue
        call_kwargs = kwargs if index == 0 else {}
        try:
            with span("guard.attempt", algorithm=algo.value, attempt=index):
                out = convolve(x, weight, algorithm=algo, padding=padding,
                               stride=stride, dilation=dilation,
                               groups=groups, **call_kwargs)
        except Exception as exc:
            last_exc = exc
            counters.add("guard.fallback", algorithm=algo.value,
                         cause="exception")
            if _BREAKER.record_failure(key, config.breaker_threshold,
                                       config.breaker_ttl_s):
                counters.add("guard.breaker_open", algorithm=algo.value)
            attempts.append((algo.value, "error",
                             f"{type(exc).__name__}: {exc}"))
            continue
        verdict = sentinel.classify(out, x, weight,
                                    shape.poly_product_len, config)
        if verdict.ok:
            _BREAKER.record_success(key)
            if bias is not None:
                bias = ensure_array(bias, "bias", ndim=1)
                out = out + bias[None, :, None, None]
            return out
        counters.add("guard.sentinel_trip", algorithm=algo.value,
                     status=verdict.status)
        counters.add("guard.fallback", algorithm=algo.value,
                     cause=verdict.status)
        if _BREAKER.record_failure(key, config.breaker_threshold,
                                   config.breaker_ttl_s):
            counters.add("guard.breaker_open", algorithm=algo.value)
        attempts.append((algo.value, verdict.status, verdict.reason))
    raise GuardExhaustedError(attempts) from last_exc


def guarded_convnd(x: np.ndarray, weight: np.ndarray,
                   op="conv2d",
                   bias: np.ndarray | None = None,
                   padding: int | tuple | str = 0,
                   stride: int | tuple = 1,
                   dilation: int | tuple = 1, groups: int = 1,
                   output_padding: int | tuple = 0,
                   algorithm: ConvAlgorithm | str = ConvAlgorithm.POLYHANKEL,
                   config: GuardConfig | None = None,
                   breaker_key=None,
                   **kwargs) -> np.ndarray:
    """Any convolution op through the supervised fallback chain.

    The op-level generalization of :func:`guarded_conv2d` — same
    supervision contract (sentinel classification, breaker memory,
    counters), dispatched through :func:`repro.baselines.ndops.convolve_nd`
    so conv1d/conv3d/conv_transpose2d inherit the chain.  The sentinel's
    B/E model carries over per rank: B is the per-output-channel L1 bound
    (rank-agnostic), E uses the op's actual FFT product length
    (``ConvShapeNd.poly_product_len``, or the internal adjoint problem's
    for transposed conv).
    """
    from repro.baselines.ndops import (
        ConvOp,
        convolve_nd,
        fallback_chain_nd,
        op_shape,
        resolve_op,
        transpose_weight_view,
    )

    op = resolve_op(op)
    if op is ConvOp.CONV2D:
        return guarded_conv2d(x, weight, bias=bias, padding=padding,
                              stride=stride, dilation=dilation,
                              groups=groups, algorithm=algorithm,
                              config=config, breaker_key=breaker_key,
                              **kwargs)
    config = config or current_config()
    x = ensure_array(x, "x", dtype=float)
    weight = ensure_array(weight, "weight", dtype=float)
    shape = op_shape(op, x.shape, weight.shape, padding, stride, dilation,
                     groups, output_padding)
    chain = fallback_chain_nd(op, x.shape, weight.shape, padding, stride,
                              dilation, groups, output_padding,
                              primary=algorithm)
    if not chain:  # pragma: no cover - naive supports every op/shape
        raise GuardExhaustedError([("-", "empty", "no supported algorithm")])
    # The sentinel bound wants weight axis 0 to enumerate output channels;
    # the tconv layout needs the per-group channel transpose first.
    sentinel_weight = weight
    if op is ConvOp.CONV_TRANSPOSE2D:
        sentinel_weight = transpose_weight_view(weight, groups)
    dtype_tag = str(x.dtype)
    scope = breaker_key if breaker_key is not None else (op.value, shape)
    attempts: list[tuple[str, str, str | None]] = []
    last_exc: Exception | None = None
    for index, algo in enumerate(chain):
        key = (algo.value, scope, dtype_tag)
        if _BREAKER.is_open(key):
            counters.add("guard.fallback", algorithm=algo.value,
                         cause="breaker_open")
            attempts.append((algo.value, "skipped", "breaker open"))
            continue
        call_kwargs = kwargs if index == 0 else {}
        try:
            with span("guard.attempt", algorithm=algo.value, attempt=index,
                      op=op.value):
                out = convolve_nd(x, weight, op, algo, padding=padding,
                                  stride=stride, dilation=dilation,
                                  groups=groups,
                                  output_padding=output_padding,
                                  **call_kwargs)
        except Exception as exc:
            last_exc = exc
            counters.add("guard.fallback", algorithm=algo.value,
                         cause="exception")
            if _BREAKER.record_failure(key, config.breaker_threshold,
                                       config.breaker_ttl_s):
                counters.add("guard.breaker_open", algorithm=algo.value)
            attempts.append((algo.value, "error",
                             f"{type(exc).__name__}: {exc}"))
            continue
        verdict = sentinel.classify(out, x, sentinel_weight,
                                    shape.poly_product_len, config)
        if verdict.ok:
            _BREAKER.record_success(key)
            if bias is not None:
                bias = ensure_array(bias, "bias", ndim=1)
                out = out + bias.reshape((1, -1) + (1,) * (out.ndim - 2))
            return out
        counters.add("guard.sentinel_trip", algorithm=algo.value,
                     status=verdict.status)
        counters.add("guard.fallback", algorithm=algo.value,
                     cause=verdict.status)
        if _BREAKER.record_failure(key, config.breaker_threshold,
                                   config.breaker_ttl_s):
            counters.add("guard.breaker_open", algorithm=algo.value)
        attempts.append((algo.value, verdict.status, verdict.reason))
    raise GuardExhaustedError(attempts) from last_exc
