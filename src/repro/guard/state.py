"""Guard enablement state and configuration.

This module is deliberately import-light (stdlib only): hot-path modules
(``repro.core.multichannel``, ``repro.nn.layers``, ``repro.fft.backend``)
consult it on every call, so it must never pull the algorithm registry or
anything else heavy, and the disabled check must stay a single attribute
load plus a truth test.

The guard itself (sentinels, fallback chain, breaker) lives in
:mod:`repro.guard.chain`; this module only answers "is supervision on, and
with what knobs".
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class GuardConfig:
    """Tunables of the guarded-execution subsystem.

    ``chain`` names algorithms by their registry string values (not enum
    members) so this module stays free of registry imports; the chain
    executor resolves them at call time and drops entries whose
    ``supports()`` predicate rejects the shape.
    """

    #: Calibrated slack multiplier of the a-priori FFT error model:
    #: ``err <= ulp_constant * eps * log2(nfft) * bound``.  The default is
    #: several times the worst ratio measured against the DFT reference
    #: (see :func:`repro.guard.sentinel.calibrate_ulp_constant`).
    ulp_constant: float = 64.0
    #: Relative slack on the a-posteriori magnitude bound before an output
    #: is classified ``suspect``.
    magnitude_slack: float = 2.0 ** -16
    #: Consecutive failures of one (algorithm, shape, dtype) before its
    #: circuit breaker opens.
    breaker_threshold: int = 3
    #: Seconds a tripped breaker routes around the failing path before the
    #: path is retried.
    breaker_ttl_s: float = 30.0
    #: Fallback order, primary first.  Entries not supporting the problem
    #: shape are skipped.  The string ``"ranked"`` derives the order from
    #: the selector's roofline ranking per shape instead (see
    #: :func:`repro.baselines.registry.fallback_chain`).
    chain: tuple[str, ...] | str = ("polyhankel", "polyhankel_os", "gemm",
                                   "naive")

    def with_(self, **kwargs) -> "GuardConfig":
        return replace(self, **kwargs)


class _GuardState:
    __slots__ = ("enabled", "config")

    def __init__(self) -> None:
        self.enabled = False
        self.config = GuardConfig()


#: Process-wide guard switch.  Hot paths read ``_STATE.enabled`` directly.
_STATE = _GuardState()


def guard_enabled() -> bool:
    """Whether guarded execution is currently on."""
    return _STATE.enabled


def current_config() -> GuardConfig:
    """The active configuration (meaningful whether or not enabled)."""
    return _STATE.config


def enable_guard(config: GuardConfig | None = None) -> GuardConfig:
    """Turn on guarded execution; returns the active config."""
    if config is not None:
        _STATE.config = config
    _STATE.enabled = True
    return _STATE.config


def disable_guard() -> None:
    """Turn off guarded execution (configuration is retained)."""
    _STATE.enabled = False


@contextmanager
def guarded(config: GuardConfig | None = None):
    """Context manager: guard on inside, previous state restored after."""
    previous_enabled = _STATE.enabled
    previous_config = _STATE.config
    enable_guard(config)
    try:
        yield _STATE.config
    finally:
        _STATE.enabled = previous_enabled
        _STATE.config = previous_config
