"""Numerical sentinels: cheap a-priori error bounds, a-posteriori checks.

The PolyHankel path trades direct convolution's exactness for FFT round-off
that grows with transform size and the input/kernel dynamic range.  The
sentinel classifies every forward result without a reference computation:

**A-priori model.**  Each output element is a dot product of at most
``C/g * Kh * Kw`` terms, so exact arithmetic obeys the hard bound
``|y| <= B`` with ``B = max|x| * max_f ||w_f||_1``.  The FFT pipeline's
absolute error follows the classic ulp-growth law
``E ~ ulp_constant * eps * log2(nfft) * B`` — the constant is calibrated
against the exact O(n^2) DFT reference
(:func:`calibrate_ulp_constant`), and the shipped default in
:class:`repro.guard.state.GuardConfig` sits several times above the worst
measured ratio.

**A-posteriori checks.**  A finished output is classified:

- ``failed``  — contains NaN/Inf the (finite) inputs cannot explain;
- ``suspect`` — finite, but its peak magnitude exceeds
  ``B * (1 + slack) + E``, which exact arithmetic forbids: the numerics
  blew up even though nothing overflowed;
- ``healthy`` — within bounds.

Non-finite *inputs* are passed through as ``degraded``: garbage-in is not
an engine fault, and re-running the chain on the same poisoned input could
never recover, so the guard does not try.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.guard.state import GuardConfig, current_config

HEALTHY = "healthy"
SUSPECT = "suspect"
FAILED = "failed"
DEGRADED = "degraded"

_EPS = float(np.finfo(np.float64).eps)


@dataclass(frozen=True)
class Verdict:
    """Sentinel classification of one forward result."""

    status: str
    reason: str | None = None
    #: Hard magnitude bound B of exact arithmetic (None when skipped).
    bound: float | None = None
    #: Predicted absolute FFT error E of the a-priori model.
    predicted_error: float | None = None
    #: Observed peak |output|.
    observed_peak: float | None = None

    @property
    def healthy(self) -> bool:
        return self.status == HEALTHY

    @property
    def ok(self) -> bool:
        """Whether the result should be served (healthy or degraded)."""
        return self.status in (HEALTHY, DEGRADED)


def output_magnitude_bound(x: np.ndarray, weight: np.ndarray) -> float:
    """Hard bound ``B = max|x| * max_f ||w_f||_1`` on any output element.

    Rank-agnostic: *weight* is ``(f, c/g, *kernel_spatial)`` for any
    spatial rank (1D/2D/3D share the same per-filter dot-product
    structure, only the number of summed taps changes).
    """
    if x.size == 0 or weight.size == 0:
        return 0.0
    x_peak = float(np.max(np.abs(x)))
    w_l1 = float(np.max(np.sum(np.abs(weight),
                               axis=tuple(range(1, weight.ndim)))))
    return x_peak * w_l1


def predicted_error_bound(product_len: int, bound: float,
                          ulp_constant: float | None = None) -> float:
    """A-priori absolute error ``E = c * eps * log2(nfft) * max(B, 1)``.

    *product_len* is the linear-convolution length the FFT evaluates
    (``ConvShape.poly_product_len`` for PolyHankel); the ``max(B, 1)``
    floor keeps the threshold meaningful for all-zero inputs, where tiny
    nonzero round-off is still healthy.
    """
    if ulp_constant is None:
        ulp_constant = current_config().ulp_constant
    log_n = math.log2(max(product_len, 2))
    return ulp_constant * _EPS * log_n * max(bound, 1.0)


def classify(out: np.ndarray, x: np.ndarray, weight: np.ndarray,
             product_len: int | None = None,
             config: GuardConfig | None = None) -> Verdict:
    """Classify a forward result as healthy / suspect / failed / degraded."""
    config = config or current_config()
    out = np.asarray(out)
    x = np.asarray(x, dtype=float)
    weight = np.asarray(weight, dtype=float)
    if not (np.isfinite(x).all() and np.isfinite(weight).all()):
        return Verdict(DEGRADED, "non-finite input: passing result through")
    if not np.isfinite(out).all():
        return Verdict(FAILED, "non-finite output from finite inputs")
    bound = output_magnitude_bound(x, weight)
    if product_len is None:
        product_len = max(int(np.asarray(out).shape[-1]) if out.ndim else 1,
                          x.shape[-1] if x.ndim else 1)
    error = predicted_error_bound(product_len, bound, config.ulp_constant)
    peak = float(np.max(np.abs(out))) if out.size else 0.0
    threshold = bound * (1.0 + config.magnitude_slack) + error
    if peak > threshold:
        return Verdict(
            SUSPECT,
            f"peak |out| = {peak:.3e} exceeds exact-arithmetic bound "
            f"{bound:.3e} (+ predicted error {error:.3e})",
            bound=bound, predicted_error=error, observed_peak=peak,
        )
    return Verdict(HEALTHY, bound=bound, predicted_error=error,
                   observed_peak=peak)


def calibrate_ulp_constant(sizes: tuple[int, ...] = (8, 16, 64, 128, 256),
                           trials: int = 4, seed: int = 0,
                           backend: str = "builtin") -> float:
    """Measure the FFT ulp-growth constant against the exact DFT reference.

    For each size, transforms random vectors through the named backend's
    ``rfft`` and compares against the O(n^2) DFT ground truth
    (:mod:`repro.fft.dft`); returns the worst observed
    ``err / (eps * log2(n) * ||a||_1)`` ratio.  The shipped
    ``GuardConfig.ulp_constant`` default must sit comfortably above this —
    ``repro doctor`` re-checks that on every run.
    """
    from repro.fft import get_backend
    from repro.fft.dft import dft

    fft = get_backend(backend)
    rng = np.random.default_rng(seed)
    worst = 0.0
    for n in sizes:
        for _ in range(trials):
            a = rng.standard_normal(n)
            got = fft.rfft(a, n)
            want = dft(a)[: n // 2 + 1]
            err = float(np.max(np.abs(got - want)))
            scale = _EPS * math.log2(max(n, 2)) * float(np.sum(np.abs(a)))
            if scale > 0:
                worst = max(worst, err / scale)
    return worst
