"""Content checksums for cached weight spectra.

A cached spectrum that silently rots (bad RAM, a stray in-place write, a
doctored entry from :mod:`repro.guard.faults`) propagates into every later
forward that hits the cache.  Callers stamp entries at insert time with
:func:`array_checksum` and verify on hit while the guard is enabled; a
mismatch is treated as a cache miss (recompute) and reported through the
``guard.cache_corrupt`` counter, never served.

CRC32 is deliberate: the threat model is accidental corruption, not an
adversary, and crc32 of a few-hundred-KB spectrum costs microseconds.
"""

from __future__ import annotations

import zlib

import numpy as np


def array_checksum(arr: np.ndarray) -> int:
    """CRC32 of the array's contents (layout-independent)."""
    arr = np.ascontiguousarray(arr)
    return zlib.crc32(arr.tobytes())


def verify_checksum(arr: np.ndarray, expected: int | None) -> bool:
    """Whether *arr* still matches the checksum taken at insert time.

    ``expected=None`` (entry stored while the guard was off) verifies
    trivially — there is nothing to compare against.
    """
    if expected is None:
        return True
    return array_checksum(arr) == expected
