"""Deterministic, seedable fault injection for the guard machinery.

The fallback chain, sentinels and cache checksums only earn trust if they
can be *watched* recovering.  This module plants faults at the real hook
points of the engine — not mocks — so the recovery path exercised in tests
and ``repro bench --inject`` is the one production traffic would take:

- ``nan_input`` / ``inf_input`` — poison the padded-input intermediate of
  :meth:`repro.core.multichannel.PolyHankelPlan.execute`, simulating an
  upstream buffer gone bad.  Only the PolyHankel pipeline sees the poison,
  so the chain's non-FFT fallbacks can still recover the clean answer.
- ``accuracy_blowup`` — scale the PolyHankel output by a large factor,
  simulating catastrophic round-off; trips the magnitude sentinel.
- ``spectrum_corruption`` — doctor cached weight-spectrum entries in
  place on their next cache hit, simulating in-memory rot; detected by the
  content checksums of :mod:`repro.guard.checksum`.
- ``backend_error`` — raise from inside the FFT backend dispatch,
  simulating a failing accelerator library; surfaces as
  :class:`repro.fft.backend.BackendExecutionError`.

The **cluster** kinds target the multi-process serving tier instead of
the engine — they exercise the router's watchdog, retry and slot
accounting rather than the numeric fallback chain:

- ``worker_stall`` — a replica's request loop blocks for ``stall_s``
  seconds mid-order without heartbeating, simulating a wedged process;
  the router watchdog must SIGKILL and reroute.
- ``slow_worker`` — every order pays an extra ``delay_s`` before
  executing, simulating a degraded-but-correct replica.
- ``response_drop`` — the worker computes the answer but never sends the
  completion, simulating a wedged reply path; the aging heartbeat is the
  only signal.
- ``slot_leak`` — the router "forgets" to release a dispatch's arena
  slots, simulating a slot-accounting bug; serving must continue on the
  remaining capacity and the leak must surface in counters.

Injection is scoped by a context manager (:func:`inject`) and driven by a
seeded generator, so every run is reproducible.  Cluster workers live in
other processes where no ``with`` scope can reach, so the router arms
them over the control pipe via :func:`arm`/:func:`disarm` instead.  The
hook sites guard themselves behind ``if faults._STACK:`` — one truth
test when idle.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

#: Faults planted inside the single-process engine (fallback-chain drills).
ENGINE_FAULT_KINDS = (
    "nan_input",
    "inf_input",
    "spectrum_corruption",
    "backend_error",
    "accuracy_blowup",
)

#: Faults planted at cluster hook sites (watchdog/retry/slot drills).
CLUSTER_FAULT_KINDS = (
    "worker_stall",
    "slow_worker",
    "response_drop",
    "slot_leak",
)

FAULT_KINDS = ENGINE_FAULT_KINDS + CLUSTER_FAULT_KINDS

#: Scale factor applied by the ``accuracy_blowup`` injector — far beyond
#: any slack the magnitude sentinel allows.
BLOWUP_FACTOR = 1e12


class InjectedFaultError(RuntimeError):
    """Raised by the ``backend_error`` injector inside FFT dispatch."""


@dataclass
class FaultState:
    """One active injection scope: which faults, how often, how seeded."""

    kinds: frozenset[str]
    seed: int = 0
    rate: float = 1.0
    #: Per-kind firing ceiling (None = unbounded).  A drill arming
    #: ``worker_stall`` with ``max_fires=1`` wedges exactly one order and
    #: then lets the respawned replica serve cleanly.
    max_fires: int | None = None
    #: Kind-specific knobs read by the hook sites (``stall_s``,
    #: ``delay_s``, ...).
    params: dict = field(default_factory=dict)
    rng: np.random.Generator = field(init=False)
    #: Injections actually performed, by kind (for reports and tests).
    counts: dict[str, int] = field(default_factory=dict)
    _doctored: set[int] = field(default_factory=set)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def __post_init__(self) -> None:
        unknown = self.kinds - set(FAULT_KINDS)
        if unknown:
            raise ValueError(
                f"unknown fault kind(s) {sorted(unknown)}; "
                f"known: {list(FAULT_KINDS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.max_fires is not None and self.max_fires < 1:
            raise ValueError(
                f"max_fires must be >= 1 or None, got {self.max_fires}")
        self.rng = np.random.default_rng(self.seed)

    def _fires(self, kind: str) -> bool:
        """Whether *kind* is armed and this opportunity draws an injection."""
        if kind not in self.kinds:
            return False
        with self._lock:
            if self.max_fires is not None \
                    and self.counts.get(kind, 0) >= self.max_fires:
                return False
            if self.rate < 1.0 and self.rng.random() >= self.rate:
                return False
            self.counts[kind] = self.counts.get(kind, 0) + 1
        # Fired injections surface in the unified registry so cluster
        # drills can see worker-side firings through the stats
        # delta-merge (the import is lazy: faults loads before observe
        # in some bootstrap orders, and firings are rare).
        from repro.observe.registry import counters

        counters.add("guard.fault_injected", kind=kind)
        return True


#: Active injection scopes, innermost last.  Hook sites check truthiness
#: before calling anything in this module.
_STACK: list[FaultState] = []
_stack_lock = threading.Lock()


def faults_active() -> bool:
    """Whether any injection scope is currently open."""
    return bool(_STACK)


def _top() -> FaultState | None:
    return _STACK[-1] if _STACK else None


@contextmanager
def inject(*kinds: str, seed: int = 0, rate: float = 1.0,
           max_fires: int | None = None, params: dict | None = None):
    """Open an injection scope arming *kinds*; yields its :class:`FaultState`.

    Deterministic: the same seed and the same call sequence inject at the
    same sites.  Scopes nest; the innermost wins.  *max_fires* caps each
    kind's firings; *params* carries kind-specific knobs (``stall_s``,
    ``delay_s``).
    """
    state = FaultState(kinds=frozenset(kinds), seed=seed, rate=rate,
                       max_fires=max_fires, params=params or {})
    arm(state)
    try:
        yield state
    finally:
        disarm(state)


def arm(state: FaultState) -> FaultState:
    """Push an injection scope without a ``with`` block.

    Cluster workers are armed over the control pipe — the router's
    ``inject`` order lands in another process where no context manager
    can scope the fault — so the worker loop arms/disarms explicitly.
    """
    with _stack_lock:
        _STACK.append(state)
    return state


def disarm(state: FaultState | None = None) -> None:
    """Remove one scope (or every scope, when *state* is None)."""
    with _stack_lock:
        if state is None:
            _STACK.clear()
        elif state in _STACK:
            _STACK.remove(state)


# -- hook points (call only when faults_active()) ----------------------------


def poison_intermediate(xp: np.ndarray) -> np.ndarray:
    """NaN/Inf-poison a pipeline intermediate (returns a doctored copy).

    The copy matters: the caller may hand us a reused scratch buffer whose
    zero border is never rewritten, and a persistent NaN there would leak
    into every later call — the injector simulates one corrupted request,
    not a broken process.
    """
    state = _top()
    if state is None or xp.size == 0:
        return xp
    value = None
    if state._fires("nan_input"):
        value = np.nan
    elif state._fires("inf_input"):
        value = np.inf
    if value is None:
        return xp
    xp = np.array(xp, dtype=float, copy=True)
    with state._lock:
        pos = int(state.rng.integers(xp.size))
    xp.flat[pos] = value
    return xp


def maybe_blowup(out: np.ndarray) -> np.ndarray:
    """Scale a pipeline output to simulate an accuracy blowup."""
    state = _top()
    if state is None or not state._fires("accuracy_blowup"):
        return out
    return out * BLOWUP_FACTOR


def maybe_corrupt_spectrum(spectrum: np.ndarray) -> None:
    """Doctor a cached spectrum entry in place (once per entry per scope)."""
    state = _top()
    if state is None or spectrum.size == 0:
        return
    with state._lock:
        if id(spectrum) in state._doctored:
            return
    if not state._fires("spectrum_corruption"):
        return
    with state._lock:
        state._doctored.add(id(spectrum))
        pos = int(state.rng.integers(spectrum.size))
    spectrum.flat[pos] = np.nan


def check_backend_fault(backend: str, op: str, n: int | None) -> None:
    """Raise :class:`InjectedFaultError` when a backend fault is armed."""
    state = _top()
    if state is not None and state._fires("backend_error"):
        raise InjectedFaultError(
            f"injected backend fault in {backend}.{op}(n={n})"
        )


# -- cluster hook points (worker loop and router slot accounting) ------------


def maybe_worker_stall() -> None:
    """Block the worker loop for ``stall_s`` seconds (default 30).

    The sleep stands in for a wedged process: the worker neither
    heartbeats nor answers while it lasts, so a stall longer than the
    router's ``stall_timeout_s`` must draw a SIGKILL + reroute.  (The
    watchdog usually kills us mid-sleep — the duration only needs to
    exceed the timeout.)
    """
    state = _top()
    if state is not None and state._fires("worker_stall"):
        time.sleep(float(state.params.get("stall_s", 30.0)))


def maybe_slow_worker() -> None:
    """Delay the order by ``delay_s`` seconds (default 0.05).

    Unlike a stall this is sub-timeout degradation: answers stay correct
    and the watchdog must *not* fire — the drill asserts parity and that
    no replica was quarantined.
    """
    state = _top()
    if state is not None and state._fires("slow_worker"):
        time.sleep(float(state.params.get("delay_s", 0.05)))


def should_drop_response() -> bool:
    """Whether the worker should swallow this completion message.

    The order executes fully (result written to the arena) but the reply
    never leaves the process, so only the aging heartbeat betrays the
    wedge.
    """
    state = _top()
    return state is not None and state._fires("response_drop")


def should_leak_slots() -> bool:
    """Whether the router should skip releasing a dispatch's slots."""
    state = _top()
    return state is not None and state._fires("slot_leak")
