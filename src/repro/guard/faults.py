"""Deterministic, seedable fault injection for the guard machinery.

The fallback chain, sentinels and cache checksums only earn trust if they
can be *watched* recovering.  This module plants faults at the real hook
points of the engine — not mocks — so the recovery path exercised in tests
and ``repro bench --inject`` is the one production traffic would take:

- ``nan_input`` / ``inf_input`` — poison the padded-input intermediate of
  :meth:`repro.core.multichannel.PolyHankelPlan.execute`, simulating an
  upstream buffer gone bad.  Only the PolyHankel pipeline sees the poison,
  so the chain's non-FFT fallbacks can still recover the clean answer.
- ``accuracy_blowup`` — scale the PolyHankel output by a large factor,
  simulating catastrophic round-off; trips the magnitude sentinel.
- ``spectrum_corruption`` — doctor cached weight-spectrum entries in
  place on their next cache hit, simulating in-memory rot; detected by the
  content checksums of :mod:`repro.guard.checksum`.
- ``backend_error`` — raise from inside the FFT backend dispatch,
  simulating a failing accelerator library; surfaces as
  :class:`repro.fft.backend.BackendExecutionError`.

Injection is scoped by a context manager (:func:`inject`) and driven by a
seeded generator, so every run is reproducible.  The hook sites guard
themselves behind ``if faults._STACK:`` — one truth test when idle.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

FAULT_KINDS = (
    "nan_input",
    "inf_input",
    "spectrum_corruption",
    "backend_error",
    "accuracy_blowup",
)

#: Scale factor applied by the ``accuracy_blowup`` injector — far beyond
#: any slack the magnitude sentinel allows.
BLOWUP_FACTOR = 1e12


class InjectedFaultError(RuntimeError):
    """Raised by the ``backend_error`` injector inside FFT dispatch."""


@dataclass
class FaultState:
    """One active injection scope: which faults, how often, how seeded."""

    kinds: frozenset[str]
    seed: int = 0
    rate: float = 1.0
    rng: np.random.Generator = field(init=False)
    #: Injections actually performed, by kind (for reports and tests).
    counts: dict[str, int] = field(default_factory=dict)
    _doctored: set[int] = field(default_factory=set)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def __post_init__(self) -> None:
        unknown = self.kinds - set(FAULT_KINDS)
        if unknown:
            raise ValueError(
                f"unknown fault kind(s) {sorted(unknown)}; "
                f"known: {list(FAULT_KINDS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        self.rng = np.random.default_rng(self.seed)

    def _fires(self, kind: str) -> bool:
        """Whether *kind* is armed and this opportunity draws an injection."""
        if kind not in self.kinds:
            return False
        with self._lock:
            if self.rate < 1.0 and self.rng.random() >= self.rate:
                return False
            self.counts[kind] = self.counts.get(kind, 0) + 1
        return True


#: Active injection scopes, innermost last.  Hook sites check truthiness
#: before calling anything in this module.
_STACK: list[FaultState] = []
_stack_lock = threading.Lock()


def faults_active() -> bool:
    """Whether any injection scope is currently open."""
    return bool(_STACK)


def _top() -> FaultState | None:
    return _STACK[-1] if _STACK else None


@contextmanager
def inject(*kinds: str, seed: int = 0, rate: float = 1.0):
    """Open an injection scope arming *kinds*; yields its :class:`FaultState`.

    Deterministic: the same seed and the same call sequence inject at the
    same sites.  Scopes nest; the innermost wins.
    """
    state = FaultState(kinds=frozenset(kinds), seed=seed, rate=rate)
    with _stack_lock:
        _STACK.append(state)
    try:
        yield state
    finally:
        with _stack_lock:
            _STACK.remove(state)


# -- hook points (call only when faults_active()) ----------------------------


def poison_intermediate(xp: np.ndarray) -> np.ndarray:
    """NaN/Inf-poison a pipeline intermediate (returns a doctored copy).

    The copy matters: the caller may hand us a reused scratch buffer whose
    zero border is never rewritten, and a persistent NaN there would leak
    into every later call — the injector simulates one corrupted request,
    not a broken process.
    """
    state = _top()
    if state is None or xp.size == 0:
        return xp
    value = None
    if state._fires("nan_input"):
        value = np.nan
    elif state._fires("inf_input"):
        value = np.inf
    if value is None:
        return xp
    xp = np.array(xp, dtype=float, copy=True)
    with state._lock:
        pos = int(state.rng.integers(xp.size))
    xp.flat[pos] = value
    return xp


def maybe_blowup(out: np.ndarray) -> np.ndarray:
    """Scale a pipeline output to simulate an accuracy blowup."""
    state = _top()
    if state is None or not state._fires("accuracy_blowup"):
        return out
    return out * BLOWUP_FACTOR


def maybe_corrupt_spectrum(spectrum: np.ndarray) -> None:
    """Doctor a cached spectrum entry in place (once per entry per scope)."""
    state = _top()
    if state is None or spectrum.size == 0:
        return
    with state._lock:
        if id(spectrum) in state._doctored:
            return
    if not state._fires("spectrum_corruption"):
        return
    with state._lock:
        state._doctored.add(id(spectrum))
        pos = int(state.rng.integers(spectrum.size))
    spectrum.flat[pos] = np.nan


def check_backend_fault(backend: str, op: str, n: int | None) -> None:
    """Raise :class:`InjectedFaultError` when a backend fault is armed."""
    state = _top()
    if state is not None and state._fires("backend_error"):
        raise InjectedFaultError(
            f"injected backend fault in {backend}.{op}(n={n})"
        )
