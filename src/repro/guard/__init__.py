"""Guarded execution: sentinels, fault injection, graceful fallback.

Fast paths earn their keep only when their failure modes are survivable.
This package wraps the engine's forward paths in three layers of defense:

- :mod:`repro.guard.sentinel` — a-priori FFT error-bound model plus
  a-posteriori output checks, classifying every forward as
  healthy / suspect / failed / degraded;
- :mod:`repro.guard.chain` — an ordered fallback chain (PolyHankel →
  overlap-save → GEMM → naive) with a TTL circuit breaker, so a tripped
  sentinel or a raised backend error degrades to a slower exact answer
  instead of propagating garbage;
- :mod:`repro.guard.faults` — deterministic fault injection at the real
  hook points, so the recovery path is continuously testable.

The guard is **off by default**: every hook site in the hot path hides
behind one truth test (``guard_enabled()`` / ``faults_active()``), keeping
the disabled overhead within noise.  Enable per scope::

    from repro import guard
    with guard.guarded():
        y = layer(x)            # supervised forward

or process-wide with :func:`enable_guard`.

Only the lightweight configuration surface imports eagerly; the chain,
sentinel and doctor modules load on first attribute access (PEP 562) —
both to keep ``import repro`` cheap and because the chain pulls in the
algorithm registry, which itself imports the modules the guard hooks into.
"""

from __future__ import annotations

from repro.guard.state import (
    GuardConfig,
    current_config,
    disable_guard,
    enable_guard,
    guard_enabled,
    guarded,
)

__all__ = [
    "GuardConfig",
    "GuardExhaustedError",
    "classify",
    "current_config",
    "disable_guard",
    "enable_guard",
    "format_report",
    "guard_enabled",
    "guarded",
    "guarded_conv2d",
    "inject",
    "reset_guard",
    "run_doctor",
]

_LAZY = {
    "GuardExhaustedError": ("repro.guard.chain", "GuardExhaustedError"),
    "guarded_conv2d": ("repro.guard.chain", "guarded_conv2d"),
    "reset_guard": ("repro.guard.chain", "reset_guard"),
    "classify": ("repro.guard.sentinel", "classify"),
    "inject": ("repro.guard.faults", "inject"),
    "run_doctor": ("repro.guard.doctor", "run_doctor"),
    "format_report": ("repro.guard.doctor", "format_report"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value
