"""Shared utilities: shape arithmetic, validation, seeded data generation."""

from repro.utils.shapes import ConvShape, conv_output_size
from repro.utils.validation import (
    check_conv_inputs,
    ensure_array,
    require,
)

__all__ = [
    "ConvShape",
    "conv_output_size",
    "check_conv_inputs",
    "ensure_array",
    "require",
]
