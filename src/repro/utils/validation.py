"""Input validation helpers shared across the library."""

from __future__ import annotations

import numpy as np


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError`` with *message* when *condition* is false."""
    if not condition:
        raise ValueError(message)


def ensure_array(x, name: str = "array", dtype=None,
                 ndim: int | None = None) -> np.ndarray:
    """Coerce *x* to an ndarray, optionally checking rank and casting dtype."""
    arr = np.asarray(x)
    if dtype is not None:
        arr = arr.astype(dtype, copy=False)
    if ndim is not None and arr.ndim != ndim:
        raise ValueError(f"{name} must have {ndim} dimensions, got {arr.ndim}")
    return arr


def check_conv_inputs(x: np.ndarray, w: np.ndarray, padding: int,
                      stride: int) -> None:
    """Validate an NCHW/FCKhKw convolution call; raise ValueError on misuse."""
    if x.ndim != 4:
        raise ValueError(f"input must be 4D NCHW, got {x.ndim}D")
    if w.ndim != 4:
        raise ValueError(f"weight must be 4D FCKhKw, got {w.ndim}D")
    if x.shape[1] != w.shape[1]:
        raise ValueError(
            f"channel mismatch: input C={x.shape[1]}, weight C={w.shape[1]}"
        )
    if padding < 0:
        raise ValueError("padding must be non-negative")
    if stride <= 0:
        raise ValueError("stride must be positive")
    ih, iw = x.shape[2], x.shape[3]
    kh, kw = w.shape[2], w.shape[3]
    if ih + 2 * padding < kh or iw + 2 * padding < kw:
        raise ValueError(
            f"kernel {kh}x{kw} does not fit padded input "
            f"{ih + 2 * padding}x{iw + 2 * padding}"
        )
