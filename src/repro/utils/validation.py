"""Input validation helpers shared across the library."""

from __future__ import annotations

import numpy as np


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError`` with *message* when *condition* is false."""
    if not condition:
        raise ValueError(message)


def ensure_array(x, name: str = "array", dtype=None,
                 ndim: int | None = None) -> np.ndarray:
    """Coerce *x* to an ndarray, optionally checking rank and casting dtype."""
    arr = np.asarray(x)
    if dtype is not None:
        arr = arr.astype(dtype, copy=False)
    if ndim is not None and arr.ndim != ndim:
        raise ValueError(f"{name} must have {ndim} dimensions, got {arr.ndim}")
    return arr


def check_conv_inputs(x: np.ndarray, w: np.ndarray, padding, stride,
                      dilation=1, groups: int = 1) -> None:
    """Validate an NCHW/FCKhKw convolution call; raise ValueError on misuse.

    Accepts the full conv2d parameter space: *padding* may be an int,
    ``(ph, pw)``, ``(pt, pb, pl, pr)`` or ``"same"``; *stride* and
    *dilation* an int or ``(h, w)`` pair.  Every rejection carries an
    actionable message naming the offending value.
    """
    from repro.utils.shapes import ensure_int, normalize_padding, \
        normalize_pair

    if x.ndim != 4:
        raise ValueError(f"input must be 4D NCHW, got {x.ndim}D")
    if w.ndim != 4:
        raise ValueError(f"weight must be 4D FCKhKw, got {w.ndim}D")
    groups = ensure_int(groups, "groups")
    if groups < 1:
        raise ValueError(f"groups must be positive, got {groups}")
    c, f = x.shape[1], w.shape[0]
    if c % groups:
        raise ValueError(
            f"input channels ({c}) must be divisible by groups ({groups})"
        )
    if f % groups:
        raise ValueError(
            f"filters ({f}) must be divisible by groups ({groups})"
        )
    if w.shape[1] != c // groups:
        raise ValueError(
            f"channel mismatch: weight expects C/groups = {c // groups} "
            f"input channels per group, got {w.shape[1]}"
        )
    sh, sw = normalize_pair(stride, "stride")
    if sh < 1 or sw < 1:
        raise ValueError(
            f"stride must be >= 1 in both axes, got ({sh}, {sw}); "
            "zero or negative strides are not a convolution"
        )
    dh, dw = normalize_pair(dilation, "dilation")
    if dh < 1 or dw < 1:
        raise ValueError(
            f"dilation must be >= 1 in both axes, got ({dh}, {dw}); "
            "use dilation=1 for an undilated kernel"
        )
    ih, iw = x.shape[2], x.shape[3]
    kh, kw = w.shape[2], w.shape[3]
    pt, pb, pl, pr = normalize_padding(padding, ih, iw, kh, kw,
                                       (sh, sw), (dh, dw))
    if min(pt, pb, pl, pr) < 0:
        raise ValueError(
            f"padding must be non-negative, got (pt={pt}, pb={pb}, "
            f"pl={pl}, pr={pr})"
        )
    eff_kh = dh * (kh - 1) + 1
    eff_kw = dw * (kw - 1) + 1
    if ih + pt + pb < eff_kh or iw + pl + pr < eff_kw:
        raise ValueError(
            f"kernel {kh}x{kw} (dilated extent {eff_kh}x{eff_kw}) does not "
            f"fit padded input {ih + pt + pb}x{iw + pl + pr}; "
            "increase padding or reduce kernel size/dilation"
        )
