"""Seeded random tensor generation for tests, examples and benchmarks.

The paper notes (Sec. 4) that convolution performance is independent of the
input *values*, so all experiments use randomly generated inputs with a fixed
seed per data point.  These helpers standardize that.
"""

from __future__ import annotations

import numpy as np

from repro.utils.shapes import ConvShape

DEFAULT_SEED = 20250301  # CGO'25 conference start date


def rng_for(seed: int | None = None) -> np.random.Generator:
    """A deterministic generator; ``None`` means the library default seed."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def random_input(shape: ConvShape, seed: int | None = None,
                 dtype=np.float64) -> np.ndarray:
    """Random NCHW input tensor for *shape*."""
    rng = rng_for(seed)
    return rng.standard_normal(shape.input_shape()).astype(dtype)


def random_weight(shape: ConvShape, seed: int | None = None,
                  dtype=np.float64) -> np.ndarray:
    """Random FCKhKw weight tensor for *shape*.

    Uses a distinct stream from :func:`random_input` so that input and weight
    are uncorrelated even with the same seed.
    """
    rng = rng_for(None if seed is None else seed + 1)
    scale = 1.0 / np.sqrt(shape.c * shape.kernel_elems)
    return (rng.standard_normal(shape.weight_shape()) * scale).astype(dtype)


def random_problem(shape: ConvShape, seed: int | None = None,
                   dtype=np.float64) -> tuple[np.ndarray, np.ndarray]:
    """Matched (input, weight) pair for *shape*."""
    return random_input(shape, seed, dtype), random_weight(shape, seed, dtype)
