"""Convolution shape arithmetic.

All algorithms in this library speak the same shape language, captured by
:class:`ConvShape`.  The notation follows Table 1 of the paper:

===========  =============================
``n``        mini-batch size (N)
``c``        input channels (C)
``f``        number of kernels / filters (K in the paper)
``ih, iw``   input height / width
``kh, kw``   kernel height / width
``oh, ow``   output height / width
``padding``  symmetric zero padding (P)
``stride``   convolution stride
===========  =============================
"""

from __future__ import annotations

from dataclasses import dataclass, replace


def conv_output_size(input_size: int, kernel_size: int, padding: int = 0,
                     stride: int = 1) -> int:
    """Output extent of a 1D valid convolution with padding and stride.

    >>> conv_output_size(5, 3)
    3
    >>> conv_output_size(5, 3, padding=1)
    5
    >>> conv_output_size(224, 7, padding=3, stride=2)
    112
    """
    if input_size <= 0 or kernel_size <= 0:
        raise ValueError("input and kernel sizes must be positive")
    if padding < 0:
        raise ValueError("padding must be non-negative")
    if stride <= 0:
        raise ValueError("stride must be positive")
    padded = input_size + 2 * padding
    if padded < kernel_size:
        raise ValueError(
            f"kernel size {kernel_size} exceeds padded input {padded}"
        )
    return (padded - kernel_size) // stride + 1


@dataclass(frozen=True)
class ConvShape:
    """Complete description of a 2D convolution problem.

    The derived quantities (``oh``, ``ow``, FLOP counts, ...) are computed
    lazily from the primary fields so a ``ConvShape`` stays a plain frozen
    value type that can be used as a cache key.
    """

    ih: int
    iw: int
    kh: int
    kw: int
    n: int = 1
    c: int = 1
    f: int = 1
    padding: int = 0
    stride: int = 1

    def __post_init__(self) -> None:
        # Trigger validation of every derived extent at construction time.
        _ = self.oh, self.ow

    # -- derived spatial extents -------------------------------------------

    @property
    def padded_ih(self) -> int:
        return self.ih + 2 * self.padding

    @property
    def padded_iw(self) -> int:
        return self.iw + 2 * self.padding

    @property
    def oh(self) -> int:
        return conv_output_size(self.ih, self.kh, self.padding, self.stride)

    @property
    def ow(self) -> int:
        return conv_output_size(self.iw, self.kw, self.padding, self.stride)

    # -- element counts -----------------------------------------------------

    @property
    def input_elems(self) -> int:
        """Elements in one input feature map (no padding)."""
        return self.ih * self.iw

    @property
    def kernel_elems(self) -> int:
        return self.kh * self.kw

    @property
    def output_elems(self) -> int:
        return self.oh * self.ow

    @property
    def total_input_elems(self) -> int:
        return self.n * self.c * self.input_elems

    @property
    def total_kernel_elems(self) -> int:
        return self.f * self.c * self.kernel_elems

    @property
    def total_output_elems(self) -> int:
        return self.n * self.f * self.output_elems

    # -- classic operation counts -------------------------------------------

    @property
    def macs(self) -> int:
        """Multiply-accumulate count of the direct algorithm."""
        return (self.n * self.f * self.c
                * self.output_elems * self.kernel_elems)

    @property
    def direct_flops(self) -> int:
        """FLOPs of the direct algorithm (one mul + one add per MAC)."""
        return 2 * self.macs

    # -- PolyHankel-specific extents (Sec. 2.2 / 3.2 of the paper) ----------

    @property
    def poly_input_len(self) -> int:
        """Length of the flattened (padded) input polynomial A(t)."""
        return self.padded_ih * self.padded_iw

    @property
    def poly_kernel_len(self) -> int:
        """Combined kernel polynomial length (Kh-1)*Iw + Kw (Sec. 3.2)."""
        return (self.kh - 1) * self.padded_iw + self.kw

    @property
    def poly_product_len(self) -> int:
        """Linear-convolution length of A(t) * U(t)."""
        return self.poly_input_len + self.poly_kernel_len - 1

    # -- convenience ---------------------------------------------------------

    def with_(self, **kwargs) -> "ConvShape":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def input_shape(self) -> tuple[int, int, int, int]:
        """NCHW shape of the input tensor."""
        return (self.n, self.c, self.ih, self.iw)

    def weight_shape(self) -> tuple[int, int, int, int]:
        """FCKhKw shape of the weight tensor."""
        return (self.f, self.c, self.kh, self.kw)

    def output_shape(self) -> tuple[int, int, int, int]:
        """NFOhOw shape of the output tensor."""
        return (self.n, self.f, self.oh, self.ow)

    @classmethod
    def from_tensors(cls, x_shape, w_shape, padding: int = 0,
                     stride: int = 1) -> "ConvShape":
        """Build a ConvShape from NCHW input and FCKhKw weight shapes."""
        if len(x_shape) != 4:
            raise ValueError(f"input must be NCHW, got shape {tuple(x_shape)}")
        if len(w_shape) != 4:
            raise ValueError(
                f"weight must be FCKhKw, got shape {tuple(w_shape)}"
            )
        n, c, ih, iw = x_shape
        f, wc, kh, kw = w_shape
        if wc != c:
            raise ValueError(
                f"channel mismatch: input has {c}, weight expects {wc}"
            )
        return cls(ih=ih, iw=iw, kh=kh, kw=kw, n=n, c=c, f=f,
                   padding=padding, stride=stride)
