"""Convolution shape arithmetic.

All algorithms in this library speak the same shape language, captured by
:class:`ConvShape`.  The notation follows Table 1 of the paper:

===========  =============================
``n``        mini-batch size (N)
``c``        input channels (C)
``f``        number of kernels / filters (K in the paper)
``ih, iw``   input height / width
``kh, kw``   kernel height / width
``oh, ow``   output height / width
``padding``  zero padding — int, ``(ph, pw)``, ``(pt, pb, pl, pr)`` or
             ``"same"``
``stride``   convolution stride — int or ``(sh, sw)``
``dilation`` kernel tap spacing — int or ``(dh, dw)``
``groups``   channel groups (``c`` and ``f`` both divisible by it)
===========  =============================

Parameters are canonicalized at construction time (symmetric tuples collapse
back to ints, ``"same"`` resolves to concrete pads), so equal geometries
always hash to the same plan-cache key regardless of how they were spelled.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass, replace


def ensure_int(value, name: str) -> int:
    """Coerce *value* to a plain int, rejecting non-integral values.

    ``int(1.9)`` silently truncates — a stride of 1.9 would run as stride 1
    and return an answer for a different problem.  Integral values of any
    type (numpy ints included) pass; everything else raises ``ValueError``.
    """
    if isinstance(value, numbers.Integral):
        return int(value)
    raise ValueError(
        f"{name} must be an integer, got {value!r} of type "
        f"{type(value).__name__}"
    )


def normalize_pair(value: int | tuple, name: str) -> tuple[int, int]:
    """Coerce an int or 2-sequence into an ``(h, w)`` int pair."""
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(
                f"{name} must be an int or an (h, w) pair, got {value!r}"
            )
        return ensure_int(value[0], name), ensure_int(value[1], name)
    v = ensure_int(value, name)
    return v, v


def normalize_tuple(value, ndim: int, name: str) -> tuple[int, ...]:
    """Coerce an int or length-*ndim* sequence into one int per spatial dim.

    The N-dimensional analogue of :func:`normalize_pair` — a wrong-length
    sequence is rejected with the expected rank in the message instead of
    being broadcast into a different problem.
    """
    if isinstance(value, (tuple, list)):
        if len(value) != ndim:
            raise ValueError(
                f"{name} must be an int or a length-{ndim} sequence (one "
                f"entry per spatial dimension), got {value!r} of length "
                f"{len(value)}"
            )
        return tuple(ensure_int(v, name) for v in value)
    v = ensure_int(value, name)
    return (v,) * ndim


def normalize_padding_nd(padding, extents: tuple[int, ...],
                         kernel: tuple[int, ...],
                         stride: int | tuple = 1,
                         dilation: int | tuple = 1
                         ) -> tuple[tuple[int, int], ...]:
    """Resolve any N-D padding spelling to per-axis ``(lo, hi)`` pairs.

    Accepts an int (every edge), a length-``ndim`` sequence (per-axis
    symmetric), a length-``2*ndim`` flat sequence of ``(lo, hi)`` pairs in
    axis order (the N-D generalization of ``(pt, pb, pl, pr)``), or
    ``"same"``.
    """
    ndim = len(extents)
    stride = normalize_tuple(stride, ndim, "stride")
    dilation = normalize_tuple(dilation, ndim, "dilation")
    if isinstance(padding, str):
        if padding != "same":
            raise ValueError(
                f"unknown padding mode {padding!r}; the only string mode "
                "is 'same'"
            )
        return tuple(
            same_padding_1d(e, k, s, d)
            for e, k, s, d in zip(extents, kernel, stride, dilation)
        )
    if isinstance(padding, (tuple, list)):
        vals = tuple(ensure_int(p, "padding") for p in padding)
        if len(vals) == ndim:
            return tuple((p, p) for p in vals)
        if len(vals) == 2 * ndim:
            return tuple((vals[2 * i], vals[2 * i + 1]) for i in range(ndim))
        raise ValueError(
            f"padding must be an int, a length-{ndim} per-axis sequence "
            f"(one entry per spatial dimension), a length-{2 * ndim} "
            f"(lo, hi) flat sequence or 'same'; got {padding!r} of length "
            f"{len(vals)}"
        )
    p = ensure_int(padding, "padding")
    return ((p, p),) * ndim


def same_padding_1d(input_size: int, kernel_size: int, stride: int = 1,
                    dilation: int = 1) -> tuple[int, int]:
    """``(lo, hi)`` zero padding so the output extent is ``ceil(in/stride)``.

    TensorFlow/PyTorch ``"same"`` convention: the total pad is split evenly
    with the extra element on the high (bottom/right) side.
    """
    eff_k = dilation * (kernel_size - 1) + 1
    out = -(-input_size // stride)  # ceil division
    total = max((out - 1) * stride + eff_k - input_size, 0)
    return total // 2, total - total // 2


def normalize_padding(padding, ih: int, iw: int, kh: int, kw: int,
                      stride: int | tuple = 1, dilation: int | tuple = 1
                      ) -> tuple[int, int, int, int]:
    """Resolve any accepted padding spelling to ``(pt, pb, pl, pr)``.

    Accepts an int (all four sides), an ``(ph, pw)`` pair (per-axis
    symmetric), a ``(pt, pb, pl, pr)`` 4-tuple, or the string ``"same"``
    (output extent ``ceil(input/stride)``; needs the geometry arguments).
    """
    if isinstance(padding, str):
        if padding != "same":
            raise ValueError(
                f"unknown padding mode {padding!r}; the only string mode "
                "is 'same'"
            )
        sh, sw = normalize_pair(stride, "stride")
        dh, dw = normalize_pair(dilation, "dilation")
        pt, pb = same_padding_1d(ih, kh, sh, dh)
        pl, pr = same_padding_1d(iw, kw, sw, dw)
        return pt, pb, pl, pr
    if isinstance(padding, (tuple, list)):
        vals = tuple(ensure_int(p, "padding") for p in padding)
        if len(vals) == 2:
            return vals[0], vals[0], vals[1], vals[1]
        if len(vals) == 4:
            return vals
        raise ValueError(
            "padding must be an int, (ph, pw), (pt, pb, pl, pr) or 'same'; "
            f"got {padding!r}"
        )
    p = ensure_int(padding, "padding")
    return p, p, p, p


def _canonical_pair(pair: tuple[int, int]) -> int | tuple[int, int]:
    """Collapse a uniform pair back to a plain int (stable cache keys)."""
    return pair[0] if pair[0] == pair[1] else pair


def _canonical_padding(tblr: tuple[int, int, int, int]
                       ) -> int | tuple[int, int, int, int]:
    return tblr[0] if len(set(tblr)) == 1 else tblr


def _canonical_nd(values: tuple[int, ...]) -> int | tuple[int, ...]:
    """Collapse a uniform per-axis tuple back to a plain int (stable cache
    keys across spellings, any rank)."""
    return values[0] if len(set(values)) == 1 else values


def conv_output_size(input_size: int, kernel_size: int,
                     padding: int | tuple[int, int] = 0, stride: int = 1,
                     dilation: int = 1) -> int:
    """Output extent of a 1D valid convolution.

    *padding* may be a single int (symmetric) or a ``(lo, hi)`` pair.

    >>> conv_output_size(5, 3)
    3
    >>> conv_output_size(5, 3, padding=1)
    5
    >>> conv_output_size(224, 7, padding=3, stride=2)
    112
    >>> conv_output_size(7, 3, padding=(0, 1), stride=2, dilation=2)
    2
    """
    if input_size <= 0 or kernel_size <= 0:
        raise ValueError("input and kernel sizes must be positive")
    lo, hi = (padding, padding) if isinstance(padding, int) else padding
    if lo < 0 or hi < 0:
        raise ValueError("padding must be non-negative")
    if stride <= 0:
        raise ValueError(
            f"stride must be a positive integer, got {stride}"
        )
    if dilation <= 0:
        raise ValueError(
            f"dilation must be a positive integer, got {dilation}"
        )
    eff_k = dilation * (kernel_size - 1) + 1
    padded = input_size + lo + hi
    if padded < eff_k:
        raise ValueError(
            f"dilated kernel extent {eff_k} (kernel {kernel_size}, "
            f"dilation {dilation}) exceeds padded input {padded}; "
            "increase padding or reduce dilation"
        )
    return (padded - eff_k) // stride + 1


@dataclass(frozen=True)
class ConvShape:
    """Complete description of a 2D convolution problem.

    The derived quantities (``oh``, ``ow``, FLOP counts, ...) are computed
    lazily from the primary fields so a ``ConvShape`` stays a plain frozen
    value type that can be used as a cache key.
    """

    ih: int
    iw: int
    kh: int
    kw: int
    n: int = 1
    c: int = 1
    f: int = 1
    padding: int | tuple | str = 0
    stride: int | tuple = 1
    dilation: int | tuple = 1
    groups: int = 1

    def __post_init__(self) -> None:
        # Canonicalize the parameter spellings in place (frozen dataclass,
        # hence object.__setattr__) so equal geometries share a hash.
        sh, sw = normalize_pair(self.stride, "stride")
        dh, dw = normalize_pair(self.dilation, "dilation")
        if sh < 1 or sw < 1:
            raise ValueError(
                f"stride must be >= 1 in both axes, got ({sh}, {sw})"
            )
        if dh < 1 or dw < 1:
            raise ValueError(
                f"dilation must be >= 1 in both axes, got ({dh}, {dw})"
            )
        tblr = normalize_padding(self.padding, self.ih, self.iw,
                                 self.kh, self.kw, (sh, sw), (dh, dw))
        if min(tblr) < 0:
            raise ValueError(f"padding must be non-negative, got {tblr}")
        object.__setattr__(self, "stride", _canonical_pair((sh, sw)))
        object.__setattr__(self, "dilation", _canonical_pair((dh, dw)))
        object.__setattr__(self, "padding", _canonical_padding(tblr))
        object.__setattr__(self, "groups", ensure_int(self.groups, "groups"))
        if self.groups < 1:
            raise ValueError(f"groups must be positive, got {self.groups}")
        if self.c % self.groups or self.f % self.groups:
            raise ValueError(
                f"channels ({self.c}) and filters ({self.f}) must both be "
                f"divisible by groups ({self.groups})"
            )
        # Trigger validation of every derived extent at construction time.
        _ = self.oh, self.ow

    # -- normalized parameter views -----------------------------------------

    @property
    def stride_hw(self) -> tuple[int, int]:
        """``(sh, sw)`` regardless of how stride was spelled."""
        return normalize_pair(self.stride, "stride")

    @property
    def dilation_hw(self) -> tuple[int, int]:
        """``(dh, dw)`` regardless of how dilation was spelled."""
        return normalize_pair(self.dilation, "dilation")

    @property
    def pad_tblr(self) -> tuple[int, int, int, int]:
        """``(pt, pb, pl, pr)`` regardless of how padding was spelled."""
        p = self.padding
        if isinstance(p, int):
            return p, p, p, p
        return p  # canonicalized 4-tuple

    @property
    def eff_kh(self) -> int:
        """Dilated (effective) kernel height ``dh*(kh-1) + 1``."""
        return self.dilation_hw[0] * (self.kh - 1) + 1

    @property
    def eff_kw(self) -> int:
        """Dilated (effective) kernel width ``dw*(kw-1) + 1``."""
        return self.dilation_hw[1] * (self.kw - 1) + 1

    @property
    def group_channels(self) -> int:
        """Input channels seen by one filter: ``c // groups``."""
        return self.c // self.groups

    @property
    def group_filters(self) -> int:
        """Filters per group: ``f // groups``."""
        return self.f // self.groups

    # -- derived spatial extents -------------------------------------------

    @property
    def padded_ih(self) -> int:
        pt, pb, _, _ = self.pad_tblr
        return self.ih + pt + pb

    @property
    def padded_iw(self) -> int:
        _, _, pl, pr = self.pad_tblr
        return self.iw + pl + pr

    @property
    def oh(self) -> int:
        pt, pb, _, _ = self.pad_tblr
        return conv_output_size(self.ih, self.kh, (pt, pb),
                                self.stride_hw[0], self.dilation_hw[0])

    @property
    def ow(self) -> int:
        _, _, pl, pr = self.pad_tblr
        return conv_output_size(self.iw, self.kw, (pl, pr),
                                self.stride_hw[1], self.dilation_hw[1])

    # -- element counts -----------------------------------------------------

    @property
    def input_elems(self) -> int:
        """Elements in one input feature map (no padding)."""
        return self.ih * self.iw

    @property
    def kernel_elems(self) -> int:
        return self.kh * self.kw

    @property
    def output_elems(self) -> int:
        return self.oh * self.ow

    @property
    def total_input_elems(self) -> int:
        return self.n * self.c * self.input_elems

    @property
    def total_kernel_elems(self) -> int:
        return self.f * self.group_channels * self.kernel_elems

    @property
    def total_output_elems(self) -> int:
        return self.n * self.f * self.output_elems

    # -- classic operation counts -------------------------------------------

    @property
    def macs(self) -> int:
        """Multiply-accumulate count of the direct algorithm."""
        return (self.n * self.f * self.group_channels
                * self.output_elems * self.kernel_elems)

    @property
    def direct_flops(self) -> int:
        """FLOPs of the direct algorithm (one mul + one add per MAC)."""
        return 2 * self.macs

    # -- PolyHankel-specific extents (Sec. 2.2 / 3.2 of the paper) ----------

    @property
    def poly_input_len(self) -> int:
        """Length of the flattened (padded) input polynomial A(t)."""
        return self.padded_ih * self.padded_iw

    @property
    def poly_kernel_len(self) -> int:
        """Combined kernel polynomial length ``M + 1`` (Sec. 3.2).

        With the stretched (dilated) degree map, tap ``(i, j)`` sits at
        degree ``M - (Iw*dh*i + dw*j)``, so ``M = (Kh-1)*dh*Iw + (Kw-1)*dw``.
        For ``dilation=1`` this is the paper's ``(Kh-1)*Iw + Kw``.
        """
        dh, dw = self.dilation_hw
        return (self.kh - 1) * dh * self.padded_iw + (self.kw - 1) * dw + 1

    @property
    def poly_product_len(self) -> int:
        """Linear-convolution length of A(t) * U(t)."""
        return self.poly_input_len + self.poly_kernel_len - 1

    # -- convenience ---------------------------------------------------------

    def with_(self, **kwargs) -> "ConvShape":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def group_view(self) -> "ConvShape":
        """The per-group sub-problem: ``c/groups`` channels, ``f/groups``
        filters, ``groups=1``, same spatial geometry."""
        return replace(self, c=self.group_channels, f=self.group_filters,
                       groups=1)

    def input_shape(self) -> tuple[int, int, int, int]:
        """NCHW shape of the input tensor."""
        return (self.n, self.c, self.ih, self.iw)

    def weight_shape(self) -> tuple[int, int, int, int]:
        """FCKhKw shape of the weight tensor (``C`` is per-group)."""
        return (self.f, self.group_channels, self.kh, self.kw)

    def output_shape(self) -> tuple[int, int, int, int]:
        """NFOhOw shape of the output tensor."""
        return (self.n, self.f, self.oh, self.ow)

    @classmethod
    def from_tensors(cls, x_shape, w_shape, padding: int | tuple | str = 0,
                     stride: int | tuple = 1, dilation: int | tuple = 1,
                     groups: int = 1) -> "ConvShape":
        """Build a ConvShape from NCHW input and FCKhKw weight shapes.

        The spatial rank must be exactly 2 on *both* tensors: a rank
        mismatch (e.g. a 3D kernel against a 4D input) is rejected with an
        explicit error instead of broadcasting into a different problem —
        rank-3/rank-5 problems belong to ``conv1d``/``conv3d`` and
        :class:`ConvShapeNd`.
        """
        if len(x_shape) != len(w_shape):
            raise ValueError(
                f"input rank {len(x_shape)} does not match kernel rank "
                f"{len(w_shape)} (shapes {tuple(x_shape)} vs "
                f"{tuple(w_shape)}): conv2d expects a 4D NCHW input and a "
                "FCKhKw weight; rank-1/rank-3 problems belong to "
                "conv1d/conv3d (ConvShapeNd)"
            )
        if len(x_shape) != 4:
            raise ValueError(
                f"input must be 4D NCHW, got shape {tuple(x_shape)}; "
                "use conv1d/conv3d (ConvShapeNd) for other spatial ranks"
            )
        n, c, ih, iw = x_shape
        f, wc, kh, kw = w_shape
        groups = ensure_int(groups, "groups")
        if groups < 1:
            raise ValueError(f"groups must be positive, got {groups}")
        if c % groups:
            raise ValueError(
                f"input channels ({c}) must be divisible by groups ({groups})"
            )
        if wc != c // groups:
            raise ValueError(
                f"channel mismatch: weight expects C/groups = "
                f"{c // groups} input channels per group, got {wc}"
            )
        return cls(ih=ih, iw=iw, kh=kh, kw=kw, n=n, c=c, f=f,
                   padding=padding, stride=stride, dilation=dilation,
                   groups=groups)


@dataclass(frozen=True)
class ConvShapeNd:
    """Complete description of an N-dimensional convolution problem.

    The rank-generic sibling of :class:`ConvShape`: *extents* and *kernel*
    are the spatial extents of the input and kernel (any rank >= 1), and
    all parameters canonicalize exactly as in the 2D case so equal
    geometries share a hash.  The PolyHankel quantities follow the N-D
    degree map ``t^(sum_l s_l i_l)`` over the row-major strides ``s_l`` of
    the padded extents (see ``repro.core.ndim``).
    """

    extents: tuple
    kernel: tuple
    n: int = 1
    c: int = 1
    f: int = 1
    padding: int | tuple | str = 0
    stride: int | tuple = 1
    dilation: int | tuple = 1
    groups: int = 1

    def __post_init__(self) -> None:
        extents = tuple(ensure_int(e, "extents") for e in self.extents)
        kernel = tuple(ensure_int(k, "kernel") for k in self.kernel)
        if not extents:
            raise ValueError("extents must name at least one spatial dim")
        if len(kernel) != len(extents):
            raise ValueError(
                f"kernel rank {len(kernel)} does not match input rank "
                f"{len(extents)} (kernel {kernel} vs extents {extents})"
            )
        ndim = len(extents)
        stride = normalize_tuple(self.stride, ndim, "stride")
        dilation = normalize_tuple(self.dilation, ndim, "dilation")
        if min(stride) < 1:
            raise ValueError(f"stride must be >= 1 per axis, got {stride}")
        if min(dilation) < 1:
            raise ValueError(
                f"dilation must be >= 1 per axis, got {dilation}"
            )
        pairs = normalize_padding_nd(self.padding, extents, kernel,
                                     stride, dilation)
        if min(p for pair in pairs for p in pair) < 0:
            raise ValueError(f"padding must be non-negative, got {pairs}")
        object.__setattr__(self, "extents", extents)
        object.__setattr__(self, "kernel", kernel)
        object.__setattr__(self, "stride", _canonical_nd(stride))
        object.__setattr__(self, "dilation", _canonical_nd(dilation))
        flat = tuple(p for pair in pairs for p in pair)
        object.__setattr__(self, "padding", _canonical_nd(flat))
        object.__setattr__(self, "groups", ensure_int(self.groups, "groups"))
        if self.groups < 1:
            raise ValueError(f"groups must be positive, got {self.groups}")
        if self.c % self.groups or self.f % self.groups:
            raise ValueError(
                f"channels ({self.c}) and filters ({self.f}) must both be "
                f"divisible by groups ({self.groups})"
            )
        # Trigger derived-extent validation at construction time.
        _ = self.out_extents

    # -- normalized parameter views -----------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.extents)

    @property
    def stride_nd(self) -> tuple[int, ...]:
        return normalize_tuple(self.stride, self.ndim, "stride")

    @property
    def dilation_nd(self) -> tuple[int, ...]:
        return normalize_tuple(self.dilation, self.ndim, "dilation")

    @property
    def pad_pairs(self) -> tuple[tuple[int, int], ...]:
        """Per-axis ``(lo, hi)`` pairs regardless of padding spelling."""
        p = self.padding
        if isinstance(p, int):
            return ((p, p),) * self.ndim
        return tuple((p[2 * i], p[2 * i + 1]) for i in range(self.ndim))

    @property
    def eff_kernel(self) -> tuple[int, ...]:
        """Dilated (effective) kernel extents ``d*(k-1) + 1`` per axis."""
        return tuple(d * (k - 1) + 1
                     for d, k in zip(self.dilation_nd, self.kernel))

    @property
    def group_channels(self) -> int:
        return self.c // self.groups

    @property
    def group_filters(self) -> int:
        return self.f // self.groups

    # -- derived spatial extents -------------------------------------------

    @property
    def padded_extents(self) -> tuple[int, ...]:
        return tuple(e + lo + hi
                     for e, (lo, hi) in zip(self.extents, self.pad_pairs))

    @property
    def out_extents(self) -> tuple[int, ...]:
        return tuple(
            conv_output_size(e, k, pair, s, d)
            for e, k, pair, s, d in zip(self.extents, self.kernel,
                                        self.pad_pairs, self.stride_nd,
                                        self.dilation_nd)
        )

    # -- element counts -----------------------------------------------------

    @property
    def kernel_elems(self) -> int:
        out = 1
        for k in self.kernel:
            out *= k
        return out

    @property
    def output_elems(self) -> int:
        out = 1
        for o in self.out_extents:
            out *= o
        return out

    @property
    def macs(self) -> int:
        return (self.n * self.f * self.group_channels
                * self.output_elems * self.kernel_elems)

    # -- PolyHankel degree-map extents --------------------------------------

    @property
    def poly_strides(self) -> tuple[int, ...]:
        """Row-major degree strides ``s_l`` over the padded extents."""
        strides = [1]
        for extent in self.padded_extents[:0:-1]:
            strides.append(strides[-1] * extent)
        return tuple(reversed(strides))

    @property
    def poly_input_len(self) -> int:
        """Length of the flattened (padded) input polynomial A(t)."""
        out = 1
        for e in self.padded_extents:
            out *= e
        return out

    @property
    def poly_kernel_len(self) -> int:
        """Combined kernel polynomial length ``M + 1`` with the stretched
        degree map: ``M = sum_l s_l * d_l * (K_l - 1)``."""
        return 1 + sum(
            s * d * (k - 1)
            for s, d, k in zip(self.poly_strides, self.dilation_nd,
                               self.kernel)
        )

    @property
    def poly_product_len(self) -> int:
        """Linear-convolution length of A(t) * U(t)."""
        return self.poly_input_len + self.poly_kernel_len - 1

    # -- convenience ---------------------------------------------------------

    def with_(self, **kwargs) -> "ConvShapeNd":
        return replace(self, **kwargs)

    def group_view(self) -> "ConvShapeNd":
        return replace(self, c=self.group_channels, f=self.group_filters,
                       groups=1)

    def input_shape(self) -> tuple:
        return (self.n, self.c, *self.extents)

    def weight_shape(self) -> tuple:
        return (self.f, self.group_channels, *self.kernel)

    def output_shape(self) -> tuple:
        return (self.n, self.f, *self.out_extents)

    def to_2d(self) -> ConvShape:
        """The equivalent :class:`ConvShape` of a rank-2 problem."""
        if self.ndim != 2:
            raise ValueError(
                f"to_2d needs a rank-2 problem, got rank {self.ndim}"
            )
        flat = tuple(p for pair in self.pad_pairs for p in pair)
        return ConvShape(ih=self.extents[0], iw=self.extents[1],
                         kh=self.kernel[0], kw=self.kernel[1], n=self.n,
                         c=self.c, f=self.f, padding=flat,
                         stride=self.stride_nd, dilation=self.dilation_nd,
                         groups=self.groups)

    @classmethod
    def from_tensors(cls, x_shape, w_shape, padding: int | tuple | str = 0,
                     stride: int | tuple = 1, dilation: int | tuple = 1,
                     groups: int = 1) -> "ConvShapeNd":
        """Build a ConvShapeNd from ``(n, c, *spatial)`` / ``(f, c_per,
        *kernel)`` shapes, rejecting rank mismatches explicitly."""
        x_shape, w_shape = tuple(x_shape), tuple(w_shape)
        if len(x_shape) < 3:
            raise ValueError(
                f"input must be (n, c, *spatial) with at least one spatial "
                f"dim, got shape {x_shape}"
            )
        if len(w_shape) != len(x_shape):
            raise ValueError(
                f"kernel rank {len(w_shape)} does not match input rank "
                f"{len(x_shape)} (shapes {w_shape} vs {x_shape}); weight "
                "must be (f, c/groups, *kernel) with one kernel extent per "
                "input spatial dimension"
            )
        n, c = x_shape[:2]
        f, wc = w_shape[:2]
        groups = ensure_int(groups, "groups")
        if groups < 1:
            raise ValueError(f"groups must be positive, got {groups}")
        if c % groups:
            raise ValueError(
                f"input channels ({c}) must be divisible by groups ({groups})"
            )
        if wc != c // groups:
            raise ValueError(
                f"channel mismatch: weight expects C/groups = "
                f"{c // groups} input channels per group, got {wc}"
            )
        return cls(extents=x_shape[2:], kernel=w_shape[2:], n=n, c=c, f=f,
                   padding=padding, stride=stride, dilation=dilation,
                   groups=groups)
