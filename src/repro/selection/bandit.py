"""Online algorithm selection: a per-key bandit over live traffic.

The paper's Sec. 4.2 asks for "heuristics ... to choose the best
convolution method for each API invocation".  :mod:`repro.selection.
heuristic` answers statically (roofline argmin, closed-form rules); this
module closes the loop against *measured* traffic: one
:class:`SelectionBandit` holds, per coalescing family (shape x dtype x
backend — the :class:`~repro.serve.coalescer.CoalesceKey` minus the
tensor identities and the requested algorithm), one arm per executable
algorithm and converges to the measured-fastest arm.

Design rules, in order of importance:

1. **The served result is never produced by an experiment.**  Exploration
   runs as a *shadow*: the primary arm's output is what the caller gets,
   bit-for-bit, whether or not a shadow ran.  The shadow executes through
   the guard chain (:func:`repro.guard.chain.guarded_conv2d`) under its
   own breaker scope, its output is parity-checked against the primary,
   and only then is its timing credited.  A shadow that raises, diverges,
   or corrupts its output costs a counter and (after
   ``max_parity_failures``) poisons its arm — nothing else.
2. **Warm-started, then measured.**  Arms open with the roofline model's
   prediction (:func:`repro.perfmodel.timing.prior_ms`) as ``prior_weight``
   pseudo-observations; real timings take over as they accumulate.  The
   prior is kept in measured units through a per-key calibration scale
   (measured-ms over modeled-ms across observed arms), so the blend is
   dimensionally honest.
3. **Deterministic.**  Tie-breaks follow the arm order (requested arm
   first, then :data:`~repro.baselines.registry.FALLBACK_ORDER`), and the
   exploration schedule is a counting rule — ``explored <
   floor(explore_fraction * decisions)`` — not a coin flip, so a seeded
   replay reproduces exactly (the CI ``selection-drill`` depends on it).

Cluster replicas record their arm timings as registry counters
(``selection.arm_obs`` / ``selection.arm_ms``, tagged by key digest and
algorithm); the stats pipe ships them to the router like every other
counter, and :meth:`SelectionBandit.ingest_replica_rows` folds the
``proc``-tagged deltas into the router's table.

Learned tables persist as schema-versioned JSON next to
``baseline_ci.json`` — content-checksummed like the spectrum caches: a
corrupt file is discarded (``selection.table_corrupt``), a foreign schema
version is rejected loudly (:class:`SelectionTableError`).
"""

from __future__ import annotations

import json
import os
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, NamedTuple

import numpy as np

from repro.observe.registry import counters

#: Persisted-table schema.  Bump on any layout change; loaders reject
#: other versions loudly instead of guessing.
TABLE_SCHEMA_VERSION = 1

#: Environment knobs: activation mode and table location.
ENABLE_ENV = "REPRO_SELECTION_BANDIT"
TABLE_ENV = "REPRO_SELECTION_TABLE"
EXPLORE_ENV = "REPRO_SELECTION_EXPLORE"

#: Default persistence location — next to ``baseline_ci.json``, so the
#: learned table is versioned with the measurements it complements.
DEFAULT_TABLE_PATH = os.path.join("benchmarks", "results",
                                  "selection_table.json")

#: Posterior penalty for arms the roofline model cannot price (naive):
#: they start at ``worst modeled prior x this`` so they are explored
#: last and chosen only on measurement.
UNMODELED_PENALTY = 10.0


class SelectionTableError(RuntimeError):
    """A persisted selection table with an unknown schema version."""


@dataclass
class BanditConfig:
    """Knobs of one :class:`SelectionBandit`.

    ``apply=False`` is shadow-only mode: the bandit observes, explores
    and learns, but the served algorithm stays whatever the caller
    requested — the mode the side-effect-freeness drill runs in.
    """

    explore_fraction: float = 0.1
    min_obs: int = 3
    prior_weight: float = 2.0
    apply: bool = True
    parity_rtol: float = 1e-4
    parity_atol: float = 1e-7
    max_parity_failures: int = 1
    device: str = "3090ti"
    table_path: str | None = None

    @classmethod
    def from_env(cls) -> "BanditConfig":
        """Config from ``REPRO_SELECTION_*`` (see :func:`active_bandit`)."""
        mode = os.environ.get(ENABLE_ENV, "")
        kwargs: dict = {"apply": mode.strip().lower() != "shadow"}
        table = os.environ.get(TABLE_ENV)
        if table:
            kwargs["table_path"] = table
        fraction = os.environ.get(EXPLORE_ENV)
        if fraction:
            try:
                kwargs["explore_fraction"] = float(fraction)
            except ValueError:
                pass
        return cls(**kwargs)


@dataclass
class ArmState:
    """One algorithm's running statistics under one key.

    ``ms_total`` accumulates *per-row* milliseconds (wall clock divided
    by the batch rows of each observation) so observations at different
    batch sizes of the same coalescing family — the key excludes ``n`` —
    average into one comparable quantity.
    """

    algorithm: str
    prior_ms: float | None = None
    obs: int = 0
    ms_total: float = 0.0
    parity_failures: int = 0
    poisoned: bool = False

    @property
    def mean_ms(self) -> float | None:
        return self.ms_total / self.obs if self.obs else None

    def posterior_ms(self, scale: float, prior_weight: float,
                     fallback_prior: float) -> float:
        """Blended cost estimate: prior as pseudo-observations.

        ``(prior_weight * prior * scale + ms_total) / (prior_weight + obs)``
        — with *fallback_prior* standing in for unmodeled arms (already
        penalty-scaled by the caller).
        """
        prior = self.prior_ms if self.prior_ms is not None else fallback_prior
        if self.obs == 0:
            return prior * scale
        return ((prior_weight * prior * scale + self.ms_total)
                / (prior_weight + self.obs))


class Decision(NamedTuple):
    """One routing decision: what to serve, what (if anything) to shadow."""

    algorithm: str
    shadow: str | None
    source: str  # "measured" | "prior" | "requested"


@dataclass
class KeyState:
    """Everything the bandit knows about one coalescing family."""

    digest: str
    arms: dict[str, ArmState] = field(default_factory=dict)
    order: tuple[str, ...] = ()
    decisions: int = 0
    explored: int = 0

    def scale(self) -> float:
        """Measured-over-modeled calibration from the observed arms."""
        num = sum(a.ms_total for a in self.arms.values()
                  if a.obs and a.prior_ms)
        den = sum(a.prior_ms * a.obs for a in self.arms.values()
                  if a.obs and a.prior_ms)
        return num / den if den else 1.0

    def fallback_prior(self) -> float:
        """Stand-in prior for unmodeled arms (worst modeled x penalty)."""
        modeled = [a.prior_ms for a in self.arms.values()
                   if a.prior_ms is not None]
        return (max(modeled) if modeled else 1.0) * UNMODELED_PENALTY

    def arm_index(self, algorithm: str) -> int:
        try:
            return self.order.index(algorithm)
        except ValueError:
            return len(self.order)

    def converged(self, min_obs: int) -> bool:
        live = [a for a in self.arms.values() if not a.poisoned]
        return bool(live) and all(a.obs >= min_obs for a in live)


def key_digest(*, op: str, input_chw: tuple, weight_shape: tuple,
               dtype: str, padding, stride, dilation, groups: int,
               strategy: str, backend: str | None,
               output_padding=0) -> str:
    """Canonical string identity of one coalescing family.

    The :class:`~repro.serve.coalescer.CoalesceKey` minus the tensor
    identities (the bandit learns per *problem*, not per weight array)
    and minus the requested algorithm (that is what the bandit decides).
    Parameter spellings canonicalize exactly like the coalescer's, so a
    direct ``execute_conv`` call and a served request over the same
    geometry land on the same table entry.  Used verbatim as the JSON
    table key and the ``key`` counter tag.
    """
    from repro.serve.coalescer import _canonical_padding, _canonical_pair

    return "|".join((
        op,
        "chw=" + "x".join(str(d) for d in input_chw),
        "w=" + "x".join(str(d) for d in weight_shape),
        f"dt={dtype}",
        f"p={_canonical_padding(padding)}",
        f"s={_canonical_pair(stride)}",
        f"d={_canonical_pair(dilation)}",
        f"g={groups}",
        f"st={strategy}",
        f"be={backend}",
        f"op={output_padding}",
    ))


class SelectionBandit:
    """Per-key contextual bandit over the executable algorithm arms."""

    def __init__(self, config: BanditConfig | None = None):
        self.config = config or BanditConfig()
        self._lock = threading.Lock()
        self._keys: dict[str, KeyState] = {}
        #: Last-ingested cumulative (obs, ms) per (proc, digest, arm) —
        #: see :meth:`ingest_replica_rows`.
        self._ingested: dict[tuple, tuple[float, float]] = {}

    # -- arm construction ----------------------------------------------------

    def _seed_key(self, digest: str, shape, requested: str) -> KeyState:
        """Create (or complete) the key's arms from chain + priors."""
        from repro.baselines.registry import fallback_chain
        from repro.perfmodel.timing import prior_ms

        state = self._keys.get(digest)
        if state is None:
            state = KeyState(digest)
            self._keys[digest] = state
        if state.order:
            return state
        chain = fallback_chain(shape, primary=requested)
        prior_shape = shape.with_(n=1) if shape.n != 1 else shape
        for algo in chain:
            name = algo.value
            arm = state.arms.get(name)
            if arm is None:
                arm = ArmState(name)
                state.arms[name] = arm
            if arm.prior_ms is None:
                arm.prior_ms = prior_ms(algo, prior_shape,
                                        self.config.device)
        state.order = tuple(a.value for a in chain)
        return state

    # -- decisions -----------------------------------------------------------

    def decide(self, digest: str, shape, requested: str) -> Decision:
        """Pick the served arm and (budget permitting) a shadow arm.

        Deterministic: cost ties break on arm order, the exploration
        schedule is the counting rule described in the module docstring,
        and the least-observed unconverged arm is always the next shadow.
        """
        cfg = self.config
        with self._lock:
            state = self._seed_key(digest, shape, requested)
            state.decisions += 1
            eligible = [state.arms[name] for name in state.order
                        if not state.arms[name].poisoned]
            if not eligible:
                counters.add("selection.decisions", source="requested")
                return Decision(requested, None, "requested")
            scale = state.scale()
            fallback = state.fallback_prior()
            best = min(eligible, key=lambda a: (
                a.posterior_ms(scale, cfg.prior_weight, fallback),
                state.arm_index(a.algorithm)))
            source = "measured" if best.obs else "prior"
            primary = best.algorithm if cfg.apply else requested
            shadow = None
            pending = [a for a in eligible
                       if a.obs < cfg.min_obs and a.algorithm != primary]
            if pending and state.explored < int(cfg.explore_fraction
                                                * state.decisions):
                shadow = min(pending, key=lambda a: (
                    a.obs, state.arm_index(a.algorithm))).algorithm
                state.explored += 1
        counters.add("selection.decisions", source=source)
        if cfg.apply and primary != requested:
            counters.add("selection.applied", algorithm=primary)
        if shadow is not None:
            counters.add("selection.explore", algorithm=shadow)
        return Decision(primary, shadow, source)

    # -- observations --------------------------------------------------------

    def record(self, digest: str, algorithm: str, ms: float,
               rows: int = 1, shadow: bool = False) -> None:
        """Credit one timing observation (wall *ms* over *rows* rows)."""
        per_row = ms / max(1, rows)
        with self._lock:
            state = self._keys.get(digest)
            if state is None:
                state = KeyState(digest)
                self._keys[digest] = state
            arm = state.arms.get(algorithm)
            if arm is None:
                arm = ArmState(algorithm)
                state.arms[algorithm] = arm
            arm.obs += 1
            arm.ms_total += per_row
        counters.add("selection.arm_obs", 1, key=digest,
                     algorithm=algorithm)
        counters.add("selection.arm_ms", per_row, key=digest,
                     algorithm=algorithm)
        if shadow:
            counters.add("selection.shadow_ok", algorithm=algorithm)

    def record_shadow_failure(self, digest: str, algorithm: str,
                              cause: str) -> None:
        """A shadow raised or failed parity: penalize, never propagate."""
        counters.add(f"selection.shadow_{cause}", algorithm=algorithm)
        with self._lock:
            state = self._keys.get(digest)
            arm = state.arms.get(algorithm) if state else None
            if arm is None:
                return
            arm.parity_failures += 1
            if arm.parity_failures >= self.config.max_parity_failures \
                    and not arm.poisoned:
                arm.poisoned = True
                counters.add("selection.arm_poisoned",
                             algorithm=algorithm)

    # -- introspection -------------------------------------------------------

    def best(self, digest: str) -> str | None:
        """Current posterior-best arm of one key (None if unknown)."""
        cfg = self.config
        with self._lock:
            state = self._keys.get(digest)
            if state is None or not state.arms:
                return None
            eligible = [a for a in state.arms.values() if not a.poisoned]
            if not eligible:
                return None
            scale = state.scale()
            fallback = state.fallback_prior()
            return min(eligible, key=lambda a: (
                a.posterior_ms(scale, cfg.prior_weight, fallback),
                state.arm_index(a.algorithm))).algorithm

    def converged(self, digest: str) -> bool:
        with self._lock:
            state = self._keys.get(digest)
            return state is not None \
                and state.converged(self.config.min_obs)

    def stats(self) -> dict:
        """Snapshot for ``repro selection-stats`` and server stats."""
        cfg = self.config
        with self._lock:
            keys = []
            for digest in sorted(self._keys):
                state = self._keys[digest]
                scale = state.scale()
                fallback = state.fallback_prior()
                arms = []
                for name in (state.order
                             or tuple(sorted(state.arms))):
                    arm = state.arms.get(name)
                    if arm is None:
                        continue
                    arms.append({
                        "algorithm": arm.algorithm,
                        "prior_ms": arm.prior_ms,
                        "obs": arm.obs,
                        "mean_ms": arm.mean_ms,
                        "posterior_ms": arm.posterior_ms(
                            scale, cfg.prior_weight, fallback),
                        "poisoned": arm.poisoned,
                    })
                live = [a for a in arms if not a["poisoned"]]
                best = min(live, key=lambda a: a["posterior_ms"]) \
                    if live else None
                keys.append({
                    "key": digest,
                    "decisions": state.decisions,
                    "explored": state.explored,
                    "converged": state.converged(cfg.min_obs),
                    "best": best["algorithm"] if best else None,
                    "arms": arms,
                })
        return {
            "keys": keys,
            "decisions": sum(k["decisions"] for k in keys),
            "explored": sum(k["explored"] for k in keys),
            "converged_keys": sum(1 for k in keys if k["converged"]),
            "apply": cfg.apply,
            "explore_fraction": cfg.explore_fraction,
        }

    # -- cluster merge -------------------------------------------------------

    def ingest_replica_rows(self) -> int:
        """Fold replica arm timings merged into the registry into the table.

        Cluster workers record ``selection.arm_obs`` / ``selection.arm_ms``
        locally; the router's ``refresh_worker_stats`` merges their counter
        snapshots with a ``proc`` tag (see
        :meth:`repro.observe.registry.CounterRegistry.merge_rows`).  This
        method consumes the *growth* of those proc-tagged rows since the
        last call, so repeated refreshes never double-count.  Returns the
        number of observations folded in.
        """
        obs_rows = {}
        ms_rows = {}
        for row in counters.snapshot("selection.arm_obs"):
            tags = row.tag_dict
            if "proc" in tags:
                obs_rows[(tags["proc"], tags.get("key"),
                          tags.get("algorithm"))] = row.value
        for row in counters.snapshot("selection.arm_ms"):
            tags = row.tag_dict
            if "proc" in tags:
                ms_rows[(tags["proc"], tags.get("key"),
                         tags.get("algorithm"))] = row.value
        folded = 0
        with self._lock:
            for state_key, obs_total in obs_rows.items():
                proc, digest, algorithm = state_key
                if digest is None or algorithm is None:
                    continue
                ms_total = ms_rows.get(state_key, 0.0)
                prev_obs, prev_ms = self._ingested.get(state_key,
                                                       (0.0, 0.0))
                delta_obs = int(obs_total - prev_obs)
                if delta_obs <= 0:
                    continue
                delta_ms = max(0.0, ms_total - prev_ms)
                self._ingested[state_key] = (obs_total, ms_total)
                state = self._keys.get(digest)
                if state is None:
                    state = KeyState(digest)
                    self._keys[digest] = state
                arm = state.arms.get(algorithm)
                if arm is None:
                    arm = ArmState(algorithm)
                    state.arms[algorithm] = arm
                arm.obs += delta_obs
                arm.ms_total += delta_ms
                folded += delta_obs
        return folded

    # -- persistence ---------------------------------------------------------

    def payload(self) -> dict:
        """The persisted table body (checksummed by :func:`save_table`)."""
        with self._lock:
            keys = {}
            for digest, state in self._keys.items():
                keys[digest] = {
                    "decisions": state.decisions,
                    "explored": state.explored,
                    "order": list(state.order),
                    "arms": [{
                        "algorithm": arm.algorithm,
                        "prior_ms": arm.prior_ms,
                        "obs": arm.obs,
                        "ms_total": arm.ms_total,
                        "parity_failures": arm.parity_failures,
                        "poisoned": arm.poisoned,
                    } for arm in state.arms.values()],
                }
        return {"keys": keys}

    def save(self, path: str | None = None) -> str | None:
        """Persist the table; returns the written path (None if nowhere)."""
        path = path or self.config.table_path
        if not path:
            return None
        save_table(self.payload(), path)
        return path

    def warm_start(self, path: str | None = None,
                   strict: bool = True) -> bool:
        """Load a persisted table into this bandit.

        A corrupt file was already discarded by :func:`load_table`
        (counted, returns ``False`` here).  A schema-version mismatch
        raises :class:`SelectionTableError` when *strict*; with
        ``strict=False`` it is counted (``selection.table_schema_reject``)
        and reported as a load failure instead — the server-startup path,
        where a stale table must not take the process down.
        """
        path = path or self.config.table_path
        if not path:
            return False
        try:
            payload = load_table(path)
        except SelectionTableError:
            if strict:
                raise
            counters.add("selection.table_schema_reject")
            return False
        if payload is None:
            return False
        with self._lock:
            for digest, entry in payload.get("keys", {}).items():
                state = KeyState(digest,
                                 decisions=int(entry.get("decisions", 0)),
                                 explored=int(entry.get("explored", 0)),
                                 order=tuple(entry.get("order", ())))
                for row in entry.get("arms", []):
                    arm = ArmState(
                        row["algorithm"],
                        prior_ms=row.get("prior_ms"),
                        obs=int(row.get("obs", 0)),
                        ms_total=float(row.get("ms_total", 0.0)),
                        parity_failures=int(row.get("parity_failures", 0)),
                        poisoned=bool(row.get("poisoned", False)))
                    state.arms[arm.algorithm] = arm
                self._keys[digest] = state
        counters.add("selection.table_loaded")
        return True


# ---------------------------------------------------------------------------
# Table persistence (schema-versioned, content-checksummed JSON).
# ---------------------------------------------------------------------------


def _canonical_body(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode()


def save_table(payload: dict, path: str) -> None:
    """Write a selection table: schema + crc32 of the canonical payload.

    The write is atomic (temp file + rename) so a crash mid-write leaves
    either the old table or the new one, never a torn file.
    """
    document = {
        "schema": TABLE_SCHEMA_VERSION,
        "checksum": zlib.crc32(_canonical_body(payload)),
        "payload": payload,
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def load_table(path: str) -> dict | None:
    """Read a persisted selection table.

    - Missing file: ``None``, silently (a cold start is normal).
    - Unparseable/torn/checksum-mismatched file: ``None``, after counting
      ``selection.table_corrupt`` — discarded exactly like a corrupt
      spectrum-cache entry, never trusted.
    - Schema version other than :data:`TABLE_SCHEMA_VERSION`: raises
      :class:`SelectionTableError` — a different schema is a different
      contract, and guessing at field meanings is how corrupt learned
      state gets served.
    """
    if not os.path.exists(path):
        return None
    try:
        with open(path) as fh:
            document = json.load(fh)
    except (OSError, ValueError):
        counters.add("selection.table_corrupt")
        return None
    if not isinstance(document, dict) or "payload" not in document \
            or "checksum" not in document or "schema" not in document:
        counters.add("selection.table_corrupt")
        return None
    if document["schema"] != TABLE_SCHEMA_VERSION:
        raise SelectionTableError(
            f"selection table {path} has schema "
            f"{document['schema']!r}; this build reads schema "
            f"{TABLE_SCHEMA_VERSION} — regenerate the table instead of "
            f"reinterpreting it")
    if zlib.crc32(_canonical_body(document["payload"])) \
            != document["checksum"]:
        counters.add("selection.table_corrupt")
        return None
    return document["payload"]


def default_table_path() -> str:
    """``REPRO_SELECTION_TABLE`` or the conventional repo location."""
    return os.environ.get(TABLE_ENV) or DEFAULT_TABLE_PATH


# ---------------------------------------------------------------------------
# Process-wide bandit (the serving layer's hook) and the live executor.
# ---------------------------------------------------------------------------

_active_lock = threading.Lock()
_ACTIVE: SelectionBandit | None = None
_env_checked = False

#: Test/chaos hook: a callable applied to every shadow output before the
#: parity check (``repro selection-drill`` and the property tests use it
#: to prove a poisoned shadow cannot alter the served result).  Never set
#: in production.
_SHADOW_CHAOS: Callable[[np.ndarray], np.ndarray] | None = None


def set_shadow_chaos(fn: Callable[[np.ndarray], np.ndarray] | None) -> None:
    """Install (or clear, with ``None``) the shadow-corruption hook."""
    global _SHADOW_CHAOS
    _SHADOW_CHAOS = fn


def enable_bandit(config: BanditConfig | None = None) -> SelectionBandit:
    """Install a process-wide bandit (replacing any active one)."""
    global _ACTIVE, _env_checked
    bandit = SelectionBandit(config)
    if bandit.config.table_path:
        bandit.warm_start(strict=False)
    with _active_lock:
        _ACTIVE = bandit
        _env_checked = True
    return bandit


def disable_bandit() -> None:
    """Drop the process-wide bandit (env re-activation stays off)."""
    global _ACTIVE, _env_checked
    with _active_lock:
        _ACTIVE = None
        _env_checked = True


def active_bandit() -> SelectionBandit | None:
    """The process-wide bandit, activating from the environment once.

    ``REPRO_SELECTION_BANDIT=1`` enables full selection (the bandit's
    choice is served); ``=shadow`` enables observe-only mode (requested
    algorithm served, alternatives shadow-explored).  Anything else — the
    default — keeps the bandit off, and the serving hot path pays one
    ``None`` check.
    """
    global _ACTIVE, _env_checked
    if _ACTIVE is None and not _env_checked:
        with _active_lock:
            if _ACTIVE is None and not _env_checked:
                _env_checked = True
                mode = os.environ.get(ENABLE_ENV, "").strip().lower()
                if mode in ("1", "true", "on", "apply", "shadow"):
                    bandit = SelectionBandit(BanditConfig.from_env())
                    if bandit.config.table_path:
                        bandit.warm_start(strict=False)
                    _ACTIVE = bandit
    return _ACTIVE


def _reset_child_state() -> None:
    """Fork-safety: fresh locks, fresh activation state (cluster workers).

    A forked worker inherits the parent's bandit object — including a
    lock another parent thread may have held at fork time — so the child
    drops it and re-activates from the environment on first use, exactly
    like the plan/spectrum caches start empty.
    """
    global _active_lock, _ACTIVE, _env_checked
    _active_lock = threading.Lock()
    _ACTIVE = None
    _env_checked = False


def bandit_conv2d(bandit: SelectionBandit, x: np.ndarray,
                  weight: np.ndarray, bias: np.ndarray | None, *,
                  padding, stride, dilation, groups: int, requested: str,
                  strategy: str, backend: str | None,
                  run: Callable[[str], np.ndarray]) -> np.ndarray:
    """One bandit-routed conv2d: decide, serve the primary, maybe shadow.

    *run* executes one algorithm through the caller's normal dispatch
    (guard chain included when supervision is on) and produces the served
    result.  The shadow path never touches it: see :func:`_run_shadow`.
    """
    from repro.utils.shapes import ConvShape

    shape = ConvShape.from_tensors(x.shape, weight.shape, padding, stride,
                                   dilation, groups)
    digest = key_digest(op="conv2d", input_chw=tuple(x.shape[1:]),
                        weight_shape=tuple(weight.shape),
                        dtype=str(x.dtype), padding=padding, stride=stride,
                        dilation=dilation, groups=groups, strategy=strategy,
                        backend=backend)
    decision = bandit.decide(digest, shape, requested)
    start = time.perf_counter()
    out = run(decision.algorithm)
    primary_ms = (time.perf_counter() - start) * 1e3
    bandit.record(digest, decision.algorithm, primary_ms,
                  rows=int(x.shape[0]))
    if decision.shadow is not None:
        _run_shadow(bandit, digest, decision.shadow, out, x, weight, bias,
                    padding=padding, stride=stride, dilation=dilation,
                    groups=groups)
    return out


def _run_shadow(bandit: SelectionBandit, digest: str, algorithm: str,
                served: np.ndarray, x: np.ndarray, weight: np.ndarray,
                bias: np.ndarray | None, *, padding, stride, dilation,
                groups: int) -> None:
    """Execute one exploration arm without any way to affect the caller.

    Safety rules, in the order they are enforced:

    - the shadow runs through :func:`~repro.guard.chain.guarded_conv2d`
      with a single-entry chain (no fallback — a failing arm must *look*
      failed, not silently score a fallback's timing) and its **own**
      breaker scope, so a chronically bad shadow arm cannot open the
      serving family's breaker;
    - any exception is swallowed into a counter and an arm penalty;
    - the timing is credited only after the output parity-checks against
      the served result — a fast-but-wrong arm scores nothing.
    """
    from repro.guard.chain import guarded_conv2d
    from repro.guard.state import current_config

    rows = int(x.shape[0])
    try:
        # Everything from here to the parity verdict sits inside one
        # try: a shadow failing *anywhere* — engine, chaos hook, parity
        # arithmetic — must cost a counter, never reach the caller.
        config = current_config().with_(chain=())
        start = time.perf_counter()
        shadow_out = guarded_conv2d(
            x, weight, bias=bias, padding=padding, stride=stride,
            dilation=dilation, groups=groups, algorithm=algorithm,
            config=config, breaker_key=("selection-shadow", digest))
        shadow_ms = (time.perf_counter() - start) * 1e3
        chaos = _SHADOW_CHAOS
        if chaos is not None:
            shadow_out = chaos(shadow_out)
        cfg = bandit.config
        atol = cfg.parity_atol * max(1.0, float(np.max(np.abs(served)))
                                     if served.size else 1.0)
        ok = shadow_out.shape == served.shape and np.allclose(
            shadow_out, served, rtol=cfg.parity_rtol, atol=atol)
    except Exception:
        bandit.record_shadow_failure(digest, algorithm, "error")
        return
    if ok:
        bandit.record(digest, algorithm, shadow_ms, rows=rows,
                      shadow=True)
    else:
        bandit.record_shadow_failure(digest, algorithm, "parity_fail")


# ---------------------------------------------------------------------------
# CLI rendering.
# ---------------------------------------------------------------------------


def selection_counter_stats() -> dict:
    """Process-wide selection counters (survive the bandit object)."""
    return {
        "decisions": int(counters.total("selection.decisions")),
        "applied": int(counters.total("selection.applied")),
        "explored": int(counters.total("selection.explore")),
        "shadow_ok": int(counters.total("selection.shadow_ok")),
        "shadow_parity_fail":
            int(counters.total("selection.shadow_parity_fail")),
        "shadow_error": int(counters.total("selection.shadow_error")),
        "arms_poisoned": int(counters.total("selection.arm_poisoned")),
        "table_corrupt": int(counters.total("selection.table_corrupt")),
    }


def format_selection_stats(stats: dict | None = None) -> str:
    """Render a bandit table snapshot for ``repro selection-stats``."""
    if stats is None:
        bandit = active_bandit()
        if bandit is None:
            return ("no active selection bandit "
                    f"(set {ENABLE_ENV}=1 or {ENABLE_ENV}=shadow, or pass "
                    "--table to read a persisted table)")
        stats = bandit.stats()
    keys = stats.get("keys", [])
    explored = stats.get("explored", 0)
    decisions = stats.get("decisions", 0)
    rate = f" ({explored / decisions:.1%} explored)" if decisions else ""
    lines = [
        f"selection: {len(keys)} key(s), "
        f"{stats.get('converged_keys', 0)} converged, "
        f"{decisions} decision(s), {explored} shadow(s){rate}, "
        f"mode={'apply' if stats.get('apply', True) else 'shadow'}"
    ]
    for entry in keys:
        status = "converged" if entry["converged"] else "exploring"
        lines.append("")
        lines.append(f"key {entry['key']}")
        lines.append(f"  {status}; best={entry['best']}; "
                     f"decisions={entry['decisions']}, "
                     f"explored={entry['explored']}")
        lines.append(f"  {'arm':<22} {'prior_ms':>10} {'obs':>6} "
                     f"{'mean_ms':>10} {'post_ms':>10}  state")
        for arm in entry["arms"]:
            def fmt(value):
                return f"{value:10.4f}" if value is not None \
                    else f"{'-':>10}"
            state = "poisoned" if arm["poisoned"] else (
                "best" if arm["algorithm"] == entry["best"] else "ok")
            lines.append(f"  {arm['algorithm']:<22} {fmt(arm['prior_ms'])} "
                         f"{arm['obs']:>6} {fmt(arm['mean_ms'])} "
                         f"{fmt(arm['posterior_ms'])}  {state}")
    return "\n".join(lines)
