"""The CI selection drill: seeded replay, warm-start, shadow safety.

``repro selection-drill`` (and the ``selection-drill`` CI job) must prove
three contracts of :mod:`repro.selection.bandit` end to end, exiting
nonzero when any fails:

1. **Convergence** — a seeded deterministic traffic replay over keys with
   known roofline winners converges, within the request budget, to an arm
   whose modeled cost equals the oracle's (the PolyHankel pair ties by
   construction, so "the oracle arm" means its modeled-cost tie set).
   Observations are drawn from the roofline model with seeded noise, so
   the replay is bit-reproducible and CI-machine independent.
2. **Warm start** — persisting the learned table and loading it into a
   fresh bandit (the "restarted server") yields *zero* exploration on the
   known keys: every arm is already past ``min_obs``, so no shadow ever
   launches and the first decision already serves the converged arm.
3. **Shadow safety** — with a deliberately poisoned shadow hook installed
   and exploration forced to 100%, a real :class:`~repro.serve.api.
   ConvServer` serves outputs bit-identical to a bandit-off run.  The
   parity-failure counter must move (proof the poisoned shadows actually
   executed) while the served bytes must not.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.selection.bandit import (
    BanditConfig,
    SelectionBandit,
    disable_bandit,
    enable_bandit,
    key_digest,
    set_shadow_chaos,
)
from repro.utils.shapes import ConvShape

#: Replay keys: geometries whose roofline winners differ (the crossover
#: the paper's Figs. 3-4 describe), so convergence is tested toward more
#: than one arm.  Batch 1 keeps the synthetic replay's units simple.
DRILL_SHAPES: tuple[tuple[str, ConvShape], ...] = (
    # Deep stack with a mid-size kernel: the frequency-domain method's
    # home turf — the model ranks PolyHankel first.
    ("large_poly", ConvShape(ih=128, iw=128, kh=7, kw=7, n=1, c=32, f=32,
                             padding=3)),
    # Small input, small kernel: left of the paper's crossover — GEMM.
    ("small_gemm", ConvShape(ih=8, iw=8, kh=3, kw=3, n=1, c=4, f=8,
                             padding=1)),
    # Wide kernel on a modest image: right of the crossover again.
    ("wide_kernel", ConvShape(ih=64, iw=64, kh=13, kw=13, n=1, c=8, f=16,
                              padding=6)),
)

#: Seeded relative noise on synthetic observations — wide enough to make
#: the bandit's averaging do real work, narrow enough that the modeled
#: winner stays the measured winner.
NOISE = 0.05


def _digest(shape: ConvShape) -> str:
    return key_digest(op="conv2d", input_chw=(shape.c, shape.ih, shape.iw),
                      weight_shape=(shape.f, shape.c // shape.groups,
                                    shape.kh, shape.kw),
                      dtype="float64", padding=shape.padding,
                      stride=shape.stride, dilation=shape.dilation,
                      groups=shape.groups, strategy="sum",
                      backend="numpy")


def _model_ms(shape: ConvShape, device: str) -> dict[str, float]:
    """Modeled per-arm ms for the key's chain (unmodeled arms penalized)."""
    from repro.baselines.registry import fallback_chain
    from repro.perfmodel.timing import prior_ms
    from repro.selection.bandit import UNMODELED_PENALTY

    chain = fallback_chain(shape, primary="polyhankel")
    modeled = {a.value: prior_ms(a, shape, device) for a in chain}
    worst = max((v for v in modeled.values() if v is not None),
                default=1.0)
    return {name: (v if v is not None else worst * UNMODELED_PENALTY)
            for name, v in modeled.items()}


def _oracle_tie_set(model: dict[str, float],
                    tie_tol: float = 0.01) -> tuple[str, set[str]]:
    """The roofline argmin and every arm within *tie_tol* of it."""
    from repro.selection.heuristic import TIE_BREAK

    rank = {a.value: i for i, a in enumerate(TIE_BREAK)}
    oracle = min(model, key=lambda n: (model[n], rank.get(n, len(rank))))
    ties = {n for n, v in model.items()
            if v <= model[oracle] * (1.0 + tie_tol)}
    return oracle, ties


def replay_key(bandit: SelectionBandit, digest: str, shape: ConvShape,
               model: dict[str, float], rng: np.random.Generator,
               requests: int) -> dict:
    """Feed *requests* synthetic observations through one key.

    Timings are the modeled ms with seeded multiplicative noise; shadows
    are credited like parity-clean live shadows.  Returns the per-key
    replay record including the regret against the modeled oracle.
    """
    oracle, ties = _oracle_tie_set(model)
    served_cost = 0.0
    explored = 0
    for _ in range(requests):
        decision = bandit.decide(digest, shape, "polyhankel")
        served_cost += model[decision.algorithm]
        noise = 1.0 + rng.uniform(-NOISE, NOISE)
        bandit.record(digest, decision.algorithm,
                      model[decision.algorithm] * noise)
        if decision.shadow is not None:
            explored += 1
            noise = 1.0 + rng.uniform(-NOISE, NOISE)
            bandit.record(digest, decision.shadow,
                          model[decision.shadow] * noise, shadow=True)
    oracle_cost = model[oracle] * requests
    chosen = bandit.best(digest)
    return {
        "oracle": oracle,
        "oracle_ties": sorted(ties),
        "chosen": chosen,
        "oracle_hit": chosen in ties,
        "converged": bandit.converged(digest),
        "explored": explored,
        "regret_pct": 100.0 * (served_cost - oracle_cost) / oracle_cost,
    }


def run_selection_drill(seed: int = 0, requests: int = 300,
                        table_path: str | None = None) -> dict:
    """Run all three drill phases; ``report["ok"]`` is the CI verdict."""
    report: dict = {"seed": seed, "requests": requests}
    config = BanditConfig(apply=True, explore_fraction=0.25, min_obs=5,
                          table_path=table_path)
    device = config.device
    rng = np.random.default_rng(seed)
    bandit = SelectionBandit(config)

    # Phase 1: seeded replay must converge to the roofline winner per key.
    keys = []
    for name, shape in DRILL_SHAPES:
        digest = _digest(shape)
        entry = replay_key(bandit, digest, shape, _model_ms(shape, device),
                           rng, requests)
        entry["name"] = name
        keys.append(entry)
    report["keys"] = keys
    report["converge_ok"] = all(k["oracle_hit"] and k["converged"]
                                for k in keys)

    # Phase 2: persist -> fresh bandit ("restarted server") -> replay must
    # serve the converged arm with zero exploration on the known keys.
    cleanup = table_path is None
    if table_path is None:
        fd, table_path = tempfile.mkstemp(suffix=".json",
                                          prefix="selection_table_")
        os.close(fd)
    try:
        bandit.save(table_path)
        warmed = SelectionBandit(config)
        loaded = warmed.warm_start(table_path)
        warm_explored = 0
        warm_hits = True
        for (_name, shape), entry in zip(DRILL_SHAPES, keys):
            digest = _digest(shape)
            # Decide-only replay: the restarted server's routing, before
            # any new measurement lands.
            for _ in range(max(20, requests // 10)):
                decision = warmed.decide(digest, shape, "polyhankel")
                if decision.shadow is not None:
                    warm_explored += 1
                if decision.algorithm not in entry["oracle_ties"]:
                    warm_hits = False
    finally:
        if cleanup:
            os.unlink(table_path)
    report["warm_start"] = {
        "loaded": loaded,
        "explored": warm_explored,
        "oracle_hit": warm_hits,
    }
    report["warm_ok"] = loaded and warm_explored == 0 and warm_hits

    # Phase 3: a poisoned shadow must never alter what a real server
    # serves — bit-exact against a bandit-off run of identical traffic.
    report["shadow"] = _shadow_safety_phase(seed)
    report["shadow_ok"] = report["shadow"]["ok"]

    report["ok"] = bool(report["converge_ok"] and report["warm_ok"]
                        and report["shadow_ok"])
    return report


def _shadow_safety_phase(seed: int, submissions: int = 6) -> dict:
    """Served outputs with the bandit on (and poisoned) vs. off."""
    from repro.observe.registry import counters
    from repro.serve.api import ConvServer

    rng = np.random.default_rng(seed)
    x = rng.standard_normal((2, 3, 12, 12))
    w = rng.standard_normal((4, 3, 3, 3))

    def serve_all() -> list[np.ndarray]:
        with ConvServer(max_batch=4, workers=1) as server:
            return [server.conv2d(x, w, padding=1)
                    for _ in range(submissions)]

    disable_bandit()
    reference = serve_all()
    parity_before = counters.total("selection.shadow_parity_fail")
    # Shadow-only mode, exploration forced on every request, min_obs set
    # unreachably high so exploration never stops, and every shadow output
    # corrupted before its parity check.
    enable_bandit(BanditConfig(apply=False, explore_fraction=1.0,
                               min_obs=10 ** 9))
    set_shadow_chaos(lambda out: out + 1.0e3)
    try:
        poisoned = serve_all()
    finally:
        set_shadow_chaos(None)
        disable_bandit()
    parity_failures = int(counters.total("selection.shadow_parity_fail")
                          - parity_before)
    bit_exact = all(np.array_equal(a, b)
                    for a, b in zip(reference, poisoned))
    return {
        "submissions": submissions,
        "bit_exact": bit_exact,
        "parity_failures": parity_failures,
        "ok": bit_exact and parity_failures > 0,
    }


def format_selection_drill(report: dict) -> str:
    """Human-readable drill verdict for the CLI."""
    lines = [f"selection drill (seed {report['seed']}, "
             f"{report['requests']} requests/key)"]
    lines.append(f"{'key':<12} {'oracle':<22} {'chosen':<22} "
                 f"{'regret%':>8} {'explored':>8}  verdict")
    for entry in report["keys"]:
        verdict = "ok" if entry["oracle_hit"] and entry["converged"] \
            else "FAIL"
        lines.append(f"{entry['name']:<12} {entry['oracle']:<22} "
                     f"{str(entry['chosen']):<22} "
                     f"{entry['regret_pct']:>8.2f} "
                     f"{entry['explored']:>8}  {verdict}")
    warm = report["warm_start"]
    lines.append(f"warm start: loaded={warm['loaded']} "
                 f"explored={warm['explored']} "
                 f"oracle_hit={warm['oracle_hit']} "
                 f"-> {'ok' if report['warm_ok'] else 'FAIL'}")
    shadow = report["shadow"]
    lines.append(f"shadow safety: bit_exact={shadow['bit_exact']} "
                 f"parity_failures={shadow['parity_failures']} "
                 f"-> {'ok' if report['shadow_ok'] else 'FAIL'}")
    lines.append(f"drill {'OK' if report['ok'] else 'FAILED'}")
    return "\n".join(lines)
