"""Per-call algorithm selection (the paper's stated future work).

Sec. 4.2 closes with: "Ideally, heuristics should be developed to choose
the best convolution method for each API invocation."  This module builds
that heuristic two ways:

- :func:`select_algorithm` — *model-driven*: run the roofline simulator for
  every capable algorithm and take the argmin.  This is the oracle the
  cost model supports.
- :func:`select_algorithm_rules` — *closed-form rules* distilled from the
  paper's findings (GEMM for small inputs, PolyHankel for large inputs with
  small-to-medium kernels, FFT for very large kernels), for callers that
  want an O(1) decision with no model in the loop.

Both return a :class:`SelectionResult` so callers can see the ranking.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.registry import FALLBACK_ORDER, ConvAlgorithm, supports
from repro.perfmodel.counters import modeled_algorithms
from repro.perfmodel.device import GpuDevice, get_device
from repro.perfmodel.timing import simulate_ms
from repro.utils.shapes import ConvShape

#: Algorithms the selector will consider — every modeled algorithm,
#: including both PolyHankel variants.  They share one cost model, so
#: their modeled times tie exactly; the tie resolves through
#: :data:`TIE_BREAK` below instead of silently dropping one of the pair
#: from the ranking (which hid POLYHANKEL_OS from every consumer of the
#: full ranking, the guard's degradation order included).
CANDIDATES: tuple[ConvAlgorithm, ...] = tuple(modeled_algorithms())

#: Deterministic preference order for modeled-cost ties: the guard
#: chain's descent first (POLYHANKEL before its overlap-save variant —
#: same math, and the batch pipeline is the better-exercised path), then
#: the remaining algorithms in registry declaration order.  Sorting on
#: ``(modeled_ms, tie-break index)`` makes the full ranking a total
#: order: equal-cost pairs always rank the same way, on every host.
TIE_BREAK: tuple[ConvAlgorithm, ...] = tuple(FALLBACK_ORDER) + tuple(
    a for a in ConvAlgorithm if a not in FALLBACK_ORDER
)


def _tie_break_index(algorithm: ConvAlgorithm) -> int:
    return TIE_BREAK.index(algorithm)


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of a selection: the winner plus the full ranking."""

    shape: ConvShape
    device: str
    ranking: tuple[tuple[ConvAlgorithm, float], ...]

    @property
    def algorithm(self) -> ConvAlgorithm:
        return self.ranking[0][0]

    @property
    def predicted_ms(self) -> float:
        return self.ranking[0][1]


def select_algorithm(shape: ConvShape,
                     device: GpuDevice | str = "3090ti",
                     candidates: tuple[ConvAlgorithm, ...] = CANDIDATES,
                     workspace_limit_bytes: float | None = None
                     ) -> SelectionResult:
    """Pick the fastest capable algorithm per the roofline model.

    *workspace_limit_bytes* mirrors cuDNN's ``memoryLimitInBytes``: an
    algorithm whose modeled workspace exceeds the limit is excluded (this
    is how memory-constrained deployments end up on implicit GEMM even
    where the im2col path would be faster).
    """
    from repro.perfmodel.counters import count

    device = get_device(device)
    scored = []
    for algo in candidates:
        if not supports(algo, shape):
            continue
        if workspace_limit_bytes is not None:
            if count(algo, shape).workspace_bytes > workspace_limit_bytes:
                continue
        scored.append((algo, simulate_ms(algo, shape, device)))
    if not scored:
        raise ValueError(
            f"no capable algorithm for shape {shape}"
            + (f" within workspace limit {workspace_limit_bytes:.0f} bytes"
               if workspace_limit_bytes is not None else "")
        )
    scored.sort(key=lambda pair: (pair[1], _tie_break_index(pair[0])))
    return SelectionResult(shape, device.name, tuple(scored))


def ranked_fallback_order(shape: ConvShape,
                          device: GpuDevice | str = "3090ti"
                          ) -> tuple[ConvAlgorithm, ...]:
    """The guard chain's descent, ordered by the selector's ranking.

    ``fallback_chain(shape, order="ranked")`` (and a
    :class:`~repro.guard.state.GuardConfig` with ``chain="ranked"``) use
    this instead of the static :data:`~repro.baselines.registry.
    FALLBACK_ORDER`: when the primary degrades, the first fallback tried
    is the algorithm the roofline model ranks fastest *for this shape*,
    not a fixed favorite.  Unmodeled last resorts (naive) keep their
    static position at the tail; if the model cannot rank anything for
    the shape, the static order stands.
    """
    modeled = tuple(a for a in FALLBACK_ORDER if a in CANDIDATES)
    try:
        ranking = select_algorithm(shape, device,
                                   candidates=modeled).ranking
    except ValueError:
        return FALLBACK_ORDER
    order = [algo for algo, _ in ranking]
    order += [algo for algo in FALLBACK_ORDER if algo not in order]
    return tuple(order)


#: Rule thresholds distilled from the paper's Figs. 3-4 (and re-derivable
#: from the model via tests/selection/test_heuristic.py).
SMALL_INPUT_THRESHOLD = 32       # below: GEMM wins (Fig. 3 left region)
LARGE_KERNEL_THRESHOLD = 15      # above: FFT wins (Fig. 4 right region)
#: Per-filter channel count below which the frequency-domain methods lose
#: their arithmetic advantage (depthwise/grouped layers do almost no
#: channel reduction, so the gather-dominated GEMM path wins).
THIN_GROUP_THRESHOLD = 2


def select_algorithm_rules(shape: ConvShape) -> ConvAlgorithm:
    """O(1) rule-based choice following the paper's empirical regions.

    The rules read the *effective* (dilated) kernel extents — dilation
    moves a layer rightward in Fig. 4 exactly like a larger kernel — and
    route thin grouped layers (depthwise, ``c/groups`` tiny) to implicit
    GEMM, where the per-group FFT work cannot amortize.
    """
    small_input = max(shape.ih, shape.iw) < SMALL_INPUT_THRESHOLD
    large_kernel = max(shape.eff_kh, shape.eff_kw) >= LARGE_KERNEL_THRESHOLD
    thin_groups = (shape.groups > 1
                   and shape.group_channels <= THIN_GROUP_THRESHOLD)
    if small_input or thin_groups:
        return ConvAlgorithm.IMPLICIT_PRECOMP_GEMM
    if large_kernel:
        return ConvAlgorithm.FFT
    return ConvAlgorithm.POLYHANKEL
