"""Convolution algorithm selection: static heuristics and online learning.

Three tiers, in order of information available:

- :func:`select_algorithm_rules` — closed-form O(1) rules from the paper;
- :func:`select_algorithm` — roofline-model argmin with a deterministic
  tie-break (the oracle the cost model supports);
- :class:`~repro.selection.bandit.SelectionBandit` — per-coalescing-key
  online learning over live serving traffic, warm-started from the model
  and converged on measurement (see :mod:`repro.selection.bandit`).
"""

from repro.selection.bandit import (
    BanditConfig,
    SelectionBandit,
    SelectionTableError,
    active_bandit,
    disable_bandit,
    enable_bandit,
    format_selection_stats,
    load_table,
    save_table,
)
from repro.selection.heuristic import (
    CANDIDATES,
    TIE_BREAK,
    SelectionResult,
    ranked_fallback_order,
    select_algorithm,
    select_algorithm_rules,
)

__all__ = [
    "CANDIDATES",
    "TIE_BREAK",
    "SelectionResult",
    "select_algorithm",
    "select_algorithm_rules",
    "ranked_fallback_order",
    "BanditConfig",
    "SelectionBandit",
    "SelectionTableError",
    "active_bandit",
    "enable_bandit",
    "disable_bandit",
    "format_selection_stats",
    "load_table",
    "save_table",
]
