"""Cost-model-driven convolution algorithm selection."""

from repro.selection.heuristic import (
    CANDIDATES,
    SelectionResult,
    select_algorithm,
    select_algorithm_rules,
)

__all__ = [
    "CANDIDATES",
    "SelectionResult",
    "select_algorithm",
    "select_algorithm_rules",
]
