"""Empirical algorithm tuning — the ``cudnnFindConvolutionForwardAlgorithm``
analogue.

Where :mod:`repro.selection.heuristic` predicts the best algorithm from the
cost model, the tuner *measures*: it runs every capable algorithm on the
actual problem a few times and caches the fastest per shape.  Useful when
the host machine's behaviour diverges from the model (as any real machine's
will), and as the ground truth the heuristic can be evaluated against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.baselines.registry import (
    ConvAlgorithm,
    convolve,
    list_algorithms,
    supports,
)
from repro.utils.random import random_problem
from repro.utils.shapes import ConvShape

#: Algorithms the tuner tries by default: everything except the O(K^2 E)
#: reference, which exists for correctness only.
DEFAULT_CANDIDATES: tuple[ConvAlgorithm, ...] = tuple(
    a for a in list_algorithms() if a is not ConvAlgorithm.NAIVE
)


@dataclass(frozen=True)
class TuningResult:
    """Measured wall-clock ranking for one shape on this machine."""

    shape: ConvShape
    timings_s: dict[ConvAlgorithm, float]

    @property
    def best(self) -> ConvAlgorithm:
        return min(self.timings_s, key=self.timings_s.get)

    @property
    def best_seconds(self) -> float:
        return self.timings_s[self.best]

    def ranking(self) -> list[tuple[ConvAlgorithm, float]]:
        return sorted(self.timings_s.items(), key=lambda kv: kv[1])


class ConvTuner:
    """Measure-and-cache algorithm selection.

    >>> tuner = ConvTuner(repeats=1)
    >>> shape = ConvShape(ih=16, iw=16, kh=3, kw=3, n=2, c=2, f=2)
    >>> algo = tuner.best_algorithm(shape)     # measured on this machine
    >>> tuner.best_algorithm(shape) is algo    # second call hits the cache
    True
    """

    def __init__(self, candidates: tuple[ConvAlgorithm, ...] =
                 DEFAULT_CANDIDATES, repeats: int = 3,
                 warmup: bool = True):
        if repeats < 1:
            raise ValueError("repeats must be positive")
        self.candidates = candidates
        self.repeats = repeats
        self.warmup = warmup
        self._cache: dict[ConvShape, TuningResult] = {}

    def tune(self, shape: ConvShape, x: np.ndarray | None = None,
             weight: np.ndarray | None = None) -> TuningResult:
        """Measure every capable candidate on *shape* (cached)."""
        cached = self._cache.get(shape)
        if cached is not None:
            return cached
        if x is None or weight is None:
            x, weight = random_problem(shape)
        timings: dict[ConvAlgorithm, float] = {}
        for algo in self.candidates:
            if not supports(algo, shape):
                continue
            if self.warmup:
                convolve(x, weight, algorithm=algo, padding=shape.padding,
                         stride=shape.stride)
            best = np.inf
            for _ in range(self.repeats):
                start = time.perf_counter()
                convolve(x, weight, algorithm=algo, padding=shape.padding,
                         stride=shape.stride)
                best = min(best, time.perf_counter() - start)
            timings[algo] = best
        if not timings:
            raise ValueError(f"no capable algorithm for shape {shape}")
        result = TuningResult(shape, timings)
        self._cache[shape] = result
        return result

    def best_algorithm(self, shape: ConvShape) -> ConvAlgorithm:
        """The measured-fastest algorithm for *shape* on this machine."""
        return self.tune(shape).best

    def clear(self) -> None:
        self._cache.clear()

    @property
    def cache_size(self) -> int:
        return len(self._cache)
