"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``selftest``   — quick cross-algorithm correctness check;
- ``figures``    — regenerate the paper's figures as text tables;
- ``simulate``   — simulated GPU time for one convolution shape;
- ``select``     — algorithm recommendation (model + rules) for a shape;
- ``tune``       — measure algorithms on this machine for a shape;
- ``bench``      — execution-engine wall-clock suite, written as JSON;
  ``--check BASELINE.json`` turns it into the CI regression gate;
  ``--inject`` runs the guard recovery drill instead of the timings,
  ``--inject-cluster`` the cluster chaos drill (watchdog/retry/slots);
- ``serve-bench``— serving-layer throughput presets (dynamic batching
  vs a sequential request loop); ``--list`` shows the presets;
  ``--workers 1 2 4`` runs the cluster saturation sweep instead
  (Poisson open-loop load through the shared-memory tier), and
  ``--check-scaleout 1.5`` turns it into the CI scale-out gate;
  ``--overload`` runs the overload sweep (offered load at multiples of
  calibrated capacity) and ``--check-goodput 0.85`` gates goodput at
  the gate multiplier;
- ``serve-stats``— serving counters of this process (requests, batches,
  coalesce rate, queue wait), plus a per-replica table once a cluster
  has run;
- ``doctor``     — install health report (FFT parity, cache integrity,
  fallback-chain reachability, sentinel, guarded recovery); exits
  nonzero when any check fails;
- ``profile``    — measured per-stage times joined against the analytic
  cost model, with drift flags (``--trace`` prints raw spans);
- ``cache-stats``— the consolidated cache hit/miss table (one registry);
- ``algorithms`` — list the registered algorithms.

``selftest``, ``tune`` and ``bench`` accept ``--cache-stats`` to print the
same consolidated table after the run.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _parse_pair(text: str):
    """Parse ``"2"`` or ``"2,1"`` into an int or an ``(h, w)`` pair."""
    parts = [p for p in text.split(",") if p]
    try:
        values = [int(p) for p in parts]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an int or 'h,w' pair, got {text!r}"
        ) from None
    if len(values) == 1:
        return values[0]
    if len(values) == 2:
        return tuple(values)
    raise argparse.ArgumentTypeError(
        f"expected an int or 'h,w' pair, got {text!r}"
    )


def _parse_padding(text: str):
    """Parse ``"same"``, ``"1"``, ``"1,2"`` or ``"1,1,2,2"``."""
    if text == "same":
        return "same"
    parts = [p for p in text.split(",") if p]
    try:
        values = [int(p) for p in parts]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected 'same', an int, 'ph,pw' or 'pt,pb,pl,pr', "
            f"got {text!r}"
        ) from None
    if len(values) == 1:
        return values[0]
    if len(values) in (2, 4):
        return tuple(values)
    raise argparse.ArgumentTypeError(
        f"expected 'same', an int, 'ph,pw' or 'pt,pb,pl,pr', got {text!r}"
    )


def _shape_from_args(args) -> "ConvShape":
    from repro.utils.shapes import ConvShape

    return ConvShape(ih=args.size, iw=args.size, kh=args.kernel,
                     kw=args.kernel, n=args.batch, c=args.channels,
                     f=args.filters, padding=args.padding,
                     stride=args.stride, dilation=args.dilation,
                     groups=args.groups)


def _add_shape_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--size", type=int, default=64,
                        help="input height/width (default 64)")
    parser.add_argument("--kernel", type=int, default=3,
                        help="kernel height/width (default 3)")
    parser.add_argument("--batch", type=int, default=8)
    parser.add_argument("--channels", type=int, default=3)
    parser.add_argument("--filters", type=int, default=16)
    parser.add_argument("--padding", type=_parse_padding, default=1,
                        help="'same', P, 'ph,pw' or 'pt,pb,pl,pr' "
                             "(default 1)")
    parser.add_argument("--stride", type=_parse_pair, default=1,
                        help="S or 'sh,sw' (default 1)")
    parser.add_argument("--dilation", type=_parse_pair, default=1,
                        help="D or 'dh,dw' (default 1)")
    parser.add_argument("--groups", type=int, default=1,
                        help="channel groups; set to channels for "
                             "depthwise (default 1)")


def _print_cache_stats() -> None:
    from repro.observe import format_cache_stats

    print("\ncache statistics (unified observe registry):")
    print(format_cache_stats())


def cmd_selftest(args) -> int:
    from repro.baselines.registry import (
        ConvAlgorithm, convolve, list_algorithms, supports,
    )
    from repro.utils.random import random_problem
    from repro.utils.shapes import ConvShape

    shape = ConvShape(ih=12, iw=11, kh=3, kw=3, n=2, c=3, f=4, padding=1)
    x, w = random_problem(shape)
    reference = convolve(x, w, algorithm=ConvAlgorithm.NAIVE, padding=1)
    failures = 0
    for algo in list_algorithms():
        if not supports(algo, shape):
            continue
        out = convolve(x, w, algorithm=algo, padding=1)
        err = float(np.abs(out - reference).max())
        status = "ok" if err < 1e-6 else "FAIL"
        if status == "FAIL":
            failures += 1
        print(f"{algo.value:<24} max|diff| = {err:.2e}  {status}")
    print("selftest", "FAILED" if failures else "passed")
    if getattr(args, "cache_stats", False):
        _print_cache_stats()
    return 1 if failures else 0


def cmd_figures(args) -> int:
    from repro.baselines.registry import ConvAlgorithm
    from repro.experiments import (
        fig3_input_sweep, fig4_kernel_sweep, fig5_channel_sweep,
        fig6_network_sweep, fig7_counters, format_table, summarize,
    )

    which = args.figure
    if which in ("3", "all"):
        for device in args.devices:
            result = fig3_input_sweep(device)
            print(format_table(result))
            print(summarize(result), "\n")
    if which in ("4", "all"):
        for device in args.devices:
            result = fig4_kernel_sweep(device)
            print(format_table(result))
            print(summarize(result), "\n")
    if which in ("5", "all"):
        result = fig5_channel_sweep()
        print(format_table(result))
        print(summarize(result), "\n")
    if which in ("6", "all"):
        for device in args.devices:
            result = fig6_network_sweep(device)
            print(format_table(result))
            avg = result.average_speedup_for(ConvAlgorithm.POLYHANKEL)
            print(summarize(result))
            print(f"avg speedup over next best = {avg:.2f}\n")
    if which in ("7", "all"):
        flops, tx = fig7_counters()
        print(format_table(flops, precision=0), "\n")
        print(format_table(tx, precision=0))
    return 0


def cmd_simulate(args) -> int:
    from repro.perfmodel.timing import simulate

    shape = _shape_from_args(args)
    print(f"shape: {shape}")
    for device in args.devices:
        report = simulate(args.algorithm, shape, device)
        print(f"\n{report.device.name}: {report.total_ms:.4f} ms")
        for stage in report.stage_times:
            print(f"  {stage.stage.name:<26} {stage.total_s * 1e3:8.4f} ms"
                  f"  ({stage.bound}-bound)")
    return 0


def cmd_select(args) -> int:
    from repro.selection import select_algorithm, select_algorithm_rules

    shape = _shape_from_args(args)
    result = select_algorithm(shape, args.devices[0])
    print(f"shape: {shape}")
    print(f"model-driven choice on {result.device}: "
          f"{result.algorithm.value} ({result.predicted_ms:.4f} ms)")
    print(f"rule-based choice: {select_algorithm_rules(shape).value}")
    print("\nfull ranking:")
    for algo, ms in result.ranking:
        print(f"  {algo.value:<24} {ms:10.4f} ms")
    return 0


def cmd_tune(args) -> int:
    from repro.selection.tuner import ConvTuner

    shape = _shape_from_args(args)
    tuner = ConvTuner(repeats=args.repeats)
    result = tuner.tune(shape)
    print(f"measured on this machine for {shape}:")
    for algo, seconds in result.ranking():
        print(f"  {algo.value:<24} {seconds * 1e3:10.3f} ms")
    print(f"best: {result.best.value}")
    if getattr(args, "cache_stats", False):
        _print_cache_stats()
    return 0


def cmd_bench(args) -> int:
    from repro import bench

    argv = []
    if args.smoke:
        argv.append("--smoke")
    if args.quick:
        argv.append("--quick")
    if args.no_json:
        argv.append("--no-json")
    if args.out:
        argv.extend(["--out", args.out])
    if args.check:
        argv.extend(["--check", args.check,
                     "--tolerance", str(args.tolerance),
                     "--counter-tolerance", str(args.counter_tolerance)])
    if args.inject is not None:
        argv.append("--inject")
        argv.extend(args.inject)
        argv.extend(["--seed", str(args.seed)])
    if args.inject_cluster is not None:
        argv.append("--inject-cluster")
        argv.extend(args.inject_cluster)
        argv.extend(["--seed", str(args.seed)])
    argv.extend(["--repeats", str(args.repeats),
                 "--workers", str(args.workers)])
    code = bench.main(argv)
    if getattr(args, "cache_stats", False):
        _print_cache_stats()
    return code


def cmd_serve_bench(args) -> int:
    import datetime
    import json as _json

    from repro.bench import (
        SCHEMA_VERSION, SERVE_PRESETS, env_pins, format_serve_report,
        run_serve_case,
    )

    from repro.serve.loadgen import (
        CLUSTER_PRESETS, OVERLOAD_PRESETS, format_cluster_report,
        format_overload_report, run_cluster_case, run_overload_case,
    )

    if args.list:
        for preset in SERVE_PRESETS:
            floor = (f"floor {preset.min_speedup:g}x"
                     if preset.min_speedup else "ungated")
            print(f"{preset.name:<24} {preset.requests}x"
                  f"[{preset.request_batch},{preset.channels},"
                  f"{preset.size},{preset.size}] k={preset.kernel} "
                  f"f={preset.filters} max_batch={preset.max_batch} "
                  f"workers={preset.workers} ({floor})")
        for preset in CLUSTER_PRESETS:
            floor = (f"scale-out floor {preset.min_scaleout:g}x@2"
                     if preset.min_scaleout else "ungated")
            counts = "/".join(str(w) for w in preset.worker_counts)
            print(f"{preset.name:<24} {preset.requests}x"
                  f"[{preset.request_batch},{preset.channels},"
                  f"{preset.size},{preset.size}] k={preset.kernel} "
                  f"f={preset.filters} cluster workers={counts} ({floor})")
        for preset in OVERLOAD_PRESETS:
            mults = "/".join(f"{m:g}" for m in preset.multipliers)
            print(f"{preset.name:<24} {preset.requests}x"
                  f"[{preset.request_batch},{preset.channels},"
                  f"{preset.size},{preset.size}] k={preset.kernel} "
                  f"f={preset.filters} overload x{mults} "
                  f"(goodput floor {preset.min_goodput_pct:.0%}@"
                  f"x{preset.gate_multiplier:g})")
        return 0

    if args.overload:
        # Overload mode: open-loop sweep past capacity, gated on goodput
        # at the gate multiplier.
        presets = list(OVERLOAD_PRESETS)
        if args.preset:
            presets = [p for p in presets if p.name == args.preset]
            if not presets:
                names = ", ".join(p.name for p in OVERLOAD_PRESETS)
                print(f"unknown overload preset {args.preset!r}; "
                      f"one of: {names}")
                return 2
        multipliers = tuple(args.multipliers) if args.multipliers else None
        entries = []
        for preset in presets:
            entries += run_overload_case(preset, multipliers=multipliers)
        print(format_overload_report(entries))
        if args.out:
            report = {"schema": SCHEMA_VERSION,
                      "date": datetime.date.today().isoformat(),
                      "env_pins": env_pins(), "overload": entries}
            with open(args.out, "w") as fh:
                _json.dump(report, fh, indent=2)
                fh.write("\n")
            print(f"[written to {args.out}]")
        if args.check_goodput is not None:
            late = [e for e in entries if e.get("late_completions")]
            for e in late:
                print(f"check-goodput FAILED: {e['name']} completed "
                      f"{e['late_completions']} request(s) after "
                      f"reporting them shed")
            gated = [e for e in entries
                     if e["multiplier"] >= args.gate_multiplier]
            if not gated:
                print(f"check-goodput: no point at multiplier >= "
                      f"{args.gate_multiplier:g} in this sweep")
                return 2
            failed = [e for e in gated
                      if e["goodput_pct"] < args.check_goodput]
            for e in failed:
                print(f"check-goodput FAILED: {e['name']} goodput "
                      f"{e['goodput_pct']:.0%} < floor "
                      f"{args.check_goodput:.0%}")
            if not failed and not late:
                print("check-goodput OK: "
                      + ", ".join(f"{e['name']} {e['goodput_pct']:.0%}"
                                  for e in gated)
                      + f" (floor {args.check_goodput:.0%})")
            return 1 if failed or late else 0
        return 0

    if args.workers is not None:
        # Cluster mode: the Poisson open-loop saturation sweep through
        # the multi-process shared-memory tier.
        counts = tuple(args.workers)
        presets = list(CLUSTER_PRESETS)
        if args.preset:
            presets = [p for p in presets if p.name == args.preset]
            if not presets:
                names = ", ".join(p.name for p in CLUSTER_PRESETS)
                print(f"unknown cluster preset {args.preset!r}; "
                      f"one of: {names}")
                return 2
        entries = []
        for preset in presets:
            entries += run_cluster_case(preset, repeats=args.repeats,
                                        worker_counts=counts)
        print(format_cluster_report(entries))
        if args.out:
            report = {"schema": SCHEMA_VERSION,
                      "date": datetime.date.today().isoformat(),
                      "env_pins": env_pins(), "cluster": entries}
            with open(args.out, "w") as fh:
                _json.dump(report, fh, indent=2)
                fh.write("\n")
            print(f"[written to {args.out}]")
        if args.check_scaleout is not None:
            # Unconditional floor (no gated flag): CI runners that are
            # known multi-core opt in explicitly.
            checked = [e for e in entries
                       if e.get("scaleout_vs_1") is not None
                       and e["workers"] == 2]
            if not checked:
                print("check-scaleout: no 2-worker point with a "
                      "1-worker baseline in this sweep")
                return 2
            failed = [e for e in checked
                      if e["scaleout_vs_1"] < args.check_scaleout]
            for e in failed:
                print(f"check-scaleout FAILED: {e['name']} scaled "
                      f"{e['scaleout_vs_1']:g}x < floor "
                      f"{args.check_scaleout:g}x")
            if not failed:
                print(f"check-scaleout OK: "
                      + ", ".join(f"{e['name']} {e['scaleout_vs_1']:g}x"
                                  for e in checked)
                      + f" (floor {args.check_scaleout:g}x)")
            return 1 if failed else 0
        return 0

    presets = list(SERVE_PRESETS)
    if args.preset:
        presets = [p for p in presets if p.name == args.preset]
        if not presets:
            names = ", ".join(p.name for p in SERVE_PRESETS)
            print(f"unknown preset {args.preset!r}; one of: {names}")
            return 2
    entries = [run_serve_case(p, repeats=args.repeats) for p in presets]
    print(format_serve_report(entries))
    if args.out:
        report = {"schema": SCHEMA_VERSION,
                  "date": datetime.date.today().isoformat(),
                  "env_pins": env_pins(), "serve": entries}
        with open(args.out, "w") as fh:
            _json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"[written to {args.out}]")
    return 0


def cmd_serve_stats(args) -> int:
    from repro.observe.registry import format_serve_stats

    print(format_serve_stats())
    return 0


def cmd_selection_stats(args) -> int:
    from repro.selection.bandit import (
        SelectionBandit, format_selection_stats, load_table,
    )

    if args.table:
        from repro.selection.bandit import SelectionTableError

        try:
            payload = load_table(args.table)
        except SelectionTableError as exc:
            print(f"selection table rejected: {exc}")
            return 1
        if payload is None:
            print(f"no readable selection table at {args.table} "
                  f"(missing, corrupt, or empty)")
            return 1
        bandit = SelectionBandit()
        bandit.warm_start(args.table)
        print(format_selection_stats(bandit.stats()))
        return 0
    print(format_selection_stats())
    return 0


def cmd_selection_drill(args) -> int:
    from repro.selection.drill import (
        format_selection_drill, run_selection_drill,
    )

    report = run_selection_drill(seed=args.seed, requests=args.requests,
                                 table_path=args.table)
    print(format_selection_drill(report))
    return 0 if report["ok"] else 1


def cmd_doctor(args) -> int:
    from repro.guard.doctor import format_report, run_doctor

    results = run_doctor()
    print(format_report(results))
    return 0 if all(r.ok for r in results) else 1


def cmd_profile(args) -> int:
    from repro.observe.profile import (
        case_for_shape, format_profile, profile_case, resolve_preset,
        write_profile,
    )

    if args.preset:
        case = resolve_preset(args.preset, algorithm=args.algorithm)
    else:
        case = case_for_shape(
            args.algorithm, size=args.size, kernel=args.kernel,
            batch=args.batch, channels=args.channels, filters=args.filters,
            padding=args.padding, stride=args.stride,
            dilation=args.dilation, groups=args.groups,
            strategy=args.strategy, backend=args.backend)
    report = profile_case(case, repeats=args.repeats,
                          drift_threshold=args.drift_threshold)
    print(format_profile(report))
    if args.trace:
        print("\nspans (completion order):")
        spans = report["spans"]
        print("\n".join(
            f"{'  ' * s['depth']}{s['name']:<28} {s['ms']:9.4f} ms  "
            + " ".join(f"{k}={v}" for k, v in s["attrs"].items())
            for s in spans))
    if args.json:
        path = write_profile(report, args.json)
        print(f"[written to {path}]")
    return 0


def cmd_cache_stats(args) -> int:
    from repro.observe import format_cache_stats

    print(format_cache_stats())
    return 0


#: Representative problems probing each operator family's support matrix:
#: generic enough (channels divisible, kernel fits) that a "no" means the
#: algorithm genuinely cannot run the op, not that the probe was degenerate.
_OP_PROBES = {
    "1d": ("conv1d", (1, 4, 32), (4, 4, 5), {}),
    "2d": ("conv2d", (1, 4, 16, 16), (4, 4, 3, 3), {}),
    "3d": ("conv3d", (1, 4, 8, 8, 8), (4, 4, 3, 3, 3), {}),
    "t2d": ("conv_transpose2d", (1, 4, 8, 8), (4, 4, 3, 3), {"stride": 2}),
}


def cmd_algorithms(args) -> int:
    from repro.baselines.ndops import op_supports, resolve_op
    from repro.baselines.registry import get_entry, list_algorithms

    cols = list(_OP_PROBES)
    print(f"{'algorithm':<24} {' '.join(f'{c:>4}' for c in cols)}  "
          "description")
    for algo in list_algorithms():
        marks = []
        for col in cols:
            op, x_shape, w_shape, extra = _OP_PROBES[col]
            ok = op_supports(resolve_op(op), algo, x_shape, w_shape,
                             **extra)
            marks.append(f"{'y' if ok else '-':>4}")
        print(f"{algo.value:<24} {' '.join(marks)}  "
              f"{get_entry(algo).description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PolyHankel convolution (CGO'25) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    selftest = sub.add_parser("selftest",
                              help="cross-algorithm correctness check")
    selftest.add_argument("--cache-stats", action="store_true",
                          help="print cache hit/miss statistics afterwards")
    selftest.set_defaults(fn=cmd_selftest)

    figures = sub.add_parser("figures", help="regenerate paper figures")
    figures.add_argument("figure", choices=["3", "4", "5", "6", "7", "all"],
                         nargs="?", default="all")
    figures.add_argument("--devices", nargs="+",
                         default=["3090ti", "a10g", "v100"])
    figures.set_defaults(fn=cmd_figures)

    simulate = sub.add_parser("simulate",
                              help="simulated GPU time for a shape")
    _add_shape_arguments(simulate)
    simulate.add_argument("--algorithm", default="polyhankel")
    simulate.add_argument("--devices", nargs="+", default=["3090ti"])
    simulate.set_defaults(fn=cmd_simulate)

    select = sub.add_parser("select", help="algorithm recommendation")
    _add_shape_arguments(select)
    select.add_argument("--devices", nargs="+", default=["3090ti"])
    select.set_defaults(fn=cmd_select)

    tune = sub.add_parser("tune", help="measure algorithms on this machine")
    _add_shape_arguments(tune)
    tune.add_argument("--repeats", type=int, default=3)
    tune.add_argument("--cache-stats", action="store_true",
                      help="print cache hit/miss statistics afterwards")
    tune.set_defaults(fn=cmd_tune)

    bench = sub.add_parser("bench",
                           help="execution-engine wall-clock suite (JSON)")
    bench.add_argument("--smoke", action="store_true",
                       help="fast subset (CI-friendly)")
    bench.add_argument("--quick", action="store_true",
                       help="alias for --smoke (the CI gate's spelling)")
    bench.add_argument("--repeats", type=int, default=25)
    bench.add_argument("--workers", type=int, default=2)
    bench.add_argument("--out", default=None,
                       help="output JSON path (default BENCH_<date>.json)")
    bench.add_argument("--no-json", action="store_true",
                       help="print the table only")
    bench.add_argument("--check", metavar="BASELINE", default=None,
                       help="regression-gate against a baseline JSON "
                            "(nonzero exit on regression)")
    bench.add_argument("--tolerance", type=float, default=0.5,
                       help="allowed wall-clock growth fraction "
                            "(default 0.5)")
    bench.add_argument("--counter-tolerance", type=float, default=0.1,
                       help="allowed counter-total growth fraction "
                            "(default 0.1)")
    bench.add_argument("--cache-stats", action="store_true",
                       help="print cache hit/miss statistics afterwards")
    bench.add_argument("--inject", nargs="*", metavar="FAULT", default=None,
                       help="run the guard fault-injection recovery drill "
                            "instead of the timing suite (default: all "
                            "engine fault kinds)")
    bench.add_argument("--inject-cluster", nargs="*", metavar="FAULT",
                       default=None,
                       help="run the cluster chaos drill (watchdog, "
                            "retry, slot accounting) instead of the "
                            "timing suite (default: all cluster kinds)")
    bench.add_argument("--seed", type=int, default=0,
                       help="fault-injection seed (with --inject / "
                            "--inject-cluster)")
    bench.set_defaults(fn=cmd_bench)

    serve_bench = sub.add_parser(
        "serve-bench",
        help="serving-layer throughput presets (dynamic batching vs a "
             "sequential request loop)")
    serve_bench.add_argument("preset", nargs="?", default=None,
                             help="preset name (default: all presets)")
    serve_bench.add_argument("--repeats", type=int, default=25)
    serve_bench.add_argument("--list", action="store_true",
                             help="list the presets and exit")
    serve_bench.add_argument("--out", metavar="PATH", default=None,
                             help="also write the results as JSON")
    serve_bench.add_argument("--workers", type=int, nargs="+",
                             default=None, metavar="N",
                             help="run the cluster saturation sweep over "
                                  "these worker counts (e.g. --workers 1 "
                                  "2 4) instead of the in-process presets")
    serve_bench.add_argument("--check-scaleout", type=float, default=None,
                             metavar="RATIO",
                             help="with --workers: exit nonzero unless "
                                  "the 2-worker point scaled >= RATIO "
                                  "over 1 worker (CI's unconditional "
                                  "floor; needs a multi-core host)")
    serve_bench.add_argument("--overload", action="store_true",
                             help="run the overload sweep (open-loop "
                                  "Poisson arrivals at multiples of "
                                  "calibrated capacity) instead of the "
                                  "in-process presets")
    serve_bench.add_argument("--multipliers", type=float, nargs="+",
                             default=None, metavar="X",
                             help="with --overload: offered-load "
                                  "multiples of capacity to sweep "
                                  "(default: the preset's sweep)")
    serve_bench.add_argument("--check-goodput", type=float, default=None,
                             metavar="PCT",
                             help="with --overload: exit nonzero unless "
                                  "goodput at every point at/above the "
                                  "gate multiplier stays >= PCT of "
                                  "capacity (e.g. 0.85), and no request "
                                  "completes after being reported shed")
    serve_bench.add_argument("--gate-multiplier", type=float, default=2.0,
                             metavar="X",
                             help="with --check-goodput: the lowest "
                                  "overload multiplier the floor applies "
                                  "to (default 2.0)")
    serve_bench.set_defaults(fn=cmd_serve_bench)

    sub.add_parser(
        "serve-stats",
        help="serving counters of this process (requests, batches, "
             "coalesce rate, queue wait)"
    ).set_defaults(fn=cmd_serve_stats)

    selection_stats = sub.add_parser(
        "selection-stats",
        help="online algorithm-selection bandit: per-key arm posteriors "
             "and decisions (live bandit or a persisted table)")
    selection_stats.add_argument("--table", metavar="PATH", default=None,
                                 help="read a persisted selection table "
                                      "instead of the live bandit")
    selection_stats.set_defaults(fn=cmd_selection_stats)

    selection_drill = sub.add_parser(
        "selection-drill",
        help="CI convergence drill: seeded replay to the roofline oracle, "
             "warm-start round-trip, poisoned-shadow bit-exactness "
             "(nonzero exit on failure)")
    selection_drill.add_argument("--seed", type=int, default=0)
    selection_drill.add_argument("--requests", type=int, default=300,
                                 help="replay length per key "
                                      "(default 300)")
    selection_drill.add_argument("--table", metavar="PATH", default=None,
                                 help="persist the phase-1 table here "
                                      "(default: a temp file)")
    selection_drill.set_defaults(fn=cmd_selection_drill)

    sub.add_parser(
        "doctor",
        help="install health report: FFT parity, cache integrity, "
             "fallback chain, sentinel, guarded recovery"
    ).set_defaults(fn=cmd_doctor)

    profile = sub.add_parser(
        "profile",
        help="measured per-stage times vs the analytic cost model")
    profile.add_argument("preset", nargs="?", default=None,
                         help="bench-suite case name (e.g. "
                              "conv64_sum_numpy); omit to use shape flags")
    _add_shape_arguments(profile)
    profile.add_argument("--algorithm", default="polyhankel",
                         choices=["polyhankel", "gemm"],
                         help="execution path to profile")
    profile.add_argument("--strategy", default="sum",
                         choices=["sum", "merge"])
    profile.add_argument("--backend", default="numpy",
                         choices=["numpy", "builtin"])
    profile.add_argument("--repeats", type=int, default=10)
    profile.add_argument("--drift-threshold", type=float, default=5.0,
                         help="flag stages whose measured/predicted share "
                              "ratio leaves [1/t, t] (default 5)")
    profile.add_argument("--trace", action="store_true",
                         help="print the raw span log afterwards")
    profile.add_argument("--json", metavar="PATH", default=None,
                         help="also write the profile report as JSON")
    profile.set_defaults(fn=cmd_profile)

    sub.add_parser(
        "cache-stats",
        help="consolidated cache hit/miss table (observe registry)"
    ).set_defaults(fn=cmd_cache_stats)

    sub.add_parser("algorithms", help="list registered algorithms") \
        .set_defaults(fn=cmd_algorithms)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
