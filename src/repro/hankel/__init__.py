"""Hankel-matrix substrate: structured storage, im2col views, property checks."""

from repro.hankel.im2col_view import (
    im2col_hankel_view,
    im2col_patches,
    pad2d,
)
from repro.hankel.matrix import DoublyBlockedHankel, HankelMatrix
from repro.hankel.properties import (
    is_doubly_blocked_hankel,
    is_hankel,
    mirror_symmetry_constant,
    row_degree_vectors,
)

__all__ = [
    "HankelMatrix",
    "DoublyBlockedHankel",
    "im2col_patches",
    "im2col_hankel_view",
    "pad2d",
    "is_hankel",
    "is_doubly_blocked_hankel",
    "row_degree_vectors",
    "mirror_symmetry_constant",
]
