"""Structured Hankel and doubly blocked Hankel matrices.

A Hankel matrix is constant along ascending skew-diagonals: ``H[i, j]``
depends only on ``i + j``.  An ``m x n`` Hankel matrix is therefore fully
described by ``m + n - 1`` numbers.  The im2col matrix of a stride-1
convolution is *doubly blocked* Hankel (Sec. 2.1 of the paper): the block
grid is Hankel in the block indices, and every block is itself Hankel.

These classes store only the defining vectors (O(n) storage) while exposing
dense-matrix semantics — exactly the "concise representation" the paper's
polynomial construction is derived from.
"""

from __future__ import annotations

import numpy as np

from repro import fft as _fft
from repro.utils.validation import ensure_array, require


class HankelMatrix:
    """An ``rows x cols`` Hankel matrix defined by ``H[i, j] = data[i + j]``."""

    def __init__(self, data, rows: int, cols: int):
        self.data = ensure_array(data, "data", ndim=1)
        require(rows > 0 and cols > 0, "rows and cols must be positive")
        require(
            len(self.data) == rows + cols - 1,
            f"defining vector must have rows + cols - 1 = {rows + cols - 1} "
            f"entries, got {len(self.data)}",
        )
        self.rows = rows
        self.cols = cols

    @classmethod
    def from_dense(cls, dense) -> "HankelMatrix":
        """Build from a dense Hankel matrix; raises if it is not Hankel."""
        dense = ensure_array(dense, "dense", ndim=2)
        rows, cols = dense.shape
        data = np.concatenate([dense[0, :], dense[1:, -1]])
        result = cls(data, rows, cols)
        if not np.array_equal(result.to_dense(), dense):
            raise ValueError("matrix is not Hankel")
        return result

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def storage_elems(self) -> int:
        """Elements actually stored (vs rows*cols for the dense form)."""
        return len(self.data)

    def __getitem__(self, key: tuple[int, int]):
        i, j = key
        if not (0 <= i < self.rows and 0 <= j < self.cols):
            raise IndexError(f"index {key} out of range for {self.shape}")
        return self.data[i + j]

    def to_dense(self) -> np.ndarray:
        idx = np.arange(self.rows)[:, None] + np.arange(self.cols)[None, :]
        return self.data[idx]

    def matvec(self, v) -> np.ndarray:
        """``H @ v`` in O((m+n) log(m+n)) via FFT.

        ``(H v)[i] = sum_j data[i + j] v[j]`` is a correlation of the
        defining vector with ``v``, i.e. the slice of the linear convolution
        ``data * reverse(v)`` starting at offset ``cols - 1``.
        """
        v = ensure_array(v, "v", ndim=1)
        require(len(v) == self.cols, f"vector must have {self.cols} entries")
        n = len(self.data) + self.cols - 1
        nfft = _fft.next_fast_len(n)
        prod = _fft.irfft(
            _fft.rfft(self.data, nfft) * _fft.rfft(v[::-1], nfft), nfft
        )
        return prod[self.cols - 1: self.cols - 1 + self.rows]

    def __matmul__(self, v) -> np.ndarray:
        return self.matvec(v)


class DoublyBlockedHankel:
    """Block-Hankel matrix of Hankel blocks, defined by a base matrix.

    The entry at block ``(I, J)``, inner position ``(i, j)`` equals
    ``base[I + J, i + j]``.  With ``base`` set to the (padded) convolution
    input, block grid ``Oh x Kh`` and block shape ``Ow x Kw``, this is
    exactly the transposed-layout im2col matrix of Eq. 1 in the paper.
    """

    def __init__(self, base, block_rows: int, block_cols: int,
                 inner_rows: int, inner_cols: int):
        self.base = ensure_array(base, "base", ndim=2)
        for name, v in (("block_rows", block_rows), ("block_cols", block_cols),
                        ("inner_rows", inner_rows), ("inner_cols", inner_cols)):
            require(v > 0, f"{name} must be positive")
        require(
            self.base.shape == (block_rows + block_cols - 1,
                                inner_rows + inner_cols - 1),
            f"base must be "
            f"{(block_rows + block_cols - 1, inner_rows + inner_cols - 1)},"
            f" got {self.base.shape}",
        )
        self.block_rows = block_rows
        self.block_cols = block_cols
        self.inner_rows = inner_rows
        self.inner_cols = inner_cols

    @property
    def shape(self) -> tuple[int, int]:
        return (self.block_rows * self.inner_rows,
                self.block_cols * self.inner_cols)

    @property
    def storage_elems(self) -> int:
        return self.base.size

    def block(self, block_i: int, block_j: int) -> HankelMatrix:
        """The Hankel block at block coordinates ``(block_i, block_j)``."""
        if not (0 <= block_i < self.block_rows
                and 0 <= block_j < self.block_cols):
            raise IndexError(
                f"block ({block_i}, {block_j}) out of range for grid "
                f"{self.block_rows}x{self.block_cols}"
            )
        return HankelMatrix(self.base[block_i + block_j],
                            self.inner_rows, self.inner_cols)

    def __getitem__(self, key: tuple[int, int]):
        i, j = key
        rows, cols = self.shape
        if not (0 <= i < rows and 0 <= j < cols):
            raise IndexError(f"index {key} out of range for {self.shape}")
        block_i, inner_i = divmod(i, self.inner_rows)
        block_j, inner_j = divmod(j, self.inner_cols)
        return self.base[block_i + block_j, inner_i + inner_j]

    def to_dense(self) -> np.ndarray:
        block_i = np.arange(self.block_rows)[:, None]
        block_j = np.arange(self.block_cols)[None, :]
        inner_i = np.arange(self.inner_rows)[:, None]
        inner_j = np.arange(self.inner_cols)[None, :]
        # 4D gather, then collapse blocks into the dense 2D layout.
        dense = self.base[
            (block_i + block_j)[:, :, None, None],
            (inner_i + inner_j)[None, None, :, :],
        ]
        dense = dense.transpose(0, 2, 1, 3)
        return dense.reshape(self.shape)

    def matvec(self, v) -> np.ndarray:
        """``M @ v`` block by block, each block via the Hankel FFT matvec."""
        v = ensure_array(v, "v", ndim=1)
        require(len(v) == self.shape[1],
                f"vector must have {self.shape[1]} entries")
        segments = v.reshape(self.block_cols, self.inner_cols)
        out = np.zeros((self.block_rows, self.inner_rows),
                       dtype=np.result_type(self.base, v))
        for block_i in range(self.block_rows):
            for block_j in range(self.block_cols):
                out[block_i] += self.block(block_i, block_j).matvec(
                    segments[block_j]
                )
        return out.reshape(-1)

    def __matmul__(self, v) -> np.ndarray:
        return self.matvec(v)
