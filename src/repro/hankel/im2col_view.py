"""im2col, both as a materialized matrix and as a structured Hankel view.

``im2col_patches`` is the production routine the GEMM baselines use.
``im2col_hankel_view`` returns the same matrix as a
:class:`~repro.hankel.matrix.DoublyBlockedHankel` without materializing it —
the structure the paper's polynomial construction is derived from
(Sec. 2.1, Fig. 1).
"""

from __future__ import annotations

import numpy as np

from repro.hankel.matrix import DoublyBlockedHankel
from repro.utils.shapes import conv_output_size
from repro.utils.validation import ensure_array, require


def pad2d(x: np.ndarray, padding) -> np.ndarray:
    """Zero-pad the trailing two (spatial) axes.

    *padding* is an int (symmetric) or a ``(pt, pb, pl, pr)`` 4-tuple for
    asymmetric pads.
    """
    if isinstance(padding, int):
        pt = pb = pl = pr = padding
    else:
        pt, pb, pl, pr = padding
    if not (pt or pb or pl or pr):
        return x
    # Allocate-and-assign is several times faster than np.pad on the hot
    # per-call path (np.pad builds its pad spec in Python per axis).
    h, w = x.shape[-2], x.shape[-1]
    out = np.zeros(x.shape[:-2] + (h + pt + pb, w + pl + pr), dtype=x.dtype)
    out[..., pt:pt + h, pl:pl + w] = x
    return out


def im2col_patches(x: np.ndarray, kh: int, kw: int, padding=0,
                   stride: int | tuple = 1,
                   dilation: int | tuple = 1) -> np.ndarray:
    """Unroll sliding patches of an NCHW tensor.

    Returns an array of shape ``(n, oh * ow, c * kh * kw)``: one row per
    kernel position, matching the row layout of Eq. 1 / the column layout of
    Fig. 1 in the paper (we keep patches as rows so the GEMM is a plain
    ``patches @ weights.T``).  Dilation subsamples the taps inside each
    (effective-extent) window; stride subsamples the window positions.
    """
    from repro.utils.shapes import normalize_padding, normalize_pair

    x = ensure_array(x, "x", ndim=4)
    n, c, ih, iw = x.shape
    sh, sw = normalize_pair(stride, "stride")
    dh, dw = normalize_pair(dilation, "dilation")
    pt, pb, pl, pr = normalize_padding(padding, ih, iw, kh, kw,
                                       (sh, sw), (dh, dw))
    oh = conv_output_size(ih, kh, (pt, pb), sh, dh)
    ow = conv_output_size(iw, kw, (pl, pr), sw, dw)
    eff_kh = dh * (kh - 1) + 1
    eff_kw = dw * (kw - 1) + 1
    xp = pad2d(x, (pt, pb, pl, pr))
    windows = np.lib.stride_tricks.sliding_window_view(
        xp, (eff_kh, eff_kw), axis=(2, 3)
    )  # (n, c, ph-eff_kh+1, pw-eff_kw+1, eff_kh, eff_kw)
    windows = windows[:, :, ::sh, ::sw, ::dh, ::dw]
    # (n, oh, ow, c, kh, kw) -> (n, oh*ow, c*kh*kw)
    patches = windows.transpose(0, 2, 3, 1, 4, 5)
    return patches.reshape(n, oh * ow, c * kh * kw)


def im2col_hankel_view(image: np.ndarray, kh: int, kw: int,
                       padding: int = 0) -> DoublyBlockedHankel:
    """The im2col matrix of one 2D image as a structured Hankel object.

    Only stride 1 has the doubly-Hankel structure.  The returned object's
    ``to_dense()`` equals ``im2col_patches`` of the same image (single
    channel), and its ``matvec`` with the flattened kernel computes the
    convolution — without ever expanding the input.
    """
    image = ensure_array(image, "image", ndim=2)
    ih, iw = image.shape
    oh = conv_output_size(ih, kh, padding, 1)
    ow = conv_output_size(iw, kw, padding, 1)
    require(oh + kh - 1 == ih + 2 * padding and ow + kw - 1 == iw + 2 * padding,
            "internal shape arithmetic failed")
    base = pad2d(image[None, None], padding)[0, 0]
    return DoublyBlockedHankel(base, block_rows=oh, block_cols=kh,
                               inner_rows=ow, inner_cols=kw)
