"""Structural property checks for (doubly blocked) Hankel matrices.

These implement, as executable predicates, the observations Sec. 2.2 of the
paper builds the polynomial construction on — in particular the mirror
symmetry of row-degree vectors: for every row ``k`` of the im2col matrix,
``RD_k + reverse(RD_1)`` is a constant vector (and the constant is the last
entry of ``RD_k``).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ensure_array


def is_hankel(dense, atol: float = 0.0) -> bool:
    """True when *dense* is constant along ascending skew-diagonals."""
    dense = ensure_array(dense, "dense", ndim=2)
    rows, cols = dense.shape
    if rows == 1 or cols == 1:
        return True
    return bool(
        np.allclose(dense[1:, :-1], dense[:-1, 1:], atol=atol, rtol=0.0)
    )


def is_doubly_blocked_hankel(dense, block_grid: tuple[int, int],
                             block_shape: tuple[int, int],
                             atol: float = 0.0) -> bool:
    """True when *dense* is block-Hankel with Hankel blocks.

    ``block_grid`` is (block rows, block cols); ``block_shape`` is the shape
    of each block.
    """
    dense = ensure_array(dense, "dense", ndim=2)
    big_rows, big_cols = block_grid
    inner_rows, inner_cols = block_shape
    if dense.shape != (big_rows * inner_rows, big_cols * inner_cols):
        raise ValueError(
            f"dense shape {dense.shape} does not match grid {block_grid} "
            f"of blocks {block_shape}"
        )
    blocks = dense.reshape(big_rows, inner_rows, big_cols, inner_cols)
    blocks = blocks.transpose(0, 2, 1, 3)
    # Every block must be Hankel...
    for bi in range(big_rows):
        for bj in range(big_cols):
            if not is_hankel(blocks[bi, bj], atol=atol):
                return False
    # ...and blocks along each block-skew-diagonal must be identical.
    if big_rows > 1 and big_cols > 1:
        if not np.allclose(blocks[1:, :-1], blocks[:-1, 1:],
                           atol=atol, rtol=0.0):
            return False
    return True


def row_degree_vectors(oh: int, ow: int, kh: int, kw: int,
                       iw: int) -> np.ndarray:
    """The per-row degree vectors RD_k of the conceptual im2col matrix.

    Row ``k`` (output position ``(i, j)`` with ``k = i * ow + j``) touches
    the input elements whose flattened indices — equivalently, whose degrees
    in A(t), Eq. 10 — are ``iw * (i + u) + (j + v)`` over the kernel support.
    Returns an array of shape ``(oh * ow, kh * kw)``.
    """
    out_i, out_j = np.divmod(np.arange(oh * ow), ow)
    ker_u, ker_v = np.divmod(np.arange(kh * kw), kw)
    return (iw * (out_i[:, None] + ker_u[None, :])
            + out_j[:, None] + ker_v[None, :])


def mirror_symmetry_constant(rd_row: np.ndarray,
                             rd_first: np.ndarray) -> int | None:
    """The constant of ``rd_row + reverse(rd_first)`` or None if not constant.

    Sec. 2.2: for the doubly Hankel im2col matrix this is always constant and
    equal to the last entry of ``rd_row``.
    """
    sums = np.asarray(rd_row) + np.asarray(rd_first)[::-1]
    if np.all(sums == sums[0]):
        return int(sums[0])
    return None
