"""Cluster worker replicas: the process side of the scale-out tier.

Each replica is one OS process running :func:`_worker_main`: a loop that
receives small control orders over a pipe, reads request tensors straight
out of the shared-memory arena (zero-copy views — the engine consumes
them without an intermediate buffer), executes through the same
:func:`repro.serve.pool.execute_conv` path the in-process server uses
(guard chain included when supervision is on), and writes results back
into the response slot the router designated.

Warm state is per-replica by design:

- **plan/spectrum/FFT-plan caches** start empty in every worker (a
  forked child deliberately drops the parent's caches — their scratch
  locks may have been mid-acquisition at fork time) and warm on first
  use.  The router ships each coalescing family's
  :class:`~repro.core.planning.PlanSpec` with the weight, so the worker
  rehydrates the exact plan (``spec.resolve()``) before its first
  request instead of paying plan construction on the request path.
- **weights/biases** arrive once per (replica, fingerprint) through the
  arena and are cached by fingerprint; subsequent orders reference the
  fingerprint only, so the steady-state order is a few hundred bytes of
  plain data.

Start method: ``fork`` where the platform offers it (Linux — instant
start, no re-import), ``spawn`` elsewhere (macOS/Windows; slower start,
and caller scripts must be import-safe under ``if __name__ ==
"__main__"``).  Override with ``REPRO_CLUSTER_START``.  Because forking
a process that runs threads can capture a module-level lock in its
locked state, the child re-creates every known module lock first thing
(:func:`_reinit_locks_in_child`, also registered via
``os.register_at_fork``).
"""

from __future__ import annotations

import multiprocessing
import os
import threading

from repro.serve.shm import TensorArena, recv_control, send_control

#: Environment knob selecting the multiprocessing start method for
#: cluster workers ("fork" / "spawn" / "forkserver").
START_ENV = "REPRO_CLUSTER_START"


def default_start_method() -> str:
    """``fork`` where available (fast, Linux), else ``spawn``."""
    value = os.environ.get(START_ENV)
    if value:
        return value
    return "fork" if "fork" in multiprocessing.get_all_start_methods() \
        else "spawn"


def get_cluster_context(start_method: str | None = None):
    """The multiprocessing context cluster workers are spawned from."""
    return multiprocessing.get_context(start_method
                                       or default_start_method())


def _reinit_locks_in_child() -> None:
    """Rebuild module-level locks after a fork.

    A forked child inherits every lock in whatever state some *other*
    parent thread held it at fork time; a lock captured mid-acquisition
    would deadlock the child on first use.  Workers only ever run our
    code after this reset, so re-creating the locks (rather than trying
    to release them) is safe.
    """
    import repro.core.multichannel as mc
    import repro.core.ndim as ndim
    import repro.fft.plan as fft_plan
    from repro.guard import faults
    from repro.observe import registry

    mc._plan_lock = threading.Lock()
    mc._spectrum_lock = threading.Lock()
    mc._pool_lock = threading.Lock()
    ndim._ND_PLAN_LOCK = threading.Lock()
    ndim._LIFT_LOCK = threading.Lock()
    fft_plan._lock = threading.Lock()
    faults._stack_lock = threading.Lock()
    registry.counters.reset_unsafe()
    from repro.selection import bandit as selection_bandit

    selection_bandit._reset_child_state()


if hasattr(os, "register_at_fork"):  # pragma: no branch - posix only
    os.register_at_fork(after_in_child=_reinit_locks_in_child)


def _fresh_worker_state() -> None:
    """Drop every inherited cache so the replica owns its warm state."""
    from repro.core import multichannel as mc
    from repro.core.ndim import clear_ndplan_cache
    from repro.fft.plan import clear_fft_plan_cache
    from repro.observe import registry

    mc.clear_plan_cache()
    mc.clear_spectrum_cache()
    clear_ndplan_cache()
    clear_fft_plan_cache()
    registry.counters.reset_unsafe()
    from repro.selection import bandit as selection_bandit

    selection_bandit._reset_child_state()


def _worker_main(worker_id: int, arena_name: str, slots: int,
                 slot_bytes: int, conn, supervised: bool,
                 heartbeats: int = 0, generation: int = 0) -> None:
    """One replica's request loop (runs in the worker process).

    When the arena carries a heartbeat region (*heartbeats* > 0) the
    worker stamps its slot — tagged with the *generation* the router
    assigned this spawn — at startup, after every order arrives and
    after every order completes.  It deliberately does **not** stamp
    while blocked in ``recv_control``: an idle worker's heartbeat ages,
    and the router's stall rule only fires when old heartbeats coincide
    with old in-flight work, so idleness is never mistaken for a wedge
    but a wedged reply path (``response_drop``) is caught.
    """
    import time as _time

    from repro.guard import faults
    from repro.observe.registry import counters
    from repro.serve.pool import execute_conv

    _fresh_worker_state()
    if supervised:
        from repro.guard.state import enable_guard

        enable_guard()
    arena = TensorArena.attach(arena_name, slots, slot_bytes,
                               heartbeats=heartbeats)

    def beat() -> None:
        if heartbeats:
            arena.beat(worker_id, generation)

    beat()
    tensors: dict[object, object] = {}
    armed: list = []  # control-plane FaultStates, disarmed on "clear"
    try:
        while True:
            try:
                msg = recv_control(conn)
            except (EOFError, OSError):
                return  # router went away; die quietly
            beat()
            kind = msg["kind"]
            if kind == "stop":
                return
            if kind == "tensor":
                # Weight/bias shipment: must copy — the router frees the
                # slot as soon as this order is acknowledged.
                try:
                    tensors[msg["fp"]] = arena.read(msg["slot"],
                                                    msg["seq"], copy=True)
                    spec = msg.get("spec")
                    if spec is not None:
                        # Plan rehydration: resolve the family's PlanSpec
                        # against this process's cache now, off the
                        # request path.
                        try:
                            spec.resolve()
                        except Exception:
                            pass  # plan warms lazily on first conv
                    send_control(conn, {"kind": "tensor_ok",
                                        "fp": msg["fp"],
                                        "slot": msg["slot"]})
                except Exception as exc:
                    send_control(conn, {
                        "kind": "tensor_err", "fp": msg["fp"],
                        "slot": msg["slot"],
                        "error": f"{type(exc).__name__}: {exc}"})
            elif kind == "conv":
                try:
                    if faults._STACK:
                        faults.maybe_worker_stall()
                        faults.maybe_slow_worker()
                    deadline = msg.get("deadline")
                    if deadline is not None \
                            and _time.monotonic() > deadline:
                        # Every rider's deadline has passed (the router
                        # ships the batch maximum): shed instead of
                        # executing dead work.  CLOCK_MONOTONIC is
                        # boot-based and system-wide on Linux, so the
                        # router's absolute deadline is comparable here.
                        counters.add("serve.cluster.worker_sheds")
                        send_control(conn, {"kind": "shed",
                                            "req": msg["req"]})
                        beat()
                        continue
                    x = arena.read(msg["in_slot"], msg["in_seq"],
                                   copy=False)
                    weight = tensors[msg["weight_fp"]]
                    bias = tensors.get(msg["bias_fp"]) \
                        if msg["bias_fp"] is not None else None
                    out = execute_conv(x, weight, bias, **msg["params"])
                    out_seq = arena.write(msg["out_slot"], out)
                    counters.add("serve.cluster.worker_convs")
                    counters.add("serve.cluster.worker_rows",
                                 int(x.shape[0]))
                    if faults._STACK and faults.should_drop_response():
                        # Computed but never answered: skip the reply
                        # AND the end-of-order heartbeat, so the router
                        # sees exactly what a wedged reply path looks
                        # like — old in-flight work plus an old stamp.
                        continue
                    send_control(conn, {"kind": "done", "req": msg["req"],
                                        "seq": out_seq})
                except Exception as exc:
                    send_control(conn, {
                        "kind": "error", "req": msg["req"],
                        "error": f"{type(exc).__name__}: {exc}"})
            elif kind == "inject":
                # Control-plane fault arming (chaos drills): build the
                # state in-process and ack so the router can sequence
                # the drill deterministically.
                try:
                    state = faults.FaultState(
                        kinds=frozenset(msg["kinds"]),
                        seed=int(msg.get("seed", 0)),
                        rate=float(msg.get("rate", 1.0)),
                        max_fires=msg.get("max_fires"),
                        params=dict(msg.get("params") or {}))
                    armed.append(faults.arm(state))
                    send_control(conn, {"kind": "fault_ok",
                                        "token": msg["token"]})
                except Exception as exc:
                    send_control(conn, {
                        "kind": "fault_err", "token": msg["token"],
                        "error": f"{type(exc).__name__}: {exc}"})
            elif kind == "clear_faults":
                while armed:
                    faults.disarm(armed.pop())
                send_control(conn, {"kind": "fault_ok",
                                    "token": msg["token"]})
            elif kind == "stats":
                rows = [(r.name, r.tags, r.value)
                        for r in counters.snapshot()]
                send_control(conn, {"kind": "stats",
                                    "token": msg["token"], "rows": rows})
            elif kind == "ping":
                send_control(conn, {"kind": "pong", "token": msg["token"],
                                    "pid": os.getpid()})
            else:  # pragma: no cover - protocol drift guard
                send_control(conn, {"kind": "error", "req": None,
                                    "error": f"unknown order {kind!r}"})
            beat()
    finally:
        arena.close()
        conn.close()


def spawn_worker(worker_id: int, arena: TensorArena, supervised: bool,
                 ctx=None, generation: int = 0):
    """Start one replica process; returns ``(process, parent_conn)``.

    *generation* stamps the worker's heartbeats so the router never
    mistakes a dead predecessor's stale stamp (same slot, earlier spawn)
    for the current process's liveness.
    """
    ctx = ctx or get_cluster_context()
    parent_conn, child_conn = ctx.Pipe(duplex=True)
    process = ctx.Process(
        target=_worker_main,
        args=(worker_id, arena.name, arena.slots, arena.slot_bytes,
              child_conn, supervised, arena.heartbeats, generation),
        name=f"repro-cluster-worker-{worker_id}",
        daemon=True,
    )
    process.start()
    child_conn.close()
    return process, parent_conn
